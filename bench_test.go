// Benchmarks regenerating the paper's evaluation — one bench per
// table/figure row of the DESIGN.md experiment index. Deterministic
// simulated results (elapsed virtual time, bytes moved) are attached as
// custom metrics; the Go benchmark time measures the harness itself.
//
//	go test -bench=. -benchmem
package tax_test

import (
	"testing"

	"tax/internal/bench"
	"tax/internal/linkmine"
	"tax/internal/simnet"
	"tax/internal/websim"
)

// BenchmarkE1LocalVsRemote is the §5 headline: the 917-page / 3 MB scan,
// stationary across the 100 Mbit LAN vs. the mobile Webbot. Metrics:
// sim-s-stationary, sim-s-mobile, speedup-pct (paper: 16%).
func BenchmarkE1LocalVsRemote(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmp, err := linkmine.Run(linkmine.Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cmp.Stationary.ScanElapsed.Seconds(), "sim-s-stationary")
		b.ReportMetric(cmp.Mobile.ScanElapsed.Seconds(), "sim-s-mobile")
		b.ReportMetric(cmp.SpeedupPercent(), "speedup-pct")
	}
}

// BenchmarkE1WANSweep is §5's closing extrapolation: the same comparison
// across degraded links and a scaled site. Metrics: the WAN2 speedup
// (the paper's "even faster" regime).
func BenchmarkE1WANSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmp, err := linkmine.Run(linkmine.Config{Link: simnet.WAN2})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cmp.SpeedupPercent(), "wan2-speedup-pct")
	}
}

// BenchmarkE1Crossover probes the other side of the trade-off: a site
// small enough that migration overhead beats the network savings.
func BenchmarkE1Crossover(b *testing.B) {
	spec := websim.CaseStudySpec("webserv")
	spec.Pages = 4
	spec.TotalBytes = 4 * 3400
	spec.ExtraPages = 2
	for i := 0; i < b.N; i++ {
		cmp, err := linkmine.Run(linkmine.Config{Spec: spec})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cmp.SpeedupPercent(), "tiny-site-speedup-pct")
	}
}

// BenchmarkE1Campus is the §5 multi-server extension: an itinerant agent
// scanning four campus web servers vs. the fixed client.
func BenchmarkE1Campus(b *testing.B) {
	cfg := linkmine.MultiConfig{
		Servers:        []string{"www1", "www2", "www3", "www4"},
		PagesPerServer: 120,
	}
	for i := 0; i < b.N; i++ {
		ds, err := linkmine.NewMultiDeployment(cfg)
		if err != nil {
			b.Fatal(err)
		}
		stationary, err := ds.RunStationaryMulti()
		_ = ds.Close()
		if err != nil {
			b.Fatal(err)
		}
		dm, err := linkmine.NewMultiDeployment(cfg)
		if err != nil {
			b.Fatal(err)
		}
		mobile, err := dm.RunMobileMulti()
		_ = dm.Close()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(stationary.Elapsed.Seconds(), "sim-s-stationary")
		b.ReportMetric(mobile.Elapsed.Seconds(), "sim-s-mobile")
	}
}

// BenchmarkF3ActivationPipeline measures figure 3: the full
// vm_c → ag_cc → ag_exec → vm_bin activation versus direct activation.
func BenchmarkF3ActivationPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWrapperStackDepth is the §4 ablation: per-RPC cost through
// 0, 4 and 8 stacked pass-through wrappers.
func BenchmarkWrapperStackDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.WrapperDepth([]int{0, 4, 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBriefcaseStateDrop is the §3.1 ablation: return-trip bytes
// with and without dropping the carried binary.
func BenchmarkBriefcaseStateDrop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.BriefcaseDrop(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFirewallBypass is the §3.3 ablation: co-located RPCs through
// the firewall versus the VM-internal path.
func BenchmarkFirewallBypass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.FirewallBypass(); err != nil {
			b.Fatal(err)
		}
	}
}
