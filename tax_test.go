package tax_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"tax"
)

// TestPublicFacadeItinerary drives the README's quickstart through the
// public API only: deployment, program deployment, itinerary, results.
func TestPublicFacadeItinerary(t *testing.T) {
	sys, err := tax.NewSystem(tax.LAN100)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	for _, h := range []string{"h1", "h2"} {
		if _, err := sys.AddNode(h, tax.NodeOptions{NoCVM: true}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan []string, 1)
	sys.DeployProgram("tour", func(ctx *tax.Context) error {
		bc := ctx.Briefcase()
		bc.Ensure(tax.FolderResults).AppendString(ctx.Host())
		hosts, err := bc.Folder(tax.FolderHosts)
		if err != nil {
			return err
		}
		for {
			next, ok := hosts.Pop()
			if !ok {
				res, err := bc.Folder(tax.FolderResults)
				if err != nil {
					return err
				}
				done <- res.Strings()
				return nil
			}
			if err := ctx.Go(next.String()); errors.Is(err, tax.ErrMoved) {
				return err
			}
		}
	})

	bc := tax.NewBriefcase()
	bc.Ensure(tax.FolderHosts).AppendString("tacoma://h2//vm_go")
	n1, err := sys.Node("h1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n1.VM.Launch(sys.SystemPrincipal.Name(), "tourist", "tour", bc); err != nil {
		t.Fatal(err)
	}
	select {
	case visited := <-done:
		if strings.Join(visited, ",") != "h1,h2" {
			t.Errorf("visited %v", visited)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("facade itinerary stalled")
	}
}

// TestPublicURIHelpers sanity-checks the re-exported URI API.
func TestPublicURIHelpers(t *testing.T) {
	u, err := tax.ParseURI("tacoma://h1/system/ag_fs:2a")
	if err != nil {
		t.Fatal(err)
	}
	if u.Host != "h1" || u.Principal != "system" || u.Name != "ag_fs" || u.Instance != 0x2a {
		t.Errorf("parsed %+v", u)
	}
}

// TestPublicSiteGeneration sanity-checks the re-exported web substrate.
func TestPublicSiteGeneration(t *testing.T) {
	site, err := tax.GenerateSite(tax.CaseStudySite("w"))
	if err != nil {
		t.Fatal(err)
	}
	if site.PagesWithinDepth(4) != 917 {
		t.Errorf("pages = %d", site.PagesWithinDepth(4))
	}
}

// TestPublicTypedErrorsAndOptions proves the redesigned façade end to
// end: a node configured with functional options (including batched
// mediation) runs an agent whose cross-host RPC failure classifies with
// errors.Is — the error crossed the wire as a KindError briefcase yet
// still matches tax.ErrNoSuchFile — and whose context-first calls
// observe cancellation.
func TestPublicTypedErrorsAndOptions(t *testing.T) {
	sys, err := tax.NewSystem(tax.LAN100)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	if _, err := sys.AddNode("home", tax.NodeOptions{NoCVM: true}); err != nil {
		t.Fatal(err)
	}
	edge, err := sys.AddNodeWith("edge",
		tax.WithoutCVM(),
		tax.WithDedupWindow(256),
		tax.WithBatching(tax.BatchConfig{MaxFrames: 1, FlushEvery: -1}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if edge.CVM != nil {
		t.Error("WithoutCVM did not take")
	}

	type verdict struct {
		typed     bool   // errors.Is(err, tax.ErrNoSuchFile) across the wire
		cancelled bool   // RunItineraryContext saw context.Canceled
		errText   string // for diagnostics
	}
	done := make(chan verdict, 1)
	sys.DeployProgram("probe", func(ctx *tax.Context) error {
		var v verdict
		req := tax.NewBriefcase()
		req.SetString("_SVCOP", "get")
		req.SetString("_PATH", "/no/such/checkpoint")
		_, err := ctx.MeetDirect("tacoma://home//ag_fs", req, 5*time.Second)
		v.typed = errors.Is(err, tax.ErrNoSuchFile)
		if err != nil {
			v.errText = err.Error()
		}
		cctx, cancel := context.WithCancel(context.Background())
		cancel()
		v.cancelled = errors.Is(tax.RunItineraryContext(cctx, ctx, nil), context.Canceled)
		done <- v
		return nil
	})
	bc := tax.NewBriefcase()
	if _, err := edge.VM.Launch(sys.SystemPrincipal.Name(), "probe1", "probe", bc); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-done:
		if !v.typed {
			t.Errorf("remote ag_fs miss did not classify as ErrNoSuchFile (err: %s)", v.errText)
		}
		if !v.cancelled {
			t.Error("RunItineraryContext ignored a cancelled context")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("probe agent stalled")
	}
}

// TestPublicWrapperStack drives wrapper stacking through the façade.
func TestPublicWrapperStack(t *testing.T) {
	s := tax.NewWrapperStack()
	if s.Depth() != 0 {
		t.Errorf("empty stack depth %d", s.Depth())
	}
}
