package tax_test

import (
	"errors"
	"fmt"

	"tax"
)

// ExampleBriefcase shows the paper's state model: folders of elements,
// itinerary popping, and state dropping.
func ExampleBriefcase() {
	bc := tax.NewBriefcase()
	hosts := bc.Ensure(tax.FolderHosts)
	hosts.AppendString("tacoma://h1//vm_go", "tacoma://h2//vm_go")

	next, _ := hosts.Pop()
	fmt.Println("next stop:", next)

	bc.Ensure("RAW_DATA").Append(make([]byte, 1000))
	fmt.Println("size with raw data:", bc.Size() > 1000)
	bc.Drop("RAW_DATA") // §3.1: drop state no longer needed before moving
	fmt.Println("size after drop:", bc.Size() < 100)
	// Output:
	// next stop: tacoma://h1//vm_go
	// size with raw data: true
	// size after drop: true
}

// ExampleParseURI parses the paper's figure-2 agent addresses.
func ExampleParseURI() {
	u, _ := tax.ParseURI("tacoma://cl2.cs.uit.no/tacoma@cl2.cs.uit.no/ag_cron")
	fmt.Println(u.Host, u.Principal, u.Name)

	local, _ := tax.ParseURI("vm_c:933821661")
	fmt.Printf("%s instance %x\n", local.Name, local.Instance)
	// Output:
	// cl2.cs.uit.no tacoma@cl2.cs.uit.no ag_cron
	// vm_c instance 933821661
}

// ExampleSystem runs the figure-4 hello-world agent over two simulated
// hosts.
func ExampleSystem() {
	sys, err := tax.NewSystem(tax.LAN100)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer func() { _ = sys.Close() }()
	for _, h := range []string{"h1", "h2"} {
		if _, err := sys.AddNode(h, tax.NodeOptions{NoCVM: true}); err != nil {
			fmt.Println(err)
			return
		}
	}

	done := make(chan struct{})
	sys.DeployProgram("hello", func(ctx *tax.Context) error {
		fmt.Println("hello from", ctx.Host())
		hosts, err := ctx.Briefcase().Folder(tax.FolderHosts)
		if err != nil {
			return err
		}
		next, ok := hosts.Pop()
		if !ok {
			close(done)
			return nil
		}
		if err := ctx.Go(next.String()); errors.Is(err, tax.ErrMoved) {
			return err
		}
		close(done)
		return err
	})

	bc := tax.NewBriefcase()
	bc.Ensure(tax.FolderHosts).AppendString("tacoma://h2//vm_go")
	n1, err := sys.Node("h1")
	if err != nil {
		fmt.Println(err)
		return
	}
	if _, err := n1.VM.Launch(sys.SystemPrincipal.Name(), "hi", "hello", bc); err != nil {
		fmt.Println(err)
		return
	}
	<-done
	// Output:
	// hello from h1
	// hello from h2
}
