// Package tax is the public API of the TAX reproduction: a
// language-independent mobile-agent platform after "Adding Mobility to
// Non-mobile Web Robots" (Sudmann & Johansen, ICDCS 2000), together with
// the simulated substrates its evaluation runs on.
//
// The API surface mirrors the paper's architecture:
//
//   - A System is a simulated distributed deployment of Nodes; each Node
//     is one machine of figure 1: a firewall fronting virtual machines
//     and service agents.
//   - Agents are pre-deployed Handler programs whose transportable state
//     is a Briefcase — an associative array of folders of byte-string
//     elements.
//   - The agent library offers the paper's primitives on a Context:
//     Activate (send), Await (blocking receive), Meet (RPC), Go (move,
//     terminating the local instance on success) and Spawn (fork).
//   - Wrappers intercept an agent's sends and receives to add monitoring,
//     location transparency or group communication without modifying the
//     agent.
//
// A minimal itinerant agent (figure 4 of the paper):
//
//	sys, _ := tax.NewSystem(tax.LAN100)
//	defer sys.Close()
//	for _, h := range []string{"h1", "h2", "h3"} {
//		sys.AddNode(h, tax.NodeOptions{})
//	}
//	sys.DeployProgram("hello", func(ctx *tax.Context) error {
//		fmt.Println("hello from", ctx.Host())
//		hosts, err := ctx.Briefcase().Folder(tax.FolderHosts)
//		if err != nil {
//			return err
//		}
//		for {
//			next, ok := hosts.Pop()
//			if !ok {
//				return nil
//			}
//			if err := ctx.Go(next.String()); errors.Is(err, tax.ErrMoved) {
//				return err
//			}
//		}
//	})
package tax

import (
	"context"

	"tax/internal/agent"
	"tax/internal/briefcase"
	"tax/internal/core"
	"tax/internal/directory"
	"tax/internal/firewall"
	"tax/internal/frontier"
	"tax/internal/group"
	"tax/internal/identity"
	"tax/internal/naming"
	"tax/internal/policy"
	"tax/internal/rearguard"
	"tax/internal/services"
	"tax/internal/simnet"
	"tax/internal/uri"
	"tax/internal/vm"
	"tax/internal/webbot"
	"tax/internal/websim"
	"tax/internal/wrapper"
)

// Core deployment types.
type (
	// System is a simulated TAX deployment: nodes plus the network.
	System = core.System
	// Node is one TAX host: firewall, VMs, services, stores.
	Node = core.Node
	// NodeOptions tunes one host at AddNode time.
	//
	// Deprecated: prefer System.AddNodeWith with Option values; the
	// struct remains supported and the two styles are equivalent.
	NodeOptions = core.NodeOptions
	// Option tunes one host at AddNodeWith time (see WithBatching,
	// WithSecureChannels, ...).
	Option = core.Option
	// BatchConfig tunes coalesced outbound mediation for WithBatching.
	BatchConfig = firewall.BatchConfig
	// RetryPolicy governs firewall forward retries.
	RetryPolicy = firewall.RetryPolicy
	// Quota is a per-principal token-bucket limit for WithQuotas (and
	// the quota lines of a WithPolicy ruleset).
	Quota = policy.Quota
	// PolicyRuleset is a parsed policy (see ParsePolicy).
	PolicyRuleset = policy.Ruleset
	// DirectoryConfig declares the leased, sharded directory plane a
	// System enables before adding its member nodes (EnableDirectory).
	DirectoryConfig = core.DirectoryConfig
	// DirectoryRing is the plane's consistent-hash ownership function.
	DirectoryRing = directory.Ring
	// DirectoryClient resolves and registers names against the plane,
	// failing over from a crashed shard owner to its replicas.
	DirectoryClient = directory.Client
	// NameBinding is one versioned, leased name→location record.
	NameBinding = naming.Binding
)

// Directory-plane errors, typed across the wire: a remote shard's
// verdict arrives as a RemoteError that errors.Is-matches these.
var (
	// ErrNameUnbound: the name was never registered or was dropped.
	ErrNameUnbound = naming.ErrUnbound
	// ErrNameExpired: the binding's lease ran out (its agent went
	// silent — crashed host, lost renewal).
	ErrNameExpired = naming.ErrExpired
	// ErrNameNoQuorum: a write could not reach every replica; it is
	// unacknowledged and may or may not survive.
	ErrNameNoQuorum = naming.ErrNoQuorum
)

// Functional node options, re-exported from core. Each sets one
// NodeOptions field; see the core package for per-option documentation.
var (
	WithArch           = core.WithArch
	WithBypass         = core.WithBypass
	WithRequireAuth    = core.WithRequireAuth
	WithQueueTimeout   = core.WithQueueTimeout
	WithForwardRetry   = core.WithForwardRetry
	WithDedupWindow    = core.WithDedupWindow
	WithTrace          = core.WithTrace
	WithoutServices    = core.WithoutServices
	WithoutCVM         = core.WithoutCVM
	WithNameService    = core.WithNameService
	WithNameTTL        = core.WithNameTTL
	WithOnAgentDone    = core.WithOnAgentDone
	WithSecureChannels = core.WithSecureChannels
	WithTelemetry      = core.WithTelemetry
	WithFsyncCost      = core.WithFsyncCost
	WithSnapshotEvery  = core.WithSnapshotEvery
	WithBatching       = core.WithBatching
	WithRelay          = core.WithRelay
	WithGroupCommit    = core.WithGroupCommit
	WithPolicy         = core.WithPolicy
	WithQuotas         = core.WithQuotas
)

// ParsePolicy validates and compiles policy ruleset text without
// installing it anywhere — the same parser WithPolicy and hot reload
// run, so configuration pipelines can reject bad rulesets early.
func ParsePolicy(text string) (*PolicyRuleset, error) { return policy.Parse(text) }

// StampTrace marks a briefcase as the root of a fresh telemetry trace
// and returns the trace id: launch an agent with a stamped briefcase and
// its whole itinerary — hops, mediations, policy verdicts — collects as
// one explain timeline (taxctl explain).
func StampTrace(bc *Briefcase, host string) string { return agent.StampTrace(bc, host) }

// Agent-programming types.
type (
	// Briefcase is the transportable agent state (§3.1).
	Briefcase = briefcase.Briefcase
	// Folder is an ordered list of elements within a briefcase.
	Folder = briefcase.Folder
	// Element is an uninterpreted byte string, TAX's basic data type.
	Element = briefcase.Element
	// Context is an executing agent's view of TAX.
	Context = agent.Context
	// Handler is an agent program body.
	Handler = vm.Handler
	// URI is a parsed agent address (figure 2).
	URI = uri.URI
	// Wrapper intercepts an agent's sends and receives (§4).
	Wrapper = wrapper.Wrapper
	// WrapperStack is an ordered set of wrappers around one agent.
	WrapperStack = wrapper.Stack
	// Principal is a named signing identity.
	Principal = identity.Principal
	// Binary is a deployable (simulated) native binary image.
	Binary = vm.Binary
	// LinkProfile describes a network link class.
	LinkProfile = simnet.Profile
)

// NewSystem creates an empty deployment on the given default link.
func NewSystem(profile LinkProfile) (*System, error) { return core.NewSystem(profile) }

// NewBriefcase returns an empty briefcase.
func NewBriefcase() *Briefcase { return briefcase.New() }

// ParseURI parses an agent URI in the paper's figure-2 notation.
func ParseURI(s string) (URI, error) { return uri.Parse(s) }

// NewWrapperStack builds a wrapper stack, outermost first.
func NewWrapperStack(outermostFirst ...Wrapper) *WrapperStack {
	return wrapper.NewStack(outermostFirst...)
}

// RunItinerary drives the figure-4 visit/move loop for a handler.
func RunItinerary(ctx *Context, visit func(*Context) error) error {
	return agent.RunItinerary(ctx, visit)
}

// RunItineraryContext is RunItinerary with cancellation: a cancelled
// context stops the tour on the current host; the briefcase keeps its
// remaining HOSTS so a later call can resume.
func RunItineraryContext(ctx context.Context, ac *Context, visit func(*Context) error) error {
	return agent.RunItineraryContext(ctx, ac, visit)
}

// SendStream ships a large payload as a chunked briefcase stream.
func SendStream(ctx *Context, target, streamID string, data []byte, chunkSize int) error {
	return agent.SendStream(ctx, target, streamID, data, chunkSize)
}

// SendStreamContext is SendStream with cancellation, checked between
// chunks so a large transfer stops promptly.
func SendStreamContext(ctx context.Context, ac *Context, target, streamID string, data []byte, chunkSize int) error {
	return agent.SendStreamContext(ctx, ac, target, streamID, data, chunkSize)
}

// NewWrapperSpecs returns a registry generating wrapper stacks from
// declarative spec strings (the paper's future-work framework).
func NewWrapperSpecs() *wrapper.SpecRegistry { return wrapper.NewSpecRegistry() }

// Link profiles for AddNode/SetProfile (calibrated in EXPERIMENTS.md).
var (
	// Loopback models in-host communication.
	Loopback = simnet.Loopback
	// LAN100 is the paper's 100 Mbit department LAN.
	LAN100 = simnet.LAN100
	// WAN10 is a 10 Mbit wide-area path.
	WAN10 = simnet.WAN10
	// WAN2 is a slow 2 Mbit wide-area path.
	WAN2 = simnet.WAN2
)

// Well-known briefcase folders.
const (
	// FolderHosts is the itinerary folder of figure 4.
	FolderHosts = briefcase.FolderHosts
	// FolderCode carries the agent's program name or source.
	FolderCode = briefcase.FolderCode
	// FolderArgs carries agent arguments.
	FolderArgs = briefcase.FolderArgs
	// FolderResults accumulates results along an itinerary.
	FolderResults = briefcase.FolderResults
	// FolderStatus is read by monitoring wrappers answering queries.
	FolderStatus = briefcase.FolderStatus
)

// ErrMoved is returned by Context.Go after a successful move; the agent
// returns it from its handler to terminate the local instance.
var ErrMoved = agent.ErrMoved

// The error taxonomy. Every failure the platform reports wraps one of
// these sentinels, so callers classify with errors.Is instead of
// matching message strings — including failures that crossed the wire
// as a KindError briefcase (see RemoteError).
var (
	// ErrNoMover: the hosting VM does not support relocation.
	ErrNoMover = agent.ErrNoMover
	// ErrStreamCorrupt: a chunked stream arrived damaged or incomplete.
	ErrStreamCorrupt = agent.ErrStreamCorrupt

	// ErrNoFolder / ErrNoElement: briefcase lookups that found nothing.
	ErrNoFolder  = briefcase.ErrNoFolder
	ErrNoElement = briefcase.ErrNoElement
	// ErrCorrupt: a briefcase frame failed to decode.
	ErrCorrupt = briefcase.ErrCorrupt

	// ErrDenied: the reference monitor rejected the operation.
	ErrDenied = firewall.ErrDenied
	// ErrNoAgent: the target agent is not registered at the firewall.
	ErrNoAgent = firewall.ErrNoAgent
	// ErrNoTarget: the briefcase names no destination.
	ErrNoTarget = firewall.ErrNoTarget
	// ErrSenderGone: the sending registration disappeared mid-send.
	ErrSenderGone = firewall.ErrSenderGone
	// ErrKilled: the agent was terminated by a management operation.
	ErrKilled = firewall.ErrKilled
	// ErrRecvTimeout: a blocking receive ran out of time.
	ErrRecvTimeout = firewall.ErrRecvTimeout
	// ErrMailboxFull: the receiver's queue is at capacity.
	ErrMailboxFull = firewall.ErrMailboxFull
	// ErrExpired: a parked message outlived its grace period.
	ErrExpired = firewall.ErrExpired
	// ErrUnsigned: an agent core arrived without a required signature.
	ErrUnsigned = firewall.ErrUnsigned
	// ErrChannelAuth: inter-firewall channel authentication failed.
	ErrChannelAuth = firewall.ErrChannelAuth
	// ErrPolicyDenied: a policy rule (or the default-deny fall-through)
	// refused the mediation. Crosses the wire as code fw_policy_denied.
	ErrPolicyDenied = firewall.ErrPolicyDenied
	// ErrQuotaExceeded: the sending principal's rate or byte quota was
	// exhausted. Crosses the wire as code fw_quota.
	ErrQuotaExceeded = firewall.ErrQuotaExceeded

	// ErrDropped / ErrHostDown / ErrPartitioned: the simulated network
	// refused or lost the transfer.
	ErrDropped     = simnet.ErrDropped
	ErrHostDown    = simnet.ErrHostDown
	ErrPartitioned = simnet.ErrPartitioned

	// ErrNoSuchFile / ErrUnknownOp / ErrBadRequest: service-agent RPC
	// failures (ag_fs, ag_cabinet, ag_exec, ag_dir, ...).
	ErrNoSuchFile = services.ErrNoSuchFile
	ErrUnknownOp  = services.ErrUnknownOp
	ErrBadRequest = services.ErrBadRequest

	// ErrUnrecovered / ErrRecoveryFailed: the rear guard gave up on a
	// lost agent.
	ErrUnrecovered    = rearguard.ErrUnrecovered
	ErrRecoveryFailed = rearguard.ErrRecoveryFailed
)

// RemoteError is an error that crossed the wire as a KindError
// briefcase. errors.Is matches it against the sentinel its _ERRCODE
// names, so errors.Is(err, tax.ErrNoSuchFile) is true even though the
// failure happened on another host.
type RemoteError = firewall.RemoteError

// RegisterErrorCode binds a stable wire code to a sentinel error so
// application-defined failures survive the wire typed (see
// firewall.RegisterErrorCode).
func RegisterErrorCode(code string, sentinel error) { firewall.RegisterErrorCode(code, sentinel) }

// Trust levels for System.NewPrincipal.
const (
	// Untrusted principals run only in safety-enforcing VMs.
	Untrusted = identity.Untrusted
	// Trusted principals may execute native binaries via vm_bin.
	Trusted = identity.Trusted
	// SystemLevel principals hold site-management rights.
	SystemLevel = identity.System
)

// Group-communication orderings for the group wrapper.
const (
	// FIFO delivers each sender's messages in send order.
	FIFO = group.FIFO
	// Causal delivers messages respecting potential causality.
	Causal = group.Causal
	// Total delivers in one global order on every member.
	Total = group.Total
)

// Re-exported building blocks for applications that go beyond the
// façade: the web substrate and the robot of the case study.
type (
	// Site is a generated synthetic web site.
	Site = websim.Site
	// SiteSpec parameterizes site generation.
	SiteSpec = websim.SiteSpec
	// Robot is the stationary Webbot-style crawler, rebuilt as a staged
	// pipeline over a durable URL frontier. Build with NewRobot.
	Robot = webbot.Robot
	// RobotConstraints bound a crawl.
	//
	// Deprecated: build robots with NewRobot and RobotOption values.
	RobotConstraints = webbot.Constraints
	// RobotStats is a crawl's gathered output.
	RobotStats = webbot.Stats
	// RobotOption tunes a robot at NewRobot time.
	RobotOption = webbot.Option
	// RobotsPolicy selects how a robot treats a site's robots.txt.
	RobotsPolicy = webbot.RobotsPolicy
	// Fetcher is anything a robot can crawl through — a local or remote
	// websim client, which is exactly the paper's measured difference.
	Fetcher = websim.Fetcher
	// PageRecord is one completed fetch in a robot's frontier: the
	// durable unit crash-resume, re-crawl and fleet aggregation share.
	PageRecord = frontier.PageRecord
)

// NewRobot builds a staged-crawler robot (PR 10 API): a prioritized,
// optionally durable URL frontier feeding K politeness-limited fetcher
// workers, with Stats byte-identical to the serial crawl.
func NewRobot(fetcher Fetcher, opts ...RobotOption) *Robot { return webbot.New(fetcher, opts...) }

// Robot options, re-exported from webbot. Each returns a RobotOption
// for NewRobot; see the webbot package for per-option documentation.
var (
	RobotMaxDepth    = webbot.WithMaxDepth
	RobotPrefix      = webbot.WithPrefix
	RobotWorkers     = webbot.WithWorkers
	RobotPoliteness  = webbot.WithPoliteness
	RobotRobots      = webbot.WithRobotsPolicy
	RobotUserAgent   = webbot.WithUserAgent
	RobotStableDepth = webbot.WithStableDepth
	RobotDepthAbort  = webbot.WithDepthAbort
	RobotFrontier    = webbot.WithFrontier
	RobotRecrawl     = webbot.WithRecrawl
	RobotRetries     = webbot.WithRetries
	RobotClock       = webbot.WithClock
)

// Robots-exclusion policies for RobotRobots.
const (
	// RobotsIgnore skips the robots.txt fetch (the legacy behavior).
	RobotsIgnore = webbot.RobotsIgnore
	// RobotsHonor fetches /robots.txt first and prunes excluded URLs.
	RobotsHonor = webbot.RobotsHonor
)

// Crawler errors, typed across the wire like the platform taxonomy: a
// fleet worker's Fail crosses as a RemoteError matching these.
var (
	// ErrRobotsDenied: the site's robots.txt forbids the URL for this
	// robot's user-agent. Wire code wb_robots_denied.
	ErrRobotsDenied = webbot.ErrRobotsDenied
	// ErrCrawlUnstable: a subtree beyond the stable depth was journaled
	// (or, with RobotDepthAbort, the crawl aborted). Wire code
	// wb_depth_unstable.
	ErrCrawlUnstable = webbot.ErrUnstable
	// ErrFetchFailed: a URL's fetch failed after the frontier's retry
	// budget. Wire code wb_fetch_failed.
	ErrFetchFailed = webbot.ErrFetchFailed
)

// GenerateSite builds a synthetic site from a spec.
func GenerateSite(spec SiteSpec) (*Site, error) { return websim.Generate(spec) }

// CaseStudySite is the paper's 917-page / 3 MB workload for the given
// host name.
func CaseStudySite(host string) SiteSpec { return websim.CaseStudySpec(host) }

// Management operations (addressed to the firewall itself, §3.2).
const (
	// OpList asks for the agent listing.
	OpList = firewall.OpList
	// OpRuntime asks for one agent's run time.
	OpRuntime = firewall.OpRuntime
	// OpKill terminates an agent.
	OpKill = firewall.OpKill
	// OpStop suspends an agent.
	OpStop = firewall.OpStop
	// OpResume resumes a stopped agent.
	OpResume = firewall.OpResume
	// OpPolicy asks for the active policy ruleset description.
	OpPolicy = firewall.OpPolicy
	// OpPolicyLoad hot-reloads the policy ruleset from the text in _ARG.
	OpPolicyLoad = firewall.OpPolicyLoad
)
