package tax_test

import (
	"errors"
	"regexp"
	"strings"
	"testing"
	"time"

	"tax"
)

// TestPublicPolicyDenyReloadAndQuota drives the policy layer through
// the public façade only: a default-deny node refuses a cross-host RPC
// with an error that classifies via errors.Is on the sender's side of
// the wire, a hot reload opens the flow without a reboot, and a
// WithQuotas node rate-limits a chatty principal typed.
func TestPublicPolicyDenyReloadAndQuota(t *testing.T) {
	sys, err := tax.NewSystem(tax.LAN100)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	if _, err := sys.AddNode("home", tax.NodeOptions{NoCVM: true}); err != nil {
		t.Fatal(err)
	}
	edge, err := sys.AddNodeWith("edge",
		tax.WithoutCVM(),
		tax.WithPolicy("default deny\n"),
	)
	if err != nil {
		t.Fatal(err)
	}
	meter, err := sys.AddNodeWith("meter",
		tax.WithoutCVM(),
		tax.WithQuotas(tax.Quota{Rate: 1, Burst: 1}),
	)
	if err != nil {
		t.Fatal(err)
	}

	type verdict struct {
		denied      bool   // pre-reload Meet classified as ErrPolicyDenied
		deniedText  string //
		afterReload error  // post-reload Meet error (want non-policy)
	}
	done := make(chan verdict, 1)
	sys.DeployProgram("probe", func(ctx *tax.Context) error {
		var v verdict
		req := tax.NewBriefcase()
		req.SetString("_SVCOP", "get")
		req.SetString("_PATH", "/no/such/file")
		_, err := ctx.MeetDirect("tacoma://edge//ag_fs", req, 5*time.Second)
		v.denied = errors.Is(err, tax.ErrPolicyDenied)
		if err != nil {
			v.deniedText = err.Error()
		}
		// Hot reload on the edge node: the same flow is now admitted, so
		// the request reaches ag_fs and fails on the missing file instead.
		if _, err := edge.FW.ReloadPolicy("default deny\nok: allow tourist send **\n"); err != nil {
			return err
		}
		req2 := tax.NewBriefcase()
		req2.SetString("_SVCOP", "get")
		req2.SetString("_PATH", "/no/such/file")
		_, v.afterReload = ctx.MeetDirect("tacoma://edge//ag_fs", req2, 5*time.Second)
		done <- v
		return nil
	})
	home, err := sys.Node("home")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := home.VM.Launch("tourist", "probe1", "probe", nil); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-done:
		if !v.denied {
			t.Errorf("pre-reload Meet did not classify as ErrPolicyDenied (err: %s)", v.deniedText)
		}
		if errors.Is(v.afterReload, tax.ErrPolicyDenied) {
			t.Errorf("post-reload Meet still policy-denied: %v", v.afterReload)
		}
		if !errors.Is(v.afterReload, tax.ErrNoSuchFile) {
			t.Errorf("post-reload Meet = %v, want the request to reach ag_fs", v.afterReload)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("probe agent stalled")
	}

	// The quota façade: WithQuotas meters non-system principals.
	quotaHit := make(chan error, 1)
	sys.DeployProgram("chatty", func(ctx *tax.Context) error {
		for i := 0; i < 10; i++ {
			req := tax.NewBriefcase()
			req.SetString("_SVCOP", "get")
			req.SetString("_PATH", "/x")
			if _, err := ctx.MeetDirect("tacoma://meter//ag_fs", req, 5*time.Second); errors.Is(err, tax.ErrQuotaExceeded) {
				quotaHit <- err
				return nil
			}
		}
		quotaHit <- nil
		return nil
	})
	if _, err := meter.VM.Launch("tourist", "chatty1", "chatty", nil); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-quotaHit:
		if err == nil {
			t.Error("ten rapid requests never tripped the rate=1 quota")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("chatty agent stalled")
	}

	// ParsePolicy is the same parser the nodes run: a bad ruleset fails
	// early, a good one round-trips.
	if _, err := tax.ParsePolicy("nonsense\n"); err == nil {
		t.Error("ParsePolicy accepted garbage")
	}
	rs, err := tax.ParsePolicy("default deny\nallow tourist send **\n")
	if err != nil || rs.Default != 0 || len(rs.Rules) != 1 {
		t.Errorf("ParsePolicy = %+v, %v", rs, err)
	}
	// And a bad WithPolicy ruleset fails the boot, not the first send.
	if _, err := sys.AddNodeWith("broken", tax.WithoutCVM(), tax.WithPolicy("oops\n")); err == nil {
		t.Error("AddNodeWith accepted an invalid ruleset")
	}
}

// TestPublicPolicyMovePreservesPrincipal: a moving agent keeps acting
// for its launching principal on every hop. The host signer only vouches
// for agents running as its own principal — re-signing a tenant agent's
// core in transit would re-principal it as system on arrival and exempt
// the rest of its itinerary from every destination's policy gate.
func TestPublicPolicyMovePreservesPrincipal(t *testing.T) {
	sys, err := tax.NewSystem(tax.LAN100)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	if _, err := sys.AddNode("home", tax.NodeOptions{NoCVM: true}); err != nil {
		t.Fatal(err)
	}
	// edge admits tourist transfers addressed to itself; everything else
	// — including the onward hop to vault — falls to the deny default.
	if _, err := sys.AddNodeWith("edge", tax.WithoutCVM(),
		tax.WithPolicy("default deny\nin: allow tourist transfer tacoma://edge/**\n"),
	); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddNode("vault", tax.NodeOptions{NoCVM: true}); err != nil {
		t.Fatal(err)
	}

	type hop struct {
		principal string
		onward    error
	}
	done := make(chan hop, 2)
	sys.DeployProgram("walker", func(ctx *tax.Context) error {
		switch ctx.Host() {
		case "home":
			return ctx.Go("tacoma://edge//vm_go")
		case "edge":
			h := hop{principal: ctx.Principal()}
			h.onward = ctx.Go("tacoma://vault//vm_go")
			done <- h
			return h.onward
		default:
			// Reaching vault at all means the edge gate was escaped; the
			// edge hop already reported ErrMoved, this is just cleanup.
			return nil
		}
	})
	home, err := sys.Node("home")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := home.VM.Launch("tourist", "walker1", "walker", nil); err != nil {
		t.Fatal(err)
	}
	select {
	case h := <-done:
		if h.principal != "tourist" {
			t.Errorf("agent re-principaled in transit: acting as %q at edge, want tourist", h.principal)
		}
		if errors.Is(h.onward, tax.ErrMoved) {
			t.Error("onward hop to vault moved: the agent escaped edge's default-deny gate")
		} else if !errors.Is(h.onward, tax.ErrPolicyDenied) {
			t.Errorf("onward hop = %v, want ErrPolicyDenied", h.onward)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("walker never reported from edge (first hop denied?)")
	}
}

// rawIDPattern matches the kernel's minted correlation ids; explain
// output masks them, so none may survive into operator-facing lines.
var rawIDPattern = regexp.MustCompile(`\b(?:[ts]:[^\s:]*:[0-9a-f]{16}|m[0-9a-f]{16})\b`)

// TestPublicPolicyExplainAudit: a policy denial shows up in the tower's
// explain timeline with its rule id, and the rendered lines leak no raw
// correlation ids.
func TestPublicPolicyExplainAudit(t *testing.T) {
	sys, err := tax.NewSystem(tax.LAN100)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	twr := sys.EnableTower()
	if _, err := sys.AddNode("home", tax.NodeOptions{NoCVM: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddNodeWith("edge", tax.WithoutCVM(), tax.WithPolicy("default deny\n")); err != nil {
		t.Fatal(err)
	}

	done := make(chan bool, 1)
	sys.DeployProgram("probe", func(ctx *tax.Context) error {
		req := tax.NewBriefcase()
		req.SetString("_SVCOP", "get")
		req.SetString("_PATH", "/x")
		_, err := ctx.MeetDirect("tacoma://edge//ag_fs", req, 5*time.Second)
		done <- errors.Is(err, tax.ErrPolicyDenied)
		return nil
	})
	home, err := sys.Node("home")
	if err != nil {
		t.Fatal(err)
	}
	bc := tax.NewBriefcase()
	if id := tax.StampTrace(bc, "home"); id == "" {
		t.Fatal("StampTrace minted no id")
	}
	if _, err := home.VM.Launch("tourist", "probe1", "probe", bc); err != nil {
		t.Fatal(err)
	}
	select {
	case denied := <-done:
		if !denied {
			t.Fatal("probe was not policy-denied")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("probe agent stalled")
	}

	twr.Pull()
	var all []string
	for _, tid := range twr.Traces() {
		all = append(all, twr.Trace(tid).ExplainLines()...)
	}
	joined := strings.Join(all, "\n")
	if !strings.Contains(joined, "policy rule=p1.default") {
		t.Errorf("no explain line names the denying rule:\n%s", joined)
	}
	for _, line := range all {
		if rawIDPattern.MatchString(line) {
			t.Errorf("explain line leaks a raw id: %q", line)
		}
	}
}
