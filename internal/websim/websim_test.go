package websim

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"tax/internal/simnet"
	"tax/internal/vclock"
)

func caseStudySite(t *testing.T) *Site {
	t.Helper()
	site, err := Generate(CaseStudySpec("webserv"))
	if err != nil {
		t.Fatal(err)
	}
	return site
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(SiteSpec{}); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := Generate(SiteSpec{Host: "h", Pages: 0, MaxDepth: 4}); err == nil {
		t.Error("zero pages accepted")
	}
}

func TestCaseStudyWorkloadShape(t *testing.T) {
	// The paper: "the Webbot scanned 917 html pages containing 3 MBytes"
	// with a search tree limited to depth 4.
	site := caseStudySite(t)
	if got := site.PagesWithinDepth(4); got != 917 {
		t.Errorf("pages within depth 4 = %d, want 917", got)
	}
	bytes := site.BytesWithinDepth(4)
	lo, hi := int(2.5*float64(1<<20)), int(3.5*float64(1<<20))
	if bytes < lo || bytes > hi {
		t.Errorf("bytes within depth 4 = %d, want ≈3MB (%d..%d)", bytes, lo, hi)
	}
	// Deeper pages exist (the robot's depth limit must matter).
	if site.Pages() <= 917 {
		t.Errorf("no pages beyond depth 4: total %d", site.Pages())
	}
	// Mining targets exist.
	if len(site.DeadInternalLinks()) == 0 {
		t.Error("no dead internal links generated")
	}
	if len(site.ExternalLinks()) == 0 {
		t.Error("no external links generated")
	}
	if len(site.DeadExternalLinks()) == 0 {
		t.Error("no dead external links generated")
	}
	// Dead externals are a strict subset of externals.
	if len(site.DeadExternalLinks()) >= len(site.ExternalLinks()) {
		t.Error("every external link is dead")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := caseStudySite(t)
	b := caseStudySite(t)
	if a.Pages() != b.Pages() || a.totalBytes != b.totalBytes {
		t.Error("same spec, different sites")
	}
	da, db := a.DeadInternalLinks(), b.DeadInternalLinks()
	if strings.Join(da, ",") != strings.Join(db, ",") {
		t.Error("dead links differ between runs")
	}
	// A different seed changes the site.
	spec := CaseStudySpec("webserv")
	spec.Seed = 7
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if c.totalBytes == a.totalBytes {
		t.Error("seed has no effect on sizes")
	}
}

func TestEveryPageReachableWithinDepth(t *testing.T) {
	// BFS from the root must reach every main-tree page within MaxDepth.
	site := caseStudySite(t)
	depth := map[string]int{site.Root: 0}
	frontier := []string{site.Root}
	for len(frontier) > 0 {
		var next []string
		for _, u := range frontier {
			p := site.Lookup(u)
			if p == nil {
				continue
			}
			for _, l := range p.Links {
				if site.Lookup(l.URL) == nil {
					continue // dead or external
				}
				if _, seen := depth[l.URL]; !seen {
					depth[l.URL] = depth[u] + 1
					next = append(next, l.URL)
				}
			}
		}
		frontier = next
	}
	within := 0
	for u, d := range depth {
		p := site.Lookup(u)
		if d <= 4 {
			within++
		}
		if p.Depth > 4 && d <= 4 {
			// Cross links may shorten paths to deep pages; that is fine.
			continue
		}
	}
	if within < 917 {
		t.Errorf("only %d pages reachable within depth 4", within)
	}
}

func TestServerServe(t *testing.T) {
	site := caseStudySite(t)
	srv := DefaultServer(site)
	ok := srv.serve(site.Root)
	if ok.Status != StatusOK || ok.Page == nil || ok.Bytes != ok.Page.Size {
		t.Errorf("root serve: %+v", ok)
	}
	miss := srv.serve("http://webserv/nope.html")
	if miss.Status != StatusNotFound || miss.Page != nil {
		t.Errorf("missing serve: %+v", miss)
	}
}

func TestClientChargesCost(t *testing.T) {
	site := caseStudySite(t)
	srv := DefaultServer(site)
	clock := vclock.NewVirtual()
	c := &Client{Server: srv, Link: simnet.LAN100, Clock: clock}

	resp, err := c.Fetch(site.Root)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusOK {
		t.Fatalf("status %d", resp.Status)
	}
	want := simnet.LAN100.TransferTime(requestSize) + simnet.LAN100.Latency +
		srv.PerRequest + time.Duration(resp.Bytes)*srv.PerByte +
		simnet.LAN100.TransferTime(resp.Bytes) + simnet.LAN100.Latency
	if clock.Now() != want {
		t.Errorf("charged %v, want %v", clock.Now(), want)
	}
	if c.Requests != 1 || c.BytesFetched != resp.Bytes {
		t.Errorf("counters: %d reqs, %d bytes", c.Requests, c.BytesFetched)
	}
}

func TestLocalFasterThanRemotePerFetch(t *testing.T) {
	site := caseStudySite(t)
	srv := DefaultServer(site)
	local := &Client{Server: srv, Link: simnet.Loopback, Clock: vclock.NewVirtual()}
	remote := &Client{Server: srv, Link: simnet.LAN100, Clock: vclock.NewVirtual()}
	if _, err := local.Fetch(site.Root); err != nil {
		t.Fatal(err)
	}
	if _, err := remote.Fetch(site.Root); err != nil {
		t.Fatal(err)
	}
	if local.Clock.Now() >= remote.Clock.Now() {
		t.Errorf("local fetch (%v) not faster than remote (%v)",
			local.Clock.Now(), remote.Clock.Now())
	}
}

func TestClientWithoutClockErrors(t *testing.T) {
	site := caseStudySite(t)
	c := &Client{Server: DefaultServer(site), Link: simnet.LAN100}
	if _, err := c.Fetch(site.Root); err == nil {
		t.Error("clockless client fetched")
	}
	e := &ExternalChecker{Universe: &Universe{Origin: site}, Link: simnet.WAN10}
	if _, err := e.Fetch("http://x/"); err == nil {
		t.Error("clockless checker fetched")
	}
}

func TestExternalChecker(t *testing.T) {
	site := caseStudySite(t)
	u := &Universe{Origin: site}
	chk := &ExternalChecker{Universe: u, Link: simnet.WAN10, Clock: vclock.NewVirtual()}

	ext := site.ExternalLinks()
	dead := map[string]bool{}
	for _, d := range site.DeadExternalLinks() {
		dead[d] = true
	}
	for _, url := range ext[:10] {
		resp, err := chk.Fetch(url)
		if err != nil {
			t.Fatal(err)
		}
		wantStatus := StatusOK
		if dead[url] {
			wantStatus = StatusNotFound
		}
		if resp.Status != wantStatus {
			t.Errorf("%s: status %d, want %d", url, resp.Status, wantStatus)
		}
	}
	if chk.Requests != 10 {
		t.Errorf("requests = %d", chk.Requests)
	}
	if chk.Clock.Now() == 0 {
		t.Error("checker charged no time")
	}
	// Unknown URLs outside the generated set read as dead.
	resp, _ := chk.Fetch("http://never-generated/x.html")
	if resp.Status != StatusNotFound {
		t.Errorf("unknown external status %d", resp.Status)
	}
}

func TestClientResolvesExternalViaUniverse(t *testing.T) {
	site := caseStudySite(t)
	srv := DefaultServer(site)
	c := &Client{Server: srv, Universe: &Universe{Origin: site}, Link: simnet.LAN100, Clock: vclock.NewVirtual()}
	ext := site.ExternalLinks()[0]
	resp, err := c.Fetch(ext)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusOK && resp.Status != StatusNotFound {
		t.Errorf("external fetch status %d", resp.Status)
	}
	// Without a universe, external URLs 404.
	c2 := &Client{Server: srv, Link: simnet.LAN100, Clock: vclock.NewVirtual()}
	resp2, _ := c2.Fetch(ext)
	if resp2.Status != StatusNotFound {
		t.Errorf("universe-less external status %d", resp2.Status)
	}
}

// Property: level sizes always sum to the page count with one root.
func TestPropLevelSizes(t *testing.T) {
	f := func(pages uint16, depth uint8) bool {
		p := int(pages%5000) + 1
		d := int(depth%6) + 1
		sizes := levelSizes(p, d)
		if sizes[0] != 1 {
			return false
		}
		sum := 0
		for _, s := range sizes {
			if s < 0 {
				return false
			}
			sum += s
		}
		return sum == p || p == 1 && sum == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
