package websim

import (
	"strings"
	"testing"

	"tax/internal/vclock"
)

func TestGenerateEmitsSeededRobots(t *testing.T) {
	s, err := Generate(CaseStudySpec("webserv"))
	if err != nil {
		t.Fatal(err)
	}
	body := s.RobotsTxt()
	if body == "" {
		t.Fatal("no robots.txt generated")
	}
	if !strings.Contains(body, "User-agent: badbot\nDisallow: /\n") {
		t.Fatalf("robots.txt missing badbot ban:\n%s", body)
	}
	if !strings.Contains(body, "Crawl-delay: ") || s.RobotsCrawlDelay() <= 0 {
		t.Fatalf("robots.txt missing crawl delay:\n%s", body)
	}
	dis := s.RobotsDisallowed()
	if len(dis) == 0 {
		t.Fatal("case-study robots.txt disallows nothing")
	}
	for _, u := range dis {
		p := s.Lookup(u)
		if p == nil {
			t.Fatalf("disallowed URL %q is not a page", u)
		}
		if p.Depth < 2 {
			t.Fatalf("disallowed URL %q at depth %d; robots must not block the shallow tree", u, p.Depth)
		}
		if !strings.Contains(body, "Disallow: "+strings.TrimPrefix(u, "http://webserv")+"\n") {
			t.Fatalf("disallowed URL %q missing from body", u)
		}
	}
	// Deterministic: same seed, same file.
	s2, _ := Generate(CaseStudySpec("webserv"))
	if s2.RobotsTxt() != body {
		t.Fatal("robots.txt differs across same-seed generations")
	}
	// The robots page is served but is not part of the site contract.
	if s.Lookup(s.RobotsURL()) != nil {
		t.Fatal("robots.txt leaked into the pages map")
	}
	srv := DefaultServer(s)
	resp := srv.serve(s.RobotsURL())
	if resp.Status != StatusOK || resp.Page == nil || resp.Page.Body != body {
		t.Fatalf("serve(robots) = %+v", resp)
	}
}

func TestClientHeadChargesHeadersOnly(t *testing.T) {
	s, _ := Generate(CaseStudySpec("webserv"))
	clock := vclock.NewVirtual()
	c := &Client{Server: DefaultServer(s), Clock: clock}
	full, err := c.Fetch(s.Root)
	if err != nil {
		t.Fatal(err)
	}
	fetchCost := clock.Now()
	before := clock.Now()
	head, err := c.Head(s.Root)
	if err != nil {
		t.Fatal(err)
	}
	headCost := clock.Now() - before
	if head.Status != StatusOK || head.Page != full.Page {
		t.Fatalf("head = %+v", head)
	}
	if head.Bytes != 0 {
		t.Fatalf("head transferred %d body bytes", head.Bytes)
	}
	if headCost >= fetchCost {
		t.Fatalf("head cost %v not cheaper than fetch cost %v", headCost, fetchCost)
	}
	if c.Requests != 2 {
		t.Fatalf("requests = %d, want 2", c.Requests)
	}
	if c.BytesFetched != full.Bytes {
		t.Fatalf("head inflated byte counter: %d != %d", c.BytesFetched, full.Bytes)
	}
}

func TestSetAgeDays(t *testing.T) {
	s, _ := Generate(CaseStudySpec("webserv"))
	if !s.SetAgeDays(s.Root, 9999) {
		t.Fatal("SetAgeDays missed the root")
	}
	if s.Lookup(s.Root).AgeDays != 9999 {
		t.Fatal("age not mutated")
	}
	if s.SetAgeDays("http://webserv/nope.html", 1) {
		t.Fatal("SetAgeDays invented a page")
	}
}
