// Package websim is the synthetic web substrate of the case study (§5).
//
// The paper's experiment crawls a real departmental web server: 917 HTML
// pages totalling 3 MB, reached at search-tree depth ≤ 4, with links
// pointing outside the server (rejected by the robot's prefix constraint)
// and some invalid links to be mined. websim generates a deterministic
// site with exactly those observable properties from a seed, and serves
// it through a cost model that charges request/transfer/processing time
// to virtual clocks — locally (loopback) or across a simnet link — so the
// local-versus-remote comparison of the paper is reproducible on a
// laptop.
package websim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"tax/internal/simnet"
	"tax/internal/vclock"
)

// Link is one anchor on a page.
type Link struct {
	// URL is absolute ("http://host/path").
	URL string
	// Referrer is the URL of the page holding the link.
	Referrer string
}

// ContentType classifies a document, as the Webbot's statistics do.
type ContentType string

// Content types the generator produces.
const (
	TypeHTML  ContentType = "text/html"
	TypeImage ContentType = "image/gif"
	TypePDF   ContentType = "application/pdf"
	TypePlain ContentType = "text/plain"
)

// Page is one synthetic document.
type Page struct {
	// URL is the page's absolute address.
	URL string
	// Size is the page's size in bytes (what a fetch transfers).
	Size int
	// Depth is the page's distance from the root in the generator tree.
	Depth int
	// Type is the document's content type (non-HTML pages carry no
	// links).
	Type ContentType
	// AgeDays is the document's age at crawl time; the robot histograms
	// it ("statistics on web pages such as link validity, age, and
	// type").
	AgeDays int
	// Links are the page's outgoing anchors, in generation order.
	Links []Link
	// Body is the page's literal text, set only for documents whose
	// content matters to the crawler (today: /robots.txt). Ordinary
	// pages carry sizes, not bytes.
	Body string
}

// SiteSpec parameterizes site generation. The zero value is not useful;
// use CaseStudySpec for the paper's workload.
type SiteSpec struct {
	// Host is the site's host name in URLs.
	Host string
	// Seed drives every random choice; equal specs generate equal sites.
	Seed int64
	// Pages is the number of pages reachable within MaxDepth.
	Pages int
	// MaxDepth is the deepest level the main page tree occupies.
	MaxDepth int
	// ExtraDepth adds pages below MaxDepth (reachable only by a deeper
	// crawl, exercising the robot's depth constraint).
	ExtraDepth int
	// ExtraPages is how many pages live beyond MaxDepth.
	ExtraPages int
	// TotalBytes is the approximate total size of the main tree.
	TotalBytes int
	// DeadLinkRate is the fraction of pages carrying one dead internal
	// link (the mining target).
	DeadLinkRate float64
	// ExternalRate is the fraction of pages carrying one external link
	// (rejected by the robot's prefix constraint; validated in the
	// wrapper's second pass).
	ExternalRate float64
	// ExternalDeadRate is the fraction of external links that are dead.
	ExternalDeadRate float64
	// ExternalHosts are the hosts external links point to.
	ExternalHosts []string
}

// CaseStudySpec is the paper's workload: 917 pages, ~3 MB, depth ≤ 4.
func CaseStudySpec(host string) SiteSpec {
	return SiteSpec{
		Host:             host,
		Seed:             1999, // ICDCS 2000 vintage
		Pages:            917,
		MaxDepth:         4,
		ExtraDepth:       3,
		ExtraPages:       200,
		TotalBytes:       3 << 20,
		DeadLinkRate:     0.05,
		ExternalRate:     0.15,
		ExternalDeadRate: 0.25,
		ExternalHosts:    []string{"www.uit.no", "www.cornell.edu", "www.w3.org"},
	}
}

// Site is a generated web site.
type Site struct {
	// Host is the site's host name.
	Host string
	// Root is the topmost index page's URL.
	Root  string
	pages map[string]*Page // by URL
	// externalAlive records, for every external URL generated into the
	// site, whether the (simulated) remote end serves it.
	externalAlive map[string]bool
	// deadInternal lists the generated dead internal link URLs.
	deadInternal map[string]bool
	totalBytes   int
	// robots is the generated /robots.txt document. It lives outside
	// the pages map so the page-count and byte-count contracts of the
	// site are untouched by its existence.
	robots *Page
	// robotsDisallow lists the page URLs the robots file disallows for
	// well-behaved crawlers (sorted).
	robotsDisallow []string
	// robotsDelay is the Crawl-delay the robots file requests.
	robotsDelay time.Duration
}

// Generate builds a site from a spec, deterministically.
func Generate(spec SiteSpec) (*Site, error) {
	if spec.Host == "" {
		return nil, errors.New("websim: spec needs a host")
	}
	if spec.Pages < 1 || spec.MaxDepth < 1 {
		return nil, fmt.Errorf("websim: bad spec: %d pages, depth %d", spec.Pages, spec.MaxDepth)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	s := &Site{
		Host:          spec.Host,
		Root:          "http://" + spec.Host + "/index.html",
		pages:         make(map[string]*Page),
		externalAlive: make(map[string]bool),
		deadInternal:  make(map[string]bool),
	}

	// Lay out the main tree level by level so every page is reachable
	// within MaxDepth. Level sizes follow a geometric profile summing to
	// spec.Pages.
	levels := levelSizes(spec.Pages, spec.MaxDepth)
	meanSize := spec.TotalBytes / spec.Pages
	var prev, lastNonEmpty []*Page
	pageNo := 0
	for depth, count := range levels {
		var cur []*Page
		for i := 0; i < count; i++ {
			url := s.Root
			if pageNo > 0 {
				url = fmt.Sprintf("http://%s/d%d/p%04d.html", spec.Host, depth, pageNo)
			}
			p := &Page{URL: url, Depth: depth, Size: pageSize(rng, meanSize)}
			s.pages[url] = p
			s.totalBytes += p.Size
			cur = append(cur, p)
			if depth > 0 {
				// Small sites may leave intermediate levels empty; hang
				// children off the deepest populated level instead.
				parents := prev
				if len(parents) == 0 {
					parents = lastNonEmpty
				}
				parent := parents[rng.Intn(len(parents))]
				parent.Links = append(parent.Links, Link{URL: url, Referrer: parent.URL})
			}
			pageNo++
		}
		if len(cur) > 0 {
			lastNonEmpty = cur
		}
		prev = cur
	}

	// Pages beyond the robot's depth: children of the deepest populated
	// level. Skipped when the main tree never reached MaxDepth (tiny
	// sites) — hanging "deep" pages off shallow parents would pull them
	// inside the crawl radius and break the page-count contract.
	deepParents := lastNonEmpty
	if len(deepParents) > 0 && deepParents[0].Depth < spec.MaxDepth {
		deepParents = nil
	}
	for i := 0; i < spec.ExtraPages && spec.ExtraDepth > 0 && len(deepParents) > 0; i++ {
		depth := spec.MaxDepth + 1 + rng.Intn(spec.ExtraDepth)
		url := fmt.Sprintf("http://%s/deep%d/p%04d.html", spec.Host, depth, pageNo)
		p := &Page{URL: url, Depth: depth, Size: pageSize(rng, meanSize)}
		s.pages[url] = p
		parent := deepParents[rng.Intn(len(deepParents))]
		parent.Links = append(parent.Links, Link{URL: url, Referrer: parent.URL})
		pageNo++
	}

	// Normalize the main tree to the spec's total size (the draw above
	// fixes the spread; this fixes the sum, keeping the workload at the
	// paper's 3 MB).
	if spec.TotalBytes > 0 {
		mainBytes := 0
		for _, p := range s.pages {
			if p.Depth <= spec.MaxDepth {
				mainBytes += p.Size
			}
		}
		factor := float64(spec.TotalBytes) / float64(mainBytes)
		s.totalBytes = 0
		for _, p := range s.pages {
			if p.Depth <= spec.MaxDepth {
				p.Size = int(float64(p.Size) * factor)
				if p.Size < 128 {
					p.Size = 128
				}
			}
			s.totalBytes += p.Size
		}
	}

	// Sprinkle dead internal links, external links and cross links over
	// the main tree (deterministic order: sorted URLs).
	urls := make([]string, 0, len(s.pages))
	byDepth := make([][]string, spec.MaxDepth+1)
	for u, p := range s.pages {
		urls = append(urls, u)
		if p.Depth <= spec.MaxDepth {
			byDepth[p.Depth] = append(byDepth[p.Depth], u)
		}
	}
	sort.Strings(urls)
	for _, level := range byDepth {
		sort.Strings(level)
	}
	deadNo, extNo := 0, 0
	for _, u := range urls {
		p := s.pages[u]
		// Every document gets an age; childless documents are sometimes
		// non-HTML assets (images, PDFs, plain text) — the type mix the
		// Webbot's statistics classify.
		p.AgeDays = 1 + rng.Intn(1500)
		p.Type = TypeHTML
		if len(p.Links) == 0 {
			switch roll := rng.Float64(); {
			case roll < 0.15:
				p.Type = TypeImage
			case roll < 0.25:
				p.Type = TypePlain
			case roll < 0.30:
				p.Type = TypePDF
			}
		}
		if p.Depth > spec.MaxDepth {
			continue
		}
		if p.Type != TypeHTML {
			continue // assets carry no links
		}
		// Dead internal links hang off pages above the deepest level so
		// a depth-constrained crawl still fetches (and detects) them;
		// the paper's robot only finds what it can reach.
		if p.Depth < spec.MaxDepth && rng.Float64() < spec.DeadLinkRate {
			dead := fmt.Sprintf("http://%s/missing/m%04d.html", spec.Host, deadNo)
			deadNo++
			s.deadInternal[dead] = true
			p.Links = append(p.Links, Link{URL: dead, Referrer: p.URL})
		}
		if rng.Float64() < spec.ExternalRate && len(spec.ExternalHosts) > 0 {
			h := spec.ExternalHosts[rng.Intn(len(spec.ExternalHosts))]
			ext := fmt.Sprintf("http://%s/page%04d.html", h, extNo)
			extNo++
			alive := rng.Float64() >= spec.ExternalDeadRate
			s.externalAlive[ext] = alive
			p.Links = append(p.Links, Link{URL: ext, Referrer: p.URL})
		}
		// Occasional cross link back up the tree (cycle fodder for the
		// robot's visited-set logic). Targets sit at the same or a
		// shallower level, so cross links never shorten any page's best
		// path and the depth-constrained page count stays exact.
		if rng.Float64() < 0.10 {
			lvl := byDepth[rng.Intn(p.Depth+1)]
			t := s.pages[lvl[rng.Intn(len(lvl))]]
			p.Links = append(p.Links, Link{URL: t.URL, Referrer: p.URL})
		}
	}

	// Emit /robots.txt last: its draws continue the same rng *after*
	// every page draw above, so a given seed generates a byte-identical
	// page tree whether or not a crawler ever reads the robots file.
	s.generateRobots(spec, rng, urls)
	return s, nil
}

// generateRobots writes the site's robots.txt: a blanket ban for the
// "badbot" agent, and for everyone else a seeded Crawl-delay plus a
// seeded stride of disallowed deep pages — enough to change a polite
// crawl's statistics measurably without gutting the workload.
func (s *Site) generateRobots(spec SiteSpec, rng *rand.Rand, sortedURLs []string) {
	s.robotsDelay = time.Duration(1+rng.Intn(4)) * 250 * time.Millisecond
	stride := 29 + rng.Intn(13)
	prefix := "http://" + spec.Host
	var b strings.Builder
	fmt.Fprintf(&b, "# robots.txt for %s (seed %d)\n\n", spec.Host, spec.Seed)
	b.WriteString("User-agent: badbot\nDisallow: /\n\n")
	b.WriteString("User-agent: *\n")
	fmt.Fprintf(&b, "Crawl-delay: %g\n", s.robotsDelay.Seconds())
	n := 0
	for _, u := range sortedURLs {
		p := s.pages[u]
		if p.Depth < 2 || p.Depth > spec.MaxDepth {
			continue
		}
		if n++; n%stride != 0 {
			continue
		}
		s.robotsDisallow = append(s.robotsDisallow, u)
		fmt.Fprintf(&b, "Disallow: %s\n", strings.TrimPrefix(u, prefix))
	}
	body := b.String()
	s.robots = &Page{
		URL:     s.RobotsURL(),
		Size:    len(body),
		Type:    TypePlain,
		AgeDays: 1,
		Body:    body,
	}
}

// levelSizes splits n pages over depths 0..maxDepth with a geometric
// growth profile (level 0 holds the single root).
func levelSizes(n, maxDepth int) []int {
	sizes := make([]int, maxDepth+1)
	sizes[0] = 1
	remaining := n - 1
	// Geometric weights 1, r, r^2 ... chosen so deeper levels are larger,
	// like real site trees.
	weights := make([]float64, maxDepth)
	total := 0.0
	r := 2.8
	w := 1.0
	for i := range weights {
		weights[i] = w
		total += w
		w *= r
	}
	assigned := 0
	for i := 1; i <= maxDepth; i++ {
		c := int(float64(remaining) * weights[i-1] / total)
		if i == maxDepth {
			c = remaining - assigned
		}
		if c < 1 && remaining > assigned {
			c = 1
		}
		sizes[i] = c
		assigned += c
	}
	return sizes
}

// pageSize draws a page size around the mean with realistic spread.
func pageSize(rng *rand.Rand, mean int) int {
	if mean < 256 {
		mean = 256
	}
	// Two-point mix: mostly small pages, a tail of large ones.
	base := mean / 2
	size := base + rng.Intn(mean)
	if rng.Float64() < 0.05 {
		size += rng.Intn(mean * 8)
	}
	return size
}

// Pages returns the number of pages on the site (all depths).
func (s *Site) Pages() int { return len(s.pages) }

// PagesWithinDepth returns how many pages sit at depth ≤ d.
func (s *Site) PagesWithinDepth(d int) int {
	n := 0
	for _, p := range s.pages {
		if p.Depth <= d {
			n++
		}
	}
	return n
}

// BytesWithinDepth returns the total size of pages at depth ≤ d.
func (s *Site) BytesWithinDepth(d int) int {
	n := 0
	for _, p := range s.pages {
		if p.Depth <= d {
			n += p.Size
		}
	}
	return n
}

// DeadInternalLinks returns the generated dead internal URLs (sorted).
func (s *Site) DeadInternalLinks() []string {
	out := make([]string, 0, len(s.deadInternal))
	for u := range s.deadInternal {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// DeadExternalLinks returns the generated dead external URLs (sorted).
func (s *Site) DeadExternalLinks() []string {
	var out []string
	for u, alive := range s.externalAlive {
		if !alive {
			out = append(out, u)
		}
	}
	sort.Strings(out)
	return out
}

// ExternalLinks returns every generated external URL (sorted).
func (s *Site) ExternalLinks() []string {
	out := make([]string, 0, len(s.externalAlive))
	for u := range s.externalAlive {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the page at url, or nil.
func (s *Site) Lookup(url string) *Page {
	return s.pages[url]
}

// RobotsURL returns the site's robots.txt address.
func (s *Site) RobotsURL() string { return "http://" + s.Host + "/robots.txt" }

// RobotsTxt returns the generated robots.txt body ("" on legacy sites
// built before robots generation).
func (s *Site) RobotsTxt() string {
	if s.robots == nil {
		return ""
	}
	return s.robots.Body
}

// RobotsDisallowed returns the page URLs robots.txt disallows for the
// wildcard agent group (sorted).
func (s *Site) RobotsDisallowed() []string {
	out := make([]string, len(s.robotsDisallow))
	copy(out, s.robotsDisallow)
	return out
}

// RobotsCrawlDelay returns the Crawl-delay robots.txt requests.
func (s *Site) RobotsCrawlDelay() time.Duration { return s.robotsDelay }

// SetAgeDays mutates one page's age in place, reporting whether the
// page exists. Recrawl tests use it to model content churn between
// crawl cycles: the page's revalidation digest changes while the site
// stays otherwise identical.
func (s *Site) SetAgeDays(url string, age int) bool {
	p := s.pages[url]
	if p == nil {
		return false
	}
	p.AgeDays = age
	return true
}

// HTTP status codes the simulated server produces.
const (
	StatusOK       = 200
	StatusNotFound = 404
)

// Response is one fetch result.
type Response struct {
	// URL echoes the request.
	URL string
	// Status is the HTTP-like status code.
	Status int
	// Page is the fetched document (nil on 404).
	Page *Page
	// Bytes is the number of body bytes transferred.
	Bytes int
}

// Server serves a site with a processing-cost model.
type Server struct {
	// Site is the content served.
	Site *Site
	// PerRequest is the server-side fixed cost per request.
	PerRequest time.Duration
	// PerByte is the server-side cost per body byte.
	PerByte time.Duration
}

// DefaultServer wraps a site with the calibrated 1999-workstation cost
// model (see EXPERIMENTS.md): ~0.7 ms of request handling plus 200 ns per
// body byte (≈5 MB/s of file-system and HTTP work).
func DefaultServer(site *Site) *Server {
	return &Server{
		Site:       site,
		PerRequest: 700 * time.Microsecond,
		PerByte:    200 * time.Nanosecond,
	}
}

// process computes the server-side time for a response.
func (s *Server) process(resp *Response) time.Duration {
	return s.PerRequest + time.Duration(resp.Bytes)*s.PerByte
}

// serve resolves a URL to a response (no cost charging; Client does that).
func (s *Server) serve(url string) *Response {
	if p := s.Site.Lookup(url); p != nil {
		return &Response{URL: url, Status: StatusOK, Page: p, Bytes: p.Size}
	}
	if p := s.Site.robots; p != nil && url == s.Site.RobotsURL() {
		return &Response{URL: url, Status: StatusOK, Page: p, Bytes: p.Size}
	}
	return &Response{URL: url, Status: StatusNotFound, Bytes: 256}
}

// requestSize is the simulated HTTP request size in bytes.
const requestSize = 220

// Fetcher is what a robot crawls through.
type Fetcher interface {
	// Fetch retrieves one URL, charging simulated time.
	Fetch(url string) (*Response, error)
}

// HeadFetcher is a Fetcher that can probe a URL's metadata without
// transferring the body — the revalidation probe behind incremental
// re-crawl. The returned Response carries the status and the page's
// metadata but Bytes is zero: only headers crossed the wire.
type HeadFetcher interface {
	Head(url string) (*Response, error)
}

// ForkableFetcher is a Fetcher that supports concurrent crawling. Fork
// yields an independent clone whose simulated costs are charged to the
// given clock instead of the parent's, so worker goroutines can fetch
// without sharing the parent's clock or counters. Replay then charges
// the parent for one fetch a fork served, leaving the parent's clock
// and traffic counters exactly as if it had performed the fetch itself
// — which is what keeps a parallel-prefetched crawl's Stats identical
// to the serial crawl's.
type ForkableFetcher interface {
	Fetcher
	// Fork returns an independent fetcher charging costs to clock.
	Fork(clock vclock.Clock) Fetcher
	// Replay charges the parent for one fetch previously served by a
	// fork (resp and the fork-measured cost).
	Replay(resp *Response, cost time.Duration)
}

// Client fetches from a Server across a link profile, charging the full
// request/response cost to a clock — the sequential-crawler cost model:
//
//	request transfer + latency + server processing + response transfer +
//	latency
type Client struct {
	// Server is the origin served; fetches of other hosts' URLs return
	// 404 unless Universe is set.
	Server *Server
	// Universe, when set, resolves external hosts for validation passes.
	Universe *Universe
	// Link is the client→server link profile.
	Link simnet.Profile
	// Clock accumulates the elapsed simulated time.
	Clock vclock.Clock

	// Requests and BytesFetched count traffic through this client.
	Requests     int
	BytesFetched int
}

var (
	_ ForkableFetcher = (*Client)(nil)
	_ HeadFetcher     = (*Client)(nil)
)

// Fork implements ForkableFetcher: the clone shares the server, the
// universe and the link profile but charges the given clock and keeps
// its own traffic counters. The cost model is stateless per fetch, so a
// fork observes exactly the costs the parent would have.
func (c *Client) Fork(clock vclock.Clock) Fetcher {
	return &Client{Server: c.Server, Universe: c.Universe, Link: c.Link, Clock: clock}
}

// Replay implements ForkableFetcher: it applies one fork-served fetch
// to the parent's clock and counters.
func (c *Client) Replay(resp *Response, cost time.Duration) {
	c.Clock.Advance(cost)
	c.Requests++
	c.BytesFetched += resp.Bytes
}

// Fetch implements Fetcher.
func (c *Client) Fetch(url string) (*Response, error) {
	if c.Clock == nil {
		return nil, errors.New("websim: client has no clock")
	}
	resp := c.resolve(url)
	// Request travels to the server...
	cost := c.Link.TransferTime(requestSize) + c.Link.Latency
	// ...the server thinks...
	cost += c.Server.process(resp)
	// ...the response travels back.
	cost += c.Link.TransferTime(resp.Bytes) + c.Link.Latency
	c.Clock.Advance(cost)
	c.Requests++
	c.BytesFetched += resp.Bytes
	return resp, nil
}

// Head implements HeadFetcher: same round trip as Fetch, but the
// response body stays on the server — the client pays the request
// transfer, the server's fixed per-request cost, and a 256-byte header
// response. Bytes is zero; the page metadata still comes back (it is
// what headers are).
func (c *Client) Head(url string) (*Response, error) {
	if c.Clock == nil {
		return nil, errors.New("websim: client has no clock")
	}
	resp := c.resolve(url)
	head := &Response{URL: resp.URL, Status: resp.Status, Page: resp.Page}
	cost := c.Link.TransferTime(requestSize) + c.Link.Latency +
		c.Server.PerRequest +
		c.Link.TransferTime(256) + c.Link.Latency
	c.Clock.Advance(cost)
	c.Requests++
	return head, nil
}

func (c *Client) resolve(url string) *Response {
	if strings.HasPrefix(url, "http://"+c.Server.Site.Host+"/") {
		return c.Server.serve(url)
	}
	if c.Universe != nil {
		return c.Universe.resolveExternal(url)
	}
	return &Response{URL: url, Status: StatusNotFound, Bytes: 256}
}

// Universe resolves URLs outside the origin site: the case study's
// second pass validates links pointing at other hosts. External fetches
// are cheap to resolve (we only need alive/dead) but expensive to reach,
// which is exactly what the WAN profile charges.
type Universe struct {
	// Origin is the site whose externalAlive table answers liveness.
	Origin *Site
}

func (u *Universe) resolveExternal(url string) *Response {
	alive, known := u.Origin.externalAlive[url]
	if known && alive {
		return &Response{URL: url, Status: StatusOK, Bytes: 2048}
	}
	return &Response{URL: url, Status: StatusNotFound, Bytes: 256}
}

// ExternalChecker fetches external URLs across a WAN profile, charging a
// clock; used by the second validation pass.
type ExternalChecker struct {
	// Universe answers liveness.
	Universe *Universe
	// Link is the path to the outside world.
	Link simnet.Profile
	// Clock accumulates elapsed time.
	Clock vclock.Clock
	// Requests counts checks performed.
	Requests int
}

var _ Fetcher = (*ExternalChecker)(nil)

// Fetch implements Fetcher for external URLs (HEAD-style check).
func (e *ExternalChecker) Fetch(url string) (*Response, error) {
	if e.Clock == nil {
		return nil, errors.New("websim: checker has no clock")
	}
	resp := e.Universe.resolveExternal(url)
	cost := e.Link.TransferTime(requestSize) + e.Link.Latency +
		e.Link.TransferTime(256) + e.Link.Latency // headers only
	e.Clock.Advance(cost)
	e.Requests++
	return resp, nil
}
