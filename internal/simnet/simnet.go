// Package simnet is the simulated network substrate of the reproduction.
//
// The paper's evaluation compares elapsed time of the same computation
// executed locally on a web server versus across a 100 Mbit LAN. simnet
// reproduces that comparison deterministically: hosts are connected by
// links with a bandwidth, a propagation latency, and a fixed per-message
// overhead; each transfer is charged against virtual clocks (package
// vclock) and serialized on its link, so sequential request/response
// flows yield exact elapsed times without sleeping.
//
// Messages are delivered in real time through per-source dispatcher
// goroutines (one in-order queue per directed link, so each sender's
// messages arrive FIFO while different senders' handlers may run
// concurrently), while the virtual timestamps carry the simulated cost.
// A TCP implementation of the same Node interface (tcp.go) backs the
// live multi-process deployment path.
package simnet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"tax/internal/telemetry"
	"tax/internal/vclock"
)

var (
	// ErrUnknownHost is returned when sending to an unregistered host.
	ErrUnknownHost = errors.New("simnet: unknown host")
	// ErrPartitioned is returned when the pair of hosts is partitioned.
	ErrPartitioned = errors.New("simnet: hosts partitioned")
	// ErrClosed is returned when the host or network has been shut down.
	ErrClosed = errors.New("simnet: closed")
	// ErrHostDown is returned when either endpoint of a transfer is
	// crashed (Crash without a matching Restart).
	ErrHostDown = errors.New("simnet: host down")
	// ErrDropped is returned when an injected fault loses the message in
	// flight. The sender sees it the way a TCP sender sees a reset: the
	// link time was spent but nothing arrived.
	ErrDropped = errors.New("simnet: message dropped by fault injection")
)

// Decision is what a fault injector rules for one transfer. The zero
// value passes the message through untouched.
type Decision struct {
	// Drop loses the message: the link is charged but nothing is
	// delivered and the sender gets ErrDropped.
	Drop bool
	// Duplicate delivers the message twice (same payload, same arrival).
	Duplicate bool
	// Delay adds jitter to the arrival time on top of the link cost.
	Delay time.Duration
	// Corrupt flips bytes in the delivered payload (the sender's copy is
	// untouched); receivers see it as a decode or authentication failure.
	Corrupt bool
}

// Injector is consulted on every inter-host transfer. Implementations
// must be deterministic for a given (from, to, call sequence) to keep
// simulations reproducible, and may call back into the Network
// (Partition, Heal, Crash, Restart) to apply scheduled fault events —
// the network lock is not held during the call.
type Injector interface {
	Decide(from, to string, now time.Duration, size int) Decision
}

// FaultPoint is one injected fault actually applied to a transfer,
// reported to the fault observer: which directed link, when (sender's
// virtual time at the injection decision), what was done, and the trace
// context the payload was carrying (empty for untraced traffic). It is
// what lets an observability plane answer "this hop was slow because the
// plan delayed it", rather than just "it was slow".
type FaultPoint struct {
	From, To string
	Time     time.Duration
	// Kind is "drop", "duplicate", "delay" or "corrupt". A decision that
	// combines several produces one FaultPoint per aspect.
	Kind   string
	Detail string
	Trace  string
	Span   string
}

// Node is the transport endpoint the TAX firewall binds to: one per host,
// addressed by name, delivering opaque payloads. Both the simulated Host
// and the TCP node implement it.
type Node interface {
	// Addr returns the node's own address (host name, or host:port).
	Addr() string
	// Send delivers payload to the named peer.
	Send(to string, payload []byte) error
	// SetHandler installs the delivery callback. Deliveries from one
	// peer are serialized (per-link FIFO); deliveries from different
	// peers may invoke the handler concurrently, so handlers must be
	// safe for concurrent use. Must be called before the first message
	// arrives.
	SetHandler(h func(from string, payload []byte))
	// Close shuts the node down; further sends fail with ErrClosed.
	Close() error
}

// TracedNode is a Node that can carry trace context alongside a transfer,
// so fault injections on the wire are attributable to the itinerary that
// suffered them. The context rides out of band — it does not change the
// payload or its simulated cost. Senders (the firewall) type-assert for it
// and fall back to plain Send when absent.
type TracedNode interface {
	Node
	// SendTraced is Send with the payload's active trace/span attached.
	SendTraced(to string, payload []byte, traceID, spanID string) error
}

// Profile describes one link class: how long a message of a given size
// takes to cross it.
type Profile struct {
	// Name labels the profile in reports ("lan100", "wan10", ...).
	Name string
	// Bandwidth is the link throughput in bytes per second.
	Bandwidth float64
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// MsgOverhead is the fixed per-message cost (connection and request
	// handling; what a small HTTP request pays beyond propagation).
	MsgOverhead time.Duration
}

// TransferTime returns the serialization cost of size bytes on the link:
// fixed overhead plus size divided by bandwidth. Propagation latency is
// charged separately (it does not occupy the link).
func (p Profile) TransferTime(size int) time.Duration {
	tx := time.Duration(0)
	if p.Bandwidth > 0 {
		tx = time.Duration(float64(size) / p.Bandwidth * float64(time.Second))
	}
	return p.MsgOverhead + tx
}

// RoundTrip returns the elapsed time of a request/response exchange with
// the given payload sizes on an idle link.
func (p Profile) RoundTrip(reqSize, respSize int) time.Duration {
	return p.TransferTime(reqSize) + p.Latency + p.TransferTime(respSize) + p.Latency
}

// Predefined link profiles. Bandwidths are in bytes/second (100 Mbit/s =
// 12.5e6 B/s). The LAN numbers are the calibration for the paper's
// department network (see internal/bench and EXPERIMENTS.md); the WAN
// profiles back the paper's "wide area network" extrapolation.
var (
	// Loopback models in-host communication: what the relocated agent
	// pays to talk to the co-located web server.
	Loopback = Profile{Name: "loopback", Bandwidth: 1.5e9, Latency: 5 * time.Microsecond, MsgOverhead: 20 * time.Microsecond}
	// LAN100 is the paper's 100 Mbit department LAN.
	LAN100 = Profile{Name: "lan100", Bandwidth: 12.5e6, Latency: 150 * time.Microsecond, MsgOverhead: 150 * time.Microsecond}
	// WAN10 is a 10 Mbit wide-area path.
	WAN10 = Profile{Name: "wan10", Bandwidth: 1.25e6, Latency: 20 * time.Millisecond, MsgOverhead: 1 * time.Millisecond}
	// WAN2 is a slow 2 Mbit wide-area path.
	WAN2 = Profile{Name: "wan2", Bandwidth: 0.25e6, Latency: 40 * time.Millisecond, MsgOverhead: 2 * time.Millisecond}
)

// LinkStats is a snapshot of one directed link's traffic counters.
type LinkStats struct {
	From, To string
	Messages int64
	Bytes    int64
}

type pairKey struct{ from, to string }

type link struct {
	profile   Profile
	busyUntil time.Duration // virtual time the link is transmitting until
	messages  int64
	bytes     int64
	// ctrMsgs/ctrBytes mirror the counters into the attached telemetry
	// registry (nil when no telemetry is attached; nil-safe no-ops).
	ctrMsgs  *telemetry.Counter
	ctrBytes *telemetry.Counter
}

// Network is a set of simulated hosts and the links between them.
type Network struct {
	mu             sync.Mutex
	defaultProfile Profile
	loopback       Profile
	hosts          map[string]*Host
	links          map[pairKey]*link
	profiles       map[pairKey]Profile // per-pair overrides (symmetric)
	partitioned    map[pairKey]bool    // symmetric
	crashed        map[string]bool
	onCrash        map[string]func()
	onRestart      map[string]func()
	inj            Injector
	faultObs       func(FaultPoint)
	tap            func(from, to string, payload []byte)
	closed         bool

	tel *telemetry.Telemetry
	// histTransfer observes each transfer's simulated duration (departure
	// to arrival, virtual time); non-nil only with detailed telemetry.
	histTransfer *telemetry.Histogram
}

// New creates a network whose host pairs default to the given profile.
func New(defaultProfile Profile) *Network {
	return &Network{
		defaultProfile: defaultProfile,
		loopback:       Loopback,
		hosts:          make(map[string]*Host),
		links:          make(map[pairKey]*link),
		profiles:       make(map[pairKey]Profile),
		partitioned:    make(map[pairKey]bool),
		crashed:        make(map[string]bool),
		onCrash:        make(map[string]func()),
		onRestart:      make(map[string]func()),
	}
}

// SetTap installs fn, called synchronously for every payload delivered
// over the wire with exactly the bytes the receiver will see (after any
// corrupting fault). fn must not retain payload. Tests use it to assert
// wire-level properties — byte-identical forwarding, container shapes —
// without instrumenting the endpoints; nil removes the tap.
func (n *Network) SetTap(fn func(from, to string, payload []byte)) {
	n.mu.Lock()
	n.tap = fn
	n.mu.Unlock()
}

// OnCrash registers fn to run whenever the named host crashes. The core
// layer uses it to wipe the host's volatile state — cabinet folders,
// park-table entries, in-flight VM registrations — so that only what was
// made durable survives. fn runs outside the network lock and may not
// call back into Crash/Restart for the same host.
func (n *Network) OnCrash(name string, fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.onCrash[name] = fn
}

// OnRestart registers fn to run whenever the named host restarts; the
// core layer uses it to replay the host's durable snapshot+WAL into a
// recovered process image. Same locking contract as OnCrash.
func (n *Network) OnRestart(name string, fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.onRestart[name] = fn
}

// SetInjector installs (or, with nil, removes) the fault injector
// consulted on every inter-host transfer.
func (n *Network) SetInjector(inj Injector) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.inj = inj
}

// SetFaultObserver installs (or, with nil, removes) the callback invoked
// once per fault aspect actually applied to a transfer. The callback runs
// outside the network lock, on the sender's goroutine, and must not call
// back into Send.
func (n *Network) SetFaultObserver(fn func(FaultPoint)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.faultObs = fn
}

// SetTelemetry attaches a telemetry instance: per-link message and byte
// counters mirror into its registry, and with detailed telemetry every
// transfer's simulated duration feeds the net.transfer histogram.
func (n *Network) SetTelemetry(t *telemetry.Telemetry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tel = t
	n.histTransfer = nil
	if t.Detailed() {
		n.histTransfer = t.Registry().Histogram("net.transfer")
	}
	for k, l := range n.links {
		l.ctrMsgs = t.Registry().Counter("net.messages", "from", k.from, "to", k.to)
		l.ctrBytes = t.Registry().Counter("net.bytes", "from", k.from, "to", k.to)
	}
}

// SetLoopback overrides the profile used for a host talking to itself.
func (n *Network) SetLoopback(p Profile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.loopback = p
}

// AddHost registers a host and starts its dispatcher.
func (n *Network) AddHost(name string) (*Host, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if name == "" {
		return nil, fmt.Errorf("simnet: empty host name")
	}
	if _, ok := n.hosts[name]; ok {
		return nil, fmt.Errorf("simnet: duplicate host %q", name)
	}
	h := &Host{
		name:  name,
		net:   n,
		clock: vclock.NewVirtual(),
		peers: make(map[string]chan delivery),
		done:  make(chan struct{}),
	}
	n.hosts[name] = h
	return h, nil
}

// Host returns the named host.
func (n *Network) Host(name string) (*Host, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.hosts[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHost, name)
	}
	return h, nil
}

// SetProfile overrides the link profile between hosts a and b in both
// directions.
func (n *Network) SetProfile(a, b string, p Profile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.profiles[pairKey{a, b}] = p
	n.profiles[pairKey{b, a}] = p
}

// Partition cuts communication between hosts a and b in both directions.
// Partitioning a host from itself is a no-op: loopback is machine-local
// and never crosses the network.
func (n *Network) Partition(a, b string) {
	if a == b {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitioned[pairKey{a, b}] = true
	n.partitioned[pairKey{b, a}] = true
}

// Heal restores communication between hosts a and b. Healing a pair that
// is not partitioned (or an unknown host) is a no-op, so double heals
// are safe.
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitioned, pairKey{a, b})
	delete(n.partitioned, pairKey{b, a})
}

// Partitioned reports whether the pair is currently cut.
func (n *Network) Partitioned(a, b string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.partitioned[pairKey{a, b}]
}

// Crash marks a host as down, as a machine losing power: sends to and
// from it fail with ErrHostDown, its undelivered inbox is discarded, and
// the host's OnCrash hook runs — the core layer wipes volatile host
// state (cabinet folders, parked messages, VM registrations) there, so
// only state fsynced to the host's simulated disk survives to Restart.
func (n *Network) Crash(name string) {
	n.mu.Lock()
	h, ok := n.hosts[name]
	if !ok {
		n.mu.Unlock()
		return
	}
	if n.crashed[name] {
		n.mu.Unlock()
		return
	}
	n.crashed[name] = true
	hook := n.onCrash[name]
	n.mu.Unlock()
	h.peerMu.Lock()
	for _, q := range h.peers {
		for {
			select {
			case <-q:
				continue
			default:
			}
			break
		}
	}
	h.peerMu.Unlock()
	if hook != nil {
		hook()
	}
}

// Restart brings a crashed host back. The inbox starts empty; the
// host's virtual clock keeps its pre-crash value (a real machine's
// peers keep theirs, and the causal clock is what matters); the OnRestart
// hook then rebuilds the host's process image from its durable state.
func (n *Network) Restart(name string) {
	n.mu.Lock()
	if !n.crashed[name] {
		n.mu.Unlock()
		return
	}
	delete(n.crashed, name)
	hook := n.onRestart[name]
	n.mu.Unlock()
	if hook != nil {
		hook()
	}
}

// Crashed reports whether the named host is currently crashed.
func (n *Network) Crashed(name string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed[name]
}

// Stats returns traffic counters for every directed link that carried at
// least one message, sorted by (from, to).
func (n *Network) Stats() []LinkStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]LinkStats, 0, len(n.links))
	for k, l := range n.links {
		out = append(out, LinkStats{From: k.from, To: k.to, Messages: l.messages, Bytes: l.bytes})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Close shuts down every host.
func (n *Network) Close() error {
	n.mu.Lock()
	hosts := make([]*Host, 0, len(n.hosts))
	for _, h := range n.hosts {
		hosts = append(hosts, h)
	}
	n.closed = true
	n.mu.Unlock()
	for _, h := range hosts {
		_ = h.Close()
	}
	return nil
}

// profileFor returns the link profile between two hosts (loopback when
// equal). Callers hold n.mu.
func (n *Network) profileFor(from, to string) Profile {
	if from == to {
		return n.loopback
	}
	if p, ok := n.profiles[pairKey{from, to}]; ok {
		return p
	}
	return n.defaultProfile
}

// delivery is one in-flight message.
type delivery struct {
	from     string
	payload  []byte
	arriveAt time.Duration
}

// Host is a simulated machine: a virtual clock plus one in-order inbox
// per sending peer. A dispatcher goroutine per peer preserves the
// link's FIFO order while deliveries from different senders invoke the
// handler concurrently — the per-destination queue sharding that lets
// many agents use one host's firewall at once.
type Host struct {
	name  string
	net   *Network
	clock *vclock.Virtual

	peerMu sync.Mutex
	peers  map[string]chan delivery // per-source inboxes, by sender name

	handlerMu sync.RWMutex
	handler   func(from string, payload []byte)

	closeOnce sync.Once
	done      chan struct{}
}

var _ Node = (*Host)(nil)

// Addr returns the host name.
func (h *Host) Addr() string { return h.name }

// Clock returns the host's virtual clock.
func (h *Host) Clock() vclock.Clock { return h.clock }

// Charge advances the host's clock by a local computation cost.
func (h *Host) Charge(d time.Duration) { h.clock.Advance(d) }

// SetHandler installs the delivery callback.
func (h *Host) SetHandler(fn func(from string, payload []byte)) {
	h.handlerMu.Lock()
	defer h.handlerMu.Unlock()
	h.handler = fn
}

// Send transfers payload to the named host, charging the link's simulated
// cost: the transfer serializes on the directed link starting no earlier
// than the sender's current virtual time, and the receiver's clock
// advances to the arrival time. The sender's own clock advances past the
// serialization (the sending process is busy while its message is on the
// wire, as a blocking send is).
func (h *Host) Send(to string, payload []byte) error {
	_, err := h.SendTimed(to, payload)
	return err
}

// SendTimed is Send returning the virtual arrival time.
func (h *Host) SendTimed(to string, payload []byte) (time.Duration, error) {
	return h.sendTimed(to, payload, "", "", true)
}

// SendTraced is Send with trace context attached for fault attribution.
func (h *Host) SendTraced(to string, payload []byte, traceID, spanID string) error {
	_, err := h.sendTimed(to, payload, traceID, spanID, true)
	return err
}

// SendOwned is Send for payloads whose ownership passes to the network:
// the delivery aliases payload instead of taking the defensive copy Send
// makes, so the caller must not read or write payload after the call.
// The zero-copy relay path hands its delivery-private inbound buffer to
// the next link this way — one payload copy per link, made by the
// origin's Send, and none at relays. Simulated cost is identical to
// Send's.
func (h *Host) SendOwned(to string, payload []byte) error {
	_, err := h.sendTimed(to, payload, "", "", false)
	return err
}

var _ TracedNode = (*Host)(nil)

func (h *Host) sendTimed(to string, payload []byte, traceID, spanID string, copyPayload bool) (time.Duration, error) {
	select {
	case <-h.done:
		return 0, ErrClosed
	default:
	}

	n := h.net
	// Consult the fault injector before taking the network lock: the
	// injector may call back into Partition/Heal/Crash/Restart to apply
	// scheduled fault events as the sender's virtual time passes them.
	n.mu.Lock()
	inj := n.inj
	faultObs := n.faultObs
	n.mu.Unlock()
	var dec Decision
	decidedAt := h.clock.Now()
	if inj != nil && h.name != to {
		dec = inj.Decide(h.name, to, decidedAt, len(payload))
	}
	// observe reports each applied fault aspect once the transfer is known
	// to have reached the wire (decisions on sends that fail validation —
	// crashed peer, partition — never took effect and are not reported).
	observe := func() {
		if faultObs == nil {
			return
		}
		point := FaultPoint{From: h.name, To: to, Time: decidedAt, Trace: traceID, Span: spanID}
		if dec.Drop {
			p := point
			p.Kind = "drop"
			faultObs(p)
		}
		if dec.Duplicate {
			p := point
			p.Kind = "duplicate"
			faultObs(p)
		}
		if dec.Delay > 0 {
			p := point
			p.Kind = "delay"
			p.Detail = "by=" + dec.Delay.String()
			faultObs(p)
		}
		if dec.Corrupt {
			p := point
			p.Kind = "corrupt"
			faultObs(p)
		}
	}

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return 0, ErrClosed
	}
	dst, ok := n.hosts[to]
	if !ok {
		n.mu.Unlock()
		return 0, fmt.Errorf("%w: %q", ErrUnknownHost, to)
	}
	if n.crashed[h.name] || n.crashed[to] {
		down := to
		if n.crashed[h.name] {
			down = h.name
		}
		n.mu.Unlock()
		return 0, fmt.Errorf("%w: %s", ErrHostDown, down)
	}
	if n.partitioned[pairKey{h.name, to}] {
		n.mu.Unlock()
		return 0, fmt.Errorf("%w: %s <-> %s", ErrPartitioned, h.name, to)
	}
	key := pairKey{h.name, to}
	l, ok := n.links[key]
	if !ok {
		l = &link{profile: n.profileFor(h.name, to)}
		if n.tel != nil {
			l.ctrMsgs = n.tel.Registry().Counter("net.messages", "from", key.from, "to", key.to)
			l.ctrBytes = n.tel.Registry().Counter("net.bytes", "from", key.from, "to", key.to)
		}
		n.links[key] = l
	} else {
		// Profiles may be re-set between experiments; keep link current.
		l.profile = n.profileFor(h.name, to)
	}

	depart := h.clock.Now()
	start := depart
	if l.busyUntil > start {
		start = l.busyUntil
	}
	txEnd := start + l.profile.TransferTime(len(payload))
	l.busyUntil = txEnd
	arrive := txEnd + l.profile.Latency + dec.Delay
	l.messages++
	l.bytes += int64(len(payload))
	l.ctrMsgs.Inc()
	l.ctrBytes.Add(int64(len(payload)))
	hist := n.histTransfer
	tap := n.tap
	n.mu.Unlock()

	hist.Observe(arrive - depart)

	h.clock.AdvanceTo(txEnd)
	observe()
	if dec.Drop {
		// The link time was spent, but the message is lost in flight.
		return 0, fmt.Errorf("%w: %s -> %s", ErrDropped, h.name, to)
	}
	dst.clock.AdvanceTo(arrive)

	// Send gives the receiver a delivery-private copy; SendOwned was
	// handed ownership of payload and delivers it as-is. (A corrupting
	// fault may then mutate the owned buffer in place — the sender
	// relinquished it.)
	data := payload
	if copyPayload {
		data = append([]byte(nil), payload...)
	}
	if dec.Corrupt {
		corruptPayload(data)
	}
	if tap != nil {
		tap(h.name, to, data)
	}
	msg := delivery{from: h.name, payload: data, arriveAt: arrive}
	if err := dst.enqueue(msg); err != nil {
		return 0, err
	}
	if dec.Duplicate {
		dup := delivery{from: h.name, payload: append([]byte(nil), data...), arriveAt: arrive}
		if err := dst.enqueue(dup); err != nil {
			return 0, err
		}
	}
	return arrive, nil
}

// enqueue places one delivery on the inbox for its sending peer,
// creating the peer's queue and dispatcher on first contact.
func (h *Host) enqueue(msg delivery) error {
	h.peerMu.Lock()
	q, ok := h.peers[msg.from]
	if !ok {
		select {
		case <-h.done:
			h.peerMu.Unlock()
			return ErrClosed
		default:
		}
		q = make(chan delivery, 1024)
		h.peers[msg.from] = q
		go h.dispatch(q)
	}
	h.peerMu.Unlock()
	select {
	case q <- msg:
		return nil
	case <-h.done:
		return ErrClosed
	}
}

// corruptPayload flips fixed byte positions so damage is deterministic
// for a given payload: receivers see a frame that fails decoding or
// signature checks rather than a truncated one.
func corruptPayload(p []byte) {
	if len(p) == 0 {
		return
	}
	p[len(p)/2] ^= 0xA5
	p[len(p)-1] ^= 0x5A
}

// dispatch drains one peer's inbox, invoking the handler serially for
// that peer; other peers' dispatchers run concurrently.
func (h *Host) dispatch(q chan delivery) {
	for {
		select {
		case <-h.done:
			return
		case d := <-q:
			h.handlerMu.RLock()
			fn := h.handler
			h.handlerMu.RUnlock()
			if fn != nil {
				fn(d.from, d.payload)
			}
		}
	}
}

// Close stops the host's dispatchers. Pending undelivered messages are
// dropped, as they would be on a crashed machine.
func (h *Host) Close() error {
	h.closeOnce.Do(func() { close(h.done) })
	return nil
}
