package simnet

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestProfileTransferTime(t *testing.T) {
	p := Profile{Bandwidth: 1000, Latency: 10 * time.Millisecond, MsgOverhead: 5 * time.Millisecond}
	tests := []struct {
		size int
		want time.Duration
	}{
		{0, 5 * time.Millisecond},
		{1000, 5*time.Millisecond + time.Second},
		{500, 5*time.Millisecond + 500*time.Millisecond},
	}
	for _, tt := range tests {
		if got := p.TransferTime(tt.size); got != tt.want {
			t.Errorf("TransferTime(%d) = %v, want %v", tt.size, got, tt.want)
		}
	}
}

func TestProfileRoundTrip(t *testing.T) {
	p := Profile{Bandwidth: 1000, Latency: 10 * time.Millisecond, MsgOverhead: 0}
	// 100B request + 100B response: 2*latency + 2*(100/1000)s
	want := 20*time.Millisecond + 200*time.Millisecond
	if got := p.RoundTrip(100, 100); got != want {
		t.Errorf("RoundTrip = %v, want %v", got, want)
	}
}

func TestZeroBandwidthMeansInstant(t *testing.T) {
	p := Profile{Latency: time.Millisecond}
	if got := p.TransferTime(1 << 20); got != 0 {
		t.Errorf("zero-bandwidth transfer = %v, want 0", got)
	}
}

func newPair(t *testing.T, p Profile) (*Network, *Host, *Host) {
	t.Helper()
	n := New(p)
	t.Cleanup(func() { _ = n.Close() })
	a, err := n.AddHost("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.AddHost("b")
	if err != nil {
		t.Fatal(err)
	}
	return n, a, b
}

func TestSendChargesVirtualTime(t *testing.T) {
	p := Profile{Bandwidth: 1000, Latency: 100 * time.Millisecond, MsgOverhead: 10 * time.Millisecond}
	_, a, b := newPair(t, p)

	got := make(chan string, 1)
	b.SetHandler(func(from string, payload []byte) { got <- from + ":" + string(payload) })

	arrive, err := a.SendTimed("b", []byte("hello")) // 5 bytes
	if err != nil {
		t.Fatal(err)
	}
	// tx = 10ms + 5/1000 s = 15ms; arrive = 15ms + 100ms latency
	want := 115 * time.Millisecond
	if arrive != want {
		t.Errorf("arrive = %v, want %v", arrive, want)
	}
	// Sender is busy through serialization but not propagation.
	if a.Clock().Now() != 15*time.Millisecond {
		t.Errorf("sender clock = %v, want 15ms", a.Clock().Now())
	}
	if b.Clock().Now() != want {
		t.Errorf("receiver clock = %v, want %v", b.Clock().Now(), want)
	}
	select {
	case msg := <-got:
		if msg != "a:hello" {
			t.Errorf("delivered %q", msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("message never delivered")
	}
}

func TestLinkSerialization(t *testing.T) {
	// Two back-to-back sends must queue on the link: the second transfer
	// starts when the first ends.
	p := Profile{Bandwidth: 1000, Latency: 0, MsgOverhead: 0}
	_, a, b := newPair(t, p)
	b.SetHandler(func(string, []byte) {})

	t1, err := a.SendTimed("b", make([]byte, 500)) // 0.5s
	if err != nil {
		t.Fatal(err)
	}
	t2, err := a.SendTimed("b", make([]byte, 500)) // finishes at 1.0s
	if err != nil {
		t.Fatal(err)
	}
	if t1 != 500*time.Millisecond || t2 != time.Second {
		t.Errorf("arrivals %v, %v; want 500ms, 1s", t1, t2)
	}
}

func TestLoopbackProfileUsed(t *testing.T) {
	n := New(Profile{Bandwidth: 1, Latency: time.Hour}) // absurdly slow default
	t.Cleanup(func() { _ = n.Close() })
	a, err := n.AddHost("a")
	if err != nil {
		t.Fatal(err)
	}
	a.SetHandler(func(string, []byte) {})
	arrive, err := a.SendTimed("a", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if arrive > time.Millisecond {
		t.Errorf("loopback send took %v of virtual time", arrive)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n, a, b := newPair(t, LAN100)
	b.SetHandler(func(string, []byte) {})
	n.Partition("a", "b")
	if err := a.Send("b", []byte("x")); !errors.Is(err, ErrPartitioned) {
		t.Errorf("partitioned send err = %v", err)
	}
	if err := b.Send("a", []byte("x")); !errors.Is(err, ErrPartitioned) {
		t.Errorf("partition not symmetric: %v", err)
	}
	n.Heal("a", "b")
	if err := a.Send("b", []byte("x")); err != nil {
		t.Errorf("send after heal: %v", err)
	}
}

func TestUnknownHostAndDuplicate(t *testing.T) {
	n, a, _ := newPair(t, LAN100)
	if err := a.Send("ghost", nil); !errors.Is(err, ErrUnknownHost) {
		t.Errorf("unknown host err = %v", err)
	}
	if _, err := n.AddHost("a"); err == nil {
		t.Error("duplicate host accepted")
	}
	if _, err := n.AddHost(""); err == nil {
		t.Error("empty host name accepted")
	}
	if _, err := n.Host("ghost"); !errors.Is(err, ErrUnknownHost) {
		t.Errorf("Host(ghost) err = %v", err)
	}
	if h, err := n.Host("a"); err != nil || h != a {
		t.Errorf("Host(a) = %v, %v", h, err)
	}
}

func TestClosedHostRejectsSend(t *testing.T) {
	_, a, b := newPair(t, LAN100)
	_ = a.Close()
	if err := a.Send("b", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("send from closed host err = %v", err)
	}
	_ = b // b remains open; network close covered elsewhere
}

func TestNetworkCloseStopsAll(t *testing.T) {
	n, a, _ := newPair(t, LAN100)
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("send after network close err = %v", err)
	}
	if _, err := n.AddHost("c"); !errors.Is(err, ErrClosed) {
		t.Errorf("AddHost after close err = %v", err)
	}
}

func TestDeliveryOrderPerHost(t *testing.T) {
	_, a, b := newPair(t, LAN100)
	const count = 100
	var mu sync.Mutex
	var got []int
	done := make(chan struct{})
	b.SetHandler(func(_ string, payload []byte) {
		mu.Lock()
		got = append(got, int(payload[0])<<8|int(payload[1]))
		if len(got) == count {
			close(done)
		}
		mu.Unlock()
	})
	for i := 0; i < count; i++ {
		if err := a.Send("b", []byte{byte(i >> 8), byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("messages lost")
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %v", i, v)
		}
	}
}

func TestPayloadCopiedOnSend(t *testing.T) {
	_, a, b := newPair(t, LAN100)
	gotCh := make(chan []byte, 1)
	b.SetHandler(func(_ string, payload []byte) { gotCh <- payload })
	buf := []byte("original")
	if err := a.Send("b", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	select {
	case got := <-gotCh:
		if string(got) != "original" {
			t.Errorf("payload aliased sender buffer: %q", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery")
	}
}

func TestStatsAccumulate(t *testing.T) {
	n, a, b := newPair(t, LAN100)
	b.SetHandler(func(string, []byte) {})
	for i := 0; i < 3; i++ {
		if err := a.Send("b", make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	stats := n.Stats()
	if len(stats) != 1 {
		t.Fatalf("stats entries: %+v", stats)
	}
	s := stats[0]
	if s.From != "a" || s.To != "b" || s.Messages != 3 || s.Bytes != 300 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSetProfileTakesEffect(t *testing.T) {
	n, a, b := newPair(t, Profile{Bandwidth: 1e9})
	b.SetHandler(func(string, []byte) {})
	// Send once on the fast default, then slow the pair down.
	if _, err := a.SendTimed("b", make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	n.SetProfile("a", "b", Profile{Bandwidth: 100, Latency: 0, MsgOverhead: 0})
	before := a.Clock().Now()
	arrive, err := a.SendTimed("b", make([]byte, 100)) // 1s at 100 B/s
	if err != nil {
		t.Fatal(err)
	}
	if arrive-before != time.Second {
		t.Errorf("profile override ignored: took %v", arrive-before)
	}
}

func TestChargeAdvancesClock(t *testing.T) {
	_, a, _ := newPair(t, LAN100)
	a.Charge(3 * time.Second)
	if a.Clock().Now() != 3*time.Second {
		t.Errorf("Charge: %v", a.Clock().Now())
	}
}

// Property: transfer time is monotone in message size and bounded below
// by the fixed overhead.
func TestPropTransferTimeMonotone(t *testing.T) {
	f := func(s1, s2 uint16, bwSel uint8) bool {
		profiles := []Profile{Loopback, LAN100, WAN10, WAN2}
		p := profiles[int(bwSel)%len(profiles)]
		a, b := int(s1), int(s2)
		if a > b {
			a, b = b, a
		}
		ta, tb := p.TransferTime(a), p.TransferTime(b)
		return ta <= tb && ta >= p.MsgOverhead
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: on an idle link, arrival time = sender time + overhead +
// size/bandwidth + latency, for any size.
func TestPropArrivalFormula(t *testing.T) {
	f := func(size uint16) bool {
		n := New(LAN100)
		defer func() { _ = n.Close() }()
		a, err := n.AddHost("a")
		if err != nil {
			return false
		}
		b, err := n.AddHost("b")
		if err != nil {
			return false
		}
		b.SetHandler(func(string, []byte) {})
		arrive, err := a.SendTimed("b", make([]byte, int(size)))
		if err != nil {
			return false
		}
		want := LAN100.TransferTime(int(size)) + LAN100.Latency
		return arrive == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSendLAN(b *testing.B) {
	n := New(LAN100)
	defer func() { _ = n.Close() }()
	a, _ := n.AddHost("a")
	h, _ := n.AddHost("b")
	h.SetHandler(func(string, []byte) {})
	payload := make([]byte, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send("b", payload); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleProfile_TransferTime() {
	// 3 MB over the paper's 100 Mbit LAN.
	fmt.Println(LAN100.TransferTime(3 << 20).Round(time.Millisecond))
	// Output: 252ms
}
