package simnet

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func newTCPPair(t *testing.T) (*TCPNode, *TCPNode) {
	t.Helper()
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })
	return a, b
}

func TestTCPSendReceive(t *testing.T) {
	a, b := newTCPPair(t)
	got := make(chan string, 1)
	b.SetHandler(func(from string, payload []byte) {
		got <- from + "|" + string(payload)
	})
	if err := a.Send(b.Addr(), []byte("hello over tcp")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		want := a.Addr() + "|hello over tcp"
		if msg != want {
			t.Errorf("got %q, want %q", msg, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery")
	}
}

func TestTCPBidirectional(t *testing.T) {
	a, b := newTCPPair(t)
	fromB := make(chan []byte, 1)
	a.SetHandler(func(_ string, p []byte) { fromB <- p })
	b.SetHandler(func(from string, p []byte) {
		// Reply to the sender's listen address carried in the frame.
		_ = b.Send(from, append([]byte("re:"), p...))
	})
	if err := a.Send(b.Addr(), []byte("ping")); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-fromB:
		if string(p) != "re:ping" {
			t.Errorf("reply = %q", p)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no reply")
	}
}

func TestTCPManyMessagesOrdered(t *testing.T) {
	a, b := newTCPPair(t)
	const count = 200
	var mu sync.Mutex
	var got []byte
	done := make(chan struct{})
	b.SetHandler(func(_ string, p []byte) {
		mu.Lock()
		got = append(got, p[0])
		if len(got) == count {
			close(done)
		}
		mu.Unlock()
	})
	for i := 0; i < count; i++ {
		if err := a.Send(b.Addr(), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		mu.Lock()
		n := len(got)
		mu.Unlock()
		t.Fatalf("lost messages: got %d of %d", n, count)
	}
	for i, v := range got {
		if v != byte(i) {
			t.Fatalf("out of order at %d", i)
		}
	}
}

func TestTCPSendToDeadPeer(t *testing.T) {
	a, _ := newTCPPair(t)
	if err := a.Send("127.0.0.1:1", []byte("x")); !errors.Is(err, ErrUnknownHost) {
		t.Errorf("dead peer err = %v, want ErrUnknownHost", err)
	}
}

func TestTCPClosedNodeRejectsSend(t *testing.T) {
	a, b := newTCPPair(t)
	_ = a.Close()
	if err := a.Send(b.Addr(), []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close err = %v", err)
	}
	// Close is idempotent.
	if err := a.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestTCPLargePayload(t *testing.T) {
	a, b := newTCPPair(t)
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i)
	}
	got := make(chan []byte, 1)
	b.SetHandler(func(_ string, p []byte) { got <- p })
	if err := a.Send(b.Addr(), payload); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if len(p) != len(payload) {
			t.Fatalf("size %d, want %d", len(p), len(payload))
		}
		for i := 0; i < len(p); i += 4099 {
			if p[i] != payload[i] {
				t.Fatalf("corruption at %d", i)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no delivery")
	}
}

func TestFrameCodec(t *testing.T) {
	frame := encodeFrame("1.2.3.4:99", []byte("payload"))
	from, payload, err := readFrame(bytesReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if from != "1.2.3.4:99" || string(payload) != "payload" {
		t.Errorf("decoded %q %q", from, payload)
	}
	// Truncated frames error rather than hang or panic.
	for cut := 1; cut < len(frame); cut++ {
		if _, _, err := readFrame(bytesReader(frame[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

type sliceReader struct {
	data []byte
	off  int
}

func bytesReader(b []byte) *sliceReader { return &sliceReader{data: b} }

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, errEOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

var errEOF = errors.New("eof")
