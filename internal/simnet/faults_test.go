package simnet

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

// fixedInjector returns the same decision for every transfer.
type fixedInjector struct{ dec Decision }

func (f fixedInjector) Decide(from, to string, now time.Duration, size int) Decision {
	return f.dec
}

// collector records deliveries on a host.
type collector struct {
	mu   sync.Mutex
	msgs [][]byte
	got  chan struct{}
}

func newCollector(h *Host) *collector {
	c := &collector{got: make(chan struct{}, 64)}
	h.SetHandler(func(_ string, payload []byte) {
		c.mu.Lock()
		c.msgs = append(c.msgs, append([]byte(nil), payload...))
		c.mu.Unlock()
		c.got <- struct{}{}
	})
	return c
}

func (c *collector) wait(t *testing.T, n int) [][]byte {
	t.Helper()
	for i := 0; i < n; i++ {
		select {
		case <-c.got:
		case <-time.After(2 * time.Second):
			t.Fatalf("delivery %d/%d never arrived", i+1, n)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([][]byte(nil), c.msgs...)
}

// TestPartitionEdges covers the topology-fault edge cases table-style:
// self-partition, unknown hosts, double partition and double heal must
// all be safe no-ops with the documented semantics.
func TestPartitionEdges(t *testing.T) {
	tests := []struct {
		name  string
		apply func(n *Network)
		// wantCut is whether a→b is cut after apply.
		wantCut bool
	}{
		{"self partition is a no-op", func(n *Network) { n.Partition("a", "a") }, false},
		{"partition cuts both directions", func(n *Network) { n.Partition("a", "b") }, true},
		{"double partition is idempotent", func(n *Network) { n.Partition("a", "b"); n.Partition("b", "a") }, true},
		{"heal restores", func(n *Network) { n.Partition("a", "b"); n.Heal("a", "b") }, false},
		{"double heal is safe", func(n *Network) { n.Partition("a", "b"); n.Heal("a", "b"); n.Heal("a", "b") }, false},
		{"heal of never-partitioned pair is safe", func(n *Network) { n.Heal("a", "b") }, false},
		{"partition of unknown host only cuts that name", func(n *Network) { n.Partition("a", "ghost") }, false},
		{"heal of unknown host is safe", func(n *Network) { n.Heal("ghost", "phantom") }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			n, a, b := newPair(t, LAN100)
			b.SetHandler(func(string, []byte) {})
			tt.apply(n)
			err := a.Send("b", []byte("x"))
			if tt.wantCut {
				if !errors.Is(err, ErrPartitioned) {
					t.Errorf("send err = %v, want ErrPartitioned", err)
				}
				if !n.Partitioned("a", "b") || !n.Partitioned("b", "a") {
					t.Error("Partitioned() not symmetric")
				}
			} else {
				if err != nil {
					t.Errorf("send err = %v, want nil", err)
				}
				if n.Partitioned("a", "b") {
					t.Error("Partitioned(a,b) = true, want false")
				}
			}
		})
	}
	t.Run("self send unaffected by self partition", func(t *testing.T) {
		n, a, _ := newPair(t, LAN100)
		a.SetHandler(func(string, []byte) {})
		n.Partition("a", "a")
		if n.Partitioned("a", "a") {
			t.Error("self pair marked partitioned")
		}
		if err := a.Send("a", []byte("loop")); err != nil {
			t.Errorf("loopback send: %v", err)
		}
	})
}

// TestCrashAndRestart: a crashed host's transport fails in both
// directions with ErrHostDown, its undelivered inbox is discarded, and a
// restart restores connectivity with an empty inbox.
func TestCrashAndRestart(t *testing.T) {
	n, a, b := newPair(t, LAN100)
	cb := newCollector(b)

	if n.Crashed("b") {
		t.Fatal("fresh host reports crashed")
	}
	n.Crash("b")
	if !n.Crashed("b") {
		t.Fatal("Crashed(b) = false after Crash")
	}
	if err := a.Send("b", []byte("to-down")); !errors.Is(err, ErrHostDown) {
		t.Errorf("send to crashed host err = %v, want ErrHostDown", err)
	}
	if err := b.Send("a", []byte("from-down")); !errors.Is(err, ErrHostDown) {
		t.Errorf("send from crashed host err = %v, want ErrHostDown", err)
	}
	// Idempotent edges: double crash, crash of unknown host.
	n.Crash("b")
	n.Crash("ghost")
	if n.Crashed("ghost") {
		t.Error("unknown host reports crashed")
	}

	n.Restart("b")
	n.Restart("b") // double restart is safe
	if n.Crashed("b") {
		t.Error("Crashed(b) = true after Restart")
	}
	if err := a.Send("b", []byte("back")); err != nil {
		t.Fatalf("send after restart: %v", err)
	}
	got := cb.wait(t, 1)
	if string(got[len(got)-1]) != "back" {
		t.Errorf("post-restart delivery = %q", got[len(got)-1])
	}
}

// TestCrashDiscardsQueuedInbox: messages sitting in a host's inbox when
// it crashes are lost, like RAM on power failure.
func TestCrashDiscardsQueuedInbox(t *testing.T) {
	n, a, b := newPair(t, LAN100)
	// No handler: deliveries pile up in the queue until one is set.
	// Stop the dispatcher from consuming by crashing right after send.
	if err := a.Send("b", []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	n.Crash("b")
	n.Restart("b")
	cb := newCollector(b)
	if err := a.Send("b", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	got := cb.wait(t, 1)
	// Only "fresh" must arrive; "doomed" may or may not have been
	// dispatched before the crash drained the queue (the dispatcher
	// races the crash), but it must not arrive after the restart.
	if string(got[len(got)-1]) != "fresh" {
		t.Errorf("first post-restart delivery = %q, want fresh", got[len(got)-1])
	}
}

// TestInjectorDecisions drives each Decision field through a real
// transfer and asserts its observable effect.
func TestInjectorDecisions(t *testing.T) {
	payload := []byte("the quick brown fox")

	t.Run("pass-through", func(t *testing.T) {
		n, a, b := newPair(t, LAN100)
		n.SetInjector(fixedInjector{})
		cb := newCollector(b)
		if err := a.Send("b", payload); err != nil {
			t.Fatal(err)
		}
		got := cb.wait(t, 1)
		if !bytes.Equal(got[0], payload) {
			t.Errorf("payload mangled: %q", got[0])
		}
	})

	t.Run("drop returns typed error and charges the link", func(t *testing.T) {
		n, a, b := newPair(t, LAN100)
		n.SetInjector(fixedInjector{dec: Decision{Drop: true}})
		cb := newCollector(b)
		before := a.Clock().Now()
		err := a.Send("b", payload)
		if !errors.Is(err, ErrDropped) {
			t.Fatalf("err = %v, want ErrDropped", err)
		}
		if a.Clock().Now() <= before {
			t.Error("dropped send did not charge the sender's clock")
		}
		select {
		case <-cb.got:
			t.Error("dropped message was delivered")
		case <-time.After(50 * time.Millisecond):
		}
	})

	t.Run("duplicate delivers twice", func(t *testing.T) {
		n, a, b := newPair(t, LAN100)
		n.SetInjector(fixedInjector{dec: Decision{Duplicate: true}})
		cb := newCollector(b)
		if err := a.Send("b", payload); err != nil {
			t.Fatal(err)
		}
		got := cb.wait(t, 2)
		if !bytes.Equal(got[0], payload) || !bytes.Equal(got[1], payload) {
			t.Errorf("duplicate deliveries differ: %q %q", got[0], got[1])
		}
	})

	t.Run("delay pushes arrival by exactly the injected jitter", func(t *testing.T) {
		const jitter = 7 * time.Millisecond
		n, a, _ := newPair(t, LAN100)
		base, err := a.SendTimed("b", payload)
		if err != nil {
			t.Fatal(err)
		}
		n.SetInjector(fixedInjector{dec: Decision{Delay: jitter}})
		delayed, err := a.SendTimed("b", payload)
		if err != nil {
			t.Fatal(err)
		}
		// The second transfer serializes right after the first: without
		// jitter it would arrive exactly one transfer-time later.
		tx := LAN100.TransferTime(len(payload))
		if want := base + tx + jitter; delayed != want {
			t.Errorf("delayed arrival = %v, want %v (base %v + tx %v + jitter %v)",
				delayed, want, base, tx, jitter)
		}
	})

	t.Run("corrupt flips deterministic bytes", func(t *testing.T) {
		n, a, b := newPair(t, LAN100)
		n.SetInjector(fixedInjector{dec: Decision{Corrupt: true}})
		cb := newCollector(b)
		if err := a.Send("b", payload); err != nil {
			t.Fatal(err)
		}
		got := cb.wait(t, 1)
		if bytes.Equal(got[0], payload) {
			t.Error("corrupted payload arrived intact")
		}
		want := append([]byte(nil), payload...)
		want[len(want)/2] ^= 0xA5
		want[len(want)-1] ^= 0x5A
		if !bytes.Equal(got[0], want) {
			t.Errorf("corruption not deterministic: got %q want %q", got[0], want)
		}
		// The sender's copy must be untouched (payload is copied).
		if payload[len(payload)-1] != byte("the quick brown fox"[len(payload)-1]) {
			t.Error("sender's payload mutated")
		}
	})

	t.Run("loopback bypasses the injector", func(t *testing.T) {
		n, a, _ := newPair(t, LAN100)
		n.SetInjector(fixedInjector{dec: Decision{Drop: true}})
		ca := newCollector(a)
		if err := a.Send("a", payload); err != nil {
			t.Fatalf("loopback send under drop-all injector: %v", err)
		}
		got := ca.wait(t, 1)
		if !bytes.Equal(got[0], payload) {
			t.Errorf("loopback payload mangled: %q", got[0])
		}
	})
}

// TestTransferTimeBoundaries pins the cost-model edges table-style.
func TestTransferTimeBoundaries(t *testing.T) {
	tests := []struct {
		name string
		p    Profile
		size int
		want time.Duration
	}{
		{"zero size pays only overhead", Profile{Bandwidth: 1000, MsgOverhead: 3 * time.Millisecond}, 0, 3 * time.Millisecond},
		{"zero bandwidth is instant", Profile{Latency: time.Millisecond}, 1 << 20, 0},
		{"zero everything is free", Profile{}, 0, 0},
		{"zero bandwidth keeps overhead", Profile{MsgOverhead: time.Millisecond}, 4096, time.Millisecond},
		{"bandwidth scales linearly", Profile{Bandwidth: 1 << 20}, 1 << 20, time.Second},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.TransferTime(tt.size); got != tt.want {
				t.Errorf("TransferTime(%d) = %v, want %v", tt.size, got, tt.want)
			}
		})
	}
}
