package simnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// maxFrame bounds the size of a single TCP frame (64 MiB), matching the
// briefcase decode limits.
const maxFrame = 1 << 26

// TCPNode implements Node over real TCP sockets with length-prefixed
// frames. It backs cmd/taxd, letting several OS processes run TAX nodes
// that agents migrate between. Peers are addressed by "host:port".
//
// Connections are opened lazily per peer and reused; inbound connections
// are served until EOF. The frame format is:
//
//	addrLen uint16 | senderAddr bytes | payloadLen uint32 | payload
type TCPNode struct {
	addr     string
	listener net.Listener

	handlerMu sync.RWMutex
	handler   func(from string, payload []byte)

	connMu  sync.Mutex
	conns   map[string]net.Conn
	inbound map[net.Conn]bool

	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

var _ Node = (*TCPNode)(nil)

// ListenTCP starts a node listening on addr ("host:port"; ":0" picks a
// free port — read the effective address back with Addr).
func ListenTCP(addr string) (*TCPNode, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("simnet: listen %s: %w", addr, err)
	}
	n := &TCPNode{
		addr:     l.Addr().String(),
		listener: l,
		conns:    make(map[string]net.Conn),
		inbound:  make(map[net.Conn]bool),
		done:     make(chan struct{}),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's listen address.
func (n *TCPNode) Addr() string { return n.addr }

// SetHandler installs the delivery callback.
func (n *TCPNode) SetHandler(h func(from string, payload []byte)) {
	n.handlerMu.Lock()
	defer n.handlerMu.Unlock()
	n.handler = h
}

// Send delivers payload to the peer listening at to ("host:port").
func (n *TCPNode) Send(to string, payload []byte) error {
	select {
	case <-n.done:
		return ErrClosed
	default:
	}
	conn, err := n.conn(to)
	if err != nil {
		return err
	}
	frame := encodeFrame(n.addr, payload)
	if _, err := conn.Write(frame); err != nil {
		// Drop the cached connection; a retry will redial.
		n.dropConn(to, conn)
		return fmt.Errorf("simnet: send to %s: %w", to, err)
	}
	return nil
}

func (n *TCPNode) conn(to string) (net.Conn, error) {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	if c, ok := n.conns[to]; ok {
		return c, nil
	}
	c, err := net.Dial("tcp", to)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrUnknownHost, to, err)
	}
	n.conns[to] = c
	return c, nil
}

func (n *TCPNode) dropConn(to string, c net.Conn) {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	if n.conns[to] == c {
		delete(n.conns, to)
	}
	_ = c.Close()
}

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.listener.Accept()
		if err != nil {
			select {
			case <-n.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		n.wg.Add(1)
		go n.serve(c)
	}
}

func (n *TCPNode) serve(c net.Conn) {
	defer n.wg.Done()
	n.connMu.Lock()
	n.inbound[c] = true
	n.connMu.Unlock()
	defer func() {
		n.connMu.Lock()
		delete(n.inbound, c)
		n.connMu.Unlock()
		_ = c.Close()
	}()
	for {
		from, payload, err := readFrame(c)
		if err != nil {
			return
		}
		n.handlerMu.RLock()
		h := n.handler
		n.handlerMu.RUnlock()
		if h != nil {
			h(from, payload)
		}
		select {
		case <-n.done:
			return
		default:
		}
	}
}

// Close stops the listener and all connections, then waits for serving
// goroutines to exit.
func (n *TCPNode) Close() error {
	n.closeOnce.Do(func() {
		close(n.done)
		_ = n.listener.Close()
		n.connMu.Lock()
		for _, c := range n.conns {
			_ = c.Close()
		}
		n.conns = map[string]net.Conn{}
		// Inbound connections must be closed too, or serve goroutines
		// stay blocked reading live peers and Close never returns.
		for c := range n.inbound {
			_ = c.Close()
		}
		n.connMu.Unlock()
	})
	n.wg.Wait()
	return nil
}

func encodeFrame(sender string, payload []byte) []byte {
	frame := make([]byte, 0, 2+len(sender)+4+len(payload))
	frame = binary.BigEndian.AppendUint16(frame, uint16(len(sender)))
	frame = append(frame, sender...)
	frame = binary.BigEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	return frame
}

func readFrame(r io.Reader) (string, []byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:2]); err != nil {
		return "", nil, err
	}
	addrLen := binary.BigEndian.Uint16(lenBuf[:2])
	addr := make([]byte, addrLen)
	if _, err := io.ReadFull(r, addr); err != nil {
		return "", nil, err
	}
	if _, err := io.ReadFull(r, lenBuf[:4]); err != nil {
		return "", nil, err
	}
	payloadLen := binary.BigEndian.Uint32(lenBuf[:4])
	if payloadLen > maxFrame {
		return "", nil, fmt.Errorf("simnet: frame of %d bytes exceeds limit", payloadLen)
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return "", nil, err
	}
	return string(addr), payload, nil
}
