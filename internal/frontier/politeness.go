package frontier

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// Limiter enforces a per-site politeness delay on the virtual clock:
// two fetches against the same host start at least Delay apart,
// whichever workers issue them. Reserve hands back how long the caller
// must advance its clock before fetching — the wait is charged to the
// worker's clock, never folded into the recorded fetch cost, so
// politeness shapes the modeled schedule without perturbing the
// deterministic per-URL costs.
type Limiter struct {
	mu    sync.Mutex
	delay time.Duration
	next  map[string]time.Duration // host → earliest next fetch start (virtual)
}

// NewLimiter returns a limiter with the given per-site delay; a zero
// or negative delay disables waiting.
func NewLimiter(delay time.Duration) *Limiter {
	return &Limiter{delay: delay, next: make(map[string]time.Duration)}
}

// Reserve books a fetch slot against host for a worker whose virtual
// clock reads now, returning the wait the worker owes before fetching.
func (l *Limiter) Reserve(host string, now time.Duration) time.Duration {
	if l == nil || l.delay <= 0 {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	start := now
	if nxt, ok := l.next[host]; ok && nxt > start {
		start = nxt
	}
	l.next[host] = start + l.delay
	return start - now
}

// HostOf extracts the host part of a URL ("http://host/path" → "host").
// URLs without a scheme separator hash as themselves.
func HostOf(url string) string {
	rest := url
	if i := strings.Index(url, "://"); i >= 0 {
		rest = url[i+3:]
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// ModelMakespan computes the virtual-clock makespan of fetching every
// record with the given worker count and per-site politeness delay:
// records are dispatched in canonical (depth, URL) order to the
// least-loaded worker, each fetch starting no earlier than the host's
// politeness slot and paying its recorded FetchCost. A pure function
// of the record set, so reruns are byte-identical — this is the
// schedule model behind BENCH_frontier's workers × politeness grid.
func ModelMakespan(recs []*PageRecord, workers int, delay time.Duration) time.Duration {
	if workers < 1 {
		workers = 1
	}
	order := make([]*PageRecord, len(recs))
	copy(order, recs)
	sort.Slice(order, func(i, j int) bool {
		if order[i].Depth != order[j].Depth {
			return order[i].Depth < order[j].Depth
		}
		return order[i].URL < order[j].URL
	})
	free := make([]time.Duration, workers) // per-worker next-free time
	next := make(map[string]time.Duration) // per-host politeness slot
	var makespan time.Duration
	for _, r := range order {
		w := 0
		for i := 1; i < workers; i++ {
			if free[i] < free[w] {
				w = i
			}
		}
		start := free[w]
		host := HostOf(r.URL)
		if delay > 0 {
			if nxt, ok := next[host]; ok && nxt > start {
				start = nxt
			}
			next[host] = start + delay
		}
		end := start + r.FetchCost
		free[w] = end
		if end > makespan {
			makespan = end
		}
	}
	return makespan
}
