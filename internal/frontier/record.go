package frontier

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Link is a discovered URL on its way into the frontier: where it
// points, which page referred to it, and the crawl depth it would be
// fetched at. Depth participates in priority — the frontier always
// hands out the shallowest pending URL next, so a staged crawl expands
// the same breadth-first wavefront on every run.
type Link struct {
	URL      string
	Referrer string
	Depth    int
}

// PageRecord is the durable result of fetching one URL: everything the
// canonical replay needs to reproduce the serial crawl's Stats without
// touching the network again. FetchCost is the virtual time the fetch
// cost on a private clock — politeness waits are excluded, so the cost
// is a pure function of the URL and the link profile, independent of
// worker count or scheduling.
type PageRecord struct {
	URL         string
	Referrer    string
	Depth       int
	Status      int
	Bytes       int           // response body bytes (for client accounting)
	Type        string        // content type of OK pages; "" when the response had no page
	AgeDays     int
	FetchCost   time.Duration // virtual fetch time on a private clock, politeness excluded
	Digest      string        // cheap change detector: "status|size|age"
	Revalidated bool          // true when an unchanged prior record was reused via a HEAD probe
	Links       []Link        // out-links as parsed (Depth field unused; derived as Depth+1)
}

const recordVersion = 1

// Encode serializes the record for a cabinet value.
func (r *PageRecord) Encode() []byte {
	b := make([]byte, 0, 64+len(r.URL)+len(r.Referrer)+24*len(r.Links))
	b = append(b, recordVersion)
	b = appendString(b, r.URL)
	b = appendString(b, r.Referrer)
	b = binary.AppendUvarint(b, uint64(r.Depth))
	b = binary.AppendUvarint(b, uint64(r.Status))
	b = binary.AppendUvarint(b, uint64(r.Bytes))
	b = appendString(b, r.Type)
	b = binary.AppendUvarint(b, uint64(r.AgeDays))
	b = binary.AppendUvarint(b, uint64(r.FetchCost))
	b = appendString(b, r.Digest)
	if r.Revalidated {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(len(r.Links)))
	for _, l := range r.Links {
		b = appendString(b, l.URL)
		b = appendString(b, l.Referrer)
	}
	return b
}

// DecodeRecord parses a record previously produced by Encode.
func DecodeRecord(b []byte) (*PageRecord, error) {
	d := &decoder{b: b}
	if v := d.byte(); v != recordVersion {
		return nil, fmt.Errorf("frontier: record version %d (want %d)", v, recordVersion)
	}
	r := &PageRecord{
		URL:      d.str(),
		Referrer: d.str(),
		Depth:    int(d.uvarint()),
		Status:   int(d.uvarint()),
		Bytes:    int(d.uvarint()),
		Type:     d.str(),
		AgeDays:  int(d.uvarint()),
	}
	r.FetchCost = time.Duration(d.uvarint())
	r.Digest = d.str()
	r.Revalidated = d.byte() == 1
	n := d.uvarint()
	if d.err == nil && n > uint64(len(d.b))/2 {
		return nil, fmt.Errorf("frontier: record claims %d links in %d bytes", n, len(d.b))
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		r.Links = append(r.Links, Link{URL: d.str(), Referrer: d.str()})
	}
	if d.err != nil {
		return nil, fmt.Errorf("frontier: bad record: %w", d.err)
	}
	return r, nil
}

// Failure is one entry in the failure journal: a URL the crawl could
// not (or chose not to) fetch, with the typed error code that names
// why. Terminal entries keep the URL out of the frontier; non-final
// entries record retry attempts for post-mortems and second passes.
type Failure struct {
	URL      string
	Referrer string
	Depth    int
	Attempts int
	Code     string // typed error code, e.g. "wb_fetch_failed", "wb_depth_unstable"
	Reason   string
	Final    bool
}

func (f *Failure) encode() []byte {
	b := make([]byte, 0, 32+len(f.URL)+len(f.Referrer)+len(f.Reason))
	b = append(b, recordVersion)
	b = appendString(b, f.URL)
	b = appendString(b, f.Referrer)
	b = binary.AppendUvarint(b, uint64(f.Depth))
	b = binary.AppendUvarint(b, uint64(f.Attempts))
	b = appendString(b, f.Code)
	b = appendString(b, f.Reason)
	if f.Final {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return b
}

func decodeFailure(b []byte) (*Failure, error) {
	d := &decoder{b: b}
	if v := d.byte(); v != recordVersion {
		return nil, fmt.Errorf("frontier: failure version %d (want %d)", v, recordVersion)
	}
	f := &Failure{
		URL:      d.str(),
		Referrer: d.str(),
		Depth:    int(d.uvarint()),
		Attempts: int(d.uvarint()),
		Code:     d.str(),
		Reason:   d.str(),
	}
	f.Final = d.byte() == 1
	if d.err != nil {
		return nil, fmt.Errorf("frontier: bad failure: %w", d.err)
	}
	return f, nil
}

// entry is a pending or claimed URL's durable state.
type entry struct {
	url      string
	referrer string
	depth    int
	attempts int
	worker   string // set only while claimed
	index    int    // heap position while pending
}

func (e *entry) encode() []byte {
	b := make([]byte, 0, 24+len(e.url)+len(e.referrer)+len(e.worker))
	b = append(b, recordVersion)
	b = appendString(b, e.url)
	b = appendString(b, e.referrer)
	b = binary.AppendUvarint(b, uint64(e.depth))
	b = binary.AppendUvarint(b, uint64(e.attempts))
	b = appendString(b, e.worker)
	return b
}

func decodeEntry(b []byte) (*entry, error) {
	d := &decoder{b: b}
	if v := d.byte(); v != recordVersion {
		return nil, fmt.Errorf("frontier: entry version %d (want %d)", v, recordVersion)
	}
	e := &entry{
		url:      d.str(),
		referrer: d.str(),
		depth:    int(d.uvarint()),
		attempts: int(d.uvarint()),
		worker:   d.str(),
	}
	if d.err != nil {
		return nil, fmt.Errorf("frontier: bad entry: %w", d.err)
	}
	return e, nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

type decoder struct {
	b   []byte
	err error
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.err = fmt.Errorf("truncated")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.err = fmt.Errorf("truncated uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.err = fmt.Errorf("truncated string of %d bytes", n)
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}
