// Package frontier implements the durable, prioritized URL frontier at
// the heart of the staged crawler (PR 10): the paper's recursive Webbot
// becomes frontier + fetcher + parser stages, which is what lets N
// mobile agents mine one site exactly-once and lets a crawl resume
// across host crashes.
//
// The frontier is a priority queue of pending URLs (shallowest depth
// first, URL order breaking ties — a deterministic breadth-first
// wavefront) with three durable state transitions, each one synced WAL
// transaction on the PR 4 cabinet:
//
//	Add       →  put p/<url>                (pending)
//	Claim     →  del p/<url>, put c/<url>   (claimed, tagged with the worker)
//	Complete  →  del c/<url>, put d/<url>   (done: the PageRecord)
//	Fail      →  del c/<url>, put p/ or f/  (re-pend, or journal terminally)
//
// Because a claim is journaled before the worker sees it, a worker that
// re-asks after a lost reply gets the same URL back (claims are keyed
// by worker), and a frontier host that crashes recovers every claim
// from the WAL — no URL is ever handed to two workers and none is
// lost. Complete is idempotent by done-key, so retried completions are
// counted, not double-applied. Exactly-once per URL follows from the
// store's atomicity, not from timing.
package frontier

import (
	"container/heap"
	"errors"
	"sort"
	"strings"
	"sync"

	"tax/internal/cabinet"
)

// Options configures a Frontier.
type Options struct {
	// Store is the cabinet backing durable state. Nil means a purely
	// in-memory frontier (single-process crawls that don't need crash
	// recovery).
	Store *cabinet.Store
	// Namespace prefixes every cabinet key; default "fr/". Keeps the
	// frontier's keys disjoint from the checkpoint ("cab/") and
	// firewall ("fwpark/", "fwdedup/") planes sharing the store.
	Namespace string
	// MaxAttempts bounds retries per URL before a failure turns
	// terminal; default 3.
	MaxAttempts int
	// AdoptClaims controls what recovery does with claims found in the
	// store. A process that owns its workers (a local crawl resuming
	// after a crash) sets it true: the claiming workers are gone, so
	// claims are re-pended. A frontier *service* leaves it false: its
	// remote workers survive the frontier host's crash, keep their
	// claims, and complete them after restart.
	AdoptClaims bool
}

// WaitState is what ClaimWait resolved to.
type WaitState int

const (
	// WaitClaimed: a claim was issued.
	WaitClaimed WaitState = iota
	// WaitDrained: no pending and no outstanding claims — the crawl is
	// complete.
	WaitDrained
	// WaitClosed: the frontier was shut down.
	WaitClosed
)

// Claim is a URL leased to one worker until completed or failed.
type Claim struct {
	URL      string
	Referrer string
	Depth    int
	Attempts int
	// Prior is the previous crawl cycle's record for this URL, if
	// BeginRecrawl staged one — the worker may revalidate with a HEAD
	// probe instead of refetching.
	Prior *PageRecord
}

// Counts is a snapshot of frontier state for reports and invariants.
type Counts struct {
	Pending        int
	Claimed        int
	Done           int
	TerminalFailed int
	Journal        int // failure-journal entries, including non-final retry attempts
	DupCompletions int // idempotent re-completions absorbed
	Reclaims       int // claims re-issued to the same worker after a lost reply
}

// Frontier is safe for concurrent use by any number of workers.
type Frontier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	store  *cabinet.Store
	ns     string
	maxTry int
	closed bool

	pending  map[string]*entry // url → pending entry (also in heap)
	claims   map[string]*entry // url → claimed entry (worker set)
	byWorker map[string]string // worker → claimed url, for re-issue
	done     map[string]*PageRecord
	prior    map[string]*PageRecord // previous cycle's records (recrawl)
	failed   map[string]*Failure    // terminal failures only
	journal  int                    // total journal entries written
	heap     entryHeap

	dups     int
	reclaims int
}

// New opens a frontier, recovering any durable state in the store's
// namespace.
func New(opts Options) (*Frontier, error) {
	f := &Frontier{
		store:    opts.Store,
		ns:       opts.Namespace,
		maxTry:   opts.MaxAttempts,
		pending:  make(map[string]*entry),
		claims:   make(map[string]*entry),
		byWorker: make(map[string]string),
		done:     make(map[string]*PageRecord),
		prior:    make(map[string]*PageRecord),
		failed:   make(map[string]*Failure),
	}
	f.cond = sync.NewCond(&f.mu)
	if f.ns == "" {
		f.ns = "fr/"
	}
	if f.maxTry <= 0 {
		f.maxTry = 3
	}
	if f.store == nil {
		return f, nil
	}
	var adopt []*entry
	for _, key := range f.store.Keys(f.ns) {
		val, ok := f.store.Get(key)
		if !ok {
			continue
		}
		switch kind, _ := splitKey(f.ns, key); kind {
		case "p":
			e, err := decodeEntry(val)
			if err != nil {
				return nil, err
			}
			f.pending[e.url] = e
			heap.Push(&f.heap, e)
		case "c":
			e, err := decodeEntry(val)
			if err != nil {
				return nil, err
			}
			if opts.AdoptClaims {
				adopt = append(adopt, e)
			} else {
				f.claims[e.url] = e
				if e.worker != "" {
					f.byWorker[e.worker] = e.url
				}
			}
		case "d":
			r, err := DecodeRecord(val)
			if err != nil {
				return nil, err
			}
			f.done[r.URL] = r
		case "r":
			r, err := DecodeRecord(val)
			if err != nil {
				return nil, err
			}
			f.prior[r.URL] = r
		case "f":
			fl, err := decodeFailure(val)
			if err != nil {
				return nil, err
			}
			f.journal++
			if fl.Final {
				f.failed[fl.URL] = fl
			}
		}
	}
	// Orphaned claims from a crashed crawl whose workers died with it:
	// fold them back into pending so the resumed crawl refetches them.
	// The durable move keeps a second recovery consistent.
	for _, e := range adopt {
		e.worker = ""
		if err := f.commit([]cabinet.Op{
			{Del: true, Key: f.ns + "c/" + e.url},
			{Key: f.ns + "p/" + e.url, Value: e.encode()},
		}); err != nil {
			return nil, err
		}
		f.pending[e.url] = e
		heap.Push(&f.heap, e)
	}
	return f, nil
}

func splitKey(ns, key string) (kind, url string) {
	rest := strings.TrimPrefix(key, ns)
	i := strings.IndexByte(rest, '/')
	if i < 0 {
		return rest, ""
	}
	return rest[:i], rest[i+1:]
}

func (f *Frontier) commit(ops []cabinet.Op) error {
	if f.store == nil {
		return nil
	}
	return f.store.Commit(ops)
}

// Add offers discovered links to the frontier. Links already done,
// claimed, pending, or terminally failed are not re-enqueued; fresh is
// the number of genuinely new URLs. A link that re-discovers a *done*
// URL at a strictly shallower depth lowers the record's depth and
// returns it in lowered — the caller must re-offer that record's
// out-links at the new depth, mirroring the recursive crawl's
// best-depth relaxation.
func (f *Frontier) Add(links []Link) (fresh int, lowered []*PageRecord, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, nil, errors.New("frontier: closed")
	}
	var ops []cabinet.Op
	for _, l := range links {
		if e, ok := f.pending[l.URL]; ok {
			if l.Depth < e.depth {
				e.depth = l.Depth
				e.referrer = l.Referrer
				heap.Fix(&f.heap, e.index)
				ops = append(ops, cabinet.Op{Key: f.ns + "p/" + e.url, Value: e.encode()})
			}
			continue
		}
		if e, ok := f.claims[l.URL]; ok {
			if l.Depth < e.depth {
				e.depth = l.Depth
				ops = append(ops, cabinet.Op{Key: f.ns + "c/" + e.url, Value: e.encode()})
			}
			continue
		}
		if rec, ok := f.done[l.URL]; ok {
			if l.Depth < rec.Depth {
				rec.Depth = l.Depth
				ops = append(ops, cabinet.Op{Key: f.ns + "d/" + rec.URL, Value: rec.Encode()})
				lowered = append(lowered, rec)
			}
			continue
		}
		if _, ok := f.failed[l.URL]; ok {
			continue
		}
		e := &entry{url: l.URL, referrer: l.Referrer, depth: l.Depth}
		f.pending[l.URL] = e
		heap.Push(&f.heap, e)
		ops = append(ops, cabinet.Op{Key: f.ns + "p/" + e.url, Value: e.encode()})
		fresh++
	}
	if len(ops) > 0 {
		if err := f.commit(ops); err != nil {
			return fresh, lowered, err
		}
	}
	if fresh > 0 || len(lowered) > 0 {
		f.cond.Broadcast()
	}
	return fresh, lowered, nil
}

// Claim leases the shallowest pending URL to worker. If the worker
// already holds an unresolved claim — its previous claim reply was
// lost, or it is retrying after a frontier restart — that same claim
// is re-issued rather than a new one, which is what keeps a lossy
// network from double-fetching a URL.
func (f *Frontier) Claim(worker string) (*Claim, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cl, ok, _ := f.claimLocked(worker)
	return cl, ok
}

func (f *Frontier) claimLocked(worker string) (*Claim, bool, error) {
	if url, ok := f.byWorker[worker]; ok {
		if e, live := f.claims[url]; live {
			f.reclaims++
			return f.claimView(e), true, nil
		}
		delete(f.byWorker, worker)
	}
	if f.heap.Len() == 0 {
		return nil, false, nil
	}
	e := heap.Pop(&f.heap).(*entry)
	delete(f.pending, e.url)
	e.worker = worker
	if err := f.commit([]cabinet.Op{
		{Del: true, Key: f.ns + "p/" + e.url},
		{Key: f.ns + "c/" + e.url, Value: e.encode()},
	}); err != nil {
		// Store failure: back out so the URL is not lost in memory.
		e.worker = ""
		f.pending[e.url] = e
		heap.Push(&f.heap, e)
		return nil, false, err
	}
	f.claims[e.url] = e
	f.byWorker[worker] = e.url
	return f.claimView(e), true, nil
}

func (f *Frontier) claimView(e *entry) *Claim {
	return &Claim{URL: e.url, Referrer: e.referrer, Depth: e.depth, Attempts: e.attempts, Prior: f.prior[e.url]}
}

// ClaimWait blocks until a claim is available, the frontier drains
// (nothing pending, nothing claimed), or it is closed.
func (f *Frontier) ClaimWait(worker string) (*Claim, WaitState) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if f.closed {
			return nil, WaitClosed
		}
		if cl, ok, err := f.claimLocked(worker); err == nil && ok {
			return cl, WaitClaimed
		}
		if len(f.pending) == 0 && len(f.claims) == 0 {
			return nil, WaitDrained
		}
		f.cond.Wait()
	}
}

// Complete marks url done with its fetch record. Idempotent: a retried
// completion (lost ack) is absorbed and counted. Returns whether this
// call was the first completion.
func (f *Frontier) Complete(url, worker string, rec *PageRecord) (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return false, errors.New("frontier: closed")
	}
	if cur, ok := f.byWorker[worker]; ok && cur == url {
		delete(f.byWorker, worker)
	}
	if _, ok := f.done[url]; ok {
		f.dups++
		f.cond.Broadcast()
		return false, nil
	}
	ops := []cabinet.Op{{Key: f.ns + "d/" + url, Value: nil}}
	if e, ok := f.claims[url]; ok {
		// The claim may have been lowered while in flight; the done
		// record keeps the shallowest depth seen.
		if e.depth < rec.Depth {
			rec.Depth = e.depth
		}
		ops = append(ops, cabinet.Op{Del: true, Key: f.ns + "c/" + url})
		if e.worker != "" && e.worker != worker {
			delete(f.byWorker, e.worker)
		}
	} else if e, ok := f.pending[url]; ok {
		heap.Remove(&f.heap, e.index)
		delete(f.pending, url)
		ops = append(ops, cabinet.Op{Del: true, Key: f.ns + "p/" + url})
	}
	ops[0].Value = rec.Encode()
	if err := f.commit(ops); err != nil {
		return false, err
	}
	delete(f.claims, url)
	f.done[url] = rec
	f.cond.Broadcast()
	return true, nil
}

// Fail reports a fetch failure for a claimed URL. Retryable failures
// below the attempt cap re-pend the URL (and journal the attempt);
// anything else is journaled terminally. Returns whether the URL was
// re-queued.
func (f *Frontier) Fail(url, worker, code, reason string, retryable bool) (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return false, errors.New("frontier: closed")
	}
	if cur, ok := f.byWorker[worker]; ok && cur == url {
		delete(f.byWorker, worker)
	}
	e, ok := f.claims[url]
	if !ok {
		// Already resolved (dup fail after a lost ack): nothing to do.
		f.cond.Broadcast()
		return false, nil
	}
	e.attempts++
	fl := &Failure{URL: url, Referrer: e.referrer, Depth: e.depth, Attempts: e.attempts, Code: code, Reason: reason}
	retry := retryable && e.attempts < f.maxTry
	fl.Final = !retry
	jkey := f.ns + "f/" + url + "#" + itoa(e.attempts)
	ops := []cabinet.Op{
		{Del: true, Key: f.ns + "c/" + url},
		{Key: jkey, Value: fl.encode()},
	}
	if retry {
		e.worker = ""
		ops = append(ops, cabinet.Op{Key: f.ns + "p/" + url, Value: e.encode()})
	}
	if err := f.commit(ops); err != nil {
		e.attempts--
		return false, err
	}
	delete(f.claims, url)
	f.journal++
	if retry {
		f.pending[url] = e
		heap.Push(&f.heap, e)
	} else {
		f.failed[url] = fl
	}
	f.cond.Broadcast()
	return retry, nil
}

// Journal records a failure event that never entered the queue — e.g.
// a subtree abandoned beyond the stable depth — so a second pass can
// find it. Deduped by URL.
func (f *Frontier) Journal(fl Failure) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return errors.New("frontier: closed")
	}
	if _, ok := f.failed[fl.URL]; ok {
		return nil
	}
	fl.Final = true
	if err := f.commit([]cabinet.Op{{Key: f.ns + "f/" + fl.URL + "#" + itoa(fl.Attempts), Value: fl.encode()}}); err != nil {
		return err
	}
	f.failed[fl.URL] = &fl
	f.journal++
	return nil
}

// Drained reports whether the crawl is complete: nothing pending and
// nothing claimed.
func (f *Frontier) Drained() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.pending) == 0 && len(f.claims) == 0
}

// Close wakes every ClaimWait with WaitClosed. Durable state is left
// intact for the next open.
func (f *Frontier) Close() {
	f.mu.Lock()
	f.closed = true
	f.cond.Broadcast()
	f.mu.Unlock()
}

// Records returns the completed records sorted by URL.
func (f *Frontier) Records() []*PageRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*PageRecord, 0, len(f.done))
	for _, r := range f.done {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// Record returns the completed record for url, if any.
func (f *Frontier) Record(url string) (*PageRecord, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	r, ok := f.done[url]
	return r, ok
}

// Prior returns the previous cycle's record for url, if any.
func (f *Frontier) Prior(url string) (*PageRecord, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	r, ok := f.prior[url]
	return r, ok
}

// Failures returns the terminal failure journal sorted by URL.
func (f *Frontier) Failures() []*Failure {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*Failure, 0, len(f.failed))
	for _, fl := range f.failed {
		out = append(out, fl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// Counts snapshots the frontier's state.
func (f *Frontier) Counts() Counts {
	f.mu.Lock()
	defer f.mu.Unlock()
	return Counts{
		Pending:        len(f.pending),
		Claimed:        len(f.claims),
		Done:           len(f.done),
		TerminalFailed: len(f.failed),
		Journal:        f.journal,
		DupCompletions: f.dups,
		Reclaims:       f.reclaims,
	}
}

// BeginRecrawl stages a new crawl cycle: every done record moves to
// the prior set (where Claim surfaces it for HEAD revalidation) and
// terminal failures are cleared so the new cycle may retry them. The
// move is one atomic transaction — a crash mid-recrawl recovers either
// wholly before or wholly after.
func (f *Frontier) BeginRecrawl() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return errors.New("frontier: closed")
	}
	var ops []cabinet.Op
	for url, rec := range f.done {
		ops = append(ops,
			cabinet.Op{Del: true, Key: f.ns + "d/" + url},
			cabinet.Op{Key: f.ns + "r/" + url, Value: rec.Encode()})
	}
	if f.store != nil {
		for _, key := range f.store.Keys(f.ns + "f/") {
			ops = append(ops, cabinet.Op{Del: true, Key: key})
		}
	}
	if len(ops) > 0 {
		if err := f.commit(ops); err != nil {
			return err
		}
	}
	for url, rec := range f.done {
		f.prior[url] = rec
	}
	f.done = make(map[string]*PageRecord)
	f.failed = make(map[string]*Failure)
	f.journal = 0
	return nil
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// entryHeap orders pending entries by (depth, url): the crawl expands
// a deterministic breadth-first wavefront regardless of worker count.
type entryHeap []*entry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	if h[i].depth != h[j].depth {
		return h[i].depth < h[j].depth
	}
	return h[i].url < h[j].url
}
func (h entryHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *entryHeap) Push(x any) {
	e := x.(*entry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
