package frontier

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tax/internal/cabinet"
	"tax/internal/vclock"
)

func volatileFrontier(t *testing.T) *Frontier {
	t.Helper()
	f, err := New(Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f
}

func TestClaimOrderIsDepthThenURL(t *testing.T) {
	f := volatileFrontier(t)
	if _, _, err := f.Add([]Link{
		{URL: "http://h/b", Depth: 1},
		{URL: "http://h/z", Depth: 0},
		{URL: "http://h/a", Depth: 1},
	}); err != nil {
		t.Fatal(err)
	}
	var got []string
	for i := 0; i < 3; i++ {
		cl, ok := f.Claim("w")
		if !ok {
			t.Fatalf("claim %d failed", i)
		}
		got = append(got, cl.URL)
		if _, err := f.Complete(cl.URL, "w", &PageRecord{URL: cl.URL, Depth: cl.Depth}); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"http://h/z", "http://h/a", "http://h/b"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("claim order %v, want %v", got, want)
	}
	if !f.Drained() {
		t.Fatal("frontier should be drained")
	}
}

func TestClaimReissueAfterLostReply(t *testing.T) {
	f := volatileFrontier(t)
	f.Add([]Link{{URL: "http://h/a", Depth: 0}})
	cl1, ok := f.Claim("w1")
	if !ok {
		t.Fatal("first claim failed")
	}
	// The same worker asking again (its reply was lost) gets the same
	// URL, not a second one.
	cl2, ok := f.Claim("w1")
	if !ok || cl2.URL != cl1.URL {
		t.Fatalf("reclaim got %+v, want %q", cl2, cl1.URL)
	}
	// A different worker gets nothing — the URL is still claimed.
	if cl, ok := f.Claim("w2"); ok {
		t.Fatalf("w2 stole claimed URL %q", cl.URL)
	}
	if c := f.Counts(); c.Reclaims != 1 {
		t.Fatalf("Reclaims = %d, want 1", c.Reclaims)
	}
}

func TestCompleteIsIdempotent(t *testing.T) {
	f := volatileFrontier(t)
	f.Add([]Link{{URL: "http://h/a", Depth: 0}})
	cl, _ := f.Claim("w")
	rec := &PageRecord{URL: cl.URL, Depth: cl.Depth, Status: 200}
	first, err := f.Complete(cl.URL, "w", rec)
	if err != nil || !first {
		t.Fatalf("first Complete = (%v, %v)", first, err)
	}
	again, err := f.Complete(cl.URL, "w", rec)
	if err != nil || again {
		t.Fatalf("dup Complete = (%v, %v), want absorbed", again, err)
	}
	if c := f.Counts(); c.DupCompletions != 1 || c.Done != 1 {
		t.Fatalf("counts %+v", c)
	}
}

func TestDepthLoweringReturnsDoneRecords(t *testing.T) {
	f := volatileFrontier(t)
	f.Add([]Link{{URL: "http://h/deep", Depth: 3}})
	cl, _ := f.Claim("w")
	rec := &PageRecord{URL: cl.URL, Depth: cl.Depth, Status: 200, Links: []Link{{URL: "http://h/kid", Referrer: cl.URL}}}
	f.Complete(cl.URL, "w", rec)
	// Re-discovered shallower: the done record is lowered and returned
	// so the caller can re-offer its out-links at the new depth.
	_, lowered, err := f.Add([]Link{{URL: "http://h/deep", Depth: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(lowered) != 1 || lowered[0].Depth != 1 {
		t.Fatalf("lowered = %+v, want the record at depth 1", lowered)
	}
	// Re-discovered deeper: no-op.
	_, lowered, _ = f.Add([]Link{{URL: "http://h/deep", Depth: 2}})
	if len(lowered) != 0 {
		t.Fatalf("deeper rediscovery lowered %+v", lowered)
	}
}

func TestFailRetriesThenTurnsTerminal(t *testing.T) {
	f, err := New(Options{MaxAttempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	f.Add([]Link{{URL: "http://h/flaky", Depth: 0}})
	cl, _ := f.Claim("w")
	requeued, err := f.Fail(cl.URL, "w", "wb_fetch_failed", "boom", true)
	if err != nil || !requeued {
		t.Fatalf("first Fail = (%v, %v), want requeued", requeued, err)
	}
	cl2, ok := f.Claim("w")
	if !ok || cl2.Attempts != 1 {
		t.Fatalf("reclaim after fail = %+v", cl2)
	}
	requeued, err = f.Fail(cl2.URL, "w", "wb_fetch_failed", "boom", true)
	if err != nil || requeued {
		t.Fatalf("second Fail = (%v, %v), want terminal", requeued, err)
	}
	c := f.Counts()
	if c.TerminalFailed != 1 || c.Journal != 2 || c.Pending != 0 {
		t.Fatalf("counts %+v", c)
	}
	// Terminal URLs are not re-admitted.
	fresh, _, _ := f.Add([]Link{{URL: "http://h/flaky", Depth: 0}})
	if fresh != 0 {
		t.Fatal("terminal URL re-admitted")
	}
	if !f.Drained() {
		t.Fatal("should be drained")
	}
}

func TestClaimWaitBlocksUntilAddAndDrains(t *testing.T) {
	f := volatileFrontier(t)
	f.Add([]Link{{URL: "http://h/a", Depth: 0}})
	var wg sync.WaitGroup
	urls := make(chan string, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("w%d", w)
			for {
				cl, state := f.ClaimWait(id)
				if state != WaitClaimed {
					return
				}
				urls <- cl.URL
				if cl.URL == "http://h/a" {
					f.Add([]Link{{URL: "http://h/b", Depth: 1}, {URL: "http://h/c", Depth: 1}})
				}
				f.Complete(cl.URL, id, &PageRecord{URL: cl.URL, Depth: cl.Depth})
			}
		}(w)
	}
	wg.Wait()
	close(urls)
	seen := map[string]int{}
	for u := range urls {
		seen[u]++
	}
	for u, n := range seen {
		if n != 1 {
			t.Fatalf("url %q claimed %d times", u, n)
		}
	}
	if len(seen) != 3 {
		t.Fatalf("claimed %d urls, want 3", len(seen))
	}
}

func TestDurableRecoveryRoundTrip(t *testing.T) {
	store := cabinet.NewStore(cabinet.Options{Clock: vclock.NewVirtual(), SnapshotEvery: -1})
	f, err := New(Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	f.Add([]Link{{URL: "http://h/a", Depth: 0, Referrer: ""}})
	cl, _ := f.Claim("w1")
	rec := &PageRecord{URL: cl.URL, Depth: 0, Status: 200, Bytes: 17, Type: "text/html",
		AgeDays: 3, FetchCost: 5 * time.Millisecond, Digest: "200|17|3",
		Links: []Link{{URL: "http://h/b", Referrer: "http://h/a"}}}
	f.Complete(cl.URL, "w1", rec)
	f.Add([]Link{{URL: "http://h/b", Depth: 1, Referrer: "http://h/a"}, {URL: "http://h/c", Depth: 1}})
	f.Claim("w2") // leaves http://h/b claimed by w2
	f.Journal(Failure{URL: "http://h/x", Depth: 2, Code: "wb_depth_unstable", Reason: "beyond stable depth"})

	// Service-style recovery (AdoptClaims=false): the claim survives,
	// keyed to its worker.
	g, err := New(Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := g.Record("http://h/a"); !reflect.DeepEqual(got, rec) {
		t.Fatalf("recovered record %+v, want %+v", got, rec)
	}
	cl2, ok := g.Claim("w2")
	if !ok || cl2.URL != "http://h/b" {
		t.Fatalf("w2's claim not re-issued after recovery: %+v", cl2)
	}
	if c := g.Counts(); c.Pending != 1 || c.Claimed != 1 || c.Done != 1 || c.TerminalFailed != 1 {
		t.Fatalf("recovered counts %+v", c)
	}

	// Local-crawl recovery (AdoptClaims=true): the claim folds back to
	// pending — its worker died with the process.
	h, err := New(Options{Store: store, AdoptClaims: true})
	if err != nil {
		t.Fatal(err)
	}
	if c := h.Counts(); c.Pending != 2 || c.Claimed != 0 {
		t.Fatalf("adopted counts %+v", c)
	}
}

func TestBeginRecrawlStagesPriors(t *testing.T) {
	store := cabinet.NewStore(cabinet.Options{Clock: vclock.NewVirtual(), SnapshotEvery: -1})
	f, _ := New(Options{Store: store})
	f.Add([]Link{{URL: "http://h/a", Depth: 0}})
	cl, _ := f.Claim("w")
	f.Complete(cl.URL, "w", &PageRecord{URL: cl.URL, Depth: 0, Status: 200, Digest: "200|9|1"})
	if err := f.BeginRecrawl(); err != nil {
		t.Fatal(err)
	}
	f.Add([]Link{{URL: "http://h/a", Depth: 0}})
	cl, ok := f.Claim("w")
	if !ok || cl.Prior == nil || cl.Prior.Digest != "200|9|1" {
		t.Fatalf("claim after recrawl lacks prior: %+v", cl)
	}
	// The staged prior survives a reopen too.
	g, _ := New(Options{Store: store, AdoptClaims: true})
	if r, ok := g.Prior("http://h/a"); !ok || r.Digest != "200|9|1" {
		t.Fatalf("prior not durable: %+v ok=%v", r, ok)
	}
}

// TestCrashPointSweep kills the store at every WAL append of a fixed
// crawl workload, recovers, resumes, and asserts exactly-once per URL —
// the cabinet sweep pattern applied to the frontier's transactions.
func TestCrashPointSweep(t *testing.T) {
	links := []Link{
		{URL: "http://h/", Depth: 0},
	}
	children := map[string][]Link{
		"http://h/":  {{URL: "http://h/a", Referrer: "http://h/"}, {URL: "http://h/b", Referrer: "http://h/"}},
		"http://h/a": {{URL: "http://h/c", Referrer: "http://h/a"}},
		"http://h/b": {{URL: "http://h/c", Referrer: "http://h/b"}},
		"http://h/c": nil,
	}
	// drive runs the crawl loop until drained or the store dies.
	drive := func(f *Frontier, fetched map[string]int) error {
		for {
			cl, ok := f.Claim("w")
			if !ok {
				return nil
			}
			fetched[cl.URL]++
			var out []Link
			for _, l := range children[cl.URL] {
				out = append(out, Link{URL: l.URL, Referrer: l.Referrer, Depth: cl.Depth + 1})
			}
			if len(out) > 0 {
				if _, _, err := f.Add(out); err != nil {
					return err
				}
			}
			rec := &PageRecord{URL: cl.URL, Depth: cl.Depth, Status: 200, Links: children[cl.URL]}
			if _, err := f.Complete(cl.URL, "w", rec); err != nil {
				return err
			}
		}
	}

	// First pass: count total appends of a clean run.
	clean := cabinet.NewStore(cabinet.Options{Clock: vclock.NewVirtual(), SnapshotEvery: -1})
	f, err := New(Options{Store: clean})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Add(links); err != nil {
		t.Fatal(err)
	}
	fetched := map[string]int{}
	if err := drive(f, fetched); err != nil {
		t.Fatal(err)
	}
	total := int(clean.Seq())
	if total < 8 {
		t.Fatalf("clean run committed only %d txns", total)
	}
	wantDone := len(f.Records())

	for k := 1; k <= total; k++ {
		k := k
		t.Run(fmt.Sprintf("append%02d", k), func(t *testing.T) {
			store := cabinet.NewStore(cabinet.Options{Clock: vclock.NewVirtual(), SnapshotEvery: -1})
			var appends int32
			crashed := false
			store.SetAppendHook(func(seq uint64) {
				if atomic.AddInt32(&appends, 1) != int32(k) {
					return
				}
				crashed = true
				store.Disk().Crash()
			})
			f, err := New(Options{Store: store})
			if err != nil {
				t.Fatal(err)
			}
			fetched := map[string]int{}
			f.Add(links)
			drive(f, fetched) // dies somewhere after the crash; errors expected
			if !crashed {
				t.Fatalf("append %d never reached", k)
			}
			store.SetAppendHook(nil)
			if _, err := store.Reopen(); err != nil {
				t.Fatalf("Reopen: %v", err)
			}
			// Resume as a local crawl: orphaned claims fold back to
			// pending and are refetched (their fetch never completed, so
			// a refetch preserves exactly-once *completion*).
			g, err := New(Options{Store: store, AdoptClaims: true})
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			g.Add(links)
			if err := drive(g, fetched); err != nil {
				t.Fatalf("resume: %v", err)
			}
			recs := g.Records()
			if len(recs) != wantDone {
				t.Fatalf("resume finished with %d records, want %d", len(recs), wantDone)
			}
			for _, r := range recs {
				if fetched[r.URL] == 0 {
					t.Fatalf("url %q completed but never fetched", r.URL)
				}
			}
			// Exactly-once completion: every URL has exactly one done
			// record; double-fetch is allowed only for a claim whose
			// completion had not committed when the host died.
			seen := map[string]bool{}
			for _, r := range recs {
				if seen[r.URL] {
					t.Fatalf("url %q completed twice", r.URL)
				}
				seen[r.URL] = true
			}
			for url, n := range fetched {
				if n > 2 {
					t.Fatalf("url %q fetched %d times across crash+resume", url, n)
				}
				if !seen[url] {
					t.Fatalf("url %q fetched but never completed", url)
				}
			}
		})
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	rec := &PageRecord{
		URL: "http://h/p", Referrer: "http://h/", Depth: 2, Status: 200,
		Bytes: 4096, Type: "application/pdf", AgeDays: 211,
		FetchCost: 1234567 * time.Nanosecond, Digest: "200|4096|211", Revalidated: true,
		Links: []Link{{URL: "http://h/q", Referrer: "http://h/p"}, {URL: "http://x/", Referrer: "http://h/p"}},
	}
	got, err := DecodeRecord(rec.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("round trip %+v != %+v", got, rec)
	}
	if _, err := DecodeRecord(rec.Encode()[:7]); err == nil {
		t.Fatal("truncated record decoded")
	}
	if _, err := DecodeRecord(nil); err == nil {
		t.Fatal("empty record decoded")
	}
}

func TestLimiterSpacesSameHostOnly(t *testing.T) {
	l := NewLimiter(10 * time.Millisecond)
	if w := l.Reserve("a", 0); w != 0 {
		t.Fatalf("first fetch waited %v", w)
	}
	if w := l.Reserve("a", 0); w != 10*time.Millisecond {
		t.Fatalf("second same-host fetch waited %v, want 10ms", w)
	}
	if w := l.Reserve("b", 0); w != 0 {
		t.Fatalf("other-host fetch waited %v", w)
	}
	// A worker arriving after the slot passes waits nothing.
	if w := l.Reserve("a", 25*time.Millisecond); w != 0 {
		t.Fatalf("late fetch waited %v", w)
	}
	var nilLim *Limiter
	if w := nilLim.Reserve("a", 0); w != 0 {
		t.Fatal("nil limiter waited")
	}
}

func TestModelMakespan(t *testing.T) {
	recs := []*PageRecord{
		{URL: "http://a/1", Depth: 0, FetchCost: 10 * time.Millisecond},
		{URL: "http://a/2", Depth: 1, FetchCost: 10 * time.Millisecond},
		{URL: "http://b/1", Depth: 1, FetchCost: 10 * time.Millisecond},
		{URL: "http://b/2", Depth: 1, FetchCost: 10 * time.Millisecond},
	}
	if got := ModelMakespan(recs, 1, 0); got != 40*time.Millisecond {
		t.Fatalf("serial makespan %v", got)
	}
	// 4 workers, no politeness: every record dispatches at once.
	if got := ModelMakespan(recs, 4, 0); got != 10*time.Millisecond {
		t.Fatalf("parallel makespan %v", got)
	}
	// Politeness 30ms on host a: a/1 at 0, a/2 no earlier than 30ms.
	got := ModelMakespan(recs, 4, 30*time.Millisecond)
	if got != 40*time.Millisecond {
		t.Fatalf("polite makespan %v", got)
	}
	// Deterministic: same inputs, same answer, input order irrelevant.
	rev := []*PageRecord{recs[3], recs[1], recs[0], recs[2]}
	if ModelMakespan(rev, 4, 30*time.Millisecond) != got {
		t.Fatal("makespan depends on input order")
	}
}
