package agent

import (
	"context"
	"errors"
	"fmt"

	"tax/internal/briefcase"
)

// FolderSkipped records itinerary stops that could not be reached.
const FolderSkipped = "_SKIPPED"

// RunItinerary drives the figure-4 pattern for an agent handler: run
// visit on the current host, then move to the next stop in the
// briefcase's HOSTS folder, tolerating unreachable stops (they are
// recorded in the _SKIPPED folder and the itinerary continues). It
// returns ErrMoved after a successful move — the handler returns it up —
// and nil once the itinerary is exhausted on the final host.
//
//	sys.DeployProgram("tour", func(ctx *agent.Context) error {
//		return agent.RunItinerary(ctx, func(ctx *agent.Context) error {
//			// per-host work
//			return nil
//		})
//	})
func RunItinerary(c *Context, visit func(*Context) error) error {
	return RunItineraryContext(context.Background(), c, visit)
}

// RunItineraryContext is RunItinerary with cancellation: the context is
// checked before the visit and before each hop attempt, so a cancelled
// tour stops on the current host instead of continuing to burn hops.
// The briefcase keeps its remaining HOSTS, so a later call can resume.
func RunItineraryContext(ctx context.Context, c *Context, visit func(*Context) error) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("agent: itinerary: %w", err)
	}
	if visit != nil {
		if err := visit(c); err != nil {
			return err
		}
	}
	hosts, err := c.Briefcase().Folder(briefcase.FolderHosts)
	if err != nil {
		return fmt.Errorf("agent: itinerary: %w", err)
	}
	for {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("agent: itinerary: %w", err)
		}
		next, ok := hosts.Pop()
		if !ok {
			return nil // itinerary complete
		}
		err := c.Go(next.String())
		if errors.Is(err, ErrMoved) {
			return err
		}
		c.Briefcase().Ensure(FolderSkipped).AppendString(next.String())
	}
}

// Skipped returns the itinerary stops that were unreachable so far.
func Skipped(c *Context) []string {
	f, err := c.Briefcase().Folder(FolderSkipped)
	if err != nil {
		return nil
	}
	return f.Strings()
}
