// Package agent implements the TAX library of §3.1: the primitives a
// mobile agent uses to operate on its state and communicate.
//
// The transportable state of an agent (code, arguments, results) is
// collected in a briefcase. On top of the two basic communication
// primitives (sending and receiving briefcases through the firewall) the
// library offers activate (asynchronous send), await (blocking receive),
// meet (RPC), go (move the agent to another VM, terminating the current
// instance on success) and spawn (like Unix fork: create a new agent with
// a fresh instance number, reported back to the caller).
package agent

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"tax/internal/briefcase"
	"tax/internal/firewall"
	"tax/internal/telemetry"
	"tax/internal/uri"
)

// ErrMoved is returned by Go after a successful move. The paper's go()
// never returns on success — the local instance terminates. In Go idiom
// the handler returns ErrMoved up to its VM, which reaps the local
// instance without reporting an error:
//
//	if err := ctx.Go(next); errors.Is(err, agent.ErrMoved) {
//		return err // moved; local instance is done
//	}
//	// move failed: still here, handle it (figure 4 prints a warning)
var ErrMoved = errors.New("agent: moved to another virtual machine")

// ErrNoMover is returned by Go/Spawn when the hosting VM does not support
// relocation (service agents are stationary).
var ErrNoMover = errors.New("agent: the hosting VM does not support relocation")

// Folders used by the spawn protocol.
const (
	// FolderSpawn marks a transfer as a spawn rather than a move.
	FolderSpawn = "_SPAWN"
	// FolderInstance carries the new instance number in a spawn reply.
	FolderInstance = "_INSTANCE"
)

// Mover relocates agents; implemented by VMs that support mobility.
type Mover interface {
	// Move packages the agent's briefcase and sends it to the destination
	// VM. With spawn set, the local agent keeps running and the new
	// remote instance number is returned; otherwise the local instance
	// terminates (the caller returns ErrMoved).
	Move(c *Context, dest uri.URI, spawn bool) (uint64, error)
}

// LocalResolver lets a VM resolve a target to a co-located agent for the
// §3.3 bypass optimization. It returns nil when the target is not local
// to the VM.
type LocalResolver func(target uri.URI, senderPrincipal string) *firewall.Registration

// msgIDCounter feeds globally unique meet/spawn correlation ids.
var msgIDCounter atomic.Uint64

// Context is an executing agent's view of TAX: its briefcase, its
// registration with the local firewall, and the library primitives. A
// Context is bound to one agent goroutine and is not safe for concurrent
// use by multiple goroutines.
type Context struct {
	fw    *firewall.Firewall
	reg   *firewall.Registration
	bc    *briefcase.Briefcase
	mover Mover
	local LocalResolver

	// backlog holds briefcases received while waiting for a specific
	// meet/spawn reply.
	backlog []*briefcase.Briefcase

	// sendHook and recvHook are the wrapper interception points (§4):
	// the only actions observable to the system are sending and
	// receiving a briefcase, and wrappers intercept exactly those.
	sendHook func(*briefcase.Briefcase) (*briefcase.Briefcase, error)
	recvHook func(*briefcase.Briefcase) (*briefcase.Briefcase, error)

	// finalizer runs when the hosting VM reaps the agent (see Finish);
	// wrappers use it for end-of-life work such as pruning checkpoints.
	finalizer func(err error)
}

// NewContext binds an agent to its briefcase and registration. mover and
// local may be nil (stationary agent, no bypass).
func NewContext(fw *firewall.Firewall, reg *firewall.Registration, bc *briefcase.Briefcase, mover Mover, local LocalResolver) *Context {
	return &Context{fw: fw, reg: reg, bc: bc, mover: mover, local: local}
}

// Briefcase returns the agent's own briefcase. The agent always has
// access to it and can drop state no longer needed before moving.
func (c *Context) Briefcase() *briefcase.Briefcase { return c.bc }

// Registration returns the agent's firewall registration.
func (c *Context) Registration() *firewall.Registration { return c.reg }

// FW returns the local firewall; used by VMs and service agents that run
// code inline on an agent's behalf.
func (c *Context) FW() *firewall.Firewall { return c.fw }

// URI returns the agent's fully qualified (routable) URI.
func (c *Context) URI() uri.URI { return c.reg.GlobalURI() }

// Principal returns the principal the agent acts for.
func (c *Context) Principal() string { return c.reg.URI().Principal }

// Host returns the name of the host the agent currently executes on.
func (c *Context) Host() string { return c.fw.HostName() }

// Done is closed when the agent is killed by management action.
func (c *Context) Done() <-chan struct{} { return c.reg.Done() }

// Charge advances the host clock by a local computation cost; simulated
// workloads use it to account CPU time in virtual time.
func (c *Context) Charge(d time.Duration) { c.fw.Clock().Advance(d) }

// Now returns the current host (virtual) time.
func (c *Context) Now() time.Duration { return c.fw.Clock().Now() }

// SetInterceptors installs the wrapper hooks. The send hook sees every
// briefcase the agent sends before routing (returning nil swallows it);
// the receive hook sees every briefcase delivered to the agent
// (returning nil consumes it and the agent keeps waiting). VMs install
// these when activating a wrapped agent.
func (c *Context) SetInterceptors(
	send func(*briefcase.Briefcase) (*briefcase.Briefcase, error),
	recv func(*briefcase.Briefcase) (*briefcase.Briefcase, error),
) {
	c.sendHook, c.recvHook = send, recv
}

// SetFinalizer registers fn to run when the hosting VM reaps the agent.
// Wrapper stacks install it so wrappers can act on the agent's terminal
// outcome (nil on clean completion, ErrMoved after a move, else the
// fault) — the briefcase equivalent of a process exit handler.
func (c *Context) SetFinalizer(fn func(err error)) { c.finalizer = fn }

// Finish runs the registered finalizer, if any. VMs call it exactly once
// after the handler returns and before unregistering, so the finalizer
// can still send and receive on the agent's behalf.
func (c *Context) Finish(err error) {
	if c.finalizer != nil {
		c.finalizer(err)
	}
}

// Activate sends a briefcase to the target agent URI and returns
// immediately (the paper's activate() — equivalent to a send). The
// payload's _TARGET folder is set; ownership of payload transfers to the
// system. Wrapper send-interceptors run first and may rewrite or swallow
// the briefcase.
func (c *Context) Activate(target string, payload *briefcase.Briefcase) error {
	return c.ActivateCtx(context.Background(), target, payload)
}

// ActivateCtx is Activate with cancellation: a context already done
// fails before the wrapper hooks run, and the firewall send observes
// the context through its retry loop.
func (c *Context) ActivateCtx(ctx context.Context, target string, payload *briefcase.Briefcase) error {
	payload.SetString(briefcase.FolderSysTarget, target)
	if c.sendHook != nil {
		out, err := c.sendHook(payload)
		if err != nil {
			return err
		}
		if out == nil {
			return nil // wrapper consumed the send
		}
		payload = out
		// The wrapper may have re-targeted the briefcase.
		if t, ok := payload.GetString(briefcase.FolderSysTarget); ok {
			target = t
		}
	}
	return c.ActivateDirectCtx(ctx, target, payload)
}

// ActivateDirect sends without running wrapper interceptors; wrappers use
// it for their own traffic (a monitoring report must not re-enter the
// monitoring wrapper).
func (c *Context) ActivateDirect(target string, payload *briefcase.Briefcase) error {
	return c.ActivateDirectCtx(context.Background(), target, payload)
}

// ActivateDirectCtx is ActivateDirect with cancellation.
func (c *Context) ActivateDirectCtx(ctx context.Context, target string, payload *briefcase.Briefcase) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	tu, err := uri.Parse(target)
	if err != nil {
		return fmt.Errorf("agent: activate: %w", err)
	}
	payload.SetString(briefcase.FolderSysTarget, target)
	c.propagateTrace(payload)
	// §3.3: virtual machines may resolve internal communication without
	// involving the firewall. Fully qualified URIs naming this host are
	// just as local as bare ones.
	if c.local != nil && (tu.IsLocal() || tu.Host == c.fw.HostName()) {
		if r := c.local(tu, c.Principal()); r != nil {
			payload.SetString(briefcase.FolderSysSender, c.URI().String())
			return r.Inject(payload)
		}
	}
	return c.fw.SendCtx(ctx, c.URI(), payload)
}

// Await blocks until a briefcase arrives (the paper's await()). A zero
// timeout waits forever. Briefcases buffered while waiting for an RPC
// reply are returned first, in arrival order. Wrapper receive-
// interceptors run on every arrival and may consume briefcases, in which
// case Await keeps waiting.
func (c *Context) Await(timeout time.Duration) (*briefcase.Briefcase, error) {
	return c.AwaitCtx(context.Background(), timeout)
}

// AwaitCtx is Await with cancellation: the wait additionally ends when
// ctx is done, returning its error.
func (c *Context) AwaitCtx(ctx context.Context, timeout time.Duration) (*briefcase.Briefcase, error) {
	if len(c.backlog) > 0 {
		bc := c.backlog[0]
		c.backlog = c.backlog[1:]
		return bc, nil
	}
	return c.receive(ctx, timeout)
}

// receive takes one briefcase from the mailbox, running the wrapper
// receive hook; consumed briefcases do not count against the caller —
// it keeps waiting within the same timeout budget.
func (c *Context) receive(ctx context.Context, timeout time.Duration) (*briefcase.Briefcase, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		remain := time.Duration(0)
		if timeout > 0 {
			remain = time.Until(deadline)
			if remain <= 0 {
				return nil, fmt.Errorf("agent: %w", firewall.ErrRecvTimeout)
			}
		}
		bc, err := c.reg.RecvCtx(ctx, remain)
		if err != nil {
			return nil, err
		}
		if c.recvHook == nil {
			return bc, nil
		}
		out, err := c.recvHook(bc)
		if err != nil {
			return nil, err
		}
		if out != nil {
			return out, nil
		}
		// The wrapper consumed the briefcase; keep waiting.
	}
}

// Meet performs an RPC (the paper's meet()): it sends payload to the
// target and blocks until the matching reply arrives. Unrelated
// briefcases arriving meanwhile are buffered for later Await calls.
func (c *Context) Meet(target string, payload *briefcase.Briefcase, timeout time.Duration) (*briefcase.Briefcase, error) {
	return c.MeetCtx(context.Background(), target, payload, timeout)
}

// MeetCtx is Meet with cancellation: the context covers the send and
// the reply wait, so an abandoned RPC stops blocking as soon as the
// caller gives up.
func (c *Context) MeetCtx(ctx context.Context, target string, payload *briefcase.Briefcase, timeout time.Duration) (*briefcase.Briefcase, error) {
	id := nextMsgID()
	payload.SetString(firewall.FolderMsgID, id)
	sp := c.span("agent.meet")
	sp.SetAttr("target", target)
	if sp != nil {
		payload.SetString(briefcase.FolderSysSpan, sp.ID())
	}
	if err := c.ActivateCtx(ctx, target, payload); err != nil {
		sp.SetErr(err)
		sp.End()
		return nil, err
	}
	reply, err := c.awaitReply(ctx, id, timeout)
	sp.SetErr(err)
	sp.End()
	return reply, err
}

// MeetDirect is Meet without wrapper interception, for wrappers and
// system components performing RPCs on an agent's behalf (a location
// lookup inside a send-interceptor must not re-enter that interceptor).
func (c *Context) MeetDirect(target string, payload *briefcase.Briefcase, timeout time.Duration) (*briefcase.Briefcase, error) {
	return c.MeetDirectCtx(context.Background(), target, payload, timeout)
}

// MeetDirectCtx is MeetDirect with cancellation: the context covers the
// send and the reply wait (PR 5 context-first convention).
func (c *Context) MeetDirectCtx(ctx context.Context, target string, payload *briefcase.Briefcase, timeout time.Duration) (*briefcase.Briefcase, error) {
	id := nextMsgID()
	payload.SetString(firewall.FolderMsgID, id)
	if err := c.ActivateDirectCtx(ctx, target, payload); err != nil {
		return nil, err
	}
	return c.awaitReply(ctx, id, timeout)
}

// Reply answers a briefcase received via Await/Meet service loops: the
// response is routed to the request's authenticated sender and correlated
// with its message id.
func (c *Context) Reply(request, response *briefcase.Briefcase) error {
	sender, ok := request.GetString(briefcase.FolderSysSender)
	if !ok {
		return errors.New("agent: reply: request has no sender")
	}
	if id, ok := request.GetString(firewall.FolderMsgID); ok {
		response.SetString(firewall.FolderReplyTo, id)
	}
	// The retry policy rides the conversation: a request that asked to be
	// retried gets a reply that retries the same way.
	if pol, ok := request.GetString(briefcase.FolderSysRetry); ok {
		if _, has := response.GetString(briefcase.FolderSysRetry); !has {
			response.SetString(briefcase.FolderSysRetry, pol)
		}
	}
	return c.Activate(sender, response)
}

// awaitReply receives until a briefcase with _REPLYTO == id arrives.
func (c *Context) awaitReply(ctx context.Context, id string, timeout time.Duration) (*briefcase.Briefcase, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		remain := time.Duration(0)
		if timeout > 0 {
			remain = time.Until(deadline)
			if remain <= 0 {
				return nil, fmt.Errorf("agent: meet: %w", firewall.ErrRecvTimeout)
			}
		}
		bc, err := c.receive(ctx, remain)
		if err != nil {
			return nil, err
		}
		if got, ok := bc.GetString(firewall.FolderReplyTo); ok && got == id {
			if firewall.Kind(bc) == firewall.KindError {
				// The reply carries the failure as _ERROR/_ERRCODE folders;
				// surface it as a wrapped RemoteError so callers can use
				// errors.Is against the originating sentinel.
				if rerr, ok := firewall.RemoteErrorFrom(bc); ok {
					return bc, fmt.Errorf("agent: meet: remote error: %w", rerr)
				}
				return bc, fmt.Errorf("agent: meet: remote error: %w", &firewall.RemoteError{})
			}
			return bc, nil
		}
		c.backlog = append(c.backlog, bc)
	}
}

// Go moves the agent (code and briefcase) to the destination VM given as
// an agent URI (e.g. "tacoma://h2//vm_go") and terminates the current
// instance if the move is successful, returning ErrMoved for the handler
// to propagate. On failure the agent keeps executing locally and the
// error describes why the destination was unreachable.
func (c *Context) Go(dest string) error {
	if c.mover == nil {
		return ErrNoMover
	}
	du, err := uri.Parse(dest)
	if err != nil {
		return fmt.Errorf("agent: go: %w", err)
	}
	// The hop span parents everything the move triggers downstream: the
	// firewall send, the network transfer, the inbound mediation at the
	// destination and the next activation all read _PSPAN from the
	// travelling briefcase.
	sp := c.span("agent.go")
	sp.SetAttr("dest", dest)
	if sp != nil {
		c.bc.SetString(briefcase.FolderSysSpan, sp.ID())
	}
	if _, err := c.mover.Move(c, du, false); err != nil {
		sp.SetErr(err)
		sp.End()
		return fmt.Errorf("agent: go %s: %w", dest, err)
	}
	sp.End()
	return ErrMoved
}

// Spawn creates a new agent with the same code and a copy of the
// briefcase on the destination VM, like the Unix fork() system call. The
// new agent's instance number is reported back to the caller; the local
// instance keeps running.
func (c *Context) Spawn(dest string) (uint64, error) {
	if c.mover == nil {
		return 0, ErrNoMover
	}
	du, err := uri.Parse(dest)
	if err != nil {
		return 0, fmt.Errorf("agent: spawn: %w", err)
	}
	sp := c.span("agent.spawn")
	sp.SetAttr("dest", dest)
	var prevParent string
	var hadParent bool
	if sp != nil {
		// The clone taken inside Move carries the spawn span as parent; the
		// local instance keeps running, so its own parent is restored below.
		prevParent, hadParent = c.bc.GetString(briefcase.FolderSysSpan)
		c.bc.SetString(briefcase.FolderSysSpan, sp.ID())
	}
	inst, err := c.mover.Move(c, du, true)
	if sp != nil {
		if hadParent {
			c.bc.SetString(briefcase.FolderSysSpan, prevParent)
		} else {
			c.bc.Drop(briefcase.FolderSysSpan)
		}
	}
	if err != nil {
		sp.SetErr(err)
		sp.End()
		return 0, fmt.Errorf("agent: spawn %s: %w", dest, err)
	}
	sp.End()
	return inst, nil
}

// AwaitReply exposes reply-correlated receive for movers implementing the
// spawn protocol.
func (c *Context) AwaitReply(id string, timeout time.Duration) (*briefcase.Briefcase, error) {
	return c.awaitReply(context.Background(), id, timeout)
}

// StampTrace marks a briefcase as the root of a fresh telemetry trace and
// returns the new trace id. Call it on an agent's briefcase before
// launching to have its whole itinerary — hops, firewall mediations, VM
// activations — collected as one span tree.
func StampTrace(bc *briefcase.Briefcase, host string) string {
	id := telemetry.NewTraceID(host)
	bc.SetString(briefcase.FolderSysTrace, id)
	return id
}

// span opens a span in the agent's own trace (nil when spans are off or
// the agent's briefcase carries no trace context).
func (c *Context) span(name string) *telemetry.Span {
	spans := c.fw.Telemetry().Spans()
	if spans == nil {
		return nil
	}
	trace, ok := c.bc.GetString(briefcase.FolderSysTrace)
	if !ok {
		return nil
	}
	parent, _ := c.bc.GetString(briefcase.FolderSysSpan)
	return spans.Start(c.fw.Clock(), c.fw.HostName(), trace, parent, name)
}

// propagateTrace copies the agent's trace context onto an outgoing
// briefcase (when it has none of its own) so the firewall spans recorded
// for the message join the agent's trace.
func (c *Context) propagateTrace(payload *briefcase.Briefcase) {
	if payload == c.bc {
		return
	}
	trace, ok := c.bc.GetString(briefcase.FolderSysTrace)
	if !ok {
		return
	}
	if _, has := payload.GetString(briefcase.FolderSysTrace); has {
		return
	}
	payload.SetString(briefcase.FolderSysTrace, trace)
	if parent, ok := c.bc.GetString(briefcase.FolderSysSpan); ok {
		payload.SetString(briefcase.FolderSysSpan, parent)
	}
}

// nextMsgID returns a process-unique correlation id. Fixed-width for the
// same reason as trace ids (see telemetry.NewTraceID): the id travels in
// the briefcase, so its length feeds the simulated transfer-time model and
// must not vary with how many ids the process minted before.
func nextMsgID() string {
	return fmt.Sprintf("m%016x", msgIDCounter.Add(1))
}

// NextMsgID exposes id generation for movers and wrappers that speak the
// meet protocol on an agent's behalf.
func NextMsgID() string { return nextMsgID() }
