package agent_test

import (
	"errors"
	"testing"
	"time"

	"tax/internal/agent"
	"tax/internal/briefcase"
	"tax/internal/firewall"
	"tax/internal/identity"
	"tax/internal/simnet"
	"tax/internal/uri"
)

// fixture is a single-host firewall with helpers for raw agent contexts.
type fixture struct {
	fw *firewall.Firewall
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	net := simnet.New(simnet.LAN100)
	t.Cleanup(func() { _ = net.Close() })
	host, err := net.AddHost("h1")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := identity.NewPrincipal("system")
	if err != nil {
		t.Fatal(err)
	}
	trust := &identity.TrustStore{}
	trust.AddPrincipal(sys, identity.System)
	fw, err := firewall.New(firewall.Config{
		HostName:        "h1",
		Node:            host,
		Trust:           trust,
		SystemPrincipal: "system",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fw.Close() })
	return &fixture{fw: fw}
}

func (f *fixture) ctx(t *testing.T, name string) *agent.Context {
	t.Helper()
	reg, err := f.fw.Register("test", "system", name)
	if err != nil {
		t.Fatal(err)
	}
	return agent.NewContext(f.fw, reg, briefcase.New(), nil, nil)
}

func TestContextAccessors(t *testing.T) {
	f := newFixture(t)
	ctx := f.ctx(t, "me")
	if ctx.Host() != "h1" {
		t.Errorf("Host = %q", ctx.Host())
	}
	if ctx.Principal() != "system" {
		t.Errorf("Principal = %q", ctx.Principal())
	}
	if ctx.URI().Host != "h1" || ctx.URI().Name != "me" {
		t.Errorf("URI = %v", ctx.URI())
	}
	if ctx.FW() != f.fw {
		t.Error("FW accessor broken")
	}
	before := ctx.Now()
	ctx.Charge(time.Second)
	if ctx.Now()-before != time.Second {
		t.Errorf("Charge moved clock by %v", ctx.Now()-before)
	}
}

func TestActivateAwait(t *testing.T) {
	f := newFixture(t)
	a := f.ctx(t, "a")
	b := f.ctx(t, "b")
	bc := briefcase.New()
	bc.SetString("BODY", "ping")
	if err := a.Activate("system/b", bc); err != nil {
		t.Fatal(err)
	}
	got, err := b.Await(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if body, _ := got.GetString("BODY"); body != "ping" {
		t.Errorf("body = %q", body)
	}
}

func TestActivateBadTarget(t *testing.T) {
	f := newFixture(t)
	a := f.ctx(t, "a")
	if err := a.Activate(":::bad", briefcase.New()); err == nil {
		t.Error("bad target accepted")
	}
}

func TestMeetBuffersUnrelatedTraffic(t *testing.T) {
	f := newFixture(t)
	caller := f.ctx(t, "caller")
	svc := f.ctx(t, "svc")
	noise := f.ctx(t, "noise")

	done := make(chan error, 1)
	go func() {
		req, err := svc.Await(5 * time.Second)
		if err != nil {
			done <- err
			return
		}
		// Unrelated message lands in the caller's mailbox before the
		// reply does.
		n := briefcase.New()
		n.SetString("BODY", "noise")
		if err := noise.Activate("system/caller", n); err != nil {
			done <- err
			return
		}
		time.Sleep(50 * time.Millisecond)
		resp := briefcase.New()
		resp.SetString("BODY", "reply")
		done <- svc.Reply(req, resp)
	}()

	resp, err := caller.Meet("system/svc", briefcase.New(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if body, _ := resp.GetString("BODY"); body != "reply" {
		t.Errorf("meet returned %q", body)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The buffered noise arrives on the next Await, not lost.
	buf, err := caller.Await(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if body, _ := buf.GetString("BODY"); body != "noise" {
		t.Errorf("backlog returned %q", body)
	}
}

func TestMeetTimeout(t *testing.T) {
	f := newFixture(t)
	caller := f.ctx(t, "caller")
	_ = f.ctx(t, "mute") // never replies
	start := time.Now()
	_, err := caller.Meet("system/mute", briefcase.New(), 100*time.Millisecond)
	if !errors.Is(err, firewall.ErrRecvTimeout) {
		t.Errorf("err = %v, want ErrRecvTimeout", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("timeout overshot")
	}
}

func TestMeetRemoteErrorSurfaced(t *testing.T) {
	f := newFixture(t)
	caller := f.ctx(t, "caller")
	svc := f.ctx(t, "svc")
	go func() {
		req, err := svc.Await(5 * time.Second)
		if err != nil {
			return
		}
		resp := briefcase.New()
		resp.SetString(firewall.FolderKind, firewall.KindError)
		resp.SetString(briefcase.FolderSysError, "deliberate failure")
		_ = svc.Reply(req, resp)
	}()
	resp, err := caller.Meet("system/svc", briefcase.New(), 5*time.Second)
	if err == nil {
		t.Fatal("remote error not surfaced")
	}
	if resp == nil {
		t.Fatal("error reply briefcase not returned")
	}
	if msg, _ := resp.GetString(briefcase.FolderSysError); msg != "deliberate failure" {
		t.Errorf("error body = %q", msg)
	}
}

func TestReplyWithoutSender(t *testing.T) {
	f := newFixture(t)
	a := f.ctx(t, "a")
	if err := a.Reply(briefcase.New(), briefcase.New()); err == nil {
		t.Error("reply to senderless request accepted")
	}
}

func TestGoWithoutMover(t *testing.T) {
	f := newFixture(t)
	a := f.ctx(t, "a")
	if err := a.Go("tacoma://h2//vm_go"); !errors.Is(err, agent.ErrNoMover) {
		t.Errorf("Go err = %v, want ErrNoMover", err)
	}
	if _, err := a.Spawn("tacoma://h2//vm_go"); !errors.Is(err, agent.ErrNoMover) {
		t.Errorf("Spawn err = %v, want ErrNoMover", err)
	}
}

func TestGoBadDestination(t *testing.T) {
	f := newFixture(t)
	reg, err := f.fw.Register("test", "system", "m")
	if err != nil {
		t.Fatal(err)
	}
	ctx := agent.NewContext(f.fw, reg, briefcase.New(), stubMover{}, nil)
	if err := ctx.Go("::::"); err == nil || errors.Is(err, agent.ErrMoved) {
		t.Errorf("bad destination: %v", err)
	}
	if _, err := ctx.Spawn("::::"); err == nil {
		t.Error("bad spawn destination accepted")
	}
}

// stubMover always succeeds.
type stubMover struct{}

func (stubMover) Move(*agent.Context, uri.URI, bool) (uint64, error) { return 42, nil }

func TestGoReturnsErrMovedOnSuccess(t *testing.T) {
	f := newFixture(t)
	reg, err := f.fw.Register("test", "system", "m")
	if err != nil {
		t.Fatal(err)
	}
	ctx := agent.NewContext(f.fw, reg, briefcase.New(), stubMover{}, nil)
	if err := ctx.Go("tacoma://h2//vm_go"); !errors.Is(err, agent.ErrMoved) {
		t.Errorf("Go = %v, want ErrMoved", err)
	}
	inst, err := ctx.Spawn("tacoma://h2//vm_go")
	if err != nil || inst != 42 {
		t.Errorf("Spawn = %d, %v", inst, err)
	}
}

func TestInterceptorsSwallowAndRewrite(t *testing.T) {
	f := newFixture(t)
	a := f.ctx(t, "a")
	b := f.ctx(t, "b")
	c := f.ctx(t, "c")

	// Rewrite: sends addressed to b are redirected to c.
	a.SetInterceptors(func(bc *briefcase.Briefcase) (*briefcase.Briefcase, error) {
		if tgt, _ := bc.GetString(briefcase.FolderSysTarget); tgt == "system/b" {
			bc.SetString(briefcase.FolderSysTarget, "system/c")
		}
		return bc, nil
	}, nil)
	msg := briefcase.New()
	msg.SetString("BODY", "redirected")
	if err := a.Activate("system/b", msg); err != nil {
		t.Fatal(err)
	}
	got, err := c.Await(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if body, _ := got.GetString("BODY"); body != "redirected" {
		t.Errorf("redirect failed: %q", body)
	}
	if _, ok := b.Registration().TryRecv(); ok {
		t.Error("original target still received")
	}

	// Receive hook consuming everything: Await times out even though a
	// message arrived.
	b.SetInterceptors(nil, func(*briefcase.Briefcase) (*briefcase.Briefcase, error) {
		return nil, nil
	})
	direct := briefcase.New()
	if err := c.Activate("system/b", direct); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Await(150 * time.Millisecond); !errors.Is(err, firewall.ErrRecvTimeout) {
		t.Errorf("consumed receive surfaced: %v", err)
	}
}

func TestActivateDirectSkipsHooks(t *testing.T) {
	f := newFixture(t)
	a := f.ctx(t, "a")
	b := f.ctx(t, "b")
	called := false
	a.SetInterceptors(func(bc *briefcase.Briefcase) (*briefcase.Briefcase, error) {
		called = true
		return bc, nil
	}, nil)
	if err := a.ActivateDirect("system/b", briefcase.New()); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("ActivateDirect ran the send hook")
	}
	if _, err := b.Await(2 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestMsgIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := agent.NextMsgID()
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}
