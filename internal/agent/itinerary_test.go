package agent_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"tax/internal/agent"
	"tax/internal/briefcase"
	"tax/internal/core"
	"tax/internal/simnet"
)

func TestRunItinerary(t *testing.T) {
	s, err := core.NewSystem(simnet.LAN100)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	for _, h := range []string{"h1", "h2", "h3"} {
		if _, err := s.AddNode(h, core.NodeOptions{NoCVM: true, NoServices: true}); err != nil {
			t.Fatal(err)
		}
	}

	var mu sync.Mutex
	var visited []string
	done := make(chan []string, 1)
	s.DeployProgram("tour", func(ctx *agent.Context) error {
		err := agent.RunItinerary(ctx, func(ctx *agent.Context) error {
			mu.Lock()
			visited = append(visited, ctx.Host())
			mu.Unlock()
			return nil
		})
		if err == nil {
			done <- agent.Skipped(ctx)
		}
		return err
	})

	bc := briefcase.New()
	bc.Ensure(briefcase.FolderHosts).AppendString(
		"tacoma://h2//vm_go",
		"tacoma://ghost//vm_go", // unreachable mid-route
		"tacoma://h3//vm_go",
	)
	n1, err := s.Node("h1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n1.VM.Launch("system", "tourist", "tour", bc); err != nil {
		t.Fatal(err)
	}
	select {
	case skipped := <-done:
		if len(skipped) != 1 || !strings.Contains(skipped[0], "ghost") {
			t.Errorf("skipped = %v", skipped)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("itinerary stalled")
	}
	mu.Lock()
	defer mu.Unlock()
	if got := strings.Join(visited, ","); got != "h1,h2,h3" {
		t.Errorf("visited %s", got)
	}
}

func TestRunItineraryWithoutHostsFolder(t *testing.T) {
	s, err := core.NewSystem(simnet.LAN100)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	if _, err := s.AddNode("h1", core.NodeOptions{NoCVM: true, NoServices: true}); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 1)
	s.DeployProgram("lost", func(ctx *agent.Context) error {
		err := agent.RunItinerary(ctx, nil)
		errs <- err
		return err
	})
	n, _ := s.Node("h1")
	if _, err := n.VM.Launch("system", "lost", "lost", nil); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errs:
		if err == nil {
			t.Error("missing HOSTS folder accepted")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled")
	}
}

func TestRunItineraryVisitErrorAborts(t *testing.T) {
	s, err := core.NewSystem(simnet.LAN100)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	if _, err := s.AddNode("h1", core.NodeOptions{NoCVM: true, NoServices: true}); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 1)
	s.DeployProgram("bad", func(ctx *agent.Context) error {
		err := agent.RunItinerary(ctx, func(*agent.Context) error {
			return errTestVisit
		})
		errs <- err
		return err
	})
	n, _ := s.Node("h1")
	if _, err := n.VM.Launch("system", "bad", "bad", nil); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errs:
		if err != errTestVisit {
			t.Errorf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled")
	}
}

var errTestVisit = &visitError{}

type visitError struct{}

func (*visitError) Error() string { return "visit failed" }
