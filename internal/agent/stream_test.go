package agent_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"tax/internal/agent"
	"tax/internal/briefcase"
)

func TestStreamRoundTripLocal(t *testing.T) {
	f := newFixture(t)
	sender := f.ctx(t, "src")
	receiver := f.ctx(t, "dst")

	payload := make([]byte, 300*1024) // forces several chunks
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	got := make(chan []byte, 1)
	errs := make(chan error, 1)
	go func() {
		data, err := receiver.ReceiveStream("vid-1", 10*time.Second)
		if err != nil {
			errs <- err
			return
		}
		got <- data
	}()
	if err := agent.SendStream(sender, "system/dst", "vid-1", payload, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case data := <-got:
		if !bytes.Equal(data, payload) {
			t.Errorf("payload mismatch: %d vs %d bytes", len(data), len(payload))
		}
	case err := <-errs:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("stream stalled")
	}
}

func TestStreamEmptyPayload(t *testing.T) {
	f := newFixture(t)
	sender := f.ctx(t, "src")
	receiver := f.ctx(t, "dst")
	got := make(chan []byte, 1)
	go func() {
		data, err := receiver.ReceiveStream("empty", 5*time.Second)
		if err == nil {
			got <- data
		}
	}()
	if err := agent.SendStream(sender, "system/dst", "empty", nil, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case data := <-got:
		if len(data) != 0 {
			t.Errorf("empty stream yielded %d bytes", len(data))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("empty stream stalled")
	}
}

func TestStreamBuffersUnrelatedTraffic(t *testing.T) {
	f := newFixture(t)
	sender := f.ctx(t, "src")
	receiver := f.ctx(t, "dst")

	// Interleave ordinary mail with the stream.
	note := briefcase.New()
	note.SetString("BODY", "while you were streaming")
	if err := sender.Activate("system/dst", note); err != nil {
		t.Fatal(err)
	}
	if err := agent.SendStream(sender, "system/dst", "s1", []byte("abc"), 2); err != nil {
		t.Fatal(err)
	}
	data, err := receiver.ReceiveStream("s1", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "abc" {
		t.Errorf("stream = %q", data)
	}
	// The ordinary message is still there.
	bc, err := receiver.Await(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if body, _ := bc.GetString("BODY"); body != "while you were streaming" {
		t.Errorf("buffered mail = %q", body)
	}
}

func TestStreamBufferReordering(t *testing.T) {
	// Chunks fed in any order reassemble correctly.
	mk := func(seq, total int, data string) *briefcase.Briefcase {
		bc := briefcase.New()
		bc.SetString(agent.FolderStreamID, "x")
		bc.SetInt(agent.FolderStreamSeq, int64(seq))
		bc.SetInt(agent.FolderStreamTotal, int64(total))
		bc.Ensure(agent.FolderStreamData).AppendString(data)
		return bc
	}
	b := agent.NewStreamBuffer("x")
	for _, seq := range []int{2, 0, 1} {
		mine, done, err := b.Feed(mk(seq, 3, string(rune('a'+seq))))
		if err != nil || !mine {
			t.Fatalf("feed %d: %v %v", seq, mine, err)
		}
		if done != (seq == 1) {
			t.Errorf("done after %d = %v", seq, done)
		}
	}
	data, err := b.Bytes()
	if err != nil || string(data) != "abc" {
		t.Errorf("bytes = %q, %v", data, err)
	}
}

func TestStreamBufferErrors(t *testing.T) {
	b := agent.NewStreamBuffer("x")
	other := briefcase.New()
	other.SetString(agent.FolderStreamID, "y")
	if mine, _, err := b.Feed(other); mine || err != nil {
		t.Errorf("foreign stream: mine=%v err=%v", mine, err)
	}
	plain := briefcase.New()
	if mine, _, _ := b.Feed(plain); mine {
		t.Error("plain briefcase claimed")
	}

	bad := briefcase.New()
	bad.SetString(agent.FolderStreamID, "x")
	if _, _, err := b.Feed(bad); !errors.Is(err, agent.ErrStreamCorrupt) {
		t.Errorf("chunk without seq: %v", err)
	}

	mk := func(seq, total int) *briefcase.Briefcase {
		bc := briefcase.New()
		bc.SetString(agent.FolderStreamID, "x")
		bc.SetInt(agent.FolderStreamSeq, int64(seq))
		bc.SetInt(agent.FolderStreamTotal, int64(total))
		bc.Ensure(agent.FolderStreamData).AppendString("d")
		return bc
	}
	b2 := agent.NewStreamBuffer("x")
	if _, _, err := b2.Feed(mk(0, 2)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b2.Feed(mk(1, 3)); !errors.Is(err, agent.ErrStreamCorrupt) {
		t.Errorf("total disagreement: %v", err)
	}
	if _, _, err := b2.Feed(mk(9, 2)); !errors.Is(err, agent.ErrStreamCorrupt) {
		t.Errorf("out-of-range seq: %v", err)
	}
	if _, err := b2.Bytes(); !errors.Is(err, agent.ErrStreamCorrupt) {
		t.Errorf("premature Bytes: %v", err)
	}
}

// Property: any payload at any chunk size round-trips through buffer
// reassembly under any arrival permutation.
func TestPropStreamReassembly(t *testing.T) {
	f := func(seed int64, sizeSel uint16, chunkSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		payload := make([]byte, int(sizeSel)%2048)
		rng.Read(payload)
		chunk := 1 + int(chunkSel)%257

		total := (len(payload) + chunk - 1) / chunk
		if total == 0 {
			total = 1
		}
		var chunks []*briefcase.Briefcase
		for seq := 0; seq < total; seq++ {
			lo := seq * chunk
			hi := lo + chunk
			if hi > len(payload) {
				hi = len(payload)
			}
			bc := briefcase.New()
			bc.SetString(agent.FolderStreamID, "p")
			bc.SetInt(agent.FolderStreamSeq, int64(seq))
			bc.SetInt(agent.FolderStreamTotal, int64(total))
			bc.Ensure(agent.FolderStreamData).Append(payload[lo:hi])
			chunks = append(chunks, bc)
		}
		rng.Shuffle(len(chunks), func(i, j int) { chunks[i], chunks[j] = chunks[j], chunks[i] })

		b := agent.NewStreamBuffer("p")
		done := false
		for _, c := range chunks {
			var err error
			_, done, err = b.Feed(c)
			if err != nil {
				return false
			}
		}
		if !done {
			return false
		}
		got, err := b.Bytes()
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
