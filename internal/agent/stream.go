package agent

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"tax/internal/briefcase"
)

// §4 lists "combinations of streamed, group and/or location independent
// communication" among the support itinerant agents may need. This file
// provides the streamed part: a large byte payload travels as a sequence
// of chunk briefcases and is reassembled at the receiver, tolerating
// reordering. (Group and location-independent communication live in the
// wrapper package.)

// Stream protocol folders.
const (
	// FolderStreamID names the stream a chunk belongs to.
	FolderStreamID = "_STREAMID"
	// FolderStreamSeq is the chunk's 0-based sequence number.
	FolderStreamSeq = "_STREAMSEQ"
	// FolderStreamTotal is the total chunk count (on every chunk).
	FolderStreamTotal = "_STREAMTOTAL"
	// FolderStreamData carries the chunk bytes.
	FolderStreamData = "_STREAMDATA"
)

// DefaultChunkSize is the stream chunk size when none is given (64 KiB —
// a briefcase-friendly unit well under the frame limits).
const DefaultChunkSize = 64 << 10

// ErrStreamCorrupt is returned when reassembly sees inconsistent chunks.
var ErrStreamCorrupt = errors.New("agent: stream corrupt")

// SendStream ships data to the target as a sequence of chunk briefcases
// under the given stream id. A zero chunkSize uses DefaultChunkSize.
// Empty payloads send a single empty chunk so the receiver completes.
func SendStream(c *Context, target, streamID string, data []byte, chunkSize int) error {
	return SendStreamContext(context.Background(), c, target, streamID, data, chunkSize)
}

// SendStreamContext is SendStream with cancellation: the context is
// checked between chunks, so a large transfer stops promptly when the
// caller gives up instead of pushing the remaining chunks into the
// firewall.
func SendStreamContext(ctx context.Context, c *Context, target, streamID string, data []byte, chunkSize int) error {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	total := (len(data) + chunkSize - 1) / chunkSize
	if total == 0 {
		total = 1
	}
	for seq := 0; seq < total; seq++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("agent: stream %s chunk %d: %w", streamID, seq, err)
		}
		lo := seq * chunkSize
		hi := lo + chunkSize
		if hi > len(data) {
			hi = len(data)
		}
		bc := briefcase.New()
		bc.SetString(FolderStreamID, streamID)
		bc.SetInt(FolderStreamSeq, int64(seq))
		bc.SetInt(FolderStreamTotal, int64(total))
		bc.Ensure(FolderStreamData).Append(data[lo:hi])
		if err := c.ActivateCtx(ctx, target, bc); err != nil {
			return fmt.Errorf("agent: stream %s chunk %d: %w", streamID, seq, err)
		}
	}
	return nil
}

// StreamBuffer reassembles one stream's chunks; it tolerates arrival in
// any order and detects inconsistent totals and duplicate payload
// mismatches.
type StreamBuffer struct {
	id     string
	total  int
	chunks map[int][]byte
}

// NewStreamBuffer starts reassembly for the given stream id.
func NewStreamBuffer(id string) *StreamBuffer {
	return &StreamBuffer{id: id, chunks: make(map[int][]byte)}
}

// Feed offers a received briefcase to the buffer. It reports whether the
// briefcase belonged to this stream, and whether the stream is complete.
func (b *StreamBuffer) Feed(bc *briefcase.Briefcase) (mine bool, done bool, err error) {
	id, ok := bc.GetString(FolderStreamID)
	if !ok || id != b.id {
		return false, false, nil
	}
	seq64, ok := bc.GetInt(FolderStreamSeq)
	if !ok {
		return true, false, fmt.Errorf("%w: chunk without sequence", ErrStreamCorrupt)
	}
	total64, ok := bc.GetInt(FolderStreamTotal)
	if !ok || total64 <= 0 {
		return true, false, fmt.Errorf("%w: chunk without total", ErrStreamCorrupt)
	}
	if b.total == 0 {
		b.total = int(total64)
	} else if b.total != int(total64) {
		return true, false, fmt.Errorf("%w: totals disagree (%d vs %d)", ErrStreamCorrupt, b.total, total64)
	}
	seq := int(seq64)
	if seq < 0 || seq >= b.total {
		return true, false, fmt.Errorf("%w: sequence %d of %d", ErrStreamCorrupt, seq, b.total)
	}
	f, err2 := bc.Folder(FolderStreamData)
	if err2 != nil || f.Len() == 0 {
		return true, false, fmt.Errorf("%w: chunk without data", ErrStreamCorrupt)
	}
	data, err2 := f.Element(0)
	if err2 != nil {
		return true, false, err2
	}
	if _, dup := b.chunks[seq]; !dup {
		b.chunks[seq] = data
	}
	return true, len(b.chunks) == b.total, nil
}

// Bytes concatenates the reassembled payload; call only once Feed
// reported done.
func (b *StreamBuffer) Bytes() ([]byte, error) {
	if b.total == 0 || len(b.chunks) != b.total {
		return nil, fmt.Errorf("%w: %d of %d chunks", ErrStreamCorrupt, len(b.chunks), b.total)
	}
	seqs := make([]int, 0, b.total)
	for s := range b.chunks {
		seqs = append(seqs, s)
	}
	sort.Ints(seqs)
	var out []byte
	for _, s := range seqs {
		out = append(out, b.chunks[s]...)
	}
	return out, nil
}

// ReceiveStream blocks until the named stream completes, buffering
// unrelated briefcases for later Await calls. A zero timeout waits
// forever.
func (c *Context) ReceiveStream(streamID string, timeout time.Duration) ([]byte, error) {
	return c.ReceiveStreamCtx(context.Background(), streamID, timeout)
}

// ReceiveStreamCtx is ReceiveStream with cancellation.
func (c *Context) ReceiveStreamCtx(ctx context.Context, streamID string, timeout time.Duration) ([]byte, error) {
	buf := NewStreamBuffer(streamID)
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		remain := time.Duration(0)
		if timeout > 0 {
			remain = time.Until(deadline)
			if remain <= 0 {
				return nil, fmt.Errorf("agent: stream %s: timeout", streamID)
			}
		}
		bc, err := c.receive(ctx, remain)
		if err != nil {
			return nil, err
		}
		mine, done, err := buf.Feed(bc)
		if err != nil {
			return nil, err
		}
		if !mine {
			c.backlog = append(c.backlog, bc)
			continue
		}
		if done {
			return buf.Bytes()
		}
	}
}
