// Package telemetry is the kernel's cross-cutting observability layer:
// a lock-cheap metrics registry, trace spans threaded through briefcases,
// and a bounded structured event log.
//
// The paper's entire evaluation is latency/throughput breakdowns — per-hop
// migration cost, firewall mediation overhead, meet/activate round-trips.
// This package is the measurement substrate: every kernel component
// (firewall, agent library, VMs, simnet, webbot) reports into one
// Telemetry instance, snapshot-able to JSON and queryable over the
// firewall's management interface (taxctl metrics / taxctl trace).
//
// Cost model. Telemetry is built to be near-zero-cost when disabled:
// every instrument handle (Counter, Histogram, Span, EventLog) is a no-op
// on its nil receiver, so instrumented code carries no conditionals and a
// disabled deployment pays one nil check per update. A bare registry
// (telemetry.New with zero Options) costs one atomic add per counter bump
// — cheaper than the mutex-guarded counter struct it replaced. Spans and
// the event log are opt-in via Options.
package telemetry

import (
	"encoding/json"
	"io"
	"time"
)

// Options configure a Telemetry instance.
type Options struct {
	// Host labels spans and ids minted by this instance (a host name in
	// simulations, host:port in TCP deployments).
	Host string
	// Spans enables trace-span collection.
	Spans bool
	// Events enables the structured event log.
	Events bool
	// SpanCapacity bounds the span ring buffer (default 4096).
	SpanCapacity int
	// EventCapacity bounds the event ring buffer (default 1024).
	EventCapacity int
}

// Telemetry bundles the three observability facilities. A nil *Telemetry
// is fully usable and disables everything: accessors return nil, and every
// instrument is nil-safe, so components take a *Telemetry and never branch.
type Telemetry struct {
	host   string
	reg    *Registry
	spans  *SpanStore
	events *EventLog
}

// New creates a Telemetry instance. The metrics registry is always on;
// spans and the event log follow Options.
func New(opts Options) *Telemetry {
	t := &Telemetry{host: opts.Host, reg: NewRegistry()}
	if opts.Spans {
		t.spans = NewSpanStore(opts.SpanCapacity)
	}
	if opts.Events {
		t.events = NewEventLog(opts.EventCapacity)
	}
	return t
}

// Host returns the configured host label ("" on nil).
func (t *Telemetry) Host() string {
	if t == nil {
		return ""
	}
	return t.host
}

// Registry returns the metrics registry (nil when t is nil).
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Spans returns the span store (nil when t is nil or spans are disabled).
func (t *Telemetry) Spans() *SpanStore {
	if t == nil {
		return nil
	}
	return t.spans
}

// Events returns the event log (nil when t is nil or events are disabled).
func (t *Telemetry) Events() *EventLog {
	if t == nil {
		return nil
	}
	return t.events
}

// WipeVolatile discards the retained spans and events, modelling a host
// crash losing its in-memory rings. Metrics (plain counters) survive — they
// carry no history to lose — and the id/sequence counters keep advancing so
// nothing recorded after a restart collides with what a collector already
// pulled before the crash.
func (t *Telemetry) WipeVolatile() {
	if t == nil {
		return
	}
	t.spans.Reset()
	t.events.Reset()
}

// Detailed reports whether span collection is on — instrumentation uses it
// to gate work (wall-clock reads, attribute formatting) that only matters
// when full telemetry is enabled.
func (t *Telemetry) Detailed() bool {
	return t != nil && t.spans != nil
}

// Snapshot is the complete JSON-serializable telemetry state.
type Snapshot struct {
	// Host labels the reporting instance.
	Host string `json:"host,omitempty"`
	// Time is the wall-clock moment the snapshot was taken.
	Time time.Time `json:"time"`
	// Metrics is the registry state.
	Metrics RegistrySnapshot `json:"metrics"`
	// Spans are the retained trace spans, oldest first.
	Spans []SpanRecord `json:"spans,omitempty"`
	// Events are the retained audit events, oldest first.
	Events []Event `json:"events,omitempty"`
}

// Snapshot captures the full state (zero value on nil).
func (t *Telemetry) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{Time: time.Now()}
	}
	return Snapshot{
		Host:    t.host,
		Time:    time.Now(),
		Metrics: t.reg.Snapshot(),
		Spans:   t.spans.Snapshot(),
		Events:  t.events.Snapshot(),
	}
}

// WriteJSON writes an indented JSON snapshot to w.
func (t *Telemetry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Snapshot())
}
