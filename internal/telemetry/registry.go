package telemetry

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. All methods are
// safe on a nil receiver (the disabled-telemetry no-op), so callers can
// resolve counters once and use them unconditionally on hot paths.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (queue depths, agent counts).
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBuckets are the fixed histogram boundaries used for every
// kernel latency histogram: roughly logarithmic from 10 µs to 10 s, wide
// enough for both the loopback hot path and WAN-class transfers. An
// observation lands in the first bucket whose boundary it does not exceed;
// values beyond the last boundary land in the overflow bucket.
var DefaultLatencyBuckets = []time.Duration{
	10 * time.Microsecond, 20 * time.Microsecond, 50 * time.Microsecond,
	100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 10 * time.Second,
}

// Histogram is a fixed-bucket latency histogram. Observations are lock-free
// atomic adds; bucket boundaries are immutable after creation.
type Histogram struct {
	bounds []time.Duration
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	sum    atomic.Int64   // nanoseconds
	count  atomic.Int64
}

func newHistogram(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations (0 on nil).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Bucket returns the observation count of bucket i (the bucket after the
// last boundary is the overflow bucket).
func (h *Histogram) Bucket(i int) int64 {
	if h == nil || i < 0 || i >= len(h.counts) {
		return 0
	}
	return h.counts[i].Load()
}

// HistogramSnapshot is the JSON view of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket boundaries in nanoseconds.
	Bounds []time.Duration `json:"bounds"`
	// Counts holds one count per bucket plus the trailing overflow bucket.
	Counts []int64 `json:"counts"`
	// Count is the total number of observations.
	Count int64 `json:"count"`
	// Sum is the total observed time in nanoseconds.
	Sum time.Duration `json:"sum"`
	// P50, P95 and P99 are quantile estimates derived from the buckets
	// (linear interpolation inside the landing bucket; an observation in
	// the overflow bucket reports the last boundary). Zero when empty.
	P50 time.Duration `json:"p50,omitempty"`
	P95 time.Duration `json:"p95,omitempty"`
	P99 time.Duration `json:"p99,omitempty"`
}

// Quantile estimates the q-th quantile (q in (0, 1]) from the bucket
// counts. The estimate interpolates linearly between the landing bucket's
// boundaries; observations beyond the last boundary clamp to it, so the
// estimate never invents a value the buckets cannot support.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count <= 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(s.Count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if cum+c < target {
			cum += c
			continue
		}
		var lo time.Duration
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		if i >= len(s.Bounds) {
			// Overflow bucket: unbounded above, clamp to the last boundary.
			return s.Bounds[len(s.Bounds)-1]
		}
		hi := s.Bounds[i]
		frac := float64(target-cum) / float64(c)
		return lo + time.Duration(float64(hi-lo)*frac)
	}
	if len(s.Bounds) > 0 {
		return s.Bounds[len(s.Bounds)-1]
	}
	return 0
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    time.Duration(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// Registry is the metrics source of truth: counters, gauges and histograms
// keyed by name plus label pairs. Lookup takes a short RWMutex-guarded map
// access; callers on hot paths resolve their instruments once up front and
// then pay only an atomic add per update.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Key renders the canonical "name{k=v,...}" instrument key for a name and
// label pairs ("k1", "v1", "k2", "v2", ...). Labels are sorted by key, so
// the same set in any order names the same instrument.
func Key(name string, labels ...string) string {
	if len(labels) == 0 {
		return name
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteByte('=')
		sb.WriteString(p.v)
	}
	sb.WriteByte('}')
	return sb.String()
}

// Counter returns (creating if absent) the named counter. Returns nil on a
// nil registry, which yields a no-op counter.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	key := Key(name, labels...)
	r.mu.RLock()
	c, ok := r.counters[key]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[key]; ok {
		return c
	}
	c = &Counter{}
	r.counters[key] = c
	return c
}

// Gauge returns (creating if absent) the named gauge; nil on nil registry.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	key := Key(name, labels...)
	r.mu.RLock()
	g, ok := r.gauges[key]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[key]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[key] = g
	return g
}

// Histogram returns (creating if absent) the named histogram with the
// default latency buckets; nil on nil registry.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	return r.HistogramWithBounds(nil, name, labels...)
}

// HistogramWithBounds is Histogram with explicit bucket boundaries (used
// on first creation; an existing histogram keeps its original bounds).
func (r *Registry) HistogramWithBounds(bounds []time.Duration, name string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	key := Key(name, labels...)
	r.mu.RLock()
	h, ok := r.hists[key]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[key]; ok {
		return h
	}
	h = newHistogram(bounds)
	r.hists[key] = h
	return h
}

// RegistrySnapshot is the JSON view of a registry.
type RegistrySnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot returns a point-in-time copy of every instrument.
func (r *Registry) Snapshot() RegistrySnapshot {
	if r == nil {
		return RegistrySnapshot{}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := RegistrySnapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for k, c := range r.counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range r.gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range r.hists {
		s.Histograms[k] = h.snapshot()
	}
	return s
}
