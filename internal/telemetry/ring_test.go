package telemetry

import (
	"sync"
	"testing"
	"time"
)

// TestHistogramQuantiles pins the bucket-interpolation quantile estimates.
func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q")
	// 100 observations spread evenly through the 1–2 ms bucket: every
	// quantile must interpolate inside [1ms, 2ms].
	for i := 0; i < 100; i++ {
		h.Observe(1500 * time.Microsecond)
	}
	s := r.Snapshot().Histograms["q"]
	for _, tc := range []struct {
		q        float64
		min, max time.Duration
	}{
		{0.50, 1 * time.Millisecond, 2 * time.Millisecond},
		{0.95, 1 * time.Millisecond, 2 * time.Millisecond},
		{0.99, 1 * time.Millisecond, 2 * time.Millisecond},
	} {
		got := s.Quantile(tc.q)
		if got < tc.min || got > tc.max {
			t.Errorf("q%v = %v, want within [%v, %v]", tc.q, got, tc.min, tc.max)
		}
	}
	if s.P50 != s.Quantile(0.50) || s.P95 != s.Quantile(0.95) || s.P99 != s.Quantile(0.99) {
		t.Errorf("snapshot quantile fields disagree with Quantile(): %v/%v/%v",
			s.P50, s.P95, s.P99)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Errorf("quantiles not monotone: p50=%v p95=%v p99=%v", s.P50, s.P95, s.P99)
	}
}

func TestHistogramQuantileSpread(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("spread")
	// 90 fast, 9 medium, 1 slow: p50 in the fast bucket, p95 in the medium,
	// p99 at or past the medium.
	for i := 0; i < 90; i++ {
		h.Observe(15 * time.Microsecond)
	}
	for i := 0; i < 9; i++ {
		h.Observe(800 * time.Microsecond)
	}
	h.Observe(70 * time.Millisecond)
	s := r.Snapshot().Histograms["spread"]
	if s.P50 > 20*time.Microsecond {
		t.Errorf("p50 = %v, want <= 20µs", s.P50)
	}
	if s.P95 < 500*time.Microsecond || s.P95 > 1*time.Millisecond {
		t.Errorf("p95 = %v, want in (500µs, 1ms]", s.P95)
	}
	if s.P99 < 500*time.Microsecond {
		t.Errorf("p99 = %v, want >= 500µs", s.P99)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	// A single overflow observation clamps to the last boundary rather than
	// inventing a value beyond what the buckets can support.
	r := NewRegistry()
	h := r.Histogram("ovf")
	h.Observe(5 * time.Minute)
	s := r.Snapshot().Histograms["ovf"]
	last := s.Bounds[len(s.Bounds)-1]
	if got := s.Quantile(0.99); got != last {
		t.Errorf("overflow quantile = %v, want clamp to %v", got, last)
	}
}

// TestEventLogSnapshotTotalConsistency is the satellite-3 stress test: under
// concurrent Append and SnapshotTotal at capacity, the snapshot length and
// total read under one lock must always agree (len == min(total, cap)), and
// the retained window must be the contiguous tail of the sequence. Separate
// Total() + Snapshot() calls cannot promise this mid-wrap — SnapshotTotal
// exists precisely to close that race. Run with -race.
func TestEventLogSnapshotTotalConsistency(t *testing.T) {
	const capacity = 64
	l := NewEventLog(capacity)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					l.Append(Event{Type: EventAllow})
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		snap, total := l.SnapshotTotal()
		want := int(total)
		if total > capacity {
			want = capacity
		}
		if len(snap) != want {
			t.Fatalf("iter %d: len(snapshot) = %d, total = %d, want len %d",
				i, len(snap), total, want)
		}
		// The window is the contiguous tail ending at total.
		for j, e := range snap {
			if wantSeq := total - uint64(len(snap)) + uint64(j) + 1; e.Seq != wantSeq {
				t.Fatalf("iter %d: snap[%d].Seq = %d, want %d", i, j, e.Seq, wantSeq)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestSpanStoreSnapshotTotalConsistency mirrors the event-log stress test
// for the span ring.
func TestSpanStoreSnapshotTotalConsistency(t *testing.T) {
	const capacity = 64
	st := NewSpanStore(capacity)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					st.add(SpanRecord{TraceID: "t", Name: "op"})
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		snap, total := st.SnapshotTotal()
		want := int(total)
		if total > capacity {
			want = capacity
		}
		if len(snap) != want {
			t.Fatalf("iter %d: len(snapshot) = %d, total = %d, want len %d",
				i, len(snap), total, want)
		}
		for j, r := range snap {
			if wantSeq := total - uint64(len(snap)) + uint64(j) + 1; r.Seq != wantSeq {
				t.Fatalf("iter %d: snap[%d].Seq = %d, want %d", i, j, r.Seq, wantSeq)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestRingSinkAndReset checks the push hook fires per append with the Seq
// stamped, and that Reset clears the window without rewinding sequences.
func TestRingSinkAndReset(t *testing.T) {
	l := NewEventLog(8)
	var mu sync.Mutex
	var seen []uint64
	l.SetSink(func(e Event) {
		mu.Lock()
		seen = append(seen, e.Seq)
		mu.Unlock()
	})
	for i := 0; i < 3; i++ {
		l.Append(Event{Type: EventDeny})
	}
	mu.Lock()
	if len(seen) != 3 || seen[0] != 1 || seen[2] != 3 {
		t.Fatalf("sink saw %v, want [1 2 3]", seen)
	}
	mu.Unlock()

	l.Reset()
	if snap, total := l.SnapshotTotal(); len(snap) != 0 || total != 3 {
		t.Fatalf("after reset: len=%d total=%d, want 0/3", len(snap), total)
	}
	l.Append(Event{Type: EventDeny})
	if snap, _ := l.SnapshotTotal(); len(snap) != 1 || snap[0].Seq != 4 {
		t.Fatalf("post-reset append: %+v, want Seq 4", snap)
	}

	st := NewSpanStore(8)
	var spanSeqs []uint64
	st.SetSink(func(r SpanRecord) { spanSeqs = append(spanSeqs, r.Seq) })
	st.add(SpanRecord{TraceID: "t"})
	st.add(SpanRecord{TraceID: "t"})
	if len(spanSeqs) != 2 || spanSeqs[1] != 2 {
		t.Fatalf("span sink saw %v, want [1 2]", spanSeqs)
	}
	st.Reset()
	if snap, total := st.SnapshotTotal(); len(snap) != 0 || total != 2 {
		t.Fatalf("span reset: len=%d total=%d, want 0/2", len(snap), total)
	}
}
