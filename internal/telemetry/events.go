package telemetry

import (
	"sync"
	"time"
)

// Event types: every mediation decision a firewall takes on a briefcase is
// one of these — the paper's reference-monitor audit trail.
const (
	// EventAllow records a successful local delivery.
	EventAllow = "allow"
	// EventDeny records a policy or authentication rejection.
	EventDeny = "deny"
	// EventPark records a briefcase queued for an absent receiver.
	EventPark = "park"
	// EventExpire records a parked briefcase dropped on timeout.
	EventExpire = "expire"
	// EventDrop records a briefcase discarded for any other reason
	// (malformed frame, no target, wrong host, full mailbox, shutdown).
	EventDrop = "drop"
	// EventForward records a briefcase sent on to a remote firewall.
	EventForward = "forward"
	// EventError records a routing error reported back to the caller.
	EventError = "error"
	// EventRetry records a failed remote forward being retried after a
	// backoff (the attempt that failed, not the one about to start).
	EventRetry = "retry"
	// EventGiveUp records a remote forward abandoned after exhausting its
	// retry policy (attempts or deadline).
	EventGiveUp = "giveup"
	// EventRecover records a rear-guard restoring an agent from its last
	// checkpoint after declaring a hop dead.
	EventRecover = "recover"
	// EventFlush records a batched-mediation flush pushing a container of
	// coalesced frames onto one link.
	EventFlush = "flush"
	// EventQuota records a briefcase refused because the sending
	// principal's rate or byte quota was exhausted (the policy engine's
	// token buckets); the cause names the quota rule that refused.
	EventQuota = "quota"
)

// Event is one structured audit-log entry.
type Event struct {
	// Seq is the event's position in its log's append order (1-based),
	// stamped by Append. It makes ring-buffer wraparound observable: the
	// retained window is always the contiguous tail of the sequence, and
	// consumers that merge several logs deduplicate by (host, seq).
	Seq uint64 `json:"seq"`
	// Time is the recording host's virtual time.
	Time time.Duration `json:"time"`
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// Principal is the authenticated sender principal ("" when unknown).
	Principal string `json:"principal,omitempty"`
	// Target is the destination agent URI the decision concerned.
	Target string `json:"target,omitempty"`
	// Cause explains the decision ("mailbox full", "queue timeout", ...).
	Cause string `json:"cause,omitempty"`
	// Trace and Span carry the trace context active when the event was
	// recorded ("" for untraced traffic), correlating every mediation
	// verdict with the itinerary that provoked it.
	Trace string `json:"trace,omitempty"`
	Span  string `json:"span,omitempty"`
}

// EventLog is a bounded ring buffer of events: the newest Cap entries are
// retained. A nil log disables event collection; Append on nil is a no-op.
type EventLog struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total uint64
	sink  func(Event)
}

// NewEventLog returns a log keeping the newest cap events (default 1024
// when cap <= 0).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = 1024
	}
	return &EventLog{buf: make([]Event, 0, capacity)}
}

// SetSink installs fn, called once per appended event after its Seq is
// stamped. The call happens outside the log's lock, so a sink may inspect
// the log; sink invocations from concurrent appenders may therefore be
// observed out of Seq order — order-sensitive consumers sort by Seq.
func (l *EventLog) SetSink(fn func(Event)) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.sink = fn
	l.mu.Unlock()
}

// Append records one event, stamping its sequence number.
func (l *EventLog) Append(e Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.total++
	e.Seq = l.total
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
	} else {
		l.buf[l.next] = e
		l.next = (l.next + 1) % cap(l.buf)
	}
	sink := l.sink
	l.mu.Unlock()
	if sink != nil {
		sink(e)
	}
}

// Cap returns the ring capacity (0 on nil).
func (l *EventLog) Cap() int {
	if l == nil {
		return 0
	}
	return cap(l.buf)
}

// Total returns the number of events ever appended (including overwritten
// ones); 0 on nil.
func (l *EventLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot returns the retained events, oldest first.
func (l *EventLog) Snapshot() []Event {
	s, _ := l.SnapshotTotal()
	return s
}

// SnapshotTotal returns the retained events (oldest first) together with
// the total ever appended, read under one lock — the two are mutually
// consistent even while concurrent appends wrap the ring, which separate
// Snapshot and Total calls cannot guarantee.
func (l *EventLog) SnapshotTotal() ([]Event, uint64) {
	if l == nil {
		return nil, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out, l.total
}

// Reset discards the retained events, as a host crash discards any other
// volatile state. The sequence counter keeps advancing across the wipe so
// post-crash events never reuse a pre-crash Seq.
func (l *EventLog) Reset() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf = l.buf[:0]
	l.next = 0
}
