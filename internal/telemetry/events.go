package telemetry

import (
	"sync"
	"time"
)

// Event types: every mediation decision a firewall takes on a briefcase is
// one of these — the paper's reference-monitor audit trail.
const (
	// EventAllow records a successful local delivery.
	EventAllow = "allow"
	// EventDeny records a policy or authentication rejection.
	EventDeny = "deny"
	// EventPark records a briefcase queued for an absent receiver.
	EventPark = "park"
	// EventExpire records a parked briefcase dropped on timeout.
	EventExpire = "expire"
	// EventDrop records a briefcase discarded for any other reason
	// (malformed frame, no target, wrong host, full mailbox, shutdown).
	EventDrop = "drop"
	// EventForward records a briefcase sent on to a remote firewall.
	EventForward = "forward"
	// EventError records a routing error reported back to the caller.
	EventError = "error"
	// EventRetry records a failed remote forward being retried after a
	// backoff (the attempt that failed, not the one about to start).
	EventRetry = "retry"
	// EventGiveUp records a remote forward abandoned after exhausting its
	// retry policy (attempts or deadline).
	EventGiveUp = "giveup"
	// EventRecover records a rear-guard restoring an agent from its last
	// checkpoint after declaring a hop dead.
	EventRecover = "recover"
)

// Event is one structured audit-log entry.
type Event struct {
	// Time is the recording host's virtual time.
	Time time.Duration `json:"time"`
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// Principal is the authenticated sender principal ("" when unknown).
	Principal string `json:"principal,omitempty"`
	// Target is the destination agent URI the decision concerned.
	Target string `json:"target,omitempty"`
	// Cause explains the decision ("mailbox full", "queue timeout", ...).
	Cause string `json:"cause,omitempty"`
}

// EventLog is a bounded ring buffer of events: the newest Cap entries are
// retained. A nil log disables event collection; Append on nil is a no-op.
type EventLog struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total uint64
}

// NewEventLog returns a log keeping the newest cap events (default 1024
// when cap <= 0).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = 1024
	}
	return &EventLog{buf: make([]Event, 0, capacity)}
}

// Append records one event.
func (l *EventLog) Append(e Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
	} else {
		l.buf[l.next] = e
		l.next = (l.next + 1) % cap(l.buf)
	}
	l.total++
}

// Total returns the number of events ever appended (including overwritten
// ones); 0 on nil.
func (l *EventLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot returns the retained events, oldest first.
func (l *EventLog) Snapshot() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}
