package telemetry

import (
	"strings"
	"testing"
	"time"

	"tax/internal/vclock"
)

func TestKeyCanonicalization(t *testing.T) {
	if got := Key("fw.sent"); got != "fw.sent" {
		t.Fatalf("bare key: got %q", got)
	}
	a := Key("fw.sent", "host", "h1", "vm", "vm_go")
	b := Key("fw.sent", "vm", "vm_go", "host", "h1")
	if a != b {
		t.Fatalf("label order changed the key: %q vs %q", a, b)
	}
	if want := "fw.sent{host=h1,vm=vm_go}"; a != want {
		t.Fatalf("key = %q, want %q", a, want)
	}
}

func TestCounterGaugeNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	var tel *Telemetry
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(time.Millisecond)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	if tel.Registry() != nil || tel.Spans() != nil || tel.Events() != nil || tel.Detailed() {
		t.Fatal("nil telemetry must disable everything")
	}
	// Nil span store and nil span: every operation is a no-op.
	var st *SpanStore
	sp := st.Start(vclock.NewVirtual(), "h", "t:1", "", "x")
	if sp != nil {
		t.Fatal("nil store must return the nil span")
	}
	sp.SetAttr("k", "v")
	sp.SetErr(nil)
	sp.End()
	var el *EventLog
	el.Append(Event{Type: EventDrop})
	if el.Total() != 0 || el.Snapshot() != nil {
		t.Fatal("nil event log must stay empty")
	}
}

func TestRegistryReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("fw.sent", "host", "h1")
	c2 := r.Counter("fw.sent", "host", "h1")
	if c1 != c2 {
		t.Fatal("same key must resolve to the same counter")
	}
	c1.Add(2)
	if c2.Value() != 2 {
		t.Fatalf("value = %d, want 2", c2.Value())
	}
	if r.Counter("fw.sent", "host", "h2") == c1 {
		t.Fatal("different labels must resolve to a different counter")
	}
}

// TestHistogramBucketBoundaries pins the landing rule: an observation
// goes to the first bucket whose boundary it does not exceed; values
// past the last boundary land in the overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []time.Duration{10 * time.Microsecond, 100 * time.Microsecond, time.Millisecond}
	r := NewRegistry()
	h := r.HistogramWithBounds(bounds, "lat")

	cases := []struct {
		d      time.Duration
		bucket int
	}{
		{0, 0},
		{10 * time.Microsecond, 0}, // boundary is inclusive
		{11 * time.Microsecond, 1},
		{100 * time.Microsecond, 1},
		{time.Millisecond, 2},
		{2 * time.Millisecond, 3}, // overflow
		{time.Hour, 3},            // deep overflow
	}
	for _, c := range cases {
		h.Observe(c.d)
	}
	want := make([]int64, len(bounds)+1)
	for _, c := range cases {
		want[c.bucket]++
	}
	for i, w := range want {
		if got := h.Bucket(i); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != int64(len(cases)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(cases))
	}
	var sum time.Duration
	for _, c := range cases {
		sum += c.d
	}
	if h.Sum() != sum {
		t.Fatalf("sum = %v, want %v", h.Sum(), sum)
	}
	snap := h.snapshot()
	if len(snap.Counts) != len(bounds)+1 {
		t.Fatalf("snapshot has %d buckets, want %d", len(snap.Counts), len(bounds)+1)
	}
}

func TestEventLogWraparound(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 10; i++ {
		l.Append(Event{Time: time.Duration(i), Type: EventAllow})
	}
	if l.Total() != 10 {
		t.Fatalf("total = %d, want 10", l.Total())
	}
	snap := l.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("retained %d events, want 4", len(snap))
	}
	// Newest 4, oldest first: times 6,7,8,9.
	for i, e := range snap {
		if want := time.Duration(6 + i); e.Time != want {
			t.Fatalf("snapshot[%d].Time = %d, want %d", i, e.Time, want)
		}
	}
}

func TestSpanStoreWraparound(t *testing.T) {
	st := NewSpanStore(3)
	clock := vclock.NewVirtual()
	trace := NewTraceID("h1")
	for i := 0; i < 7; i++ {
		clock.Advance(time.Millisecond)
		sp := st.Start(clock, "h1", trace, "", "op")
		sp.End()
	}
	if st.Total() != 7 {
		t.Fatalf("total = %d, want 7", st.Total())
	}
	snap := st.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("retained %d spans, want 3", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Start < snap[i-1].Start {
			t.Fatal("snapshot must be oldest first")
		}
	}
	if got := st.ForTrace(trace); len(got) != 3 {
		t.Fatalf("ForTrace retained %d, want 3", len(got))
	}
	if got := st.ForTrace("t:none:0"); got != nil {
		t.Fatalf("ForTrace of unknown trace = %v, want nil", got)
	}
}

func TestSpanRecordsClockAndLinkage(t *testing.T) {
	st := NewSpanStore(0)
	clock := vclock.NewVirtual()
	clock.Advance(5 * time.Millisecond)
	trace := NewTraceID("h1")

	parent := st.Start(clock, "h1", trace, "", "outer")
	clock.Advance(time.Millisecond)
	child := st.Start(clock, "h1", trace, parent.ID(), "inner")
	clock.Advance(time.Millisecond)
	child.SetAttr("k", "v")
	child.End()
	clock.Advance(time.Millisecond)
	parent.End()

	spans := st.ForTrace(trace)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	in, out := spans[0], spans[1] // child ended first
	if in.Name != "inner" || out.Name != "outer" {
		t.Fatalf("order: %s, %s", in.Name, out.Name)
	}
	if in.Parent != out.SpanID {
		t.Fatalf("child parent = %q, want %q", in.Parent, out.SpanID)
	}
	if out.Start != 5*time.Millisecond || out.End != 8*time.Millisecond {
		t.Fatalf("outer interval %v..%v", out.Start, out.End)
	}
	if in.Start != 6*time.Millisecond || in.End != 7*time.Millisecond {
		t.Fatalf("inner interval %v..%v", in.Start, in.End)
	}
	if len(in.Attrs) != 2 || in.Attrs[0] != "k" || in.Attrs[1] != "v" {
		t.Fatalf("attrs = %v", in.Attrs)
	}
}

func TestTraceIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID("h")
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
		if !strings.HasPrefix(id, "t:h:") {
			t.Fatalf("trace id %q lacks prefix", id)
		}
	}
}

func TestSnapshotJSON(t *testing.T) {
	tel := New(Options{Host: "h1", Spans: true, Events: true})
	tel.Registry().Counter("fw.delivered", "host", "h1").Add(3)
	tel.Registry().Gauge("agents").Set(2)
	tel.Registry().Histogram("fw.send").Observe(42 * time.Microsecond)
	tel.Events().Append(Event{Type: EventAllow, Target: "system/dst"})
	sp := tel.Spans().Start(vclock.NewVirtual(), "h1", NewTraceID("h1"), "", "x")
	sp.End()

	var sb strings.Builder
	if err := tel.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`"fw.delivered{host=h1}": 3`, `"agents": 2`, `"fw.send"`,
		`"type": "allow"`, `"name": "x"`, `"host": "h1"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON snapshot missing %q:\n%s", want, out)
		}
	}
}
