package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tax/internal/vclock"
)

// idCounter feeds process-unique span and trace id suffixes.
var idCounter atomic.Uint64

// NewTraceID mints a fresh trace id. The prefix (typically a host name)
// keeps ids from different processes distinct in a TCP deployment. The
// suffix is fixed-width: ids ride inside briefcase folders, so in the
// simulated network their length feeds the payload-size → transfer-time
// model — variable-width ids would make virtual timings depend on how many
// ids the process happened to mint before, breaking seeded determinism.
func NewTraceID(prefix string) string {
	return fmt.Sprintf("t:%s:%016x", prefix, idCounter.Add(1))
}

func newSpanID(prefix string) string {
	return fmt.Sprintf("s:%s:%016x", prefix, idCounter.Add(1))
}

// SpanRecord is one finished span: a named interval on a host's virtual
// clock, linked into a trace tree by parent span id. A whole itinerary —
// agent hops, firewall mediations, VM activations — renders as one tree
// under a single trace id.
type SpanRecord struct {
	// Seq is the record's position in its store's append order (1-based),
	// stamped when the span ends. See Event.Seq for why: it makes ring
	// wraparound observable and lets collectors deduplicate by (host, seq).
	Seq     uint64 `json:"seq"`
	TraceID string `json:"trace"`
	SpanID  string `json:"span"`
	// Parent is the parent span id; empty marks a trace root.
	Parent string `json:"parent,omitempty"`
	// Name labels the operation ("agent.go", "fw.send", "vm.exec", ...).
	Name string `json:"name"`
	// Host is the host the span was recorded on.
	Host string `json:"host,omitempty"`
	// Start and End are virtual times on the recording host's clock.
	Start time.Duration `json:"start"`
	End   time.Duration `json:"end"`
	// Attrs are flattened key/value pairs (target URIs, byte counts, ...).
	Attrs []string `json:"attrs,omitempty"`
	// Err records a failure outcome ("" on success).
	Err string `json:"err,omitempty"`
}

// Span is a live, not-yet-finished span handle. A nil Span is the disabled
// no-op: every method is safe and ID returns "".
type Span struct {
	store *SpanStore
	clock vclock.Clock
	rec   SpanRecord
}

// ID returns the span's id ("" on nil), used as the parent of child spans
// and carried in briefcases as the trace-context folder.
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.rec.SpanID
}

// SetAttr attaches a key/value attribute.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.rec.Attrs = append(s.rec.Attrs, k, v)
}

// SetErr records a failure outcome.
func (s *Span) SetErr(err error) {
	if s == nil || err == nil {
		return
	}
	s.rec.Err = err.Error()
}

// End stamps the end time from the span's clock and commits the record to
// the store. End is idempotent in effect only through caller discipline:
// call it exactly once.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.rec.End = s.clock.Now()
	s.store.add(s.rec)
}

// SpanStore collects finished spans in a bounded ring: the newest Cap
// spans are kept, older ones are overwritten (the store is a flight
// recorder, not an archive). A nil store disables span collection.
type SpanStore struct {
	mu    sync.Mutex
	buf   []SpanRecord
	next  int
	total uint64
	sink  func(SpanRecord)
}

// SetSink installs fn, called once per committed span after its Seq is
// stamped. The call happens outside the store's lock (see EventLog.SetSink
// for the ordering caveat). The tower collector uses this as its
// push-on-span-end feed, so spans reach the system-wide view even if the
// recording host later crashes and wipes its volatile ring.
func (st *SpanStore) SetSink(fn func(SpanRecord)) {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.sink = fn
	st.mu.Unlock()
}

// NewSpanStore returns a store keeping the newest cap spans (default 4096
// when cap <= 0).
func NewSpanStore(capacity int) *SpanStore {
	if capacity <= 0 {
		capacity = 4096
	}
	return &SpanStore{buf: make([]SpanRecord, 0, capacity)}
}

// Start opens a span at clock.Now(). Returns nil (the no-op span) on a nil
// store, so callers need no disabled-path branching.
func (st *SpanStore) Start(clock vclock.Clock, host, traceID, parent, name string) *Span {
	if st == nil || traceID == "" {
		return nil
	}
	return &Span{
		store: st,
		clock: clock,
		rec: SpanRecord{
			TraceID: traceID,
			SpanID:  newSpanID(host),
			Parent:  parent,
			Name:    name,
			Host:    host,
			Start:   clock.Now(),
		},
	}
}

func (st *SpanStore) add(rec SpanRecord) {
	st.mu.Lock()
	st.total++
	rec.Seq = st.total
	if len(st.buf) < cap(st.buf) {
		st.buf = append(st.buf, rec)
	} else {
		st.buf[st.next] = rec
		st.next = (st.next + 1) % cap(st.buf)
	}
	sink := st.sink
	st.mu.Unlock()
	if sink != nil {
		sink(rec)
	}
}

// Total returns the number of spans ever recorded (including overwritten
// ones); 0 on nil.
func (st *SpanStore) Total() uint64 {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.total
}

// Snapshot returns the retained spans, oldest first.
func (st *SpanStore) Snapshot() []SpanRecord {
	s, _ := st.SnapshotTotal()
	return s
}

// SnapshotTotal returns the retained spans (oldest first) together with the
// total ever recorded, read under one lock so the pair is consistent even
// mid-wrap under concurrent appends.
func (st *SpanStore) SnapshotTotal() ([]SpanRecord, uint64) {
	if st == nil {
		return nil, 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]SpanRecord, 0, len(st.buf))
	out = append(out, st.buf[st.next:]...)
	out = append(out, st.buf[:st.next]...)
	return out, st.total
}

// Reset discards the retained spans (a crashed host's volatile ring). The
// sequence counter keeps advancing so post-crash spans never reuse a
// pre-crash Seq.
func (st *SpanStore) Reset() {
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.buf = st.buf[:0]
	st.next = 0
}

// ForTrace returns the retained spans of one trace, oldest first.
func (st *SpanStore) ForTrace(traceID string) []SpanRecord {
	var out []SpanRecord
	for _, r := range st.Snapshot() {
		if r.TraceID == traceID {
			out = append(out, r)
		}
	}
	return out
}
