package telemetry

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tax/internal/vclock"
)

// idCounter feeds process-unique span and trace id suffixes.
var idCounter atomic.Uint64

// NewTraceID mints a fresh trace id. The prefix (typically a host name)
// keeps ids from different processes distinct in a TCP deployment.
func NewTraceID(prefix string) string {
	return "t:" + prefix + ":" + strconv.FormatUint(idCounter.Add(1), 16)
}

func newSpanID(prefix string) string {
	return "s:" + prefix + ":" + strconv.FormatUint(idCounter.Add(1), 16)
}

// SpanRecord is one finished span: a named interval on a host's virtual
// clock, linked into a trace tree by parent span id. A whole itinerary —
// agent hops, firewall mediations, VM activations — renders as one tree
// under a single trace id.
type SpanRecord struct {
	TraceID string `json:"trace"`
	SpanID  string `json:"span"`
	// Parent is the parent span id; empty marks a trace root.
	Parent string `json:"parent,omitempty"`
	// Name labels the operation ("agent.go", "fw.send", "vm.exec", ...).
	Name string `json:"name"`
	// Host is the host the span was recorded on.
	Host string `json:"host,omitempty"`
	// Start and End are virtual times on the recording host's clock.
	Start time.Duration `json:"start"`
	End   time.Duration `json:"end"`
	// Attrs are flattened key/value pairs (target URIs, byte counts, ...).
	Attrs []string `json:"attrs,omitempty"`
	// Err records a failure outcome ("" on success).
	Err string `json:"err,omitempty"`
}

// Span is a live, not-yet-finished span handle. A nil Span is the disabled
// no-op: every method is safe and ID returns "".
type Span struct {
	store *SpanStore
	clock vclock.Clock
	rec   SpanRecord
}

// ID returns the span's id ("" on nil), used as the parent of child spans
// and carried in briefcases as the trace-context folder.
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.rec.SpanID
}

// SetAttr attaches a key/value attribute.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.rec.Attrs = append(s.rec.Attrs, k, v)
}

// SetErr records a failure outcome.
func (s *Span) SetErr(err error) {
	if s == nil || err == nil {
		return
	}
	s.rec.Err = err.Error()
}

// End stamps the end time from the span's clock and commits the record to
// the store. End is idempotent in effect only through caller discipline:
// call it exactly once.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.rec.End = s.clock.Now()
	s.store.add(s.rec)
}

// SpanStore collects finished spans in a bounded ring: the newest Cap
// spans are kept, older ones are overwritten (the store is a flight
// recorder, not an archive). A nil store disables span collection.
type SpanStore struct {
	mu    sync.Mutex
	buf   []SpanRecord
	next  int
	total uint64
}

// NewSpanStore returns a store keeping the newest cap spans (default 4096
// when cap <= 0).
func NewSpanStore(capacity int) *SpanStore {
	if capacity <= 0 {
		capacity = 4096
	}
	return &SpanStore{buf: make([]SpanRecord, 0, capacity)}
}

// Start opens a span at clock.Now(). Returns nil (the no-op span) on a nil
// store, so callers need no disabled-path branching.
func (st *SpanStore) Start(clock vclock.Clock, host, traceID, parent, name string) *Span {
	if st == nil || traceID == "" {
		return nil
	}
	return &Span{
		store: st,
		clock: clock,
		rec: SpanRecord{
			TraceID: traceID,
			SpanID:  newSpanID(host),
			Parent:  parent,
			Name:    name,
			Host:    host,
			Start:   clock.Now(),
		},
	}
}

func (st *SpanStore) add(rec SpanRecord) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.buf) < cap(st.buf) {
		st.buf = append(st.buf, rec)
	} else {
		st.buf[st.next] = rec
		st.next = (st.next + 1) % cap(st.buf)
	}
	st.total++
}

// Total returns the number of spans ever recorded (including overwritten
// ones); 0 on nil.
func (st *SpanStore) Total() uint64 {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.total
}

// Snapshot returns the retained spans, oldest first.
func (st *SpanStore) Snapshot() []SpanRecord {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]SpanRecord, 0, len(st.buf))
	out = append(out, st.buf[st.next:]...)
	out = append(out, st.buf[:st.next]...)
	return out
}

// ForTrace returns the retained spans of one trace, oldest first.
func (st *SpanStore) ForTrace(traceID string) []SpanRecord {
	var out []SpanRecord
	for _, r := range st.Snapshot() {
		if r.TraceID == traceID {
			out = append(out, r)
		}
	}
	return out
}
