package webbot

import (
	"errors"
	"reflect"
	"testing"

	"tax/internal/simnet"
	"tax/internal/vclock"
	"tax/internal/websim"
)

// TestParallelCrawlIdenticalToSerial is the tentpole determinism proof:
// a K=8 parallel crawl of the 917-page case-study site produces Stats
// byte-identical to the serial crawl — visit counts, byte totals, link
// logs in order, age/type histograms, and the simulated Elapsed.
func TestParallelCrawlIdenticalToSerial(t *testing.T) {
	serialBot, site := newLocalRobot(t, 4)
	serial, err := serialBot.Run(site.Root)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 8} {
		par, _ := newLocalRobot(t, 4)
		par.Workers = workers
		got, err := par.Run(site.Root)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d: parallel Stats differ from serial\nparallel: %+v\nserial:   %+v",
				workers, got, serial)
		}
		if got.Elapsed != serial.Elapsed {
			t.Errorf("workers=%d: Elapsed %v != serial %v", workers, got.Elapsed, serial.Elapsed)
		}
	}
}

// TestParallelCrawlClockIdentical checks the robot's clock itself (not
// just Stats.Elapsed) advances identically, and the fetcher's traffic
// counters match: the fleet and bench layers read both.
func TestParallelCrawlClockIdentical(t *testing.T) {
	serialBot, site := newLocalRobot(t, 4)
	if _, err := serialBot.Run(site.Root); err != nil {
		t.Fatal(err)
	}
	serialClock := serialBot.Clock.Now()
	serialClient := serialBot.Fetcher.(*websim.Client)

	par, _ := newLocalRobot(t, 4)
	par.Workers = 8
	if _, err := par.Run(site.Root); err != nil {
		t.Fatal(err)
	}
	if got := par.Clock.Now(); got != serialClock {
		t.Errorf("parallel clock = %v, serial clock = %v", got, serialClock)
	}
	parClient := par.Fetcher.(*websim.Client)
	if parClient.Requests != serialClient.Requests || parClient.BytesFetched != serialClient.BytesFetched {
		t.Errorf("parallel client counters (%d req, %d B) != serial (%d req, %d B)",
			parClient.Requests, parClient.BytesFetched, serialClient.Requests, serialClient.BytesFetched)
	}
}

// TestParallelCrawlDepthSweep checks determinism across depth limits,
// including depth 0 (root only) where the discovery has a single wave.
func TestParallelCrawlDepthSweep(t *testing.T) {
	for _, depth := range []int{0, 1, 2, 3} {
		serialBot, site := newLocalRobot(t, depth)
		serial, err := serialBot.Run(site.Root)
		if err != nil {
			t.Fatal(err)
		}
		par, _ := newLocalRobot(t, depth)
		par.Workers = 4
		got, err := par.Run(site.Root)
		if err != nil {
			t.Fatalf("depth=%d: %v", depth, err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("depth=%d: parallel Stats differ from serial", depth)
		}
	}
}

// TestParallelNeedsForkableFetcher: a Workers > 1 robot over a fetcher
// that cannot be forked reports the typed error instead of racing.
func TestParallelNeedsForkableFetcher(t *testing.T) {
	clock := vclock.NewVirtual()
	r := &Robot{
		Fetcher: &websim.ExternalChecker{Link: simnet.WAN10, Clock: clock},
		Clock:   clock,
		Workers: 4,
	}
	if _, err := r.Run("http://x/"); !errors.Is(err, ErrNotForkable) {
		t.Fatalf("err = %v, want ErrNotForkable", err)
	}
}

// TestPrefixBoundaries covers the boundary cases the old hand-rolled
// hasPrefix helper never had tests for: the empty prefix (matches
// everything, so nothing is prefix-rejected) and a prefix longer than
// the URL (rejects it).
func TestPrefixBoundaries(t *testing.T) {
	site, err := websim.Generate(websim.CaseStudySpec("webserv"))
	if err != nil {
		t.Fatal(err)
	}
	run := func(prefix string, maxDepth int) *Stats {
		clock := vclock.NewVirtual()
		r := &Robot{
			Fetcher: &websim.Client{
				Server:   websim.DefaultServer(site),
				Universe: &websim.Universe{Origin: site},
				Link:     simnet.Loopback,
				Clock:    clock,
			},
			Clock:       clock,
			Constraints: Constraints{MaxDepth: maxDepth, Prefix: prefix},
		}
		st, err := r.Run(site.Root)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	// Empty prefix: no link is prefix-rejected; external links are
	// followed (and mostly resolve through the universe).
	st := run("", 1)
	for _, rej := range st.Rejected {
		if rej.Reason == "prefix" {
			t.Fatalf("empty prefix rejected %q", rej.URL)
		}
	}

	// A prefix longer than every URL matches nothing: all links are
	// prefix-rejected and only the root is visited.
	longPrefix := "http://webserv/this-prefix-is-longer-than-any-generated-url-on-the-site/really/it/is/"
	st = run(longPrefix, 4)
	if st.PagesVisited != 1 {
		t.Errorf("long prefix: visited %d pages, want 1 (root only)", st.PagesVisited)
	}
	for _, rej := range st.Rejected {
		if rej.Reason != "prefix" {
			t.Errorf("long prefix: unexpected rejection reason %q for %q", rej.Reason, rej.URL)
		}
	}
}
