package webbot

import (
	"fmt"
	"time"

	"tax/internal/cabinet"
	"tax/internal/telemetry"
	"tax/internal/vclock"
	"tax/internal/websim"
)

// RobotsPolicy says how a crawl treats the origin's robots.txt.
type RobotsPolicy int

const (
	// RobotsIgnore skips the robots.txt fetch entirely (the legacy
	// behavior, and the right one for crawling sites you operate).
	RobotsIgnore RobotsPolicy = iota
	// RobotsHonor fetches /robots.txt before crawling, refuses
	// disallowed URLs (journaled as wb_robots_denied), and adopts the
	// site's Crawl-delay when it exceeds the configured politeness.
	RobotsHonor
)

// config is the resolved option set behind a Robot built with New.
type config struct {
	maxDepth    int
	stable      int
	prefix      string
	workers     int
	strict      bool // abort (legacy) instead of journaling beyond-stable subtrees
	robots      RobotsPolicy
	agent       string
	politeness  time.Duration
	recrawl     bool
	store       *cabinet.Store
	ns          string
	maxAttempts int
	clock       vclock.Clock
	telemetry   *telemetry.Telemetry
	traceID     string
	spanParent  string
	err         error // first option error, surfaced by RunCtx
}

// Option configures a Robot built with New.
type Option func(*config)

// WithMaxDepth bounds the crawl depth (links below it are rejected and
// reported, like the paper's depth-constrained robot).
func WithMaxDepth(d int) Option {
	return func(c *config) {
		if d < 0 {
			c.err = fmt.Errorf("webbot: negative max depth %d", d)
			return
		}
		c.maxDepth = d
	}
}

// WithPrefix constrains the crawl to URLs with the given prefix; links
// outside it are rejected and reported for the wrapper's second pass.
func WithPrefix(p string) Option {
	return func(c *config) { c.prefix = p }
}

// WithWorkers sets the number of concurrent fetcher workers (default
// 1). More than one requires a ForkableFetcher.
func WithWorkers(n int) Option {
	return func(c *config) {
		if n < 1 {
			c.err = fmt.Errorf("webbot: need at least 1 worker, got %d", n)
			return
		}
		c.workers = n
	}
}

// WithRobotsPolicy sets how the crawl treats robots.txt (default
// RobotsIgnore).
func WithRobotsPolicy(p RobotsPolicy) Option {
	return func(c *config) { c.robots = p }
}

// WithUserAgent names the crawler for robots.txt group matching
// (default "webbot").
func WithUserAgent(agent string) Option {
	return func(c *config) { c.agent = agent }
}

// WithPoliteness spaces fetches against the same host at least d apart
// on the virtual clock. Waits are charged to worker schedules (and the
// modeled makespan), never to per-URL fetch costs, so Stats stay
// byte-identical across politeness settings.
func WithPoliteness(d time.Duration) Option {
	return func(c *config) { c.politeness = d }
}

// WithStableDepth overrides the depth beyond which the legacy robot's
// recursion was unstable (default DefaultMaxStableDepth). The staged
// crawler clamps expansion there and journals the abandoned subtree
// frontier as wb_depth_unstable events instead of aborting.
func WithStableDepth(d int) Option {
	return func(c *config) {
		if d < 0 {
			c.err = fmt.Errorf("webbot: negative stable depth %d", d)
			return
		}
		c.stable = d
	}
}

// WithDepthAbort restores the legacy strict semantics: a crawl whose
// max depth exceeds the stable limit fails up front with ErrUnstable
// instead of clamping and journaling.
func WithDepthAbort() Option {
	return func(c *config) { c.strict = true }
}

// WithFrontier backs the crawl's URL frontier with a cabinet store
// under the given key namespace (default "fr/"): enqueue, claim, and
// complete become WAL transactions, and a crashed crawl resumes
// exactly where the log ends, refetching nothing it completed.
func WithFrontier(store *cabinet.Store, namespace string) Option {
	return func(c *config) {
		c.store = store
		c.ns = namespace
	}
}

// WithRecrawl starts an incremental re-crawl cycle when the frontier
// holds a previous crawl's records: each page is revalidated with a
// cheap HEAD probe first and refetched only when its status, size, or
// age changed. Requires WithFrontier (records must have somewhere to
// live between cycles).
func WithRecrawl() Option {
	return func(c *config) { c.recrawl = true }
}

// WithRetries bounds fetch attempts per URL before the failure journal
// records it terminally (default 3).
func WithRetries(n int) Option {
	return func(c *config) {
		if n < 1 {
			c.err = fmt.Errorf("webbot: need at least 1 attempt, got %d", n)
			return
		}
		c.maxAttempts = n
	}
}

// WithClock charges the crawl's virtual time to clock (default: a
// fresh virtual clock).
func WithClock(clock vclock.Clock) Option {
	return func(c *config) { c.clock = clock }
}

// WithTelemetry publishes crawl counters and spans to tel.
func WithTelemetry(tel *telemetry.Telemetry) Option {
	return func(c *config) { c.telemetry = tel }
}

// WithTrace threads an existing trace through the crawl span.
func WithTrace(traceID, spanParent string) Option {
	return func(c *config) { c.traceID, c.spanParent = traceID, spanParent }
}

func buildConfig(opts []Option) config {
	c := config{
		maxDepth:    DefaultMaxStableDepth,
		stable:      DefaultMaxStableDepth,
		workers:     1,
		agent:       "webbot",
		ns:          "fr/",
		maxAttempts: 3,
	}
	for _, o := range opts {
		o(&c)
	}
	return c
}

// New builds a Robot around fetcher with the staged-crawler defaults:
// depth 4, one worker, robots ignored, volatile frontier. The returned
// Robot is driven with RunCtx. The legacy Constraints/Run surface
// remains usable on the same value (Run is a shim over RunCtx).
func New(fetcher websim.Fetcher, opts ...Option) *Robot {
	c := buildConfig(opts)
	clock := c.clock
	if clock == nil {
		clock = vclock.NewVirtual()
	}
	r := &Robot{
		Fetcher: fetcher,
		Clock:   clock,
		Constraints: Constraints{
			MaxDepth:       c.maxDepth,
			Prefix:         c.prefix,
			MaxStableDepth: c.stable,
		},
		Workers:    c.workers,
		Telemetry:  c.telemetry,
		TraceID:    c.traceID,
		SpanParent: c.spanParent,
		cfg:        &c,
	}
	return r
}
