package webbot

import (
	"errors"

	"tax/internal/firewall"
)

// Typed crawler errors. Each is registered with the firewall's error
// code registry, so a webbot failure crossing a host boundary (a fleet
// worker reporting to its coordinator) survives as the same errors.Is
// sentinel on the far side.
var (
	// ErrUnstable reports a crawl aborted (or a subtree journaled)
	// because the requested depth exceeds the stable limit — the
	// paper's observation that the robot's recursive expansion is only
	// trustworthy to depth 4 on the case-study server.
	ErrUnstable = errors.New("webbot: unstable beyond max stable depth")
	// ErrRobotsDenied reports a URL the site's robots.txt forbids for
	// this crawler.
	ErrRobotsDenied = errors.New("webbot: denied by robots.txt")
	// ErrFetchFailed reports a URL whose fetch failed after the
	// frontier's retry budget (or whose record is missing at replay).
	ErrFetchFailed = errors.New("webbot: fetch failed")
)

// Stable wire codes for the sentinels above.
const (
	CodeRobotsDenied  = "wb_robots_denied"
	CodeDepthUnstable = "wb_depth_unstable"
	CodeFetchFailed   = "wb_fetch_failed"
)

func init() {
	firewall.RegisterErrorCode(CodeDepthUnstable, ErrUnstable)
	firewall.RegisterErrorCode(CodeRobotsDenied, ErrRobotsDenied)
	firewall.RegisterErrorCode(CodeFetchFailed, ErrFetchFailed)
}
