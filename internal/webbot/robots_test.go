package webbot

import (
	"testing"
	"time"
)

func TestParseRobotsTable(t *testing.T) {
	const body = `# taxsim generated
User-agent: badbot
Disallow: /

User-agent: *
Crawl-delay: 0.5
Disallow: /private/
Disallow: /tmp
Allow: /private/ok.html
Disallow: /*.cgi$
Disallow: /a/*/deep
Disallow:
`
	r := ParseRobots(body)
	cases := []struct {
		agent, path string
		want        bool
	}{
		// The wildcard group's prefix rules.
		{"webbot", "/", true},
		{"webbot", "/index.html", true},
		{"webbot", "/private/", false},
		{"webbot", "/private/secret.html", false},
		{"webbot", "/tmp", false},
		{"webbot", "/tmpfile", false}, // prefix match, not path-segment match
		// Longest match wins: the Allow rule is more specific.
		{"webbot", "/private/ok.html", true},
		// '$' anchors: only exact .cgi suffixes.
		{"webbot", "/run.cgi", false},
		{"webbot", "/run.cgi.html", true},
		// '*' spans path segments.
		{"webbot", "/a/b/deep", false},
		{"webbot", "/a/b/c/deep/more", false},
		{"webbot", "/a/deep", true},
		// Agent-token matching is a case-insensitive contains match.
		{"badbot", "/", false},
		{"BadBot/2.0", "/anything", false},
		// Empty Disallow matches nothing.
		{"webbot", "", true},
	}
	for _, c := range cases {
		if got := r.Allowed(c.agent, c.path); got != c.want {
			t.Errorf("Allowed(%q, %q) = %v, want %v", c.agent, c.path, got, c.want)
		}
	}
	if d := r.CrawlDelay("webbot"); d != 500*time.Millisecond {
		t.Errorf("CrawlDelay(webbot) = %v, want 500ms", d)
	}
	if d := r.CrawlDelay("badbot"); d != 0 {
		t.Errorf("CrawlDelay(badbot) = %v, want 0 (its group sets none)", d)
	}
}

func TestParseRobotsEdgeCases(t *testing.T) {
	// A nil Robots (no robots.txt) allows everything.
	var nilRobots *Robots
	if !nilRobots.Allowed("webbot", "/x") {
		t.Error("nil robots must allow")
	}
	// Rules before any User-agent line are ignored.
	r := ParseRobots("Disallow: /\nUser-agent: *\nDisallow: /b\n")
	if !r.Allowed("webbot", "/a") {
		t.Error("headerless Disallow must be ignored")
	}
	if r.Allowed("webbot", "/b") {
		t.Error("grouped Disallow must apply")
	}
	// Consecutive User-agent lines share one group.
	r = ParseRobots("User-agent: alpha\nUser-agent: beta\nDisallow: /x\n")
	for _, agent := range []string{"alpha", "beta"} {
		if r.Allowed(agent, "/x") {
			t.Errorf("agent %s should share the group's Disallow", agent)
		}
	}
	// A later User-agent line after rules starts a new group.
	r = ParseRobots("User-agent: alpha\nDisallow: /x\nUser-agent: beta\nDisallow: /y\n")
	if r.Allowed("beta", "/y") || !r.Allowed("beta", "/x") {
		t.Error("second group must not inherit the first group's rules")
	}
	// The most specific agent token wins over the wildcard group.
	r = ParseRobots("User-agent: *\nDisallow: /\nUser-agent: webbot\nDisallow: /only\n")
	if !r.Allowed("webbot", "/fine") || r.Allowed("webbot", "/only") {
		t.Error("named group must shadow the wildcard group")
	}
	if r.Allowed("stranger", "/fine") {
		t.Error("unmatched agent falls back to the wildcard group")
	}
	// Tie between Allow and Disallow of equal length: allow wins.
	r = ParseRobots("User-agent: *\nDisallow: /ab\nAllow: /ab\n")
	if !r.Allowed("webbot", "/ab") {
		t.Error("equal-length tie must resolve to allow")
	}
	// Unparseable crawl delays are skipped.
	r = ParseRobots("User-agent: *\nCrawl-delay: soon\n")
	if r.CrawlDelay("webbot") != 0 {
		t.Error("bad crawl-delay must parse as zero")
	}
}

func TestURLHelpers(t *testing.T) {
	if p := urlPath("http://webserv/a/b.html"); p != "/a/b.html" {
		t.Errorf("urlPath = %q", p)
	}
	if p := urlPath("http://webserv"); p != "/" {
		t.Errorf("urlPath(host only) = %q", p)
	}
	if u := robotsURLFor("http://webserv/deep/page.html"); u != "http://webserv/robots.txt" {
		t.Errorf("robotsURLFor = %q", u)
	}
	if u := robotsURLFor("not-a-url"); u != "" {
		t.Errorf("robotsURLFor(garbage) = %q, want empty", u)
	}
}

// FuzzRobots asserts the parser and matcher never panic and that an
// empty rule set allows everything, whatever bytes arrive as
// robots.txt. Wired into `make fuzz-short`.
func FuzzRobots(f *testing.F) {
	f.Add("User-agent: *\nDisallow: /private/\nAllow: /private/ok\n", "webbot", "/private/ok")
	f.Add("User-agent: a\nUser-agent: b\nCrawl-delay: 1.5\nDisallow: /*.cgi$\n", "a", "/x.cgi")
	f.Add("# only comments\n\n\n", "any", "/")
	f.Add("Disallow: /orphan\nUser-agent:\nDisallow: /\n", "", "")
	f.Add("User-agent: *\nDisallow: /a/*/b*c$\n", "bot", "/a/x/byc")
	f.Fuzz(func(t *testing.T, body, agent, path string) {
		r := ParseRobots(body)
		_ = r.Allowed(agent, path)
		_ = r.CrawlDelay(agent)
		if len(r.groups) == 0 && !r.Allowed(agent, path) {
			t.Fatal("an empty rule set must allow everything")
		}
	})
}
