// Parallel crawling: prefetch the page set with K workers, then replay.
//
// The serial crawl's Stats depend on traversal order (depth-limited DFS
// re-expands a page reached at a strictly shallower depth, so the link
// logs count re-expansions), which a naive concurrent traversal cannot
// reproduce. Instead the crawl is split in two phases:
//
//  1. Prefetch: a breadth-first wave discovery fetches every page with
//     K workers on forked fetchers whose costs land on private virtual
//     clocks, recording {response, cost} per URL. The fetched set is
//     order-independent: the serial crawl's best-depth relaxation
//     converges to the shortest-constraint-depth fixpoint, which is
//     exactly what breadth-first discovery computes, so both phases
//     fetch the same URLs.
//  2. Replay: the unchanged serial traversal runs against the prefetch
//     cache; each cache hit charges the robot's clock the recorded
//     cost via ForkableFetcher.Replay. Virtual-clock charges commute,
//     so the summed Elapsed is identical to the serial crawl's.
//
// A URL the discovery did not reach (possible only after a fetch error
// cut a wave short) falls back to a live fetch through the parent
// fetcher, which is what the serial crawl would have done.
package webbot

import (
	"strings"
	"sync"
	"time"

	"tax/internal/vclock"
	"tax/internal/websim"
)

// prefetched is one cached fetch outcome.
type prefetched struct {
	resp *websim.Response
	cost time.Duration
	err  error
}

// prefetchCache holds the parallel phase's results keyed by URL.
type prefetchCache struct {
	parent  websim.ForkableFetcher
	results map[string]prefetched
}

// fetch serves the serial replay: cache hits charge the parent the
// recorded cost; misses fall through to a live fetch.
func (p *prefetchCache) fetch(url string) (*websim.Response, error) {
	e, ok := p.results[url]
	if !ok {
		return p.parent.Fetch(url)
	}
	if e.err != nil {
		return nil, e.err
	}
	p.parent.Replay(e.resp, e.cost)
	return e.resp, nil
}

// prefetch fetches the crawl's page set with r.Workers concurrent
// workers and returns the cache the serial replay runs against.
func (r *Robot) prefetch(ff websim.ForkableFetcher, startURL string) *prefetchCache {
	cache := &prefetchCache{parent: ff, results: make(map[string]prefetched)}
	seen := map[string]bool{startURL: true}
	wave := []string{startURL}
	for depth := 0; len(wave) > 0; depth++ {
		fetched := r.fetchWave(ff, wave)
		var next []string
		for i, url := range wave {
			e := fetched[i]
			cache.results[url] = e
			if e.err != nil || e.resp.Status != websim.StatusOK || e.resp.Page == nil {
				continue
			}
			for _, link := range e.resp.Page.Links {
				if r.Constraints.Prefix != "" && !strings.HasPrefix(link.URL, r.Constraints.Prefix) {
					continue
				}
				if depth+1 > r.Constraints.MaxDepth || seen[link.URL] {
					continue
				}
				seen[link.URL] = true
				next = append(next, link.URL)
			}
		}
		wave = next
	}
	return cache
}

// fetchWave fetches one discovery wave's URLs with up to r.Workers
// goroutines, each on its own fork with a private clock, and returns
// the outcomes in wave order.
func (r *Robot) fetchWave(ff websim.ForkableFetcher, wave []string) []prefetched {
	out := make([]prefetched, len(wave))
	workers := r.Workers
	if workers > len(wave) {
		workers = len(wave)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			clk := vclock.NewVirtual()
			fork := ff.Fork(clk)
			for i := range idx {
				before := clk.Now()
				resp, err := fork.Fetch(wave[i])
				out[i] = prefetched{resp: resp, cost: clk.Now() - before, err: err}
			}
		}()
	}
	for i := range wave {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}
