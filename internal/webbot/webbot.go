// Package webbot reproduces the W3C Webbot-style stationary robot of §5.
//
// "A robot can start with one or more reference pages and traverse all
// links in some orderly manner, gathering statistics." Webbot follows
// links depth-first, subjected to constraints — depth of the search tree
// and restricting URIs checked to those matching a specific prefix — and
// gathers statistics on link validity, age and type. Links not followed
// because of constraints are logged, which is what enables the mobility
// wrapper's second validation pass. The original became unstable with a
// search tree deeper than 4; the reproduction models that with a
// configurable MaxStableDepth.
package webbot

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"tax/internal/telemetry"
	"tax/internal/vclock"
	"tax/internal/websim"
)

// ErrUnstable is returned when the requested depth exceeds the robot's
// stability limit, reproducing the paper's observed crash depth.
var ErrUnstable = errors.New("webbot: search tree too deep; robot unstable")

// DefaultMaxStableDepth is the depth beyond which the original Webbot
// became unstable in the paper's test.
const DefaultMaxStableDepth = 4

// ParseCostPerKB is the simulated client-side cost of parsing and
// bookkeeping per KiB of fetched page, calibrated to a 1999 workstation
// (≈1.7 MB/s of HTML through the robot) so that the paper's measured
// LAN-vs-local ratio is reproduced; see EXPERIMENTS.md.
const ParseCostPerKB = 800 * time.Microsecond

// Constraints bound a crawl.
type Constraints struct {
	// MaxDepth limits the search tree depth (root = 0).
	MaxDepth int
	// Prefix restricts followed URIs; links not matching are logged as
	// rejected, not followed.
	Prefix string
	// MaxStableDepth models the robot's crash depth; zero means
	// DefaultMaxStableDepth.
	MaxStableDepth int
}

// LinkReport is one problem or constraint row in the robot's log.
type LinkReport struct {
	// URL is the link target.
	URL string
	// Referrer is the page the link was found on.
	Referrer string
	// Status is the HTTP-like status observed (0 for rejected links,
	// which were never fetched).
	Status int
	// Reason explains the entry ("invalid", "depth", "prefix").
	Reason string
}

// Stats is the robot's gathered output.
type Stats struct {
	// PagesVisited counts successfully fetched and parsed pages.
	PagesVisited int
	// BytesFetched totals the body bytes transferred.
	BytesFetched int
	// LinksChecked counts every link examined.
	LinksChecked int
	// MaxDepthSeen is the deepest level actually visited.
	MaxDepthSeen int
	// TypeCounts histograms the content types encountered.
	TypeCounts map[string]int
	// AgeBuckets histograms document ages: <30 days, <180, <365, older —
	// the "age ... of web pages encountered" statistic.
	AgeBuckets [4]int
	// Invalid lists links whose fetch failed (the mining result).
	Invalid []LinkReport
	// Rejected lists links not followed due to constraints; the second
	// pass of the case study validates the prefix-rejected ones.
	Rejected []LinkReport
	// Elapsed is the simulated time the crawl took on the robot's clock.
	Elapsed time.Duration
}

// RejectedByPrefix returns the rejected links that failed the prefix
// constraint (the outward-pointing links of the case study), sorted and
// de-duplicated.
func (s *Stats) RejectedByPrefix() []LinkReport {
	seen := map[string]bool{}
	var out []LinkReport
	for _, r := range s.Rejected {
		if r.Reason == "prefix" && !seen[r.URL] {
			seen[r.URL] = true
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// Robot is a stationary web robot: it crawls through whatever Fetcher it
// is given — a local or remote websim client, which is exactly the
// difference the paper's experiment measures.
type Robot struct {
	// Fetcher retrieves pages and charges simulated time.
	Fetcher websim.Fetcher
	// Clock is the robot's host clock, charged for parsing.
	Clock vclock.Clock
	// Constraints bound the crawl.
	Constraints Constraints
	// Telemetry, when set, receives crawl totals (bot.pages, bot.bytes,
	// bot.links) and — with spans enabled and TraceID set — one bot.crawl
	// span per Run, so a mobile robot's crawl phase shows up inside its
	// itinerary's trace tree.
	Telemetry *telemetry.Telemetry
	// TraceID attaches Run's span to an existing trace ("" records none).
	TraceID string
	// SpanParent optionally parents the crawl span (a vm.exec span id).
	SpanParent string
	// Workers, when > 1, fetches with that many concurrent workers
	// (the Fetcher must implement websim.ForkableFetcher). The crawl's
	// Stats — visit order, link logs, byte counts and Elapsed — stay
	// byte-identical to the serial crawl: workers prefetch the page set
	// on forked fetchers with private clocks, then the serial traversal
	// replays from the prefetch cache, charging the robot's clock the
	// recorded per-fetch costs.
	Workers int
}

// ErrNotForkable is returned when Workers > 1 but the Fetcher cannot be
// forked for concurrent use.
var ErrNotForkable = errors.New("webbot: Workers > 1 needs a websim.ForkableFetcher")

// Run crawls depth-first from startURL and returns the gathered
// statistics. The crawl is deterministic: links are followed in page
// order.
func (r *Robot) Run(startURL string) (*Stats, error) {
	limit := r.Constraints.MaxStableDepth
	if limit == 0 {
		limit = DefaultMaxStableDepth
	}
	if r.Constraints.MaxDepth > limit {
		return nil, fmt.Errorf("%w: depth %d > stable limit %d",
			ErrUnstable, r.Constraints.MaxDepth, limit)
	}
	if r.Fetcher == nil || r.Clock == nil {
		return nil, errors.New("webbot: robot needs a fetcher and a clock")
	}
	st := &Stats{TypeCounts: make(map[string]int)}
	start := r.Clock.Now()
	sp := r.Telemetry.Spans().Start(r.Clock, r.Telemetry.Host(), r.TraceID, r.SpanParent, "bot.crawl")
	sp.SetAttr("start", startURL)
	c := &crawlState{
		bestDepth: map[string]int{},
		pageCache: map[string]*websim.Page{},
		fetch:     r.Fetcher.Fetch,
	}
	if r.Workers > 1 {
		ff, ok := r.Fetcher.(websim.ForkableFetcher)
		if !ok {
			sp.SetErr(ErrNotForkable)
			sp.End()
			return nil, ErrNotForkable
		}
		c.fetch = r.prefetch(ff, startURL).fetch
	}
	if err := r.crawl(startURL, "", 0, c, st); err != nil {
		sp.SetErr(err)
		sp.End()
		return nil, err
	}
	st.Elapsed = r.Clock.Now() - start
	sp.End()
	if reg := r.Telemetry.Registry(); reg != nil {
		reg.Counter("bot.pages").Add(int64(st.PagesVisited))
		reg.Counter("bot.bytes").Add(int64(st.BytesFetched))
		reg.Counter("bot.links").Add(int64(st.LinksChecked))
	}
	return st, nil
}

// crawlState tracks fetched pages across the traversal. Depth-limited DFS
// may first reach a page via a long cross-link path and later via a
// shorter tree path; each page is fetched exactly once but re-expanded
// when reached at a strictly shallower depth, so the depth constraint
// prunes by the page's best-known depth (as the W3C robot's breadth
// bookkeeping does).
type crawlState struct {
	bestDepth map[string]int
	pageCache map[string]*websim.Page // nil entry: the URL was invalid
	fetch     func(url string) (*websim.Response, error)
}

// crawl fetches (once) and expands one page depth-first.
func (r *Robot) crawl(url, referrer string, depth int, c *crawlState, st *Stats) error {
	if prev, seen := c.bestDepth[url]; seen {
		if depth >= prev {
			return nil
		}
		c.bestDepth[url] = depth
		return r.expand(url, depth, c, st)
	}
	c.bestDepth[url] = depth

	resp, err := c.fetch(url)
	if err != nil {
		return fmt.Errorf("webbot: fetch %s: %w", url, err)
	}
	if resp.Status != websim.StatusOK {
		c.pageCache[url] = nil
		st.Invalid = append(st.Invalid, LinkReport{
			URL: url, Referrer: referrer, Status: resp.Status, Reason: "invalid",
		})
		return nil
	}
	st.PagesVisited++
	st.BytesFetched += resp.Bytes
	if depth > st.MaxDepthSeen {
		st.MaxDepthSeen = depth
	}
	if resp.Page != nil {
		st.TypeCounts[string(resp.Page.Type)]++
		switch age := resp.Page.AgeDays; {
		case age < 30:
			st.AgeBuckets[0]++
		case age < 180:
			st.AgeBuckets[1]++
		case age < 365:
			st.AgeBuckets[2]++
		default:
			st.AgeBuckets[3]++
		}
	}
	// Parsing cost scales with page size.
	r.Clock.Advance(time.Duration(resp.Bytes) * ParseCostPerKB / 1024)
	c.pageCache[url] = resp.Page
	return r.expand(url, depth, c, st)
}

// expand recurses over a fetched page's links.
func (r *Robot) expand(url string, depth int, c *crawlState, st *Stats) error {
	page := c.pageCache[url]
	if page == nil {
		return nil
	}
	for _, link := range page.Links {
		st.LinksChecked++
		if r.Constraints.Prefix != "" && !strings.HasPrefix(link.URL, r.Constraints.Prefix) {
			st.Rejected = append(st.Rejected, LinkReport{
				URL: link.URL, Referrer: link.Referrer, Reason: "prefix",
			})
			continue
		}
		if depth+1 > r.Constraints.MaxDepth {
			st.Rejected = append(st.Rejected, LinkReport{
				URL: link.URL, Referrer: link.Referrer, Reason: "depth",
			})
			continue
		}
		if err := r.crawl(link.URL, link.Referrer, depth+1, c, st); err != nil {
			return err
		}
	}
	return nil
}

// ValidateLinks fetches each URL once through the fetcher and reports the
// invalid ones — the second step of the case study, applied to the links
// the constrained crawl rejected.
func ValidateLinks(f websim.Fetcher, links []LinkReport) ([]LinkReport, error) {
	var invalid []LinkReport
	for _, l := range links {
		resp, err := f.Fetch(l.URL)
		if err != nil {
			return nil, fmt.Errorf("webbot: validate %s: %w", l.URL, err)
		}
		if resp.Status != websim.StatusOK {
			invalid = append(invalid, LinkReport{
				URL: l.URL, Referrer: l.Referrer, Status: resp.Status, Reason: "invalid",
			})
		}
	}
	return invalid, nil
}
