// Package webbot reproduces the W3C Webbot-style stationary robot of §5
// — rebuilt (PR 10) as a staged crawler.
//
// "A robot can start with one or more reference pages and traverse all
// links in some orderly manner, gathering statistics." The seed's
// recursive depth-first crawl survives as the *canonical replay*: the
// traversal that defines visit order, link logs, and statistics. In
// front of it sits a staged acquisition pipeline — a durable,
// prioritized URL frontier (internal/frontier), K fetcher workers with
// per-site politeness limiting on the virtual clock, and a parser stage
// feeding discovered links back — so fetching parallelizes, survives
// host crashes (WithFrontier), honors robots.txt (WithRobotsPolicy),
// and re-crawls incrementally (WithRecrawl), while Stats stay
// byte-identical to the serial crawl of the seed.
//
// Robots are built with New(fetcher, opts...) and driven with
// RunCtx(ctx, startURL); the legacy Constraints/Run surface remains as
// deprecated shims over the same engine.
package webbot

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"tax/internal/frontier"
	"tax/internal/telemetry"
	"tax/internal/vclock"
	"tax/internal/websim"
)

// DefaultMaxStableDepth is the depth beyond which the original Webbot
// became unstable in the paper's test.
const DefaultMaxStableDepth = 4

// ParseCostPerKB is the simulated client-side cost of parsing and
// bookkeeping per KiB of fetched page, calibrated to a 1999 workstation
// (≈1.7 MB/s of HTML through the robot) so that the paper's measured
// LAN-vs-local ratio is reproduced; see EXPERIMENTS.md.
const ParseCostPerKB = 800 * time.Microsecond

// Constraints bound a crawl.
//
// Deprecated: build robots with New and the WithMaxDepth / WithPrefix /
// WithStableDepth options. The struct remains for the legacy Run
// surface and is honored verbatim by robots built as struct literals.
type Constraints struct {
	// MaxDepth limits the search tree depth (root = 0).
	MaxDepth int
	// Prefix restricts followed URIs; links not matching are logged as
	// rejected, not followed.
	Prefix string
	// MaxStableDepth models the robot's crash depth; zero means
	// DefaultMaxStableDepth.
	MaxStableDepth int
}

// LinkReport is one problem or constraint row in the robot's log.
type LinkReport struct {
	// URL is the link target.
	URL string
	// Referrer is the page the link was found on.
	Referrer string
	// Status is the HTTP-like status observed (0 for rejected links,
	// which were never fetched).
	Status int
	// Reason explains the entry ("invalid", "depth", "prefix",
	// "robots", "unstable").
	Reason string
}

// Stats is the robot's gathered output.
type Stats struct {
	// PagesVisited counts successfully fetched and parsed pages.
	PagesVisited int
	// BytesFetched totals the body bytes transferred.
	BytesFetched int
	// LinksChecked counts every link examined.
	LinksChecked int
	// MaxDepthSeen is the deepest level actually visited.
	MaxDepthSeen int
	// TypeCounts histograms the content types encountered.
	TypeCounts map[string]int
	// AgeBuckets histograms document ages: <30 days, <180, <365, older —
	// the "age ... of web pages encountered" statistic.
	AgeBuckets [4]int
	// Invalid lists links whose fetch failed (the mining result).
	Invalid []LinkReport
	// Rejected lists links not followed due to constraints; the second
	// pass of the case study validates the prefix-rejected ones.
	Rejected []LinkReport
	// Revalidated counts pages an incremental re-crawl verified
	// unchanged with a HEAD probe instead of refetching.
	Revalidated int
	// Elapsed is the simulated time the crawl took on the robot's clock.
	Elapsed time.Duration
}

// RejectedByPrefix returns the rejected links that failed the prefix
// constraint (the outward-pointing links of the case study), sorted and
// de-duplicated.
func (s *Stats) RejectedByPrefix() []LinkReport {
	seen := map[string]bool{}
	var out []LinkReport
	for _, r := range s.Rejected {
		if r.Reason == "prefix" && !seen[r.URL] {
			seen[r.URL] = true
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// Robot is a web robot: it crawls through whatever Fetcher it is given
// — a local or remote websim client, which is exactly the difference
// the paper's experiment measures. Build with New; the exported fields
// remain for the legacy struct-literal surface (a Robot built that way
// behaves exactly like the seed's, including the strict stable-depth
// abort).
type Robot struct {
	// Fetcher retrieves pages and charges simulated time.
	Fetcher websim.Fetcher
	// Clock is the robot's host clock, charged for parsing.
	Clock vclock.Clock
	// Constraints bound the crawl (legacy surface; ignored when the
	// Robot was built with New, whose options win).
	Constraints Constraints
	// Telemetry, when set, receives crawl totals (bot.pages, bot.bytes,
	// bot.links) and — with spans enabled and TraceID set — one bot.crawl
	// span per Run, so a mobile robot's crawl phase shows up inside its
	// itinerary's trace tree.
	Telemetry *telemetry.Telemetry
	// TraceID attaches the crawl span to an existing trace ("" records
	// none).
	TraceID string
	// SpanParent optionally parents the crawl span (a vm.exec span id).
	SpanParent string
	// Workers, when > 1, fetches with that many concurrent workers
	// (the Fetcher must implement websim.ForkableFetcher). The crawl's
	// Stats — visit order, link logs, byte counts and Elapsed — stay
	// byte-identical to the serial crawl: workers drain the frontier on
	// forked fetchers with private clocks, then the canonical serial
	// traversal replays from the completed records, charging the
	// robot's clock the recorded per-fetch costs.
	Workers int

	// cfg is the option set when built with New (nil for legacy
	// struct-literal robots, which imply strict Constraints semantics).
	cfg *config
	// last is the frontier of the most recent RunCtx (Records feeds
	// ModelMakespan and StatsFromRecords).
	last *frontier.Frontier
}

// ErrNotForkable is returned when Workers > 1 but the Fetcher cannot be
// forked for concurrent use.
var ErrNotForkable = errors.New("webbot: Workers > 1 needs a websim.ForkableFetcher")

// Run crawls from startURL under the legacy surface and returns the
// gathered statistics. The crawl is deterministic: links are followed
// in page order.
//
// Deprecated: use New and RunCtx. Run is a shim over the same engine
// and produces byte-identical Stats.
func (r *Robot) Run(startURL string) (*Stats, error) {
	return r.RunCtx(context.Background(), startURL)
}

// Records returns the completed frontier records of the robot's most
// recent RunCtx, sorted by URL — the input frontier.ModelMakespan and
// StatsFromRecords consume. Nil before any run.
func (r *Robot) Records() []*frontier.PageRecord {
	if r.last == nil {
		return nil
	}
	return r.last.Records()
}

// Failures returns the failure journal of the robot's most recent
// RunCtx: terminally failed fetches and subtrees abandoned beyond the
// stable depth, as typed, durable events.
func (r *Robot) Failures() []*frontier.Failure {
	if r.last == nil {
		return nil
	}
	return r.last.Failures()
}

// ValidateLinks fetches each URL once through the fetcher and reports the
// invalid ones — the second step of the case study, applied to the links
// the constrained crawl rejected.
func ValidateLinks(f websim.Fetcher, links []LinkReport) ([]LinkReport, error) {
	var invalid []LinkReport
	for _, l := range links {
		resp, err := f.Fetch(l.URL)
		if err != nil {
			return nil, fmt.Errorf("webbot: validate %s: %w", l.URL, err)
		}
		if resp.Status != websim.StatusOK {
			invalid = append(invalid, LinkReport{
				URL: l.URL, Referrer: l.Referrer, Status: resp.Status, Reason: "invalid",
			})
		}
	}
	return invalid, nil
}
