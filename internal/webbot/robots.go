package webbot

import (
	"strconv"
	"strings"
	"time"
)

// Robots is a parsed robots.txt: agent groups, each holding allow /
// disallow path rules and an optional crawl delay. Matching follows
// the de-facto standard: the group whose agent token matches the
// crawler most specifically applies; within it the longest matching
// rule wins, allow winning ties; patterns support '*' wildcards and a
// '$' end anchor; an unmatched path is allowed.
type Robots struct {
	groups []robotsGroup
}

type robotsGroup struct {
	agents   []string // lowercase tokens; "*" is the wildcard group
	rules    []robotsRule
	delay    time.Duration
	hasDelay bool
}

type robotsRule struct {
	allow    bool
	pattern  string // '$' anchor stripped
	anchored bool
	prio     int // specificity: pattern length, longest wins
}

// ParseRobots parses a robots.txt body. It never fails: unparseable
// lines are skipped, exactly as crawlers treat them in the wild.
func ParseRobots(body string) *Robots {
	r := &Robots{}
	var cur *robotsGroup
	inAgents := false // consecutive User-agent lines share one group
	for _, line := range strings.Split(body, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		i := strings.IndexByte(line, ':')
		if i < 0 {
			continue
		}
		field := strings.ToLower(strings.TrimSpace(line[:i]))
		value := strings.TrimSpace(line[i+1:])
		switch field {
		case "user-agent":
			if !inAgents {
				r.groups = append(r.groups, robotsGroup{})
				cur = &r.groups[len(r.groups)-1]
				inAgents = true
			}
			cur.agents = append(cur.agents, strings.ToLower(value))
		case "allow", "disallow":
			inAgents = false
			if cur == nil || value == "" {
				// Rules before any group are ignored; an empty pattern
				// matches nothing.
				continue
			}
			rule := robotsRule{allow: field == "allow", pattern: value, prio: len(value)}
			if strings.HasSuffix(rule.pattern, "$") {
				rule.anchored = true
				rule.pattern = rule.pattern[:len(rule.pattern)-1]
			}
			cur.rules = append(cur.rules, rule)
		case "crawl-delay":
			inAgents = false
			if cur == nil {
				continue
			}
			if secs, err := strconv.ParseFloat(value, 64); err == nil && secs >= 0 && secs < 1e6 {
				cur.delay = time.Duration(secs * float64(time.Second))
				cur.hasDelay = true
			}
		default:
			inAgents = false
		}
	}
	return r
}

// group returns the most specifically matching group for agent, or nil.
func (r *Robots) group(agent string) *robotsGroup {
	if r == nil {
		return nil
	}
	agent = strings.ToLower(agent)
	var best *robotsGroup
	bestLen := -1
	for i := range r.groups {
		g := &r.groups[i]
		for _, tok := range g.agents {
			switch {
			case tok == "*":
				if bestLen < 0 {
					best, bestLen = g, 0
				}
			case strings.Contains(agent, tok):
				if len(tok) > bestLen {
					best, bestLen = g, len(tok)
				}
			}
		}
	}
	return best
}

// Allowed reports whether agent may fetch path ("/a/b.html"). A nil
// Robots (no robots.txt served) allows everything.
func (r *Robots) Allowed(agent, path string) bool {
	g := r.group(agent)
	if g == nil {
		return true
	}
	if path == "" {
		path = "/"
	}
	allow, bestPrio := true, -1
	for _, rule := range g.rules {
		if rule.prio < bestPrio {
			continue
		}
		if !robotsMatch(rule.pattern, rule.anchored, path) {
			continue
		}
		if rule.prio > bestPrio || rule.allow {
			// Longest match wins; on equal length allow beats disallow.
			allow, bestPrio = rule.allow, rule.prio
		}
	}
	return allow
}

// CrawlDelay returns the crawl delay requested for agent (0 if none).
func (r *Robots) CrawlDelay(agent string) time.Duration {
	if g := r.group(agent); g != nil && g.hasDelay {
		return g.delay
	}
	return 0
}

// robotsMatch reports whether a rule pattern matches path: a prefix
// match unless anchored, with '*' matching any run of characters.
// Iterative single-backtrack glob matching, O(len(pattern)·len(path)).
func robotsMatch(pattern string, anchored bool, path string) bool {
	if !anchored {
		// Prefix semantics: the pattern only has to consume a prefix of
		// the path, which is exactly a trailing wildcard.
		pattern += "*"
	}
	pi, si := 0, 0
	star, mark := -1, 0
	for si < len(path) {
		switch {
		case pi < len(pattern) && pattern[pi] == '*':
			star, mark = pi, si
			pi++
		case pi < len(pattern) && pattern[pi] == path[si]:
			pi++
			si++
		case star >= 0:
			mark++
			pi, si = star+1, mark
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '*' {
		pi++
	}
	return pi == len(pattern)
}

// urlPath extracts the path component of an absolute URL for robots
// matching: "http://host/a/b.html" → "/a/b.html".
func urlPath(url string) string {
	rest := url
	if i := strings.Index(url, "://"); i >= 0 {
		rest = url[i+3:]
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		return rest[i:]
	}
	return "/"
}

// robotsURLFor derives the /robots.txt address for a URL's host, or ""
// when the URL has no scheme://host shape.
func robotsURLFor(url string) string {
	i := strings.Index(url, "://")
	if i < 0 {
		return ""
	}
	rest := url[i+3:]
	host := rest
	if j := strings.IndexByte(rest, '/'); j >= 0 {
		host = rest[:j]
	}
	if host == "" {
		return ""
	}
	return url[:i+3] + host + "/robots.txt"
}
