package webbot

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"tax/internal/cabinet"
	"tax/internal/simnet"
	"tax/internal/vclock"
	"tax/internal/websim"
)

func newClient(t *testing.T) (*websim.Client, *websim.Site) {
	t.Helper()
	site, err := websim.Generate(websim.CaseStudySpec("webserv"))
	if err != nil {
		t.Fatal(err)
	}
	clock := vclock.NewVirtual()
	return &websim.Client{
		Server:   websim.DefaultServer(site),
		Universe: &websim.Universe{Origin: site},
		Link:     simnet.Loopback,
		Clock:    clock,
	}, site
}

// TestRunShimIdenticalToRunCtx is the API-redesign contract: a legacy
// struct-literal robot driven through the deprecated Run produces Stats
// byte-identical to a robot built with New and driven with RunCtx, on
// the 917-page case-study site.
func TestRunShimIdenticalToRunCtx(t *testing.T) {
	legacyClient, site := newClient(t)
	legacy := &Robot{
		Fetcher:     legacyClient,
		Clock:       legacyClient.Clock,
		Constraints: Constraints{MaxDepth: 4, Prefix: "http://webserv/"},
	}
	want, err := legacy.Run(site.Root)
	if err != nil {
		t.Fatal(err)
	}

	newClientv, site2 := newClient(t)
	r := New(newClientv,
		WithClock(newClientv.Clock),
		WithMaxDepth(4),
		WithPrefix("http://webserv/"),
	)
	got, err := r.RunCtx(context.Background(), site2.Root)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("New/RunCtx Stats differ from legacy Run:\n got %+v\nwant %+v", got, want)
	}
	if got.PagesVisited != 917 {
		t.Errorf("pages visited = %d, want 917", got.PagesVisited)
	}
	// The option surface drives the parallel engine too.
	par, site3 := newClient(t)
	r8 := New(par, WithClock(par.Clock), WithMaxDepth(4),
		WithPrefix("http://webserv/"), WithWorkers(8))
	got8, err := r8.RunCtx(context.Background(), site3.Root)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got8, want) {
		t.Errorf("8-worker Stats differ from serial legacy Stats")
	}
}

func TestOptionValidation(t *testing.T) {
	c, site := newClient(t)
	for _, bad := range [][]Option{
		{WithMaxDepth(-1)},
		{WithWorkers(0)},
		{WithStableDepth(-2)},
		{WithRetries(0)},
	} {
		r := New(c, bad...)
		if _, err := r.RunCtx(context.Background(), site.Root); err == nil {
			t.Errorf("invalid option %T accepted", bad[0])
		}
	}
}

// TestRobotsHonoredEndToEnd drives the full pipeline: websim generates
// a seeded robots.txt, the crawler fetches and obeys it.
func TestRobotsHonoredEndToEnd(t *testing.T) {
	c, site := newClient(t)
	if site.RobotsTxt() == "" {
		t.Fatal("generated site has no robots.txt")
	}
	disallowed := site.RobotsDisallowed()
	if len(disallowed) == 0 {
		t.Fatal("generated robots.txt disallows nothing")
	}
	r := New(c, WithClock(c.Clock), WithMaxDepth(4),
		WithPrefix("http://webserv/"), WithRobotsPolicy(RobotsHonor))
	st, err := r.RunCtx(context.Background(), site.Root)
	if err != nil {
		t.Fatal(err)
	}
	if st.PagesVisited >= 917 {
		t.Errorf("pages visited = %d; robots rules should have pruned some", st.PagesVisited)
	}
	fetched := map[string]bool{}
	for _, rec := range r.Records() {
		fetched[rec.URL] = true
	}
	for _, u := range disallowed {
		if fetched[u] {
			t.Errorf("disallowed URL fetched: %s", u)
		}
	}
	robotsRejected := 0
	for _, l := range st.Rejected {
		if l.Reason == "robots" {
			robotsRejected++
			if fetched[l.URL] {
				t.Errorf("URL both fetched and robots-rejected: %s", l.URL)
			}
		}
	}
	if robotsRejected == 0 {
		t.Error("no robots-rejected links logged")
	}
	// An ignoring crawl fetches the disallowed pages.
	c2, site2 := newClient(t)
	r2 := New(c2, WithClock(c2.Clock), WithMaxDepth(4), WithPrefix("http://webserv/"))
	st2, err := r2.RunCtx(context.Background(), site2.Root)
	if err != nil {
		t.Fatal(err)
	}
	if st2.PagesVisited != 917 {
		t.Errorf("ignoring crawl visited %d, want 917", st2.PagesVisited)
	}
}

// TestRobotsDeniedAgent: the generated robots.txt banishes "badbot"
// entirely; a crawler carrying that agent string may not even start.
func TestRobotsDeniedAgent(t *testing.T) {
	c, site := newClient(t)
	r := New(c, WithClock(c.Clock), WithMaxDepth(4),
		WithPrefix("http://webserv/"), WithRobotsPolicy(RobotsHonor),
		WithUserAgent("badbot/1.0"))
	_, err := r.RunCtx(context.Background(), site.Root)
	if !errors.Is(err, ErrRobotsDenied) {
		t.Fatalf("err = %v, want ErrRobotsDenied", err)
	}
}

// TestUnstableDepthJournaled: the legacy robot aborted any crawl deeper
// than the stable limit; the staged crawler clamps, carries on, and
// journals the abandoned subtrees as typed wb_depth_unstable events.
func TestUnstableDepthJournaled(t *testing.T) {
	c, site := newClient(t)
	r := New(c, WithClock(c.Clock), WithMaxDepth(5), WithPrefix("http://webserv/"))
	st, err := r.RunCtx(context.Background(), site.Root)
	if err != nil {
		t.Fatal(err)
	}
	if st.PagesVisited != 917 {
		t.Errorf("clamped crawl visited %d, want 917 (stable depth 4)", st.PagesVisited)
	}
	unstable := 0
	for _, l := range st.Rejected {
		if l.Reason == "unstable" {
			unstable++
		}
	}
	if unstable == 0 {
		t.Error("no unstable-rejected links logged")
	}
	journaled := 0
	for _, fl := range r.Failures() {
		if fl.Code == CodeDepthUnstable {
			journaled++
		}
	}
	if journaled == 0 {
		t.Error("no wb_depth_unstable events journaled")
	}
	// WithDepthAbort restores the legacy strict refusal.
	c2, site2 := newClient(t)
	strict := New(c2, WithClock(c2.Clock), WithMaxDepth(5),
		WithPrefix("http://webserv/"), WithDepthAbort())
	if _, err := strict.RunCtx(context.Background(), site2.Root); !errors.Is(err, ErrUnstable) {
		t.Fatalf("strict err = %v, want ErrUnstable", err)
	}
	// Raising the stable limit unlocks the deeper crawl, exactly as the
	// legacy MaxStableDepth did.
	c3, site3 := newClient(t)
	deep := New(c3, WithClock(c3.Clock), WithMaxDepth(5),
		WithPrefix("http://webserv/"), WithStableDepth(8))
	dst, err := deep.RunCtx(context.Background(), site3.Root)
	if err != nil {
		t.Fatal(err)
	}
	if dst.PagesVisited <= 917 {
		t.Errorf("depth-5 crawl visited %d, want > 917", dst.PagesVisited)
	}
}

// TestDurableFrontierResume interrupts a crawl mid-flight and resumes
// it from the cabinet-backed frontier: the resumed crawl completes the
// remaining work and produces Stats byte-identical to an uninterrupted
// serial run.
func TestDurableFrontierResume(t *testing.T) {
	base, site := newClient(t)
	baseline := New(base, WithClock(base.Clock), WithMaxDepth(4), WithPrefix("http://webserv/"))
	want, err := baseline.RunCtx(context.Background(), site.Root)
	if err != nil {
		t.Fatal(err)
	}

	store := cabinet.NewStore(cabinet.Options{Clock: vclock.NewVirtual(), SnapshotEvery: -1})
	ctx, cancel := context.WithCancel(context.Background())
	const interruptAt = 120 // WAL appends ≈ frontier transactions
	n := 0
	store.SetAppendHook(func(seq uint64) {
		n++
		if n == interruptAt {
			cancel()
		}
	})
	c1, site1 := newClient(t)
	r1 := New(c1, WithClock(c1.Clock), WithMaxDepth(4),
		WithPrefix("http://webserv/"), WithFrontier(store, "fr/"))
	if _, err := r1.RunCtx(ctx, site1.Root); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run err = %v, want context.Canceled", err)
	}
	store.SetAppendHook(nil)
	if store.Len() == 0 {
		t.Fatal("nothing persisted before the interrupt")
	}

	c2, site2 := newClient(t)
	r2 := New(c2, WithClock(c2.Clock), WithMaxDepth(4),
		WithPrefix("http://webserv/"), WithFrontier(store, "fr/"))
	got, err := r2.RunCtx(context.Background(), site2.Root)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed Stats differ from uninterrupted run:\n got %+v\nwant %+v", got, want)
	}
}

// TestRecrawlRevalidates: a second crawl cycle over a durable frontier
// revalidates unchanged pages with HEAD probes and refetches only the
// page whose metadata changed.
func TestRecrawlRevalidates(t *testing.T) {
	store := cabinet.NewStore(cabinet.Options{Clock: vclock.NewVirtual(), SnapshotEvery: -1})
	c1, site := newClient(t)
	r1 := New(c1, WithClock(c1.Clock), WithMaxDepth(4),
		WithPrefix("http://webserv/"), WithFrontier(store, "fr/"))
	first, err := r1.RunCtx(context.Background(), site.Root)
	if err != nil {
		t.Fatal(err)
	}
	if first.Revalidated != 0 {
		t.Errorf("first cycle revalidated %d pages", first.Revalidated)
	}

	// Age one page; its HEAD digest changes, forcing a refetch.
	var changed string
	var changedBytes int
	for _, rec := range r1.Records() {
		if rec.Status == websim.StatusOK && rec.AgeDays < 30 {
			changed = rec.URL
			break
		}
	}
	if changed == "" {
		t.Fatal("no young page to age")
	}
	if !site.SetAgeDays(changed, 4000) {
		t.Fatalf("SetAgeDays(%s) failed", changed)
	}
	changedBytes = site.Lookup(changed).Size

	clock2 := vclock.NewVirtual()
	c2 := &websim.Client{Server: websim.DefaultServer(site),
		Universe: &websim.Universe{Origin: site}, Link: simnet.Loopback, Clock: clock2}
	r2 := New(c2, WithClock(clock2), WithMaxDepth(4),
		WithPrefix("http://webserv/"), WithFrontier(store, "fr/"), WithRecrawl())
	second, err := r2.RunCtx(context.Background(), site.Root)
	if err != nil {
		t.Fatal(err)
	}
	if second.PagesVisited != first.PagesVisited {
		t.Errorf("recrawl visited %d, first visited %d", second.PagesVisited, first.PagesVisited)
	}
	if want := first.PagesVisited - 1; second.Revalidated != want {
		t.Errorf("revalidated %d pages, want %d", second.Revalidated, want)
	}
	if second.BytesFetched != changedBytes {
		t.Errorf("recrawl transferred %d bytes, want only the changed page's %d",
			second.BytesFetched, changedBytes)
	}
	// The aged page moved from the youngest bucket to the oldest.
	if second.AgeBuckets[0] != first.AgeBuckets[0]-1 || second.AgeBuckets[3] != first.AgeBuckets[3]+1 {
		t.Errorf("age buckets not updated: first %v, second %v", first.AgeBuckets, second.AgeBuckets)
	}
	// Recrawl without a durable frontier is a configuration error.
	c3, site3 := newClient(t)
	r3 := New(c3, WithClock(c3.Clock), WithRecrawl())
	if _, err := r3.RunCtx(context.Background(), site3.Root); err == nil {
		t.Error("WithRecrawl without WithFrontier must fail")
	}
}

// TestStatsFromRecords: the fleet aggregate — Stats recomputed from a
// completed record set alone — matches the live crawl's.
func TestStatsFromRecords(t *testing.T) {
	c, site := newClient(t)
	r := New(c, WithClock(c.Clock), WithMaxDepth(4), WithPrefix("http://webserv/"))
	want, err := r.RunCtx(context.Background(), site.Root)
	if err != nil {
		t.Fatal(err)
	}
	got, err := StatsFromRecords(site.Root, r.Records(),
		WithMaxDepth(4), WithPrefix("http://webserv/"))
	if err != nil {
		t.Fatal(err)
	}
	// Replay charges are a pure function of the records, so even
	// Elapsed matches the live crawl.
	if !reflect.DeepEqual(got, want) {
		t.Errorf("StatsFromRecords differ:\n got %+v\nwant %+v", got, want)
	}
	// A missing record is a lost URL: loudly ErrFetchFailed.
	if _, err := StatsFromRecords(site.Root, r.Records()[1:],
		WithMaxDepth(4), WithPrefix("http://webserv/")); err == nil {
		t.Error("truncated record set must fail")
	}
}

// TestPolitenessInvariance: politeness delays shape worker schedules,
// never Stats.
func TestPolitenessInvariance(t *testing.T) {
	c0, site := newClient(t)
	r0 := New(c0, WithClock(c0.Clock), WithMaxDepth(4),
		WithPrefix("http://webserv/"), WithWorkers(4))
	want, err := r0.RunCtx(context.Background(), site.Root)
	if err != nil {
		t.Fatal(err)
	}
	c1, site1 := newClient(t)
	r1 := New(c1, WithClock(c1.Clock), WithMaxDepth(4),
		WithPrefix("http://webserv/"), WithWorkers(4), WithPoliteness(2e6))
	got, err := r1.RunCtx(context.Background(), site1.Root)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("politeness changed Stats:\n got %+v\nwant %+v", got, want)
	}
}
