package webbot

import (
	"errors"
	"strings"
	"testing"

	"tax/internal/simnet"
	"tax/internal/vclock"
	"tax/internal/websim"
)

func newLocalRobot(t *testing.T, maxDepth int) (*Robot, *websim.Site) {
	t.Helper()
	site, err := websim.Generate(websim.CaseStudySpec("webserv"))
	if err != nil {
		t.Fatal(err)
	}
	clock := vclock.NewVirtual()
	r := &Robot{
		Fetcher: &websim.Client{
			Server:   websim.DefaultServer(site),
			Universe: &websim.Universe{Origin: site},
			Link:     simnet.Loopback,
			Clock:    clock,
		},
		Clock: clock,
		Constraints: Constraints{
			MaxDepth: maxDepth,
			Prefix:   "http://webserv/",
		},
	}
	return r, site
}

func TestCrawlVisits917Pages(t *testing.T) {
	r, site := newLocalRobot(t, 4)
	st, err := r.Run(site.Root)
	if err != nil {
		t.Fatal(err)
	}
	if st.PagesVisited != 917 {
		t.Errorf("pages visited = %d, want 917", st.PagesVisited)
	}
	wantBytes := site.BytesWithinDepth(4)
	if st.BytesFetched != wantBytes {
		t.Errorf("bytes fetched = %d, want %d", st.BytesFetched, wantBytes)
	}
	if st.MaxDepthSeen != 4 {
		t.Errorf("max depth seen = %d", st.MaxDepthSeen)
	}
	if st.Elapsed <= 0 {
		t.Error("no simulated time elapsed")
	}
}

func TestCrawlFindsAllDeadInternalLinks(t *testing.T) {
	r, site := newLocalRobot(t, 4)
	st, err := r.Run(site.Root)
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, l := range st.Invalid {
		found[l.URL] = true
		if l.Referrer == "" {
			t.Errorf("invalid link %s has no referrer", l.URL)
		}
		if l.Status != websim.StatusNotFound {
			t.Errorf("invalid link %s status %d", l.URL, l.Status)
		}
	}
	for _, dead := range site.DeadInternalLinks() {
		if !found[dead] {
			t.Errorf("dead link not mined: %s", dead)
		}
	}
}

func TestRejectedLogsPrefixAndDepth(t *testing.T) {
	r, site := newLocalRobot(t, 4)
	st, err := r.Run(site.Root)
	if err != nil {
		t.Fatal(err)
	}
	var prefix, depth int
	for _, rej := range st.Rejected {
		switch rej.Reason {
		case "prefix":
			prefix++
			if strings.HasPrefix(rej.URL, "http://webserv/") {
				t.Errorf("internal link rejected by prefix: %s", rej.URL)
			}
		case "depth":
			depth++
		default:
			t.Errorf("unknown rejection reason %q", rej.Reason)
		}
	}
	if prefix == 0 {
		t.Error("no prefix rejections (external links missed)")
	}
	if depth == 0 {
		t.Error("no depth rejections (depth constraint idle)")
	}
	// The de-duplicated prefix set covers every generated external link
	// reachable within the crawl.
	rp := st.RejectedByPrefix()
	seen := map[string]bool{}
	for _, l := range rp {
		if seen[l.URL] {
			t.Errorf("duplicate in RejectedByPrefix: %s", l.URL)
		}
		seen[l.URL] = true
	}
}

func TestTypeAndAgeStatistics(t *testing.T) {
	r, site := newLocalRobot(t, 4)
	st, err := r.Run(site.Root)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range st.TypeCounts {
		total += n
	}
	if total != st.PagesVisited {
		t.Errorf("type counts sum %d, pages %d", total, st.PagesVisited)
	}
	if st.TypeCounts["text/html"] == 0 {
		t.Error("no HTML pages classified")
	}
	if len(st.TypeCounts) < 2 {
		t.Errorf("type mix too uniform: %v", st.TypeCounts)
	}
	ages := 0
	for _, n := range st.AgeBuckets {
		ages += n
	}
	if ages != st.PagesVisited {
		t.Errorf("age buckets sum %d, pages %d", ages, st.PagesVisited)
	}
	if st.AgeBuckets[3] == 0 {
		t.Error("no old documents in a 1500-day age range")
	}
}

func TestDepthConstraintShrinksCrawl(t *testing.T) {
	shallow, site := newLocalRobot(t, 2)
	st2, err := shallow.Run(site.Root)
	if err != nil {
		t.Fatal(err)
	}
	deep, _ := newLocalRobot(t, 4)
	st4, err := deep.Run(site.Root)
	if err != nil {
		t.Fatal(err)
	}
	if st2.PagesVisited >= st4.PagesVisited {
		t.Errorf("depth 2 visited %d, depth 4 visited %d",
			st2.PagesVisited, st4.PagesVisited)
	}
}

func TestInstabilityBeyondDepth4(t *testing.T) {
	// "Webbot became unstable with a search tree deeper than 4."
	r, site := newLocalRobot(t, 5)
	if _, err := r.Run(site.Root); !errors.Is(err, ErrUnstable) {
		t.Errorf("depth-5 crawl err = %v, want ErrUnstable", err)
	}
	// A raised stability limit (a fixed robot) permits deeper crawls.
	r.Constraints.MaxStableDepth = 8
	st, err := r.Run(site.Root)
	if err != nil {
		t.Fatal(err)
	}
	if st.PagesVisited <= 917 {
		t.Errorf("depth-5 crawl visited %d, want > 917", st.PagesVisited)
	}
}

func TestRobotValidationErrors(t *testing.T) {
	r, site := newLocalRobot(t, 4)
	r.Fetcher = nil
	if _, err := r.Run(site.Root); err == nil {
		t.Error("fetcherless robot ran")
	}
}

func TestCrawlDeterministic(t *testing.T) {
	a, site := newLocalRobot(t, 4)
	b, _ := newLocalRobot(t, 4)
	sa, err := a.Run(site.Root)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Run(site.Root)
	if err != nil {
		t.Fatal(err)
	}
	if sa.PagesVisited != sb.PagesVisited || sa.BytesFetched != sb.BytesFetched ||
		sa.Elapsed != sb.Elapsed || len(sa.Invalid) != len(sb.Invalid) {
		t.Errorf("crawls differ: %+v vs %+v", sa, sb)
	}
}

func TestRemoteCrawlSlowerThanLocal(t *testing.T) {
	// The heart of E1: same crawl, loopback vs LAN link.
	local, site := newLocalRobot(t, 4)
	stLocal, err := local.Run(site.Root)
	if err != nil {
		t.Fatal(err)
	}
	clock := vclock.NewVirtual()
	remote := &Robot{
		Fetcher: &websim.Client{
			Server:   websim.DefaultServer(site),
			Universe: &websim.Universe{Origin: site},
			Link:     simnet.LAN100,
			Clock:    clock,
		},
		Clock:       clock,
		Constraints: Constraints{MaxDepth: 4, Prefix: "http://webserv/"},
	}
	stRemote, err := remote.Run(site.Root)
	if err != nil {
		t.Fatal(err)
	}
	if stLocal.Elapsed >= stRemote.Elapsed {
		t.Errorf("local crawl (%v) not faster than remote (%v)",
			stLocal.Elapsed, stRemote.Elapsed)
	}
	if stLocal.PagesVisited != stRemote.PagesVisited {
		t.Errorf("crawl coverage differs: %d vs %d",
			stLocal.PagesVisited, stRemote.PagesVisited)
	}
}

func TestValidateLinks(t *testing.T) {
	r, site := newLocalRobot(t, 4)
	st, err := r.Run(site.Root)
	if err != nil {
		t.Fatal(err)
	}
	clock := vclock.NewVirtual()
	chk := &websim.ExternalChecker{
		Universe: &websim.Universe{Origin: site},
		Link:     simnet.WAN10,
		Clock:    clock,
	}
	invalid, err := ValidateLinks(chk, st.RejectedByPrefix())
	if err != nil {
		t.Fatal(err)
	}
	deadSet := map[string]bool{}
	for _, d := range site.DeadExternalLinks() {
		deadSet[d] = true
	}
	for _, l := range invalid {
		if !deadSet[l.URL] {
			t.Errorf("live external reported dead: %s", l.URL)
		}
	}
	// Every reachable dead external found by the crawl must be reported.
	for _, rej := range st.RejectedByPrefix() {
		if deadSet[rej.URL] {
			found := false
			for _, l := range invalid {
				if l.URL == rej.URL {
					found = true
				}
			}
			if !found {
				t.Errorf("dead external missed: %s", rej.URL)
			}
		}
	}
	if clock.Now() == 0 {
		t.Error("validation charged no time")
	}
}
