package webbot

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"tax/internal/frontier"
	"tax/internal/vclock"
	"tax/internal/websim"
)

// runConfig resolves the effective configuration: the option set for
// robots built with New, or a strict legacy translation of the public
// Constraints fields for struct-literal robots.
func (r *Robot) runConfig() config {
	if r.cfg != nil {
		return *r.cfg
	}
	stable := r.Constraints.MaxStableDepth
	if stable == 0 {
		stable = DefaultMaxStableDepth
	}
	workers := r.Workers
	if workers < 1 {
		workers = 1
	}
	return config{
		maxDepth:    r.Constraints.MaxDepth,
		stable:      stable,
		prefix:      r.Constraints.Prefix,
		workers:     workers,
		strict:      true, // the seed's semantics: too-deep crawls abort
		agent:       "webbot",
		ns:          "fr/",
		maxAttempts: 3,
	}
}

// RunCtx crawls from startURL: the staged acquisition pipeline (frontier
// + K fetcher workers + parser feedback) fetches every reachable page
// exactly once, then the canonical serial traversal replays the
// completed records to produce Stats — byte-identical to the seed's
// recursive crawl, whatever the worker count, politeness delay, or
// crash/resume history.
func (r *Robot) RunCtx(ctx context.Context, startURL string) (*Stats, error) {
	cfg := r.runConfig()
	if cfg.err != nil {
		return nil, cfg.err
	}
	if cfg.strict && cfg.maxDepth > cfg.stable {
		return nil, fmt.Errorf("%w: depth %d > stable limit %d",
			ErrUnstable, cfg.maxDepth, cfg.stable)
	}
	if r.Fetcher == nil || r.Clock == nil {
		return nil, errors.New("webbot: robot needs a fetcher and a clock")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	effDepth := cfg.maxDepth
	if effDepth > cfg.stable {
		effDepth = cfg.stable
	}

	st := &Stats{TypeCounts: make(map[string]int)}
	start := r.Clock.Now()
	sp := r.Telemetry.Spans().Start(r.Clock, r.Telemetry.Host(), r.TraceID, r.SpanParent, "bot.crawl")
	sp.SetAttr("start", startURL)
	fail := func(err error) (*Stats, error) {
		sp.SetErr(err)
		sp.End()
		return nil, err
	}

	ff, forkable := r.Fetcher.(websim.ForkableFetcher)
	if cfg.workers > 1 && !forkable {
		return fail(ErrNotForkable)
	}

	var rules *Robots
	if cfg.robots == RobotsHonor {
		var err error
		rules, err = r.loadRobots(startURL)
		if err != nil {
			return fail(err)
		}
		if !rules.Allowed(cfg.agent, urlPath(startURL)) {
			return fail(fmt.Errorf("%w: %s for agent %q", ErrRobotsDenied, startURL, cfg.agent))
		}
	}

	fr, err := frontier.New(frontier.Options{
		Store:       cfg.store,
		Namespace:   cfg.ns,
		MaxAttempts: cfg.maxAttempts,
		AdoptClaims: true, // a resumed local crawl owns no live workers
	})
	if err != nil {
		return fail(err)
	}
	r.last = fr
	if cfg.recrawl {
		if cfg.store == nil {
			return fail(errors.New("webbot: WithRecrawl requires WithFrontier"))
		}
		if len(fr.Records()) > 0 {
			if err := fr.BeginRecrawl(); err != nil {
				return fail(err)
			}
		}
	}

	rp := &replayer{
		cfg:       cfg,
		effDepth:  effDepth,
		rules:     rules,
		fr:        fr,
		clock:     r.Clock,
		fetcher:   r.Fetcher,
		records:   map[string]*frontier.PageRecord{},
		bestDepth: map[string]int{},
		pages:     map[string]*replayPage{},
		st:        st,
	}
	if forkable {
		// Stage 1, acquisition: workers drain the frontier on forked
		// fetchers, recording one PageRecord per URL.
		if err := r.acquire(ctx, ff, fr, rules, cfg, effDepth, startURL); err != nil {
			return fail(err)
		}
		rp.parent = ff
		for _, rec := range fr.Records() {
			rp.records[rec.URL] = rec
		}
	}
	// Stage 2, canonical replay: the seed's recursive traversal over
	// the records (or live fetches for non-forkable fetchers).
	if err := rp.crawl(startURL, "", 0); err != nil {
		return fail(err)
	}
	st.Elapsed = r.Clock.Now() - start
	sp.End()
	if reg := r.Telemetry.Registry(); reg != nil {
		reg.Counter("bot.pages").Add(int64(st.PagesVisited))
		reg.Counter("bot.bytes").Add(int64(st.BytesFetched))
		reg.Counter("bot.links").Add(int64(st.LinksChecked))
	}
	return st, nil
}

// loadRobots fetches and parses the origin's robots.txt on the robot's
// own clock. A missing or empty file allows everything (nil rules).
func (r *Robot) loadRobots(startURL string) (*Robots, error) {
	u := robotsURLFor(startURL)
	if u == "" {
		return nil, nil
	}
	resp, err := r.Fetcher.Fetch(u)
	if err != nil {
		return nil, fmt.Errorf("webbot: fetch %s: %w", u, err)
	}
	if resp.Status != websim.StatusOK || resp.Page == nil || resp.Page.Body == "" {
		return nil, nil
	}
	return ParseRobots(resp.Page.Body), nil
}

// followable is the frontier admission predicate: the links a crawl
// will fetch. It must agree exactly with the replay's expansion filter
// — acquisition fetches precisely what replay will visit.
func followable(url string, depth int, rules *Robots, cfg *config, effDepth int) bool {
	if cfg.prefix != "" && !strings.HasPrefix(url, cfg.prefix) {
		return false
	}
	if rules != nil && !rules.Allowed(cfg.agent, urlPath(url)) {
		return false
	}
	return depth <= effDepth
}

// acquire runs the fetcher-worker stage until the frontier drains.
func (r *Robot) acquire(ctx context.Context, ff websim.ForkableFetcher, fr *frontier.Frontier,
	rules *Robots, cfg config, effDepth int, startURL string) error {
	if _, _, err := fr.Add([]frontier.Link{{URL: startURL, Depth: 0}}); err != nil {
		return err
	}
	delay := cfg.politeness
	if rules != nil {
		if d := rules.CrawlDelay(cfg.agent); d > delay {
			delay = d
		}
	}
	lim := frontier.NewLimiter(delay)
	if done := ctx.Done(); done != nil {
		finished := make(chan struct{})
		defer close(finished)
		go func() {
			select {
			case <-done:
				fr.Close() // wakes every ClaimWait with WaitClosed
			case <-finished:
			}
		}()
	}
	var wg sync.WaitGroup
	errs := make([]error, cfg.workers)
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = r.mine(fmt.Sprintf("w%d", w), ff, fr, rules, lim, cfg, effDepth)
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// mine is one fetcher worker: claim, politeness wait, fetch (or HEAD
// revalidation), feed parsed links back, complete. Each worker fetches
// on a fork with a private clock so recorded costs are independent of
// scheduling.
func (r *Robot) mine(wid string, ff websim.ForkableFetcher, fr *frontier.Frontier,
	rules *Robots, lim *frontier.Limiter, cfg config, effDepth int) error {
	clk := vclock.NewVirtual()
	fork := ff.Fork(clk)
	header, _ := fork.(websim.HeadFetcher)
	for {
		cl, state := fr.ClaimWait(wid)
		if state != frontier.WaitClaimed {
			return nil // drained or closed
		}
		rec, err := fetchOne(cl, fork, header, clk, lim)
		if err != nil {
			if _, ferr := fr.Fail(cl.URL, wid, CodeFetchFailed, err.Error(), true); ferr != nil {
				return ferr
			}
			continue
		}
		if err := enqueue(rec, fr, rules, &cfg, effDepth); err != nil {
			return err
		}
		if _, err := fr.Complete(cl.URL, wid, rec); err != nil {
			return err
		}
	}
}

// fetchOne performs the network half of one claim on the worker's
// private clock. The politeness wait is charged *before* the cost
// window opens, so FetchCost is a pure function of the URL.
func fetchOne(cl *frontier.Claim, fork websim.Fetcher, header websim.HeadFetcher,
	clk vclock.Clock, lim *frontier.Limiter) (*frontier.PageRecord, error) {
	clk.Advance(lim.Reserve(frontier.HostOf(cl.URL), clk.Now()))
	before := clk.Now()
	if cl.Prior != nil && header != nil {
		hr, err := header.Head(cl.URL)
		if err == nil && digestOfResponse(hr) == cl.Prior.Digest {
			rec := *cl.Prior
			rec.Bytes = 0 // nothing crossed the wire
			rec.FetchCost = clk.Now() - before
			rec.Revalidated = true
			return &rec, nil
		}
		// Changed (or the probe failed): fall through to a full fetch;
		// the probe's cost stays inside this fetch's recorded window.
	}
	resp, err := fork.Fetch(cl.URL)
	if err != nil {
		return nil, err
	}
	return RecordFetch(resp, cl, clk.Now()-before), nil
}

// RecordFetch folds a fetch response into the durable record the
// canonical replay consumes. Exported for remote fleet workers, which
// fetch far from the frontier and ship records back over the firewall.
func RecordFetch(resp *websim.Response, cl *frontier.Claim, cost time.Duration) *frontier.PageRecord {
	rec := &frontier.PageRecord{
		URL:       cl.URL,
		Referrer:  cl.Referrer,
		Depth:     cl.Depth,
		Status:    resp.Status,
		Bytes:     resp.Bytes,
		FetchCost: cost,
		Digest:    digestOfResponse(resp),
	}
	if resp.Page != nil {
		rec.Type = string(resp.Page.Type)
		rec.AgeDays = resp.Page.AgeDays
		for _, l := range resp.Page.Links {
			rec.Links = append(rec.Links, frontier.Link{URL: l.URL, Referrer: l.Referrer})
		}
	}
	return rec
}

// digestOfResponse is the revalidation digest: status, size, age. A
// HEAD probe returns the same metadata, so an unchanged page matches
// without a body transfer.
func digestOfResponse(resp *websim.Response) string {
	size, age := 0, 0
	if resp.Page != nil {
		size, age = resp.Page.Size, resp.Page.AgeDays
	}
	return fmt.Sprintf("%d|%d|%d", resp.Status, size, age)
}

// enqueue feeds a completed record's followable links back into the
// frontier (the parser stage). Records whose depth was lowered by a
// rediscovery are re-expanded, mirroring the replay's best-depth
// relaxation.
func enqueue(rec *frontier.PageRecord, fr *frontier.Frontier, rules *Robots, cfg *config, effDepth int) error {
	queue := []*frontier.PageRecord{rec}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		var links []frontier.Link
		for _, l := range cur.Links {
			if !followable(l.URL, cur.Depth+1, rules, cfg, effDepth) {
				continue
			}
			links = append(links, frontier.Link{URL: l.URL, Referrer: l.Referrer, Depth: cur.Depth + 1})
		}
		if len(links) == 0 {
			continue
		}
		_, lowered, err := fr.Add(links)
		if err != nil {
			return err
		}
		queue = append(queue, lowered...)
	}
	return nil
}

// replayPage caches one fetched page's links for re-expansion (nil
// entry: the URL was invalid).
type replayPage struct {
	links []frontier.Link
}

// replayer is the canonical serial traversal — the seed's recursive
// depth-limited DFS, fetching from completed records when available
// (charging the recorded costs) and live through the fetcher otherwise.
// Depth-limited DFS may first reach a page via a long cross-link path
// and later via a shorter tree path; each page is fetched exactly once
// but re-expanded when reached at a strictly shallower depth, so the
// depth constraint prunes by the page's best-known depth (as the W3C
// robot's breadth bookkeeping does).
type replayer struct {
	cfg      config
	effDepth int
	rules    *Robots
	fr       *frontier.Frontier // journal target for unstable subtrees (may be nil)
	clock    vclock.Clock
	fetcher  websim.Fetcher          // live fallback (nil in StatsFromRecords)
	parent   websim.ForkableFetcher  // Replay target for recorded fetches (may be nil)
	records  map[string]*frontier.PageRecord
	bestDepth map[string]int
	pages    map[string]*replayPage
	st       *Stats
}

// crawl fetches (once) and expands one page depth-first.
func (rp *replayer) crawl(url, referrer string, depth int) error {
	if prev, seen := rp.bestDepth[url]; seen {
		if depth >= prev {
			return nil
		}
		rp.bestDepth[url] = depth
		return rp.expand(url, depth)
	}
	rp.bestDepth[url] = depth

	rec, err := rp.fetch(url, referrer, depth)
	if err != nil {
		return err
	}
	if rec.Status != websim.StatusOK {
		rp.pages[url] = nil
		rp.st.Invalid = append(rp.st.Invalid, LinkReport{
			URL: url, Referrer: referrer, Status: rec.Status, Reason: "invalid",
		})
		return nil
	}
	rp.st.PagesVisited++
	rp.st.BytesFetched += rec.Bytes
	if rec.Revalidated {
		rp.st.Revalidated++
	}
	if depth > rp.st.MaxDepthSeen {
		rp.st.MaxDepthSeen = depth
	}
	if rec.Type != "" {
		rp.st.TypeCounts[rec.Type]++
		switch age := rec.AgeDays; {
		case age < 30:
			rp.st.AgeBuckets[0]++
		case age < 180:
			rp.st.AgeBuckets[1]++
		case age < 365:
			rp.st.AgeBuckets[2]++
		default:
			rp.st.AgeBuckets[3]++
		}
	}
	// Parsing cost scales with transferred bytes (a revalidated page
	// transferred none and needs no re-parse).
	rp.clock.Advance(time.Duration(rec.Bytes) * ParseCostPerKB / 1024)
	rp.pages[url] = &replayPage{links: rec.Links}
	return rp.expand(url, depth)
}

// fetch resolves one URL: from the acquisition records (charging the
// parent fetcher, or the bare clock when there is none), or live.
func (rp *replayer) fetch(url, referrer string, depth int) (*frontier.PageRecord, error) {
	if rec, ok := rp.records[url]; ok {
		if rp.parent != nil {
			rp.parent.Replay(&websim.Response{URL: url, Status: rec.Status, Bytes: rec.Bytes}, rec.FetchCost)
		} else {
			rp.clock.Advance(rec.FetchCost)
		}
		return rec, nil
	}
	if rp.fetcher == nil {
		return nil, fmt.Errorf("%w: no completed record for %s", ErrFetchFailed, url)
	}
	before := rp.clock.Now()
	resp, err := rp.fetcher.Fetch(url)
	if err != nil {
		return nil, fmt.Errorf("webbot: fetch %s: %w", url, err)
	}
	return RecordFetch(resp, &frontier.Claim{URL: url, Referrer: referrer, Depth: depth}, rp.clock.Now()-before), nil
}

// expand recurses over a fetched page's links.
func (rp *replayer) expand(url string, depth int) error {
	page := rp.pages[url]
	if page == nil {
		return nil
	}
	for _, link := range page.links {
		rp.st.LinksChecked++
		if rp.cfg.prefix != "" && !strings.HasPrefix(link.URL, rp.cfg.prefix) {
			rp.st.Rejected = append(rp.st.Rejected, LinkReport{
				URL: link.URL, Referrer: link.Referrer, Reason: "prefix",
			})
			continue
		}
		if rp.rules != nil && !rp.rules.Allowed(rp.cfg.agent, urlPath(link.URL)) {
			rp.st.Rejected = append(rp.st.Rejected, LinkReport{
				URL: link.URL, Referrer: link.Referrer, Reason: "robots",
			})
			continue
		}
		if depth+1 > rp.cfg.maxDepth {
			rp.st.Rejected = append(rp.st.Rejected, LinkReport{
				URL: link.URL, Referrer: link.Referrer, Reason: "depth",
			})
			continue
		}
		if depth+1 > rp.effDepth {
			// Beyond the stable limit: the legacy robot aborted the
			// whole crawl here. The staged crawler journals the
			// abandoned subtree as a typed event and carries on — the
			// wrapper's second pass reads the journal.
			rp.st.Rejected = append(rp.st.Rejected, LinkReport{
				URL: link.URL, Referrer: link.Referrer, Reason: "unstable",
			})
			if rp.fr != nil {
				_ = rp.fr.Journal(frontier.Failure{
					URL: link.URL, Referrer: link.Referrer, Depth: depth + 1,
					Code:   CodeDepthUnstable,
					Reason: fmt.Sprintf("subtree at depth %d beyond stable limit %d", depth+1, rp.effDepth),
				})
			}
			continue
		}
		if err := rp.crawl(link.URL, link.Referrer, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// StatsFromRecords replays the canonical traversal over a completed
// record set and returns the Stats the serial crawl would produce —
// without a fetcher. The fleet coordinator uses it to fold N agents'
// shared-frontier work into one deterministic aggregate: Stats is a
// pure function of (records, options), so any claim interleaving that
// completes the same record set yields byte-identical Stats. A URL the
// traversal needs but the records lack returns ErrFetchFailed (a lost
// URL — exactly what the exactly-once invariant forbids).
func StatsFromRecords(startURL string, recs []*frontier.PageRecord, opts ...Option) (*Stats, error) {
	cfg := buildConfig(opts)
	if cfg.err != nil {
		return nil, cfg.err
	}
	effDepth := cfg.maxDepth
	if effDepth > cfg.stable {
		effDepth = cfg.stable
	}
	clock := vclock.NewVirtual()
	st := &Stats{TypeCounts: make(map[string]int)}
	rp := &replayer{
		cfg:       cfg,
		effDepth:  effDepth,
		clock:     clock,
		records:   make(map[string]*frontier.PageRecord, len(recs)),
		bestDepth: map[string]int{},
		pages:     map[string]*replayPage{},
		st:        st,
	}
	for _, rec := range recs {
		rp.records[rec.URL] = rec
	}
	if err := rp.crawl(startURL, "", 0); err != nil {
		return nil, err
	}
	st.Elapsed = clock.Now()
	return st, nil
}
