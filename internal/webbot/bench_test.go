package webbot

import (
	"testing"

	"tax/internal/simnet"
	"tax/internal/vclock"
	"tax/internal/websim"
)

// BenchmarkCrawl917 measures the real compute cost of the paper's full
// crawl through this repository's kernel (the simulated time is fixed;
// this is harness throughput).
func BenchmarkCrawl917(b *testing.B) {
	site, err := websim.Generate(websim.CaseStudySpec("webserv"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock := vclock.NewVirtual()
		r := &Robot{
			Fetcher: &websim.Client{
				Server:   websim.DefaultServer(site),
				Universe: &websim.Universe{Origin: site},
				Link:     simnet.Loopback,
				Clock:    clock,
			},
			Clock:       clock,
			Constraints: Constraints{MaxDepth: 4, Prefix: "http://webserv/"},
		}
		st, err := r.Run(site.Root)
		if err != nil {
			b.Fatal(err)
		}
		if st.PagesVisited != 917 {
			b.Fatalf("pages = %d", st.PagesVisited)
		}
	}
}

func BenchmarkGenerateCaseStudySite(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := websim.Generate(websim.CaseStudySpec("webserv")); err != nil {
			b.Fatal(err)
		}
	}
}
