package wrapper_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"tax/internal/agent"
	"tax/internal/briefcase"
	"tax/internal/wrapper"
)

func TestSpecGenerateSingle(t *testing.T) {
	r := wrapper.NewSpecRegistry()
	s, err := r.Generate("logging(tag=x)")
	if err != nil {
		t.Fatal(err)
	}
	if s.Depth() != 1 || s.Names()[0] != "logging:x" {
		t.Errorf("stack = %v", s.Names())
	}
}

func TestSpecGenerateStack(t *testing.T) {
	r := wrapper.NewSpecRegistry()
	s, err := r.Generate("monitor(uri=tacoma://home//ag_monitor, subject=job) | logging(tag=dbg)")
	if err != nil {
		t.Fatal(err)
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "monitor:job" || names[1] != "logging:dbg" {
		t.Errorf("stack order = %v", names)
	}
}

func TestSpecGenerateGroup(t *testing.T) {
	r := wrapper.NewSpecRegistry()
	s, err := r.Generate("group(name=readers, self=a, members=a;b;c, order=causal)")
	if err != nil {
		t.Fatal(err)
	}
	if s.Depth() != 1 || s.Names()[0] != "group:readers" {
		t.Errorf("stack = %v", s.Names())
	}
}

func TestSpecGenerateLoctrans(t *testing.T) {
	r := wrapper.NewSpecRegistry()
	s, err := r.Generate("loctrans(service=tacoma://home//ag_ns, self=me, resolve=peer;other)")
	if err != nil {
		t.Fatal(err)
	}
	if s.Depth() != 1 || s.Names()[0] != "loctrans:me" {
		t.Errorf("stack = %v", s.Names())
	}
}

func TestSpecGenerateEmpty(t *testing.T) {
	r := wrapper.NewSpecRegistry()
	s, err := r.Generate("  ")
	if err != nil || s.Depth() != 0 {
		t.Errorf("empty spec: %v, %v", s, err)
	}
}

func TestSpecGenerateErrors(t *testing.T) {
	r := wrapper.NewSpecRegistry()
	tests := []struct {
		name, spec string
	}{
		{"unknown kind", "teleport(x=1)"},
		{"unterminated params", "logging(tag=x"},
		{"bad param", "logging(tagx)"},
		{"empty layer", "logging(tag=a) | | logging(tag=b)"},
		{"monitor without uri", "monitor(subject=j)"},
		{"group missing members", "group(name=g, self=a)"},
		{"group bad order", "group(name=g, self=a, members=a;b, order=psychic)"},
		{"loctrans without service", "loctrans(self=x)"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := r.Generate(tt.spec); err == nil {
				t.Errorf("spec %q accepted", tt.spec)
			}
		})
	}
}

func TestSpecCustomKind(t *testing.T) {
	r := wrapper.NewSpecRegistry()
	r.Register("rec", func(p map[string]string) (wrapper.Wrapper, error) {
		return &initRecorder{onInit: func(string) {}}, nil
	})
	s, err := r.Generate("rec")
	if err != nil || s.Depth() != 1 {
		t.Errorf("custom kind: %v, %v", s, err)
	}
}

func TestWrapSpecTravelsWithAgent(t *testing.T) {
	// A _WRAPSPEC-declared monitor stack is regenerated on every hop:
	// the monitoring tool hears arrivals on both hosts without any
	// hand-registered wrapper factory.
	s := newSystem(t, "home", "h2")
	home, _ := s.Node("home")
	events := launchMonitor(t, home)

	s.DeployProgram("roamer", func(ctx *agent.Context) error {
		if ctx.Host() == "home" {
			if err := ctx.Go("tacoma://h2//vm_go"); errors.Is(err, agent.ErrMoved) {
				return err
			}
		}
		return nil
	})
	bc := briefcase.New()
	bc.SetString(wrapper.FolderWrapSpec,
		"monitor(uri=tacoma://home//ag_monitor, subject=roamer)")
	if _, err := home.VM.Launch("system", "roamer", "roamer", bc); err != nil {
		t.Fatal(err)
	}
	var got []string
	timeout := time.After(5 * time.Second)
	for len(got) < 3 {
		select {
		case ev := <-events:
			got = append(got, ev.Host+"/"+ev.Status)
		case <-timeout:
			t.Fatalf("monitor heard only %v", got)
		}
	}
	joined := strings.Join(got, "\n")
	for _, want := range []string{"home/roamer: arrived", "moving to", "h2/roamer: arrived"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in:\n%s", want, joined)
		}
	}
}

func TestWrapSpecComposesWithNamedStack(t *testing.T) {
	// _WRAPSPEC layers wrap outside a _WRAP-named stack.
	s := newSystem(t, "h1")
	n, _ := s.Node("h1")
	var mu []string
	var order = &mu
	_ = order
	done := make(chan []string, 1)
	n.Wrappers.Register("inner-rec", func() wrapper.Wrapper {
		return &hookWrapper{name: "inner", note: func(tag, ev string) {}}
	})
	n.Programs.Register("probe", func(ctx *agent.Context) error {
		// After PreLaunch, the briefcase still names only the inner
		// stack in _WRAP (the spec travels separately).
		f, err := ctx.Briefcase().Folder(briefcase.FolderSysWrap)
		if err != nil {
			done <- nil
			return err
		}
		done <- f.Strings()
		return nil
	})
	bc := briefcase.New()
	bc.Ensure(briefcase.FolderSysWrap).AppendString("inner-rec")
	bc.SetString(wrapper.FolderWrapSpec, "logging(tag=outer)")
	if _, err := n.VM.Launch("system", "probe", "probe", bc); err != nil {
		t.Fatal(err)
	}
	select {
	case names := <-done:
		joined := strings.Join(names, ",")
		if !strings.Contains(joined, "inner") {
			t.Errorf("_WRAP = %v", names)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("probe stalled")
	}
}

func TestSpecRejectedAtActivation(t *testing.T) {
	// A bad spec aborts activation rather than running unwrapped.
	s := newSystem(t, "h1")
	n, _ := s.Node("h1")
	ran := make(chan struct{}, 1)
	n.Programs.Register("naked", func(ctx *agent.Context) error {
		ran <- struct{}{}
		return nil
	})
	bc := briefcase.New()
	bc.SetString(wrapper.FolderWrapSpec, "teleport(beam=up)")
	if _, err := n.VM.Launch("system", "naked", "naked", bc); err != nil {
		t.Fatal(err) // launch enqueues; the failure is at activation
	}
	select {
	case <-ran:
		t.Error("agent ran despite invalid wrapper spec")
	case <-time.After(300 * time.Millisecond):
	}
}
