// Package wrapper implements TAX wrappers (§4): interchangeable modules
// that expand the functionality of agents without modifying the agents
// themselves.
//
// Agents can perform only two actions observable to the system — sending
// a briefcase and receiving a briefcase — and it is exactly this
// interface a wrapper observes and intercepts. Wrappers are treated by
// the system as regular agents: the system passes any briefcase from the
// agent to the wrapper, and any briefcase addressed to the agent is sent
// to the wrapper first. Wrappers stack in arbitrary depth and may
// originate from the local system or travel as part of the mobile agent
// (the _WRAP folder carries the stack across moves).
package wrapper

import (
	"errors"
	"fmt"
	"sync"

	"tax/internal/agent"
	"tax/internal/briefcase"
)

// Wrapper observes and intercepts an agent's sends and receives.
type Wrapper interface {
	// Name identifies the wrapper type in _WRAP folders and logs.
	Name() string
	// Init runs when the wrapped agent starts executing on a host (both
	// on first launch and after each move).
	Init(ctx *agent.Context) error
	// OnSend sees every briefcase the agent sends, before routing.
	// Return the (possibly rewritten) briefcase to continue outward, nil
	// to swallow the send.
	OnSend(ctx *agent.Context, bc *briefcase.Briefcase) (*briefcase.Briefcase, error)
	// OnReceive sees every briefcase addressed to the agent, before the
	// agent does. Return the (possibly rewritten) briefcase to continue
	// inward, nil to consume it.
	OnReceive(ctx *agent.Context, bc *briefcase.Briefcase) (*briefcase.Briefcase, error)
}

// Finalizer is an optional interface a Wrapper may implement to observe
// the wrapped agent's end of life on a host. OnDone runs on the agent
// goroutine after the handler returns and before the registration is
// torn down, with the terminal error (nil on clean completion,
// agent.ErrMoved after a move, else the fault) — so a wrapper can, for
// example, prune the checkpoints of an itinerary that completed.
type Finalizer interface {
	OnDone(ctx *agent.Context, err error)
}

// Stack is an ordered set of wrappers around one agent; index 0 is the
// outermost. Sends pass innermost→outermost (the agent's own wrapper sees
// its traffic first); receives pass outermost→innermost, mirroring the
// paper's "any briefcase addressed to the agent is sent to the wrapper
// first".
type Stack struct {
	wrappers []Wrapper
}

// NewStack builds a stack, outermost first.
func NewStack(outermostFirst ...Wrapper) *Stack {
	return &Stack{wrappers: outermostFirst}
}

// Push adds a wrapper outside the current stack.
func (s *Stack) Push(w Wrapper) {
	s.wrappers = append([]Wrapper{w}, s.wrappers...)
}

// Depth returns the number of stacked wrappers.
func (s *Stack) Depth() int { return len(s.wrappers) }

// Names returns the wrapper names, outermost first.
func (s *Stack) Names() []string {
	out := make([]string, len(s.wrappers))
	for i, w := range s.wrappers {
		out[i] = w.Name()
	}
	return out
}

// Install wires the stack into the agent context and runs each wrapper's
// Init, outermost first. The stack is also recorded in the briefcase's
// _WRAP folder so it travels with the agent.
func (s *Stack) Install(ctx *agent.Context) error {
	ctx.SetInterceptors(
		func(bc *briefcase.Briefcase) (*briefcase.Briefcase, error) {
			cur := bc
			for i := len(s.wrappers) - 1; i >= 0; i-- {
				var err error
				cur, err = s.wrappers[i].OnSend(ctx, cur)
				if err != nil {
					return nil, fmt.Errorf("wrapper %s: %w", s.wrappers[i].Name(), err)
				}
				if cur == nil {
					return nil, nil
				}
			}
			return cur, nil
		},
		func(bc *briefcase.Briefcase) (*briefcase.Briefcase, error) {
			cur := bc
			for _, w := range s.wrappers {
				var err error
				cur, err = w.OnReceive(ctx, cur)
				if err != nil {
					return nil, fmt.Errorf("wrapper %s: %w", w.Name(), err)
				}
				if cur == nil {
					return nil, nil
				}
			}
			return cur, nil
		},
	)
	ctx.SetFinalizer(func(err error) {
		// Innermost first, mirroring send order: the wrapper closest to
		// the agent sees its termination first.
		for i := len(s.wrappers) - 1; i >= 0; i-- {
			if f, ok := s.wrappers[i].(Finalizer); ok {
				f.OnDone(ctx, err)
			}
		}
	})
	f := ctx.Briefcase().Ensure(briefcase.FolderSysWrap)
	f.Clear()
	for _, w := range s.wrappers {
		f.AppendString(w.Name())
	}
	for _, w := range s.wrappers {
		if err := w.Init(ctx); err != nil {
			return fmt.Errorf("wrapper %s: init: %w", w.Name(), err)
		}
	}
	return nil
}

// Factory constructs a fresh wrapper instance for an arriving agent.
type Factory func() Wrapper

// Registry maps wrapper names to factories; it is the pre-deployed
// counterpart of the program registry, letting wrapper stacks travel by
// name in the _WRAP folder. Safe for concurrent use.
type Registry struct {
	mu sync.RWMutex
	m  map[string]Factory
}

// ErrUnknownWrapper is returned when a _WRAP folder names a wrapper that
// is not deployed on this host.
var ErrUnknownWrapper = errors.New("wrapper: unknown wrapper")

// Register deploys a wrapper factory.
func (r *Registry) Register(name string, f Factory) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = make(map[string]Factory)
	}
	r.m[name] = f
}

// Build constructs the stack named by the briefcase's _WRAP folder
// (outermost first). A briefcase without the folder yields a nil stack.
func (r *Registry) Build(bc *briefcase.Briefcase) (*Stack, error) {
	if !bc.Has(briefcase.FolderSysWrap) {
		return nil, nil
	}
	f, err := bc.Folder(briefcase.FolderSysWrap)
	if err != nil {
		return nil, err
	}
	var ws []Wrapper
	for _, name := range f.Strings() {
		r.mu.RLock()
		factory, ok := r.m[name]
		r.mu.RUnlock()
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownWrapper, name)
		}
		ws = append(ws, factory())
	}
	return NewStack(ws...), nil
}

// PreLaunch returns a vm.Config.PreLaunch hook that rebuilds and installs
// the travelling wrapper stack on every activation.
func (r *Registry) PreLaunch() func(ctx *agent.Context) error {
	return func(ctx *agent.Context) error {
		stack, err := r.Build(ctx.Briefcase())
		if err != nil {
			return err
		}
		if stack == nil {
			return nil
		}
		return stack.Install(ctx)
	}
}
