package wrapper_test

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"tax/internal/agent"
	"tax/internal/briefcase"
	"tax/internal/core"
	"tax/internal/uri"
	"tax/internal/wrapper"
)

// fetchCheckpoint fetches and decodes a snapshot from a node's ag_fs,
// returning the store's error (e.g. "no such file") verbatim.
func fetchCheckpoint(t *testing.T, n *core.Node, path string) (*briefcase.Briefcase, error) {
	t.Helper()
	reg, err := n.FW.Register("test", "system", "ckpt-reader")
	if err != nil {
		t.Fatal(err)
	}
	defer n.FW.Unregister(reg)
	ctx := agent.NewContext(n.FW, reg, briefcase.New(), nil, nil)
	req := briefcase.New()
	req.SetString("_SVCOP", "get")
	req.SetString("_PATH", path)
	resp, err := ctx.MeetDirect("ag_fs", req, 5*time.Second)
	if err != nil {
		return nil, err
	}
	data, err := resp.Folder("_DATA")
	if err != nil {
		t.Fatalf("checkpoint %s has no data: %v", path, resp)
	}
	raw, err := data.Element(0)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := briefcase.Decode(raw)
	if err != nil {
		t.Fatalf("checkpoint %s does not decode: %v", path, err)
	}
	return snap, nil
}

// readCheckpoint is fetchCheckpoint for callers that require the
// snapshot to exist.
func readCheckpoint(t *testing.T, n *core.Node, path string) *briefcase.Briefcase {
	t.Helper()
	snap, err := fetchCheckpoint(t, n, path)
	if err != nil {
		t.Fatalf("checkpoint read %s: %v", path, err)
	}
	return snap
}

// TestCheckpointSnapshotsProgress verifies the passive-replication
// wrapper stores a decodable snapshot at home reflecting the agent's
// progress across hops — and prunes it once the itinerary completes
// cleanly (the regression half: the snapshot used to be orphaned in the
// store forever).
func TestCheckpointSnapshotsProgress(t *testing.T) {
	s := newSystem(t, "home", "h2")
	home, _ := s.Node("home")

	s.DeployWrapper("checkpoint:/ckpt/job", func() wrapper.Wrapper {
		return &wrapper.Checkpoint{StoreURI: "tacoma://home//ag_fs", Path: "/ckpt/job"}
	})
	arrived := make(chan string, 2)
	release := make(chan struct{})
	s.DeployProgram("job", func(ctx *agent.Context) error {
		arrived <- ctx.Host()
		ctx.Briefcase().SetString("PROGRESS", "visited "+ctx.Host())
		if ctx.Host() == "home" {
			if err := ctx.Go("tacoma://h2//vm_go"); errors.Is(err, agent.ErrMoved) {
				return err
			}
		}
		// Hold the agent alive on h2 so the test can observe the
		// mid-tour snapshot before completion prunes it.
		<-release
		return nil
	})
	bc := briefcase.New()
	bc.Ensure(briefcase.FolderSysWrap).AppendString("checkpoint:/ckpt/job")
	if _, err := home.VM.Launch("system", "job", "job", bc); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-arrived:
		case <-time.After(5 * time.Second):
			t.Fatal("itinerary stalled")
		}
	}
	// Init on h2 re-snapshots after arrival; poll for the settled state.
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := readCheckpoint(t, home, "/ckpt/job")
		prog, _ := snap.GetString("PROGRESS")
		if strings.Contains(prog, "visited home") || strings.Contains(prog, "visited h2") {
			if !snap.Has(briefcase.FolderSysTarget) {
				break // routing folders scrubbed from the snapshot
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("snapshot never converged: %v", snap)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Clean completion must prune the now-stale snapshot from the store.
	close(release)
	deadline = time.Now().Add(5 * time.Second)
	for {
		_, err := fetchCheckpoint(t, home, "/ckpt/job")
		if err != nil && strings.Contains(err.Error(), "no such file") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("completed itinerary's snapshot never pruned (err=%v)", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCrashRecoveryFromCheckpoint is the §4 fault-tolerance scenario end
// to end: an itinerant worker dies mid-tour (its host is partitioned and
// its process killed); home recovers it from the last snapshot and the
// tour completes from where the checkpoint left off.
func TestCrashRecoveryFromCheckpoint(t *testing.T) {
	s := newSystem(t, "home", "h2", "h3")
	home, _ := s.Node("home")
	n2, _ := s.Node("h2")

	const ckpt = "/ckpt/tour"
	s.DeployWrapper("checkpoint:"+ckpt, func() wrapper.Wrapper {
		return &wrapper.Checkpoint{StoreURI: "tacoma://home//ag_fs", Path: ckpt}
	})

	var mu sync.Mutex
	var visited []string
	finished := make(chan []string, 1)
	crashOnH2 := make(chan struct{}, 1)
	crashOnH2 <- struct{}{} // first h2 visit crashes

	s.DeployProgram("tour", func(ctx *agent.Context) error {
		mu.Lock()
		visited = append(visited, ctx.Host())
		mu.Unlock()
		bc := ctx.Briefcase()
		bc.Ensure("LOG").AppendString("did work on " + ctx.Host())

		if ctx.Host() == "h2" {
			select {
			case <-crashOnH2:
				// Simulated crash: the agent dies without moving on.
				return errors.New("simulated crash on h2")
			default:
			}
		}
		hosts, err := bc.Folder(briefcase.FolderHosts)
		if err != nil {
			return err
		}
		for {
			next, ok := hosts.Pop()
			if !ok {
				mu.Lock()
				v := append([]string(nil), visited...)
				mu.Unlock()
				finished <- v
				return nil
			}
			if err := ctx.Go(next.String()); errors.Is(err, agent.ErrMoved) {
				return err
			}
		}
	})

	bc := briefcase.New()
	bc.Ensure(briefcase.FolderSysWrap).AppendString("checkpoint:" + ckpt)
	bc.Ensure(briefcase.FolderHosts).AppendString(
		"tacoma://h2//vm_go",
		"tacoma://h3//vm_go",
	)
	if _, err := home.VM.Launch("system", "tour", "tour", bc); err != nil {
		t.Fatal(err)
	}

	// Wait for the crash: the agent disappears from h2 without reaching
	// h3.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		crashed := len(visited) >= 2 && visited[len(visited)-1] == "h2"
		mu.Unlock()
		if crashed && len(n2.FW.Lookup(uri.URI{Name: "tour"}, "system")) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("crash never observed")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A faulted agent must keep its snapshot — it is exactly what
	// recovery needs (only clean completion prunes).
	if _, err := fetchCheckpoint(t, home, ckpt); err != nil {
		t.Fatalf("crashed agent's snapshot missing: %v", err)
	}

	// Home recovers the agent from the snapshot taken before the move to
	// h2: it resumes with h2's work re-done at home... the snapshot was
	// the state *sent to* h2, so the recovered agent replays h2's visit
	// from the recovery host and then continues to h3.
	if _, err := home.Recover("system", "tour", "tour", ckpt); err != nil {
		t.Fatalf("recover: %v", err)
	}
	select {
	case v := <-finished:
		joined := strings.Join(v, ",")
		// Original run: home, h2 (crash). Recovery: home (replaying the
		// snapshot), h3.
		if !strings.HasPrefix(joined, "home,h2,home") || !strings.HasSuffix(joined, "h3") {
			t.Errorf("visit order = %s", joined)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("recovered tour never finished")
	}
}
