package wrapper

import (
	"fmt"

	"tax/internal/agent"
	"tax/internal/briefcase"
	"tax/internal/group"
)

// Group-protocol folders.
const (
	// FolderGroupMeta carries a group.Envelope's ordering metadata.
	FolderGroupMeta = "_GRPMETA"
	// FolderGroupSeqReq marks an envelope travelling to the sequencer
	// for a global slot (Total ordering only).
	FolderGroupSeqReq = "_GRPSEQREQ"
)

// Group is the paper's group-communication wrapper: "a group
// communication wrapper can be used to wrap an application agent. As the
// wrapper is instantiated, it is given parameters such as group
// membership ... and desired properties of communication (causal, FIFO,
// atomic)". The wrapped agent addresses the group by sending to the
// group's name; the wrapper broadcasts with the requested ordering and
// reorders arrivals before the agent sees them.
//
// Member ids are routable agent URIs. For Total ("atomic") ordering the
// first member acts as the sequencer: sends travel to it for a global
// slot and it rebroadcasts to every member.
type Group struct {
	// GroupName is the target name the agent uses to address the group.
	GroupName string
	// Members are the routable URIs of all members, sequencer first for
	// Total ordering. The wrapped agent's own URI must be included.
	Members []string
	// Self is this member's id (its routable URI rendered as a string).
	Self string
	// Ordering selects FIFO, Causal or Total delivery.
	Ordering group.Ordering

	engine *group.Engine
}

var _ Wrapper = (*Group)(nil)

// Name implements Wrapper.
func (g *Group) Name() string { return "group:" + g.GroupName }

// Init implements Wrapper.
func (g *Group) Init(_ *agent.Context) error {
	e, err := group.NewEngine(g.Self, g.Members, g.Ordering)
	if err != nil {
		return err
	}
	g.engine = e
	return nil
}

// isSequencer reports whether this member assigns global slots.
func (g *Group) isSequencer() bool {
	return len(g.Members) > 0 && g.Members[0] == g.Self
}

// OnSend implements Wrapper: sends addressed to the group name broadcast
// to the membership; everything else passes through.
func (g *Group) OnSend(ctx *agent.Context, bc *briefcase.Briefcase) (*briefcase.Briefcase, error) {
	target, _ := bc.GetString(briefcase.FolderSysTarget)
	if target != g.GroupName {
		return bc, nil
	}
	if g.engine == nil {
		return nil, fmt.Errorf("group %s: not initialized", g.GroupName)
	}
	env := g.engine.Stamp(nil)

	switch g.Ordering {
	case group.Total:
		if g.isSequencer() {
			g.engine.Sequence(&env)
			return nil, g.broadcast(ctx, bc, env)
		}
		// Route to the sequencer for a slot.
		out := bc.Clone()
		out.SetString(FolderGroupMeta, env.EncodeMeta())
		out.SetString(FolderGroupSeqReq, "1")
		out.SetString(briefcase.FolderSysTarget, g.Members[0])
		if err := ctx.ActivateDirect(g.Members[0], out); err != nil {
			return nil, fmt.Errorf("group %s: to sequencer: %w", g.GroupName, err)
		}
		return nil, nil
	default:
		// FIFO/Causal: peer broadcast to every other member, plus direct
		// self-delivery (own sends are trivially ordered after the
		// agent's previous sends).
		if err := g.broadcastPeers(ctx, bc, env); err != nil {
			return nil, err
		}
		return nil, g.deliverSelf(ctx, bc)
	}
}

// broadcast sends a sequenced envelope to every member including self.
func (g *Group) broadcast(ctx *agent.Context, bc *briefcase.Briefcase, env group.Envelope) error {
	for _, m := range g.Members {
		out := bc.Clone()
		out.SetString(FolderGroupMeta, env.EncodeMeta())
		out.Drop(FolderGroupSeqReq)
		if m == g.Self {
			if err := g.feedEngine(ctx, out); err != nil {
				return err
			}
			continue
		}
		out.SetString(briefcase.FolderSysTarget, m)
		if err := ctx.ActivateDirect(m, out); err != nil {
			return fmt.Errorf("group %s: to %s: %w", g.GroupName, m, err)
		}
	}
	return nil
}

// broadcastPeers sends a stamped envelope to every member except self.
func (g *Group) broadcastPeers(ctx *agent.Context, bc *briefcase.Briefcase, env group.Envelope) error {
	for _, m := range g.Members {
		if m == g.Self {
			continue
		}
		out := bc.Clone()
		out.SetString(FolderGroupMeta, env.EncodeMeta())
		out.SetString(briefcase.FolderSysTarget, m)
		if err := ctx.ActivateDirect(m, out); err != nil {
			return fmt.Errorf("group %s: to %s: %w", g.GroupName, m, err)
		}
	}
	return nil
}

// deliverSelf injects a scrubbed copy into the agent's own mailbox.
func (g *Group) deliverSelf(ctx *agent.Context, bc *briefcase.Briefcase) error {
	own := bc.Clone()
	own.Drop(FolderGroupMeta)
	own.Drop(FolderGroupSeqReq)
	own.SetString(briefcase.FolderSysSender, g.Self)
	return ctx.Registration().Inject(own)
}

// OnReceive implements Wrapper: group envelopes are fed to the ordering
// engine; whatever becomes deliverable is re-injected scrubbed, so the
// agent receives plain briefcases in the guaranteed order.
func (g *Group) OnReceive(ctx *agent.Context, bc *briefcase.Briefcase) (*briefcase.Briefcase, error) {
	if !bc.Has(FolderGroupMeta) {
		return bc, nil
	}
	if g.engine == nil {
		return nil, fmt.Errorf("group %s: not initialized", g.GroupName)
	}
	// A sequencing request: stamp and rebroadcast (sequencer only).
	if bc.Has(FolderGroupSeqReq) && g.isSequencer() {
		meta, _ := bc.GetString(FolderGroupMeta)
		env, err := group.DecodeMeta(meta)
		if err != nil {
			return nil, err
		}
		g.engine.Sequence(&env)
		bc.Drop(FolderGroupSeqReq)
		return nil, g.broadcast(ctx, bc, env)
	}
	return nil, g.feedEngine(ctx, bc)
}

// feedEngine runs an arriving envelope through the ordering engine and
// re-injects deliverable briefcases in order.
func (g *Group) feedEngine(ctx *agent.Context, bc *briefcase.Briefcase) error {
	meta, _ := bc.GetString(FolderGroupMeta)
	env, err := group.DecodeMeta(meta)
	if err != nil {
		return err
	}
	env.Payload = bc.Encode()
	ready, err := g.engine.Receive(env)
	if err != nil {
		return err
	}
	for _, d := range ready {
		plain, err := briefcase.Decode(d.Payload)
		if err != nil {
			return err
		}
		plain.Drop(FolderGroupMeta)
		plain.Drop(FolderGroupSeqReq)
		plain.SetString(briefcase.FolderSysSender, d.Sender)
		if err := ctx.Registration().Inject(plain); err != nil {
			return err
		}
	}
	return nil
}
