package wrapper_test

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"tax/internal/agent"
	"tax/internal/briefcase"
	"tax/internal/core"
	"tax/internal/firewall"
	"tax/internal/group"
	"tax/internal/naming"
	"tax/internal/services"
	"tax/internal/simnet"
	"tax/internal/wrapper"
)

func newSystem(t *testing.T, hosts ...string) *core.System {
	t.Helper()
	s, err := core.NewSystem(simnet.LAN100)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	for i, h := range hosts {
		opts := core.NodeOptions{NoCVM: true}
		opts.OnAgentDone = func(name string, err error) {
			if err != nil && !errors.Is(err, agent.ErrMoved) {
				t.Logf("agent %s finished with: %v", name, err)
			}
		}
		if i == 0 {
			opts.NameService = true
		}
		if _, err := s.AddNode(h, opts); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// recorder is a minimal wrapper that records the traffic it sees.
type recorder struct {
	tag string
	mu  sync.Mutex
	log []string
}

func (r *recorder) Name() string { return "rec:" + r.tag }
func (r *recorder) Init(ctx *agent.Context) error {
	r.add("init@" + ctx.Host())
	return nil
}
func (r *recorder) OnSend(_ *agent.Context, bc *briefcase.Briefcase) (*briefcase.Briefcase, error) {
	r.add("send")
	return bc, nil
}
func (r *recorder) OnReceive(_ *agent.Context, bc *briefcase.Briefcase) (*briefcase.Briefcase, error) {
	r.add("recv")
	return bc, nil
}
func (r *recorder) add(s string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.log = append(r.log, s)
}
func (r *recorder) events() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.log...)
}

// swallower consumes every send/receive.
type swallower struct{}

func (swallower) Name() string              { return "swallow" }
func (swallower) Init(*agent.Context) error { return nil }
func (swallower) OnSend(*agent.Context, *briefcase.Briefcase) (*briefcase.Briefcase, error) {
	return nil, nil
}
func (swallower) OnReceive(*agent.Context, *briefcase.Briefcase) (*briefcase.Briefcase, error) {
	return nil, nil
}

func TestStackOrdering(t *testing.T) {
	s := newSystem(t, "h1")
	n, _ := s.Node("h1")

	outer := &recorder{tag: "outer"}
	inner := &recorder{tag: "inner"}
	var order []string
	var mu sync.Mutex
	note := func(tag, ev string) {
		mu.Lock()
		order = append(order, tag+":"+ev)
		mu.Unlock()
	}
	outerW := &hookWrapper{name: "outer", note: note}
	innerW := &hookWrapper{name: "inner", note: note}
	_ = outer
	_ = inner

	done := make(chan struct{})
	n.Programs.Register("svc", func(ctx *agent.Context) error {
		req, err := ctx.Await(5 * time.Second)
		if err != nil {
			return err
		}
		return ctx.Reply(req, briefcase.New())
	})
	n.Programs.Register("wrapped", func(ctx *agent.Context) error {
		defer close(done)
		stack := wrapper.NewStack(outerW, innerW)
		if err := stack.Install(ctx); err != nil {
			return err
		}
		req := briefcase.New()
		if _, err := ctx.Meet("system/svc", req, 5*time.Second); err != nil {
			return err
		}
		return nil
	})
	if _, err := n.VM.Launch("system", "svc", "svc", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := n.VM.Launch("system", "wrapped", "wrapped", nil); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("wrapped agent stalled")
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"inner:send", "outer:send", "outer:recv", "inner:recv"}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Errorf("interception order = %v, want %v", order, want)
	}
}

// hookWrapper reports send/recv events through a callback.
type hookWrapper struct {
	name string
	note func(tag, ev string)
}

func (h *hookWrapper) Name() string              { return h.name }
func (h *hookWrapper) Init(*agent.Context) error { return nil }
func (h *hookWrapper) OnSend(_ *agent.Context, bc *briefcase.Briefcase) (*briefcase.Briefcase, error) {
	h.note(h.name, "send")
	return bc, nil
}
func (h *hookWrapper) OnReceive(_ *agent.Context, bc *briefcase.Briefcase) (*briefcase.Briefcase, error) {
	h.note(h.name, "recv")
	return bc, nil
}

func TestSwallowedSendNeverRoutes(t *testing.T) {
	s := newSystem(t, "h1")
	n, _ := s.Node("h1")
	sent := make(chan error, 1)
	n.Programs.Register("mute", func(ctx *agent.Context) error {
		if err := wrapper.NewStack(swallower{}).Install(ctx); err != nil {
			return err
		}
		bc := briefcase.New()
		sent <- ctx.Activate("system/nowhere", bc)
		return nil
	})
	before := n.FW.Stats()
	if _, err := n.VM.Launch("system", "mute", "mute", nil); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-sent:
		if err != nil {
			t.Errorf("swallowed send errored: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("agent stalled")
	}
	after := n.FW.Stats()
	if after.Queued != before.Queued || after.Delivered != before.Delivered {
		t.Error("swallowed send reached the firewall")
	}
}

func TestWrapperStackTravels(t *testing.T) {
	// A stack named in _WRAP is rebuilt from the destination's registry
	// after a move: the recorder Inits once per host.
	s := newSystem(t, "h1", "h2")
	var mu sync.Mutex
	var inits []string
	s.DeployWrapper("rec:travel", func() wrapper.Wrapper {
		return &initRecorder{onInit: func(h string) {
			mu.Lock()
			inits = append(inits, h)
			mu.Unlock()
		}}
	})
	done := make(chan struct{})
	prog := func(ctx *agent.Context) error {
		if ctx.Host() == "h1" {
			if err := ctx.Go("tacoma://h2//vm_go"); errors.Is(err, agent.ErrMoved) {
				return err
			}
			return errors.New("move failed")
		}
		close(done)
		return nil
	}
	s.DeployProgram("traveller", prog)
	n1, _ := s.Node("h1")

	bc := briefcase.New()
	bc.Ensure(briefcase.FolderSysWrap).AppendString("rec:travel")
	if _, err := n1.VM.Launch("system", "traveller", "traveller", bc); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("traveller stalled")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(inits) != 2 || inits[0] != "h1" || inits[1] != "h2" {
		t.Errorf("wrapper inits = %v, want [h1 h2]", inits)
	}
}

type initRecorder struct{ onInit func(host string) }

func (i *initRecorder) Name() string { return "rec:travel" }
func (i *initRecorder) Init(ctx *agent.Context) error {
	i.onInit(ctx.Host())
	return nil
}
func (i *initRecorder) OnSend(_ *agent.Context, bc *briefcase.Briefcase) (*briefcase.Briefcase, error) {
	return bc, nil
}
func (i *initRecorder) OnReceive(_ *agent.Context, bc *briefcase.Briefcase) (*briefcase.Briefcase, error) {
	return bc, nil
}

func TestUnknownTravellingWrapperRejected(t *testing.T) {
	s := newSystem(t, "h1", "h2")
	// Deploy only on h1.
	n1, _ := s.Node("h1")
	n1.Wrappers.Register("exotic", func() wrapper.Wrapper { return &initRecorder{onInit: func(string) {}} })

	moved := make(chan error, 1)
	s.DeployProgram("mover", func(ctx *agent.Context) error {
		if ctx.Host() == "h1" {
			err := ctx.Go("tacoma://h2//vm_go")
			moved <- err
			return err
		}
		t.Error("agent ran on h2 despite missing wrapper")
		return nil
	})
	bc := briefcase.New()
	bc.Ensure(briefcase.FolderSysWrap).AppendString("exotic")
	if _, err := n1.VM.Launch("system", "mover", "mover", bc); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-moved:
		if !errors.Is(err, agent.ErrMoved) {
			t.Fatalf("move transport failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("mover stalled")
	}
	// The activation on h2 fails in PreLaunch; nothing left running there.
	time.Sleep(100 * time.Millisecond)
	n2, _ := s.Node("h2")
	for _, in := range n2.FW.List() {
		if in.URI.Name == "mover" {
			t.Error("agent with unknown wrapper activated on h2")
		}
	}
}

func TestMonitorWrapperReportsAndAnswersStatus(t *testing.T) {
	s := newSystem(t, "home", "remote")
	home, _ := s.Node("home")

	// Launch the monitoring tool (ag_monitor) at home.
	events := launchMonitor(t, home)

	s.DeployWrapper("monitor:job", func() wrapper.Wrapper {
		return &wrapper.Monitor{MonitorURI: "tacoma://home//ag_monitor", Subject: "job"}
	})
	s.DeployProgram("jobprog", func(ctx *agent.Context) error {
		ctx.Briefcase().Ensure(briefcase.FolderStatus).AppendString("phase-1 done")
		if ctx.Host() == "home" {
			if err := ctx.Go("tacoma://remote//vm_go"); errors.Is(err, agent.ErrMoved) {
				return err
			}
		}
		// Stay alive to answer status queries.
		_, err := ctx.Await(2 * time.Second)
		if err != nil && !errors.Is(err, firewall.ErrRecvTimeout) {
			return err
		}
		return nil
	})

	bc := briefcase.New()
	bc.Ensure(briefcase.FolderSysWrap).AppendString("monitor:job")
	if _, err := home.VM.Launch("system", "job", "jobprog", bc); err != nil {
		t.Fatal(err)
	}

	// The monitor hears: arrived@home, moving, arrived@remote.
	var got []string
	timeout := time.After(5 * time.Second)
	for len(got) < 3 {
		select {
		case ev := <-events:
			got = append(got, ev.Host+"/"+ev.Status)
		case <-timeout:
			t.Fatalf("monitor reports so far: %v", got)
		}
	}
	joined := strings.Join(got, "\n")
	for _, want := range []string{"home/job: arrived", "job: moving to", "remote/job: arrived"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing report %q in:\n%s", want, joined)
		}
	}

	// Query status: the wrapper answers; the agent never sees it.
	admin, err := home.FW.Register("test", "system", "querier")
	if err != nil {
		t.Fatal(err)
	}
	q := briefcase.New()
	q.SetString(briefcase.FolderSysTarget, "tacoma://remote/system/job")
	q.SetString(wrapper.FolderWrapOp, wrapper.WrapOpStatus)
	q.SetString(firewall.FolderMsgID, "q1")
	if err := home.FW.Send(admin.GlobalURI(), q); err != nil {
		t.Fatal(err)
	}
	resp, err := admin.Recv(5 * time.Second)
	if err != nil {
		t.Fatalf("no status reply: %v", err)
	}
	host, _ := resp.GetString("HOST")
	if host != "remote" {
		t.Errorf("status HOST = %q", host)
	}
	f, err := resp.Folder(briefcase.FolderStatus)
	if err != nil || !strings.Contains(strings.Join(f.Strings(), ","), "phase-1 done") {
		t.Errorf("status = %v, %v", f, err)
	}
}

// launchMonitor starts ag_monitor on a node and returns its event stream.
func launchMonitor(t *testing.T, n *core.Node) <-chan services.MonitorEvent {
	t.Helper()
	handler, events := services.NewAgMonitor(64)
	n.Programs.Register("ag_monitor", handler)
	if _, err := n.VM.Launch("system", "ag_monitor", "ag_monitor", nil); err != nil {
		t.Fatal(err)
	}
	return events
}

func TestLocationTransparentWrapper(t *testing.T) {
	s := newSystem(t, "home", "h2")
	home, _ := s.Node("home")
	n2, _ := s.Node("h2")

	client := naming.Client{Service: "tacoma://home//ag_ns"}
	// The registry key must equal the wrapper's Name() so the _WRAP
	// folder resolves after a move.
	s.DeployWrapper("loctrans:stable-target", func() wrapper.Wrapper {
		return &wrapper.LocationTransparent{Client: client, SelfName: "stable-target"}
	})

	received := make(chan string, 1)
	s.DeployProgram("target", func(ctx *agent.Context) error {
		// Move once, then wait for mail addressed to the stable name.
		if ctx.Host() == "home" {
			if err := ctx.Go("tacoma://h2//vm_go"); errors.Is(err, agent.ErrMoved) {
				return err
			}
		}
		bc, err := ctx.Await(5 * time.Second)
		if err != nil {
			received <- "err:" + err.Error()
			return err
		}
		body, _ := bc.GetString("BODY")
		received <- body
		return nil
	})
	tb := briefcase.New()
	tb.Ensure(briefcase.FolderSysWrap).AppendString("loctrans:stable-target")
	if _, err := home.VM.Launch("system", "roamer", "target", tb); err != nil {
		t.Fatal(err)
	}

	// Wait until the registry sees the post-move binding.
	deadline := time.Now().Add(5 * time.Second)
	for {
		b, err := home.Names.Lookup("stable-target")
		if err == nil && strings.Contains(b.Location, "h2") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("binding never updated: %v (err %v)", b, err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A sender wrapped with a resolving wrapper reaches the moved agent
	// by its stable name.
	s.DeployProgram("sender", func(ctx *agent.Context) error {
		stack := wrapper.NewStack(&wrapper.LocationTransparent{
			Client:  client,
			Resolve: map[string]bool{"stable-target": true},
		})
		if err := stack.Install(ctx); err != nil {
			return err
		}
		bc := briefcase.New()
		bc.SetString("BODY", "found you")
		return ctx.Activate("stable-target", bc)
	})
	if _, err := home.VM.Launch("system", "sender", "sender", nil); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-received:
		if got != "found you" {
			t.Errorf("received %q", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("location-transparent send lost")
	}
	_ = n2
}

func TestGroupWrapperFIFOBroadcast(t *testing.T) {
	s := newSystem(t, "h1", "h2", "h3")
	const groupName = "readers"
	const sends = 5

	type memberResult struct {
		id   string
		msgs []string
	}
	results := make(chan memberResult, 3)

	members := []string{
		"tacoma://h1/system/m1:1100",
		"tacoma://h2/system/m2:1100",
		"tacoma://h3/system/m3:1100",
	}
	_ = members
	// Instance numbers are allocated dynamically, so bind membership
	// after launch: launch agents that wait for a GO briefcase carrying
	// the membership list, then install the wrapper.
	mkMember := func(idx int, sender bool) func(ctx *agent.Context) error {
		return func(ctx *agent.Context) error {
			boot, err := ctx.Await(5 * time.Second)
			if err != nil {
				return err
			}
			memberList, err := boot.Folder("MEMBERS")
			if err != nil {
				return err
			}
			ms := memberList.Strings()
			g := &wrapper.Group{
				GroupName: groupName,
				Members:   ms,
				Self:      ctx.URI().String(),
				Ordering:  group.FIFO,
			}
			if err := wrapper.NewStack(g).Install(ctx); err != nil {
				return err
			}
			if sender {
				for i := 0; i < sends; i++ {
					bc := briefcase.New()
					bc.SetString("BODY", string(rune('a'+i)))
					if err := ctx.Activate(groupName, bc); err != nil {
						return err
					}
				}
			}
			var got []string
			for len(got) < sends {
				bc, err := ctx.Await(5 * time.Second)
				if err != nil {
					break
				}
				body, _ := bc.GetString("BODY")
				got = append(got, body)
			}
			results <- memberResult{id: ctx.URI().String(), msgs: got}
			return nil
		}
	}

	var regs []string
	for i, h := range []string{"h1", "h2", "h3"} {
		n, _ := s.Node(h)
		name := "m" + string(rune('1'+i))
		n.Programs.Register(name, mkMember(i, i == 0))
		reg, err := n.VM.Launch("system", name, name, nil)
		if err != nil {
			t.Fatal(err)
		}
		regs = append(regs, reg.GlobalURI().String())
	}
	// Send the membership to every member.
	for i, h := range []string{"h1", "h2", "h3"} {
		n, _ := s.Node(h)
		admin, err := n.FW.Register("test", "system", "boot"+string(rune('0'+i)))
		if err != nil {
			t.Fatal(err)
		}
		boot := briefcase.New()
		boot.SetString(briefcase.FolderSysTarget, regs[i])
		boot.Ensure("MEMBERS").AppendString(regs...)
		if err := n.FW.Send(admin.GlobalURI(), boot); err != nil {
			t.Fatal(err)
		}
	}

	for i := 0; i < 3; i++ {
		select {
		case r := <-results:
			want := "a,b,c,d,e"
			if strings.Join(r.msgs, ",") != want {
				t.Errorf("member %s got %v, want %s", r.id, r.msgs, want)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("group members stalled")
		}
	}
}
