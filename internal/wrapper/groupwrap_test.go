package wrapper_test

import (
	"strings"
	"testing"
	"time"

	"tax/internal/agent"
	"tax/internal/briefcase"
	"tax/internal/group"
	"tax/internal/wrapper"
)

// TestGroupWrapperTotalOrder runs a three-member total-order group with
// two concurrent senders; every member — including the sequencer — must
// deliver the identical sequence.
func TestGroupWrapperTotalOrder(t *testing.T) {
	s := newSystem(t, "h1", "h2", "h3")
	const groupName = "board"
	const perSender = 4
	total := 2 * perSender

	type result struct {
		self string
		msgs []string
	}
	results := make(chan result, 3)

	mkMember := func(sends bool, prefix string) func(ctx *agent.Context) error {
		return func(ctx *agent.Context) error {
			boot, err := ctx.Await(10 * time.Second)
			if err != nil {
				return err
			}
			ms, err := boot.Folder("MEMBERS")
			if err != nil {
				return err
			}
			g := &wrapper.Group{
				GroupName: groupName,
				Members:   ms.Strings(),
				Self:      ctx.URI().String(),
				Ordering:  group.Total,
			}
			if err := wrapper.NewStack(g).Install(ctx); err != nil {
				return err
			}
			if sends {
				for i := 0; i < perSender; i++ {
					bc := briefcase.New()
					bc.SetString("BODY", prefix+string(rune('0'+i)))
					if err := ctx.Activate(groupName, bc); err != nil {
						return err
					}
				}
			}
			var got []string
			for len(got) < total {
				bc, err := ctx.Await(10 * time.Second)
				if err != nil {
					break
				}
				if body, ok := bc.GetString("BODY"); ok {
					got = append(got, body)
				}
			}
			results <- result{self: ctx.URI().String(), msgs: got}
			return nil
		}
	}

	// Member 1 (h1) is the sequencer and also a sender; member 3 also
	// sends; member 2 only listens.
	specs := []struct {
		host   string
		sends  bool
		prefix string
	}{
		{"h1", true, "a"},
		{"h2", false, ""},
		{"h3", true, "b"},
	}
	var regs []string
	for i, sp := range specs {
		n, _ := s.Node(sp.host)
		name := "gm" + string(rune('1'+i))
		n.Programs.Register(name, mkMember(sp.sends, sp.prefix))
		reg, err := n.VM.Launch("system", name, name, nil)
		if err != nil {
			t.Fatal(err)
		}
		regs = append(regs, reg.GlobalURI().String())
	}
	for i, sp := range specs {
		n, _ := s.Node(sp.host)
		breg, err := n.FW.Register("test", "system", "b"+string(rune('0'+i)))
		if err != nil {
			t.Fatal(err)
		}
		boot := briefcase.New()
		boot.SetString(briefcase.FolderSysTarget, regs[i])
		boot.Ensure("MEMBERS").AppendString(regs...)
		if err := n.FW.Send(breg.GlobalURI(), boot); err != nil {
			t.Fatal(err)
		}
	}

	var sequences []result
	for i := 0; i < 3; i++ {
		select {
		case r := <-results:
			sequences = append(sequences, r)
		case <-time.After(15 * time.Second):
			t.Fatalf("members stalled; have %d sequences", len(sequences))
		}
	}
	for _, r := range sequences {
		if len(r.msgs) != total {
			t.Fatalf("member %s delivered %d of %d: %v", r.self, len(r.msgs), total, r.msgs)
		}
	}
	first := strings.Join(sequences[0].msgs, ",")
	for _, r := range sequences[1:] {
		if got := strings.Join(r.msgs, ","); got != first {
			t.Errorf("total order disagreement:\n%s: %s\nvs: %s",
				r.self, got, first)
		}
	}
}
