package wrapper

import (
	"fmt"
	"strings"

	"tax/internal/agent"
	"tax/internal/briefcase"
	"tax/internal/group"
	"tax/internal/naming"
)

// The paper closes with "we are currently working on ... a framework for
// automatic generation of layers of wrappers". This file is that
// framework: wrapper stacks are generated from a declarative spec string
// instead of hand-assembled code, so a launch site (or the agent's own
// briefcase) can declare
//
//	monitor(uri=tacoma://home//ag_monitor, subject=webbot) | logging(tag=dbg)
//
// and every host rebuilds the stack from its spec registry on arrival.
// Grammar (outermost layer first):
//
//	spec   = layer { "|" layer }
//	layer  = kind [ "(" param { "," param } ")" ]
//	param  = key "=" value          (value may not contain "," or ")";
//	                                 list-valued params use ";" inside)

// FolderWrapSpec carries a wrapper spec in a briefcase; PreLaunchSpec
// generates and installs the stack on every activation.
const FolderWrapSpec = "_WRAPSPEC"

// ParamFactory builds one wrapper layer from its parameters.
type ParamFactory func(params map[string]string) (Wrapper, error)

// SpecRegistry maps layer kinds to parameterized factories. A zero
// registry has no kinds; NewSpecRegistry pre-registers the built-in
// layers.
type SpecRegistry struct {
	m map[string]ParamFactory
}

// NewSpecRegistry returns a registry with the built-in layer kinds:
//
//	logging(tag=…)
//	monitor(uri=…, subject=…)
//	loctrans(service=…, self=…, resolve=a;b;c)
//	checkpoint(store=…, path=…)
//	group(name=…, self=…, members=a;b;c, order=fifo|causal|total)
func NewSpecRegistry() *SpecRegistry {
	r := &SpecRegistry{}
	r.Register("logging", func(p map[string]string) (Wrapper, error) {
		return &Logging{Tag: p["tag"]}, nil
	})
	r.Register("monitor", func(p map[string]string) (Wrapper, error) {
		if p["uri"] == "" {
			return nil, fmt.Errorf("wrapper: monitor needs uri=")
		}
		return &Monitor{MonitorURI: p["uri"], Subject: p["subject"]}, nil
	})
	r.Register("loctrans", func(p map[string]string) (Wrapper, error) {
		if p["service"] == "" {
			return nil, fmt.Errorf("wrapper: loctrans needs service=")
		}
		resolve := map[string]bool{}
		for _, name := range splitList(p["resolve"]) {
			resolve[name] = true
		}
		return &LocationTransparent{
			Client:   naming.Client{Service: p["service"]},
			SelfName: p["self"],
			Resolve:  resolve,
		}, nil
	})
	r.Register("checkpoint", func(p map[string]string) (Wrapper, error) {
		if p["store"] == "" || p["path"] == "" {
			return nil, fmt.Errorf("wrapper: checkpoint needs store= and path=")
		}
		return &Checkpoint{StoreURI: p["store"], Path: p["path"]}, nil
	})
	r.Register("group", func(p map[string]string) (Wrapper, error) {
		order, err := group.ParseOrdering(valueOr(p["order"], "fifo"))
		if err != nil {
			return nil, err
		}
		members := splitList(p["members"])
		if p["name"] == "" || p["self"] == "" || len(members) == 0 {
			return nil, fmt.Errorf("wrapper: group needs name=, self= and members=")
		}
		return &Group{
			GroupName: p["name"],
			Members:   members,
			Self:      p["self"],
			Ordering:  order,
		}, nil
	})
	return r
}

// Register adds (or replaces) a layer kind.
func (r *SpecRegistry) Register(kind string, f ParamFactory) {
	if r.m == nil {
		r.m = make(map[string]ParamFactory)
	}
	r.m[kind] = f
}

// Generate parses a spec and builds the stack, outermost layer first.
func (r *SpecRegistry) Generate(spec string) (*Stack, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return NewStack(), nil
	}
	var layers []Wrapper
	for _, item := range strings.Split(spec, "|") {
		w, err := r.generateLayer(strings.TrimSpace(item))
		if err != nil {
			return nil, err
		}
		layers = append(layers, w)
	}
	return NewStack(layers...), nil
}

func (r *SpecRegistry) generateLayer(item string) (Wrapper, error) {
	if item == "" {
		return nil, fmt.Errorf("wrapper: empty layer in spec")
	}
	kind := item
	params := map[string]string{}
	if open := strings.IndexByte(item, '('); open >= 0 {
		if !strings.HasSuffix(item, ")") {
			return nil, fmt.Errorf("wrapper: unterminated parameters in %q", item)
		}
		kind = strings.TrimSpace(item[:open])
		for _, kv := range strings.Split(item[open+1:len(item)-1], ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("wrapper: bad parameter %q in %q", kv, item)
			}
			params[strings.TrimSpace(k)] = strings.TrimSpace(v)
		}
	}
	factory, ok := r.m[kind]
	if !ok {
		return nil, fmt.Errorf("%w: kind %q", ErrUnknownWrapper, kind)
	}
	w, err := factory(params)
	if err != nil {
		return nil, fmt.Errorf("wrapper: layer %q: %w", kind, err)
	}
	return w, nil
}

// PreLaunchSpec returns a vm PreLaunch hook that generates the stack
// named by the briefcase's _WRAPSPEC folder (if any) and installs it,
// composing with hand-registered _WRAP stacks via reg.
func (r *SpecRegistry) PreLaunchSpec(reg *Registry) func(ctx *agent.Context) error {
	return func(ctx *agent.Context) error {
		bc := ctx.Briefcase()
		var stack *Stack
		if reg != nil {
			s, err := reg.Build(bc)
			if err != nil {
				return err
			}
			stack = s
		}
		if spec, ok := bc.GetString(FolderWrapSpec); ok {
			gen, err := r.Generate(spec)
			if err != nil {
				return err
			}
			if stack == nil {
				stack = gen
			} else {
				// Generated layers wrap outside the named stack.
				for i := len(gen.wrappers) - 1; i >= 0; i-- {
					stack.Push(gen.wrappers[i])
				}
			}
		}
		if stack == nil || stack.Depth() == 0 {
			return nil
		}
		return installSpec(ctx, stack)
	}
}

// installSpec installs without rewriting _WRAP (the spec folder already
// travels; writing both would duplicate layers on the next hop).
func installSpec(ctx *agent.Context, s *Stack) error {
	hadWrap := ctx.Briefcase().Has(briefcase.FolderSysWrap)
	if err := s.Install(ctx); err != nil {
		return err
	}
	if !hadWrap {
		ctx.Briefcase().Drop(briefcase.FolderSysWrap)
	}
	return nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, v := range strings.Split(s, ";") {
		v = strings.TrimSpace(v)
		if v != "" {
			out = append(out, v)
		}
	}
	return out
}

func valueOr(v, def string) string {
	if v == "" {
		return def
	}
	return v
}
