package wrapper

import (
	"fmt"
	"time"

	"tax/internal/agent"
	"tax/internal/briefcase"
	"tax/internal/firewall"
	"tax/internal/naming"
)

// Logging observes traffic without modifying it; the simplest wrapper and
// the pass-through used by the wrapper-stack-depth ablation bench.
type Logging struct {
	// Tag labels log lines; also the wrapper name suffix.
	Tag string
	// Sink receives one line per intercepted briefcase; nil discards.
	Sink func(line string)
}

var _ Wrapper = (*Logging)(nil)

// Name implements Wrapper.
func (l *Logging) Name() string { return "logging:" + l.Tag }

// Init implements Wrapper.
func (l *Logging) Init(ctx *agent.Context) error {
	l.log("init on %s", ctx.Host())
	return nil
}

// OnSend implements Wrapper.
func (l *Logging) OnSend(_ *agent.Context, bc *briefcase.Briefcase) (*briefcase.Briefcase, error) {
	target, _ := bc.GetString(briefcase.FolderSysTarget)
	l.log("send -> %s %s", target, bc)
	return bc, nil
}

// OnReceive implements Wrapper.
func (l *Logging) OnReceive(_ *agent.Context, bc *briefcase.Briefcase) (*briefcase.Briefcase, error) {
	from, _ := bc.GetString(briefcase.FolderSysSender)
	l.log("recv <- %s %s", from, bc)
	return bc, nil
}

func (l *Logging) log(format string, args ...any) {
	if l.Sink != nil {
		l.Sink(l.Name() + ": " + fmt.Sprintf(format, args...))
	}
}

// StatusOp is the _SVCOP-style folder value a monitoring query carries;
// the Monitor wrapper answers it on the agent's behalf.
const (
	// FolderWrapOp addresses an operation at the wrapper stack rather
	// than the wrapped agent.
	FolderWrapOp = "_WRAPOP"
	// WrapOpStatus asks the monitoring wrapper for the computation's
	// status; the wrapped agent never sees the query.
	WrapOpStatus = "status"
)

// Monitor is the rwWebbot pattern (§5): it "reports back to a monitoring
// tool about the location of the agent it wraps and can be queried about
// the status of the computation". Location reports are sent to the
// monitoring agent on every Init (i.e. on every hop); status queries are
// intercepted and answered from the wrapped agent's STATUS folder.
type Monitor struct {
	// MonitorURI is the ag_monitor address, e.g. "tacoma://home//ag_monitor".
	MonitorURI string
	// Subject labels reports.
	Subject string
}

var _ Wrapper = (*Monitor)(nil)

// Name implements Wrapper.
func (m *Monitor) Name() string { return "monitor:" + m.Subject }

// Init implements Wrapper: report the wrapped agent's new location.
func (m *Monitor) Init(ctx *agent.Context) error {
	return m.report(ctx, "arrived")
}

// OnSend implements Wrapper: a departing move is reported before it
// happens, so the monitoring tool tracks the itinerary.
func (m *Monitor) OnSend(ctx *agent.Context, bc *briefcase.Briefcase) (*briefcase.Briefcase, error) {
	if firewall.Kind(bc) == firewall.KindTransfer {
		target, _ := bc.GetString(briefcase.FolderSysTarget)
		if err := m.report(ctx, "moving to "+target); err != nil {
			// Monitoring must not block the move; the report is best
			// effort, matching the paper's advisory monitoring role.
			return bc, nil
		}
	}
	return bc, nil
}

// OnReceive implements Wrapper: status queries are answered here; all
// other traffic passes through to the agent.
func (m *Monitor) OnReceive(ctx *agent.Context, bc *briefcase.Briefcase) (*briefcase.Briefcase, error) {
	if op, ok := bc.GetString(FolderWrapOp); !ok || op != WrapOpStatus {
		return bc, nil
	}
	resp := briefcase.New()
	resp.SetString("HOST", ctx.Host())
	status := resp.Ensure(briefcase.FolderStatus)
	if f, err := ctx.Briefcase().Folder(briefcase.FolderStatus); err == nil {
		for _, s := range f.Strings() {
			status.AppendString(s)
		}
	} else {
		status.AppendString("no status recorded")
	}
	if sender, ok := bc.GetString(briefcase.FolderSysSender); ok {
		if id, ok := bc.GetString(firewall.FolderMsgID); ok {
			resp.SetString(firewall.FolderReplyTo, id)
		}
		if err := ctx.ActivateDirect(sender, resp); err != nil {
			return nil, err
		}
	}
	return nil, nil // consumed: the agent never sees the query
}

// report sends a location/status line to the monitoring agent.
func (m *Monitor) report(ctx *agent.Context, status string) error {
	rep := briefcase.New()
	rep.SetString(briefcase.FolderStatus, m.Subject+": "+status)
	rep.SetString("HOST", ctx.Host())
	return ctx.ActivateDirect(m.MonitorURI, rep)
}

// LocationTransparent rewrites sends addressed to stable names into sends
// to the target's current location, resolved through the naming registry;
// it also re-registers the wrapped agent under its own stable name on
// every hop. Stacked outside a broadcast wrapper it gives the paper's
// "location transparent wrapper around the broadcast wrapper".
type LocationTransparent struct {
	// Client reaches the naming registry — the single-node naming.Client
	// or the sharded plane's directory.Client, both satisfy Resolver.
	Client naming.Resolver
	// SelfName, when non-empty, is the stable name to (re)bind to the
	// agent's current location on every Init.
	SelfName string
	// Resolve lists the stable names this wrapper rewrites on send.
	Resolve map[string]bool
	// Timeout bounds each lookup; zero means the client default.
	Timeout time.Duration
}

var _ Wrapper = (*LocationTransparent)(nil)

// Name implements Wrapper.
func (lt *LocationTransparent) Name() string { return "loctrans:" + lt.SelfName }

// Init implements Wrapper: publish the new location.
func (lt *LocationTransparent) Init(ctx *agent.Context) error {
	if lt.SelfName == "" {
		return nil
	}
	return lt.Client.Update(ctx, lt.SelfName)
}

// OnSend implements Wrapper: rewrite stable-name targets.
func (lt *LocationTransparent) OnSend(ctx *agent.Context, bc *briefcase.Briefcase) (*briefcase.Briefcase, error) {
	target, ok := bc.GetString(briefcase.FolderSysTarget)
	if !ok || !lt.Resolve[target] {
		return bc, nil
	}
	loc, err := lt.Client.Lookup(ctx, target)
	if err != nil {
		return nil, fmt.Errorf("location lookup %q: %w", target, err)
	}
	bc.SetString(briefcase.FolderSysTarget, loc)
	return bc, nil
}

// OnReceive implements Wrapper (pass-through).
func (lt *LocationTransparent) OnReceive(_ *agent.Context, bc *briefcase.Briefcase) (*briefcase.Briefcase, error) {
	return bc, nil
}
