package wrapper

import (
	"fmt"
	"time"

	"tax/internal/agent"
	"tax/internal/briefcase"
	"tax/internal/firewall"
)

// Checkpoint is the §4 fault-tolerance story as a wrapper: "They may
// need stronger fault-tolerance ... through active or passive
// replication" — carried by the agent itself rather than baked into
// every landing pad. The wrapper implements passive replication: a
// consistent snapshot of the agent's briefcase is stored at a home file
// service (ag_fs / ag_cabinet) on arrival at each host and again
// immediately before each move, so a crashed or lost agent can be
// relaunched from its last snapshot (see core.Node.Recover).
type Checkpoint struct {
	// StoreURI is the home file service, e.g. "tacoma://home//ag_fs".
	StoreURI string
	// Path is the checkpoint's name in the store, e.g. "/ckpt/webbot".
	Path string
	// Timeout bounds each store RPC; zero means 5 seconds.
	Timeout time.Duration
	// Retry, when enabled, is stamped onto every store RPC so snapshots
	// survive a lossy path to the home store.
	Retry firewall.RetryPolicy
}

var (
	_ Wrapper   = (*Checkpoint)(nil)
	_ Finalizer = (*Checkpoint)(nil)
)

// Name implements Wrapper.
func (c *Checkpoint) Name() string { return "checkpoint:" + c.Path }

// Init implements Wrapper: snapshot on every arrival.
func (c *Checkpoint) Init(ctx *agent.Context) error {
	return c.snapshot(ctx, ctx.Briefcase())
}

// OnSend implements Wrapper: a departing move snapshots the exact state
// that will run at the destination, so recovery resumes from the move
// rather than repeating completed work.
func (c *Checkpoint) OnSend(ctx *agent.Context, bc *briefcase.Briefcase) (*briefcase.Briefcase, error) {
	if firewall.Kind(bc) == firewall.KindTransfer {
		if err := c.snapshot(ctx, bc); err != nil {
			// Checkpointing must not ground the agent: the move
			// proceeds on the previous snapshot.
			return bc, nil
		}
	}
	return bc, nil
}

// OnReceive implements Wrapper (pass-through).
func (c *Checkpoint) OnReceive(_ *agent.Context, bc *briefcase.Briefcase) (*briefcase.Briefcase, error) {
	return bc, nil
}

// OnDone implements Finalizer: when the agent completes cleanly on this
// host (its itinerary is over, not a move and not a fault), the snapshot
// is stale — there is nothing left to recover — so it is pruned from the
// home store. Without this the store accumulated one orphaned snapshot
// per completed itinerary forever. Failed or moved agents keep theirs:
// that snapshot is exactly what recovery needs.
func (c *Checkpoint) OnDone(ctx *agent.Context, err error) {
	if err != nil {
		return
	}
	req := briefcase.New()
	req.SetString("_SVCOP", "del")
	req.SetString("_PATH", c.Path)
	if c.Retry.Enabled() {
		firewall.SetRetryPolicy(req, c.Retry)
	}
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	// Best effort: a failed prune costs store space, not correctness.
	_, _ = ctx.MeetDirect(c.StoreURI, req, timeout)
}

// snapshot stores the briefcase's encoding at the home file service.
func (c *Checkpoint) snapshot(ctx *agent.Context, bc *briefcase.Briefcase) error {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	snap := bc.Clone()
	// Routing folders are transient; the snapshot is the agent's state.
	snap.Drop(briefcase.FolderSysTarget)
	snap.Drop(firewall.FolderKind)
	snap.Drop(firewall.FolderMsgID)

	req := briefcase.New()
	req.SetString("_SVCOP", "put")
	req.SetString("_PATH", c.Path)
	req.Ensure("_DATA").Append(snap.Encode())
	if c.Retry.Enabled() {
		firewall.SetRetryPolicy(req, c.Retry)
	}
	resp, err := ctx.MeetDirect(c.StoreURI, req, timeout)
	if err != nil {
		return fmt.Errorf("checkpoint %s: %w", c.Path, err)
	}
	if rerr, ok := firewall.RemoteErrorFrom(resp); ok {
		return fmt.Errorf("checkpoint %s: %w", c.Path, rerr)
	}
	return nil
}
