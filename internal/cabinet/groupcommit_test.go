package cabinet

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tax/internal/telemetry"
	"tax/internal/vclock"
)

// gcTestValue derives a deterministic value from its key so durability
// checks can verify full-record integrity, not just presence.
func gcTestValue(key string) []byte {
	return bytes.Repeat([]byte(key+"|"), 4)
}

// TestGroupCommitDurableBeforeReturn is the group-commit contract under
// -race: N concurrent committers, and the instant any Commit returns nil
// its record is recoverable from the disk's durable bytes alone. No
// caller may observe success before the fsync covering its record.
func TestGroupCommitDurableBeforeReturn(t *testing.T) {
	clock := vclock.NewVirtual()
	s := NewStore(Options{Clock: clock, SnapshotEvery: -1, GroupCommit: true})
	disk := s.Disk()

	const goroutines, perG = 16, 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := fmt.Sprintf("gc/%d/%d", g, i)
				if err := s.Commit([]Op{{Key: key, Value: gcTestValue(key)}}); err != nil {
					errs <- fmt.Errorf("commit %s: %w", key, err)
					return
				}
				// The durable image must already hold the record: this is
				// what "returns only once durable" means, checked from a
				// racing goroutine with no store locks held.
				walB, _ := disk.DurableBytes(walFile)
				snapB, _ := disk.DurableBytes(snapFile)
				table, _, err := RecoverBytes(snapB, walB)
				if err != nil {
					errs <- fmt.Errorf("recover after %s: %w", key, err)
					return
				}
				if got, ok := table[key]; !ok || !bytes.Equal(got, gcTestValue(key)) {
					errs <- fmt.Errorf("commit %s returned before durable (present=%v)", key, ok)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.Len(); got != goroutines*perG {
		t.Fatalf("table has %d entries, want %d", got, goroutines*perG)
	}
	if got := s.Seq(); got != goroutines*perG {
		t.Fatalf("seq = %d, want %d", got, goroutines*perG)
	}
}

// TestGroupCommitCrashPointCoalesces proves the point of the exercise:
// concurrent committers share fsyncs, so cabinet.fsyncs lands strictly
// below the transaction count. A real sleep in the pre-sync hook during
// the first batch holds the leader in place while every other goroutine
// enqueues, so coalescing is guaranteed rather than probabilistic.
func TestGroupCommitCrashPointCoalesces(t *testing.T) {
	reg := telemetry.NewRegistry()
	clock := vclock.NewVirtual()
	s := NewStore(Options{
		Clock:         clock,
		SnapshotEvery: -1,
		GroupCommit:   true,
		Telemetry:     reg,
		Host:          "h",
	})
	var first int32
	s.SetPreSyncHook(func(uint64) {
		if atomic.CompareAndSwapInt32(&first, 0, 1) {
			time.Sleep(2 * time.Millisecond)
		}
	})

	const txns = 32
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < txns; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			key := fmt.Sprintf("co/%d", g)
			if err := s.Commit([]Op{{Key: key, Value: gcTestValue(key)}}); err != nil {
				t.Errorf("commit %s: %v", key, err)
			}
		}(g)
	}
	close(start)
	wg.Wait()

	fsyncs := reg.Counter("cabinet.fsyncs", "host", "h").Value()
	appends := reg.Counter("cabinet.wal_appends", "host", "h").Value()
	if appends != txns {
		t.Fatalf("wal_appends = %d, want %d", appends, txns)
	}
	if fsyncs >= txns {
		t.Fatalf("fsyncs = %d, want < %d: no coalescing happened", fsyncs, txns)
	}
	if fsyncs < 1 {
		t.Fatalf("fsyncs = %d, want >= 1", fsyncs)
	}
	t.Logf("%d txns coalesced into %d fsyncs", txns, fsyncs)
}

// TestGroupCommitSequentialDegenerates: a single-writer workload on a
// group-commit store pays exactly one fsync per transaction — group
// commit never slows down or re-orders an uncontended committer.
func TestGroupCommitSequentialDegenerates(t *testing.T) {
	clock := vclock.NewVirtual()
	s := NewStore(Options{Clock: clock, SnapshotEvery: -1, GroupCommit: true})
	disk := s.Disk()
	const txns = 10
	for i := 0; i < txns; i++ {
		key := fmt.Sprintf("seq/%d", i)
		if err := s.Commit([]Op{{Key: key, Value: gcTestValue(key)}}); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	if got := disk.Syncs(); got != txns {
		t.Fatalf("sequential group commit did %d fsyncs for %d txns", got, txns)
	}
	if got := s.Seq(); got != txns {
		t.Fatalf("seq = %d, want %d", got, txns)
	}
}

// TestGroupCommitMaxTxnsBound: the coalesce window is bounded — a burst
// larger than GroupMaxTxns splits into multiple fsyncs, proven exactly
// with CommitMany's deterministic batch formation.
func TestGroupCommitMaxTxnsBound(t *testing.T) {
	clock := vclock.NewVirtual()
	s := NewStore(Options{Clock: clock, SnapshotEvery: -1, GroupCommit: true, GroupMaxTxns: 64})
	disk := s.Disk()
	txns := make([][]Op, 130)
	for i := range txns {
		key := fmt.Sprintf("many/%03d", i)
		txns[i] = []Op{{Key: key, Value: gcTestValue(key)}}
	}
	if err := s.CommitMany(txns); err != nil {
		t.Fatalf("CommitMany: %v", err)
	}
	// ceil(130/64) = 3 shared fsyncs (snapshots are off, so every sync is
	// a WAL sync).
	if got := disk.Syncs(); got != 3 {
		t.Fatalf("CommitMany of 130 txns did %d fsyncs, want 3", got)
	}
	if got := s.Seq(); got != 130 {
		t.Fatalf("seq = %d, want 130", got)
	}
	for i := range txns {
		key := fmt.Sprintf("many/%03d", i)
		if v, ok := s.Get(key); !ok || !bytes.Equal(v, gcTestValue(key)) {
			t.Fatalf("key %s missing or wrong after CommitMany", key)
		}
	}
	// Every transaction is its own WAL record: recovery of the durable
	// bytes rebuilds all 130 keys.
	walB, _ := disk.DurableBytes(walFile)
	table, seq, _ := RecoverBytes(nil, walB)
	if len(table) != 130 || seq != 130 {
		t.Fatalf("recovered %d keys seq %d, want 130/130", len(table), seq)
	}
}

// TestGroupCommitCrashFailsWaiters: once the disk is down, concurrent
// group commits all fail with ErrCrashed — no waiter hangs, none reports
// success.
func TestGroupCommitCrashFailsWaiters(t *testing.T) {
	clock := vclock.NewVirtual()
	s := NewStore(Options{Clock: clock, SnapshotEvery: -1, GroupCommit: true})
	s.Disk().Crash()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			err := s.Commit([]Op{{Key: fmt.Sprintf("x/%d", g), Value: []byte("v")}})
			if !errors.Is(err, ErrCrashed) {
				t.Errorf("commit on crashed disk: err = %v, want ErrCrashed", err)
			}
		}(g)
	}
	wg.Wait()
	if got := s.Seq(); got != 0 {
		t.Fatalf("seq advanced to %d on a crashed disk", got)
	}
}

// TestGroupCommitRecoveryMatchesTable: after a concurrent group-commit
// workload with snapshots enabled, pure recovery of the durable bytes
// reproduces the live table exactly.
func TestGroupCommitRecoveryMatchesTable(t *testing.T) {
	clock := vclock.NewVirtual()
	s := NewStore(Options{Clock: clock, SnapshotEvery: 16, GroupCommit: true})
	disk := s.Disk()
	const goroutines, perG = 8, 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := fmt.Sprintf("rm/%d/%d", g, i)
				if err := s.Commit([]Op{{Key: key, Value: gcTestValue(key)}}); err != nil {
					t.Errorf("commit %s: %v", key, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	snapB, _ := disk.DurableBytes(snapFile)
	walB, _ := disk.DurableBytes(walFile)
	table, seq, err := RecoverBytes(snapB, walB)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if seq != goroutines*perG {
		t.Fatalf("recovered seq %d, want %d", seq, goroutines*perG)
	}
	if len(table) != goroutines*perG {
		t.Fatalf("recovered %d keys, want %d", len(table), goroutines*perG)
	}
	for key, v := range table {
		if !bytes.Equal(v, gcTestValue(key)) {
			t.Fatalf("recovered value for %s does not match what was committed", key)
		}
	}
}
