// Package cabinet implements TACOMA-style file cabinets: host-local
// durable storage that survives a host crash, so a rear-guard can
// restore and relaunch an agent from state the crash did not take.
//
// Before this package, the simulation's Crash was transport-only: every
// in-memory table on the "crashed" host silently survived, so recovery
// was being proven against an unrealistically forgiving failure model.
// The cabinet makes survival earned. It is built from three layers:
//
//   - Disk: a simulated host-local disk with an explicit page-cache /
//     durable split. Writes land in the cache; only Sync (fsync) makes
//     them durable, and the fsync latency is charged against the host's
//     virtual clock so durability has a measurable cost. Crash discards
//     the cache — including, possibly, a torn suffix of a record that
//     was mid-write.
//   - WAL records (wal.go): length+CRC framed entries. Replay stops at
//     the first torn or corrupt frame, treating it as the end of the
//     log, which is exactly what a crashed append looks like.
//   - Store (store.go): a key-value store journaling every transaction
//     to the WAL and compacting into periodic snapshots. Recovery is a
//     pure function of the disk's durable bytes: latest valid snapshot
//     plus the WAL suffix with newer sequence numbers.
package cabinet

import (
	"errors"
	"sort"
	"sync"
	"time"

	"tax/internal/vclock"
)

var (
	// ErrCrashed is returned by disk and store operations between a
	// Crash and the matching Reopen: a dead host cannot write.
	ErrCrashed = errors.New("cabinet: host crashed")
	// ErrNoFile is returned when reading a file that does not exist.
	ErrNoFile = errors.New("cabinet: no such file")
)

// DiskConfig parameterizes a simulated disk.
type DiskConfig struct {
	// Clock is the host clock charged for fsyncs and recovery reads.
	// Required.
	Clock vclock.Clock
	// SyncLatency is the cost of one fsync (default 500µs). This is the
	// knob the durability benchmark sweeps: it prices every committed
	// cabinet transaction.
	SyncLatency time.Duration
	// ReadBandwidth is the sequential read throughput in bytes/second
	// used to price recovery scans (default 500 MB/s).
	ReadBandwidth float64
}

// DefaultSyncLatency is the fsync cost when DiskConfig leaves it zero.
const DefaultSyncLatency = 500 * time.Microsecond

// DefaultReadBandwidth is the recovery-scan read throughput when
// DiskConfig leaves it zero.
const DefaultReadBandwidth = 500e6

// dfile is one file: the durable prefix that survives a crash and the
// live content including the unsynced page-cache tail.
type dfile struct {
	durable []byte
	live    []byte
}

// Disk is a simulated host-local disk: named files with an explicit
// durable / page-cache split. Data appends become durable only on Sync;
// metadata operations (Rename, Remove, Truncate) are journaled
// synchronously, the ordered-journal assumption of common file systems.
// Safe for concurrent use.
type Disk struct {
	mu      sync.Mutex
	cfg     DiskConfig
	files   map[string]*dfile
	crashed bool
	syncs   int64
}

// Clock returns the clock the disk charges its latencies against.
func (d *Disk) Clock() vclock.Clock { return d.cfg.Clock }

// NewDisk creates an empty disk.
func NewDisk(cfg DiskConfig) *Disk {
	if cfg.Clock == nil {
		cfg.Clock = vclock.NewVirtual()
	}
	if cfg.SyncLatency == 0 {
		cfg.SyncLatency = DefaultSyncLatency
	}
	if cfg.ReadBandwidth == 0 {
		cfg.ReadBandwidth = DefaultReadBandwidth
	}
	return &Disk{cfg: cfg, files: make(map[string]*dfile)}
}

// Append extends the named file's page cache (creating the file on first
// write). The bytes are volatile until the next Sync.
func (d *Disk) Append(name string, p []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	f := d.files[name]
	if f == nil {
		f = &dfile{}
		d.files[name] = f
	}
	f.live = append(f.live, p...)
	return nil
}

// Sync makes the named file's cached bytes durable, charging the fsync
// latency to the host clock. Syncing a missing file is a no-op (the
// matching open would have created it empty).
func (d *Disk) Sync(name string) error {
	d.mu.Lock()
	if d.crashed {
		d.mu.Unlock()
		return ErrCrashed
	}
	if f := d.files[name]; f != nil {
		f.durable = append(f.durable[:0], f.live...)
	}
	d.syncs++
	cost := d.cfg.SyncLatency
	clock := d.cfg.Clock
	d.mu.Unlock()
	clock.Advance(cost)
	return nil
}

// Syncs returns how many fsyncs the disk has served.
func (d *Disk) Syncs() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncs
}

// ReadFile returns the live content of a file (durable prefix plus any
// unsynced tail). The copy is the caller's.
func (d *Disk) ReadFile(name string) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return nil, ErrNoFile
	}
	return append([]byte(nil), f.live...), nil
}

// DurableBytes returns what would survive a crash right now: the synced
// prefix of the named file (nil and false when the file has never been
// synced or does not exist).
func (d *Disk) DurableBytes(name string) ([]byte, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), f.durable...), true
}

// Rename atomically renames a file, replacing any target. It is a
// journaled metadata operation: durable immediately, and the renamed
// file keeps only its durable content (rename after sync is the
// snapshot-publication idiom).
func (d *Disk) Rename(oldName, newName string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	f, ok := d.files[oldName]
	if !ok {
		return ErrNoFile
	}
	delete(d.files, oldName)
	d.files[newName] = f
	return nil
}

// Truncate empties a file (journaled metadata; durable immediately).
func (d *Disk) Truncate(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	f := d.files[name]
	if f == nil {
		f = &dfile{}
		d.files[name] = f
	}
	f.durable = nil
	f.live = nil
	return nil
}

// Remove deletes a file (journaled metadata; durable immediately).
func (d *Disk) Remove(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	if _, ok := d.files[name]; !ok {
		return ErrNoFile
	}
	delete(d.files, name)
	return nil
}

// List returns the file names, sorted.
func (d *Disk) List() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.files))
	for n := range d.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Crash simulates losing power: every file's unsynced page-cache tail is
// discarded — except that, per torn, up to torn.Keep bytes of the named
// file's unsynced tail may persist (a torn write: the drive got part of
// the in-flight sectors down before the power died). Further operations
// fail with ErrCrashed until Reopen.
func (d *Disk) Crash(torn ...TornWrite) {
	d.mu.Lock()
	defer d.mu.Unlock()
	keep := make(map[string]int, len(torn))
	for _, t := range torn {
		keep[t.File] = t.Keep
	}
	for name, f := range d.files {
		tail := len(f.live) - len(f.durable)
		if tail < 0 {
			tail = 0
		}
		k := keep[name]
		if k > tail {
			k = tail
		}
		f.live = append(f.durable[:0:0], f.live[:len(f.durable)+k]...)
		f.durable = append([]byte(nil), f.live...)
	}
	d.crashed = true
}

// TornWrite names a file whose unsynced tail partially survives a Crash.
type TornWrite struct {
	// File is the file with a write in flight at the moment of the crash.
	File string
	// Keep is how many unsynced bytes made it to the platter.
	Keep int
}

// Reopen brings a crashed disk back: durable content is what Crash left.
// Charges the recovery read scan (total durable bytes over the read
// bandwidth) to the host clock and returns the charged duration.
func (d *Disk) Reopen() time.Duration {
	d.mu.Lock()
	d.crashed = false
	var total int
	for _, f := range d.files {
		total += len(f.durable)
	}
	cost := time.Duration(float64(total) / d.cfg.ReadBandwidth * float64(time.Second))
	clock := d.cfg.Clock
	d.mu.Unlock()
	clock.Advance(cost)
	return cost
}

// Crashed reports whether the disk is between a Crash and a Reopen.
func (d *Disk) Crashed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed
}
