package cabinet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// WAL record framing. Each record on disk is
//
//	magic  byte   0xD7 — catches "replaying into the middle of a record"
//	length uint32 LE — payload length
//	crc    uint32 LE — CRC-32 (IEEE) of the payload
//	payload
//
// Appends are not individually synced; the store decides when to fsync.
// A crash can therefore leave the log ending in a torn frame (header or
// payload cut short) or, with torn sector writes, a frame whose bytes
// are partially garbage. Replay treats the first frame that fails any
// check as the end of the log: everything before it is the durable
// history, everything from it on is the write that never committed.

const (
	walMagic      = 0xD7
	walHeaderSize = 1 + 4 + 4
	// walMaxRecord bounds a single record payload; a length field beyond
	// it is treated as corruption rather than an allocation request.
	walMaxRecord = 16 << 20
)

// ErrWALCorrupt reports a frame that is structurally complete but fails
// validation (bad magic, oversized length, CRC mismatch).
var ErrWALCorrupt = errors.New("cabinet: corrupt WAL frame")

// ErrWALTorn reports a frame cut short by the end of the log — the
// signature of a crash mid-append.
var ErrWALTorn = errors.New("cabinet: torn WAL frame")

// appendFrame appends one framed record to buf and returns the result.
func appendFrame(buf, payload []byte) []byte {
	var hdr [walHeaderSize]byte
	hdr[0] = walMagic
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// decodeFrame decodes the first frame in b, returning the payload and
// the number of bytes consumed. ErrWALTorn means b ends inside the
// frame; ErrWALCorrupt means the frame is complete but invalid.
func decodeFrame(b []byte) (payload []byte, n int, err error) {
	if len(b) < walHeaderSize {
		return nil, 0, ErrWALTorn
	}
	if b[0] != walMagic {
		return nil, 0, fmt.Errorf("%w: bad magic 0x%02x", ErrWALCorrupt, b[0])
	}
	length := binary.LittleEndian.Uint32(b[1:5])
	if length > walMaxRecord {
		return nil, 0, fmt.Errorf("%w: length %d exceeds limit", ErrWALCorrupt, length)
	}
	end := walHeaderSize + int(length)
	if len(b) < end {
		return nil, 0, ErrWALTorn
	}
	payload = b[walHeaderSize:end]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[5:9]) {
		return nil, 0, fmt.Errorf("%w: CRC mismatch", ErrWALCorrupt)
	}
	return payload, end, nil
}

// ReplayWAL walks the framed records in b, calling fn for each valid
// payload in order. It stops at the first torn or corrupt frame — the
// log-end convention — and returns the number of bytes of valid prefix
// consumed plus the reason replay stopped (nil when the log ends
// cleanly). fn returning an error aborts the walk with that error.
func ReplayWAL(b []byte, fn func(payload []byte) error) (int, error) {
	off := 0
	for off < len(b) {
		payload, n, err := decodeFrame(b[off:])
		if err != nil {
			if errors.Is(err, ErrWALTorn) || errors.Is(err, ErrWALCorrupt) {
				return off, err
			}
			return off, err
		}
		if err := fn(payload); err != nil {
			return off, err
		}
		off += n
	}
	return off, nil
}
