package cabinet

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"tax/internal/vclock"
)

func newTestStore(t *testing.T, snapshotEvery int) (*Store, *vclock.Virtual) {
	t.Helper()
	clock := vclock.NewVirtual()
	return NewStore(Options{Clock: clock, SnapshotEvery: snapshotEvery}), clock
}

func TestCommittedStateSurvivesCrash(t *testing.T) {
	s, _ := newTestStore(t, -1)
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := s.Delete("k3"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	seq := s.Seq()

	s.Disk().Crash()
	if err := s.Put("dead", nil); !errors.Is(err, ErrCrashed) {
		t.Fatalf("put on crashed store: err = %v, want ErrCrashed", err)
	}
	if _, err := s.Reopen(); err != nil {
		t.Fatalf("reopen: %v", err)
	}

	if got := s.Seq(); got != seq {
		t.Fatalf("recovered seq = %d, want %d", got, seq)
	}
	if _, ok := s.Get("k3"); ok {
		t.Fatal("deleted key resurrected by recovery")
	}
	for _, i := range []int{0, 1, 2, 4, 9} {
		v, ok := s.Get(fmt.Sprintf("k%d", i))
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d after recovery = %q, %v", i, v, ok)
		}
	}
}

func TestUnsyncedCommitLostOnCrash(t *testing.T) {
	s, _ := newTestStore(t, -1)
	if err := s.Put("durable", []byte("yes")); err != nil {
		t.Fatal(err)
	}
	if err := s.CommitNoSync([]Op{{Key: "volatile", Value: []byte("maybe")}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("volatile"); !ok {
		t.Fatal("unsynced commit not visible before crash")
	}

	s.Disk().Crash()
	if _, err := s.Reopen(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("volatile"); ok {
		t.Fatal("unsynced commit survived the crash")
	}
	if _, ok := s.Get("durable"); !ok {
		t.Fatal("synced commit lost")
	}

	// A later synced commit also makes earlier unsynced ones durable:
	// fsync flushes the whole page cache for the file.
	if err := s.CommitNoSync([]Op{{Key: "tail", Value: []byte("t")}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("anchor", []byte("a")); err != nil {
		t.Fatal(err)
	}
	s.Disk().Crash()
	if _, err := s.Reopen(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"tail", "anchor"} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("%q lost despite following fsync", k)
		}
	}
}

func TestSnapshotCompactionAndRecovery(t *testing.T) {
	s, _ := newTestStore(t, 4)
	for i := 0; i < 23; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i%7), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// 23 commits at SnapshotEvery=4 → 5 snapshots; WAL holds only the
	// 3 txns since the last one.
	wal, _ := s.Disk().DurableBytes(walFile)
	frames := 0
	if _, err := ReplayWAL(wal, func([]byte) error { frames++; return nil }); err != nil {
		t.Fatalf("replay clean WAL: %v", err)
	}
	if frames != 3 {
		t.Fatalf("WAL holds %d txns after compaction, want 3", frames)
	}

	s.Disk().Crash()
	if _, err := s.Reopen(); err != nil {
		t.Fatal(err)
	}
	if got := s.Seq(); got != 23 {
		t.Fatalf("recovered seq = %d, want 23", got)
	}
	for i := 16; i < 23; i++ { // final write of each of the 7 keys
		v, ok := s.Get(fmt.Sprintf("k%02d", i%7))
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%02d = %q, %v after snapshot recovery", i%7, v, ok)
		}
	}
}

func TestTornWriteTruncatesToLastFullRecord(t *testing.T) {
	s, _ := newTestStore(t, -1)
	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	// An unsynced commit in flight at crash time, with 3 of its bytes
	// reaching the platter: replay must stop at the tear.
	if err := s.CommitNoSync([]Op{{Key: "c", Value: []byte("3")}}); err != nil {
		t.Fatal(err)
	}
	s.Disk().Crash(TornWrite{File: walFile, Keep: 3})
	if _, err := s.Reopen(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("c"); ok {
		t.Fatal("torn record recovered as committed")
	}
	if v, ok := s.Get("b"); !ok || string(v) != "2" {
		t.Fatal("record before the tear lost")
	}
	// The torn tail must not poison future appends.
	if err := s.Put("d", []byte("4")); err != nil {
		t.Fatal(err)
	}
	s.Disk().Crash()
	if _, err := s.Reopen(); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get("d"); !ok || string(v) != "4" {
		t.Fatal("append after torn-tail recovery lost")
	}
}

// TestRecoverEveryWALPrefix is the pure-function face of the crash-point
// proof: for every byte-length prefix of a durable WAL image, recovery
// must produce exactly the state after some prefix of the committed
// transactions, and the recovered count must be monotone in the prefix
// length (longer surviving prefix can only mean more history).
func TestRecoverEveryWALPrefix(t *testing.T) {
	s, _ := newTestStore(t, -1)
	const n = 8
	for i := 0; i < n; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	wal, ok := s.Disk().DurableBytes(walFile)
	if !ok {
		t.Fatal("no durable WAL")
	}
	prevSeq := uint64(0)
	for cut := 0; cut <= len(wal); cut++ {
		table, seq, err := RecoverBytes(nil, wal[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if seq < prevSeq {
			t.Fatalf("cut %d: recovered seq %d < %d at shorter prefix", cut, seq, prevSeq)
		}
		prevSeq = seq
		if seq > n {
			t.Fatalf("cut %d: recovered seq %d beyond committed %d", cut, seq, n)
		}
		if uint64(len(table)) != seq {
			t.Fatalf("cut %d: %d keys but seq %d — partial txn applied", cut, len(table), seq)
		}
		for i := uint64(0); i < seq; i++ {
			v, ok := table[fmt.Sprintf("k%d", i)]
			if !ok || !bytes.Equal(v, []byte{byte(i)}) {
				t.Fatalf("cut %d: k%d missing or wrong after recovery", cut, i)
			}
		}
	}
}

// TestReplaySkipsSnapshottedSeqs covers a crash between the snapshot
// rename and the WAL truncate: the WAL still holds transactions the
// snapshot already folded in, and replay must not apply them twice.
func TestReplaySkipsSnapshottedSeqs(t *testing.T) {
	table := map[string][]byte{"ctr": []byte("3")}
	snap := encodeSnapshot(3, table)
	// WAL containing seqs 2,3 (pre-snapshot: deletes that must NOT
	// replay) and 4 (post-snapshot: must replay).
	var wal []byte
	wal = appendFrame(wal, encodeTxn(2, []Op{{Del: true, Key: "ctr"}}))
	wal = appendFrame(wal, encodeTxn(3, []Op{{Key: "ctr", Value: []byte("3")}}))
	wal = appendFrame(wal, encodeTxn(4, []Op{{Key: "ctr", Value: []byte("4")}}))
	got, seq, err := RecoverBytes(snap, wal)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 4 {
		t.Fatalf("seq = %d, want 4", seq)
	}
	if string(got["ctr"]) != "4" {
		t.Fatalf("ctr = %q, want 4", got["ctr"])
	}
}

func TestCorruptSnapshotFallsBackToWAL(t *testing.T) {
	snap := encodeSnapshot(2, map[string][]byte{"x": []byte("snap")})
	snap[len(snap)/2] ^= 0xA5
	var wal []byte
	wal = appendFrame(wal, encodeTxn(1, []Op{{Key: "x", Value: []byte("wal1")}}))
	wal = appendFrame(wal, encodeTxn(2, []Op{{Key: "x", Value: []byte("wal2")}}))
	table, seq, err := RecoverBytes(snap, wal)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 || string(table["x"]) != "wal2" {
		t.Fatalf("fallback recovery = %q seq %d, want wal2 seq 2", table["x"], seq)
	}
}

func TestFsyncChargesVirtualClock(t *testing.T) {
	clock := vclock.NewVirtual()
	s := NewStore(Options{Clock: clock, FsyncCost: 2 * time.Millisecond, SnapshotEvery: -1})
	t0 := clock.Now()
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if d := clock.Now() - t0; d != 2*time.Millisecond {
		t.Fatalf("one synced commit advanced the clock by %v, want 2ms", d)
	}
	if err := s.CommitNoSync([]Op{{Key: "j", Value: []byte("w")}}); err != nil {
		t.Fatal(err)
	}
	if d := clock.Now() - t0; d != 2*time.Millisecond {
		t.Fatalf("unsynced commit advanced the clock (total %v)", d)
	}
	if got := s.Disk().Syncs(); got != 1 {
		t.Fatalf("fsync count = %d, want 1", got)
	}
}

func TestDiskRenameKeepsOnlyDurableContent(t *testing.T) {
	clock := vclock.NewVirtual()
	d := NewDisk(DiskConfig{Clock: clock})
	if err := d.Append("f.tmp", []byte("synced")); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync("f.tmp"); err != nil {
		t.Fatal(err)
	}
	if err := d.Append("f.tmp", []byte("+tail")); err != nil {
		t.Fatal(err)
	}
	if err := d.Rename("f.tmp", "f"); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	d.Reopen()
	got, err := d.ReadFile("f")
	if err != nil || string(got) != "synced" {
		t.Fatalf("renamed file after crash = %q, %v; want synced prefix only", got, err)
	}
}

func TestStoreKeysPrefix(t *testing.T) {
	s, _ := newTestStore(t, -1)
	for _, k := range []string{"park/1", "park/2", "ckpt/a", "park/10"} {
		if err := s.Put(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Keys("park/")
	want := []string{"park/1", "park/10", "park/2"}
	if len(got) != len(want) {
		t.Fatalf("Keys(park/) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys(park/) = %v, want %v", got, want)
		}
	}
}

func TestAppendHookFiresOutsideLock(t *testing.T) {
	s, _ := newTestStore(t, -1)
	var seqs []uint64
	s.SetAppendHook(func(seq uint64) {
		seqs = append(seqs, seq)
		// Re-entering the store from the hook must not deadlock — the
		// crash-point harness crashes the disk from here.
		_ = s.Seq()
	})
	for i := 0; i < 3; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if len(seqs) != 3 || seqs[0] != 1 || seqs[2] != 3 {
		t.Fatalf("hook saw seqs %v, want [1 2 3]", seqs)
	}
}
