package cabinet

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"time"

	"tax/internal/telemetry"
	"tax/internal/vclock"
)

// File names the store keeps on its disk. The WAL is append-only; the
// snapshot is replaced atomically via snap.tmp + fsync + rename.
const (
	walFile     = "wal"
	snapFile    = "snap"
	snapTmpFile = "snap.tmp"
)

// Options parameterizes a Store.
type Options struct {
	// Clock is the host clock; required when Disk is nil.
	Clock vclock.Clock
	// Disk backs the store; a fresh one is created from Clock/FsyncCost
	// when nil.
	Disk *Disk
	// FsyncCost overrides the disk's sync latency when the store creates
	// its own disk.
	FsyncCost time.Duration
	// SnapshotEvery compacts the WAL into a snapshot after this many
	// committed transactions (default 64; negative disables).
	SnapshotEvery int
	// GroupCommit coalesces concurrent Commit callers into shared
	// fsyncs: the first caller to arrive becomes the batch leader,
	// journals every queued transaction as its own WAL record, and
	// issues one fsync covering them all; followers block until the
	// fsync that covers their record completes. Every Commit still
	// returns only once its transaction is durable — group commit
	// changes fsync count, never durability semantics. Sequential
	// callers degenerate to one-transaction batches, so a single-writer
	// workload behaves (and costs) exactly as without it.
	GroupCommit bool
	// GroupMaxTxns bounds how many transactions share one fsync (the
	// coalesce window); zero means DefaultGroupMaxTxns.
	GroupMaxTxns int
	// Telemetry, when set, records cabinet.wal_appends, cabinet.fsyncs,
	// cabinet.snapshots and cabinet.recovery_ms under the given Host
	// label.
	Telemetry *telemetry.Registry
	// Host labels the telemetry series.
	Host string
	// Observer, when set, is called once per durability action —
	// "wal_append", "fsync", "snapshot", "recover" — with the disk's
	// virtual time after the action and the store's committed sequence
	// number. Calls happen outside the store lock, in action order per
	// goroutine; a flight recorder uses it to interleave durability work
	// with the itinerary timeline.
	Observer func(op string, at time.Duration, seq uint64)
}

// DefaultSnapshotEvery is the WAL-transactions-per-snapshot compaction
// interval when Options leaves it zero.
const DefaultSnapshotEvery = 64

// DefaultGroupMaxTxns is the group-commit coalesce bound when Options
// leaves it zero: at most this many transactions share one fsync.
const DefaultGroupMaxTxns = 64

// Op is one mutation inside a transaction.
type Op struct {
	// Del distinguishes deletes from puts.
	Del bool
	// Key is the entry being written or deleted.
	Key string
	// Value is the put payload (ignored for deletes).
	Value []byte
}

// Store is a crash-consistent key-value store: every transaction is
// WAL-journaled and fsynced before it mutates the in-memory table, and
// the WAL is periodically compacted into a snapshot. After a Crash,
// Reopen rebuilds exactly the durable history. Safe for concurrent use.
type Store struct {
	mu        sync.Mutex
	disk      *Disk
	opts      Options
	table     map[string][]byte
	seq       uint64 // last committed transaction sequence number
	sinceSnap int
	hook      func(seq uint64) // fired after each synced append, outside mu
	// preSyncHook fires after each WAL append and before the fsync that
	// would cover it — the window group commit opens between a record
	// reaching the log and becoming durable. It runs under the store
	// lock (see SetPreSyncHook).
	preSyncHook func(seq uint64)

	// gcMu guards the group-commit queue; it is taken before s.mu and
	// never while holding it.
	gcMu      sync.Mutex
	gcQueue   []*gcWaiter
	gcLeading bool

	walAppends *telemetry.Counter
	fsyncs     *telemetry.Counter
	snapshots  *telemetry.Counter
	recoveryMS *telemetry.Histogram
}

// NewStore creates an empty store (and its disk, unless one is given).
func NewStore(opts Options) *Store {
	if opts.Disk == nil {
		opts.Disk = NewDisk(DiskConfig{Clock: opts.Clock, SyncLatency: opts.FsyncCost})
	}
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = DefaultSnapshotEvery
	}
	s := &Store{disk: opts.Disk, opts: opts, table: make(map[string][]byte)}
	if opts.Telemetry != nil {
		s.walAppends = opts.Telemetry.Counter("cabinet.wal_appends", "host", opts.Host)
		s.fsyncs = opts.Telemetry.Counter("cabinet.fsyncs", "host", opts.Host)
		s.snapshots = opts.Telemetry.Counter("cabinet.snapshots", "host", opts.Host)
		s.recoveryMS = opts.Telemetry.Histogram("cabinet.recovery_ms", "host", opts.Host)
	}
	return s
}

// Disk exposes the backing disk (the simnet crash hooks crash it
// alongside the host).
func (s *Store) Disk() *Disk { return s.disk }

// SetAppendHook installs fn, called after every synced WAL append with
// the committed sequence number. The hook runs outside the store lock,
// so it may crash the host — the crash-point harness uses exactly that.
// Under group commit the hook fires once per transaction in a batch, in
// sequence order, after the shared fsync.
func (s *Store) SetAppendHook(fn func(seq uint64)) {
	s.mu.Lock()
	s.hook = fn
	s.mu.Unlock()
}

// SetPreSyncHook installs fn, called after each WAL append with the
// assigned sequence number, before the fsync that would make it durable.
// This is the window the group-commit crash sweep targets: a record is
// in the log but the shared fsync has not happened, so a crash here must
// leave every waiter of the batch either fully durable or cleanly
// absent. Unlike the append hook, fn runs while the store lock is held —
// it may crash the Disk (its own lock) and record state, but must not
// call back into the Store.
func (s *Store) SetPreSyncHook(fn func(seq uint64)) {
	s.mu.Lock()
	s.preSyncHook = fn
	s.mu.Unlock()
}

// Get returns the committed value for key.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.table[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Keys returns the committed keys with the given prefix, sorted.
func (s *Store) Keys(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for k := range s.table {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of committed entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.table)
}

// Seq returns the last committed transaction sequence number.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Put commits a single-key write.
func (s *Store) Put(key string, value []byte) error {
	return s.Commit([]Op{{Key: key, Value: value}})
}

// Delete commits a single-key delete.
func (s *Store) Delete(key string) error {
	return s.Commit([]Op{{Del: true, Key: key}})
}

// Commit journals the ops as one atomic transaction: WAL append, fsync,
// then the in-memory table mutates. Either every op survives a crash or
// none does. An empty transaction is a no-op. With Options.GroupCommit
// set, concurrent callers coalesce their appends into one shared fsync;
// Commit still returns only once its own record is durable.
func (s *Store) Commit(ops []Op) error {
	if len(ops) == 0 {
		return nil
	}
	if s.opts.GroupCommit {
		return s.commitGroup(ops)
	}
	return s.commit(ops, true)
}

// CommitNoSync journals the ops without forcing an fsync: they become
// durable at the next synced commit or snapshot. For state where losing
// the tail on crash is acceptable (the dedup journal) but per-write
// fsync cost is not.
func (s *Store) CommitNoSync(ops []Op) error {
	return s.commit(ops, false)
}

func (s *Store) commit(ops []Op, sync bool) error {
	if len(ops) == 0 {
		return nil
	}
	s.mu.Lock()
	if s.disk.Crashed() {
		s.mu.Unlock()
		return ErrCrashed
	}
	s.seq++
	seq := s.seq
	frame := appendFrame(nil, encodeTxn(seq, ops))
	if err := s.disk.Append(walFile, frame); err != nil {
		s.seq--
		s.mu.Unlock()
		return err
	}
	if s.preSyncHook != nil && sync {
		s.preSyncHook(seq)
	}
	if sync {
		if err := s.disk.Sync(walFile); err != nil {
			s.seq--
			s.mu.Unlock()
			return err
		}
		if s.fsyncs != nil {
			s.fsyncs.Inc()
		}
	}
	for _, op := range ops {
		if op.Del {
			delete(s.table, op.Key)
		} else {
			s.table[op.Key] = append([]byte(nil), op.Value...)
		}
	}
	if s.walAppends != nil {
		s.walAppends.Inc()
	}
	s.sinceSnap++
	snapped := false
	if s.opts.SnapshotEvery > 0 && s.sinceSnap >= s.opts.SnapshotEvery {
		snapped = s.snapshotLocked()
	}
	hook := s.hook
	obs := s.opts.Observer
	s.mu.Unlock()
	if obs != nil {
		now := s.disk.Clock().Now()
		obs("wal_append", now, seq)
		if sync {
			obs("fsync", now, seq)
		}
		if snapped {
			obs("snapshot", now, seq)
		}
	}
	if hook != nil {
		hook(seq)
	}
	return nil
}

// gcWaiter is one queued group-commit transaction: its ops and the
// channel its caller blocks on until the covering fsync completes.
type gcWaiter struct {
	ops  []Op
	done chan error
}

// groupMax returns the effective coalesce bound.
func (s *Store) groupMax() int {
	if s.opts.GroupMaxTxns > 0 {
		return s.opts.GroupMaxTxns
	}
	return DefaultGroupMaxTxns
}

// commitGroup is the leader/follower protocol. Every caller enqueues its
// transaction; the first to find no leader running becomes the leader
// and drains the queue in batches of at most GroupMaxTxns, one fsync per
// batch, signalling each batch's waiters before taking the next. The
// coalesce window is the leader's own commit latency: callers that
// arrive while a batch's fsync is in flight (on the virtual clock, while
// the disk charges SyncLatency) form the next batch. No caller returns
// before the fsync covering its record; sequential callers produce
// one-transaction batches and behave exactly like plain Commit.
func (s *Store) commitGroup(ops []Op) error {
	w := &gcWaiter{ops: ops, done: make(chan error, 1)}
	s.gcMu.Lock()
	s.gcQueue = append(s.gcQueue, w)
	if s.gcLeading {
		s.gcMu.Unlock()
		return <-w.done
	}
	s.gcLeading = true
	for len(s.gcQueue) > 0 {
		batch := s.gcQueue
		if max := s.groupMax(); len(batch) > max {
			batch = batch[:max]
		}
		s.gcQueue = s.gcQueue[len(batch):]
		s.gcMu.Unlock()
		err := s.commitBatch(batch)
		for _, bw := range batch {
			bw.done <- err
		}
		s.gcMu.Lock()
	}
	s.gcQueue = nil
	s.gcLeading = false
	s.gcMu.Unlock()
	// The leader's own transaction rode the first batch; its result is
	// buffered.
	return <-w.done
}

// commitBatch journals one batch: every transaction gets its own WAL
// record and sequence number, one fsync covers them all, and only then
// do the table mutations apply, in sequence order. On any error the
// whole batch reports it and mutates nothing — the unsynced appends
// die with the page cache, which is exactly the atomicity the crash
// sweep asserts. Runs under s.mu like commit; CommitNoSync appends that
// interleave before the shared fsync simply become durable with it.
func (s *Store) commitBatch(batch []*gcWaiter) error {
	s.mu.Lock()
	if s.disk.Crashed() {
		s.mu.Unlock()
		return ErrCrashed
	}
	startSeq := s.seq
	seqs := make([]uint64, len(batch))
	for i, w := range batch {
		s.seq++
		seqs[i] = s.seq
		frame := appendFrame(nil, encodeTxn(s.seq, w.ops))
		if err := s.disk.Append(walFile, frame); err != nil {
			s.seq = startSeq
			s.mu.Unlock()
			return err
		}
		if s.preSyncHook != nil {
			s.preSyncHook(s.seq)
		}
	}
	if err := s.disk.Sync(walFile); err != nil {
		s.seq = startSeq
		s.mu.Unlock()
		return err
	}
	if s.fsyncs != nil {
		s.fsyncs.Inc()
	}
	for _, w := range batch {
		for _, op := range w.ops {
			if op.Del {
				delete(s.table, op.Key)
			} else {
				s.table[op.Key] = append([]byte(nil), op.Value...)
			}
		}
		if s.walAppends != nil {
			s.walAppends.Inc()
		}
	}
	s.sinceSnap += len(batch)
	snapped := false
	if s.opts.SnapshotEvery > 0 && s.sinceSnap >= s.opts.SnapshotEvery {
		snapped = s.snapshotLocked()
	}
	hook := s.hook
	obs := s.opts.Observer
	s.mu.Unlock()
	last := seqs[len(seqs)-1]
	if obs != nil {
		now := s.disk.Clock().Now()
		for _, q := range seqs {
			obs("wal_append", now, q)
		}
		obs("fsync", now, last)
		if snapped {
			obs("snapshot", now, last)
		}
	}
	if hook != nil {
		for _, q := range seqs {
			hook(q)
		}
	}
	return nil
}

// CommitMany journals each transaction as its own WAL record and makes
// them all durable with shared fsyncs — group-commit batch formation
// made explicit, for callers (and deterministic benchmarks) that hold a
// set of independent transactions in hand. Each transaction is atomic
// on its own; the group shares only fsyncs, at most GroupMaxTxns
// transactions per fsync. Semantically identical to len(txns)
// concurrent Commit callers that happened to coalesce perfectly.
func (s *Store) CommitMany(txns [][]Op) error {
	batch := make([]*gcWaiter, 0, len(txns))
	for _, ops := range txns {
		if len(ops) == 0 {
			continue
		}
		batch = append(batch, &gcWaiter{ops: ops})
	}
	for len(batch) > 0 {
		n := len(batch)
		if max := s.groupMax(); n > max {
			n = max
		}
		if err := s.commitBatch(batch[:n]); err != nil {
			return err
		}
		batch = batch[n:]
	}
	return nil
}

// Snapshot forces a compaction: the full table is written to snap.tmp,
// fsynced, renamed over the snapshot, and the WAL truncated.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	if s.disk.Crashed() {
		s.mu.Unlock()
		return ErrCrashed
	}
	snapped := s.snapshotLocked()
	seq := s.seq
	obs := s.opts.Observer
	s.mu.Unlock()
	if snapped && obs != nil {
		obs("snapshot", s.disk.Clock().Now(), seq)
	}
	return nil
}

// snapshotLocked writes the snapshot under s.mu, reporting whether it
// completed. A crash between the rename and the truncate leaves WAL
// records the snapshot already covers; replay skips them by sequence
// number, so the pair need not be atomic together.
func (s *Store) snapshotLocked() bool {
	if err := s.disk.Truncate(snapTmpFile); err != nil {
		return false // crashed mid-sequence; recovery ignores snap.tmp
	}
	if s.disk.Append(snapTmpFile, encodeSnapshot(s.seq, s.table)) != nil {
		return false
	}
	if s.disk.Sync(snapTmpFile) != nil {
		return false
	}
	if s.fsyncs != nil {
		s.fsyncs.Inc()
	}
	if s.disk.Rename(snapTmpFile, snapFile) != nil {
		return false
	}
	if s.disk.Truncate(walFile) != nil {
		return false
	}
	s.sinceSnap = 0
	if s.snapshots != nil {
		s.snapshots.Inc()
	}
	return true
}

// Reopen recovers the store after a disk Crash: the disk is brought
// back, the durable snapshot and WAL suffix are replayed, and the
// in-memory table is rebuilt to exactly the durable history. Returns
// the recovery duration charged to the host clock.
func (s *Store) Reopen() (time.Duration, error) {
	s.mu.Lock()
	defer func() {
		seq := s.seq
		obs := s.opts.Observer
		s.mu.Unlock()
		if obs != nil {
			obs("recover", s.disk.Clock().Now(), seq)
		}
	}()
	cost := s.disk.Reopen()
	snapBytes, _ := s.disk.DurableBytes(snapFile)
	walBytes, _ := s.disk.DurableBytes(walFile)
	table, seq, err := RecoverBytes(snapBytes, walBytes)
	if err != nil {
		return cost, err
	}
	s.table = table
	s.seq = seq
	s.sinceSnap = 0
	// Drop any torn WAL suffix so new appends start at a frame boundary:
	// rewrite the valid prefix. Truncate+Append+Sync is safe here — the
	// content is exactly what recovery accepted.
	valid, _ := ReplayWAL(walBytes, func([]byte) error { return nil })
	if valid != len(walBytes) {
		if err := s.disk.Truncate(walFile); err == nil {
			_ = s.disk.Append(walFile, walBytes[:valid])
			_ = s.disk.Sync(walFile)
		}
	}
	if s.recoveryMS != nil {
		s.recoveryMS.Observe(cost)
	}
	return cost, nil
}

// RecoverBytes is the recovery protocol as a pure function: given the
// durable snapshot and WAL images, it returns the recovered table and
// last committed sequence number. The crash-point harness calls it on
// every byte prefix of a real WAL to prove recovery is total over torn
// writes. Corruption is never an error — a bad snapshot falls back to
// empty, a bad WAL frame ends the log — because a crashed host must
// always reopen.
func RecoverBytes(snapBytes, walBytes []byte) (map[string][]byte, uint64, error) {
	table, snapSeq := decodeSnapshot(snapBytes)
	seq := snapSeq
	_, _ = ReplayWAL(walBytes, func(payload []byte) error {
		txSeq, ops, err := decodeTxn(payload)
		if err != nil {
			return nil // frame passed CRC but payload malformed: skip
		}
		if txSeq <= snapSeq {
			return nil // already folded into the snapshot
		}
		for _, op := range ops {
			if op.Del {
				delete(table, op.Key)
			} else {
				table[op.Key] = op.Value
			}
		}
		if txSeq > seq {
			seq = txSeq
		}
		return nil
	})
	return table, seq, nil
}

// Transaction payload encoding:
//
//	seq   uint64 LE
//	count uvarint
//	per op: kind byte (0 put, 1 del) | key len uvarint | key
//	        | for puts: value len uvarint | value
func encodeTxn(seq uint64, ops []Op) []byte {
	var buf []byte
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], seq)
	buf = append(buf, tmp[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(ops)))
	for _, op := range ops {
		if op.Del {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.AppendUvarint(buf, uint64(len(op.Key)))
		buf = append(buf, op.Key...)
		if !op.Del {
			buf = binary.AppendUvarint(buf, uint64(len(op.Value)))
			buf = append(buf, op.Value...)
		}
	}
	return buf
}

func decodeTxn(b []byte) (uint64, []Op, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("cabinet: txn too short")
	}
	seq := binary.LittleEndian.Uint64(b[:8])
	b = b[8:]
	count, n := binary.Uvarint(b)
	if n <= 0 || count > uint64(len(b)) {
		return 0, nil, fmt.Errorf("cabinet: bad txn op count")
	}
	b = b[n:]
	ops := make([]Op, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(b) < 1 {
			return 0, nil, fmt.Errorf("cabinet: txn truncated")
		}
		kind := b[0]
		if kind > 1 {
			return 0, nil, fmt.Errorf("cabinet: bad txn op kind %d", kind)
		}
		b = b[1:]
		klen, n := binary.Uvarint(b)
		if n <= 0 || klen > uint64(len(b)-n) {
			return 0, nil, fmt.Errorf("cabinet: bad txn key length")
		}
		key := string(b[n : n+int(klen)])
		b = b[n+int(klen):]
		op := Op{Del: kind == 1, Key: key}
		if kind == 0 {
			vlen, n := binary.Uvarint(b)
			if n <= 0 || vlen > uint64(len(b)-n) {
				return 0, nil, fmt.Errorf("cabinet: bad txn value length")
			}
			op.Value = append([]byte(nil), b[n:n+int(vlen)]...)
			b = b[n+int(vlen):]
		}
		ops = append(ops, op)
	}
	if len(b) != 0 {
		return 0, nil, fmt.Errorf("cabinet: %d trailing txn bytes", len(b))
	}
	return seq, ops, nil
}

// Snapshot file encoding:
//
//	magic   "TAXC"
//	lastSeq uint64 LE
//	count   uvarint
//	entries key len uvarint | key | value len uvarint | value   (sorted)
//	crc     uint32 LE over everything before it
var snapMagic = []byte("TAXC")

func encodeSnapshot(seq uint64, table map[string][]byte) []byte {
	buf := append([]byte(nil), snapMagic...)
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], seq)
	buf = append(buf, tmp[:]...)
	keys := make([]string, 0, len(table))
	for k := range table {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
		buf = binary.AppendUvarint(buf, uint64(len(table[k])))
		buf = append(buf, table[k]...)
	}
	binary.LittleEndian.PutUint32(tmp[:4], crc32.ChecksumIEEE(buf))
	return append(buf, tmp[:4]...)
}

// decodeSnapshot parses a snapshot image, returning an empty table and
// sequence 0 on any structural or CRC failure — a host must reopen even
// when its snapshot is ruined, falling back to full WAL replay.
func decodeSnapshot(b []byte) (map[string][]byte, uint64) {
	table := make(map[string][]byte)
	if len(b) < len(snapMagic)+8+4 || string(b[:4]) != string(snapMagic) {
		return table, 0
	}
	body, crc := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != crc {
		return table, 0
	}
	seq := binary.LittleEndian.Uint64(body[4:12])
	rest := body[12:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return make(map[string][]byte), 0
	}
	rest = rest[n:]
	for i := uint64(0); i < count; i++ {
		klen, n := binary.Uvarint(rest)
		if n <= 0 || klen > uint64(len(rest)-n) {
			return make(map[string][]byte), 0
		}
		key := string(rest[n : n+int(klen)])
		rest = rest[n+int(klen):]
		vlen, n := binary.Uvarint(rest)
		if n <= 0 || vlen > uint64(len(rest)-n) {
			return make(map[string][]byte), 0
		}
		table[key] = append([]byte(nil), rest[n:n+int(vlen)]...)
		rest = rest[n+int(vlen):]
	}
	if len(rest) != 0 {
		return make(map[string][]byte), 0
	}
	return table, seq
}
