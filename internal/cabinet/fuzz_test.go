package cabinet

import (
	"bytes"
	"testing"
)

// walSeedFrames is the corpus the fuzzer mutates from: clean multi-record
// logs, the torn tails a crash produces (every interesting truncation
// point), and bit-flipped frames mirroring the disk-corruption shapes the
// fault injector generates.
func walSeedFrames() [][]byte {
	var logs [][]byte

	logs = append(logs, nil) // empty log

	one := appendFrame(nil, encodeTxn(1, []Op{{Key: "k", Value: []byte("v")}}))
	logs = append(logs, one)

	multi := appendFrame(nil, encodeTxn(1, []Op{{Key: "a", Value: []byte("1")}}))
	multi = appendFrame(multi, encodeTxn(2, []Op{{Del: true, Key: "a"}}))
	multi = appendFrame(multi, encodeTxn(3, []Op{
		{Key: "b", Value: bytes.Repeat([]byte{0xAB}, 100)},
		{Key: "c", Value: nil},
	}))
	logs = append(logs, multi)

	// Torn tails: cut inside the last header, inside the last payload,
	// and right at a frame boundary.
	logs = append(logs,
		multi[:len(multi)-1],
		multi[:len(one)+3],
		multi[:len(one)],
	)

	// Bit flips: magic, length field, CRC field, payload.
	for _, at := range []int{0, 2, 6, len(one) + 12} {
		damaged := append([]byte(nil), multi...)
		damaged[at] ^= 0x5A
		logs = append(logs, damaged)
	}

	// A frame whose length field claims far more than the log holds.
	bogus := append([]byte(nil), one...)
	bogus[3] = 0xFF
	logs = append(logs, bogus)

	return logs
}

// FuzzWALDecode drives the WAL replay path with arbitrary logs: it must
// never panic, the valid prefix it accepts must itself replay to the
// identical payload sequence (replay is a fixpoint on accepted
// prefixes), and re-framing the accepted payloads must reproduce the
// accepted bytes exactly.
func FuzzWALDecode(f *testing.F) {
	for _, log := range walSeedFrames() {
		f.Add(log)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var payloads [][]byte
		valid, err := ReplayWAL(data, func(p []byte) error {
			payloads = append(payloads, append([]byte(nil), p...))
			return nil
		})
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid prefix %d outside [0,%d]", valid, len(data))
		}
		if err == nil && valid != len(data) {
			t.Fatalf("clean replay consumed %d of %d bytes", valid, len(data))
		}

		// Replaying the accepted prefix alone must yield the same
		// payloads and consume every byte.
		var again [][]byte
		n, err := ReplayWAL(data[:valid], func(p []byte) error {
			again = append(again, append([]byte(nil), p...))
			return nil
		})
		if err != nil || n != valid {
			t.Fatalf("accepted prefix re-replay: n=%d err=%v, want %d, nil", n, err, valid)
		}
		if len(again) != len(payloads) {
			t.Fatalf("re-replay yielded %d records, want %d", len(again), len(payloads))
		}

		// Re-framing the payloads must reconstruct the accepted bytes:
		// framing is injective on what replay accepts.
		var reframed []byte
		for i, p := range payloads {
			if !bytes.Equal(p, again[i]) {
				t.Fatal("re-replay changed a payload")
			}
			reframed = appendFrame(reframed, p)
		}
		if !bytes.Equal(reframed, data[:valid]) {
			t.Fatal("re-framing accepted payloads differs from accepted prefix")
		}

		// Recovery must be total: whatever the bytes, RecoverBytes
		// returns a usable table. Feed the data as both WAL and snapshot.
		if _, _, err := RecoverBytes(nil, data); err != nil {
			t.Fatalf("RecoverBytes(wal) = %v", err)
		}
		if _, _, err := RecoverBytes(data, data[:valid]); err != nil {
			t.Fatalf("RecoverBytes(snap, wal) = %v", err)
		}
	})
}
