// Package txn implements two-phase commit over TAX briefcase RPCs.
//
// §4 lists "support for transactions" among the middleware agent systems
// keep absorbing; following the paper's architecture it lives in the
// agents, not the landing pad: any agent can coordinate a transaction
// over participant agents with the plain meet/reply primitives, and any
// agent becomes a participant by serving the three-verb protocol below.
//
// The protocol is classic presumed-abort 2PC:
//
//	coordinator            participant
//	  -- prepare(txn) -->    vote yes (and hold the work) or no
//	  <-- vote ---------
//	  all yes: -- commit --> apply
//	  any  no: -- abort  --> discard
//
// Participant failures and timeouts during prepare abort the whole
// transaction; commit/abort notifications are retried best-effort (a
// participant that voted yes and misses the outcome stays prepared, as
// in any 2PC without a recovery log — the known blocking weakness of the
// protocol, faithfully reproduced).
package txn

import (
	"errors"
	"fmt"
	"time"

	"tax/internal/agent"
	"tax/internal/briefcase"
)

// Protocol folders.
const (
	// FolderTxnID names the transaction.
	FolderTxnID = "_TXNID"
	// FolderTxnOp is one of prepare/commit/abort.
	FolderTxnOp = "_TXNOP"
	// FolderTxnVote is the participant's prepare answer: yes or no.
	FolderTxnVote = "_TXNVOTE"
	// FolderTxnReason carries a no-vote's explanation.
	FolderTxnReason = "_TXNREASON"
)

// Protocol operations.
const (
	// OpPrepare asks a participant to vote.
	OpPrepare = "prepare"
	// OpCommit applies a prepared transaction.
	OpCommit = "commit"
	// OpAbort discards a prepared transaction.
	OpAbort = "abort"
)

// ErrAborted is returned by Coordinator.Run when the transaction aborts.
var ErrAborted = errors.New("txn: aborted")

// Coordinator drives 2PC from any agent context.
type Coordinator struct {
	// Participants are the routable URIs of the participant agents.
	Participants []string
	// Timeout bounds each prepare RPC; zero means 5 seconds.
	Timeout time.Duration
}

// Run executes one transaction: payload travels with every prepare so
// participants know what they are voting on. On unanimous yes votes the
// outcome is commit; any no vote, error or timeout aborts. The error
// reports the decisive cause; ErrAborted wraps all abort outcomes.
func (c *Coordinator) Run(ctx *agent.Context, txnID string, payload *briefcase.Briefcase) error {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	if len(c.Participants) == 0 {
		return errors.New("txn: no participants")
	}

	// Phase 1: prepare.
	var prepared []string
	var cause error
	for _, p := range c.Participants {
		req := payload.Clone()
		req.SetString(FolderTxnID, txnID)
		req.SetString(FolderTxnOp, OpPrepare)
		resp, err := ctx.Meet(p, req, timeout)
		if err != nil {
			cause = fmt.Errorf("prepare %s: %w", p, err)
			break
		}
		vote, _ := resp.GetString(FolderTxnVote)
		if vote != "yes" {
			reason, _ := resp.GetString(FolderTxnReason)
			cause = fmt.Errorf("participant %s voted %q (%s)", p, vote, reason)
			break
		}
		prepared = append(prepared, p)
	}

	// Phase 2: outcome.
	outcome := OpCommit
	targets := c.Participants
	if cause != nil {
		outcome = OpAbort
		targets = prepared // only those holding work need the abort
	}
	for _, p := range targets {
		note := briefcase.New()
		note.SetString(FolderTxnID, txnID)
		note.SetString(FolderTxnOp, outcome)
		// Outcome notifications are one-way, best effort.
		_ = ctx.Activate(p, note)
	}
	if cause != nil {
		return fmt.Errorf("%w: %v", ErrAborted, cause)
	}
	return nil
}

// Participant adapts an agent into a 2PC participant. Prepare inspects
// the payload and returns nil to vote yes (holding the work until the
// outcome); Commit and Abort receive the transaction id.
type Participant struct {
	// Prepare votes: nil = yes, error = no (with the reason).
	Prepare func(txnID string, payload *briefcase.Briefcase) error
	// Commit applies a prepared transaction.
	Commit func(txnID string)
	// Abort discards a prepared transaction.
	Abort func(txnID string)
}

// Handle processes one received briefcase if it belongs to the
// transaction protocol; it reports whether it consumed the briefcase.
// Agents embed it in their Await loops:
//
//	for {
//		bc, err := ctx.Await(0)
//		if err != nil { return err }
//		if ok, err := part.Handle(ctx, bc); ok {
//			if err != nil { return err }
//			continue
//		}
//		// ordinary application traffic
//	}
func (p *Participant) Handle(ctx *agent.Context, bc *briefcase.Briefcase) (bool, error) {
	op, ok := bc.GetString(FolderTxnOp)
	if !ok {
		return false, nil
	}
	txnID, _ := bc.GetString(FolderTxnID)
	switch op {
	case OpPrepare:
		vote := "yes"
		if p.Prepare != nil {
			if err := p.Prepare(txnID, bc); err != nil {
				vote = "no: " + err.Error()
			}
		}
		resp := briefcase.New()
		resp.SetString(FolderTxnID, txnID)
		resp.SetString(FolderTxnVote, voteWord(vote))
		resp.SetString(FolderTxnReason, vote)
		return true, ctx.Reply(bc, resp)
	case OpCommit:
		if p.Commit != nil {
			p.Commit(txnID)
		}
		return true, nil
	case OpAbort:
		if p.Abort != nil {
			p.Abort(txnID)
		}
		return true, nil
	default:
		return true, fmt.Errorf("txn: unknown operation %q", op)
	}
}

// voteWord reduces a vote string to the protocol token.
func voteWord(v string) string {
	if v == "yes" {
		return "yes"
	}
	return "no"
}
