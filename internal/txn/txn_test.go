package txn_test

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"tax/internal/agent"
	"tax/internal/briefcase"
	"tax/internal/core"
	"tax/internal/simnet"
	"tax/internal/txn"
)

// bank is a toy replicated account: each participant holds a balance and
// 2PC transfers debit all replicas atomically.
type bank struct {
	mu      sync.Mutex
	balance int
	held    map[string]int // prepared debits by txn id
	decided chan string    // commit/abort notifications for the test
}

func newBank(balance int) *bank {
	return &bank{balance: balance, held: make(map[string]int), decided: make(chan string, 8)}
}

func (b *bank) participant() *txn.Participant {
	return &txn.Participant{
		Prepare: func(id string, payload *briefcase.Briefcase) error {
			amount, ok := payload.GetInt("AMOUNT")
			if !ok {
				return errors.New("no amount")
			}
			b.mu.Lock()
			defer b.mu.Unlock()
			if b.balance < int(amount) {
				return errors.New("insufficient funds")
			}
			b.balance -= int(amount)
			b.held[id] = int(amount)
			return nil
		},
		Commit: func(id string) {
			b.mu.Lock()
			delete(b.held, id)
			b.mu.Unlock()
			b.decided <- "commit:" + id
		},
		Abort: func(id string) {
			b.mu.Lock()
			if amt, ok := b.held[id]; ok {
				b.balance += amt
				delete(b.held, id)
			}
			b.mu.Unlock()
			b.decided <- "abort:" + id
		},
	}
}

func (b *bank) bal() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.balance
}

// deployBanks boots one host per bank and launches participant agents.
func deployBanks(t *testing.T, banks ...*bank) (*core.System, []string, *core.Node) {
	t.Helper()
	s, err := core.NewSystem(simnet.LAN100)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	coord, err := s.AddNode("coord", core.NodeOptions{NoCVM: true, NoServices: true})
	if err != nil {
		t.Fatal(err)
	}
	var uris []string
	for i, b := range banks {
		host := "bank" + string(rune('1'+i))
		n, err := s.AddNode(host, core.NodeOptions{NoCVM: true, NoServices: true})
		if err != nil {
			t.Fatal(err)
		}
		part := b.participant()
		n.Programs.Register("bank", func(ctx *agent.Context) error {
			for {
				bc, err := ctx.Await(0)
				if err != nil {
					return nil
				}
				if ok, err := part.Handle(ctx, bc); ok {
					if err != nil {
						return err
					}
					continue
				}
			}
		})
		reg, err := n.VM.Launch("system", "bank", "bank", nil)
		if err != nil {
			t.Fatal(err)
		}
		uris = append(uris, reg.GlobalURI().String())
	}
	return s, uris, coord
}

// runTxn drives one transaction from a scratch agent on the coordinator.
func runTxn(t *testing.T, coord *core.Node, participants []string, id string, amount int64, timeout time.Duration) error {
	t.Helper()
	reg, err := coord.FW.Register("test", "system", "coord-agent")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.FW.Unregister(reg)
	ctx := agent.NewContext(coord.FW, reg, briefcase.New(), nil, nil)
	payload := briefcase.New()
	payload.SetInt("AMOUNT", amount)
	c := &txn.Coordinator{Participants: participants, Timeout: timeout}
	return c.Run(ctx, id, payload)
}

func TestCommitWhenAllVoteYes(t *testing.T) {
	b1, b2, b3 := newBank(100), newBank(100), newBank(100)
	_, uris, coord := deployBanks(t, b1, b2, b3)

	if err := runTxn(t, coord, uris, "t1", 30, 0); err != nil {
		t.Fatalf("commit path: %v", err)
	}
	for _, b := range []*bank{b1, b2, b3} {
		select {
		case d := <-b.decided:
			if d != "commit:t1" {
				t.Errorf("decision = %q", d)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("participant never learned the outcome")
		}
		if b.bal() != 70 {
			t.Errorf("balance = %d, want 70", b.bal())
		}
	}
}

func TestAbortWhenOneVotesNo(t *testing.T) {
	rich, poor := newBank(100), newBank(10)
	_, uris, coord := deployBanks(t, rich, poor)

	err := runTxn(t, coord, uris, "t2", 30, 0)
	if !errors.Is(err, txn.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if !strings.Contains(err.Error(), "insufficient funds") {
		t.Errorf("cause missing: %v", err)
	}
	// The yes-voter is rolled back.
	select {
	case d := <-rich.decided:
		if d != "abort:t2" {
			t.Errorf("rich decision = %q", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("yes-voter never aborted")
	}
	if rich.bal() != 100 || poor.bal() != 10 {
		t.Errorf("balances after abort: %d, %d", rich.bal(), poor.bal())
	}
}

func TestAbortOnParticipantTimeout(t *testing.T) {
	b1 := newBank(100)
	s, uris, coord := deployBanks(t, b1)
	// A second participant that never answers: registered but mute.
	n, err := s.Node("bank1")
	if err != nil {
		t.Fatal(err)
	}
	mute, err := n.FW.Register("test", "system", "mute-bank")
	if err != nil {
		t.Fatal(err)
	}
	uris = append(uris, mute.GlobalURI().String())

	err = runTxn(t, coord, uris, "t3", 5, 300*time.Millisecond)
	if !errors.Is(err, txn.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	// The responsive yes-voter rolls back.
	select {
	case d := <-b1.decided:
		if d != "abort:t3" {
			t.Errorf("decision = %q", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("yes-voter never aborted")
	}
	if b1.bal() != 100 {
		t.Errorf("balance = %d", b1.bal())
	}
}

func TestSequentialTransactions(t *testing.T) {
	b1, b2 := newBank(100), newBank(100)
	_, uris, coord := deployBanks(t, b1, b2)
	for i, amount := range []int64{10, 20, 30} {
		id := "seq" + string(rune('0'+i))
		if err := runTxn(t, coord, uris, id, amount, 0); err != nil {
			t.Fatalf("txn %s: %v", id, err)
		}
		for _, b := range []*bank{b1, b2} {
			<-b.decided
		}
	}
	if b1.bal() != 40 || b2.bal() != 40 {
		t.Errorf("balances = %d, %d; want 40, 40", b1.bal(), b2.bal())
	}
}

func TestCoordinatorValidation(t *testing.T) {
	_, _, coord := deployBanks(t, newBank(1))
	reg, err := coord.FW.Register("test", "system", "c")
	if err != nil {
		t.Fatal(err)
	}
	ctx := agent.NewContext(coord.FW, reg, briefcase.New(), nil, nil)
	c := &txn.Coordinator{}
	if err := c.Run(ctx, "t", briefcase.New()); err == nil {
		t.Error("empty participant list accepted")
	}
}

func TestParticipantIgnoresOrdinaryTraffic(t *testing.T) {
	p := &txn.Participant{}
	s, err := core.NewSystem(simnet.LAN100)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	n, err := s.AddNode("h1", core.NodeOptions{NoCVM: true, NoServices: true})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := n.FW.Register("test", "system", "x")
	if err != nil {
		t.Fatal(err)
	}
	ctx := agent.NewContext(n.FW, reg, briefcase.New(), nil, nil)
	plain := briefcase.New()
	plain.SetString("BODY", "not a txn")
	consumed, err := p.Handle(ctx, plain)
	if consumed || err != nil {
		t.Errorf("plain traffic: consumed=%v err=%v", consumed, err)
	}
}
