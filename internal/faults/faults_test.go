package faults

import (
	"bytes"
	"testing"
	"time"

	"tax/internal/simnet"
)

// drive replays a fixed traffic pattern against a plan and returns its
// canonical log.
func drive(t *testing.T, p *Plan) []byte {
	t.Helper()
	pairs := [][2]string{{"a", "b"}, {"b", "c"}, {"a", "c"}}
	for i := 0; i < 50; i++ {
		for _, pr := range pairs {
			p.Decide(pr[0], pr[1], time.Duration(i)*time.Millisecond, 100+i)
		}
	}
	log, err := p.LogJSON()
	if err != nil {
		t.Fatalf("LogJSON: %v", err)
	}
	return log
}

func TestPlanDeterministicLog(t *testing.T) {
	cfg := Config{Seed: 42, Drop: 0.2, Duplicate: 0.1, Delay: 0.3, MaxDelay: time.Millisecond, Corrupt: 0.05}
	a := drive(t, New(cfg))
	b := drive(t, New(cfg))
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different logs:\n%s\n----\n%s", a, b)
	}
	if len(New(Config{Seed: 42}).Log()) != 0 {
		t.Fatalf("zero-probability plan recorded faults")
	}
	c := drive(t, New(Config{Seed: 43, Drop: 0.2, Duplicate: 0.1, Delay: 0.3, MaxDelay: time.Millisecond, Corrupt: 0.05}))
	if bytes.Equal(a, c) {
		t.Fatalf("different seeds produced identical logs")
	}
}

func TestPlanInterleavingInvariance(t *testing.T) {
	cfg := Config{Seed: 7, Drop: 0.5}
	// Same per-pair traffic, different global interleaving: the canonical
	// log must not change.
	p1 := New(cfg)
	for i := 0; i < 20; i++ {
		p1.Decide("a", "b", 0, 10)
		p1.Decide("b", "a", 0, 10)
	}
	p2 := New(cfg)
	for i := 0; i < 20; i++ {
		p2.Decide("a", "b", 0, 10)
	}
	for i := 0; i < 20; i++ {
		p2.Decide("b", "a", 0, 10)
	}
	l1, _ := p1.LogJSON()
	l2, _ := p2.LogJSON()
	if !bytes.Equal(l1, l2) {
		t.Fatalf("interleaving changed the canonical log:\n%s\n----\n%s", l1, l2)
	}
}

func TestScheduledEventsFireInOrder(t *testing.T) {
	net := simnet.New(simnet.LAN100)
	ha, err := net.AddHost("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddHost("b"); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()

	p := New(Config{Seed: 1})
	p.Schedule(
		Event{At: 10 * time.Millisecond, Op: OpHeal, A: "a", B: "b"},
		Event{At: 5 * time.Millisecond, Op: OpPartition, A: "a", B: "b"},
		Event{At: 20 * time.Millisecond, Op: OpCrash, A: "b"},
		Event{At: 30 * time.Millisecond, Op: OpRestart, A: "b"},
	)
	p.Bind(net)

	if err := ha.Send("b", []byte("x")); err != nil {
		t.Fatalf("send before any event: %v", err)
	}
	// Advance past partition time: the next decision applies it, and the
	// send fails.
	ha.Clock().AdvanceTo(6 * time.Millisecond)
	if err := ha.Send("b", []byte("x")); err == nil {
		t.Fatalf("send during scheduled partition succeeded")
	} else if !net.Partitioned("a", "b") {
		t.Fatalf("partition event did not apply (err=%v)", err)
	}
	ha.Clock().AdvanceTo(11 * time.Millisecond)
	if err := ha.Send("b", []byte("x")); err != nil {
		t.Fatalf("send after scheduled heal: %v", err)
	}
	ha.Clock().AdvanceTo(21 * time.Millisecond)
	if err := ha.Send("b", []byte("x")); err == nil || !net.Crashed("b") {
		t.Fatalf("crash event did not apply (err=%v)", err)
	}
	ha.Clock().AdvanceTo(31 * time.Millisecond)
	if err := ha.Send("b", []byte("x")); err != nil {
		t.Fatalf("send after scheduled restart: %v", err)
	}
	applied := p.Applied()
	if len(applied) != 4 {
		t.Fatalf("applied %d events, want 4: %+v", len(applied), applied)
	}
	wantOps := []string{OpPartition, OpHeal, OpCrash, OpRestart}
	for i, op := range wantOps {
		if applied[i].Op != op {
			t.Fatalf("applied[%d] = %s, want %s", i, applied[i].Op, op)
		}
	}
}
