// Package faults turns the simulated network into a deterministic chaos
// testbed: a seeded Plan decides, on every inter-host transfer, whether
// the message is dropped, duplicated, delayed or corrupted, and applies
// scheduled host crashes, restarts, partitions and heals as virtual time
// passes — same seed, same failure sequence, no sleeps.
//
// Determinism under concurrency is the design constraint. Transfers from
// different hosts race in real time, so a single shared RNG would make
// the fault sequence depend on goroutine interleaving. The Plan instead
// derives one RNG per directed host pair (seeded from the plan seed and
// the pair's names) and consumes a fixed number of draws per decision,
// so each pair sees an identical fault sequence on every run regardless
// of how the pairs interleave globally.
package faults

import (
	"encoding/json"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"time"

	"tax/internal/simnet"
)

// Config parameterizes a fault plan. Probabilities are per transfer in
// [0, 1]; zero disables the corresponding fault class.
type Config struct {
	// Seed feeds every per-pair RNG; the same seed reproduces the same
	// per-pair fault sequence.
	Seed int64
	// Drop is the probability a transfer is lost in flight.
	Drop float64
	// Duplicate is the probability a delivered transfer arrives twice.
	Duplicate float64
	// Delay is the probability a delivered transfer is jittered.
	Delay float64
	// MaxDelay bounds the injected jitter; default 2ms when Delay > 0.
	MaxDelay time.Duration
	// Corrupt is the probability a delivered transfer's payload is
	// damaged in flight.
	Corrupt float64
}

// Scheduled fault operations.
const (
	// OpCrash takes a host's transport down (simnet.Crash).
	OpCrash = "crash"
	// OpRestart brings a crashed host back (simnet.Restart).
	OpRestart = "restart"
	// OpPartition cuts a host pair (simnet.Partition).
	OpPartition = "partition"
	// OpHeal restores a cut pair (simnet.Heal).
	OpHeal = "heal"
)

// Event is one scheduled fault: at virtual time At, apply Op to host A
// (and B for pair operations). Events fire lazily — when the first
// transfer decision observes a sender clock at or past At — which is the
// only notion of "now" a virtual-time simulation has.
type Event struct {
	At time.Duration `json:"at"`
	Op string        `json:"op"`
	A  string        `json:"a"`
	B  string        `json:"b,omitempty"`
}

// Record is one fault the plan injected, for the deterministic log: the
// Seq-th decision on the From→To pair at virtual time At took Action.
// Pass-through decisions are not recorded.
type Record struct {
	From   string        `json:"from"`
	To     string        `json:"to"`
	Seq    int           `json:"seq"`
	At     time.Duration `json:"at"`
	Action string        `json:"action"`
	Delay  time.Duration `json:"delay,omitempty"`
}

type pairState struct {
	rng *rand.Rand
	seq int
}

// Plan is a deterministic fault injector. Create with New, attach with
// Bind, and read the injected-fault log with Log/LogJSON afterwards.
type Plan struct {
	cfg Config

	mu      sync.Mutex
	net     *simnet.Network
	pairs   map[[2]string]*pairState
	events  []Event // sorted by At, stable
	nextEv  int
	applied  []Event
	records  []Record
	applyObs func(Event)
}

var _ simnet.Injector = (*Plan)(nil)

// New creates a plan from the config.
func New(cfg Config) *Plan {
	if cfg.Delay > 0 && cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Millisecond
	}
	return &Plan{cfg: cfg, pairs: make(map[[2]string]*pairState)}
}

// Schedule adds fault events to the plan (before or after Bind).
func (p *Plan) Schedule(evs ...Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.events = append(p.events, evs...)
	rest := p.events[p.nextEv:]
	sort.SliceStable(rest, func(i, j int) bool { return rest[i].At < rest[j].At })
}

// Bind attaches the plan to the network as its fault injector.
func (p *Plan) Bind(net *simnet.Network) {
	p.mu.Lock()
	p.net = net
	p.mu.Unlock()
	net.SetInjector(p)
}

// Decide implements simnet.Injector. It first applies scheduled events
// due at or before the observed virtual time, then draws this pair's
// next decision. Exactly five draws are consumed per call whatever the
// outcome, keeping each pair's sequence aligned across runs.
func (p *Plan) Decide(from, to string, now time.Duration, size int) simnet.Decision {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.applyDueLocked(now)

	key := [2]string{from, to}
	ps := p.pairs[key]
	if ps == nil {
		ps = &pairState{rng: rand.New(rand.NewSource(pairSeed(p.cfg.Seed, from, to)))}
		p.pairs[key] = ps
	}
	ps.seq++
	fDrop := ps.rng.Float64()
	fDup := ps.rng.Float64()
	fDelay := ps.rng.Float64()
	fCorrupt := ps.rng.Float64()
	jitter := time.Duration(ps.rng.Int63())
	if p.cfg.MaxDelay > 0 {
		jitter %= p.cfg.MaxDelay + 1
	}

	var d simnet.Decision
	rec := func(action string, delay time.Duration) {
		p.records = append(p.records, Record{
			From: from, To: to, Seq: ps.seq, At: now, Action: action, Delay: delay,
		})
	}
	if fDrop < p.cfg.Drop {
		d.Drop = true
		rec("drop", 0)
		return d
	}
	if fDup < p.cfg.Duplicate {
		d.Duplicate = true
		rec("dup", 0)
	}
	if fDelay < p.cfg.Delay {
		d.Delay = jitter
		rec("delay", jitter)
	}
	if fCorrupt < p.cfg.Corrupt {
		d.Corrupt = true
		rec("corrupt", 0)
	}
	return d
}

// SetApplyObserver installs fn, called once per scheduled event as it
// fires (after the network call that applied it). It runs while p.mu is
// held, so fn must be quick and must not call back into the plan; an
// observability plane uses it to journal topology events (partition/heal
// — crash/restart reach the journal through the network's own hooks, so
// observers typically skip those to avoid double entries).
func (p *Plan) SetApplyObserver(fn func(Event)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.applyObs = fn
}

// applyDueLocked fires scheduled events whose time has come. Callers
// hold p.mu; the network lock is taken by the calls below, never the
// other way around.
func (p *Plan) applyDueLocked(now time.Duration) {
	for p.nextEv < len(p.events) && p.events[p.nextEv].At <= now {
		ev := p.events[p.nextEv]
		p.nextEv++
		if p.net == nil {
			continue
		}
		switch ev.Op {
		case OpCrash:
			p.net.Crash(ev.A)
		case OpRestart:
			p.net.Restart(ev.A)
		case OpPartition:
			p.net.Partition(ev.A, ev.B)
		case OpHeal:
			p.net.Heal(ev.A, ev.B)
		}
		p.applied = append(p.applied, ev)
		if p.applyObs != nil {
			p.applyObs(ev)
		}
	}
}

// Log returns the injected-fault records in canonical order — by pair,
// then per-pair sequence — which is identical across runs of the same
// seed even though the pairs' real-time interleaving is not.
func (p *Plan) Log() []Record {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := append([]Record(nil), p.records...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		if out[i].To != out[j].To {
			return out[i].To < out[j].To
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Applied returns the scheduled events that have fired, in firing order.
func (p *Plan) Applied() []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Event(nil), p.applied...)
}

// LogJSON renders the canonical log (records plus applied events) as
// deterministic JSON: byte-identical across runs with the same seed and
// traffic, the chaos suite's reproducibility check.
func (p *Plan) LogJSON() ([]byte, error) {
	doc := struct {
		Seed    int64    `json:"seed"`
		Applied []Event  `json:"applied"`
		Records []Record `json:"records"`
	}{Seed: p.cfg.Seed, Applied: p.Applied(), Records: p.Log()}
	if doc.Applied == nil {
		doc.Applied = []Event{}
	}
	if doc.Records == nil {
		doc.Records = []Record{}
	}
	return json.MarshalIndent(doc, "", "  ")
}

// pairSeed derives a per-directed-pair seed from the plan seed.
func pairSeed(seed int64, from, to string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(from))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(to))
	return seed ^ int64(h.Sum64())
}
