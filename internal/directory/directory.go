// Package directory is the sharded, replicated, lease-based
// name→location plane behind the §4 "location independent naming"
// service.
//
// The paper keeps naming as infrastructure every agent platform absorbs;
// this reproduction started with the same shape — one naming.Table on
// one host — which has two production failures baked in: the table is a
// scalability bottleneck at fleet scale (10^6 registered agents funnel
// through one map and one host's link), and a crash of the node holding
// it silently strands every binding forever. This package replaces it
// with a directory plane:
//
//   - Names are consistent-hashed across N directory nodes (virtual-node
//     ring, configurable replication factor R). Ring membership is static
//     per deployment; the ring is pure arithmetic, so every client and
//     server computes identical ownership with no coordination.
//
//   - Every binding is held under a lease on the virtual clock: an
//     update binds name→location for TTL, renewals (the rearguard /
//     location-transparent wrapper re-binding on every hop) extend it,
//     and a binding whose lease expired resolves to a typed ErrExpired —
//     never to a dead location. A crashed agent's binding dies with its
//     lease instead of lingering forever (the stale-binding bug of the
//     single-node table).
//
//   - Writes are coordinated by the shard owner: it assigns the
//     binding's next version, journals it in the host's file cabinet
//     (crash-durable before anything is acknowledged), forwards it to
//     the R-1 replicas, and acknowledges the client only after every
//     replica has journaled its copy. A write that cannot reach its
//     replicas fails with the typed ErrNoQuorum — it is not
//     acknowledged, so the no-lost-acknowledgement invariant never
//     depends on an unreplicated record.
//
//   - Lookups go to the owner and fail over to replicas when the owner
//     is down or partitioned. Because acknowledged writes are on every
//     replica, a failed-over lookup still serves the latest acknowledged
//     version.
//
//   - Replicas converge by version: every record carries a per-name
//     version assigned only by the shard owner, Apply is a
//     version-ordered merge (idempotent, commutative, duplicate-frame
//     safe), drops are tombstones with versions of their own, and a
//     rejoining node anti-entropy-pulls from its peers and merges — so
//     recovery never resurrects a dropped binding and never regresses a
//     binding to an older location.
//
// The chaostest directory sweep crashes and partitions directory nodes
// at seeded points during a register/move/lookup storm and asserts the
// two plane-wide invariants: no acknowledged registration is ever lost,
// and no name ever resolves to two live locations at one version.
package directory

import (
	"errors"

	"tax/internal/firewall"
)

// Typed naming-plane errors. They cross the wire as RemoteError codes
// (ns_unbound, ns_expired, ns_no_quorum), so errors.Is holds across
// hosts — a lookup RPC that failed on a remote directory node still
// classifies on the caller's side.
var (
	// ErrUnbound is returned when a name has no binding (or only a drop
	// tombstone).
	ErrUnbound = errors.New("naming: name not bound")
	// ErrExpired is returned when a name's binding exists but its lease
	// ran out: the location on record may be dead and is not served.
	ErrExpired = errors.New("naming: binding lease expired")
	// ErrNoQuorum is returned when a write could not be acknowledged by
	// the full replica set; the write is not acknowledged and may or may
	// not survive (retry until acknowledged).
	ErrNoQuorum = errors.New("naming: no replication quorum")
	// ErrNotOwner is returned when a write reaches a directory node that
	// does not own the name's shard (a mis-routed client).
	ErrNotOwner = errors.New("naming: not the shard owner")
)

// Wire codes for the naming plane (PR 5 error taxonomy).
func init() {
	firewall.RegisterErrorCode("ns_unbound", ErrUnbound)
	firewall.RegisterErrorCode("ns_expired", ErrExpired)
	firewall.RegisterErrorCode("ns_no_quorum", ErrNoQuorum)
	firewall.RegisterErrorCode("ns_not_owner", ErrNotOwner)
}

// Directory service operations (services.FolderOp values). The first
// three are the public client protocol shared with the single-node
// naming service; the rest are plane-internal.
const (
	// OpUpdate binds (or renews) name → location under a fresh lease.
	OpUpdate = "update"
	// OpLookup resolves a name to its current location.
	OpLookup = "lookup"
	// OpDrop removes a binding (a replicated tombstone).
	OpDrop = "drop"
	// OpApply is the replica write path: the shard owner forwards a
	// versioned record; the replica journals and acknowledges.
	OpApply = "apply"
	// OpPull is the anti-entropy path: a rejoining node asks a peer for
	// every record it should hold; the peer answers with encoded rows.
	OpPull = "pull"
)

// Briefcase folders of the directory protocol.
const (
	// FolderName is the stable agent name being bound or resolved.
	FolderName = "_NSNAME"
	// FolderLocation is the routable agent URI bound to the name.
	FolderLocation = "_NSLOC"
	// FolderVersion carries a binding's version (decimal).
	FolderVersion = "_NSVER"
	// FolderExpire carries a binding's lease expiry in virtual
	// nanoseconds (decimal).
	FolderExpire = "_NSEXP"
	// FolderDropped marks a record as a tombstone ("1").
	FolderDropped = "_NSDROP"
	// FolderRows carries encoded binding records (apply forwards and
	// pull replies).
	FolderRows = "_NSROWS"
	// FolderNode names the requesting node in a pull.
	FolderNode = "_NSNODE"
)
