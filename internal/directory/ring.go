package directory

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per directory node when a
// ring is built with vnodes <= 0. 64 points per node keeps the maximum
// shard imbalance under ~20% at any node count the plane targets while
// the ring stays small enough to binary-search in nanoseconds.
const DefaultVNodes = 64

// Ring is a consistent-hash ring over the directory nodes: each node
// contributes VNodes points, a name hashes to a position, and the next
// Replicas distinct nodes clockwise own it (the first is the shard
// owner, the rest are replicas). The ring is immutable after NewRing
// and pure arithmetic — every participant derives identical ownership
// from the same membership list, with no coordination protocol.
type Ring struct {
	nodes    []string
	vnodes   int
	replicas int
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring from the node list. vnodes <= 0 uses
// DefaultVNodes; replicas is clamped to [1, len(nodes)]. The node list
// is copied and deduplicated order-independently (membership is a set).
func NewRing(nodes []string, vnodes, replicas int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("directory: ring needs at least one node")
	}
	set := make(map[string]bool, len(nodes))
	uniq := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("directory: empty node name in ring")
		}
		if !set[n] {
			set[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	if replicas < 1 {
		replicas = 1
	}
	if replicas > len(uniq) {
		replicas = len(uniq)
	}
	r := &Ring{nodes: uniq, vnodes: vnodes, replicas: replicas}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for _, n := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(n + "#" + strconv.Itoa(v)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (astronomically rare) break by node name so the ring
		// stays a pure function of membership.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// MustRing is NewRing for static configuration; it panics on error.
func MustRing(nodes []string, vnodes, replicas int) *Ring {
	r, err := NewRing(nodes, vnodes, replicas)
	if err != nil {
		panic(err)
	}
	return r
}

// ringHash is the ring's position function (FNV-1a, stable across
// processes and releases — ownership must be a pure function of the
// membership list).
func ringHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// Nodes returns the ring membership, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Replicas returns the replication factor (owner included).
func (r *Ring) Replicas() int { return r.replicas }

// VNodes returns the virtual-node count per node.
func (r *Ring) VNodes() int { return r.vnodes }

// Owners returns the nodes holding a name, owner first, then the
// replicas clockwise. Always returns exactly Replicas() distinct nodes.
func (r *Ring) Owners(name string) []string {
	out := make([]string, 0, r.replicas)
	r.ownersAppend(name, &out)
	return out
}

// ownersAppend fills out with the owner set without allocating beyond
// the caller's slice (hot-path form for servers validating ownership).
func (r *Ring) ownersAppend(name string, out *[]string) {
	h := ringHash(name)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := 0
	for n := 0; n < len(r.points) && seen < r.replicas; n++ {
		p := r.points[(i+n)%len(r.points)]
		dup := false
		for _, got := range *out {
			if got == p.node {
				dup = true
				break
			}
		}
		if !dup {
			*out = append(*out, p.node)
			seen++
		}
	}
}

// Owner returns the shard owner of a name.
func (r *Ring) Owner(name string) string {
	h := ringHash(name)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Holds reports whether node is in the owner set of name.
func (r *Ring) Holds(node, name string) bool {
	for _, n := range r.Owners(name) {
		if n == node {
			return true
		}
	}
	return false
}

// Describe renders the ring for the management plane: one row per node
// with its virtual-node count and its share of a deterministic sample
// of the keyspace (10,000 probe names), plus a header row with the
// replication factor. Byte-identical for identical membership.
func (r *Ring) Describe() []string {
	const probes = 10_000
	counts := make(map[string]int, len(r.nodes))
	for i := 0; i < probes; i++ {
		counts[r.Owner("probe:"+strconv.Itoa(i))]++
	}
	rows := make([]string, 0, len(r.nodes)+1)
	rows = append(rows, fmt.Sprintf("ring|nodes=%d|vnodes=%d|replicas=%d", len(r.nodes), r.vnodes, r.replicas))
	for _, n := range r.nodes {
		rows = append(rows, fmt.Sprintf("node|%s|points=%d|share=%.1f%%", n, r.vnodes,
			float64(counts[n])*100/probes))
	}
	return rows
}
