package directory_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"tax/internal/agent"
	"tax/internal/briefcase"
	"tax/internal/core"
	"tax/internal/directory"
	"tax/internal/naming"
	"tax/internal/services"
	"tax/internal/simnet"
)

var planeNodes = []string{"d1", "d2", "d3"}

// newPlane boots a 3-member directory plane plus one plain client host.
func newPlane(t *testing.T, cfg core.DirectoryConfig) (*core.System, *directory.Ring, *agent.Context) {
	t.Helper()
	s, err := core.NewSystem(simnet.LAN100)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	cfg.Nodes = planeNodes
	ring, err := s.EnableDirectory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range append(append([]string(nil), planeNodes...), "c") {
		if _, err := s.AddNode(h, core.NodeOptions{NoCVM: true}); err != nil {
			t.Fatal(err)
		}
	}
	cn, err := s.Node("c")
	if err != nil {
		t.Fatal(err)
	}
	reg, err := cn.FW.Register("test", "system", "caller")
	if err != nil {
		t.Fatal(err)
	}
	return s, ring, agent.NewContext(cn.FW, reg, briefcase.New(), nil, nil)
}

func TestPlaneBindLookupDrop(t *testing.T) {
	s, ring, ctx := newPlane(t, core.DirectoryConfig{AckTimeout: 2 * time.Second})
	c, err := s.DirectoryClient()
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"alice", "bob", "carol", "dave", "erin"}
	for i, n := range names {
		if err := c.Bind(ctx, n, "tacoma://h"+string(rune('1'+i))+"//vm_go"); err != nil {
			t.Fatalf("bind %s: %v", n, err)
		}
	}
	for i, n := range names {
		b, err := c.Resolve(ctx, n)
		if err != nil {
			t.Fatalf("resolve %s: %v", n, err)
		}
		if want := "tacoma://h" + string(rune('1'+i)) + "//vm_go"; b.Location != want {
			t.Fatalf("resolve %s = %q, want %q", n, b.Location, want)
		}
		if b.Version != 1 || b.Expires == 0 {
			t.Fatalf("resolve %s binding = %+v, want v1 with a lease", n, b)
		}
	}
	// Acknowledged writes are on every replica (not just the owner).
	for _, n := range names {
		for _, member := range ring.Owners(n) {
			node, err := s.Node(member)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := node.Dir.Shard().Get(n); !ok {
				t.Fatalf("acked binding %s missing on replica %s", n, member)
			}
		}
	}
	// A re-bind renews and bumps the version.
	if err := c.Bind(ctx, "alice", "tacoma://h9//vm_go"); err != nil {
		t.Fatal(err)
	}
	if b, err := c.Resolve(ctx, "alice"); err != nil || b.Version != 2 || b.Location != "tacoma://h9//vm_go" {
		t.Fatalf("re-bind = %+v, %v", b, err)
	}
	// Drop is typed across the wire: errors.Is sees naming.ErrUnbound
	// even though the verdict came from a remote directory node.
	if err := c.Drop(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Resolve(ctx, "alice"); !errors.Is(err, naming.ErrUnbound) {
		t.Fatalf("dropped resolve err = %v, want ns_unbound", err)
	}
	if _, err := c.Resolve(ctx, "never-bound"); !errors.Is(err, directory.ErrUnbound) {
		t.Fatalf("unbound resolve err = %v, want ns_unbound", err)
	}
}

func TestPlaneOwnerCrashFailover(t *testing.T) {
	s, ring, ctx := newPlane(t, core.DirectoryConfig{AckTimeout: time.Second})
	c, _ := s.DirectoryClient()
	c.Timeout = 500 * time.Millisecond

	const name = "wanderer"
	if err := c.Bind(ctx, name, "tacoma://h1//vm_go"); err != nil {
		t.Fatal(err)
	}
	owner := ring.Owner(name)
	s.Net.Crash(owner)

	// Lookup fails over to the replica and still serves the acked write.
	b, err := c.Resolve(ctx, name)
	if err != nil {
		t.Fatalf("failover resolve: %v", err)
	}
	if b.Location != "tacoma://h1//vm_go" || b.Version != 1 {
		t.Fatalf("failover binding = %+v", b)
	}
	// A write needs the owner: while it is down the bind must fail —
	// never a silent ack.
	if err := c.Bind(ctx, name, "tacoma://h2//vm_go"); err == nil {
		t.Fatal("write acked while the shard owner was crashed")
	}

	// The owner rejoins: recovery replays its cabinet and the restart
	// pull reconciles anything it missed; the binding is intact.
	s.Net.Restart(owner)
	ownerNode, _ := s.Node(owner)
	if err := ownerNode.Dir.Resync(); err != nil {
		t.Fatalf("resync: %v", err)
	}
	if b, err := c.Resolve(ctx, name); err != nil || b.Location != "tacoma://h1//vm_go" {
		t.Fatalf("post-restart resolve = %+v, %v", b, err)
	}
}

func TestPlaneLeaseExpiresTyped(t *testing.T) {
	s, ring, ctx := newPlane(t, core.DirectoryConfig{TTL: 50 * time.Millisecond})
	c, _ := s.DirectoryClient()
	const name = "mayfly"
	if err := c.Bind(ctx, name, "tacoma://h1//vm_go"); err != nil {
		t.Fatal(err)
	}
	// The agent stops renewing (its host died); virtual time passes the
	// lease on every member.
	for _, member := range ring.Nodes() {
		n, _ := s.Node(member)
		n.Host.Charge(time.Second)
	}
	_, err := c.Resolve(ctx, name)
	if !errors.Is(err, naming.ErrExpired) {
		t.Fatalf("expired resolve err = %v, want ns_expired", err)
	}
}

func TestPlaneMisroutedWriteTyped(t *testing.T) {
	s, ring, ctx := newPlane(t, core.DirectoryConfig{})
	_ = s
	const name = "misroute"
	owner := ring.Owner(name)
	var wrong string
	for _, n := range ring.Nodes() {
		if n != owner {
			wrong = n
			break
		}
	}
	req := briefcase.New()
	req.SetString(services.FolderOp, directory.OpUpdate)
	req.SetString(directory.FolderName, name)
	req.SetString(directory.FolderLocation, "tacoma://h1//vm_go")
	_, err := ctx.MeetDirect(directory.ServiceURI(wrong), req, 2*time.Second)
	if !errors.Is(err, directory.ErrNotOwner) {
		t.Fatalf("misrouted write err = %v, want ns_not_owner", err)
	}
}

func TestPlaneManagementRows(t *testing.T) {
	s, ring, ctx := newPlane(t, core.DirectoryConfig{})
	c, _ := s.DirectoryClient()
	for _, n := range []string{"alice", "bob", "carol"} {
		if err := c.Bind(ctx, n, "tacoma://h1/alice/webbot:2a"); err != nil {
			t.Fatal(err)
		}
	}
	node, _ := s.Node(ring.Nodes()[0])
	for verb, want := range map[string]string{
		"ring":   "ring|nodes=3",
		"counts": "counts|node=" + node.Name,
		"leases": "lease|",
		"health": "self|" + node.Name,
	} {
		rows, err := node.Dir.Rows(verb)
		if err != nil {
			t.Fatalf("rows(%s): %v", verb, err)
		}
		if len(rows) == 0 || !strings.Contains(strings.Join(rows, "\n"), want) {
			t.Fatalf("rows(%s) = %v, want %q", verb, rows, want)
		}
	}
	// Instance ids are masked so two seeded runs render byte-identically.
	rows, _ := node.Dir.Rows("leases")
	joined := strings.Join(rows, "\n")
	if strings.Contains(joined, ":2a") || !strings.Contains(joined, ":«i»") {
		t.Fatalf("instance ids not masked: %v", rows)
	}
	if _, err := node.Dir.Rows("bogus"); err == nil {
		t.Fatal("unknown verb accepted")
	}
}
