package directory

import (
	"context"
	"errors"
	"fmt"
	"time"

	"tax/internal/agent"
	"tax/internal/briefcase"
	"tax/internal/firewall"
	"tax/internal/services"
)

// Client routes naming RPCs over the directory plane: writes go to the
// name's shard owner (the only version authority), lookups go to the
// owner and fail over to the replicas when the owner is unreachable.
// It satisfies the same Update/Lookup/Drop contract as the single-node
// naming.Client, so the location-transparent wrapper can ride either.
type Client struct {
	// Ring is the plane's ownership function (identical to the servers').
	Ring *Ring
	// Service maps a ring node to its shard service URI; nil = ServiceURI.
	Service func(node string) string
	// Timeout bounds each RPC attempt; zero means 3 seconds.
	Timeout time.Duration
}

func (c Client) timeout() time.Duration {
	if c.Timeout == 0 {
		return 3 * time.Second
	}
	return c.Timeout
}

func (c Client) service(node string) string {
	if c.Service != nil {
		return c.Service(node)
	}
	return ServiceURI(node)
}

// Update binds name to the calling agent's current routable URI (and
// renews its lease). Acknowledged only once every replica holds it.
func (c Client) Update(ctx *agent.Context, name string) error {
	return c.UpdateCtx(context.Background(), ctx, name)
}

// UpdateCtx is Update with cancellation.
func (c Client) UpdateCtx(cctx context.Context, ctx *agent.Context, name string) error {
	return c.BindCtx(cctx, ctx, name, ctx.URI().String())
}

// Bind binds name to an explicit location.
func (c Client) Bind(ctx *agent.Context, name, location string) error {
	return c.BindCtx(context.Background(), ctx, name, location)
}

// BindCtx is Bind with cancellation.
func (c Client) BindCtx(cctx context.Context, ctx *agent.Context, name, location string) error {
	req := briefcase.New()
	req.SetString(services.FolderOp, OpUpdate)
	req.SetString(FolderName, name)
	req.SetString(FolderLocation, location)
	_, err := ctx.MeetDirectCtx(cctx, c.service(c.Ring.Owner(name)), req, c.timeout())
	return err
}

// Lookup resolves name to its current routable URI.
func (c Client) Lookup(ctx *agent.Context, name string) (string, error) {
	return c.LookupCtx(context.Background(), ctx, name)
}

// LookupCtx is Lookup with cancellation.
func (c Client) LookupCtx(cctx context.Context, ctx *agent.Context, name string) (string, error) {
	b, err := c.ResolveCtx(cctx, ctx, name)
	return b.Location, err
}

// Resolve is Lookup returning the full binding (version and lease).
func (c Client) Resolve(ctx *agent.Context, name string) (Binding, error) {
	return c.ResolveCtx(context.Background(), ctx, name)
}

// ResolveCtx resolves against the owner and fails over to replicas on
// transport failures (owner crashed or partitioned). A typed answer
// from any node — bound, unbound, or expired — is definitive and ends
// the failover walk: acknowledged writes are on every replica, so a
// reachable replica serves the latest acknowledged version.
func (c Client) ResolveCtx(cctx context.Context, ctx *agent.Context, name string) (Binding, error) {
	var lastErr error
	for _, node := range c.Ring.Owners(name) {
		req := briefcase.New()
		req.SetString(services.FolderOp, OpLookup)
		req.SetString(FolderName, name)
		resp, err := ctx.MeetDirectCtx(cctx, c.service(node), req, c.timeout())
		if err == nil {
			loc, ok := resp.GetString(FolderLocation)
			if !ok {
				return Binding{}, fmt.Errorf("%w: %q", ErrUnbound, name)
			}
			ver, _ := resp.GetInt(FolderVersion)
			exp, _ := resp.GetInt(FolderExpire)
			return Binding{Name: name, Location: loc, Version: uint64(ver), Expires: time.Duration(exp)}, nil
		}
		var rerr *firewall.RemoteError
		if errors.As(err, &rerr) {
			return Binding{}, err // the plane answered; don't mask it with failover
		}
		lastErr = err
		if cctx.Err() != nil {
			break
		}
	}
	return Binding{}, lastErr
}

// Drop removes a binding (a replicated tombstone).
func (c Client) Drop(ctx *agent.Context, name string) error {
	return c.DropCtx(context.Background(), ctx, name)
}

// DropCtx is Drop with cancellation.
func (c Client) DropCtx(cctx context.Context, ctx *agent.Context, name string) error {
	req := briefcase.New()
	req.SetString(services.FolderOp, OpDrop)
	req.SetString(FolderName, name)
	_, err := ctx.MeetDirectCtx(cctx, c.service(c.Ring.Owner(name)), req, c.timeout())
	return err
}
