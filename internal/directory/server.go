package directory

import (
	"errors"
	"fmt"
	"regexp"
	"sort"
	"time"

	"tax/internal/agent"
	"tax/internal/briefcase"
	"tax/internal/cabinet"
	"tax/internal/firewall"
	"tax/internal/services"
	"tax/internal/vm"
)

// ServiceName is the directory shard service agent's name on every
// plane member ("ag_ns" is the single-node registry; "ag_nsd" is a
// shard daemon of the distributed plane).
const ServiceName = "ag_nsd"

// ServiceURI returns the directory service URI on a plane node.
func ServiceURI(node string) string { return "tacoma://" + node + "//" + ServiceName }

// DefaultTTL is the lease length granted on writes when the plane
// config leaves it zero. 30 virtual seconds is several orders of
// magnitude longer than a LAN hop, so an agent renewing per hop never
// races its own lease, while a crashed agent's binding dies promptly.
const DefaultTTL = 30 * time.Second

// Config describes one node's membership in the directory plane.
type Config struct {
	// Node is this node's name (its simnet host name) in the ring.
	Node string
	// Ring is the plane's ownership function; identical on every member.
	Ring *Ring
	// FW is the node's reference monitor; the shard service and its
	// replication workers register on it.
	FW *firewall.Firewall
	// Principal signs the service agents (the host system principal).
	Principal string
	// Store persists the shard (normally the node's file cabinet); nil
	// keeps the shard volatile.
	Store *cabinet.Store
	// TTL is the lease length granted on writes; zero means DefaultTTL,
	// negative disables expiry.
	TTL time.Duration
	// AckTimeout bounds each replica forward and pull RPC; zero = 3s.
	AckTimeout time.Duration
	// Writers is the replication worker count; zero = 2.
	Writers int
	// Service maps a ring node to its shard service URI; nil = ServiceURI.
	Service func(node string) string
}

func (c Config) ttl() time.Duration {
	switch {
	case c.TTL == 0:
		return DefaultTTL
	case c.TTL < 0:
		return 0
	}
	return c.TTL
}

func (c Config) ackTimeout() time.Duration {
	if c.AckTimeout == 0 {
		return 3 * time.Second
	}
	return c.AckTimeout
}

func (c Config) writers() int {
	if c.Writers <= 0 {
		return 2
	}
	return c.Writers
}

func (c Config) service(node string) string {
	if c.Service != nil {
		return c.Service(node)
	}
	return ServiceURI(node)
}

// Server is one directory plane member: the shard it holds plus the
// serve/replication machinery around it. The serve loop itself never
// performs a remote call — coordinated writes are handed to replication
// workers (each with its own registration and context), so two owners
// forwarding to each other cannot deadlock their serve loops.
type Server struct {
	cfg   Config
	shard *Shard
}

// NewServer builds a plane member. The shard is empty until the
// handler's first run recovers it from the store.
func NewServer(cfg Config) *Server {
	return &Server{cfg: cfg, shard: NewShard(cfg.Store, cfg.ttl())}
}

// Shard exposes the node's shard (management plane, chaostest
// invariant checks).
func (s *Server) Shard() *Shard { return s.shard }

// Ring exposes the plane's ownership function.
func (s *Server) Ring() *Ring { return s.cfg.Ring }

// Node returns this member's ring name.
func (s *Server) Node() string { return s.cfg.Node }

// writeJob is one coordinated record to forward to the replicas. req is
// the client request to acknowledge once every replica journaled the
// record; nil for sweeps (no client waits on a sweep tombstone).
type writeJob struct {
	rec Binding
	req *briefcase.Briefcase
}

// Handler returns the shard service program. Launched like any service
// agent; on restart the same handler recovers the shard from the
// cabinet and anti-entropy-pulls from its peers before serving.
func (s *Server) Handler() vm.Handler {
	return func(ctx *agent.Context) error {
		if err := s.shard.Recover(); err != nil {
			return err
		}
		done := make(chan struct{})
		defer close(done)
		var jobs []chan writeJob
		if s.cfg.Ring.Replicas() > 1 {
			jobs = make([]chan writeJob, s.cfg.writers())
			for i := range jobs {
				jobs[i] = make(chan writeJob, 64)
				go s.replicate(i, jobs[i], done)
			}
			go s.pull(done)
		}
		lastSweep := ctx.Now()
		for {
			req, err := ctx.Await(0)
			if err != nil {
				if errors.Is(err, firewall.ErrKilled) {
					return nil
				}
				return err
			}
			lastSweep = s.maybeSweep(ctx.Now(), lastSweep, jobs)
			resp, err := s.serve(ctx, req, jobs)
			if err != nil {
				e := briefcase.New()
				e.SetString(firewall.FolderKind, firewall.KindError)
				firewall.SetError(e, err)
				_ = ctx.Reply(req, e)
				continue
			}
			if resp != nil {
				_ = ctx.Reply(req, resp)
			}
		}
	}
}

// serve handles one request. A nil, nil return means the request was
// handed to a replication worker, which replies when the record is on
// every replica.
func (s *Server) serve(ctx *agent.Context, req *briefcase.Briefcase, jobs []chan writeJob) (*briefcase.Briefcase, error) {
	op, _ := req.GetString(services.FolderOp)
	switch op {
	case OpUpdate, OpDrop:
		name, _ := req.GetString(FolderName)
		if name == "" {
			return nil, errors.New("directory: write without name")
		}
		if s.cfg.Ring.Owner(name) != s.cfg.Node {
			return nil, fmt.Errorf("%w: %q is owned by %s", ErrNotOwner, name, s.cfg.Ring.Owner(name))
		}
		loc := ""
		if op == OpUpdate {
			var ok bool
			loc, ok = req.GetString(FolderLocation)
			if !ok {
				// Default to the authenticated sender: "I am here now".
				loc, ok = req.GetString(briefcase.FolderSysSender)
				if !ok {
					return nil, errors.New("directory: update without location")
				}
			}
		}
		rec, err := s.shard.Coordinate(name, loc, op == OpDrop, ctx.Now())
		if err != nil {
			return nil, err
		}
		if jobs == nil {
			return ackFor(rec), nil // replication factor 1: local journal is the quorum
		}
		jobs[int(ringHash(name)%uint64(len(jobs)))] <- writeJob{rec: rec, req: req}
		return nil, nil
	case OpLookup:
		name, _ := req.GetString(FolderName)
		if name == "" {
			return nil, errors.New("directory: lookup without name")
		}
		b, err := s.shard.LookupAt(name, ctx.Now())
		if err != nil {
			return nil, err
		}
		resp := ackFor(b)
		resp.SetString(FolderLocation, b.Location)
		return resp, nil
	case OpApply:
		rows, err := DecodeRows(mustString(req, FolderRows))
		if err != nil {
			return nil, err
		}
		for _, b := range rows {
			if _, err := s.shard.Apply(b); err != nil {
				return nil, err
			}
		}
		resp := briefcase.New()
		resp.SetInt(FolderVersion, int64(len(rows)))
		return resp, nil
	case OpPull:
		peer, _ := req.GetString(FolderNode)
		var rows []Binding
		for _, b := range s.shard.Bindings() {
			if peer == "" || s.cfg.Ring.Holds(peer, b.Name) {
				rows = append(rows, b)
			}
		}
		resp := briefcase.New()
		resp.SetString(FolderRows, EncodeRows(rows))
		return resp, nil
	default:
		return nil, fmt.Errorf("directory: unknown operation %q", op)
	}
}

func mustString(bc *briefcase.Briefcase, folder string) string {
	v, _ := bc.GetString(folder)
	return v
}

// ackFor builds the OK reply for a coordinated or resolved binding.
func ackFor(b Binding) *briefcase.Briefcase {
	resp := briefcase.New()
	resp.SetString(FolderName, b.Name)
	resp.SetInt(FolderVersion, int64(b.Version))
	resp.SetInt(FolderExpire, int64(b.Expires))
	return resp
}

// maybeSweep tombstones expired leases owned by this node, at most once
// per TTL/4 of virtual time. The sweep is a deterministic function of
// the shard and the virtual clock; tombstones replicate like any other
// coordinated write (version bumped by the owner), so replicas converge
// on the sweep too.
func (s *Server) maybeSweep(now, last time.Duration, jobs []chan writeJob) time.Duration {
	ttl := s.cfg.ttl()
	if ttl <= 0 || now-last < ttl/4 {
		return last
	}
	swept, err := s.shard.SweepExpired(now, func(name string) bool {
		return s.cfg.Ring.Owner(name) == s.cfg.Node
	})
	if err != nil {
		return now
	}
	for _, rec := range swept {
		if jobs != nil {
			jobs[int(ringHash(rec.Name)%uint64(len(jobs)))] <- writeJob{rec: rec}
		}
	}
	return now
}

// replicate is a replication worker: it forwards coordinated records to
// the replicas and acknowledges the waiting client only after every
// replica journaled its copy. Any failure turns into a typed ErrNoQuorum
// for the client — the write is not acknowledged, so the plane's
// no-lost-acknowledgement invariant never rests on an unreplicated
// record. Jobs are sharded to workers by name, so forwards for one name
// stay ordered.
func (s *Server) replicate(i int, jobs <-chan writeJob, done <-chan struct{}) {
	reg, err := s.cfg.FW.Register("dirrepl", s.cfg.Principal, fmt.Sprintf("%s.w%d", ServiceName, i))
	if err != nil {
		return
	}
	wctx := agent.NewContext(s.cfg.FW, reg, briefcase.New(), nil, nil)
	for {
		select {
		case <-done:
			return
		case job := <-jobs:
			var ferr error
			for _, peer := range s.cfg.Ring.Owners(job.rec.Name)[1:] {
				req := briefcase.New()
				req.SetString(services.FolderOp, OpApply)
				req.SetString(FolderRows, job.rec.Encode())
				if _, err := wctx.MeetDirect(s.cfg.service(peer), req, s.cfg.ackTimeout()); err != nil {
					if errors.Is(err, firewall.ErrKilled) {
						return
					}
					ferr = fmt.Errorf("%w: replica %s: %v", ErrNoQuorum, peer, err)
					break
				}
			}
			if job.req == nil {
				continue // sweep tombstone: nobody waits for the ack
			}
			var resp *briefcase.Briefcase
			if ferr == nil {
				resp = ackFor(job.rec)
			} else {
				resp = briefcase.New()
				resp.SetString(firewall.FolderKind, firewall.KindError)
				firewall.SetError(resp, ferr)
			}
			if err := wctx.Reply(job.req, resp); err != nil && errors.Is(err, firewall.ErrKilled) {
				return
			}
		}
	}
}

// pull runs the anti-entropy pass: ask every peer for the records this
// node should hold and merge them by version. Run once per (re)launch —
// a rejoining node catches up on writes it missed while down; records it
// journaled before the crash are already back via Shard.Recover. Merge
// by version means a drop tombstone is never resurrected and a newer
// location never regresses.
func (s *Server) pull(done <-chan struct{}) {
	reg, err := s.cfg.FW.Register("dirpull", s.cfg.Principal, ServiceName+".pull")
	if err != nil {
		return
	}
	pctx := agent.NewContext(s.cfg.FW, reg, briefcase.New(), nil, nil)
	for _, peer := range s.cfg.Ring.Nodes() {
		if peer == s.cfg.Node {
			continue
		}
		select {
		case <-done:
			return
		default:
		}
		if err := s.pullFrom(pctx, peer); errors.Is(err, firewall.ErrKilled) {
			return
		}
	}
}

// pullFrom merges one peer's view of this node's records.
func (s *Server) pullFrom(pctx *agent.Context, peer string) error {
	req := briefcase.New()
	req.SetString(services.FolderOp, OpPull)
	req.SetString(FolderNode, s.cfg.Node)
	resp, err := pctx.MeetDirect(s.cfg.service(peer), req, s.cfg.ackTimeout())
	if err != nil {
		return err
	}
	rows, err := DecodeRows(mustString(resp, FolderRows))
	if err != nil {
		return err
	}
	for _, b := range rows {
		if !s.cfg.Ring.Holds(s.cfg.Node, b.Name) {
			continue
		}
		if _, err := s.shard.Apply(b); err != nil {
			return err
		}
	}
	return nil
}

// Resync runs one synchronous anti-entropy round against every peer
// with a fresh registration (management plane and tests: force a node
// that was partitioned through its restart pull to reconverge).
func (s *Server) Resync() error {
	reg, err := s.cfg.FW.Register("dirpull", s.cfg.Principal, ServiceName+".resync")
	if err != nil {
		return err
	}
	defer s.cfg.FW.Unregister(reg)
	pctx := agent.NewContext(s.cfg.FW, reg, briefcase.New(), nil, nil)
	var firstErr error
	for _, peer := range s.cfg.Ring.Nodes() {
		if peer == s.cfg.Node {
			continue
		}
		if err := s.pullFrom(pctx, peer); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// instPattern matches the trailing instance number of an agent URI
// (minted from a process-global counter, so it differs between seeded
// reruns); Rows masks it to keep management output byte-identical.
var instPattern = regexp.MustCompile(`:[0-9a-f]{1,16}$`)

func maskInstance(s string) string {
	return instPattern.ReplaceAllString(s, ":«i»")
}

// Rows renders one management verb for taxctl dir. All output derives
// from the ring and the local shard (sorted, instance ids masked), so
// rows are byte-identical across seeded reruns.
func (s *Server) Rows(verb string) ([]string, error) {
	switch verb {
	case "ring":
		return s.cfg.Ring.Describe(), nil
	case "counts":
		counts := make(map[string]int, len(s.cfg.Ring.Nodes()))
		for _, b := range s.shard.Bindings() {
			if !b.Dropped {
				counts[s.cfg.Ring.Owner(b.Name)]++
			}
		}
		rows := []string{fmt.Sprintf("counts|node=%s|live=%d", s.cfg.Node, s.shard.Len())}
		for _, n := range s.cfg.Ring.Nodes() {
			rows = append(rows, fmt.Sprintf("shard|%s|held_here=%d", n, counts[n]))
		}
		return rows, nil
	case "leases":
		var rows []string
		for _, b := range s.shard.Bindings() {
			state := "live"
			switch {
			case b.Dropped && b.Expired:
				state = "expired"
			case b.Dropped:
				state = "dropped"
			}
			rows = append(rows, fmt.Sprintf("lease|%s|v%d|loc=%s|exp=%d|%s",
				b.Name, b.Version, maskInstance(b.Location), int64(b.Expires), state))
		}
		if rows == nil {
			rows = []string{"lease|none"}
		}
		return rows, nil
	case "health":
		tomb := 0
		for _, b := range s.shard.Bindings() {
			if b.Dropped {
				tomb++
			}
		}
		rows := []string{fmt.Sprintf("self|%s|records=%d|live=%d|tombstones=%d",
			s.cfg.Node, len(s.shard.Bindings()), s.shard.Len(), tomb)}
		peers := s.cfg.Ring.Nodes()
		sort.Strings(peers)
		for _, p := range peers {
			held := 0
			for _, b := range s.shard.Bindings() {
				if s.cfg.Ring.Owner(b.Name) == p {
					held++
				}
			}
			role := "peer"
			if p == s.cfg.Node {
				role = "self"
			}
			rows = append(rows, fmt.Sprintf("replica|%s|%s|owned_records_held=%d", p, role, held))
		}
		return rows, nil
	default:
		return nil, fmt.Errorf("directory: unknown dir verb %q (want ring|counts|leases|health)", verb)
	}
}
