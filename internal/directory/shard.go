package directory

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tax/internal/cabinet"
)

// Binding is one versioned name→location record. Versions are assigned
// only by the name's shard owner, so for a fixed version there is
// exactly one (location, lease) in the whole plane; replicas merge
// records by version and the merge is idempotent and commutative.
type Binding struct {
	Name     string
	Location string
	// Version is the owner-assigned write counter for this name.
	Version uint64
	// Updated is the owner's virtual time of the write.
	Updated time.Duration
	// Expires is the lease deadline in virtual time; 0 means the binding
	// never expires (single-node compatibility mode).
	Expires time.Duration
	// Dropped marks a tombstone: the name was dropped at this version
	// and must not be resurrected by older records.
	Dropped bool
	// Expired distinguishes a lease-expiry sweep tombstone from an
	// explicit drop: a swept name keeps resolving to the typed
	// ErrExpired (its agent went silent), an explicitly dropped one to
	// ErrUnbound.
	Expired bool
}

// LiveAt reports whether the binding resolves at virtual time now.
func (b Binding) LiveAt(now time.Duration) bool {
	return !b.Dropped && (b.Expires == 0 || now < b.Expires)
}

// Record encoding: fields joined by the unit separator, rows by the
// record separator. Agent names and URIs never contain control
// characters, so the framing is unambiguous without quoting.
const (
	fieldSep = "\x1f"
	rowSep   = "\x1e"
)

// Encode renders the binding as one wire/cabinet record.
func (b Binding) Encode() string {
	drop := "0"
	switch {
	case b.Dropped && b.Expired:
		drop = "2"
	case b.Dropped:
		drop = "1"
	}
	return b.Name + fieldSep + b.Location + fieldSep +
		strconv.FormatUint(b.Version, 10) + fieldSep +
		strconv.FormatInt(int64(b.Updated), 10) + fieldSep +
		strconv.FormatInt(int64(b.Expires), 10) + fieldSep + drop
}

// DecodeBinding parses one record produced by Encode.
func DecodeBinding(s string) (Binding, error) {
	parts := strings.Split(s, fieldSep)
	if len(parts) != 6 {
		return Binding{}, fmt.Errorf("directory: malformed record (%d fields)", len(parts))
	}
	ver, err := strconv.ParseUint(parts[2], 10, 64)
	if err != nil {
		return Binding{}, fmt.Errorf("directory: bad version: %w", err)
	}
	upd, err := strconv.ParseInt(parts[3], 10, 64)
	if err != nil {
		return Binding{}, fmt.Errorf("directory: bad update time: %w", err)
	}
	exp, err := strconv.ParseInt(parts[4], 10, 64)
	if err != nil {
		return Binding{}, fmt.Errorf("directory: bad expiry: %w", err)
	}
	return Binding{
		Name:     parts[0],
		Location: parts[1],
		Version:  ver,
		Updated:  time.Duration(upd),
		Expires:  time.Duration(exp),
		Dropped:  parts[5] != "0",
		Expired:  parts[5] == "2",
	}, nil
}

// EncodeRows renders a record batch (pull replies, apply forwards).
func EncodeRows(rows []Binding) string {
	enc := make([]string, len(rows))
	for i, b := range rows {
		enc[i] = b.Encode()
	}
	return strings.Join(enc, rowSep)
}

// DecodeRows parses a record batch.
func DecodeRows(s string) ([]Binding, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, rowSep)
	rows := make([]Binding, len(parts))
	for i, p := range parts {
		b, err := DecodeBinding(p)
		if err != nil {
			return nil, err
		}
		rows[i] = b
	}
	return rows, nil
}

// cabinetPrefix namespaces directory records in the host's file cabinet
// next to the firewall's park/dedup state.
const cabinetPrefix = "ns/"

// Shard holds the bindings a directory node is responsible for (as
// owner or replica). All time is explicit — callers pass the virtual
// now — so the shard itself is deterministic and directly testable.
// With a cabinet attached, every accepted record is journaled before
// the in-memory apply, so an acknowledged write survives a crash.
type Shard struct {
	mu  sync.RWMutex
	m   map[string]Binding
	st  *cabinet.Store
	ttl time.Duration
}

// NewShard builds a shard. store may be nil (volatile, for the
// single-node table mode); ttl is the lease length granted on writes
// (0 = leases never expire).
func NewShard(store *cabinet.Store, ttl time.Duration) *Shard {
	return &Shard{m: make(map[string]Binding), st: store, ttl: ttl}
}

// TTL returns the lease length this shard grants on coordinated writes.
func (s *Shard) TTL() time.Duration { return s.ttl }

// Coordinate performs an owner-side write: it assigns the name's next
// version, stamps a fresh lease, journals the record, and applies it.
// The returned binding is what must be forwarded to the replicas.
func (s *Shard) Coordinate(name, location string, drop bool, now time.Duration) (Binding, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := Binding{
		Name:     name,
		Location: location,
		Version:  s.m[name].Version + 1,
		Updated:  now,
		Dropped:  drop,
	}
	if drop {
		b.Location = ""
	}
	if s.ttl > 0 && !drop {
		b.Expires = now + s.ttl
	}
	if err := s.journal(b); err != nil {
		return Binding{}, err
	}
	s.m[name] = b
	return b, nil
}

// Apply merges a record coordinated elsewhere (replica forward or
// anti-entropy row). Newer versions win; duplicates and stale records
// are no-ops, so Apply is safe under duplicated or reordered frames.
// It reports whether the record was accepted.
func (s *Shard) Apply(b Binding) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.m[b.Name]
	if ok && cur.Version >= b.Version {
		return false, nil
	}
	if err := s.journal(b); err != nil {
		return false, err
	}
	s.m[b.Name] = b
	return true, nil
}

// journal persists one record; caller holds the lock.
func (s *Shard) journal(b Binding) error {
	if s.st == nil {
		return nil
	}
	return s.st.Commit([]cabinet.Op{{Key: cabinetPrefix + b.Name, Value: []byte(b.Encode())}})
}

// LookupAt resolves a name at virtual time now. Missing names and
// tombstones return ErrUnbound; a binding past its lease returns
// ErrExpired (the dead location is withheld).
func (s *Shard) LookupAt(name string, now time.Duration) (Binding, error) {
	s.mu.RLock()
	b, ok := s.m[name]
	s.mu.RUnlock()
	if b.Dropped && b.Expired {
		return Binding{}, fmt.Errorf("%w: %q", ErrExpired, name)
	}
	if !ok || b.Dropped {
		return Binding{}, fmt.Errorf("%w: %q", ErrUnbound, name)
	}
	if b.Expires != 0 && now >= b.Expires {
		return Binding{}, fmt.Errorf("%w: %q", ErrExpired, name)
	}
	return b, nil
}

// Get returns the raw record for a name, expired or not (management
// plane and tests).
func (s *Shard) Get(name string) (Binding, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.m[name]
	return b, ok
}

// SweepExpired tombstones every binding whose lease ran out at now,
// bumping its version so the sweep replicates like any other write.
// owned filters to the names this node coordinates (nil sweeps all —
// only valid when this shard is the sole version authority). It returns
// the swept records, sorted (deterministic per clock state).
func (s *Shard) SweepExpired(now time.Duration, owned func(name string) bool) ([]Binding, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var swept []Binding
	for name, b := range s.m {
		if b.Dropped || b.Expires == 0 || now < b.Expires {
			continue
		}
		if owned != nil && !owned(name) {
			continue
		}
		nb := Binding{Name: name, Version: b.Version + 1, Updated: now, Dropped: true, Expired: true}
		if err := s.journal(nb); err != nil {
			return swept, err
		}
		s.m[name] = nb
		swept = append(swept, nb)
	}
	sort.Slice(swept, func(i, j int) bool { return swept[i].Name < swept[j].Name })
	return swept, nil
}

// Bindings returns every record (tombstones included), sorted by name.
func (s *Shard) Bindings() []Binding {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Binding, 0, len(s.m))
	for _, b := range s.m {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len counts live records (tombstones excluded).
func (s *Shard) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, b := range s.m {
		if !b.Dropped {
			n++
		}
	}
	return n
}

// Recover reloads the shard from its cabinet after a reopen. The
// in-memory map is rebuilt from the journaled records; an acknowledged
// write is by construction on disk, so recovery cannot lose it.
func (s *Shard) Recover() error {
	if s.st == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = make(map[string]Binding)
	for _, key := range s.st.Keys(cabinetPrefix) {
		raw, ok := s.st.Get(key)
		if !ok {
			continue
		}
		b, err := DecodeBinding(string(raw))
		if err != nil {
			return fmt.Errorf("directory: recover %q: %w", key, err)
		}
		s.m[b.Name] = b
	}
	return nil
}
