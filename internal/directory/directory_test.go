package directory

import (
	"errors"
	"testing"
	"time"

	"tax/internal/vclock"

	"tax/internal/cabinet"
)

func TestRingOwnershipDeterministic(t *testing.T) {
	a := MustRing([]string{"d3", "d1", "d2"}, 0, 2)
	b := MustRing([]string{"d1", "d2", "d3"}, 0, 2)
	for _, name := range []string{"alice", "bob", "carol", "agent-17", ""} {
		if got, want := a.Owner(name), b.Owner(name); got != want {
			t.Fatalf("owner(%q) differs across membership orderings: %q vs %q", name, got, want)
		}
		oa, ob := a.Owners(name), b.Owners(name)
		if len(oa) != 2 || len(ob) != 2 {
			t.Fatalf("owners(%q) = %v / %v, want 2 distinct nodes each", name, oa, ob)
		}
		if oa[0] == oa[1] {
			t.Fatalf("owners(%q) not distinct: %v", name, oa)
		}
		if oa[0] != ob[0] || oa[1] != ob[1] {
			t.Fatalf("owners(%q) differ: %v vs %v", name, oa, ob)
		}
		if !a.Holds(oa[0], name) || !a.Holds(oa[1], name) || a.Holds("nope", name) {
			t.Fatalf("Holds inconsistent for %q: %v", name, oa)
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := MustRing([]string{"d1", "d2", "d3", "d4"}, 0, 1)
	counts := map[string]int{}
	for i := 0; i < 10_000; i++ {
		counts[r.Owner("agent-"+string(rune('a'+i%26))+"-"+time.Duration(i).String())]++
	}
	for _, n := range r.Nodes() {
		share := float64(counts[n]) / 10_000
		if share < 0.10 || share > 0.45 {
			t.Fatalf("node %s owns %.1f%% of the keyspace — ring badly unbalanced (%v)", n, share*100, counts)
		}
	}
}

func TestRingReplicasClamped(t *testing.T) {
	r := MustRing([]string{"only"}, 8, 3)
	if got := r.Owners("x"); len(got) != 1 || got[0] != "only" {
		t.Fatalf("single-node ring owners = %v", got)
	}
	if _, err := NewRing(nil, 0, 1); err == nil {
		t.Fatal("empty ring accepted")
	}
}

func TestBindingCodecRoundtrip(t *testing.T) {
	rows := []Binding{
		{Name: "alice", Location: "tacoma://h1/alice/webbot:2a", Version: 7, Updated: 5 * time.Second, Expires: 35 * time.Second},
		{Name: "bob", Version: 3, Updated: time.Second, Dropped: true},
	}
	dec, err := DecodeRows(EncodeRows(rows))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(dec) != 2 || dec[0] != rows[0] || dec[1] != rows[1] {
		t.Fatalf("roundtrip mismatch: %+v", dec)
	}
	if _, err := DecodeBinding("garbage"); err == nil {
		t.Fatal("malformed record accepted")
	}
	if got, err := DecodeRows(""); err != nil || got != nil {
		t.Fatalf("empty batch = %v, %v", got, err)
	}
}

func TestShardVersionedMerge(t *testing.T) {
	s := NewShard(nil, 0)
	b1, err := s.Coordinate("alice", "loc-1", false, time.Second)
	if err != nil || b1.Version != 1 {
		t.Fatalf("coordinate: %+v, %v", b1, err)
	}
	b2, _ := s.Coordinate("alice", "loc-2", false, 2*time.Second)
	if b2.Version != 2 {
		t.Fatalf("second write version = %d", b2.Version)
	}
	// A stale record (duplicated/reordered frame) must not regress.
	if ok, _ := s.Apply(b1); ok {
		t.Fatal("stale apply accepted")
	}
	// A duplicate of the newest record is a no-op, not an error.
	if ok, _ := s.Apply(b2); ok {
		t.Fatal("duplicate apply accepted")
	}
	got, err := s.LookupAt("alice", 2*time.Second)
	if err != nil || got.Location != "loc-2" {
		t.Fatalf("lookup = %+v, %v", got, err)
	}
	// Drop tombstones; an older update must not resurrect it.
	drop, _ := s.Coordinate("alice", "", true, 3*time.Second)
	if !drop.Dropped || drop.Version != 3 {
		t.Fatalf("drop = %+v", drop)
	}
	if ok, _ := s.Apply(b2); ok {
		t.Fatal("tombstoned binding resurrected by older record")
	}
	if _, err := s.LookupAt("alice", 3*time.Second); !errors.Is(err, ErrUnbound) {
		t.Fatalf("dropped lookup err = %v, want ErrUnbound", err)
	}
	if s.Len() != 0 {
		t.Fatalf("Len after drop = %d", s.Len())
	}
}

func TestShardLeases(t *testing.T) {
	s := NewShard(nil, 10*time.Second)
	if _, err := s.Coordinate("alice", "loc-1", false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LookupAt("alice", 9*time.Second); err != nil {
		t.Fatalf("live lease rejected: %v", err)
	}
	if _, err := s.LookupAt("alice", 10*time.Second); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired lease err = %v, want ErrExpired", err)
	}
	// A renewal re-binds past the expiry.
	if _, err := s.Coordinate("alice", "loc-1", false, 12*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LookupAt("alice", 15*time.Second); err != nil {
		t.Fatalf("renewed lease rejected: %v", err)
	}
	// Sweep tombstones only names passing the owner filter.
	_, _ = s.Coordinate("bob", "loc-b", false, 12*time.Second)
	swept, err := s.SweepExpired(time.Hour, func(name string) bool { return name == "alice" })
	if err != nil || len(swept) != 1 || swept[0].Name != "alice" || !swept[0].Dropped {
		t.Fatalf("sweep = %+v, %v", swept, err)
	}
	// A swept name keeps answering with the typed expiry — the caller
	// learns the agent went silent, not that the name never existed.
	if _, err := s.LookupAt("alice", time.Hour); !errors.Is(err, ErrExpired) {
		t.Fatalf("post-sweep lookup = %v, want ErrExpired", err)
	}
	if _, ok := s.Get("bob"); !ok {
		t.Fatal("unowned name swept")
	}
}

func TestShardRecoverFromCabinet(t *testing.T) {
	clock := vclock.NewVirtual()
	store := cabinet.NewStore(cabinet.Options{Clock: clock, SnapshotEvery: -1})
	s := NewShard(store, 0)
	if _, err := s.Coordinate("alice", "loc-1", false, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Coordinate("alice", "loc-2", false, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Coordinate("bob", "", true, 3*time.Second); err != nil {
		t.Fatal(err)
	}

	// Crash: the page cache is lost, the journal survives, a fresh shard
	// recovers every acknowledged record — including the tombstone.
	store.Disk().Crash()
	if _, err := store.Reopen(); err != nil {
		t.Fatalf("reopen: %v", err)
	}
	s2 := NewShard(store, 0)
	if err := s2.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	got, err := s2.LookupAt("alice", 0)
	if err != nil || got.Location != "loc-2" || got.Version != 2 {
		t.Fatalf("recovered binding = %+v, %v", got, err)
	}
	if b, ok := s2.Get("bob"); !ok || !b.Dropped {
		t.Fatalf("recovered tombstone = %+v, %v", b, ok)
	}
}
