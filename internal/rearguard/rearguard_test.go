package rearguard_test

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"tax/internal/agent"
	"tax/internal/briefcase"
	"tax/internal/core"
	"tax/internal/firewall"
	"tax/internal/rearguard"
	"tax/internal/simnet"
	"tax/internal/wrapper"
)

const ckptPath = "/ckpt/guarded"

// newSystem boots a simulated deployment with the checkpoint and beacon
// wrappers deployed on every node.
func newSystem(t *testing.T, hosts ...string) *core.System {
	t.Helper()
	s, err := core.NewSystem(simnet.LAN100)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	for i, h := range hosts {
		opts := core.NodeOptions{NoCVM: true, DedupWindow: 64}
		if i == 0 {
			opts.NameService = true
		}
		if _, err := s.AddNode(h, opts); err != nil {
			t.Fatal(err)
		}
	}
	s.DeployWrapper("checkpoint:"+ckptPath, func() wrapper.Wrapper {
		return &wrapper.Checkpoint{StoreURI: "tacoma://" + hosts[0] + "//ag_fs", Path: ckptPath}
	})
	s.DeployWrapper(rearguard.WrapperName, func() wrapper.Wrapper {
		return &rearguard.Beacon{}
	})
	return s
}

// guardedBriefcase builds an itinerary briefcase wrapped checkpoint-
// outside-beacon (so pre-move snapshots include the _RGLAST stamp).
func guardedBriefcase(stops ...string) *briefcase.Briefcase {
	bc := briefcase.New()
	bc.Ensure(briefcase.FolderSysWrap).AppendString("checkpoint:"+ckptPath, rearguard.WrapperName)
	bc.Ensure(briefcase.FolderHosts).AppendString(stops...)
	firewall.SetRetryPolicy(bc, firewall.RetryPolicy{Attempts: 4, Backoff: 100 * time.Microsecond})
	return bc
}

func newGuard(t *testing.T, home *core.Node, program string) *rearguard.Guard {
	t.Helper()
	g, err := rearguard.NewGuard(rearguard.Config{
		FW: home.FW,
		Launch: func(p, n, prog string, bc *briefcase.Briefcase) (*firewall.Registration, error) {
			return home.VM.Launch(p, n, prog, bc)
		},
		Program:         program,
		Checkpoint:      ckptPath,
		HopDeadline:     400 * time.Millisecond,
		MaxRecoveries:   3,
		ReinsertLastHop: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

// TestGuardCleanItinerary: a fault-free tour completes with zero
// recoveries and Wait returns nil.
func TestGuardCleanItinerary(t *testing.T) {
	s := newSystem(t, "home", "h2", "h3")
	home, _ := s.Node("home")

	var mu sync.Mutex
	var visited []string
	s.DeployProgram("tour", func(ctx *agent.Context) error {
		return agent.RunItinerary(ctx, func(ctx *agent.Context) error {
			mu.Lock()
			visited = append(visited, ctx.Host())
			mu.Unlock()
			return nil
		})
	})

	g := newGuard(t, home, "tour")
	if _, err := g.Launch(guardedBriefcase("tacoma://h2//vm_go", "tacoma://h3//vm_go")); err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(10 * time.Second); err != nil {
		t.Fatalf("clean itinerary: %v", err)
	}
	if n := g.Recoveries(); n != 0 {
		t.Errorf("recoveries = %d, want 0", n)
	}
	mu.Lock()
	got := strings.Join(visited, ",")
	mu.Unlock()
	if got != "home,h2,h3" {
		t.Errorf("visited %s, want home,h2,h3", got)
	}
}

// TestGuardRecoversCrashedHop: h2 crashes (transport-level) while the
// agent is there; the guard times out, restores the pre-move snapshot,
// reinserts the dead stop, and the tour completes via h3 — with the
// still-dead h2 recorded as skipped rather than silently dropped.
func TestGuardRecoversCrashedHop(t *testing.T) {
	s := newSystem(t, "home", "h2", "h3")
	home, _ := s.Node("home")

	var mu sync.Mutex
	var visited []string
	var skipped []string
	crashOnce := make(chan struct{}, 1)
	crashOnce <- struct{}{}

	s.DeployProgram("tour", func(ctx *agent.Context) error {
		err := agent.RunItinerary(ctx, func(ctx *agent.Context) error {
			mu.Lock()
			visited = append(visited, ctx.Host())
			mu.Unlock()
			if ctx.Host() == "h2" {
				select {
				case <-crashOnce:
					// The host drops off the network mid-visit: every
					// report and move from here on is lost.
					s.Net.Crash("h2")
				default:
				}
			}
			return nil
		})
		if err == nil {
			mu.Lock()
			skipped = append(skipped, agent.Skipped(ctx)...)
			mu.Unlock()
		}
		return err
	})

	g := newGuard(t, home, "tour")
	if _, err := g.Launch(guardedBriefcase("tacoma://h2//vm_go", "tacoma://h3//vm_go")); err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(15 * time.Second); err != nil {
		t.Fatalf("guarded itinerary did not recover: %v", err)
	}
	if n := g.Recoveries(); n < 1 {
		t.Errorf("recoveries = %d, want >= 1", n)
	}
	mu.Lock()
	defer mu.Unlock()
	joined := strings.Join(visited, ",")
	if !strings.HasPrefix(joined, "home,h2") {
		t.Errorf("tour never reached h2 before the crash: %s", joined)
	}
	if !strings.Contains(joined[len("home,h2"):], "home") || !strings.HasSuffix(joined, "h3") {
		t.Errorf("recovered tour should resume at home and finish on h3: %s", joined)
	}
	// The reinserted dead stop is skipped, not silently lost.
	found := false
	for _, sk := range skipped {
		if strings.Contains(sk, "h2") {
			found = true
		}
	}
	if !found {
		t.Errorf("dead stop not recorded as skipped: %v", skipped)
	}
	// The recovery is observable: counter bumped and a recover event
	// logged (the system-wide event log is off by default here, so only
	// assert when enabled — the counter always exists).
	if v := home.FW.Telemetry().Registry().Counter("rearguard.recoveries", "host", "home").Value(); v < 1 {
		t.Errorf("rearguard.recoveries = %d, want >= 1", v)
	}
}

// TestGuardFailReportRecoversImmediately: a faulting agent (live host)
// reports the failure, so the guard recovers without waiting out the
// hop deadline, and a poisoned program exhausts the budget with a typed
// error.
func TestGuardFailReportRecoversImmediately(t *testing.T) {
	s := newSystem(t, "home", "h2")
	home, _ := s.Node("home")

	s.DeployProgram("doomed", func(ctx *agent.Context) error {
		return errors.New("poisoned visit")
	})

	g := newGuard(t, home, "doomed")
	if _, err := g.Launch(guardedBriefcase("tacoma://h2//vm_go")); err != nil {
		t.Fatal(err)
	}
	err := g.Wait(10 * time.Second)
	if !errors.Is(err, rearguard.ErrUnrecovered) {
		t.Fatalf("poisoned program: err = %v, want ErrUnrecovered", err)
	}
	if n := g.Recoveries(); n != 4 {
		// MaxRecoveries relaunches plus the final over-budget attempt.
		t.Errorf("recoveries = %d, want 4 (3 relaunches + budget check)", n)
	}
}

// TestGuardMissingSnapshotIsTyped: recovery with no snapshot in the
// store fails with ErrRecoveryFailed, not a hang.
func TestGuardMissingSnapshotIsTyped(t *testing.T) {
	s := newSystem(t, "home")
	home, _ := s.Node("home")

	g, err := rearguard.NewGuard(rearguard.Config{
		FW: home.FW,
		Launch: func(p, n, prog string, bc *briefcase.Briefcase) (*firewall.Registration, error) {
			return home.VM.Launch(p, n, prog, bc)
		},
		Program:     "ghost",
		Checkpoint:  "/ckpt/never-written",
		HopDeadline: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	// No Launch: the watcher is started manually through a silent
	// program that never reports.
	s.DeployProgram("ghost", func(ctx *agent.Context) error {
		// Strip the guard address so the beacon stays silent and the
		// deadline fires.
		ctx.Briefcase().Drop(briefcase.FolderSysRearGuard)
		return nil
	})
	bc := briefcase.New()
	bc.Ensure(briefcase.FolderSysWrap).AppendString(rearguard.WrapperName)
	if _, err := g.Launch(bc); err != nil {
		t.Fatal(err)
	}
	err = g.Wait(10 * time.Second)
	if !errors.Is(err, rearguard.ErrRecoveryFailed) {
		t.Fatalf("err = %v, want ErrRecoveryFailed", err)
	}
}
