// Package rearguard completes the §4 fault-tolerance story: a home-site
// supervisor ("rear guard") that watches an itinerant agent's progress
// reports and, when a hop goes silent past a deadline, restores the
// agent from its last checkpoint snapshot and relaunches the remaining
// itinerary from home.
//
// Two halves cooperate:
//
//   - Beacon is a wrapper travelling with the agent. On every arrival it
//     reports the hop to the guard URI carried in the briefcase's _RGHOME
//     folder; on clean completion it reports done; on a fault it reports
//     the failure. Before each move it records the destination in the
//     travelling _RGLAST folder, so the checkpoint snapshot taken for
//     that move names the hop the agent was heading to when it vanished.
//   - Guard registers with the home firewall, consumes the reports, and
//     declares a hop dead when no report arrives within HopDeadline. It
//     then reads the snapshot back from the home store, optionally
//     reinserts the dead stop at the head of the HOSTS itinerary (a
//     still-dead stop is skipped by agent.RunItinerary, so this retries
//     rather than loops), and relaunches — at most MaxRecoveries times.
//
// Recovery is at-least-once: if the "dead" hop was merely partitioned,
// the original instance may still be running. Visit effects must be
// idempotent for exactly-once outcomes; the chaos tests assert exactly
// that discipline.
package rearguard

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tax/internal/agent"
	"tax/internal/briefcase"
	"tax/internal/firewall"
	"tax/internal/naming"
	"tax/internal/telemetry"
	"tax/internal/wrapper"
)

// WrapperName is the Beacon's name in _WRAP folders.
const WrapperName = "rearguard"

// Folders of the report protocol. _RGHOME (briefcase.FolderSysRearGuard)
// travels in the agent's briefcase; the rest ride report briefcases,
// except _RGLAST which travels so the snapshot captures it.
const (
	// FolderStatus carries the report type: hop, done or fail.
	FolderStatus = "_RGSTAT"
	// FolderHost names the host the report originated on.
	FolderHost = "_RGHOST"
	// FolderCause carries the fault description in a fail report.
	FolderCause = "_RGERR"
	// FolderLastStop records, in the travelling briefcase, the
	// destination of the agent's most recent move.
	FolderLastStop = "_RGLAST"
	// FolderStableName travels in the agent's briefcase and names the
	// binding the Beacon renews in the naming plane on every hop.
	FolderStableName = "_RGSELF"
)

// Report statuses.
const (
	StatusHop  = "hop"
	StatusDone = "done"
	StatusFail = "fail"
)

// Typed terminal outcomes.
var (
	// ErrUnrecovered: the recovery budget (MaxRecoveries) is exhausted
	// and the itinerary still has not completed.
	ErrUnrecovered = errors.New("rearguard: recovery budget exhausted")
	// ErrRecoveryFailed: a recovery attempt itself failed (snapshot
	// unreadable, undecodable, or relaunch rejected).
	ErrRecoveryFailed = errors.New("rearguard: recovery failed")
	// ErrWaitTimeout: Wait's own deadline elapsed before the guard
	// reached a terminal outcome.
	ErrWaitTimeout = errors.New("rearguard: wait timeout")
	// ErrClosed: the guard was closed before a terminal outcome.
	ErrClosed = errors.New("rearguard: guard closed")
)

// Beacon is the travelling half: a wrapper reporting the agent's
// progress to the guard named in the briefcase's _RGHOME folder. All
// reports are best-effort sends — a report lost to the fault being
// survived is exactly the silence the guard's deadline detects.
type Beacon struct {
	// Renew, when non-nil, renews the agent's stable-name lease (the
	// _RGSELF folder) in the naming plane on every hop, the way the
	// guard renews its watch: a travelling agent that keeps arriving
	// keeps its directory binding alive, and one that dies stops
	// renewing and expires to a typed ns_expired. Renewal is
	// best-effort like every beacon report — a renewal lost to the
	// fault being survived is exactly a lease the plane should let
	// lapse.
	Renew naming.Resolver
}

var (
	_ wrapper.Wrapper   = (*Beacon)(nil)
	_ wrapper.Finalizer = (*Beacon)(nil)
)

// Name implements wrapper.Wrapper.
func (b *Beacon) Name() string { return WrapperName }

// Init implements wrapper.Wrapper: every arrival reports a hop and
// renews the agent's stable-name lease.
func (b *Beacon) Init(ctx *agent.Context) error {
	b.report(ctx, StatusHop, "")
	if b.Renew != nil {
		if name, ok := ctx.Briefcase().GetString(FolderStableName); ok && name != "" {
			_ = b.Renew.Update(ctx, name)
		}
	}
	return nil
}

// OnSend implements wrapper.Wrapper: a departing move records its
// destination in the travelling briefcase so the checkpoint snapshot
// (taken by an outer Checkpoint wrapper) names the hop in flight.
func (b *Beacon) OnSend(_ *agent.Context, bc *briefcase.Briefcase) (*briefcase.Briefcase, error) {
	if firewall.Kind(bc) == firewall.KindTransfer {
		if target, ok := bc.GetString(briefcase.FolderSysTarget); ok {
			bc.SetString(FolderLastStop, target)
		}
	}
	return bc, nil
}

// OnReceive implements wrapper.Wrapper (pass-through).
func (b *Beacon) OnReceive(_ *agent.Context, bc *briefcase.Briefcase) (*briefcase.Briefcase, error) {
	return bc, nil
}

// OnDone implements wrapper.Finalizer: clean completion reports done; a
// fault reports fail so the guard can recover without waiting out the
// deadline. A move reports nothing — the next host's Init does.
func (b *Beacon) OnDone(ctx *agent.Context, err error) {
	switch {
	case err == nil:
		b.report(ctx, StatusDone, "")
	case errors.Is(err, agent.ErrMoved):
	default:
		b.report(ctx, StatusFail, err.Error())
	}
}

// report sends one status briefcase to the guard, bypassing wrapper
// interception (a monitoring report must not re-enter the monitor).
func (b *Beacon) report(ctx *agent.Context, status, cause string) {
	guard, ok := ctx.Briefcase().GetString(briefcase.FolderSysRearGuard)
	if !ok {
		return // unguarded agent: the wrapper is inert
	}
	rep := briefcase.New()
	rep.SetString(FolderStatus, status)
	rep.SetString(FolderHost, ctx.Host())
	if cause != "" {
		rep.SetString(FolderCause, cause)
	}
	// Reports inherit the agent's retry policy: they are the liveness
	// signal and should ride out the same lossy path the agent does.
	if pol, ok := ctx.Briefcase().GetString(briefcase.FolderSysRetry); ok {
		rep.SetString(briefcase.FolderSysRetry, pol)
	}
	_ = ctx.ActivateDirect(guard, rep)
}

// Config wires a Guard to its home node. FW, Launch, Program and
// Checkpoint are required.
type Config struct {
	// FW is the home firewall the guard registers with.
	FW *firewall.Firewall
	// Launch relaunches the agent on the home VM (node.VM.Launch).
	Launch func(principal, name, program string, bc *briefcase.Briefcase) (*firewall.Registration, error)
	// Principal and AgentName identify the relaunched instance; Program
	// names its pre-deployed code.
	Principal string
	AgentName string
	Program   string
	// Checkpoint is the snapshot's path in the home store — the same
	// Path the agent's wrapper.Checkpoint writes.
	Checkpoint string
	// Store names the home service holding the snapshot: "ag_fs" (the
	// default, volatile) or "ag_cabinet" for the crash-surviving file
	// cabinet. A guard that must outlive a home-host crash needs the
	// cabinet — it is what Resume reads after a restart.
	Store string
	// HopDeadline declares a hop dead after this much report silence
	// (wall clock; default 2s).
	HopDeadline time.Duration
	// MaxRecoveries bounds relaunches (default 3).
	MaxRecoveries int
	// ReinsertLastHop re-queues the dead stop at the head of the
	// recovered itinerary so its work is retried (and skipped by
	// RunItinerary if the stop is still dead) rather than silently lost.
	ReinsertLastHop bool
	// StoreTimeout bounds the snapshot read (default 5s).
	StoreTimeout time.Duration
}

// Guard is the stationary half: the home-site supervisor.
type Guard struct {
	cfg Config
	reg *firewall.Registration
	ctx *agent.Context

	done chan error
	once sync.Once

	mu         sync.Mutex
	lastHop    string
	recoveries int
}

// NewGuard registers the supervisor with the home firewall. Close it (or
// let a terminal outcome do so) to release the registration.
func NewGuard(cfg Config) (*Guard, error) {
	if cfg.FW == nil || cfg.Launch == nil {
		return nil, errors.New("rearguard: Config.FW and Config.Launch are required")
	}
	if cfg.Program == "" || cfg.Checkpoint == "" {
		return nil, errors.New("rearguard: Config.Program and Config.Checkpoint are required")
	}
	if cfg.HopDeadline <= 0 {
		cfg.HopDeadline = 2 * time.Second
	}
	if cfg.MaxRecoveries <= 0 {
		cfg.MaxRecoveries = 3
	}
	if cfg.StoreTimeout <= 0 {
		cfg.StoreTimeout = 5 * time.Second
	}
	if cfg.Store == "" {
		cfg.Store = "ag_fs"
	}
	if cfg.Principal == "" {
		cfg.Principal = cfg.FW.SystemPrincipal()
	}
	if cfg.AgentName == "" {
		cfg.AgentName = cfg.Program
	}
	reg, err := cfg.FW.Register("rearguard", cfg.FW.SystemPrincipal(), "rg-"+cfg.AgentName)
	if err != nil {
		return nil, err
	}
	return &Guard{
		cfg:  cfg,
		reg:  reg,
		ctx:  agent.NewContext(cfg.FW, reg, briefcase.New(), nil, nil),
		done: make(chan error, 1),
	}, nil
}

// URI returns the guard's routable address — what Launch stamps into the
// agent's _RGHOME folder.
func (g *Guard) URI() string { return g.reg.GlobalURI().String() }

// Launch stamps the briefcase with the guard's address and launches the
// agent on the home VM, then starts supervising. The briefcase's _WRAP
// folder must already name the agent's wrapper stack — conventionally
// the Checkpoint wrapper outside the Beacon, so the pre-move snapshot
// includes the _RGLAST stamp the Beacon just wrote.
func (g *Guard) Launch(bc *briefcase.Briefcase) (*firewall.Registration, error) {
	bc.SetString(briefcase.FolderSysRearGuard, g.URI())
	reg, err := g.cfg.Launch(g.cfg.Principal, g.cfg.AgentName, g.cfg.Program, bc)
	if err != nil {
		g.finish(err)
		return nil, err
	}
	go g.watch()
	return reg, nil
}

// Resume adopts an already-travelling itinerary instead of launching a
// fresh one — the home host crashed and restarted, the original guard
// died with it, and a new guard (same Config, Store pointing at the
// cabinet) picks up from the durable checkpoint. It performs one
// immediate recovery (counted against MaxRecoveries) and then
// supervises as usual. Returns false when that recovery itself reached
// a terminal outcome; Wait reports the detail either way.
func (g *Guard) Resume(cause string) bool {
	if !g.recover(cause) {
		return false
	}
	go g.watch()
	return true
}

// Wait blocks until the guarded itinerary reaches a terminal outcome:
// nil after a done report, ErrUnrecovered / ErrRecoveryFailed when
// recovery gave out, or ErrWaitTimeout when the caller's own deadline
// elapses first (the guard keeps running).
func (g *Guard) Wait(timeout time.Duration) error {
	if timeout <= 0 {
		return <-g.done
	}
	select {
	case err := <-g.done:
		return err
	case <-time.After(timeout):
		return ErrWaitTimeout
	}
}

// Recoveries returns how many relaunches the guard has performed.
func (g *Guard) Recoveries() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.recoveries
}

// Close releases the guard's registration. Safe to call more than once.
func (g *Guard) Close() {
	g.finish(ErrClosed)
}

// finish records the terminal outcome exactly once and releases the
// registration, which also unblocks the watcher's Recv.
func (g *Guard) finish(err error) {
	g.once.Do(func() {
		g.done <- err
		g.cfg.FW.Unregister(g.reg)
	})
}

// watch is the supervisor loop: consume reports, declare death on
// silence, recover until the budget runs out.
func (g *Guard) watch() {
	for {
		rep, err := g.reg.Recv(g.cfg.HopDeadline)
		switch {
		case err == nil:
			status, _ := rep.GetString(FolderStatus)
			host, _ := rep.GetString(FolderHost)
			switch status {
			case StatusDone:
				g.finish(nil)
				return
			case StatusHop:
				g.mu.Lock()
				g.lastHop = host
				g.mu.Unlock()
			case StatusFail:
				cause, _ := rep.GetString(FolderCause)
				if !g.recover(fmt.Sprintf("agent faulted on %s: %s", host, cause)) {
					return
				}
			default:
				// Not a report (stray delivery); ignore.
			}
		case errors.Is(err, firewall.ErrRecvTimeout):
			g.mu.Lock()
			last := g.lastHop
			g.mu.Unlock()
			if !g.recover(fmt.Sprintf("no report within %v (last hop %q)", g.cfg.HopDeadline, last)) {
				return
			}
		default:
			// Killed or firewall closed: terminal.
			g.finish(err)
			return
		}
	}
}

// recover restores the last snapshot and relaunches. It returns false
// when the guard reached a terminal outcome (budget exhausted or the
// recovery itself failed).
func (g *Guard) recover(cause string) bool {
	g.mu.Lock()
	g.recoveries++
	n := g.recoveries
	g.mu.Unlock()
	if n > g.cfg.MaxRecoveries {
		g.finish(fmt.Errorf("%w after %d recoveries: %s", ErrUnrecovered, n-1, cause))
		return false
	}

	snap, err := g.readSnapshot()
	if err != nil {
		g.finish(fmt.Errorf("%w: %v", ErrRecoveryFailed, err))
		return false
	}
	if g.cfg.ReinsertLastHop {
		if dead, ok := snap.GetString(FolderLastStop); ok {
			hosts := snap.Ensure(briefcase.FolderHosts)
			if err := hosts.Insert(0, []byte(dead)); err != nil {
				hosts.AppendString(dead)
			}
		}
	}
	snap.Drop(FolderLastStop)
	// Re-stamp the guard address: after a home-host restart the snapshot
	// still names the dead guard's registration, and reports sent there
	// would only ever park and expire.
	snap.SetString(briefcase.FolderSysRearGuard, g.URI())

	tel := g.cfg.FW.Telemetry()
	tel.Registry().Counter("rearguard.recoveries", "host", g.cfg.FW.HostName()).Inc()
	// The snapshot briefcase carries the itinerary's trace context, so the
	// recovery verdict lands on the right timeline in a merged view.
	trace, _ := snap.GetString(briefcase.FolderSysTrace)
	span, _ := snap.GetString(briefcase.FolderSysSpan)
	tel.Events().Append(telemetry.Event{
		Time:      g.cfg.FW.Clock().Now(),
		Type:      telemetry.EventRecover,
		Principal: g.cfg.Principal,
		Target:    g.cfg.AgentName,
		Cause:     cause,
		Trace:     trace,
		Span:      span,
	})

	if _, err := g.cfg.Launch(g.cfg.Principal, g.cfg.AgentName, g.cfg.Program, snap); err != nil {
		g.finish(fmt.Errorf("%w: relaunch: %v", ErrRecoveryFailed, err))
		return false
	}
	return true
}

// readSnapshot fetches and decodes the checkpoint from the home ag_fs.
func (g *Guard) readSnapshot() (*briefcase.Briefcase, error) {
	req := briefcase.New()
	req.SetString("_SVCOP", "get")
	req.SetString("_PATH", g.cfg.Checkpoint)
	resp, err := g.ctx.MeetDirect(g.cfg.Store, req, g.cfg.StoreTimeout)
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", g.cfg.Checkpoint, err)
	}
	data, err := resp.Folder("_DATA")
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: no data", g.cfg.Checkpoint)
	}
	raw, err := data.Element(0)
	if err != nil {
		return nil, err
	}
	snap, err := briefcase.Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", g.cfg.Checkpoint, err)
	}
	return snap, nil
}
