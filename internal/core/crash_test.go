package core

import (
	"strings"
	"testing"
	"time"

	"tax/internal/agent"
	"tax/internal/briefcase"
)

// cabMeet performs one ag_fs/ag_cabinet-style file op through Meet and
// returns (payload, error string) — the error taken from either the Go
// error or the reply's _SYSERR folder.
func cabMeet(t *testing.T, ctx *agent.Context, service, op, path, data string) (string, string) {
	t.Helper()
	req := briefcase.New()
	req.SetString("_SVCOP", op)
	req.SetString("_PATH", path)
	if op == "put" {
		req.Ensure("_DATA").AppendString(data)
	}
	resp, err := ctx.Meet(service, req, 5*time.Second)
	if err != nil {
		return "", err.Error()
	}
	if msg, ok := resp.GetString(briefcase.FolderSysError); ok {
		return "", msg
	}
	if f, err := resp.Folder("_DATA"); err == nil && len(f.Strings()) > 0 {
		return f.Strings()[0], ""
	}
	return "", ""
}

// TestCrashWipesVolatileKeepsCabinetAndClock is the paper's volatile /
// durable split end-to-end: a host crash loses the ag_fs folders (RAM)
// but keeps the ag_cabinet folders (disk), and the machine's virtual
// clock — wall time on the simulated site — does not rewind.
func TestCrashWipesVolatileKeepsCabinetAndClock(t *testing.T) {
	s := newSystem(t, NodeOptions{}, "h1")
	n, _ := s.Node("h1")

	reg, err := n.FW.Register("test", "system", "caller")
	if err != nil {
		t.Fatal(err)
	}
	ctx := agent.NewContext(n.FW, reg, briefcase.New(), nil, nil)
	if _, errMsg := cabMeet(t, ctx, "ag_fs", "put", "/v/note", "volatile"); errMsg != "" {
		t.Fatalf("ag_fs put: %s", errMsg)
	}
	if _, errMsg := cabMeet(t, ctx, "ag_cabinet", "put", "/d/note", "durable"); errMsg != "" {
		t.Fatalf("ag_cabinet put: %s", errMsg)
	}

	n.Host.Charge(3 * time.Second)
	before := n.Host.Clock().Now()

	s.Net.Crash("h1")
	s.Net.Restart("h1")

	// The pre-crash registration died with the host: a fresh caller.
	reg2, err := n.FW.Register("test", "system", "caller")
	if err != nil {
		t.Fatal(err)
	}
	ctx2 := agent.NewContext(n.FW, reg2, briefcase.New(), nil, nil)

	if data, errMsg := cabMeet(t, ctx2, "ag_fs", "get", "/v/note", ""); errMsg == "" {
		t.Errorf("ag_fs entry survived the crash: %q", data)
	} else if !strings.Contains(errMsg, "no such file") {
		t.Errorf("ag_fs get failed with %q, want a no-such-file error", errMsg)
	}
	data, errMsg := cabMeet(t, ctx2, "ag_cabinet", "get", "/d/note", "")
	if errMsg != "" {
		t.Errorf("ag_cabinet entry lost in the crash: %s", errMsg)
	} else if data != "durable" {
		t.Errorf("ag_cabinet recovered %q, want %q", data, "durable")
	}

	if after := n.Host.Clock().Now(); after < before {
		t.Errorf("virtual clock rewound across the crash: %v -> %v", before, after)
	}
}
