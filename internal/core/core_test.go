package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"tax/internal/agent"
	"tax/internal/briefcase"
	"tax/internal/firewall"
	"tax/internal/identity"
	"tax/internal/simnet"
	"tax/internal/vm"
)

func newSystem(t *testing.T, opts NodeOptions, hosts ...string) *System {
	t.Helper()
	s, err := NewSystem(simnet.LAN100)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	for _, h := range hosts {
		if _, err := s.AddNode(h, opts); err != nil {
			t.Fatalf("AddNode(%s): %v", h, err)
		}
	}
	return s
}

func TestNodeBootstrap(t *testing.T) {
	s := newSystem(t, NodeOptions{}, "h1")
	n, err := s.Node("h1")
	if err != nil {
		t.Fatal(err)
	}
	infos := n.FW.List()
	var names []string
	for _, in := range infos {
		names = append(names, in.URI.Name)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"vm_go", "vm_bin", "vm_c", "ag_cc", "ag_exec", "ag_fs", "ag_cabinet", "ag_cron"} {
		if !strings.Contains(joined, want) {
			t.Errorf("bootstrap missing %s (have %s)", want, joined)
		}
	}
	if _, err := s.Node("ghost"); err == nil {
		t.Error("unknown node resolved")
	}
	if got := len(s.Nodes()); got != 1 {
		t.Errorf("Nodes() len = %d", got)
	}
}

func TestDuplicateNodeRejected(t *testing.T) {
	s := newSystem(t, NodeOptions{}, "h1")
	if _, err := s.AddNode("h1", NodeOptions{}); err == nil {
		t.Error("duplicate node accepted")
	}
}

func TestLaunchAndFinish(t *testing.T) {
	s := newSystem(t, NodeOptions{}, "h1")
	n, _ := s.Node("h1")
	done := make(chan error, 1)
	n.Programs.Register("oneshot", func(ctx *agent.Context) error {
		ctx.Briefcase().SetString("RAN", "yes")
		return nil
	})
	var mu sync.Mutex
	n.VM2DoneHook(t, &mu, done)

	if _, err := n.VM.Launch("system", "job", "oneshot", nil); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("agent finished with %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("agent never finished")
	}
}

// VM2DoneHook is a test helper: core.Node has no done-callback after
// construction, so tests that need one poll the firewall listing instead.
func (n *Node) VM2DoneHook(t *testing.T, mu *sync.Mutex, done chan error) {
	t.Helper()
	go func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			found := false
			for _, in := range n.FW.List() {
				if in.URI.Name == "job" {
					found = true
				}
			}
			if !found {
				done <- nil
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		done <- errors.New("agent still registered")
	}()
}

func TestFigure4Itinerary(t *testing.T) {
	// The hello-world agent of figure 4: pop the HOSTS folder, go() to
	// each VM in turn, terminate when the itinerary is empty — and
	// tolerate an unreachable host mid-itinerary.
	s := newSystem(t, NodeOptions{}, "h1", "h2", "h3")
	var mu sync.Mutex
	var visited []string
	var warnings []string
	finished := make(chan struct{})

	hello := func(ctx *agent.Context) error {
		mu.Lock()
		visited = append(visited, ctx.Host())
		mu.Unlock()
		hosts, err := ctx.Briefcase().Folder(briefcase.FolderHosts)
		if err != nil {
			close(finished)
			return err
		}
		for {
			next, ok := hosts.Pop()
			if !ok {
				close(finished)
				return nil // itinerary done: agent exits
			}
			err := ctx.Go(next.String())
			if errors.Is(err, agent.ErrMoved) {
				return err
			}
			mu.Lock()
			warnings = append(warnings, fmt.Sprintf("unable to reach %s", next))
			mu.Unlock()
		}
	}
	s.DeployProgram("hello_world", hello)

	bc := briefcase.New()
	bc.Ensure(briefcase.FolderHosts).AppendString(
		"tacoma://h2//vm_go",
		"tacoma://unreachable//vm_go", // failure injection mid-itinerary
		"tacoma://h3//vm_go",
		"tacoma://h1//vm_go",
	)
	n1, _ := s.Node("h1")
	if _, err := n1.VM.Launch("system", "hello", "hello_world", bc); err != nil {
		t.Fatal(err)
	}
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("itinerary never completed")
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"h1", "h2", "h3", "h1"}
	if len(visited) != len(want) {
		t.Fatalf("visited %v, want %v", visited, want)
	}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("visited %v, want %v", visited, want)
		}
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "unreachable") {
		t.Errorf("warnings = %v", warnings)
	}
}

func TestMoveCarriesBriefcaseState(t *testing.T) {
	s := newSystem(t, NodeOptions{}, "h1", "h2")
	results := make(chan []string, 1)
	worker := func(ctx *agent.Context) error {
		res := ctx.Briefcase().Ensure(briefcase.FolderResults)
		res.AppendString("mined@" + ctx.Host())
		if ctx.Host() == "h1" {
			if err := ctx.Go("tacoma://h2//vm_go"); errors.Is(err, agent.ErrMoved) {
				return err
			}
			return errors.New("move failed")
		}
		results <- res.Strings()
		return nil
	}
	s.DeployProgram("miner", worker)
	n1, _ := s.Node("h1")
	if _, err := n1.VM.Launch("system", "miner", "miner", nil); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-results:
		if len(got) != 2 || got[0] != "mined@h1" || got[1] != "mined@h2" {
			t.Errorf("results = %v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("agent never reported")
	}
}

func TestSpawnReportsInstance(t *testing.T) {
	s := newSystem(t, NodeOptions{}, "h1", "h2")
	type report struct {
		inst uint64
		err  error
		host string
	}
	reports := make(chan report, 2)
	prog := func(ctx *agent.Context) error {
		if ctx.Host() == "h1" && !ctx.Briefcase().Has("CHILD") {
			ctx.Briefcase().SetString("CHILD", "1")
			inst, err := ctx.Spawn("tacoma://h2//vm_go")
			reports <- report{inst: inst, err: err, host: ctx.Host()}
			return nil
		}
		reports <- report{host: ctx.Host()}
		return nil
	}
	s.DeployProgram("forker", prog)
	n1, _ := s.Node("h1")
	if _, err := n1.VM.Launch("system", "forker", "forker", nil); err != nil {
		t.Fatal(err)
	}
	var parent, child *report
	for i := 0; i < 2; i++ {
		select {
		case r := <-reports:
			if r.host == "h1" {
				parent = &r
			} else {
				child = &r
			}
		case <-time.After(5 * time.Second):
			t.Fatal("spawn protocol stalled")
		}
	}
	if parent == nil || child == nil {
		t.Fatal("missing parent or child report")
	}
	if parent.err != nil {
		t.Fatalf("spawn error: %v", parent.err)
	}
	if parent.inst == 0 {
		t.Error("spawn reported zero instance")
	}
}

func TestFigure3Pipeline(t *testing.T) {
	// A toy-C agent activates through the full figure-3 chain:
	// vm_c → ag_cc → ag_exec (compiler) → vm_bin.
	var mu sync.Mutex
	var trace []string
	opts := NodeOptions{Trace: func(e string) {
		mu.Lock()
		trace = append(trace, e)
		mu.Unlock()
	}}
	s := newSystem(t, opts, "h1")
	n, _ := s.Node("h1")

	ran := make(chan string, 1)
	source := "// program: chello\nint agMain(briefcase bc) { displaySomehow(\"Hello world\"); }\n"
	// Pre-deploy the compiled form: same deterministic image the toy
	// compiler will produce, bound to this host's handler.
	compiled, err := vmCompiled(source, n.Arch)
	if err != nil {
		t.Fatal(err)
	}
	compiled.Handler = func(ctx *agent.Context) error {
		ran <- ctx.Host()
		return nil
	}
	n.Binaries.Deploy(compiled)

	// Deliver the C agent to vm_c the way a remote firewall would.
	bc := briefcase.New()
	bc.SetString(briefcase.FolderCode, source)
	bc.SetString(firewall.FolderKind, firewall.KindTransfer)
	bc.SetString(vm.FolderAgentName, "chello")
	bc.SetString(briefcase.FolderSysTarget, "vm_c")
	admin, err := n.FW.Register("test", "system", "launcher")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.FW.Send(admin.GlobalURI(), bc); err != nil {
		t.Fatal(err)
	}

	select {
	case host := <-ran:
		if host != "h1" {
			t.Errorf("agent ran on %s", host)
		}
	case <-time.After(10 * time.Second):
		mu.Lock()
		t.Fatalf("pipeline stalled; trace:\n%s", strings.Join(trace, "\n"))
	}

	// The trace must show the figure's staging in order.
	mu.Lock()
	defer mu.Unlock()
	joined := strings.Join(trace, "\n")
	steps := []string{
		"vm_c: step 1: briefcase delivered",
		"vm_c: step 2: activate ag_cc",
		"ag_cc: extracted code",
		"ag_cc: activate ag_exec",
		"ag_exec: running gcc",
		"ag_exec: stored binary",
		"ag_cc: returning binary",
		"vm_c: step 6: binary returned",
		"vm_c: step 7: activate via vm_bin",
		"vm_bin: activated",
	}
	idx := 0
	for _, step := range steps {
		pos := strings.Index(joined[idx:], step)
		if pos < 0 {
			t.Fatalf("missing or out-of-order step %q in trace:\n%s", step, joined)
		}
		idx += pos
	}
}

// vmCompiled mirrors services.CompileBinary without importing services
// into the core test (avoiding an import cycle through the fixture).
func vmCompiled(source, arch string) (vm.Binary, error) {
	name := ""
	for _, line := range strings.Split(source, "\n") {
		line = strings.TrimSpace(line)
		if n, ok := strings.CutPrefix(line, "// program:"); ok {
			name = strings.TrimSpace(n)
			break
		}
	}
	if name == "" {
		return vm.Binary{}, errors.New("no program directive")
	}
	return vm.Binary{
		Name: name, Arch: arch, Version: "1.0",
		Payload: vm.SyntheticImage(name, arch, "1.0", 64<<10),
	}, nil
}

func TestBinaryAgentRejectedWithoutTrust(t *testing.T) {
	// vm_bin refuses a transfer signed by an untrusted principal.
	s := newSystem(t, NodeOptions{}, "h1", "h2")
	n1, _ := s.Node("h1")
	n2, _ := s.Node("h2")

	intruder, err := identity.NewPrincipal("intruder")
	if err != nil {
		t.Fatal(err)
	}
	s.Trust.AddPrincipal(intruder, identity.Untrusted) // known but untrusted

	img := vm.SyntheticImage("tool", n2.Arch, "1.0", 1024)
	n2.Binaries.Deploy(vm.Binary{
		Name: "tool", Arch: n2.Arch, Version: "1.0", Payload: img,
		Handler: func(*agent.Context) error { return nil },
	})

	bc := briefcase.New()
	vm.PackBinaries(bc, vm.Binary{Name: "tool", Arch: n2.Arch, Version: "1.0", Payload: img})
	bc.SetString(firewall.FolderKind, firewall.KindTransfer)
	bc.SetString(briefcase.FolderSysTarget, "tacoma://h2//vm_bin")
	firewall.SignCore(bc, intruder)

	sender, err := n1.FW.Register("test", "intruder", "dropper")
	if err != nil {
		t.Fatal(err)
	}
	if err := n1.FW.Send(sender.GlobalURI(), bc); err != nil {
		t.Fatal(err)
	}
	rep, err := sender.Recv(5 * time.Second)
	if err != nil {
		t.Fatalf("no rejection report: %v", err)
	}
	if firewall.Kind(rep) != firewall.KindError {
		t.Fatalf("kind = %s", firewall.Kind(rep))
	}
	msg, _ := rep.GetString(briefcase.FolderSysError)
	if !strings.Contains(msg, "signature") && !strings.Contains(msg, "trust") {
		t.Errorf("rejection reason = %q", msg)
	}
}

func TestBypassSkipsFirewall(t *testing.T) {
	s := newSystem(t, NodeOptions{Bypass: true}, "h1")
	n, _ := s.Node("h1")

	got := make(chan string, 1)
	n.Programs.Register("peer", func(ctx *agent.Context) error {
		bc, err := ctx.Await(5 * time.Second)
		if err != nil {
			got <- "err:" + err.Error()
			return err
		}
		body, _ := bc.GetString("BODY")
		got <- body
		return nil
	})
	n.Programs.Register("pusher", func(ctx *agent.Context) error {
		bc := briefcase.New()
		bc.SetString("BODY", "direct")
		return ctx.Activate("system/peer", bc)
	})
	if _, err := n.VM.Launch("system", "peer", "peer", nil); err != nil {
		t.Fatal(err)
	}
	before := n.FW.Stats().Delivered
	if _, err := n.VM.Launch("system", "pusher", "pusher", nil); err != nil {
		t.Fatal(err)
	}
	select {
	case body := <-got:
		if body != "direct" {
			t.Fatalf("got %q", body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("bypass delivery lost")
	}
	if after := n.FW.Stats().Delivered; after != before {
		t.Errorf("firewall mediated %d deliveries despite bypass", after-before)
	}
}

func TestMeetRPCBetweenAgents(t *testing.T) {
	s := newSystem(t, NodeOptions{}, "h1")
	n, _ := s.Node("h1")

	n.Programs.Register("echo", func(ctx *agent.Context) error {
		for {
			req, err := ctx.Await(0)
			if err != nil {
				return nil
			}
			body, _ := req.GetString("BODY")
			resp := briefcase.New()
			resp.SetString("BODY", "echo:"+body)
			if err := ctx.Reply(req, resp); err != nil {
				return err
			}
		}
	})
	result := make(chan string, 1)
	n.Programs.Register("caller", func(ctx *agent.Context) error {
		req := briefcase.New()
		req.SetString("BODY", "ping")
		resp, err := ctx.Meet("system/echo", req, 5*time.Second)
		if err != nil {
			result <- "err:" + err.Error()
			return err
		}
		body, _ := resp.GetString("BODY")
		result <- body
		return nil
	})
	if _, err := n.VM.Launch("system", "echo", "echo", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := n.VM.Launch("system", "caller", "caller", nil); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-result:
		if got != "echo:ping" {
			t.Errorf("meet result = %q", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("meet stalled")
	}
}

func TestUnknownProgramRejectedAtDestination(t *testing.T) {
	// h2 does not deploy the program: the transfer must be rejected and
	// the (already departed) agent's sender informed.
	s := newSystem(t, NodeOptions{}, "h1", "h2")
	n1, _ := s.Node("h1")
	n2, _ := s.Node("h2")
	n1.Programs.Register("rare", func(ctx *agent.Context) error {
		err := ctx.Go("tacoma://h2//vm_go")
		if errors.Is(err, agent.ErrMoved) {
			return err
		}
		return err
	})
	// Intentionally NOT deploying "rare" on h2.
	if _, err := n1.VM.Launch("system", "rare", "rare", nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if n2.FW.Stats().Errors > 0 || n2.FW.Stats().Delivered > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The agent must not be running anywhere.
	time.Sleep(50 * time.Millisecond)
	for _, node := range s.Nodes() {
		for _, in := range node.FW.List() {
			if in.URI.Name == "rare" {
				t.Errorf("ghost agent still registered on %s", node.Name)
			}
		}
	}
}

func TestPanickingAgentDoesNotKillVM(t *testing.T) {
	s := newSystem(t, NodeOptions{}, "h1")
	n, _ := s.Node("h1")
	n.Programs.Register("bomb", func(*agent.Context) error { panic("boom") })
	n.Programs.Register("calm", func(ctx *agent.Context) error { return nil })
	if _, err := n.VM.Launch("system", "bomb", "bomb", nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	// The VM survives and can still launch agents.
	if _, err := n.VM.Launch("system", "calm", "calm", nil); err != nil {
		t.Errorf("VM died with its agent: %v", err)
	}
}
