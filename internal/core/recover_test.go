package core

import (
	"strings"
	"testing"
	"time"

	"tax/internal/agent"
	"tax/internal/briefcase"
	"tax/internal/services"
)

// putCheckpoint stores raw bytes at the node's ag_fs path.
func putCheckpoint(t *testing.T, n *Node, path string, data []byte) {
	t.Helper()
	reg, err := n.FW.Register("test", "system", "ckpt-writer")
	if err != nil {
		t.Fatal(err)
	}
	defer n.FW.Unregister(reg)
	ctx := agent.NewContext(n.FW, reg, briefcase.New(), nil, nil)
	req := briefcase.New()
	req.SetString(services.FolderOp, "put")
	req.SetString(services.FolderPath, path)
	req.Ensure(services.FolderData).Append(data)
	if _, err := ctx.MeetDirect("ag_fs", req, 5*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverLaunchesFromSnapshot(t *testing.T) {
	s := newSystem(t, NodeOptions{}, "home")
	n, _ := s.Node("home")

	got := make(chan string, 1)
	n.Programs.Register("resumer", func(ctx *agent.Context) error {
		v, _ := ctx.Briefcase().GetString("STATE")
		got <- v
		return nil
	})
	snap := briefcase.New()
	snap.SetString("STATE", "made it to phase 3")
	putCheckpoint(t, n, "/ckpt/x", snap.Encode())

	if _, err := n.Recover("system", "resumed", "resumer", "/ckpt/x"); err != nil {
		t.Fatalf("recover: %v", err)
	}
	select {
	case v := <-got:
		if v != "made it to phase 3" {
			t.Errorf("recovered state = %q", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("recovered agent never ran")
	}
}

func TestRecoverErrors(t *testing.T) {
	s := newSystem(t, NodeOptions{}, "home")
	n, _ := s.Node("home")
	n.Programs.Register("resumer", func(ctx *agent.Context) error { return nil })

	// Missing checkpoint.
	if _, err := n.Recover("system", "x", "resumer", "/ckpt/none"); err == nil {
		t.Error("missing checkpoint accepted")
	}
	// Corrupt snapshot bytes.
	putCheckpoint(t, n, "/ckpt/bad", []byte("not a briefcase"))
	if _, err := n.Recover("system", "x", "resumer", "/ckpt/bad"); err == nil ||
		!strings.Contains(err.Error(), "magic") && !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("corrupt checkpoint: %v", err)
	}
	// Unknown program.
	snap := briefcase.New()
	putCheckpoint(t, n, "/ckpt/ok", snap.Encode())
	if _, err := n.Recover("system", "x", "ghost-program", "/ckpt/ok"); err == nil {
		t.Error("unknown program accepted")
	}
}
