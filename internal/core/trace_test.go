package core

import (
	"errors"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"tax/internal/agent"
	"tax/internal/briefcase"
	"tax/internal/simnet"
	"tax/internal/telemetry"
)

// TestThreeHopItineraryTrace is the telemetry acceptance scenario: an
// agent launched on h1 with the itinerary h2, h3 must leave ONE connected
// span tree behind — a single trace id, a single root, every other span
// reachable through parent links — covering the hops, the firewall
// mediations and the VM executions of all three hosts.
func TestThreeHopItineraryTrace(t *testing.T) {
	s, err := NewSystem(simnet.LAN100)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	tel := s.EnableTelemetry()
	for _, h := range []string{"h1", "h2", "h3"} {
		if _, err := s.AddNode(h, NodeOptions{}); err != nil {
			t.Fatal(err)
		}
	}

	var mu sync.Mutex
	var visited []string
	finished := make(chan struct{})
	s.DeployProgram("tourist", func(ctx *agent.Context) error {
		mu.Lock()
		visited = append(visited, ctx.Host())
		mu.Unlock()
		hosts, err := ctx.Briefcase().Folder(briefcase.FolderHosts)
		if err != nil {
			close(finished)
			return err
		}
		next, ok := hosts.Pop()
		if !ok {
			close(finished)
			return nil
		}
		if err := ctx.Go(next.String()); errors.Is(err, agent.ErrMoved) {
			return err
		}
		close(finished)
		return errors.New("hop failed")
	})

	bc := briefcase.New()
	bc.Ensure(briefcase.FolderHosts).AppendString(
		"tacoma://h2//vm_go",
		"tacoma://h3//vm_go",
	)
	trace := agent.StampTrace(bc, "h1")
	if trace == "" || !strings.HasPrefix(trace, "t:h1:") {
		t.Fatalf("StampTrace = %q", trace)
	}

	n1, _ := s.Node("h1")
	if _, err := n1.VM.Launch("system", "tourist", "tourist", bc); err != nil {
		t.Fatal(err)
	}
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("itinerary never completed")
	}
	mu.Lock()
	got := strings.Join(visited, ",")
	mu.Unlock()
	if got != "h1,h2,h3" {
		t.Fatalf("visited %s", got)
	}
	// The final vm.exec span ends after the agent function returns; give
	// the VM goroutine a moment to commit it.
	waitForSpan(t, tel, trace, "vm.exec", "h3")

	spans := tel.Spans().ForTrace(trace)
	if len(spans) < 6 {
		t.Fatalf("trace has %d spans, want >= 6:\n%s", len(spans), spanDump(spans))
	}

	// Single trace id (ForTrace guarantees it), single root, and every
	// non-root span's parent is present: the tree is connected.
	byID := make(map[string]telemetry.SpanRecord, len(spans))
	for _, sp := range spans {
		if sp.TraceID != trace {
			t.Fatalf("span %s has trace %q", sp.SpanID, sp.TraceID)
		}
		byID[sp.SpanID] = sp
	}
	var roots []telemetry.SpanRecord
	for _, sp := range spans {
		if sp.Parent == "" {
			roots = append(roots, sp)
			continue
		}
		if _, ok := byID[sp.Parent]; !ok {
			t.Errorf("span %s (%s) has dangling parent %s", sp.SpanID, sp.Name, sp.Parent)
		}
	}
	if len(roots) != 1 {
		t.Fatalf("trace has %d roots, want 1:\n%s", len(roots), spanDump(spans))
	}
	if roots[0].Name != "vm.exec" || roots[0].Host != "h1" {
		t.Errorf("root is %s@%s, want vm.exec@h1", roots[0].Name, roots[0].Host)
	}

	// Coverage: the tree spans all three layers the issue names — agent
	// hops, firewall mediations, and VM executions on every host.
	type nh struct{ name, host string }
	have := make(map[nh]bool, len(spans))
	for _, sp := range spans {
		have[nh{sp.Name, sp.Host}] = true
	}
	for _, want := range []nh{
		{"vm.exec", "h1"}, {"vm.exec", "h2"}, {"vm.exec", "h3"},
		{"agent.go", "h1"}, {"agent.go", "h2"},
		{"fw.send", "h1"}, {"fw.send", "h2"},
		{"net.transfer", "h1"}, {"net.transfer", "h2"},
		{"fw.inbound", "h2"}, {"fw.inbound", "h3"},
	} {
		if !have[want] {
			t.Errorf("trace lacks %s on %s:\n%s", want.name, want.host, spanDump(spans))
		}
	}

	// Timestamps: within each host, virtual time is monotone in recording
	// order, and no span ends before it starts. (Clocks are per-host, so
	// cross-host comparisons are out of scope.)
	lastStart := map[string]int64{}
	for _, sp := range spans {
		if sp.End < sp.Start {
			t.Errorf("span %s ends before it starts (%v..%v)", sp.Name, sp.Start, sp.End)
		}
		if int64(sp.Start) < lastStart[sp.Host] {
			t.Errorf("span %s@%s starts before an earlier-recorded span on the same host",
				sp.Name, sp.Host)
		}
		if int64(sp.Start) > lastStart[sp.Host] {
			lastStart[sp.Host] = int64(sp.Start)
		}
	}

	// Parent/child nesting: each hop span is a child of the vm.exec span
	// of the host it left, and the destination's vm.exec descends from the
	// hop that carried the agent there.
	hop1 := findSpan(spans, "agent.go", "h1")
	exec1 := findSpan(spans, "vm.exec", "h1")
	exec2 := findSpan(spans, "vm.exec", "h2")
	if hop1.Parent != exec1.SpanID {
		t.Errorf("h1 hop parent = %s, want h1 exec %s", hop1.Parent, exec1.SpanID)
	}
	if !hasAncestor(byID, exec2, hop1.SpanID) {
		t.Errorf("h2 exec does not descend from the h1 hop:\n%s", spanDump(spans))
	}
}

// TestUntracedItineraryRecordsNoSpans: the same journey without a trace
// stamp must leave the span store untouched (spans are strictly opt-in
// per briefcase).
func TestUntracedItineraryRecordsNoSpans(t *testing.T) {
	s, err := NewSystem(simnet.LAN100)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	tel := s.EnableTelemetry()
	for _, h := range []string{"h1", "h2"} {
		if _, err := s.AddNode(h, NodeOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	finished := make(chan struct{})
	s.DeployProgram("tourist", func(ctx *agent.Context) error {
		hosts, _ := ctx.Briefcase().Folder(briefcase.FolderHosts)
		next, ok := hosts.Pop()
		if !ok {
			close(finished)
			return nil
		}
		if err := ctx.Go(next.String()); errors.Is(err, agent.ErrMoved) {
			return err
		}
		close(finished)
		return errors.New("hop failed")
	})
	bc := briefcase.New()
	bc.Ensure(briefcase.FolderHosts).AppendString("tacoma://h2//vm_go")
	n1, _ := s.Node("h1")
	if _, err := n1.VM.Launch("system", "tourist", "tourist", bc); err != nil {
		t.Fatal(err)
	}
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("itinerary never completed")
	}
	time.Sleep(50 * time.Millisecond) // let the final exec goroutine wind down
	if n := tel.Spans().Total(); n != 0 {
		t.Errorf("untraced run recorded %d spans", n)
	}
	// Counters still work: the registry is always on.
	if tel.Registry().Counter("fw.delivered", "host", "h2").Value() == 0 {
		t.Error("untraced run recorded no deliveries")
	}
}

// waitForSpan polls until a span with the given name and host appears in
// the trace (the recording goroutine may outlive the agent function).
func waitForSpan(t *testing.T, tel *telemetry.Telemetry, trace, name, host string) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		for _, sp := range tel.Spans().ForTrace(trace) {
			if sp.Name == name && sp.Host == host {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("span %s@%s never recorded:\n%s", name, host, spanDump(tel.Spans().ForTrace(trace)))
}

func findSpan(spans []telemetry.SpanRecord, name, host string) telemetry.SpanRecord {
	for _, sp := range spans {
		if sp.Name == name && sp.Host == host {
			return sp
		}
	}
	return telemetry.SpanRecord{}
}

// hasAncestor walks sp's parent chain looking for ancestorID.
func hasAncestor(byID map[string]telemetry.SpanRecord, sp telemetry.SpanRecord, ancestorID string) bool {
	for sp.Parent != "" {
		if sp.Parent == ancestorID {
			return true
		}
		next, ok := byID[sp.Parent]
		if !ok {
			return false
		}
		sp = next
	}
	return false
}

// spanDump renders spans one per line for failure messages.
func spanDump(spans []telemetry.SpanRecord) string {
	sorted := append([]telemetry.SpanRecord(nil), spans...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Host != sorted[j].Host {
			return sorted[i].Host < sorted[j].Host
		}
		return sorted[i].Start < sorted[j].Start
	})
	var sb strings.Builder
	for _, sp := range sorted {
		sb.WriteString(sp.Host)
		sb.WriteString("  ")
		sb.WriteString(sp.Name)
		sb.WriteString("  ")
		sb.WriteString(sp.SpanID)
		sb.WriteString(" <- ")
		sb.WriteString(sp.Parent)
		sb.WriteString("\n")
	}
	return sb.String()
}
