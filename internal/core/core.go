// Package core wires the TAX kernel into deployable hosts.
//
// A Node is one machine of figure 1: a firewall fronting a set of virtual
// machines (vm_go, vm_bin, vm_c) and the standard service agents (ag_cc,
// ag_exec, ag_fs, ag_cron). A System is a simulated distributed
// deployment: several nodes joined by a simnet.Network. The public root
// package tax re-exports this API.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"tax/internal/agent"
	"tax/internal/briefcase"
	"tax/internal/cabinet"
	"tax/internal/directory"
	"tax/internal/firewall"
	"tax/internal/identity"
	"tax/internal/naming"
	"tax/internal/policy"
	"tax/internal/services"
	"tax/internal/simnet"
	"tax/internal/telemetry"
	"tax/internal/tower"
	"tax/internal/vm"
	"tax/internal/wrapper"
)

// NodeOptions tune one host. The zero value gives a standard node.
type NodeOptions struct {
	// Arch is the machine architecture tag; default vm.DefaultArch.
	Arch string
	// Bypass enables VM-internal delivery between co-located agents.
	Bypass bool
	// RequireAuth makes the firewall reject unsigned inbound transfers.
	RequireAuth bool
	// QueueTimeout overrides the firewall's parked-message timeout.
	QueueTimeout time.Duration
	// ForwardRetry is the node's default retry policy for remote
	// forwards (briefcases may override it via _RETRY).
	ForwardRetry firewall.RetryPolicy
	// DedupWindow enables inbound duplicate-frame suppression on the
	// node's firewall (see firewall.Config.DedupWindow).
	DedupWindow int
	// Trace receives kernel instrumentation events.
	Trace func(event string)
	// NoServices skips launching the standard service agents.
	NoServices bool
	// NoCVM skips the C virtual machine and its compile services.
	NoCVM bool
	// NameService additionally launches the ag_ns location registry on
	// this node (typically only the deployment's home node runs one).
	NameService bool
	// NameTTL is the lease length the node's ag_ns table grants on
	// updates; zero keeps bindings forever (the pre-lease behaviour).
	// With a TTL, a binding whose owner stopped renewing (say, its host
	// crashed) expires to a typed naming.ErrExpired instead of
	// resolving to the dead location.
	NameTTL time.Duration
	// OnAgentDone observes every agent completion on this node's VMs
	// (nil on clean exit, agent.ErrMoved after a move, else the fault).
	OnAgentDone func(name string, err error)
	// SecureChannels signs every inter-firewall frame with a per-host
	// firewall principal and rejects unsigned or untrusted inbound
	// frames (§3.2's "authenticated and trusted sender").
	SecureChannels bool
	// Telemetry overrides the telemetry instance this node's firewall
	// reports into. Nil uses the system-wide instance when one was enabled
	// (EnableTelemetry), else a private counters-only instance.
	Telemetry *telemetry.Telemetry
	// FsyncCost is the simulated latency of one fsync on the node's
	// cabinet disk; zero uses cabinet.DefaultSyncLatency.
	FsyncCost time.Duration
	// SnapshotEvery is the cabinet's WAL-compaction interval in committed
	// transactions; zero uses the cabinet default, negative disables
	// snapshots (pure WAL).
	SnapshotEvery int
	// Batch enables coalesced outbound mediation on the node's firewall
	// (see firewall.BatchConfig); nil sends every frame individually.
	Batch *firewall.BatchConfig
	// Relay makes the node's firewall forward inbound frames whose
	// target is another host toward their next hop (header-only
	// re-mediation, wire bytes forwarded verbatim — see
	// firewall.Config.Relay). Off keeps the original
	// drop-third-party-traffic behavior.
	Relay bool
	// Resolve maps an agent-URI host and port to a transport address;
	// nil means the host name is the transport address. Relay nodes use
	// it as their next-hop table.
	Resolve func(host string, port int) (string, error)
	// GroupCommit coalesces concurrent cabinet Commit callers into
	// shared fsyncs (see cabinet.Options.GroupCommit); GroupMaxTxns
	// bounds the coalesce window (zero: cabinet.DefaultGroupMaxTxns).
	GroupCommit  bool
	GroupMaxTxns int
	// Policy, when non-empty, is the node's initial policy ruleset text
	// (see internal/policy for the grammar). It is parsed at AddNode —
	// a bad ruleset fails the boot, not a later mediation — and
	// installed as version 1 of the node's policy engine. Hot reload
	// goes through FW.ReloadPolicy or the "policyload" management op.
	Policy string
	// Quota, when non-nil, is the default per-principal quota applied
	// to principals no quota rule matches. Setting only Quota (no
	// Policy) runs the engine with the allow-all compatibility ruleset:
	// legacy mediation decisions, metered.
	Quota *policy.Quota
}

// Node is one TAX host: firewall, VMs, service agents and local stores.
type Node struct {
	// Name is the host name in agent URIs.
	Name string
	// FW is the host firewall.
	FW *firewall.Firewall
	// VM is the Go-handler virtual machine (vm_go).
	VM *vm.GoVM
	// BinVM is the signed-binary virtual machine (vm_bin).
	BinVM *vm.BinVM
	// CVM is the C virtual machine (vm_c); nil with NoCVM.
	CVM *vm.CVM
	// Programs is the host's pre-deployed program registry.
	Programs *vm.Registry
	// Binaries is the host's deployed-binary inventory.
	Binaries *vm.BinaryStore
	// Wrappers is the host's deployed wrapper registry; stacks named in
	// a travelling agent's _WRAP folder are rebuilt from it on arrival.
	Wrappers *wrapper.Registry
	// WrapperSpecs generates wrapper stacks declared in a briefcase's
	// _WRAPSPEC folder (the paper's "automatic generation of layers of
	// wrappers"); the built-in layer kinds are pre-registered.
	WrapperSpecs *wrapper.SpecRegistry
	// Names is the local name table when the node runs ag_ns, else nil.
	Names *naming.Table
	// Dir is the node's directory plane member when the deployment
	// enabled the plane and this node is in its ring, else nil.
	Dir *directory.Server
	// Host is the simulated machine carrying the node.
	Host *simnet.Host
	// Arch is the host architecture tag.
	Arch string
	// Disk is the host's simulated durable disk.
	Disk *cabinet.Disk
	// Cabinet is the host's durable file-cabinet store (WAL + snapshots
	// on Disk). It survives Net.Crash/Net.Restart; everything else on the
	// node is volatile.
	Cabinet *cabinet.Store

	sys    *System
	opts   NodeOptions
	tel    *telemetry.Telemetry
	ownTel bool // tel is exclusive to this host (tower mode): a crash wipes it
}

// Telemetry returns the telemetry instance this node reports into: the
// per-host instance in tower mode, else the shared or configured one (nil
// when telemetry was never enabled).
func (n *Node) Telemetry() *telemetry.Telemetry { return n.tel }

// Recover relaunches an agent from a checkpoint stored by the
// wrapper.Checkpoint passive-replication wrapper: the snapshot is read
// back from this node's file service and the program activated with the
// recovered briefcase — the home site resuming a crashed or lost agent
// from its last consistent state.
func (n *Node) Recover(principal, name, program, checkpointPath string) (*firewall.Registration, error) {
	return n.RecoverVia("ag_fs", principal, name, program, checkpointPath)
}

// RecoverVia is Recover reading the checkpoint from a chosen store
// service: "ag_fs" for the fast volatile store, "ag_cabinet" for the
// crash-surviving file cabinet (a checkpoint that must outlive a home
// host crash belongs in the cabinet).
func (n *Node) RecoverVia(storeService, principal, name, program, checkpointPath string) (*firewall.Registration, error) {
	reg, err := n.FW.Register("recovery", n.FW.SystemPrincipal(), "recovery")
	if err != nil {
		return nil, err
	}
	defer n.FW.Unregister(reg)
	ctx := agent.NewContext(n.FW, reg, briefcase.New(), nil, nil)

	req := briefcase.New()
	req.SetString(services.FolderOp, "get")
	req.SetString(services.FolderPath, checkpointPath)
	resp, err := ctx.MeetDirect(storeService, req, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("core: recover %s: %w", checkpointPath, err)
	}
	if rerr, ok := firewall.RemoteErrorFrom(resp); ok {
		// Typed: errors.Is(err, services.ErrNoSuchFile) distinguishes a
		// pruned checkpoint from a store failure.
		return nil, fmt.Errorf("core: recover %s: %w", checkpointPath, rerr)
	}
	data, err := resp.Folder(services.FolderData)
	if err != nil {
		return nil, fmt.Errorf("core: recover %s: no data", checkpointPath)
	}
	raw, err := data.Element(0)
	if err != nil {
		return nil, err
	}
	snap, err := briefcase.Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("core: recover %s: %w", checkpointPath, err)
	}
	return n.VM.Launch(principal, name, program, snap)
}

// Close shuts the node down: VMs first, then the firewall.
func (n *Node) Close() error {
	if n.CVM != nil {
		_ = n.CVM.Close()
	}
	if n.BinVM != nil {
		_ = n.BinVM.Close()
	}
	if n.VM != nil {
		_ = n.VM.Close()
	}
	return n.FW.Close()
}

// System is a simulated TAX deployment.
type System struct {
	// Net is the simulated network joining the nodes.
	Net *simnet.Network
	// Trust is the deployment-wide trust store (every node consults it).
	Trust *identity.TrustStore
	// SystemPrincipal signs system-launched agents and VM transfers.
	SystemPrincipal *identity.Principal

	mu    sync.Mutex
	nodes map[string]*Node
	tel   *telemetry.Telemetry
	twr   *tower.Collector

	// dirRing/dirCfg hold the directory plane configuration when
	// EnableDirectory was called (before the member nodes are added).
	dirRing *directory.Ring
	dirCfg  DirectoryConfig
}

// NewSystem creates an empty deployment whose host pairs default to the
// given link profile. A "system" principal is generated and installed in
// the trust store at identity.System.
func NewSystem(profile simnet.Profile) (*System, error) {
	sys, err := identity.NewPrincipal("system")
	if err != nil {
		return nil, fmt.Errorf("core: system principal: %w", err)
	}
	trust := &identity.TrustStore{}
	trust.AddPrincipal(sys, identity.System)
	return &System{
		Net:             simnet.New(profile),
		Trust:           trust,
		SystemPrincipal: sys,
		nodes:           make(map[string]*Node),
	}, nil
}

// EnableTelemetry switches the deployment to full observability: one
// shared instance (spans and events on) that every node added afterwards
// reports into, also attached to the network so transfers feed the
// registry. Spans record which host they ran on, so one instance serves
// the whole simulation and a 3-hop itinerary reads back as a single tree.
// Call before AddNode. Idempotent; returns the instance.
func (s *System) EnableTelemetry() *telemetry.Telemetry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tel == nil {
		s.tel = telemetry.New(telemetry.Options{Host: "system", Spans: true, Events: true})
		s.Net.SetTelemetry(s.tel)
	}
	return s.tel
}

// Telemetry returns the deployment-wide telemetry instance (nil unless
// EnableTelemetry was called).
func (s *System) Telemetry() *telemetry.Telemetry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tel
}

// EnableTower turns on the observability tower: every node added afterwards
// gets its own host-labelled telemetry instance (spans and events on) whose
// records push into a system-wide tower.Collector, and the infrastructure —
// simulated network faults, cabinet durability work, host crashes and
// restarts — journals into the collector's flight recorder. The shared
// EnableTelemetry instance is still created for network link counters and is
// attached to the collector under its "system" host label. The collector
// answers the firewall's OpExplain management operation on every node.
// Call before AddNode. Idempotent; returns the collector.
func (s *System) EnableTower() *tower.Collector {
	s.EnableTelemetry()
	s.mu.Lock()
	if s.twr != nil {
		c := s.twr
		s.mu.Unlock()
		return c
	}
	c := tower.New(tower.Options{})
	s.twr = c
	tel := s.tel
	s.mu.Unlock()
	c.Attach(tel)
	// Fault-plan decisions that actually touched a transfer (drop,
	// duplicate, delay, corrupt) journal against the sending host, stamped
	// with the trace context the firewall threaded through SendTraced.
	s.Net.SetFaultObserver(func(p simnet.FaultPoint) {
		detail := "to=" + p.To
		if p.Detail != "" {
			detail += " " + p.Detail
		}
		c.Record(tower.Entry{
			Time:   p.Time,
			Host:   p.From,
			Kind:   tower.KindFault,
			Name:   p.Kind,
			Detail: detail,
			Trace:  p.Trace,
			Span:   p.Span,
		})
	})
	return c
}

// Tower returns the system-wide tower collector (nil unless EnableTower
// was called). A nil collector is safe to call.
func (s *System) Tower() *tower.Collector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.twr
}

// AddNode boots a host: simulated machine, firewall, VMs and the
// standard service agents.
func (s *System) AddNode(name string, opts NodeOptions) (*Node, error) {
	if opts.Arch == "" {
		opts.Arch = vm.DefaultArch
	}
	host, err := s.Net.AddHost(name)
	if err != nil {
		return nil, err
	}
	var channelSigner *identity.Principal
	if opts.SecureChannels {
		channelSigner, err = s.NewPrincipal("fw-"+name, identity.Trusted)
		if err != nil {
			return nil, err
		}
	}
	twr := s.Tower()
	nodeTel := opts.Telemetry
	if nodeTel == nil {
		if twr != nil {
			// Tower mode: each host reports into its own instance so span
			// and event feeds carry the host label and a crash wipes only
			// the crashed host's rings.
			nodeTel = telemetry.New(telemetry.Options{Host: name, Spans: true, Events: true})
			twr.Attach(nodeTel)
		} else {
			nodeTel = s.Telemetry()
		}
	}
	disk := cabinet.NewDisk(cabinet.DiskConfig{
		Clock:       host.Clock(),
		SyncLatency: opts.FsyncCost,
	})
	var cabObserver func(op string, at time.Duration, seq uint64)
	if twr != nil {
		cabObserver = func(op string, at time.Duration, seq uint64) {
			twr.Record(tower.Entry{
				Time:   at,
				Host:   name,
				Kind:   tower.KindCabinet,
				Name:   op,
				Detail: fmt.Sprintf("seq=%d", seq),
			})
		}
	}
	store := cabinet.NewStore(cabinet.Options{
		Clock:         host.Clock(),
		Disk:          disk,
		FsyncCost:     opts.FsyncCost,
		SnapshotEvery: opts.SnapshotEvery,
		GroupCommit:   opts.GroupCommit,
		GroupMaxTxns:  opts.GroupMaxTxns,
		Telemetry:     nodeTel.Registry(),
		Host:          name,
		Observer:      cabObserver,
	})
	var explain func(traceID string) []string
	if twr != nil {
		explain = func(traceID string) []string {
			if traceID == "latest" {
				traceID = twr.LatestTrace()
			}
			return twr.Trace(traceID).ExplainLines()
		}
	}
	var eng *policy.Engine
	if opts.Policy != "" || opts.Quota != nil {
		var rs *policy.Ruleset
		if opts.Policy != "" {
			rs, err = policy.Parse(opts.Policy)
			if err != nil {
				return nil, fmt.Errorf("core: node %s policy: %w", name, err)
			}
		} else {
			// Quotas without rules: meter the legacy mediation decisions.
			rs = policy.AllowAll()
		}
		var dq policy.Quota
		if opts.Quota != nil {
			dq = *opts.Quota
		}
		eng = policy.New(host.Clock(), rs, dq)
	}
	fw, err := firewall.New(firewall.Config{
		HostName:        name,
		Node:            host,
		Trust:           s.Trust,
		SystemPrincipal: s.SystemPrincipal.Name(),
		QueueTimeout:    opts.QueueTimeout,
		RequireAuth:     opts.RequireAuth,
		// Crossing the firewall between VM processes costs one 1999 IPC
		// round (~150 µs); figure 3's seven-step pipeline makes this
		// visible, everything else treats it as noise.
		LocalHopCost:  150 * time.Microsecond,
		ChannelSigner: channelSigner,
		ChannelAuth:   opts.SecureChannels,
		ForwardRetry:  opts.ForwardRetry,
		DedupWindow:   opts.DedupWindow,
		Batch:         opts.Batch,
		Relay:         opts.Relay,
		Resolve:       opts.Resolve,
		Telemetry:     nodeTel,
		Durable:       store,
		Explain:       explain,
		Policy:        eng,
	})
	if err != nil {
		return nil, err
	}
	node := &Node{
		Name:         name,
		FW:           fw,
		Programs:     &vm.Registry{},
		Binaries:     &vm.BinaryStore{},
		Wrappers:     &wrapper.Registry{},
		WrapperSpecs: wrapper.NewSpecRegistry(),
		Host:         host,
		Arch:         opts.Arch,
		Disk:         disk,
		Cabinet:      store,
		sys:          s,
		opts:         opts,
		tel:          nodeTel,
		ownTel:       twr != nil && opts.Telemetry == nil,
	}
	node.VM, err = vm.New(vm.Config{
		FW:          fw,
		Programs:    node.Programs,
		Signer:      s.SystemPrincipal,
		Bypass:      opts.Bypass,
		Trace:       opts.Trace,
		PreLaunch:   node.WrapperSpecs.PreLaunchSpec(node.Wrappers),
		OnAgentDone: opts.OnAgentDone,
	})
	if err != nil {
		return nil, errors.Join(err, fw.Close())
	}
	node.BinVM, err = vm.NewBin(vm.BinConfig{
		FW:          fw,
		Arch:        opts.Arch,
		Store:       node.Binaries,
		Trust:       s.Trust,
		Signer:      s.SystemPrincipal,
		Trace:       opts.Trace,
		PreLaunch:   node.WrapperSpecs.PreLaunchSpec(node.Wrappers),
		OnAgentDone: opts.OnAgentDone,
	})
	if err != nil {
		return nil, errors.Join(err, node.Close())
	}
	if !opts.NoCVM {
		node.CVM, err = vm.NewC(vm.CConfig{
			FW:     fw,
			Arch:   opts.Arch,
			Signer: s.SystemPrincipal,
			Trace:  opts.Trace,
		})
		if err != nil {
			return nil, errors.Join(err, node.Close())
		}
	}
	if !opts.NoServices {
		if err := s.launchServices(node, opts); err != nil {
			return nil, errors.Join(err, node.Close())
		}
	}
	s.Net.OnCrash(name, node.crash)
	s.Net.OnRestart(name, node.restart)
	s.mu.Lock()
	s.nodes[name] = node
	s.mu.Unlock()
	return node, nil
}

// crash is the simnet OnCrash hook: the machine loses everything that
// was not fsynced. The disk drops its page cache and the firewall wipes
// every registration, parked message and dedup entry — which also makes
// the VM control loops and every in-flight agent context on this host
// observe a kill and exit.
func (n *Node) crash() {
	// Journal the crash first: the collector already holds everything the
	// host pushed before this instant, and the entry marks where the
	// surviving spans were cut off.
	n.sys.Tower().Record(tower.Entry{
		Time:   n.Host.Clock().Now(),
		Host:   n.Name,
		Kind:   tower.KindCrash,
		Name:   "crash",
		Detail: "volatile state lost",
	})
	if n.ownTel {
		n.tel.WipeVolatile()
	}
	n.Disk.Crash()
	n.FW.CrashWipe()
}

// restart is the simnet OnRestart hook: the machine boots from durable
// state. Order matters — the cabinet replays snapshot+WAL first, the VMs
// reattach and the standard services relaunch (with fresh, empty
// volatile state), and only then does the firewall re-route recovered
// parked messages, so parks addressed to freshly re-registered services
// deliver immediately instead of waiting out their timeout.
func (n *Node) restart() {
	n.sys.Tower().Record(tower.Entry{
		Time:   n.Host.Clock().Now(),
		Host:   n.Name,
		Kind:   tower.KindRestart,
		Name:   "restart",
		Detail: "rebooting from durable state",
	})
	if _, err := n.Cabinet.Reopen(); err != nil {
		// Recovery is total by construction (corrupt tails are truncated,
		// corrupt snapshots fall back to WAL); an error here means the
		// disk itself refused, which only happens mid-crash.
		return
	}
	_ = n.VM.Reattach()
	_ = n.BinVM.Reattach()
	if n.CVM != nil {
		_ = n.CVM.Reattach()
	}
	if !n.opts.NoServices {
		_ = n.sys.launchServices(n, n.opts)
	}
	n.FW.RecoverDurable()
}

// launchServices starts the standard service agents on vm_go.
func (s *System) launchServices(node *Node, opts NodeOptions) error {
	sysName := s.SystemPrincipal.Name()
	svcs := map[string]vm.Handler{
		"ag_fs":      services.NewAgFS(),
		"ag_cabinet": services.NewAgCabinet(node.Cabinet),
		"ag_cron":    services.NewAgCron(),
		"ag_dir":     services.NewAgDir(),
		"ag_exec": services.NewAgExec(services.ExecConfig{
			Arch:  node.Arch,
			Store: node.Binaries,
			Trace: opts.Trace,
		}),
	}
	if !opts.NoCVM {
		svcs["ag_cc"] = services.NewAgCC("ag_exec", 0, opts.Trace)
	}
	if opts.NameService {
		// Recreated on every (re)launch: the table is volatile state and a
		// restart boots with an empty one (leases make the loss visible as
		// typed expiries instead of silent unbounds).
		node.Names = &naming.Table{TTL: opts.NameTTL}
		svcs[naming.ServiceName] = naming.NewService(node.Names)
	}
	if srv := s.directoryServer(node); srv != nil {
		svcs[directory.ServiceName] = srv.Handler()
	}
	if srv := s.directoryServer(node); srv != nil {
		svcs[directory.ServiceName] = srv.Handler()
	}
	names := make([]string, 0, len(svcs))
	for n := range svcs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, svcName := range names {
		node.Programs.Register(svcName, svcs[svcName])
		if _, err := node.VM.Launch(sysName, svcName, svcName, nil); err != nil {
			return fmt.Errorf("core: launch %s: %w", svcName, err)
		}
	}
	return nil
}

// Node returns the named node.
func (s *System) Node(name string) (*Node, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[name]
	if !ok {
		return nil, fmt.Errorf("core: no node %q", name)
	}
	return n, nil
}

// Nodes returns every node, sorted by name.
func (s *System) Nodes() []*Node {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Node, 0, len(s.nodes))
	for _, n := range s.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DeployProgram registers a program handler on every node (and nodes are
// free to register per-node closures directly on Node.Programs).
func (s *System) DeployProgram(name string, h vm.Handler) {
	for _, n := range s.Nodes() {
		n.Programs.Register(name, h)
	}
}

// DeployBinary installs a binary on every node: all hosts hold the
// bit-identical synthetic image (vm.SyntheticImage is deterministic) but
// each binds its own handler closure, which is how pre-deployed code
// captures host-local resources.
func (s *System) DeployBinary(name, version string, size int, mkHandler func(n *Node) vm.Handler) {
	for _, n := range s.Nodes() {
		n.Binaries.Deploy(vm.Binary{
			Name:    name,
			Arch:    n.Arch,
			Version: version,
			Payload: vm.SyntheticImage(name, n.Arch, version, size),
			Handler: mkHandler(n),
		})
	}
}

// DeployWrapper registers a wrapper factory on every node, so travelling
// stacks naming it can be rebuilt wherever the agent lands.
func (s *System) DeployWrapper(name string, f wrapper.Factory) {
	for _, n := range s.Nodes() {
		n.Wrappers.Register(name, f)
	}
}

// NewPrincipal generates a principal and installs it in the deployment
// trust store at the given level.
func (s *System) NewPrincipal(name string, level identity.Level) (*identity.Principal, error) {
	p, err := identity.NewPrincipal(name)
	if err != nil {
		return nil, err
	}
	s.Trust.AddPrincipal(p, level)
	return p, nil
}

// Close shuts down every node and the network.
func (s *System) Close() error {
	s.mu.Lock()
	nodes := make([]*Node, 0, len(s.nodes))
	for _, n := range s.nodes {
		nodes = append(nodes, n)
	}
	s.nodes = map[string]*Node{}
	s.mu.Unlock()
	var errs []error
	for _, n := range nodes {
		if err := n.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	if err := s.Net.Close(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}
