package core

import (
	"time"

	"tax/internal/firewall"
	"tax/internal/policy"
	"tax/internal/telemetry"
)

// Option tunes one host at AddNodeWith time. Options are the preferred
// way to configure nodes: they compose, read at the call site, and new
// knobs never break existing callers. The NodeOptions struct remains as
// a deprecated shim — every Option is a one-line setter over it, so the
// two styles configure exactly the same machinery.
//
//	node, err := sys.AddNodeWith("mars",
//		core.WithSecureChannels(),
//		core.WithDedupWindow(1024),
//		core.WithBatching(firewall.BatchConfig{MaxFrames: 16}),
//	)
type Option func(*NodeOptions)

// WithArch sets the machine architecture tag (default vm.DefaultArch).
func WithArch(arch string) Option { return func(o *NodeOptions) { o.Arch = arch } }

// WithBypass enables VM-internal delivery between co-located agents.
func WithBypass() Option { return func(o *NodeOptions) { o.Bypass = true } }

// WithRequireAuth makes the firewall reject unsigned inbound transfers.
func WithRequireAuth() Option { return func(o *NodeOptions) { o.RequireAuth = true } }

// WithQueueTimeout overrides the firewall's parked-message timeout.
func WithQueueTimeout(d time.Duration) Option {
	return func(o *NodeOptions) { o.QueueTimeout = d }
}

// WithForwardRetry sets the node's default retry policy for remote
// forwards (briefcases may override it via _RETRY).
func WithForwardRetry(p firewall.RetryPolicy) Option {
	return func(o *NodeOptions) { o.ForwardRetry = p }
}

// WithDedupWindow enables inbound duplicate-frame suppression on the
// node's firewall, remembering the last n frame hashes.
func WithDedupWindow(n int) Option { return func(o *NodeOptions) { o.DedupWindow = n } }

// WithTrace routes kernel instrumentation events to fn.
func WithTrace(fn func(event string)) Option { return func(o *NodeOptions) { o.Trace = fn } }

// WithoutServices skips launching the standard service agents.
func WithoutServices() Option { return func(o *NodeOptions) { o.NoServices = true } }

// WithoutCVM skips the C virtual machine and its compile services.
func WithoutCVM() Option { return func(o *NodeOptions) { o.NoCVM = true } }

// WithNameService additionally launches the ag_ns location registry on
// this node (typically only the deployment's home node runs one).
func WithNameService() Option { return func(o *NodeOptions) { o.NameService = true } }

// WithNameTTL leases the node's ag_ns bindings: updates are granted ttl
// of virtual time and a binding that stops being renewed expires to a
// typed naming.ErrExpired instead of resolving to a dead location.
func WithNameTTL(ttl time.Duration) Option { return func(o *NodeOptions) { o.NameTTL = ttl } }

// WithOnAgentDone observes every agent completion on this node's VMs
// (nil on clean exit, agent.ErrMoved after a move, else the fault).
func WithOnAgentDone(fn func(name string, err error)) Option {
	return func(o *NodeOptions) { o.OnAgentDone = fn }
}

// WithSecureChannels signs every inter-firewall frame with a per-host
// firewall principal and rejects unsigned or untrusted inbound frames.
func WithSecureChannels() Option { return func(o *NodeOptions) { o.SecureChannels = true } }

// WithTelemetry overrides the telemetry instance this node's firewall
// reports into.
func WithTelemetry(t *telemetry.Telemetry) Option {
	return func(o *NodeOptions) { o.Telemetry = t }
}

// WithFsyncCost sets the simulated latency of one fsync on the node's
// cabinet disk; zero uses cabinet.DefaultSyncLatency.
func WithFsyncCost(d time.Duration) Option { return func(o *NodeOptions) { o.FsyncCost = d } }

// WithSnapshotEvery sets the cabinet's WAL-compaction interval in
// committed transactions; negative disables snapshots (pure WAL).
func WithSnapshotEvery(n int) Option { return func(o *NodeOptions) { o.SnapshotEvery = n } }

// WithBatching enables coalesced outbound mediation on the node's
// firewall: same-destination frames share one network transfer, flushed
// by the thresholds in cfg. Every batched frame is still individually
// policy-checked at the receiver — batching moves bytes, not trust.
func WithBatching(cfg firewall.BatchConfig) Option {
	return func(o *NodeOptions) { o.Batch = &cfg }
}

// WithRelay makes the node's firewall forward inbound frames whose
// target is another host toward their next hop instead of dropping
// them. The wire bytes are forwarded verbatim after header-only
// re-mediation — a multi-hop itinerary encodes once at the origin and
// decodes once at the final receiver. resolve is the next-hop table
// (agent-URI host and port to transport address); nil means the host
// name is the transport address, i.e. every destination is a direct
// neighbor.
func WithRelay(resolve func(host string, port int) (string, error)) Option {
	return func(o *NodeOptions) {
		o.Relay = true
		if resolve != nil {
			o.Resolve = resolve
		}
	}
}

// WithGroupCommit coalesces concurrent cabinet Commit callers on this
// node into shared fsyncs: a leader drains the queue and syncs once for
// the whole batch, and every caller still returns only after its record
// is durable. maxTxns bounds the coalesce window (zero uses
// cabinet.DefaultGroupMaxTxns). Amortizes fsync cost the way batched
// mediation amortizes transfer cost.
func WithGroupCommit(maxTxns int) Option {
	return func(o *NodeOptions) {
		o.GroupCommit = true
		o.GroupMaxTxns = maxTxns
	}
}

// WithPolicy installs a declarative mediation ruleset on the node's
// firewall (see internal/policy for the line grammar: default
// allow/deny, first-match allow/deny/park rules over principal glob ×
// operation × target URI pattern, quota lines). The text is parsed at
// AddNode time — a bad ruleset fails the boot — and every non-system
// mediation is then evaluated against it, default-deny when no rule
// matches. Hot reload goes through Node.FW.ReloadPolicy or the
// "policyload" management operation.
func WithPolicy(ruleset string) Option {
	return func(o *NodeOptions) { o.Policy = ruleset }
}

// WithQuotas sets the default per-principal token-bucket quota: the
// rate/byte limits charged to principals no quota rule matches. Used
// alone (no WithPolicy) it meters the legacy mediation decisions under
// the allow-all compatibility ruleset; combined with WithPolicy, quota
// lines in the ruleset take precedence per principal.
func WithQuotas(q policy.Quota) Option {
	return func(o *NodeOptions) { o.Quota = &q }
}

// AddNodeWith boots a host configured by functional options. It is
// AddNode with the NodeOptions struct assembled for you; the zero
// option set gives a standard node.
func (s *System) AddNodeWith(name string, opts ...Option) (*Node, error) {
	var no NodeOptions
	for _, opt := range opts {
		if opt != nil {
			opt(&no)
		}
	}
	return s.AddNode(name, no)
}
