package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"tax/internal/agent"
	"tax/internal/briefcase"
	"tax/internal/firewall"
	"tax/internal/vm"
)

// TestBinaryAgentItinerary moves a signed binary agent across hosts via
// vm_bin: the full native-code-mobility simulation — carried image,
// per-host verification, onward moves re-signed.
func TestBinaryAgentItinerary(t *testing.T) {
	s := newSystem(t, NodeOptions{}, "h1", "h2", "h3")
	var mu sync.Mutex
	var visited []string
	done := make(chan struct{})

	handler := func(ctx *agent.Context) error {
		mu.Lock()
		visited = append(visited, ctx.Host())
		mu.Unlock()
		hosts, err := ctx.Briefcase().Folder(briefcase.FolderHosts)
		if err != nil {
			close(done)
			return err
		}
		next, ok := hosts.Pop()
		if !ok {
			close(done)
			return nil
		}
		if err := ctx.Go(next.String()); errors.Is(err, agent.ErrMoved) {
			return err
		}
		close(done)
		return errors.New("move failed")
	}
	s.DeployBinary("roambin", "1.0", 8<<10, func(n *Node) vm.Handler { return handler })

	n1, _ := s.Node("h1")
	bc := briefcase.New()
	bc.Ensure(briefcase.FolderHosts).AppendString(
		"tacoma://h2//vm_bin",
		"tacoma://h3//vm_bin",
	)
	if _, err := n1.BinVM.Launch("system", "roamer", "roambin", bc); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("binary itinerary stalled")
	}
	mu.Lock()
	defer mu.Unlock()
	want := "h1,h2,h3"
	if got := strings.Join(visited, ","); got != want {
		t.Errorf("visited %s, want %s", got, want)
	}
}

// TestHeterogeneousArchitectures is §5's multi-architecture story: the
// agent submits a list of binaries matching different architectures and
// each host's vm_bin extracts the one matching the local machine.
func TestHeterogeneousArchitectures(t *testing.T) {
	s := newSystem(t, NodeOptions{})
	sparc, err := s.AddNode("sparc-host", NodeOptions{Arch: "sparc-sunos5"})
	if err != nil {
		t.Fatal(err)
	}
	intel, err := s.AddNode("intel-host", NodeOptions{Arch: "i386-linux"})
	if err != nil {
		t.Fatal(err)
	}

	type report struct{ host, arch string }
	ran := make(chan report, 2)
	mk := func(n *Node) vm.Handler {
		return func(ctx *agent.Context) error {
			ran <- report{host: ctx.Host(), arch: n.Arch}
			hosts, err := ctx.Briefcase().Folder(briefcase.FolderHosts)
			if err != nil {
				return nil
			}
			if next, ok := hosts.Pop(); ok {
				if err := ctx.Go(next.String()); errors.Is(err, agent.ErrMoved) {
					return err
				}
			}
			return nil
		}
	}
	// Each node deploys its own architecture's image of the program.
	for _, n := range []*Node{sparc, intel} {
		n.Binaries.Deploy(vm.Binary{
			Name: "polyglot", Arch: n.Arch, Version: "1.0",
			Payload: vm.SyntheticImage("polyglot", n.Arch, "1.0", 4096),
			Handler: mk(n),
		})
	}

	// The briefcase carries BOTH images; each vm_bin picks its own.
	bc := briefcase.New()
	for _, arch := range []string{"sparc-sunos5", "i386-linux"} {
		vm.PackBinaries(bc, vm.Binary{
			Name: "polyglot", Arch: arch, Version: "1.0",
			Payload: vm.SyntheticImage("polyglot", arch, "1.0", 4096),
		})
	}
	bc.Ensure(briefcase.FolderHosts).AppendString("tacoma://intel-host//vm_bin")
	if _, err := sparc.BinVM.Launch("system", "poly", "polyglot", bc); err != nil {
		t.Fatal(err)
	}
	var got []report
	for len(got) < 2 {
		select {
		case r := <-ran:
			got = append(got, r)
		case <-time.After(10 * time.Second):
			t.Fatalf("multi-arch itinerary stalled after %v", got)
		}
	}
	if got[0].arch != "sparc-sunos5" || got[1].arch != "i386-linux" {
		t.Errorf("architectures: %+v", got)
	}
}

// TestInstancePinnedConversation keeps talking to one specific instance
// among several same-named agents (§3.2: "The instance number may be
// used if one wishes to make sure one continues to communicate with the
// same entity").
func TestInstancePinnedConversation(t *testing.T) {
	s := newSystem(t, NodeOptions{}, "h1")
	n, _ := s.Node("h1")

	mkEcho := func(id string) vm.Handler {
		return func(ctx *agent.Context) error {
			for {
				req, err := ctx.Await(0)
				if err != nil {
					return nil
				}
				resp := briefcase.New()
				resp.SetString("WHO", id)
				if err := ctx.Reply(req, resp); err != nil {
					return err
				}
			}
		}
	}
	n.Programs.Register("echoA", mkEcho("A"))
	n.Programs.Register("echoB", mkEcho("B"))
	// Two agents with the SAME registration name, different programs.
	regA, err := n.VM.Launch("system", "svc", "echoA", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.VM.Launch("system", "svc", "echoB", nil); err != nil {
		t.Fatal(err)
	}

	caller, err := n.FW.Register("test", "system", "caller")
	if err != nil {
		t.Fatal(err)
	}
	ctx := agent.NewContext(n.FW, caller, briefcase.New(), nil, nil)
	// Pin to instance A for several rounds.
	target := fmt.Sprintf("system/svc:%x", regA.URI().Instance)
	for i := 0; i < 5; i++ {
		resp, err := ctx.Meet(target, briefcase.New(), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if who, _ := resp.GetString("WHO"); who != "A" {
			t.Fatalf("round %d reached %q", i, who)
		}
	}
}

// TestSpawnLocal forks an agent onto the same host's VM.
func TestSpawnLocal(t *testing.T) {
	s := newSystem(t, NodeOptions{}, "h1")
	n, _ := s.Node("h1")
	ran := make(chan uint64, 2)
	n.Programs.Register("selfforker", func(ctx *agent.Context) error {
		if !ctx.Briefcase().Has("CHILD") {
			ctx.Briefcase().SetString("CHILD", "1")
			inst, err := ctx.Spawn("vm_go")
			if err != nil {
				t.Errorf("spawn: %v", err)
			}
			ran <- inst
			return nil
		}
		ran <- ctx.URI().Instance
		return nil
	})
	if _, err := n.VM.Launch("system", "forker", "selfforker", nil); err != nil {
		t.Fatal(err)
	}
	var reported, actual uint64
	for i := 0; i < 2; i++ {
		select {
		case v := <-ran:
			if reported == 0 {
				reported = v
			} else {
				actual = v
			}
		case <-time.After(5 * time.Second):
			t.Fatal("local spawn stalled")
		}
	}
	// One value is the parent's view of the child instance, the other is
	// the child's own; they must agree.
	if reported != actual {
		t.Errorf("instance mismatch: %x vs %x", reported, actual)
	}
}

// TestQueueTimeoutAcrossHosts: a message to an agent that never arrives
// on a remote host expires there and the error report crosses back.
func TestQueueTimeoutAcrossHosts(t *testing.T) {
	s := newSystem(t, NodeOptions{QueueTimeout: 200 * time.Millisecond}, "h1", "h2")
	n1, _ := s.Node("h1")

	sender, err := n1.FW.Register("test", "system", "sender")
	if err != nil {
		t.Fatal(err)
	}
	bc := briefcase.New()
	bc.SetString(briefcase.FolderSysTarget, "tacoma://h2/system/never-arrives")
	bc.SetString("BODY", "hello?")
	if err := n1.FW.Send(sender.GlobalURI(), bc); err != nil {
		t.Fatal(err)
	}
	rep, err := sender.Recv(5 * time.Second)
	if err != nil {
		t.Fatalf("no expiry report: %v", err)
	}
	if firewall.Kind(rep) != firewall.KindError {
		t.Errorf("kind = %s", firewall.Kind(rep))
	}
	msg, _ := rep.GetString(briefcase.FolderSysError)
	if !strings.Contains(msg, "expired") {
		t.Errorf("report = %q", msg)
	}
}

// TestAgCabinetAliasServesFiles exercises the second file service name.
func TestAgCabinetAliasServesFiles(t *testing.T) {
	s := newSystem(t, NodeOptions{}, "h1")
	n, _ := s.Node("h1")
	reg, err := n.FW.Register("test", "system", "caller")
	if err != nil {
		t.Fatal(err)
	}
	ctx := agent.NewContext(n.FW, reg, briefcase.New(), nil, nil)
	req := briefcase.New()
	req.SetString("_SVCOP", "put")
	req.SetString("_PATH", "/cab/x")
	req.Ensure("_DATA").AppendString("in the cabinet")
	if _, err := ctx.Meet("ag_cabinet", req, 5*time.Second); err != nil {
		t.Fatalf("cabinet put: %v", err)
	}
	get := briefcase.New()
	get.SetString("_SVCOP", "get")
	get.SetString("_PATH", "/cab/x")
	resp, err := ctx.Meet("ag_cabinet", get, 5*time.Second)
	if err != nil {
		t.Fatalf("cabinet get: %v", err)
	}
	f, err := resp.Folder("_DATA")
	if err != nil || f.Strings()[0] != "in the cabinet" {
		t.Errorf("cabinet contents: %v, %v", f, err)
	}
}

// TestSecureChannelsEndToEnd runs a full migration with signed
// inter-firewall frames: the itinerary completes, and an unsigned
// interloper's traffic is rejected.
func TestSecureChannelsEndToEnd(t *testing.T) {
	s := newSystem(t, NodeOptions{SecureChannels: true}, "h1", "h2")
	n1, _ := s.Node("h1")
	n2, _ := s.Node("h2")

	done := make(chan string, 1)
	s.DeployProgram("sec-tour", func(ctx *agent.Context) error {
		if ctx.Host() == "h1" {
			if err := ctx.Go("tacoma://h2//vm_go"); errors.Is(err, agent.ErrMoved) {
				return err
			}
			return errors.New("move failed")
		}
		done <- ctx.Host()
		return nil
	})
	if _, err := n1.VM.Launch("system", "sec", "sec-tour", nil); err != nil {
		t.Fatal(err)
	}
	select {
	case host := <-done:
		if host != "h2" {
			t.Errorf("finished on %s", host)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("secure migration stalled")
	}

	// An interloper host with no firewall (raw transport) cannot inject.
	raw, err := s.Net.AddHost("interloper")
	if err != nil {
		t.Fatal(err)
	}
	bc := briefcase.New()
	bc.SetString(briefcase.FolderSysTarget, "tacoma://h2/system/vm_go")
	bc.SetString(firewall.FolderKind, firewall.KindTransfer)
	bc.SetString(briefcase.FolderCode, "sec-tour")
	before := n2.FW.Stats().AuthFailures
	if err := raw.Send("h2", bc.Encode()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for n2.FW.Stats().AuthFailures == before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n2.FW.Stats().AuthFailures == before {
		t.Error("unsigned injected frame not rejected")
	}
}

// TestFirewallStatsProgress sanity-checks the counters over a workload.
func TestFirewallStatsProgress(t *testing.T) {
	s := newSystem(t, NodeOptions{}, "h1", "h2")
	n1, _ := s.Node("h1")
	n2, _ := s.Node("h2")

	n2.Programs.Register("sink", func(ctx *agent.Context) error {
		for {
			if _, err := ctx.Await(0); err != nil {
				return nil
			}
		}
	})
	if _, err := n2.VM.Launch("system", "sink", "sink", nil); err != nil {
		t.Fatal(err)
	}
	sender, err := n1.FW.Register("test", "system", "sender")
	if err != nil {
		t.Fatal(err)
	}
	const count = 20
	for i := 0; i < count; i++ {
		bc := briefcase.New()
		bc.SetString(briefcase.FolderSysTarget, "tacoma://h2/system/sink")
		if err := n1.FW.Send(sender.GlobalURI(), bc); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for n2.FW.Stats().Delivered < count && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := n1.FW.Stats().Forwarded; got < count {
		t.Errorf("h1 forwarded = %d", got)
	}
	if got := n2.FW.Stats().Delivered; got < count {
		t.Errorf("h2 delivered = %d", got)
	}
}
