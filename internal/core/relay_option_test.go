package core

import (
	"fmt"
	"testing"
	"time"

	"tax/internal/briefcase"
	"tax/internal/cabinet"
	"tax/internal/simnet"
)

// TestWithRelayForwardsAcrossChain boots a 3-hop routed topology with
// the functional options — origin, relay, destination, each host's
// next-hop table one step toward the destination — and proves a
// briefcase sent from the origin is forwarded through the relay to a
// mailbox on the far host, with the relay's zero-copy counter ticking.
func TestWithRelayForwardsAcrossChain(t *testing.T) {
	s, err := NewSystem(simnet.LAN100)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })

	next := map[string]string{"a": "b", "b": "c", "c": "c"}
	for _, name := range []string{"a", "b", "c"} {
		self := name
		hop := next[name]
		if _, err := s.AddNodeWith(name,
			WithoutServices(),
			WithoutCVM(),
			WithRelay(func(host string, _ int) (string, error) {
				if host == self {
					return self, nil
				}
				return hop, nil
			}),
		); err != nil {
			t.Fatalf("AddNodeWith(%s): %v", name, err)
		}
	}

	na, _ := s.Node("a")
	nc, _ := s.Node("c")
	src, err := na.FW.Register("vm", "system", "src")
	if err != nil {
		t.Fatal(err)
	}
	dst, err := nc.FW.Register("vm", "system", "dst")
	if err != nil {
		t.Fatal(err)
	}

	bc := briefcase.New()
	bc.SetString("BODY", "routed through b")
	bc.SetString(briefcase.FolderSysTarget, "tacoma://c/system/dst")
	if err := na.FW.Send(src.GlobalURI(), bc); err != nil {
		t.Fatalf("send: %v", err)
	}
	got, err := dst.Recv(5 * time.Second)
	if err != nil {
		t.Fatalf("recv at c: %v", err)
	}
	if body, _ := got.GetString("BODY"); body != "routed through b" {
		t.Fatalf("delivered body = %q", body)
	}

	nb, _ := s.Node("b")
	relayed := nb.FW.Telemetry().Registry().Counter("fw.relayed", "host", "b").Value()
	if relayed != 1 {
		t.Fatalf("relay b fw.relayed = %d, want 1 (frame must take the zero-copy path)", relayed)
	}
}

// TestWithGroupCommitCoalescesFsyncs boots a node with group commit on
// and drives its cabinet through CommitMany: the coalesce window must
// cap fsyncs well under the transaction count, and every record must be
// live afterwards.
func TestWithGroupCommitCoalescesFsyncs(t *testing.T) {
	s, err := NewSystem(simnet.LAN100)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	n, err := s.AddNodeWith("h1",
		WithoutServices(),
		WithoutCVM(),
		WithGroupCommit(16),
		WithSnapshotEvery(-1),
	)
	if err != nil {
		t.Fatal(err)
	}

	const txns = 48
	stream := make([][]cabinet.Op, txns)
	for i := range stream {
		key := fmt.Sprintf("gc/%02d", i)
		stream[i] = []cabinet.Op{{Key: key, Value: []byte("v:" + key)}}
	}
	before := n.Disk.Syncs()
	if err := n.Cabinet.CommitMany(stream); err != nil {
		t.Fatalf("CommitMany: %v", err)
	}
	fsyncs := n.Disk.Syncs() - before
	if fsyncs != txns/16 {
		t.Fatalf("fsyncs = %d for %d txns at window 16, want %d", fsyncs, txns, txns/16)
	}
	if n.Cabinet.Len() != txns {
		t.Fatalf("cabinet holds %d keys, want %d", n.Cabinet.Len(), txns)
	}
}
