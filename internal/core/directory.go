package core

import (
	"fmt"
	"time"

	"tax/internal/directory"
)

// DirectoryConfig describes the deployment's directory plane: which
// nodes carry shards and how bindings are replicated and leased.
type DirectoryConfig struct {
	// Nodes are the plane members (host names; the nodes must be added
	// to the system after EnableDirectory).
	Nodes []string
	// VNodes is the virtual-node count per member (0 = default).
	VNodes int
	// Replicas is the replication factor R, owner included (0 = 2,
	// clamped to len(Nodes)).
	Replicas int
	// TTL is the binding lease length (0 = directory.DefaultTTL,
	// negative disables expiry).
	TTL time.Duration
	// AckTimeout bounds each replica forward / anti-entropy RPC.
	AckTimeout time.Duration
	// Writers is the per-member replication worker count.
	Writers int
}

// EnableDirectory turns on the sharded directory plane: every node in
// cfg.Nodes added afterwards runs a shard service (ag_nsd) backed by
// its file cabinet, and DirectoryClient routes naming traffic across
// them. Call before AddNode, like EnableTower.
func (s *System) EnableDirectory(cfg DirectoryConfig) (*directory.Ring, error) {
	if cfg.Replicas == 0 {
		cfg.Replicas = 2
	}
	ring, err := directory.NewRing(cfg.Nodes, cfg.VNodes, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.nodes) > 0 {
		for _, n := range cfg.Nodes {
			if _, exists := s.nodes[n]; exists {
				return nil, fmt.Errorf("core: EnableDirectory must run before member node %q is added", n)
			}
		}
	}
	s.dirRing = ring
	s.dirCfg = cfg
	return ring, nil
}

// DirectoryRing returns the plane's ownership ring (nil unless
// EnableDirectory was called).
func (s *System) DirectoryRing() *directory.Ring {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dirRing
}

// DirectoryClient returns a client routing over the plane. It errors
// when the plane is not enabled.
func (s *System) DirectoryClient() (directory.Client, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dirRing == nil {
		return directory.Client{}, fmt.Errorf("core: directory plane not enabled")
	}
	return directory.Client{Ring: s.dirRing, Timeout: s.dirCfg.AckTimeout}, nil
}

// directoryServer lazily builds the node's plane membership (the same
// Server object survives restarts: its shard recovers from the cabinet
// on each handler relaunch). Returns nil when the plane is off or the
// node is not a member.
func (s *System) directoryServer(node *Node) *directory.Server {
	s.mu.Lock()
	ring, cfg := s.dirRing, s.dirCfg
	s.mu.Unlock()
	if ring == nil {
		return nil
	}
	member := false
	for _, n := range cfg.Nodes {
		if n == node.Name {
			member = true
			break
		}
	}
	if !member {
		return nil
	}
	if node.Dir == nil {
		node.Dir = directory.NewServer(directory.Config{
			Node:       node.Name,
			Ring:       ring,
			FW:         node.FW,
			Principal:  s.SystemPrincipal.Name(),
			Store:      node.Cabinet,
			TTL:        cfg.TTL,
			AckTimeout: cfg.AckTimeout,
			Writers:    cfg.Writers,
		})
		node.FW.SetDir(node.Dir.Rows)
	}
	return node.Dir
}
