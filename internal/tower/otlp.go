package tower

import (
	"encoding/hex"
	"encoding/json"
	"hash/fnv"
	"io"
	"sort"

	"tax/internal/telemetry"
)

// OTLP/JSON trace export: the collector's merged spans rendered in the
// OpenTelemetry OTLP JSON encoding (one resourceSpans block per host), so
// a real deployment ships kernel traces straight into any OTLP-speaking
// backend. The kernel's string ids are hashed to the fixed-width binary
// ids OTLP requires — fnv-1a 128 for trace ids, fnv-1a 64 for span ids —
// which preserves equality (same kernel id, same OTLP id) without a
// registry of mappings.

type otlpKeyValue struct {
	Key   string       `json:"key"`
	Value otlpAnyValue `json:"value"`
}

type otlpAnyValue struct {
	StringValue string `json:"stringValue"`
}

type otlpStatus struct {
	// Code 2 is STATUS_CODE_ERROR in the OTLP enum; 0 is UNSET.
	Code    int    `json:"code,omitempty"`
	Message string `json:"message,omitempty"`
}

type otlpSpan struct {
	TraceID      string `json:"traceId"`
	SpanID       string `json:"spanId"`
	ParentSpanID string `json:"parentSpanId,omitempty"`
	Name         string `json:"name"`
	// Times are virtual-clock nanoseconds since the simulation epoch.
	StartTimeUnixNano int64          `json:"startTimeUnixNano,string"`
	EndTimeUnixNano   int64          `json:"endTimeUnixNano,string"`
	Attributes        []otlpKeyValue `json:"attributes,omitempty"`
	Status            otlpStatus     `json:"status"`
}

type otlpScopeSpans struct {
	Scope struct {
		Name string `json:"name"`
	} `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpResourceSpans struct {
	Resource struct {
		Attributes []otlpKeyValue `json:"attributes"`
	} `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpExport struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

// otlpTraceID hashes a kernel trace id to the 16-byte hex OTLP trace id.
func otlpTraceID(id string) string {
	h := fnv.New128a()
	_, _ = h.Write([]byte(id))
	return hex.EncodeToString(h.Sum(nil))
}

// otlpSpanID hashes a kernel span id to the 8-byte hex OTLP span id.
func otlpSpanID(id string) string {
	if id == "" {
		return ""
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	return hex.EncodeToString(h.Sum(nil))
}

// WriteOTLP writes the collector's merged spans as one OTLP/JSON export
// document, grouped by host, hosts and spans in deterministic order.
func (c *Collector) WriteOTLP(w io.Writer) error {
	if c == nil {
		return nil
	}
	byHost := make(map[string][]telemetry.SpanRecord)
	for _, s := range c.Spans() {
		byHost[s.Host] = append(byHost[s.Host], s)
	}
	hosts := make([]string, 0, len(byHost))
	for h := range byHost {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)

	var doc otlpExport
	for _, host := range hosts {
		var rs otlpResourceSpans
		rs.Resource.Attributes = []otlpKeyValue{
			{Key: "service.name", Value: otlpAnyValue{StringValue: "tax"}},
			{Key: "host.name", Value: otlpAnyValue{StringValue: host}},
		}
		var ss otlpScopeSpans
		ss.Scope.Name = "tax/internal/telemetry"
		recs := byHost[host]
		sort.Slice(recs, func(i, j int) bool {
			if recs[i].Start != recs[j].Start {
				return recs[i].Start < recs[j].Start
			}
			return recs[i].SpanID < recs[j].SpanID
		})
		for _, r := range recs {
			sp := otlpSpan{
				TraceID:           otlpTraceID(r.TraceID),
				SpanID:            otlpSpanID(r.SpanID),
				ParentSpanID:      otlpSpanID(r.Parent),
				Name:              r.Name,
				StartTimeUnixNano: int64(r.Start),
				EndTimeUnixNano:   int64(r.End),
			}
			for i := 0; i+1 < len(r.Attrs); i += 2 {
				sp.Attributes = append(sp.Attributes, otlpKeyValue{
					Key: r.Attrs[i], Value: otlpAnyValue{StringValue: r.Attrs[i+1]},
				})
			}
			if r.Err != "" {
				sp.Status = otlpStatus{Code: 2, Message: r.Err}
			}
			ss.Spans = append(ss.Spans, sp)
		}
		rs.ScopeSpans = []otlpScopeSpans{ss}
		doc.ResourceSpans = append(doc.ResourceSpans, rs)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
