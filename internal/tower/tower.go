// Package tower is the system-wide observability plane: one collector that
// merges every host's per-host telemetry (PR 1) into cross-host, virtual-
// clock-timestamped itinerary timelines, plus a bounded flight recorder
// interleaving the infrastructure activity — fault injections, crashes,
// restarts, cabinet WAL/fsync/snapshot work — that per-host telemetry
// cannot see or cannot survive.
//
// The paper's evaluation is elapsed-time breakdowns of multi-hop
// itineraries; a per-host span ring answers "what did this host do" but not
// "why did this itinerary take 612 virtual ms". The tower answers that by
// construction: spans are pushed to the collector the moment they end (so a
// host crash that wipes its volatile rings loses nothing already pushed),
// infrastructure components report journal entries stamped with the active
// trace, and Trace() merges both into one causally-ordered timeline.
//
// The package deliberately does not import core, simnet, faults or cabinet:
// those layers push into the tower through plain function hooks, keeping
// the dependency arrow pointing here (core → tower → telemetry) and the
// collector usable from any harness.
package tower

import (
	"sort"
	"sync"
	"time"

	"tax/internal/telemetry"
)

// Journal entry kinds. Audit entries are derived from firewall event-log
// appends; the rest are reported by infrastructure hooks.
const (
	// KindAudit is a firewall mediation verdict (allow/deny/park/retry/...).
	KindAudit = "audit"
	// KindFault is a fault-plan decision applied to a transfer or the
	// topology (drop, duplicate, delay, corrupt, partition, heal).
	KindFault = "fault"
	// KindCrash is a host crash: volatile state lost at this instant.
	KindCrash = "crash"
	// KindRestart is a host restart after a crash.
	KindRestart = "restart"
	// KindCabinet is durability work: WAL appends, fsync batches,
	// snapshots, recovery replays.
	KindCabinet = "cabinet"
)

// Entry is one flight-recorder record: a timestamped infrastructure moment,
// stamped with the trace/span active when it happened ("" when none).
type Entry struct {
	// Seq is the entry's position in the journal's append order (1-based).
	Seq uint64 `json:"seq"`
	// Time is the virtual time on the reporting host's clock.
	Time time.Duration `json:"time"`
	// Host is the host (or link endpoint) the entry concerns.
	Host string `json:"host,omitempty"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Name names the action within the kind ("drop", "wal_append", ...).
	Name string `json:"name"`
	// Detail is free-form context ("msg=... dup of ...", "cause=...").
	Detail string `json:"detail,omitempty"`
	// Trace and Span carry the active trace context, if any.
	Trace string `json:"trace,omitempty"`
	Span  string `json:"span,omitempty"`
}

// Options configure a Collector.
type Options struct {
	// SpanCapacity bounds the merged span store (default 65536).
	SpanCapacity int
	// JournalCapacity bounds the flight recorder (default 16384).
	JournalCapacity int
}

// hostFeed is one attached host's telemetry plus the dedup state that makes
// push (span-end sinks) and pull (snapshot sweeps) idempotent together.
type hostFeed struct {
	tel       *telemetry.Telemetry
	spanSeen  map[uint64]struct{}
	eventSeen map[uint64]struct{}
	crashes   []time.Duration // crash instants, append order
	restarts  []time.Duration
}

// Collector is the system-wide trace collector and flight recorder. All
// methods are safe for concurrent use and safe on a nil receiver (the
// tower-disabled no-op), so hooks can call unconditionally.
type Collector struct {
	mu      sync.Mutex
	hosts   map[string]*hostFeed
	spans   []telemetry.SpanRecord // merged, bounded by spanCap, append order
	spanCap int
	dropped uint64 // spans discarded once spanCap was reached

	journal    []Entry // bounded ring
	jNext      int
	jTotal     uint64
	journalCap int
}

// New returns an empty collector.
func New(opts Options) *Collector {
	if opts.SpanCapacity <= 0 {
		opts.SpanCapacity = 65536
	}
	if opts.JournalCapacity <= 0 {
		opts.JournalCapacity = 16384
	}
	return &Collector{
		hosts:      make(map[string]*hostFeed),
		spanCap:    opts.SpanCapacity,
		journalCap: opts.JournalCapacity,
	}
}

// Attach registers a host's telemetry with the collector and installs the
// push feeds: every span commit and event append is delivered immediately,
// so the merged view stays ahead of any crash that wipes the host's own
// rings. Attach is idempotent per host label; re-attaching (a restarted
// host with a fresh Telemetry) replaces the feed but keeps the dedup state,
// because sequence counters survive WipeVolatile.
func (c *Collector) Attach(tel *telemetry.Telemetry) {
	if c == nil || tel == nil {
		return
	}
	host := tel.Host()
	c.mu.Lock()
	f := c.hosts[host]
	if f == nil {
		f = &hostFeed{
			spanSeen:  make(map[uint64]struct{}),
			eventSeen: make(map[uint64]struct{}),
		}
		c.hosts[host] = f
	}
	f.tel = tel
	c.mu.Unlock()

	// Sinks run outside the ring locks (see telemetry.EventLog.SetSink), so
	// taking c.mu inside them cannot invert against a Snapshot call.
	tel.Spans().SetSink(func(r telemetry.SpanRecord) { c.ingestSpans(host, []telemetry.SpanRecord{r}) })
	tel.Events().SetSink(func(e telemetry.Event) { c.ingestEvents(host, []telemetry.Event{e}) })
	// Sweep once so history recorded before Attach is not lost.
	c.pullHost(host, tel)
}

// Pull sweeps every attached host's retained rings into the merged view.
// Push feeds make this redundant in steady state; it exists for history
// recorded before Attach and as the refresh step before a snapshot.
func (c *Collector) Pull() {
	if c == nil {
		return
	}
	c.mu.Lock()
	feeds := make(map[string]*telemetry.Telemetry, len(c.hosts))
	for h, f := range c.hosts {
		feeds[h] = f.tel
	}
	c.mu.Unlock()
	for h, tel := range feeds {
		c.pullHost(h, tel)
	}
}

// pullHost snapshots outside c.mu (ring locks first), then ingests.
func (c *Collector) pullHost(host string, tel *telemetry.Telemetry) {
	spans, _ := tel.Spans().SnapshotTotal()
	events, _ := tel.Events().SnapshotTotal()
	c.ingestSpans(host, spans)
	c.ingestEvents(host, events)
}

func (c *Collector) ingestSpans(host string, recs []telemetry.SpanRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := c.feedLocked(host)
	for _, r := range recs {
		if _, dup := f.spanSeen[r.Seq]; dup {
			continue
		}
		f.spanSeen[r.Seq] = struct{}{}
		if len(c.spans) >= c.spanCap {
			c.dropped++
			continue
		}
		c.spans = append(c.spans, r)
	}
}

// ingestEvents merges audit events and mirrors each into the journal, so
// the flight recorder interleaves mediation verdicts with infrastructure
// entries without a second reporting path in the firewall.
func (c *Collector) ingestEvents(host string, events []telemetry.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := c.feedLocked(host)
	for _, e := range events {
		if _, dup := f.eventSeen[e.Seq]; dup {
			continue
		}
		f.eventSeen[e.Seq] = struct{}{}
		detail := ""
		if e.Principal != "" {
			detail = "from=" + e.Principal
		}
		if e.Target != "" {
			if detail != "" {
				detail += " "
			}
			detail += "to=" + e.Target
		}
		if e.Cause != "" {
			if detail != "" {
				detail += " "
			}
			detail += "cause=" + e.Cause
		}
		c.recordLocked(Entry{
			Time: e.Time, Host: host, Kind: KindAudit, Name: e.Type,
			Detail: detail, Trace: e.Trace, Span: e.Span,
		})
	}
}

func (c *Collector) feedLocked(host string) *hostFeed {
	f := c.hosts[host]
	if f == nil {
		f = &hostFeed{
			spanSeen:  make(map[uint64]struct{}),
			eventSeen: make(map[uint64]struct{}),
		}
		c.hosts[host] = f
	}
	return f
}

// Record appends one entry to the flight recorder. Infrastructure hooks
// (fault injector, cabinet, crash/restart wiring) call this directly.
func (c *Collector) Record(e Entry) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recordLocked(e)
	switch e.Kind {
	case KindCrash:
		c.feedLocked(e.Host).crashes = append(c.feedLocked(e.Host).crashes, e.Time)
	case KindRestart:
		c.feedLocked(e.Host).restarts = append(c.feedLocked(e.Host).restarts, e.Time)
	}
}

func (c *Collector) recordLocked(e Entry) {
	c.jTotal++
	e.Seq = c.jTotal
	if len(c.journal) < c.journalCap {
		c.journal = append(c.journal, e)
	} else {
		c.journal[c.jNext] = e
		c.jNext = (c.jNext + 1) % c.journalCap
	}
}

// Counts returns the number of merged spans and journal entries ingested so
// far. Harness settle loops poll it to detect quiescence.
func (c *Collector) Counts() (spans int, journal uint64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.spans), c.jTotal
}

// Dropped returns the number of spans discarded after the merged store
// filled; nonzero means a Trace view may be incomplete.
func (c *Collector) Dropped() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Journal returns the retained flight-recorder entries, oldest first.
func (c *Collector) Journal() []Entry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry, 0, len(c.journal))
	out = append(out, c.journal[c.jNext:]...)
	out = append(out, c.journal[:c.jNext]...)
	return out
}

// Spans returns every merged span, in ingest order.
func (c *Collector) Spans() []telemetry.SpanRecord {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]telemetry.SpanRecord, len(c.spans))
	copy(out, c.spans)
	return out
}

// Traces returns the distinct trace ids seen, sorted.
func (c *Collector) Traces() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	seen := make(map[string]struct{})
	for _, s := range c.spans {
		seen[s.TraceID] = struct{}{}
	}
	c.mu.Unlock()
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Hosts returns the attached host labels, sorted, plus each host's
// telemetry (for export layers that need registries).
func (c *Collector) Hosts() map[string]*telemetry.Telemetry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]*telemetry.Telemetry, len(c.hosts))
	for h, f := range c.hosts {
		if f.tel != nil {
			out[h] = f.tel
		}
	}
	return out
}

// crashWindows returns, for one host, the crash instants sorted ascending
// (used by Trace to tag spans that survived only because they were pushed).
func (c *Collector) crashTimesLocked(host string) []time.Duration {
	f := c.hosts[host]
	if f == nil {
		return nil
	}
	out := make([]time.Duration, len(f.crashes))
	copy(out, f.crashes)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
