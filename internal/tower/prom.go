package tower

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// WriteMetrics renders every attached host's registry in the Prometheus
// text exposition format, one series per instrument with the host attached
// as a `host` label. Metric names are prefixed "tax_" and dots become
// underscores; histograms expose the standard cumulative `_bucket{le=...}`
// series (boundaries in seconds) plus `_sum` and `_count`. Output is fully
// sorted so scrapes diff cleanly.
func (c *Collector) WriteMetrics(w io.Writer) error {
	if c == nil {
		return nil
	}
	var counters, gauges, hists []string

	for host, tel := range c.Hosts() {
		snap := tel.Registry().Snapshot()
		for key, v := range snap.Counters {
			name, labels := parseKey(key)
			counters = append(counters, fmt.Sprintf("%s%s %d",
				promName(name), promLabels(labels, host), v))
		}
		for key, v := range snap.Gauges {
			name, labels := parseKey(key)
			gauges = append(gauges, fmt.Sprintf("%s%s %d",
				promName(name), promLabels(labels, host), v))
		}
		for key, h := range snap.Histograms {
			name, labels := parseKey(key)
			base := promName(name)
			var cum int64
			for i, bound := range h.Bounds {
				cum += h.Counts[i]
				hists = append(hists, fmt.Sprintf("%s_bucket%s %d",
					base, promLabels(labels, host, "le", promSeconds(bound)), cum))
			}
			hists = append(hists, fmt.Sprintf("%s_bucket%s %d",
				base, promLabels(labels, host, "le", "+Inf"), h.Count))
			hists = append(hists, fmt.Sprintf("%s_sum%s %s",
				base, promLabels(labels, host), promSeconds(h.Sum)))
			hists = append(hists, fmt.Sprintf("%s_count%s %d",
				base, promLabels(labels, host), h.Count))
		}
	}
	for _, group := range [][]string{counters, gauges, hists} {
		sort.Strings(group)
		for _, line := range group {
			if _, err := io.WriteString(w, line+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

// parseKey splits a telemetry.Key-formatted "name{k=v,k2=v2}" instrument
// key back into name and label pairs.
func parseKey(key string) (name string, labels [][2]string) {
	open := strings.IndexByte(key, '{')
	if open < 0 {
		return key, nil
	}
	name = key[:open]
	body := strings.TrimSuffix(key[open+1:], "}")
	for _, pair := range strings.Split(body, ",") {
		if eq := strings.IndexByte(pair, '='); eq >= 0 {
			labels = append(labels, [2]string{pair[:eq], pair[eq+1:]})
		}
	}
	return name, labels
}

func promName(name string) string {
	var sb strings.Builder
	sb.WriteString("tax_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// promLabels renders a sorted label set with the host label and optional
// extra key/value appended (used for the le bucket label). A metric that
// already carries its own host label (the cabinet's per-host instruments)
// keeps it — duplicate label names are invalid exposition.
func promLabels(labels [][2]string, host string, extra ...string) string {
	all := make([][2]string, 0, len(labels)+2)
	all = append(all, labels...)
	hasHost := false
	for _, kv := range labels {
		if kv[0] == "host" {
			hasHost = true
		}
	}
	if host != "" && !hasHost {
		all = append(all, [2]string{"host", host})
	}
	for i := 0; i+1 < len(extra); i += 2 {
		all = append(all, [2]string{extra[i], extra[i+1]})
	}
	if len(all) == 0 {
		return ""
	}
	sort.Slice(all, func(i, j int) bool { return all[i][0] < all[j][0] })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, kv := range all {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(kv[0])
		sb.WriteString(`="`)
		sb.WriteString(strings.ReplaceAll(kv[1], `"`, `\"`))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// promSeconds renders a duration as seconds, the Prometheus base unit.
func promSeconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}
