package tower

import (
	"fmt"
	"io"
	"regexp"
	"sort"
	"strings"
	"time"

	"tax/internal/telemetry"
)

// Row is one line of a merged timeline: a span interval or a journal entry,
// normalized for canonical ordering and deterministic rendering.
type Row struct {
	// Time is the row's virtual-clock instant (a span's start).
	Time time.Duration `json:"time"`
	// Host is the recording host.
	Host string `json:"host"`
	// Kind is "span" or a journal Kind* constant.
	Kind string `json:"kind"`
	// Name is the span name or journal entry name.
	Name string `json:"name"`
	// Detail is the masked attribute/detail text (ids redacted — see
	// maskIDs — so two seeded reruns render byte-identical rows).
	Detail string `json:"detail,omitempty"`
	// Dur is the span duration (0 for journal entries).
	Dur time.Duration `json:"dur,omitempty"`
}

// Timeline is the merged, causally-ordered view of one trace.
type Timeline struct {
	// Spans and Entries count what the timeline merged.
	Spans   int `json:"spans"`
	Entries int `json:"entries"`
	// Elapsed is the span window: max end minus min start.
	Elapsed time.Duration `json:"elapsed"`
	// Rows are the timeline lines in canonical order.
	Rows []Row `json:"rows"`
}

// idPattern matches the kernel's minted ids — trace/span ids
// ("t:host:0123…", "s:host:0123…") and message correlation ids
// ("m0123…") — all with fixed 16-hex suffixes. Rendering masks them: the
// suffixes come from process-global counters, so they differ between two
// seeded reruns even though everything causally meaningful (names, hosts,
// virtual times, payload sizes) is identical. Masking is what makes the
// rendered timeline a determinism witness.
var idPattern = regexp.MustCompile(`\b(?:[ts]:[^\s:]*:[0-9a-f]{16}|m[0-9a-f]{16})\b`)

func maskIDs(s string) string {
	return idPattern.ReplaceAllString(s, "«id»")
}

// kindRank fixes the tie-break order for rows at the same instant: the
// span that starts at t sorts before the verdicts and faults it provokes.
func kindRank(kind string) int {
	switch kind {
	case "span":
		return 0
	case KindAudit:
		return 1
	case KindFault:
		return 2
	case KindCabinet:
		return 3
	case KindCrash:
		return 4
	case KindRestart:
		return 5
	}
	return 6
}

// Trace merges the collector's spans and journal into one timeline for a
// trace id. Merge rules:
//
//   - every span of the trace becomes a row at its start instant;
//   - every journal entry stamped with the trace becomes a row;
//   - unstamped infrastructure entries (crash, restart, cabinet, fault)
//     are included when they fall inside the trace's span window — they
//     are system-wide moments that shaped the itinerary even though no
//     briefcase carried the trace through them;
//   - a span on a host that later crashed is tagged "lost-at=<t>" with the
//     instant of the incarnation-ending crash: the span survived only
//     because it was pushed to the tower before the host wiped its rings;
//   - rows sort by (time, host, kind rank, name, detail, duration), which
//     is total given deterministic inputs, so one seed yields one byte
//     sequence.
func (c *Collector) Trace(traceID string) Timeline {
	if c == nil {
		return Timeline{}
	}
	c.mu.Lock()
	var spans []telemetry.SpanRecord
	for _, s := range c.spans {
		if s.TraceID == traceID {
			spans = append(spans, s)
		}
	}
	journal := make([]Entry, 0, len(c.journal))
	journal = append(journal, c.journal[c.jNext:]...)
	journal = append(journal, c.journal[:c.jNext]...)
	crashes := make(map[string][]time.Duration)
	for h := range c.hosts {
		if ct := c.crashTimesLocked(h); len(ct) > 0 {
			crashes[h] = ct
		}
	}
	c.mu.Unlock()

	var tl Timeline
	var lo, hi time.Duration
	for i, s := range spans {
		if i == 0 || s.Start < lo {
			lo = s.Start
		}
		if s.End > hi {
			hi = s.End
		}
	}
	tl.Elapsed = hi - lo
	tl.Spans = len(spans)

	for _, s := range spans {
		detail := attrsDetail(s.Attrs)
		if s.Err != "" {
			if detail != "" {
				detail += " "
			}
			detail += "err=" + s.Err
		}
		for _, ct := range crashes[s.Host] {
			if ct >= s.End {
				if detail != "" {
					detail += " "
				}
				detail += fmt.Sprintf("lost-at=%s", fmtDur(ct))
				break
			}
		}
		tl.Rows = append(tl.Rows, Row{
			Time: s.Start, Host: s.Host, Kind: "span", Name: s.Name,
			Detail: maskIDs(detail), Dur: s.End - s.Start,
		})
	}
	spanHosts := make(map[string]struct{}, 4)
	for _, s := range spans {
		spanHosts[s.Host] = struct{}{}
	}
	for _, e := range journal {
		include := e.Trace == traceID
		if !include && e.Trace == "" && len(spans) > 0 {
			switch e.Kind {
			case KindCrash, KindRestart:
				// A participating host's crash/restart shapes the itinerary
				// even when it happens after the last span that survived —
				// that is exactly the crash that cut the trace short.
				_, participated := spanHosts[e.Host]
				include = participated && e.Time >= lo
			case KindCabinet, KindFault:
				include = e.Time >= lo && e.Time <= hi
			}
		}
		if !include {
			continue
		}
		tl.Entries++
		tl.Rows = append(tl.Rows, Row{
			Time: e.Time, Host: e.Host, Kind: e.Kind, Name: e.Name,
			Detail: maskIDs(e.Detail),
		})
	}

	sort.Slice(tl.Rows, func(i, j int) bool {
		a, b := tl.Rows[i], tl.Rows[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Host != b.Host {
			return a.Host < b.Host
		}
		if ra, rb := kindRank(a.Kind), kindRank(b.Kind); ra != rb {
			return ra < rb
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Detail != b.Detail {
			return a.Detail < b.Detail
		}
		return a.Dur < b.Dur
	})
	return tl
}

// LatestTrace returns the trace id of the most recently ingested span (""
// when none) — the default target for demo explain calls.
func (c *Collector) LatestTrace() string {
	if c == nil {
		return ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.spans) == 0 {
		return ""
	}
	return c.spans[len(c.spans)-1].TraceID
}

// attrsDetail renders flattened attr pairs "k=v k=v" in recorded order.
func attrsDetail(attrs []string) string {
	if len(attrs) == 0 {
		return ""
	}
	var sb strings.Builder
	for i := 0; i+1 < len(attrs); i += 2 {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(attrs[i])
		sb.WriteByte('=')
		sb.WriteString(attrs[i+1])
	}
	return sb.String()
}

// fmtDur renders a virtual instant with fixed precision so column widths
// are stable across rows and reruns.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d)/float64(time.Millisecond))
}

// ExplainLines renders a timeline as aligned text lines, one per row, with
// a summary header. The output is the determinism witness the chaostest
// suite asserts on: same seed, same bytes.
func (tl Timeline) ExplainLines() []string {
	lines := make([]string, 0, len(tl.Rows)+1)
	lines = append(lines, fmt.Sprintf(
		"timeline: %d spans, %d journal entries, %s elapsed (virtual)",
		tl.Spans, tl.Entries, fmtDur(tl.Elapsed)))
	for _, r := range tl.Rows {
		line := fmt.Sprintf("[%12s] %-8s %-7s %-14s", fmtDur(r.Time), r.Host, r.Kind, r.Name)
		if r.Kind == "span" {
			line += fmt.Sprintf(" (%s)", fmtDur(r.Dur))
		}
		if r.Detail != "" {
			line += " " + r.Detail
		}
		lines = append(lines, strings.TrimRight(line, " "))
	}
	return lines
}

// Explain writes ExplainLines for a trace to w.
func (c *Collector) Explain(w io.Writer, traceID string) error {
	for _, line := range c.Trace(traceID).ExplainLines() {
		if _, err := io.WriteString(w, line+"\n"); err != nil {
			return err
		}
	}
	return nil
}
