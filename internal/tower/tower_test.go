package tower

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"tax/internal/telemetry"
	"tax/internal/vclock"
)

func newHostTel(host string) (*telemetry.Telemetry, *vclock.Virtual) {
	return telemetry.New(telemetry.Options{
		Host: host, Spans: true, Events: true,
	}), vclock.NewVirtual()
}

// TestCollectorPushAndPull verifies spans arrive via the push sink as they
// end, and that Pull dedups against what push already delivered.
func TestCollectorPushAndPull(t *testing.T) {
	c := New(Options{})
	tel, clk := newHostTel("h1")
	c.Attach(tel)

	trace := telemetry.NewTraceID("h1")
	sp := tel.Spans().Start(clk, "h1", trace, "", "op.one")
	clk.Advance(5 * time.Millisecond)
	sp.End()

	if n, _ := c.Counts(); n != 1 {
		t.Fatalf("after push: %d spans, want 1", n)
	}
	c.Pull()
	if n, _ := c.Counts(); n != 1 {
		t.Fatalf("after pull: %d spans, want 1 (pull must dedup push)", n)
	}
	got := c.Spans()
	if got[0].Name != "op.one" || got[0].Host != "h1" {
		t.Fatalf("merged span = %+v", got[0])
	}
}

// TestCollectorSurvivesWipe is the crash-semantics core: spans pushed
// before a host wipes its volatile rings stay in the merged view, and the
// timeline tags them with the crash instant.
func TestCollectorSurvivesWipe(t *testing.T) {
	c := New(Options{})
	tel, clk := newHostTel("h2")
	c.Attach(tel)

	trace := telemetry.NewTraceID("h2")
	sp := tel.Spans().Start(clk, "h2", trace, "", "doomed.work")
	clk.Advance(3 * time.Millisecond)
	sp.End()

	// Crash: volatile rings wiped, collector told.
	clk.Advance(1 * time.Millisecond)
	tel.WipeVolatile()
	c.Record(Entry{Time: clk.Now(), Host: "h2", Kind: KindCrash, Name: "crash"})

	if spans := tel.Spans().Snapshot(); len(spans) != 0 {
		t.Fatalf("host ring not wiped: %d spans", len(spans))
	}
	tl := c.Trace(trace)
	if tl.Spans != 1 {
		t.Fatalf("timeline lost the pre-crash span: %+v", tl)
	}
	var spanRow, crashRow bool
	for _, r := range tl.Rows {
		if r.Kind == "span" && strings.Contains(r.Detail, "lost-at=") {
			spanRow = true
		}
		if r.Kind == KindCrash {
			crashRow = true
		}
	}
	if !spanRow || !crashRow {
		t.Fatalf("want crash-tagged span row and crash row, got %+v", tl.Rows)
	}
}

// TestTraceMergesAcrossHosts checks the causal merge: spans and audit
// events from several hosts interleave into one ordered timeline.
func TestTraceMergesAcrossHosts(t *testing.T) {
	c := New(Options{})
	telA, clkA := newHostTel("home")
	telB, clkB := newHostTel("h1")
	c.Attach(telA)
	c.Attach(telB)

	trace := telemetry.NewTraceID("home")
	root := telA.Spans().Start(clkA, "home", trace, "", "agent.go")
	clkA.Advance(2 * time.Millisecond)

	clkB.AdvanceTo(2 * time.Millisecond)
	hop := telB.Spans().Start(clkB, "h1", trace, root.ID(), "fw.deliver")
	telB.Events().Append(telemetry.Event{
		Time: clkB.Now(), Type: telemetry.EventAllow,
		Target: "tax://h1/worker", Trace: trace, Span: hop.ID(),
	})
	clkB.Advance(4 * time.Millisecond)
	hop.End()
	clkA.AdvanceTo(7 * time.Millisecond)
	root.End()

	// A fault decision stamped with the trace, plus an unrelated one from
	// another trace that must not leak in.
	c.Record(Entry{Time: 2 * time.Millisecond, Host: "home→h1", Kind: KindFault,
		Name: "delay", Detail: "by=1ms", Trace: trace})
	c.Record(Entry{Time: 3 * time.Millisecond, Host: "x→y", Kind: KindAudit,
		Name: "deny", Trace: "t:other:0000000000000099"})

	tl := c.Trace(trace)
	if tl.Spans != 2 {
		t.Fatalf("spans = %d, want 2", tl.Spans)
	}
	kinds := make(map[string]int)
	for _, r := range tl.Rows {
		kinds[r.Kind]++
	}
	if kinds["span"] != 2 || kinds[KindAudit] != 1 || kinds[KindFault] != 1 {
		t.Fatalf("row kinds = %v", kinds)
	}
	for i := 1; i < len(tl.Rows); i++ {
		if tl.Rows[i].Time < tl.Rows[i-1].Time {
			t.Fatalf("rows out of order: %+v", tl.Rows)
		}
	}
	if tl.Elapsed != 7*time.Millisecond {
		t.Fatalf("elapsed = %v, want 7ms", tl.Elapsed)
	}
}

// TestExplainMasksIDs: rendered lines must not leak counter-minted ids,
// which differ across reruns.
func TestExplainMasksIDs(t *testing.T) {
	c := New(Options{})
	tel, clk := newHostTel("h1")
	c.Attach(tel)
	trace := telemetry.NewTraceID("h1")
	sp := tel.Spans().Start(clk, "h1", trace, "", "agent.meet")
	sp.SetAttr("msg", "m00000000000000ab")
	sp.SetAttr("peer", "s:h2:00000000000000cd")
	clk.Advance(time.Millisecond)
	sp.End()

	var buf bytes.Buffer
	if err := c.Explain(&buf, trace); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "m00000000000000ab") || strings.Contains(out, "s:h2:") {
		t.Fatalf("ids leaked into explain output:\n%s", out)
	}
	if !strings.Contains(out, "«id»") {
		t.Fatalf("expected masked ids in output:\n%s", out)
	}
	if !strings.Contains(out, "agent.meet") {
		t.Fatalf("span name missing:\n%s", out)
	}
}

func TestWriteMetricsPrometheus(t *testing.T) {
	c := New(Options{})
	tel, _ := newHostTel("h1")
	c.Attach(tel)
	tel.Registry().Counter("fw.send", "verdict", "ok").Add(3)
	tel.Registry().Histogram("fw.send.latency").Observe(15 * time.Microsecond)

	var buf bytes.Buffer
	if err := c.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`tax_fw_send{host="h1",verdict="ok"} 3`,
		`tax_fw_send_latency_bucket{host="h1",le="+Inf"} 1`,
		`tax_fw_send_latency_count{host="h1"} 1`,
		`tax_fw_send_latency_sum{host="h1"} 1.5e-05`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Buckets must be cumulative: the 2e-05 bucket includes the 1e-05 one.
	if !strings.Contains(out, `le="2e-05"} 1`) {
		t.Errorf("cumulative bucket missing in:\n%s", out)
	}
}

func TestWriteOTLP(t *testing.T) {
	c := New(Options{})
	tel, clk := newHostTel("h1")
	c.Attach(tel)
	trace := telemetry.NewTraceID("h1")
	parent := tel.Spans().Start(clk, "h1", trace, "", "root")
	clk.Advance(time.Millisecond)
	child := tel.Spans().Start(clk, "h1", trace, parent.ID(), "child")
	child.SetErr(errFake("boom"))
	clk.Advance(time.Millisecond)
	child.End()
	parent.End()

	var buf bytes.Buffer
	if err := c.WriteOTLP(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"resourceSpans"`, `"host.name"`, `"name": "root"`, `"name": "child"`,
		`"parentSpanId"`, `"message": "boom"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in OTLP output", want)
		}
	}
	// Hashed ids must be fixed-width hex: 32 chars for traces, 16 for spans.
	if got := otlpTraceID(trace); len(got) != 32 {
		t.Errorf("traceId len = %d, want 32", len(got))
	}
	if got := otlpSpanID(parent.ID()); len(got) != 16 {
		t.Errorf("spanId len = %d, want 16", len(got))
	}
	// Same kernel id must hash to the same OTLP id.
	if otlpTraceID(trace) != otlpTraceID(trace) {
		t.Error("trace id hash not stable")
	}
}

// TestJournalBounded: the flight recorder is a ring, oldest entries fall
// out, Seq keeps counting.
func TestJournalBounded(t *testing.T) {
	c := New(Options{JournalCapacity: 4})
	for i := 0; i < 10; i++ {
		c.Record(Entry{Time: time.Duration(i), Host: "h", Kind: KindCabinet, Name: "wal_append"})
	}
	j := c.Journal()
	if len(j) != 4 {
		t.Fatalf("journal len = %d, want 4", len(j))
	}
	if j[0].Seq != 7 || j[3].Seq != 10 {
		t.Fatalf("journal window = [%d..%d], want [7..10]", j[0].Seq, j[3].Seq)
	}
}

type errFake string

func (e errFake) Error() string { return string(e) }
