package fleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tax/internal/telemetry"
)

// TestPoolBoundRespected: no more than Workers tasks run concurrently.
func TestPoolBoundRespected(t *testing.T) {
	const workers = 3
	s := New(Config{Workers: workers})
	var inflight, peak int64
	tasks := make([]Task, 20)
	for i := range tasks {
		tasks[i] = Task{
			ID: fmt.Sprintf("t%d", i),
			Run: func() (any, time.Duration, error) {
				n := atomic.AddInt64(&inflight, 1)
				for {
					p := atomic.LoadInt64(&peak)
					if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				atomic.AddInt64(&inflight, -1)
				return nil, 0, nil
			},
		}
	}
	rep := s.Run(tasks)
	if got := atomic.LoadInt64(&peak); got > workers {
		t.Errorf("peak concurrency %d > %d workers", got, workers)
	}
	if rep.Failed() != 0 {
		t.Errorf("failed tasks: %d", rep.Failed())
	}
}

// TestHostAdmissionLimit: at most HostLimit tasks occupy one host at a
// time even when the pool is much wider.
func TestHostAdmissionLimit(t *testing.T) {
	const limit = 2
	s := New(Config{Workers: 8, HostLimit: limit})
	var perHost sync.Map // host -> *int64
	load := func(host string) *int64 {
		v, _ := perHost.LoadOrStore(host, new(int64))
		return v.(*int64)
	}
	var violations int64
	tasks := make([]Task, 24)
	for i := range tasks {
		host := fmt.Sprintf("server%d", i%3)
		tasks[i] = Task{
			ID:    fmt.Sprintf("t%d", i),
			Hosts: []string{host},
			Run: func() (any, time.Duration, error) {
				if n := atomic.AddInt64(load(host), 1); n > limit {
					atomic.AddInt64(&violations, 1)
				}
				time.Sleep(time.Millisecond)
				atomic.AddInt64(load(host), -1)
				return nil, 0, nil
			},
		}
	}
	s.Run(tasks)
	if violations != 0 {
		t.Errorf("%d admissions above the per-host limit %d", violations, limit)
	}
}

// TestOverlappingHostSetsNoDeadlock: tasks holding multi-host slot sets
// in conflicting listed orders complete (sorted acquisition excludes
// deadlock); duplicate hosts in one task don't self-deadlock.
func TestOverlappingHostSetsNoDeadlock(t *testing.T) {
	s := New(Config{Workers: 8, HostLimit: 1})
	hosts := [][]string{
		{"a", "b"}, {"b", "a"}, {"b", "c"}, {"c", "b"},
		{"a", "c"}, {"c", "a"}, {"a", "a", "b"},
	}
	var tasks []Task
	for i, hs := range hosts {
		for rep := 0; rep < 4; rep++ {
			tasks = append(tasks, Task{
				ID:    fmt.Sprintf("t%d-%d", i, rep),
				Hosts: hs,
				Run: func() (any, time.Duration, error) {
					time.Sleep(100 * time.Microsecond)
					return nil, 0, nil
				},
			})
		}
	}
	done := make(chan *Report, 1)
	go func() { done <- s.Run(tasks) }()
	select {
	case rep := <-done:
		if rep.Failed() != 0 {
			t.Errorf("failed tasks: %d", rep.Failed())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("scheduler deadlocked")
	}
}

// TestResultsDeterministicOrder: results land at their task index with
// their task's value regardless of completion order, and per-worker
// virtual costs sum to the total.
func TestResultsDeterministicOrder(t *testing.T) {
	s := New(Config{Workers: 4})
	const n = 16
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{
			ID: fmt.Sprintf("t%d", i),
			Run: func() (any, time.Duration, error) {
				// Finish in scrambled order.
				time.Sleep(time.Duration((n-i)%5) * time.Millisecond)
				return i * 10, time.Duration(i) * time.Second, nil
			},
		}
	}
	rep := s.Run(tasks)
	var total time.Duration
	for i, res := range rep.Results {
		if res.Index != i || res.ID != fmt.Sprintf("t%d", i) {
			t.Errorf("result %d carries ID %s index %d", i, res.ID, res.Index)
		}
		if res.Value.(int) != i*10 {
			t.Errorf("result %d value = %v, want %d", i, res.Value, i*10)
		}
		if res.Cost != time.Duration(i)*time.Second {
			t.Errorf("result %d cost = %v", i, res.Cost)
		}
		total += res.Cost
	}
	var workerSum time.Duration
	for _, c := range rep.WorkerCost {
		workerSum += c
	}
	if workerSum != total {
		t.Errorf("worker costs sum to %v, tasks sum to %v", workerSum, total)
	}
	if rep.Makespan < total/4 || rep.Makespan > total {
		t.Errorf("modeled makespan %v outside [total/workers, total] for total %v", rep.Makespan, total)
	}
}

// TestModeledMakespanDeterministic: the makespan is list-scheduled from
// per-task costs in task order, so it is a pure function of (costs,
// Workers) no matter how the wall-clock assignment scrambles.
func TestModeledMakespanDeterministic(t *testing.T) {
	costs := []time.Duration{3 * time.Second, time.Second, time.Second, time.Second, 2 * time.Second}
	// List schedule onto 2 virtual workers: w0=3s; w1=1+1+1=3s; the 2s
	// task ties and lands on w0 -> makespan 5s.
	const want = 5 * time.Second
	for round := 0; round < 3; round++ {
		s := New(Config{Workers: 2})
		tasks := make([]Task, len(costs))
		for i := range tasks {
			c := costs[i]
			tasks[i] = Task{
				ID: fmt.Sprintf("t%d", i),
				Run: func() (any, time.Duration, error) {
					// Scramble wall-clock completion order per round.
					time.Sleep(time.Duration((i*7+round*3)%5) * time.Millisecond)
					return nil, c, nil
				},
			}
		}
		if rep := s.Run(tasks); rep.Makespan != want {
			t.Errorf("round %d: makespan = %v, want %v", round, rep.Makespan, want)
		}
	}
}

// TestSerialMakespanIsTotal: with one worker the makespan is the summed
// virtual cost — the baseline the parallel speedup is measured against.
func TestSerialMakespanIsTotal(t *testing.T) {
	s := New(Config{Workers: 1})
	tasks := make([]Task, 8)
	for i := range tasks {
		tasks[i] = Task{
			ID:  fmt.Sprintf("t%d", i),
			Run: func() (any, time.Duration, error) { return nil, time.Second, nil },
		}
	}
	rep := s.Run(tasks)
	if rep.Makespan != 8*time.Second {
		t.Errorf("serial makespan = %v, want 8s", rep.Makespan)
	}
}

// TestErrorsReported: task errors surface on their result, counted by
// Failed, without aborting the batch.
func TestErrorsReported(t *testing.T) {
	s := New(Config{Workers: 2})
	boom := errors.New("boom")
	tasks := []Task{
		{ID: "ok", Run: func() (any, time.Duration, error) { return "fine", 0, nil }},
		{ID: "bad", Run: func() (any, time.Duration, error) { return nil, 0, boom }},
		{ID: "ok2", Run: func() (any, time.Duration, error) { return "fine", 0, nil }},
	}
	rep := s.Run(tasks)
	if rep.Failed() != 1 {
		t.Fatalf("Failed() = %d, want 1", rep.Failed())
	}
	if !errors.Is(rep.Results[1].Err, boom) {
		t.Errorf("result 1 err = %v", rep.Results[1].Err)
	}
}

// TestTelemetryGauges: inflight gauges return to zero and per-host
// gauges exist for every host touched.
func TestTelemetryGauges(t *testing.T) {
	tel := telemetry.New(telemetry.Options{Host: "fleet"})
	s := New(Config{Workers: 4, HostLimit: 1, Telemetry: tel})
	tasks := make([]Task, 6)
	for i := range tasks {
		tasks[i] = Task{
			ID:    fmt.Sprintf("t%d", i),
			Hosts: []string{fmt.Sprintf("server%d", i%2)},
			Run:   func() (any, time.Duration, error) { return nil, 0, nil },
		}
	}
	s.Run(tasks)
	reg := tel.Registry()
	if v := reg.Gauge("fleet.inflight").Value(); v != 0 {
		t.Errorf("fleet.inflight = %d after Run", v)
	}
	for _, host := range []string{"server0", "server1"} {
		if v := reg.Gauge("fleet.host_inflight", "host", host).Value(); v != 0 {
			t.Errorf("fleet.host_inflight{%s} = %d after Run", host, v)
		}
	}
}
