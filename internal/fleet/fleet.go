// Package fleet schedules many agent itineraries concurrently over one
// deployment: a bounded worker pool launches tasks, per-host admission
// limits keep any single server from being swamped (Gavalas' fleet-level
// migration scheduling observation: mobile-agent throughput is won or
// lost in how launches are spread over the network), and the per-task
// virtual costs roll up into a fleet makespan so throughput is measured
// on the same virtual clocks as every other experiment in this repo.
//
// The scheduler is deliberately mechanism-only: a task is any closure,
// typically "launch one mwWebbot itinerary and wait for its report to
// fan in at the collector" (see linkmine.RunFleet).
package fleet

import (
	"sort"
	"sync"
	"time"

	"tax/internal/telemetry"
)

// Task is one unit of fleet work.
type Task struct {
	// ID labels the task in results (unique per Run by convention).
	ID string
	// Hosts are the deployment hosts the task occupies; the scheduler
	// holds one admission slot on every listed host while the task
	// runs. Order does not matter (slots are acquired in sorted order
	// to exclude deadlock).
	Hosts []string
	// Run executes the task and returns its result value and the
	// virtual time the task consumed (zero when not applicable).
	Run func() (value any, cost time.Duration, err error)
}

// Result is one task's outcome.
type Result struct {
	// ID and Index identify the task (Index is its position in the
	// Run slice; Results are returned in that order).
	ID    string
	Index int
	// Value is what the task's Run returned.
	Value any
	// Err is the task's error, if any.
	Err error
	// Worker is the pool worker that executed the task.
	Worker int
	// Cost is the virtual time the task reported.
	Cost time.Duration
	// Wait is the wall-clock time spent queued before admission.
	Wait time.Duration
}

// Report is the outcome of one Run.
type Report struct {
	// Results holds every task outcome, in task order.
	Results []Result
	// Wall is the wall-clock duration of the whole Run.
	Wall time.Duration
	// WorkerCost is each worker's summed virtual task cost under the
	// observed (wall-clock, hence nondeterministic) task assignment.
	WorkerCost []time.Duration
	// Makespan is the fleet's virtual completion time under a modeled
	// schedule: task costs list-scheduled in task order onto Workers
	// virtual workers, each task to the least-loaded worker. Unlike
	// the observed assignment this depends only on (costs, Workers),
	// so the throughput metric is deterministic. With one worker it is
	// the summed cost; with W workers and similar tasks it shrinks
	// roughly W-fold — the fleet throughput metric.
	Makespan time.Duration
}

// Failed counts tasks that returned an error.
func (r *Report) Failed() int {
	n := 0
	for _, res := range r.Results {
		if res.Err != nil {
			n++
		}
	}
	return n
}

// Config parameterizes a Scheduler.
type Config struct {
	// Workers bounds concurrently running tasks (<= 0 means 1).
	Workers int
	// HostLimit bounds tasks concurrently occupying one host
	// (<= 0 means unlimited).
	HostLimit int
	// Telemetry, when set, receives fleet gauges: fleet.inflight,
	// fleet.waiting, and per-host fleet.host_inflight.
	Telemetry *telemetry.Telemetry
}

// Scheduler runs task batches under one admission policy.
type Scheduler struct {
	cfg Config

	mu   sync.Mutex
	sems map[string]*hostSlots

	gInflight *telemetry.Gauge
	gWaiting  *telemetry.Gauge
}

// hostSlots is one host's admission state: a slot semaphore plus the
// gauge mirroring how many tasks currently occupy the host.
type hostSlots struct {
	sem   chan struct{}
	gauge *telemetry.Gauge
}

// New creates a scheduler.
func New(cfg Config) *Scheduler {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	s := &Scheduler{cfg: cfg, sems: make(map[string]*hostSlots)}
	if cfg.Telemetry != nil {
		reg := cfg.Telemetry.Registry()
		s.gInflight = reg.Gauge("fleet.inflight")
		s.gWaiting = reg.Gauge("fleet.waiting")
	}
	return s
}

// hostSem returns the admission state for a host.
func (s *Scheduler) hostSem(host string) *hostSlots {
	s.mu.Lock()
	defer s.mu.Unlock()
	hs, ok := s.sems[host]
	if !ok {
		hs = &hostSlots{sem: make(chan struct{}, s.cfg.HostLimit)}
		if s.cfg.Telemetry != nil {
			hs.gauge = s.cfg.Telemetry.Registry().Gauge("fleet.host_inflight", "host", host)
		}
		s.sems[host] = hs
	}
	return hs
}

// admit acquires one slot on every listed host, in sorted order so two
// tasks contending for overlapping host sets cannot deadlock.
func (s *Scheduler) admit(hosts []string) (release func()) {
	if s.cfg.HostLimit <= 0 || len(hosts) == 0 {
		return func() {}
	}
	ordered := append([]string(nil), hosts...)
	sort.Strings(ordered)
	// Duplicate hosts would self-deadlock at HostLimit 1; collapse them.
	uniq := ordered[:0]
	for i, h := range ordered {
		if i == 0 || h != ordered[i-1] {
			uniq = append(uniq, h)
		}
	}
	var held []*hostSlots
	for _, h := range uniq {
		hs := s.hostSem(h)
		hs.sem <- struct{}{}
		if hs.gauge != nil {
			hs.gauge.Add(1)
		}
		held = append(held, hs)
	}
	return func() {
		for _, hs := range held {
			if hs.gauge != nil {
				hs.gauge.Add(-1)
			}
			<-hs.sem
		}
	}
}

// Run executes the batch and blocks until every task finishes. Results
// come back in task order regardless of completion order.
func (s *Scheduler) Run(tasks []Task) *Report {
	rep := &Report{
		Results:    make([]Result, len(tasks)),
		WorkerCost: make([]time.Duration, s.cfg.Workers),
	}
	start := time.Now()
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < s.cfg.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range idx {
				t := tasks[i]
				queued := time.Now()
				if s.gWaiting != nil {
					s.gWaiting.Add(1)
				}
				release := s.admit(t.Hosts)
				if s.gWaiting != nil {
					s.gWaiting.Add(-1)
				}
				if s.gInflight != nil {
					s.gInflight.Add(1)
				}
				wait := time.Since(queued)
				value, cost, err := t.Run()
				release()
				if s.gInflight != nil {
					s.gInflight.Add(-1)
				}
				rep.Results[i] = Result{
					ID: t.ID, Index: i, Value: value, Err: err,
					Worker: worker, Cost: cost, Wait: wait,
				}
				rep.WorkerCost[worker] += cost
			}
		}(w)
	}
	for i := range tasks {
		idx <- i
	}
	close(idx)
	wg.Wait()
	rep.Wall = time.Since(start)
	// Modeled makespan: deterministic given per-task costs, independent
	// of which wall-clock worker happened to grab which task.
	loads := make([]time.Duration, s.cfg.Workers)
	for _, res := range rep.Results {
		min := 0
		for w := 1; w < len(loads); w++ {
			if loads[w] < loads[min] {
				min = w
			}
		}
		loads[min] += res.Cost
	}
	for _, l := range loads {
		if l > rep.Makespan {
			rep.Makespan = l
		}
	}
	return rep
}
