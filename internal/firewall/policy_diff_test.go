package firewall

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"tax/internal/policy"
	"tax/internal/vclock"
)

// TestPolicyAllowAllDifferential is the compatibility property: a
// firewall running the AllowAll ruleset mediates exactly like a
// firewall with no policy engine. The same operation stream — local
// deliveries, parks, expiries, remote forwards, management ops, error
// paths — must produce the same per-operation errors, the same stats,
// and the same park depth on both.
func TestPolicyAllowAllDifferential(t *testing.T) {
	type world struct {
		f        *fixture
		fw1, fw2 *Firewall
	}
	build := func(withEngine bool) world {
		f := newFixture(t)
		if withEngine {
			f.config = func(c *Config) {
				c.Policy = policy.New(vclock.NewVirtual(), policy.AllowAll(), policy.Quota{})
			}
		}
		f.addHost("h1")
		f.addHost("h2")
		return world{f: f, fw1: f.sites["h1"].fw, fw2: f.sites["h2"].fw}
	}

	// run drives one identical operation stream and returns its
	// observable outcomes as comparable strings.
	run := func(w world) []string {
		var out []string
		note := func(step string, err error) {
			out = append(out, fmt.Sprintf("%s: err=%v", step, err))
		}
		src, err := w.fw1.Register("vm_go", "alice", "src")
		note("register src", err)
		dst, err := w.fw1.Register("vm_go", "alice", "dst")
		note("register dst", err)
		rcv, err := w.fw2.Register("vm_go", "alice", "rcv")
		note("register rcv", err)

		// Local delivery.
		note("local send", sendErr(w.fw1, src, "alice/dst", "one"))
		bc, err := dst.Recv(time.Second)
		note("local recv", err)
		if bc != nil {
			body, _ := bc.GetString("BODY")
			out = append(out, "local body="+body)
		}
		// Remote forward and delivery.
		note("remote send", sendErr(w.fw1, src, "tacoma://h2/alice/rcv", "two"))
		_, err = rcv.Recv(2 * time.Second)
		note("remote recv", err)
		// Park then flush by registration.
		note("park send", sendErr(w.fw1, src, "alice/late", "three"))
		late, err := w.fw1.Register("vm_go", "alice", "late")
		note("register late", err)
		_, err = late.Recv(time.Second)
		note("flushed recv", err)
		// Park then expire (fixture queue timeout 300ms).
		note("expire send", sendErr(w.fw1, src, "alice/ghost", "four"))
		deadline := time.Now().Add(3 * time.Second)
		for w.fw1.Stats().Expired == 0 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		rep, err := src.Recv(2 * time.Second)
		note("expiry report recv", err)
		if rep != nil {
			out = append(out, "expiry kind="+Kind(rep))
		}
		// Error paths: unknown host, missing target.
		note("unknown host", unwrapClass(sendErr(w.fw1, src, "tacoma://nowhere/alice/x", "five")))
		note("mgmt list", sendErr(w.fw1, src, FirewallName+"?kind", "")) // malformed target name is fine either way
		// Management op through the normal path.
		reply := mgmtRequest(t, w.fw1, src, OpList, "")
		out = append(out, "mgmt kind="+Kind(reply))

		st1, st2 := w.fw1.Stats(), w.fw2.Stats()
		out = append(out, fmt.Sprintf("stats1=%+v", st1))
		out = append(out, fmt.Sprintf("stats2=%+v", st2))
		out = append(out, fmt.Sprintf("pending=%d/%d", w.fw1.Pending(), w.fw2.Pending()))
		return out
	}

	legacy := run(build(false))
	gated := run(build(true))
	if len(legacy) != len(gated) {
		t.Fatalf("trace lengths differ: %d vs %d\nlegacy=%q\ngated=%q", len(legacy), len(gated), legacy, gated)
	}
	for i := range legacy {
		if legacy[i] != gated[i] {
			t.Errorf("step %d diverges:\n  legacy: %s\n  engine: %s", i, legacy[i], gated[i])
		}
	}
}

// unwrapClass normalizes errors to their sentinel class so wrapped
// messages with host-specific detail still compare equal.
func unwrapClass(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrNoTarget):
		return ErrNoTarget
	case errors.Is(err, ErrSenderGone):
		return ErrSenderGone
	default:
		// Resolve errors and the like: compare by first line of text.
		return errors.New(err.Error())
	}
}
