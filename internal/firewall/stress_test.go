package firewall

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"tax/internal/briefcase"
	"tax/internal/uri"
)

func TestConcurrentSendersOneReceiver(t *testing.T) {
	f := newFixture(t, "h1")
	fw := f.sites["h1"].fw
	recv, _ := fw.Register("vm_go", "alice", "sink")

	const senders = 8
	const perSender = 25
	var wg sync.WaitGroup
	wg.Add(senders)
	errs := make(chan error, senders*perSender)
	drained := make(chan int, 1)

	// Drain concurrently so the mailbox never fills.
	go func() {
		n := 0
		for n < senders*perSender {
			if _, err := recv.Recv(5 * time.Second); err != nil {
				break
			}
			n++
		}
		drained <- n
	}()
	for i := 0; i < senders; i++ {
		go func(id int) {
			defer wg.Done()
			reg, err := fw.Register("vm_go", "alice", fmt.Sprintf("src%d", id))
			if err != nil {
				errs <- err
				return
			}
			for j := 0; j < perSender; j++ {
				bc := briefcase.New()
				bc.SetString(briefcase.FolderSysTarget, "alice/sink")
				if err := fw.Send(reg.GlobalURI(), bc); err != nil {
					errs <- err
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	select {
	case n := <-drained:
		if n != senders*perSender {
			t.Errorf("delivered %d of %d", n, senders*perSender)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain stalled")
	}
}

func TestConcurrentRegisterUnregister(t *testing.T) {
	f := newFixture(t, "h1")
	fw := f.sites["h1"].fw
	var wg sync.WaitGroup
	const workers = 8
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				r, err := fw.Register("vm_go", "alice", fmt.Sprintf("w%d", id))
				if err != nil {
					t.Errorf("register: %v", err)
					return
				}
				fw.Unregister(r)
			}
		}(i)
	}
	wg.Wait()
	if got := len(fw.List()); got != 0 {
		t.Errorf("%d registrations leaked", got)
	}
}

// Property: routing matches exactly the agents the §3.2 rules allow,
// for random combinations of query and registration.
func TestPropLookupRules(t *testing.T) {
	f := newFixture(t, "h1")
	fw := f.sites["h1"].fw
	principals := []string{"system", "alice", "bob"}
	names := []string{"svc", "worker"}

	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		regPrincipal := principals[rng.Intn(len(principals))]
		regName := names[rng.Intn(len(names))]
		r, err := fw.Register("vm_go", regPrincipal, regName)
		if err != nil {
			return false
		}
		defer fw.Unregister(r)

		q := uri.URI{}
		if rng.Intn(2) == 0 {
			q.Name = names[rng.Intn(len(names))]
		}
		if rng.Intn(2) == 0 {
			q.Principal = principals[rng.Intn(len(principals))]
		}
		if rng.Intn(3) == 0 {
			q.Instance = r.URI().Instance
			q.HasInstance = true
		}
		senderPrincipal := principals[rng.Intn(len(principals))]

		got := fw.Lookup(q, senderPrincipal)
		contains := false
		for _, c := range got {
			if c == r {
				contains = true
			}
		}
		// The oracle: URI match plus the empty-principal restriction.
		want := r.URI().Matches(q)
		if q.Principal == "" && regPrincipal != "system" && regPrincipal != senderPrincipal {
			want = false
		}
		return contains == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: every briefcase kind defaults sensibly and error reports
// carry their reason.
func TestErrorReportShape(t *testing.T) {
	rep := errorReport("tacoma://h1/system/firewall", "tacoma://h2/alice/ag:1", "boom")
	if Kind(rep) != KindError {
		t.Errorf("kind = %q", Kind(rep))
	}
	msg, _ := rep.GetString(briefcase.FolderSysError)
	if msg != "boom" {
		t.Errorf("reason = %q", msg)
	}
	tgt, _ := rep.GetString(briefcase.FolderSysTarget)
	if tgt != "tacoma://h2/alice/ag:1" {
		t.Errorf("target = %q", tgt)
	}
}

func TestKindDefaultsToMessage(t *testing.T) {
	if Kind(briefcase.New()) != KindMessage {
		t.Error("default kind wrong")
	}
	bc := briefcase.New()
	bc.SetString(FolderKind, KindTransfer)
	if Kind(bc) != KindTransfer {
		t.Error("explicit kind lost")
	}
}
