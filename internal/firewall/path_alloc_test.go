package firewall

import (
	"bytes"
	"runtime/debug"
	"testing"

	"tax/internal/briefcase"
	"tax/internal/identity"
)

// pathNode is a synchronous in-process transport: Send and SendOwned
// invoke the peer's handler on the caller's goroutine, so an entire
// multi-hop forwarding chain runs inside one function call and
// testing.AllocsPerRun can price it. Send makes the per-link defensive
// copy exactly like simnet; SendOwned aliases, exactly like simnet.
type pathNode struct {
	addr    string
	handler func(from string, payload []byte)
	peers   map[string]*pathNode
	// drop discards instead of delivering (after Send's copy), isolating
	// one stage of the chain for measurement.
	drop bool
	// tap observes the bytes each delivery hands to the peer.
	tap func(from, to string, payload []byte)

	sends, ownedSends int
}

func (n *pathNode) Addr() string                             { return n.addr }
func (n *pathNode) SetHandler(h func(from string, p []byte)) { n.handler = h }
func (n *pathNode) Close() error                             { return nil }

func (n *pathNode) Send(to string, payload []byte) error {
	n.sends++
	data := append([]byte(nil), payload...)
	return n.deliver(to, data)
}

func (n *pathNode) SendOwned(to string, payload []byte) error {
	n.ownedSends++
	return n.deliver(to, payload)
}

func (n *pathNode) deliver(to string, data []byte) error {
	if n.drop {
		return nil
	}
	if n.tap != nil {
		n.tap(n.addr, to, data)
	}
	if peer := n.peers[to]; peer != nil {
		peer.handler(n.addr, data)
	}
	return nil
}

// pathChain is the 3-hop fixture a -> b -> c -> d on synchronous
// transports: a originates, b and c relay, d delivers to dst.
type pathChain struct {
	nodes map[string]*pathNode
	fws   map[string]*Firewall
	src   *Registration
	dst   *Registration
}

func newPathChain(t *testing.T) *pathChain {
	t.Helper()
	trust := &identity.TrustStore{}
	names := []string{"a", "b", "c", "d"}
	next := map[string]string{"a": "b", "b": "c", "c": "d", "d": "d"}
	ch := &pathChain{nodes: make(map[string]*pathNode), fws: make(map[string]*Firewall)}
	for _, name := range names {
		ch.nodes[name] = &pathNode{addr: name, peers: ch.nodes}
	}
	for _, name := range names {
		hop := next[name]
		fw, err := New(Config{
			HostName:        name,
			Node:            ch.nodes[name],
			Trust:           trust,
			SystemPrincipal: "system",
			Relay:           name == "b" || name == "c",
			Resolve: func(host string, _ int) (string, error) {
				if host == name {
					return name, nil
				}
				return hop, nil
			},
		})
		if err != nil {
			t.Fatalf("firewall %s: %v", name, err)
		}
		t.Cleanup(func() { _ = fw.Close() })
		ch.fws[name] = fw
	}
	var err error
	if ch.src, err = ch.fws["a"].Register("vm", "system", "src"); err != nil {
		t.Fatalf("register src: %v", err)
	}
	if ch.dst, err = ch.fws["d"].Register("vm", "system", "dst"); err != nil {
		t.Fatalf("register dst: %v", err)
	}
	return ch
}

// pathBriefcase is the forwarded payload: body plus target, the shape
// the forwarding bench sends.
func pathBriefcase() *briefcase.Briefcase {
	bc := briefcase.New()
	bc.SetString("BODY", "crawl result 000042 padded to a plausible briefcase payload size for the mediation hot path")
	bc.SetString(briefcase.FolderSysTarget, "tacoma://d/system/dst")
	return bc
}

// TestForwardPathSingleEncodeSingleDecode drives one frame through the
// full 3-hop chain and proves the tentpole claim with two measurements:
//
//  1. Byte identity: the wire bytes on every link are identical, so no
//     relay re-encoded the payload — the one encode happened at a.
//  2. Allocation ceiling: a relay's whole inbound mediation costs fewer
//     allocations than a single lazy Decode of this frame, so no relay
//     decoded the payload — the one decode happens at d.
//
// Together: a 3-hop forwarded itinerary performs exactly one payload
// encode (origin) and one payload decode (final receiver).
func TestForwardPathSingleEncodeSingleDecode(t *testing.T) {
	ch := newPathChain(t)
	var wires [][]byte
	for _, n := range ch.nodes {
		n.tap = func(_, _ string, payload []byte) {
			wires = append(wires, append([]byte(nil), payload...))
		}
	}
	if err := ch.fws["a"].Send(ch.src.GlobalURI(), pathBriefcase()); err != nil {
		t.Fatalf("send: %v", err)
	}
	got, ok := ch.dst.TryRecv()
	if !ok {
		t.Fatal("no delivery at d")
	}
	if body, _ := got.GetString("BODY"); body == "" {
		t.Fatal("delivered briefcase lost its body")
	}
	if len(wires) != 3 {
		t.Fatalf("frame crossed %d links, want 3", len(wires))
	}
	for i := 1; i < len(wires); i++ {
		if !bytes.Equal(wires[0], wires[i]) {
			t.Fatalf("link %d bytes differ from link 0: relays must forward verbatim", i)
		}
	}
	// Origin copies once onto the first link; relays hand the buffer on.
	if ch.nodes["a"].sends != 1 || ch.nodes["a"].ownedSends != 0 {
		t.Fatalf("origin made %d Send / %d SendOwned calls, want 1/0",
			ch.nodes["a"].sends, ch.nodes["a"].ownedSends)
	}
	for _, relay := range []string{"b", "c"} {
		n := ch.nodes[relay]
		if n.ownedSends != 1 || n.sends != 0 {
			t.Fatalf("relay %s made %d SendOwned / %d Send calls, want 1/0",
				relay, n.ownedSends, n.sends)
		}
	}

	// The allocation half of the proof: decode cost of this very frame,
	// versus a relay's whole inbound stage.
	frame := wires[0]
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	decodeAllocs := testing.AllocsPerRun(200, func() { _, _ = briefcase.Decode(frame) })
	ch.nodes["b"].drop = true
	relayAllocs := testing.AllocsPerRun(200, func() { ch.fws["b"].cfg.Node.(*pathNode).handler("a", frame) })
	ch.nodes["b"].drop = false
	if relayAllocs >= decodeAllocs {
		t.Fatalf("relay stage allocates %.0f >= decode's %.0f: the relay cannot be header-only",
			relayAllocs, decodeAllocs)
	}
	t.Logf("relay stage %.0f allocs vs decode %.0f", relayAllocs, decodeAllocs)
}

// TestForwardPathStageAllocs pins the per-stage allocation budgets of
// the forwarded path: origin mediation (encode + link copy), relay
// mediation (header peeks + verbatim forward), and final delivery
// (single decode + route + mailbox). The exact stage numbers live in
// BENCH_hotpath.json's "path" section (written by taxbench, gated by
// taxbench -check); this test enforces ceilings so a regression fails
// here first, with a name, rather than in the bench diff.
func TestForwardPathStageAllocs(t *testing.T) {
	ch := newPathChain(t)
	var frame []byte
	ch.nodes["c"].tap = func(_, _ string, payload []byte) {
		frame = append([]byte(nil), payload...)
	}
	if err := ch.fws["a"].Send(ch.src.GlobalURI(), pathBriefcase()); err != nil {
		t.Fatalf("send: %v", err)
	}
	if _, ok := ch.dst.TryRecv(); !ok {
		t.Fatal("no delivery at d")
	}
	ch.nodes["c"].tap = nil

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const runs = 200

	// Origin: mediate and encode one send, copy onto the first link.
	ch.nodes["a"].drop = true
	bc := pathBriefcase()
	origin := testing.AllocsPerRun(runs, func() {
		if err := ch.fws["a"].Send(ch.src.GlobalURI(), bc); err != nil {
			t.Fatalf("origin send: %v", err)
		}
	})
	ch.nodes["a"].drop = false

	// Relay: full inbound mediation of the forwarded frame, headers only.
	ch.nodes["b"].drop = true
	relay := testing.AllocsPerRun(runs, func() { ch.fws["b"].cfg.Node.(*pathNode).handler("a", frame) })
	ch.nodes["b"].drop = false

	// Deliver: the final receiver's single decode, routing, and mailbox.
	deliver := testing.AllocsPerRun(runs, func() {
		ch.fws["d"].cfg.Node.(*pathNode).handler("c", frame)
		if _, ok := ch.dst.TryRecv(); !ok {
			t.Fatal("deliver stage produced no delivery")
		}
	})

	t.Logf("stage allocs: origin=%.0f relay=%.0f deliver=%.0f", origin, relay, deliver)
	// Ceilings, not exact pins: the exact values are recorded (and
	// double-run-verified) in BENCH_hotpath.json. A relay is the hot
	// multiplier — every extra hop pays it — so its budget is the tight
	// one.
	if relay > 2 {
		t.Errorf("relay stage allocates %.0f, budget 2: header-only forwarding regressed", relay)
	}
	if origin > 8 {
		t.Errorf("origin stage allocates %.0f, budget 8", origin)
	}
	if deliver > 40 {
		t.Errorf("deliver stage allocates %.0f, budget 40", deliver)
	}
}
