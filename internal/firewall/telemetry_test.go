package firewall

import (
	"strings"
	"testing"
	"time"

	"tax/internal/briefcase"
	"tax/internal/telemetry"
)

// telFixture is a fixture whose firewalls share one full-collection
// telemetry instance (spans + events on).
func telFixture(t *testing.T, hosts ...string) (*fixture, *telemetry.Telemetry) {
	t.Helper()
	tel := telemetry.New(telemetry.Options{Host: "test", Spans: true, Events: true})
	f := newFixture(t)
	f.config = func(c *Config) { c.Telemetry = tel }
	for _, h := range hosts {
		f.addHost(h)
	}
	return f, tel
}

// eventTypes summarizes a log snapshot as "type:cause" strings for
// substring assertions.
func eventTypes(tel *telemetry.Telemetry) []string {
	var out []string
	for _, e := range tel.Events().Snapshot() {
		out = append(out, e.Type+":"+e.Cause)
	}
	return out
}

func hasEvent(events []string, typ, causeSub string) bool {
	for _, e := range events {
		if strings.HasPrefix(e, typ+":") && strings.Contains(e, causeSub) {
			return true
		}
	}
	return false
}

// TestStatsMirrorsRegistry pins the compatibility facade: Stats() must
// read the same numbers the registry holds under the fw.* keys.
func TestStatsMirrorsRegistry(t *testing.T) {
	f, tel := telFixture(t, "h1")
	fw := f.sites["h1"].fw
	src, _ := fw.Register("vm_go", "alice", "src")
	dst, _ := fw.Register("vm_go", "alice", "dst")

	send(t, f.sites["h1"].fw, src, "alice/dst", "one")
	send(t, f.sites["h1"].fw, src, "alice/dst", "two")
	recvBody(t, dst, time.Second)
	recvBody(t, dst, time.Second)
	// One parked message that will expire.
	send(t, fw, src, "alice/ghost", "lost")
	deadline := time.Now().Add(3 * time.Second)
	for fw.Stats().Expired == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}

	st := fw.Stats()
	// Delivered is 3: the two payloads plus the expiry error report the
	// firewall delivers back to the sender's mailbox.
	if st.Delivered != 3 || st.Queued != 1 || st.Expired != 1 {
		t.Fatalf("stats = %+v", st)
	}
	reg := tel.Registry()
	checks := map[string]int64{
		"fw.delivered": st.Delivered,
		"fw.queued":    st.Queued,
		"fw.expired":   st.Expired,
		"fw.errors":    st.Errors,
	}
	for name, want := range checks {
		if got := reg.Counter(name, "host", "h1").Value(); got != want {
			t.Errorf("registry %s = %d, Stats view says %d", name, got, want)
		}
	}
}

// TestAuditEventsParkExpireDeliver checks that mediation decisions leave
// an audit trail: allow on delivery, park for an absent receiver, expire
// on queue timeout.
func TestAuditEventsParkExpireDeliver(t *testing.T) {
	f, tel := telFixture(t, "h1")
	fw := f.sites["h1"].fw
	src, _ := fw.Register("vm_go", "alice", "src")
	dst, _ := fw.Register("vm_go", "alice", "dst")

	send(t, fw, src, "alice/dst", "hello")
	recvBody(t, dst, time.Second)
	send(t, fw, src, "alice/nobody", "doomed")

	deadline := time.Now().Add(3 * time.Second)
	for fw.Stats().Expired == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}

	events := eventTypes(tel)
	if !hasEvent(events, telemetry.EventAllow, "") {
		t.Errorf("no allow event: %v", events)
	}
	if !hasEvent(events, telemetry.EventPark, "receiver not registered") {
		t.Errorf("no park event: %v", events)
	}
	if !hasEvent(events, telemetry.EventExpire, "queue timeout") {
		t.Errorf("no expire event: %v", events)
	}
	// The expire event names the parked target so the operator can see
	// who lost a message.
	for _, e := range tel.Events().Snapshot() {
		if e.Type == telemetry.EventExpire && !strings.Contains(e.Target, "nobody") {
			t.Errorf("expire event target = %q", e.Target)
		}
	}
}

// TestAuditEventMgmtDenied checks the deny trail for an unauthorized
// management op.
func TestAuditEventMgmtDenied(t *testing.T) {
	f, tel := telFixture(t, "h1")
	fw := f.sites["h1"].fw
	bob, _ := fw.Register("vm_go", "bob", "bob-agent") // bob: unknown principal
	reply := mgmtRequest(t, fw, bob, OpKill, "alice/x")
	if Kind(reply) != KindError {
		t.Fatal("unauthorized kill succeeded")
	}
	if !hasEvent(eventTypes(tel), telemetry.EventDeny, "mgmt kill") {
		t.Errorf("no deny event: %v", eventTypes(tel))
	}
}

// TestMgmtMetricsOp reads the registry through the management interface,
// the path taxctl metrics uses.
func TestMgmtMetricsOp(t *testing.T) {
	f, _ := telFixture(t, "h1")
	fw := f.sites["h1"].fw
	admin := sysAgent(t, fw, "admin")
	dst, _ := fw.Register("vm_go", "alice", "dst")
	send(t, fw, admin, "alice/dst", "x")
	recvBody(t, dst, time.Second)

	reply := mgmtRequest(t, fw, admin, OpMetrics, "")
	rows, err := reply.Folder(FolderReply)
	if err != nil {
		t.Fatalf("no metrics rows: %v", err)
	}
	joined := strings.Join(rows.Strings(), "\n")
	if !strings.Contains(joined, "counter|fw.delivered{host=h1}|1") {
		t.Errorf("metrics rows lack the delivered counter:\n%s", joined)
	}
	// The mediation histograms exist because detailed telemetry is on.
	if !strings.Contains(joined, "histogram|fw.send{host=h1}|count=") {
		t.Errorf("metrics rows lack the send histogram:\n%s", joined)
	}
	// Rows arrive sorted for stable CLI output.
	got := rows.Strings()
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("rows not sorted: %q then %q", got[i-1], got[i])
		}
	}
}

// TestMgmtTraceOp records a traced local round trip and reads the spans
// back through the management interface, the path taxctl trace uses.
func TestMgmtTraceOp(t *testing.T) {
	f, _ := telFixture(t, "h1")
	fw := f.sites["h1"].fw
	admin := sysAgent(t, fw, "admin")
	dst, _ := fw.Register("vm_go", "alice", "dst")

	trace := telemetry.NewTraceID("h1")
	bc := briefcase.New()
	bc.SetString(briefcase.FolderSysTarget, "alice/dst")
	bc.SetString(briefcase.FolderSysTrace, trace)
	if err := fw.Send(admin.GlobalURI(), bc); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Recv(time.Second); err != nil {
		t.Fatal(err)
	}

	reply := mgmtRequest(t, fw, admin, OpTrace, trace)
	rows, err := reply.Folder(FolderReply)
	if err != nil {
		t.Fatalf("no trace rows: %v", err)
	}
	joined := strings.Join(rows.Strings(), "\n")
	if !strings.Contains(joined, "fw.route") {
		t.Errorf("trace rows lack the mediation span:\n%s", joined)
	}
	for _, row := range rows.Strings() {
		if got := len(strings.Split(row, "|")); got != 7 {
			t.Errorf("trace row has %d fields, want 7: %q", got, row)
		}
	}

	// Untraced traffic must not pollute the trace.
	send(t, fw, admin, "alice/dst", "untraced")
	recvBody(t, dst, time.Second)
	reply = mgmtRequest(t, fw, admin, OpTrace, trace)
	rows2, _ := reply.Folder(FolderReply)
	if len(rows2.Strings()) != len(rows.Strings()) {
		t.Error("untraced send added spans to the trace")
	}
}

// TestMgmtTraceDisabled: without span collection the op reports a clear
// error instead of an empty tree.
func TestMgmtTraceDisabled(t *testing.T) {
	f := newFixture(t, "h1") // default counters-only telemetry
	fw := f.sites["h1"].fw
	admin := sysAgent(t, fw, "admin")
	reply := mgmtRequest(t, fw, admin, OpTrace, "t:h1:1")
	if Kind(reply) != KindError {
		t.Fatal("trace op succeeded without span collection")
	}
	msg, _ := reply.GetString(briefcase.FolderSysError)
	if !strings.Contains(msg, "span collection disabled") {
		t.Errorf("error = %q", msg)
	}
}
