package firewall

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"tax/internal/briefcase"
	"tax/internal/simnet"
)

// dropFirst is a simnet injector dropping the first n transfers it sees.
type dropFirst struct {
	mu   sync.Mutex
	left int
}

func (d *dropFirst) Decide(from, to string, now time.Duration, size int) simnet.Decision {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.left > 0 {
		d.left--
		return simnet.Decision{Drop: true}
	}
	return simnet.Decision{}
}

// dupAll duplicates every transfer.
type dupAll struct{}

func (dupAll) Decide(string, string, time.Duration, int) simnet.Decision {
	return simnet.Decision{Duplicate: true}
}

// TestRetryPolicyCodec pins the _RETRY wire form: total round-trips and
// strict rejection of damaged encodings.
func TestRetryPolicyCodec(t *testing.T) {
	roundTrips := []RetryPolicy{
		{},
		{Attempts: 1},
		{Attempts: 8, Backoff: 200 * time.Microsecond},
		{Attempts: 3, Backoff: time.Millisecond, Deadline: time.Second},
	}
	for _, p := range roundTrips {
		got, err := ParseRetryPolicy(p.Encode())
		if err != nil {
			t.Errorf("ParseRetryPolicy(%q): %v", p.Encode(), err)
		}
		if got != p {
			t.Errorf("round trip %q: got %+v want %+v", p.Encode(), got, p)
		}
	}
	malformed := []string{
		"", "3", "3|100", "3|100|5|9", "three|100|0", "3|fast|0", "3|100|later",
		"-1|100|0", "3|-100|0", "3|100|-1", "3|1e3|0", "3|100|", "|100|0",
	}
	for _, s := range malformed {
		if _, err := ParseRetryPolicy(s); !errors.Is(err, ErrBadRetryPolicy) {
			t.Errorf("ParseRetryPolicy(%q) err = %v, want ErrBadRetryPolicy", s, err)
		}
	}
	// Briefcase accessors: absent vs malformed are distinct.
	bc := briefcase.New()
	if _, ok, err := RetryPolicyFrom(bc); ok || err != nil {
		t.Errorf("empty briefcase: ok=%v err=%v", ok, err)
	}
	SetRetryPolicy(bc, RetryPolicy{Attempts: 2, Backoff: time.Millisecond})
	if p, ok, err := RetryPolicyFrom(bc); !ok || err != nil || p.Attempts != 2 {
		t.Errorf("stamped briefcase: p=%+v ok=%v err=%v", p, ok, err)
	}
	bc.SetString(briefcase.FolderSysRetry, "garbage")
	if _, ok, err := RetryPolicyFrom(bc); !ok || !errors.Is(err, ErrBadRetryPolicy) {
		t.Errorf("malformed briefcase: ok=%v err=%v", ok, err)
	}
}

// TestForwardRetriesThroughDrops: a lossy link that eats the first two
// frames still delivers when the briefcase carries a retry policy — in
// virtual time, so no wall-clock sleeping.
func TestForwardRetriesThroughDrops(t *testing.T) {
	f := newFixture(t, "h1", "h2")
	fw1, fw2 := f.sites["h1"].fw, f.sites["h2"].fw
	f.net.SetInjector(&dropFirst{left: 2})
	sender, _ := fw1.Register("vm_go", "alice", "sender")
	recv, _ := fw2.Register("vm_go", "alice", "receiver")

	bc := briefcase.New()
	bc.SetString(briefcase.FolderSysTarget, "tacoma://h2/alice/receiver")
	bc.SetString("BODY", "persistent")
	SetRetryPolicy(bc, RetryPolicy{Attempts: 4, Backoff: 100 * time.Microsecond})
	if err := fw1.Send(sender.GlobalURI(), bc); err != nil {
		t.Fatalf("send through lossy link: %v", err)
	}
	if got := recvBody(t, recv, 2*time.Second); got != "persistent" {
		t.Errorf("body = %q", got)
	}
	if got := fw1.ctr.retries.Value(); got != 2 {
		t.Errorf("fw.retries = %d, want 2", got)
	}
}

// TestForwardWithoutPolicyFailsFast: no policy means exactly one attempt
// — the pre-retry behavior — and the typed drop error surfaces.
func TestForwardWithoutPolicyFailsFast(t *testing.T) {
	f := newFixture(t, "h1", "h2")
	fw1 := f.sites["h1"].fw
	f.net.SetInjector(&dropFirst{left: 1})
	sender, _ := fw1.Register("vm_go", "alice", "sender")

	bc := briefcase.New()
	bc.SetString(briefcase.FolderSysTarget, "tacoma://h2/alice/receiver")
	err := fw1.Send(sender.GlobalURI(), bc)
	if !errors.Is(err, simnet.ErrDropped) {
		t.Fatalf("err = %v, want ErrDropped", err)
	}
	if got := fw1.ctr.retries.Value(); got != 0 {
		t.Errorf("fw.retries = %d, want 0", got)
	}
}

// TestForwardGiveUpExhaustsBudget: a link that never heals exhausts the
// attempt budget and the final error is the typed transport failure.
func TestForwardGiveUpExhaustsBudget(t *testing.T) {
	f := newFixture(t, "h1", "h2")
	fw1 := f.sites["h1"].fw
	f.net.SetInjector(&dropFirst{left: 1 << 30})
	sender, _ := fw1.Register("vm_go", "alice", "sender")

	bc := briefcase.New()
	bc.SetString(briefcase.FolderSysTarget, "tacoma://h2/alice/receiver")
	SetRetryPolicy(bc, RetryPolicy{Attempts: 3, Backoff: 50 * time.Microsecond})
	err := fw1.Send(sender.GlobalURI(), bc)
	if !errors.Is(err, simnet.ErrDropped) {
		t.Fatalf("err = %v, want ErrDropped", err)
	}
	if got := fw1.ctr.retries.Value(); got != 2 {
		t.Errorf("fw.retries = %d, want 2 (3 attempts)", got)
	}
}

// TestForwardDeadlineCapsBackoff: the deadline stops the exponential
// backoff before the attempt budget is spent. Backoffs advance the
// virtual clock, so the deadline check is exact, not wall-clock flaky.
func TestForwardDeadlineCapsBackoff(t *testing.T) {
	f := newFixture(t, "h1", "h2")
	fw1 := f.sites["h1"].fw
	f.net.SetInjector(&dropFirst{left: 1 << 30})
	sender, _ := fw1.Register("vm_go", "alice", "sender")

	bc := briefcase.New()
	bc.SetString(briefcase.FolderSysTarget, "tacoma://h2/alice/receiver")
	// 1ms, 2ms, 4ms, ... against a 3ms budget: attempts 1 and 2 run
	// (cumulative backoff 1ms then 3ms > deadline before attempt 3).
	SetRetryPolicy(bc, RetryPolicy{Attempts: 10, Backoff: time.Millisecond, Deadline: 3 * time.Millisecond})
	if err := fw1.Send(sender.GlobalURI(), bc); err == nil {
		t.Fatal("send through dead link succeeded")
	}
	if got := fw1.ctr.retries.Value(); got >= 9 {
		t.Errorf("fw.retries = %d, deadline never capped the budget", got)
	}
}

// TestNodeDefaultRetryPolicy: the host-level ForwardRetry applies when
// the briefcase carries no policy of its own, and a malformed _RETRY
// folder falls back to it instead of poisoning the send.
func TestNodeDefaultRetryPolicy(t *testing.T) {
	f := newFixture(t, "h1")
	f.config = func(c *Config) {
		c.ForwardRetry = RetryPolicy{Attempts: 3, Backoff: 50 * time.Microsecond}
	}
	f.addHost("h2")
	f.config = nil
	fw2 := f.sites["h2"].fw
	f.net.SetInjector(&dropFirst{left: 2})
	sender, _ := fw2.Register("vm_go", "alice", "sender")
	recvFW := f.sites["h1"].fw
	recv, _ := recvFW.Register("vm_go", "alice", "receiver")

	send(t, fw2, sender, "tacoma://h1/alice/receiver", "host default")
	if got := recvBody(t, recv, 2*time.Second); got != "host default" {
		t.Errorf("body = %q", got)
	}

	// Malformed briefcase policy: audited, ignored, default still wins.
	f.net.SetInjector(&dropFirst{left: 1})
	bc := briefcase.New()
	bc.SetString(briefcase.FolderSysTarget, "tacoma://h1/alice/receiver")
	bc.SetString("BODY", "survived garbage")
	bc.SetString(briefcase.FolderSysRetry, "not|a\\policy")
	if err := fw2.Send(sender.GlobalURI(), bc); err != nil {
		t.Fatalf("send with malformed policy: %v", err)
	}
	if got := recvBody(t, recv, 2*time.Second); got != "survived garbage" {
		t.Errorf("body = %q", got)
	}
}

// TestDedupWindowSuppressesDuplicates: with a dedup window the second
// copy of an injected duplicate frame is dropped before mediation; the
// receiver sees the briefcase once.
func TestDedupWindowSuppressesDuplicates(t *testing.T) {
	f := newFixture(t, "h1")
	f.config = func(c *Config) { c.DedupWindow = 16 }
	f.addHost("h2")
	f.config = nil
	fw1, fw2 := f.sites["h1"].fw, f.sites["h2"].fw
	f.net.SetInjector(dupAll{})
	sender, _ := fw1.Register("vm_go", "alice", "sender")
	recv, _ := fw2.Register("vm_go", "alice", "receiver")

	send(t, fw1, sender, "tacoma://h2/alice/receiver", "once only")
	if got := recvBody(t, recv, 2*time.Second); got != "once only" {
		t.Errorf("body = %q", got)
	}
	if _, ok := recv.TryRecv(); ok {
		t.Error("duplicate frame was delivered twice despite dedup window")
	}
	deadline := time.Now().Add(time.Second)
	for fw2.ctr.dupDropped.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := fw2.ctr.dupDropped.Value(); got != 1 {
		t.Errorf("fw.dup_dropped = %d, want 1", got)
	}
}

// TestWithoutDedupWindowDuplicatesArriveTwice documents the default:
// duplicate suppression is opt-in, because legitimate identical
// messages (two equal KindMessage sends) hash identically too.
func TestWithoutDedupWindowDuplicatesArriveTwice(t *testing.T) {
	f := newFixture(t, "h1", "h2")
	fw1, fw2 := f.sites["h1"].fw, f.sites["h2"].fw
	f.net.SetInjector(dupAll{})
	sender, _ := fw1.Register("vm_go", "alice", "sender")
	recv, _ := fw2.Register("vm_go", "alice", "receiver")

	send(t, fw1, sender, "tacoma://h2/alice/receiver", "twice")
	if got := recvBody(t, recv, 2*time.Second); got != "twice" {
		t.Errorf("body = %q", got)
	}
	if got := recvBody(t, recv, 2*time.Second); got != "twice" {
		t.Errorf("second copy body = %q", got)
	}
}

// TestExpiryNoticeParkedWhenReplyPathPartitioned is the reported bug's
// regression: a parked message expires while the sender's host is
// partitioned away. The old firewall dropped the expiry notice on the
// floor; now it parks the typed KindError envelope (observable via
// Pending and the audit log) and delivers it when the partition heals.
func TestExpiryNoticeParkedWhenReplyPathPartitioned(t *testing.T) {
	f := newFixture(t, "h1", "h2")
	fw1, fw2 := f.sites["h1"].fw, f.sites["h2"].fw
	sender, _ := fw1.Register("vm_go", "alice", "sender")

	// A message parks on h2 for an agent that never registers.
	send(t, fw1, sender, "tacoma://h2/alice/ghost", "doomed")
	deadline := time.Now().Add(2 * time.Second)
	for fw2.Pending() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if fw2.Pending() != 1 {
		t.Fatalf("message never parked on h2 (pending=%d)", fw2.Pending())
	}

	// Cut the reply path before the queue timeout (300ms) fires.
	f.net.Partition("h1", "h2")
	deadline = time.Now().Add(3 * time.Second)
	for fw2.Stats().Expired == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if fw2.Stats().Expired == 0 {
		t.Fatal("parked message never expired")
	}
	// The expiry notice could not be sent home: it must be parked as a
	// typed envelope, not silently dropped.
	deadline = time.Now().Add(2 * time.Second)
	for fw2.Pending() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if fw2.Pending() != 1 {
		t.Fatalf("expiry notice not parked (pending=%d)", fw2.Pending())
	}

	// Heal; the envelope's own expiry performs the final delivery.
	f.net.Heal("h1", "h2")
	bc, err := sender.Recv(3 * time.Second)
	if err != nil {
		t.Fatalf("expiry notice never reached the sender after heal: %v", err)
	}
	if Kind(bc) != KindError {
		t.Errorf("notice kind = %q, want %q", Kind(bc), KindError)
	}
	msg, _ := bc.GetString(briefcase.FolderSysError)
	if !strings.Contains(msg, "expired") {
		t.Errorf("notice text = %q, want mention of expiry", msg)
	}
}

// TestPendingGaugeTracksQueue: the fw.pending gauge follows park,
// expiry and delivery so parked traffic is observable without polling.
func TestPendingGaugeTracksQueue(t *testing.T) {
	f := newFixture(t, "h1")
	fw := f.sites["h1"].fw
	sender, _ := fw.Register("vm_go", "alice", "sender")

	send(t, fw, sender, "alice/late", "for later")
	if fw.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", fw.Pending())
	}
	if got := fw.gaugePending.Value(); got != 1 {
		t.Errorf("fw.pending gauge = %d, want 1", got)
	}
	late, _ := fw.Register("vm_go", "alice", "late")
	if got := recvBody(t, late, time.Second); got != "for later" {
		t.Errorf("body = %q", got)
	}
	if got := fw.gaugePending.Value(); got != 0 {
		t.Errorf("fw.pending gauge = %d after delivery, want 0", got)
	}
}
