package firewall

import (
	"strings"
	"testing"
	"time"

	"tax/internal/briefcase"
	"tax/internal/cabinet"
	"tax/internal/vclock"
)

// durableFixture is the standard fixture with a cabinet store wired
// into every host's firewall.
func durableFixture(t *testing.T, hosts ...string) (*fixture, map[string]*cabinet.Store) {
	t.Helper()
	stores := make(map[string]*cabinet.Store)
	f := newFixture(t)
	f.config = func(c *Config) {
		st := cabinet.NewStore(cabinet.Options{Clock: vclock.NewVirtual()})
		stores[c.HostName] = st
		c.Durable = st
	}
	for _, h := range hosts {
		f.addHost(h)
	}
	return f, stores
}

// TestRecoveredParkDeliversToReregisteredService: a message parked for
// a service that dies in a host crash must, after the host restarts and
// the service re-registers, be delivered from the journal instead of
// being silently lost.
func TestRecoveredParkDeliversToReregisteredService(t *testing.T) {
	f, stores := durableFixture(t, "h1")
	fw := f.sites["h1"].fw

	sender, err := fw.Register("vm_go", "alice", "sender")
	if err != nil {
		t.Fatal(err)
	}
	send(t, fw, sender, "later", "survive me")
	if fw.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 parked message", fw.Pending())
	}
	if got := len(stores["h1"].Keys("fwpark/")); got != 1 {
		t.Fatalf("journal holds %d park records, want 1", got)
	}

	fw.CrashWipe()
	if fw.Pending() != 0 {
		t.Fatalf("pending = %d after crash wipe, want 0", fw.Pending())
	}

	// Boot order on restart: services re-register first, then the
	// journal replays — so the recovered park delivers immediately.
	later, err := fw.Register("vm_go", "alice", "later")
	if err != nil {
		t.Fatal(err)
	}
	if n := fw.RecoverDurable(); n != 1 {
		t.Fatalf("RecoverDurable() = %d, want 1", n)
	}
	if body := recvBody(t, later, 2*time.Second); body != "survive me" {
		t.Fatalf("recovered body = %q", body)
	}
	if got := len(stores["h1"].Keys("fwpark/")); got != 0 {
		t.Fatalf("journal still holds %d park records after delivery", got)
	}
}

// TestRecoveredParkExpiresWithTypedErrorEnvelope: a journaled park
// whose addressee never comes back must not linger forever — after the
// restart it re-arms its timeout and expires through the standard typed
// error-envelope path, so the remote sender still learns the fate of
// its message.
func TestRecoveredParkExpiresWithTypedErrorEnvelope(t *testing.T) {
	f, _ := durableFixture(t, "h1", "h2")
	fw1 := f.sites["h1"].fw
	fw2 := f.sites["h2"].fw

	sender, err := fw1.Register("vm_go", "alice", "sender")
	if err != nil {
		t.Fatal(err)
	}
	send(t, fw1, sender, "tacoma://h2/alice/ghost", "anyone there?")
	deadline := time.Now().Add(2 * time.Second)
	for fw2.Pending() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("message never parked on h2 (pending=%d)", fw2.Pending())
		}
		time.Sleep(time.Millisecond)
	}

	fw2.CrashWipe()
	if n := fw2.RecoverDurable(); n != 1 {
		t.Fatalf("RecoverDurable() = %d, want 1", n)
	}
	// Nothing re-registers "ghost": the recovered park must expire on
	// its fresh timer and report back across the network.
	rep, err := sender.Recv(5 * time.Second)
	if err != nil {
		t.Fatalf("no expiry report after recovery: %v", err)
	}
	if Kind(rep) != KindError {
		t.Fatalf("report kind = %q, want error envelope", Kind(rep))
	}
	if msg, _ := rep.GetString(briefcase.FolderSysError); !strings.Contains(msg, "expired") {
		t.Fatalf("report = %q, want queue-timeout expiry", msg)
	}
}

// TestDedupJournalSeedsAfterRecovery: hashes observed before the crash
// are journaled and re-seeded by RecoverDurable, so a frame duplicated
// across the crash boundary is still suppressed.
func TestDedupJournalSeedsAfterRecovery(t *testing.T) {
	stores := make(map[string]*cabinet.Store)
	f := newFixture(t)
	f.config = func(c *Config) {
		st := cabinet.NewStore(cabinet.Options{Clock: vclock.NewVirtual()})
		stores[c.HostName] = st
		c.Durable = st
		c.DedupWindow = 16
	}
	site := f.addHost("h1")
	fw := site.fw

	payload := []byte("frame: byte-identical retransmission")
	if fw.dedup.observe(payload) {
		t.Fatal("first observation reported duplicate")
	}
	if got := len(stores["h1"].Keys("fwdedup/")); got != 1 {
		t.Fatalf("journal holds %d dedup records, want 1", got)
	}

	fw.CrashWipe()
	fw.RecoverDurable()
	if !fw.dedup.observe(payload) {
		t.Fatal("recovered window failed to suppress the pre-crash frame")
	}
	if fw.dedup.observe([]byte("unrelated")) {
		t.Fatal("recovered window reported duplicate for a new payload")
	}
}
