package firewall

import (
	"testing"
	"time"

	"tax/internal/briefcase"
	"tax/internal/identity"
	"tax/internal/simnet"
)

// channelFixture builds two hosts whose firewalls sign and verify the
// inter-firewall channel.
func channelFixture(t *testing.T, signA, signB, authA, authB bool) (*Firewall, *Firewall, *simnet.Network, *identity.TrustStore) {
	t.Helper()
	net := simnet.New(simnet.LAN100)
	t.Cleanup(func() { _ = net.Close() })
	trust := &identity.TrustStore{}

	mk := func(name string, sign, auth bool) *Firewall {
		host, err := net.AddHost(name)
		if err != nil {
			t.Fatal(err)
		}
		var signer *identity.Principal
		if sign {
			signer, err = identity.NewPrincipal("fw-" + name)
			if err != nil {
				t.Fatal(err)
			}
			trust.AddPrincipal(signer, identity.Trusted)
		}
		fw, err := New(Config{
			HostName:        name,
			Node:            host,
			Trust:           trust,
			SystemPrincipal: "system",
			ChannelSigner:   signer,
			ChannelAuth:     auth,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = fw.Close() })
		return fw
	}
	a := mk("a", signA, authA)
	b := mk("b", signB, authB)
	return a, b, net, trust
}

func sendAcross(t *testing.T, from *Firewall, target, body string) *Registration {
	t.Helper()
	sender, err := from.Register("vm", "system", "sender")
	if err != nil {
		t.Fatal(err)
	}
	bc := briefcase.New()
	bc.SetString(briefcase.FolderSysTarget, target)
	bc.SetString("BODY", body)
	if err := from.Send(sender.GlobalURI(), bc); err != nil {
		t.Fatal(err)
	}
	return sender
}

func TestChannelSignedFrameAccepted(t *testing.T) {
	a, b, _, _ := channelFixture(t, true, true, true, true)
	recv, err := b.Register("vm", "system", "recv")
	if err != nil {
		t.Fatal(err)
	}
	sendAcross(t, a, "tacoma://b/system/recv", "sealed hello")
	got, err := recv.Recv(5 * time.Second)
	if err != nil {
		t.Fatalf("sealed frame lost: %v", err)
	}
	if body, _ := got.GetString("BODY"); body != "sealed hello" {
		t.Errorf("body = %q", body)
	}
}

func TestChannelUnsignedFrameRejected(t *testing.T) {
	// a does not sign; b requires channel auth.
	a, b, _, _ := channelFixture(t, false, true, false, true)
	recv, err := b.Register("vm", "system", "recv")
	if err != nil {
		t.Fatal(err)
	}
	sendAcross(t, a, "tacoma://b/system/recv", "sneaky")
	deadline := time.Now().Add(2 * time.Second)
	for b.Stats().AuthFailures == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if b.Stats().AuthFailures == 0 {
		t.Fatal("unsigned frame not rejected")
	}
	if _, ok := recv.TryRecv(); ok {
		t.Error("unsigned frame delivered")
	}
}

func TestChannelUntrustedSignerRejected(t *testing.T) {
	// a signs with a principal b does not trust (fresh store entry is
	// added by the fixture, so remove it).
	a, b, _, trust := channelFixture(t, true, true, true, true)
	trust.Remove("fw-a")
	recv, err := b.Register("vm", "system", "recv")
	if err != nil {
		t.Fatal(err)
	}
	sendAcross(t, a, "tacoma://b/system/recv", "forged")
	deadline := time.Now().Add(2 * time.Second)
	for b.Stats().AuthFailures == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if b.Stats().AuthFailures == 0 {
		t.Fatal("untrusted signer accepted")
	}
	if _, ok := recv.TryRecv(); ok {
		t.Error("forged frame delivered")
	}
}

func TestChannelSealedFramesInteropWithRelaxedReceiver(t *testing.T) {
	// a signs, b does not require auth: sealed frames still route.
	a, b, _, _ := channelFixture(t, true, false, false, false)
	recv, err := b.Register("vm", "system", "recv")
	if err != nil {
		t.Fatal(err)
	}
	sendAcross(t, a, "tacoma://b/system/recv", "relaxed")
	got, err := recv.Recv(5 * time.Second)
	if err != nil {
		t.Fatalf("sealed frame to relaxed receiver lost: %v", err)
	}
	if body, _ := got.GetString("BODY"); body != "relaxed" {
		t.Errorf("body = %q", body)
	}
}

func TestGarbageFrameCountedNotFatal(t *testing.T) {
	_, b, net, _ := channelFixture(t, false, false, false, false)
	// Inject raw junk straight into b's transport.
	hostA, err := net.Host("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := hostA.Send("b", []byte{0xde, 0xad, 0xbe, 0xef}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for b.Stats().Errors == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if b.Stats().Errors == 0 {
		t.Error("garbage frame not counted")
	}
	// The firewall survives: a registration still works.
	if _, err := b.Register("vm", "system", "alive"); err != nil {
		t.Errorf("firewall dead after garbage: %v", err)
	}
}
