// Typed errors across the wire.
//
// System- and service-generated failures travel between hosts as
// KindError briefcases carrying a human-readable reason in _ERROR.
// Receivers used to get back a flat errors.New of that string, which
// forced string matching ("no such file", "expired", ...) on every
// caller. The _ERRCODE folder fixes that: the sending side stamps a
// stable machine-readable code next to the reason, the receiving side
// reconstructs a *RemoteError whose errors.Is answers against the
// registered sentinel — so errors.Is(err, services.ErrNoSuchFile) is
// true even though the error crossed the network as text.
//
// The code registry is deliberately open: any package that replies
// with errors registers its sentinels (services does in an init), and
// unknown codes degrade to a plain RemoteError that still carries the
// reason string.
package firewall

import (
	"errors"
	"sync"

	"tax/internal/briefcase"
)

// FolderErrCode is the reserved folder carrying a RemoteError's stable
// machine-readable code, stamped next to the _ERROR reason.
const FolderErrCode = "_ERRCODE"

// ErrExpired is the sentinel behind the firewall's queue-timeout error
// envelopes: a parked message outlived its receiver's grace period.
var ErrExpired = errors.New("firewall: parked message expired")

// ErrPolicyDenied is the sentinel behind policy-engine deny verdicts: a
// rule (or the default-deny fall-through) refused the mediation. It
// crosses the wire as code "fw_policy_denied", so a sender on another
// host gets an errors.Is-able rejection back.
var ErrPolicyDenied = errors.New("firewall: denied by policy")

// ErrQuotaExceeded is the sentinel behind quota refusals: the sending
// principal's message or byte token bucket could not cover the send.
// Wire code "fw_quota".
var ErrQuotaExceeded = errors.New("firewall: quota exceeded")

// RemoteError is an error that crossed the wire as a KindError
// briefcase (or an _ERROR reply folder). Reason is the sender's
// human-readable message; Code, when non-empty, names the sentinel the
// originating host classified the failure as, and errors.Is matches a
// RemoteError against that registered sentinel.
type RemoteError struct {
	// Code is the stable identifier from _ERRCODE ("" when the sender
	// predates codes or the failure had no classification).
	Code string
	// Reason is the _ERROR message text.
	Reason string
}

// Error returns the remote reason text.
func (e *RemoteError) Error() string { return e.Reason }

// Is reports whether target is the sentinel registered for e.Code,
// making errors.Is work across the wire.
func (e *RemoteError) Is(target error) bool {
	if e.Code == "" {
		return false
	}
	if s, ok := codeRegistry.Load(e.Code); ok {
		return errors.Is(s.(error), target)
	}
	return false
}

// codeRegistry maps _ERRCODE values to their local sentinel errors.
var codeRegistry sync.Map // string -> error

// RegisterErrorCode binds a stable wire code to a sentinel error, in
// both directions: ErrorCode finds the code for errors wrapping the
// sentinel, and RemoteError.Is answers true for the sentinel when the
// code arrives from a remote host. Codes are global; packages register
// theirs in an init and must pick distinct names.
func RegisterErrorCode(code string, sentinel error) {
	codeRegistry.Store(code, sentinel)
}

// ErrorCode returns the registered wire code for err (matching via
// errors.Is, so wrapped sentinels classify too). ok is false when no
// registered sentinel matches.
func ErrorCode(err error) (code string, ok bool) {
	codeRegistry.Range(func(k, v any) bool {
		if errors.Is(err, v.(error)) {
			code, ok = k.(string), true
			return false
		}
		return true
	})
	return code, ok
}

// SetError records err on a reply or error briefcase: the reason in
// _ERROR and, when err classifies against a registered sentinel, the
// code in _ERRCODE.
func SetError(bc *briefcase.Briefcase, err error) {
	bc.SetString(briefcase.FolderSysError, err.Error())
	if code, ok := ErrorCode(err); ok {
		bc.SetString(FolderErrCode, code)
	}
}

// SetErrorCode stamps only the registered code for err, leaving the
// _ERROR reason to the caller (no-op for unregistered errors).
func SetErrorCode(bc *briefcase.Briefcase, err error) {
	if code, ok := ErrorCode(err); ok {
		bc.SetString(FolderErrCode, code)
	}
}

// RemoteErrorFrom reconstructs the typed error a briefcase's _ERROR /
// _ERRCODE folders describe. ok is false when the briefcase carries no
// error.
func RemoteErrorFrom(bc *briefcase.Briefcase) (*RemoteError, bool) {
	reason, has := bc.GetString(briefcase.FolderSysError)
	if !has {
		return nil, false
	}
	code, _ := bc.GetString(FolderErrCode)
	return &RemoteError{Code: code, Reason: reason}, true
}

// Firewall error codes.
func init() {
	RegisterErrorCode("fw_denied", ErrDenied)
	RegisterErrorCode("fw_no_agent", ErrNoAgent)
	RegisterErrorCode("fw_expired", ErrExpired)
	RegisterErrorCode("fw_unsigned", ErrUnsigned)
	RegisterErrorCode("fw_channel_auth", ErrChannelAuth)
	RegisterErrorCode("fw_policy_denied", ErrPolicyDenied)
	RegisterErrorCode("fw_quota", ErrQuotaExceeded)
}
