package firewall

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"sync"
	"time"

	"tax/internal/briefcase"
	"tax/internal/telemetry"
)

// RetryPolicy governs how the firewall retries a failed remote forward:
// up to Attempts tries with exponential backoff starting at Backoff,
// abandoned once the next wait would cross Deadline (zero means no
// deadline). The zero value (and any Attempts <= 1) disables retrying.
//
// The policy travels in a briefcase's reserved _RETRY folder, so the
// agent that chose it keeps it across hops and the firewalls along the
// way need no per-agent configuration — the same pattern the briefcase
// uses for the wrapper stack (_WRAP) and trace context (_TRACE).
type RetryPolicy struct {
	// Attempts is the total number of send attempts (first try included).
	Attempts int
	// Backoff is the wait after the first failure; it doubles per retry.
	// The host clock pays it, so simulated deployments back off in
	// virtual time (no sleeping) while live TCP nodes really wait.
	Backoff time.Duration
	// Deadline bounds the total time from first attempt to giving up.
	Deadline time.Duration
}

// Enabled reports whether the policy asks for any retrying at all.
func (p RetryPolicy) Enabled() bool { return p.Attempts > 1 }

// Encode renders the policy in its _RETRY wire form.
func (p RetryPolicy) Encode() string {
	return strconv.Itoa(p.Attempts) + "|" +
		strconv.FormatInt(int64(p.Backoff), 10) + "|" +
		strconv.FormatInt(int64(p.Deadline), 10)
}

// ErrBadRetryPolicy is returned when a _RETRY folder does not parse.
var ErrBadRetryPolicy = errors.New("firewall: bad retry policy")

// ParseRetryPolicy is the inverse of Encode. It is strict: three fields,
// integral, non-negative — a corrupted policy must fail loudly rather
// than retry forever.
func ParseRetryPolicy(s string) (RetryPolicy, error) {
	parts := strings.Split(s, "|")
	if len(parts) != 3 {
		return RetryPolicy{}, fmt.Errorf("%w: %q: want 3 fields, got %d", ErrBadRetryPolicy, s, len(parts))
	}
	attempts, err := strconv.Atoi(parts[0])
	if err != nil {
		return RetryPolicy{}, fmt.Errorf("%w: %q: attempts: %v", ErrBadRetryPolicy, s, err)
	}
	backoff, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return RetryPolicy{}, fmt.Errorf("%w: %q: backoff: %v", ErrBadRetryPolicy, s, err)
	}
	deadline, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		return RetryPolicy{}, fmt.Errorf("%w: %q: deadline: %v", ErrBadRetryPolicy, s, err)
	}
	if attempts < 0 || backoff < 0 || deadline < 0 {
		return RetryPolicy{}, fmt.Errorf("%w: %q: negative field", ErrBadRetryPolicy, s)
	}
	return RetryPolicy{
		Attempts: attempts,
		Backoff:  time.Duration(backoff),
		Deadline: time.Duration(deadline),
	}, nil
}

// SetRetryPolicy stamps the policy onto a briefcase's _RETRY folder.
func SetRetryPolicy(bc *briefcase.Briefcase, p RetryPolicy) {
	bc.SetString(briefcase.FolderSysRetry, p.Encode())
}

// RetryPolicyFrom reads a briefcase's _RETRY folder. ok is false when
// the folder is absent; err is non-nil when present but malformed.
func RetryPolicyFrom(bc *briefcase.Briefcase) (p RetryPolicy, ok bool, err error) {
	s, has := bc.GetString(briefcase.FolderSysRetry)
	if !has {
		return RetryPolicy{}, false, nil
	}
	p, err = ParseRetryPolicy(s)
	if err != nil {
		return RetryPolicy{}, true, err
	}
	return p, true, nil
}

// forwardPolicy resolves the retry policy for one remote forward: the
// briefcase's own _RETRY folder when present and well-formed, else the
// host default. A malformed folder is audited and ignored.
func (fw *Firewall) forwardPolicy(bc *briefcase.Briefcase) RetryPolicy {
	pol, has, err := RetryPolicyFrom(bc)
	if !has {
		return fw.cfg.ForwardRetry
	}
	if err != nil {
		fw.event(telemetry.EventError, "", "", "ignoring malformed retry policy: "+err.Error())
		return fw.cfg.ForwardRetry
	}
	return pol
}

// dedupWindow is the firewall's recent-frame memory for duplicate
// suppression (Config.DedupWindow): a fixed-size ring of payload hashes.
// Injected duplicates and blind retransmissions hash identically, so a
// window of recent hashes makes redelivery safe for side-effecting
// frames (an agent transfer activated twice is two agents).
type dedupWindow struct {
	mu   sync.Mutex
	seen map[uint64]int
	ring []uint64
	next int
	// onInsert, when set, journals each newly observed hash (slot, sum)
	// to the host's cabinet; it runs outside d.mu.
	onInsert func(slot int, sum uint64)
}

func newDedupWindow(size int) *dedupWindow {
	return &dedupWindow{seen: make(map[uint64]int, size), ring: make([]uint64, size)}
}

// observe records the payload and reports whether it was already in the
// window. It carries its own lock so concurrent inbound frames do not
// serialize on the registration mutex; hashing stays outside the
// critical section.
func (d *dedupWindow) observe(payload []byte) bool {
	h := fnv.New64a()
	_, _ = h.Write(payload)
	sum := h.Sum64()
	d.mu.Lock()
	if d.seen[sum] > 0 {
		d.mu.Unlock()
		return true
	}
	slot := d.insertLocked(sum)
	fn := d.onInsert
	d.mu.Unlock()
	if fn != nil {
		fn(slot, sum)
	}
	return false
}

// insertLocked places sum in the ring, evicting the slot's previous
// occupant, and returns the slot index. Callers hold d.mu.
func (d *dedupWindow) insertLocked(sum uint64) int {
	old := d.ring[d.next]
	if old != 0 {
		if d.seen[old] <= 1 {
			delete(d.seen, old)
		} else {
			d.seen[old]--
		}
	}
	slot := d.next
	d.ring[slot] = sum
	d.next = (d.next + 1) % len(d.ring)
	d.seen[sum]++
	return slot
}

// seed inserts a hash recovered from the cabinet without re-journaling
// it (RecoverDurable).
func (d *dedupWindow) seed(sum uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.seen[sum] > 0 {
		return
	}
	d.insertLocked(sum)
}

// reset empties the window: crash semantics — process memory is gone.
func (d *dedupWindow) reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.seen = make(map[uint64]int, len(d.ring))
	for i := range d.ring {
		d.ring[i] = 0
	}
	d.next = 0
}
