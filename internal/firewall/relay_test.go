package firewall

import (
	"testing"
	"time"

	"tax/internal/briefcase"
	"tax/internal/identity"
	"tax/internal/simnet"
)

// relayChain builds a line topology a — b — c — d: every host's Resolve
// maps a distant URI host to the neighbor one step closer, and the
// interior hosts (b, c) relay. configure, when non-nil, adjusts each
// host's Config before New (hostName tells it which host).
func relayChain(t *testing.T, configure func(hostName string, cfg *Config)) (map[string]*Firewall, *simnet.Network, *identity.TrustStore) {
	t.Helper()
	hosts := []string{"a", "b", "c", "d"}
	// nextHop[h] maps "from host h, to reach host X send to nextHop[h][X]".
	nextHop := map[string]map[string]string{
		"a": {"b": "b", "c": "b", "d": "b"},
		"b": {"a": "a", "c": "c", "d": "c"},
		"c": {"a": "b", "b": "b", "d": "d"},
		"d": {"a": "c", "b": "c", "c": "c"},
	}
	net := simnet.New(simnet.LAN100)
	t.Cleanup(func() { _ = net.Close() })
	trust := &identity.TrustStore{}
	sys, err := identity.NewPrincipal("system")
	if err != nil {
		t.Fatal(err)
	}
	trust.AddPrincipal(sys, identity.System)
	fws := make(map[string]*Firewall, len(hosts))
	for _, name := range hosts {
		h, err := net.AddHost(name)
		if err != nil {
			t.Fatal(err)
		}
		hops := nextHop[name]
		cfg := Config{
			HostName:        name,
			Node:            h,
			Trust:           trust,
			SystemPrincipal: "system",
			QueueTimeout:    300 * time.Millisecond,
			Relay:           name == "b" || name == "c",
			Resolve: func(host string, _ int) (string, error) {
				if next, ok := hops[host]; ok {
					return next, nil
				}
				return host, nil
			},
		}
		if configure != nil {
			configure(name, &cfg)
		}
		fw, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = fw.Close() })
		fws[name] = fw
	}
	return fws, net, trust
}

// TestRelayThreeHopDelivery proves a frame sent from a to d crosses the
// two relays and arrives intact, without a or d knowing the route.
func TestRelayThreeHopDelivery(t *testing.T) {
	fws, _, _ := relayChain(t, nil)
	src, err := fws["a"].Register("vm", "alice", "src")
	if err != nil {
		t.Fatal(err)
	}
	dst, err := fws["d"].Register("vm", "alice", "dst")
	if err != nil {
		t.Fatal(err)
	}
	bc := briefcase.New()
	bc.SetString(briefcase.FolderSysTarget, "tacoma://d/alice/dst")
	bc.SetString("BODY", "across three hops")
	bc.Ensure("DATA").Append(make([]byte, 2048))
	if err := fws["a"].Send(src.GlobalURI(), bc); err != nil {
		t.Fatal(err)
	}
	got, err := dst.Recv(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if body, _ := got.GetString("BODY"); body != "across three hops" {
		t.Fatalf("BODY = %q", body)
	}
	df, err := got.Folder("DATA")
	if err != nil || df.Size() != 2048 {
		t.Fatalf("DATA folder damaged in transit: %v", err)
	}
	for _, relay := range []string{"b", "c"} {
		if n := fws[relay].ctr.relayed.Value(); n != 1 {
			t.Errorf("relay %s: fw.relayed = %d, want 1", relay, n)
		}
		if n := fws[relay].Stats().Delivered; n != 0 {
			t.Errorf("relay %s delivered locally: %d", relay, n)
		}
	}
}

// TestRelayForwardsVerbatim captures the exact bytes leaving the origin
// and arriving at the final hop: with no re-sealing relays, forwarding
// must be byte-identical — the zero-copy invariant at the wire level.
func TestRelayForwardsVerbatim(t *testing.T) {
	var sentFromA, arrivedAtD []byte
	fws, net, _ := relayChain(t, nil)
	net.SetTap(func(from, to string, payload []byte) {
		if from == "a" {
			sentFromA = append([]byte(nil), payload...)
		}
		if to == "d" {
			arrivedAtD = append([]byte(nil), payload...)
		}
	})
	src, _ := fws["a"].Register("vm", "alice", "src")
	dst, _ := fws["d"].Register("vm", "alice", "dst")
	bc := briefcase.New()
	bc.SetString(briefcase.FolderSysTarget, "tacoma://d/alice/dst")
	bc.SetString("BODY", "verbatim")
	if err := fws["a"].Send(src.GlobalURI(), bc); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Recv(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(sentFromA) == 0 || len(arrivedAtD) == 0 {
		t.Fatal("tap saw no traffic")
	}
	if string(sentFromA) != string(arrivedAtD) {
		t.Fatalf("relayed frame mutated in flight:\norigin: %x\nfinal:  %x", sentFromA, arrivedAtD)
	}
}

// TestRelayResealsWithChannelAuth runs the chain with every host signing
// and verifying frames: each relay must verify the previous hop's seal
// and re-seal with its own principal, and the payload must still arrive
// intact.
func TestRelayResealsWithChannelAuth(t *testing.T) {
	signers := map[string]*identity.Principal{}
	fws, _, _ := relayChain(t, func(hostName string, cfg *Config) {
		p, err := identity.NewPrincipal("fw-" + hostName)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Trust.AddPrincipal(p, identity.Trusted)
		cfg.ChannelSigner = p
		cfg.ChannelAuth = true
		signers[hostName] = p
	})
	src, _ := fws["a"].Register("vm", "alice", "src")
	dst, _ := fws["d"].Register("vm", "alice", "dst")
	bc := briefcase.New()
	bc.SetString(briefcase.FolderSysTarget, "tacoma://d/alice/dst")
	bc.SetString("BODY", "sealed per hop")
	if err := fws["a"].Send(src.GlobalURI(), bc); err != nil {
		t.Fatal(err)
	}
	got, err := dst.Recv(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if body, _ := got.GetString("BODY"); body != "sealed per hop" {
		t.Fatalf("BODY = %q", body)
	}
	if n := fws["b"].Stats().AuthFailures + fws["c"].Stats().AuthFailures + fws["d"].Stats().AuthFailures; n != 0 {
		t.Fatalf("auth failures along the sealed chain: %d", n)
	}
}

// TestRelayRejectsUnsealedWithChannelAuth: a relay that requires channel
// auth must drop unsealed third-party frames, not forward them.
func TestRelayRejectsUnsealedWithChannelAuth(t *testing.T) {
	fws, _, _ := relayChain(t, func(hostName string, cfg *Config) {
		if hostName == "b" {
			cfg.ChannelAuth = true
		}
	})
	src, _ := fws["a"].Register("vm", "alice", "src")
	dst, _ := fws["d"].Register("vm", "alice", "dst")
	bc := briefcase.New()
	bc.SetString(briefcase.FolderSysTarget, "tacoma://d/alice/dst")
	if err := fws["a"].Send(src.GlobalURI(), bc); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Recv(300 * time.Millisecond); err == nil {
		t.Fatal("unsealed frame crossed a ChannelAuth relay")
	}
	if n := fws["b"].Stats().AuthFailures; n != 1 {
		t.Fatalf("relay b auth failures = %d, want 1", n)
	}
}

// TestRelayContainerForwarding sends a burst of batched frames from a to
// d: the relays must forward the containers without unpacking them.
func TestRelayContainerForwarding(t *testing.T) {
	fws, _, _ := relayChain(t, func(hostName string, cfg *Config) {
		if hostName == "a" {
			cfg.Batch = &BatchConfig{MaxFrames: 8, FlushEvery: -1}
		}
	})
	src, _ := fws["a"].Register("vm", "alice", "src")
	dst, _ := fws["d"].Register("vm", "alice", "dst")
	const msgs = 16
	for i := 0; i < msgs; i++ {
		bc := briefcase.New()
		bc.SetString(briefcase.FolderSysTarget, "tacoma://d/alice/dst")
		bc.SetInt("N", int64(i))
		if err := fws["a"].Send(src.GlobalURI(), bc); err != nil {
			t.Fatal(err)
		}
	}
	if err := fws["a"].FlushBatches(); err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for i := 0; i < msgs; i++ {
		got, err := dst.Recv(2 * time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		n, _ := got.GetInt("N")
		seen[n] = true
	}
	if len(seen) != msgs {
		t.Fatalf("received %d distinct messages, want %d", len(seen), msgs)
	}
	for _, relay := range []string{"b", "c"} {
		fw := fws[relay]
		if n := fw.ctr.relayContainers.Value(); n != 2 {
			t.Errorf("relay %s: fw.relay_containers = %d, want 2", relay, n)
		}
		if n := fw.ctr.relayed.Value(); n != msgs {
			t.Errorf("relay %s: fw.relayed = %d, want %d", relay, n, msgs)
		}
		// The defining property: the relay never unpacked a container.
		if n := fw.ctr.batchRecv.Value(); n != 0 {
			t.Errorf("relay %s unpacked %d frames from containers", relay, n)
		}
	}
}

// TestRelayMixedContainerFallsBack batches frames for the relay itself
// together with frames for a farther host: the container cannot be
// forwarded verbatim, so the relay unpacks, delivers its own frame, and
// relays the rest.
func TestRelayMixedContainerFallsBack(t *testing.T) {
	fws, _, _ := relayChain(t, func(hostName string, cfg *Config) {
		if hostName == "a" {
			cfg.Batch = &BatchConfig{MaxFrames: 4, FlushEvery: -1}
		}
	})
	src, _ := fws["a"].Register("vm", "alice", "src")
	onB, _ := fws["b"].Register("vm", "alice", "onb")
	dst, _ := fws["d"].Register("vm", "alice", "dst")
	targets := []string{
		"tacoma://b/alice/onb",
		"tacoma://d/alice/dst",
		"tacoma://d/alice/dst",
		"tacoma://b/alice/onb",
	}
	for i, target := range targets {
		bc := briefcase.New()
		bc.SetString(briefcase.FolderSysTarget, target)
		bc.SetInt("N", int64(i))
		if err := fws["a"].Send(src.GlobalURI(), bc); err != nil {
			t.Fatal(err)
		}
	}
	if err := fws["a"].FlushBatches(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := onB.Recv(2 * time.Second); err != nil {
			t.Fatalf("local recv on b: %v", err)
		}
		if _, err := dst.Recv(2 * time.Second); err != nil {
			t.Fatalf("relayed recv on d: %v", err)
		}
	}
	if n := fws["b"].ctr.relayContainers.Value(); n != 0 {
		t.Errorf("mixed container forwarded verbatim (%d)", n)
	}
	if n := fws["b"].ctr.relayed.Value(); n != 2 {
		t.Errorf("relay b: fw.relayed = %d, want 2", n)
	}
}

// TestRelayOffDropsThirdParty pins the pre-relay behavior: without
// Config.Relay the interior host drops the frame and audits it.
func TestRelayOffDropsThirdParty(t *testing.T) {
	fws, _, _ := relayChain(t, func(hostName string, cfg *Config) {
		cfg.Relay = false
	})
	src, _ := fws["a"].Register("vm", "alice", "src")
	dst, _ := fws["d"].Register("vm", "alice", "dst")
	bc := briefcase.New()
	bc.SetString(briefcase.FolderSysTarget, "tacoma://d/alice/dst")
	if err := fws["a"].Send(src.GlobalURI(), bc); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Recv(300 * time.Millisecond); err == nil {
		t.Fatal("frame crossed a non-relay host")
	}
	if n := fws["b"].Stats().Errors; n == 0 {
		t.Error("dropped third-party frame not counted")
	}
}

// TestRelaySplitHorizon: a route that sends the frame back where it came
// from is refused.
func TestRelaySplitHorizon(t *testing.T) {
	fws, _, _ := relayChain(t, func(hostName string, cfg *Config) {
		if hostName == "b" {
			cfg.Resolve = func(host string, _ int) (string, error) { return "a", nil }
		}
	})
	src, _ := fws["a"].Register("vm", "alice", "src")
	bc := briefcase.New()
	bc.SetString(briefcase.FolderSysTarget, "tacoma://d/alice/dst")
	if err := fws["a"].Send(src.GlobalURI(), bc); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for fws["b"].Stats().Errors == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := fws["b"].Stats().Errors; n == 0 {
		t.Fatal("relay loop not detected")
	}
	if n := fws["b"].ctr.relayed.Value(); n != 0 {
		t.Fatalf("looping frame was relayed %d times", n)
	}
}
