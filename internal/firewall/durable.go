// Crash durability for the firewall's mediation tables.
//
// The park table and the dedup window are host state the paper's file
// cabinets make survivable: a parked message is a promise to deliver,
// and the dedup window is the memory that keeps redelivery safe — both
// must outlive a host crash or the fault model is lying. When
// Config.Durable is set, every park is journaled as a cabinet
// transaction (and unjournaled when the message is delivered, expired
// or dropped), and every dedup observation is appended unsynced (losing
// the tail of the dedup journal on crash only re-admits a duplicate the
// window would also have forgotten by aging — safe, and it keeps the
// inbound hot path free of fsyncs). CrashWipe models the power loss;
// RecoverDurable replays the cabinet back into live tables.
package firewall

import (
	"encoding/binary"
	"fmt"
	"strconv"

	"tax/internal/briefcase"
	"tax/internal/cabinet"
	"tax/internal/telemetry"
	"tax/internal/uri"
)

// Cabinet key prefixes for the firewall's durable tables.
const (
	parkKeyPrefix  = "fwpark/"
	dedupKeyPrefix = "fwdedup/"
)

// Park-record folder names (the journal value is itself a briefcase).
const (
	folderParkPrincipal = "_PPRIN"
	folderParkTarget    = "_PTGT"
	folderParkBody      = "_PBODY"
)

// encodeParkRecord renders one parked message for the cabinet journal.
func encodeParkRecord(senderPrincipal string, target uri.URI, bc *briefcase.Briefcase) []byte {
	rec := briefcase.New()
	rec.SetString(folderParkPrincipal, senderPrincipal)
	rec.SetString(folderParkTarget, target.String())
	rec.Ensure(folderParkBody).Append(bc.Encode())
	return rec.Encode()
}

// decodeParkRecord is the inverse of encodeParkRecord.
func decodeParkRecord(v []byte) (senderPrincipal string, target uri.URI, bc *briefcase.Briefcase, err error) {
	rec, err := briefcase.Decode(v)
	if err != nil {
		return "", uri.URI{}, nil, err
	}
	senderPrincipal, _ = rec.GetString(folderParkPrincipal)
	targetStr, ok := rec.GetString(folderParkTarget)
	if !ok {
		return "", uri.URI{}, nil, fmt.Errorf("firewall: park record has no target")
	}
	target, err = uri.Parse(targetStr)
	if err != nil {
		return "", uri.URI{}, nil, err
	}
	body, err := rec.Ensure(folderParkBody).Element(0)
	if err != nil {
		return "", uri.URI{}, nil, fmt.Errorf("firewall: park record has no body")
	}
	bc, err = briefcase.Decode(body)
	if err != nil {
		return "", uri.URI{}, nil, err
	}
	return senderPrincipal, target, bc, nil
}

// journalPark writes a parked message through the cabinet. The fsync is
// the price of the promise: once parked, a message survives the host.
// Callers hold at least the read side of fw.mu; the cabinet has its own
// lock, and no cabinet path calls back into the firewall.
func (fw *Firewall) journalPark(p *pendingMsg, target uri.URI) {
	st := fw.cfg.Durable
	if st == nil || p.key != "" {
		return
	}
	fw.parkKeyMu.Lock()
	fw.parkKeySeq++
	key := parkKeyPrefix + strconv.FormatUint(fw.parkKeySeq, 16)
	fw.parkKeyMu.Unlock()
	if err := st.Put(key, encodeParkRecord(p.senderPrincipal, target, p.bc)); err != nil {
		fw.eventBC(p.bc, telemetry.EventError, p.senderPrincipal, target.String(), "park journal: "+err.Error())
		return
	}
	p.key = key
}

// unjournalPark removes a consumed park entry from the cabinet (the
// message was delivered, expired, or dropped on close).
func (fw *Firewall) unjournalPark(p *pendingMsg) {
	if fw.cfg.Durable == nil || p.key == "" {
		return
	}
	_ = fw.cfg.Durable.Delete(p.key)
	p.key = ""
}

// journalDedup appends one observed frame hash to the cabinet, unsynced:
// it becomes durable at the host's next synced transaction.
func (fw *Firewall) journalDedup(slot int, sum uint64) {
	st := fw.cfg.Durable
	if st == nil {
		return
	}
	var v [8]byte
	binary.LittleEndian.PutUint64(v[:], sum)
	_ = st.CommitNoSync([]cabinet.Op{{Key: dedupKeyPrefix + strconv.Itoa(slot), Value: v[:]}})
}

// CrashWipe discards the firewall's volatile state, as losing power
// would: every registration (including the VMs' own, so in-flight agent
// state dies with the host), every parked message and its timer, and
// the in-memory dedup window. The firewall object itself stays open —
// it models the machine, not the process — and the durable cabinet is
// untouched: RecoverDurable rebuilds from it after Restart.
func (fw *Firewall) CrashWipe() {
	fw.mu.Lock()
	var regs []*Registration
	for _, list := range fw.regs {
		regs = append(regs, list...)
	}
	fw.regs = make(map[string][]*Registration)
	fw.mu.Unlock()
	pend := fw.park.drain()
	for _, p := range pend {
		p.timer.Stop()
	}
	for _, r := range regs {
		r.kill()
	}
	if fw.dedup != nil {
		fw.dedup.reset()
	}
	if fw.batch != nil {
		// Queued batch frames lived only in process memory; the crash
		// takes them with it (senders were never promised more — batched
		// forwards are fire-and-forget until flushed).
		fw.batch.discardAll()
	}
	fw.event(telemetry.EventDrop, "", "",
		fmt.Sprintf("host crash: wiped %d registrations, %d parked messages", len(regs), len(pend)))
}

// RecoverDurable replays the cabinet's firewall tables into the live
// process after a Restart: the dedup window is re-seeded from the
// journaled hashes, and every journaled park entry is re-routed through
// normal mediation — delivered at once when its receiver has already
// re-registered, otherwise re-parked with a fresh timer so it either
// meets a later registration or expires through the typed-error path.
// Returns the number of park entries recovered. Call it after the
// host's services have re-registered, so recovered messages for them
// deliver instead of waiting out a timeout.
func (fw *Firewall) RecoverDurable() int {
	st := fw.cfg.Durable
	if st == nil {
		return 0
	}
	if fw.dedup != nil {
		for _, k := range st.Keys(dedupKeyPrefix) {
			if v, ok := st.Get(k); ok && len(v) == 8 {
				fw.dedup.seed(binary.LittleEndian.Uint64(v))
			}
		}
	}
	n := 0
	for _, key := range st.Keys(parkKeyPrefix) {
		v, ok := st.Get(key)
		if !ok {
			continue
		}
		// Consume the journal entry first: re-routing either delivers the
		// message or re-parks it under a fresh key. Advance the key
		// counter past every recovered key so fresh keys never collide.
		_ = st.Delete(key)
		if seq, err := strconv.ParseUint(key[len(parkKeyPrefix):], 16, 64); err == nil {
			fw.parkKeyMu.Lock()
			if seq > fw.parkKeySeq {
				fw.parkKeySeq = seq
			}
			fw.parkKeyMu.Unlock()
		}
		principal, target, bc, err := decodeParkRecord(v)
		if err != nil {
			fw.event(telemetry.EventError, "", key, "bad park record: "+err.Error())
			continue
		}
		fw.eventBC(bc, telemetry.EventRecover, principal, target.String(), "park entry recovered from cabinet")
		// dispatch re-mediates under whatever policy ruleset is active
		// after the restart: a policy-held park re-parks, re-forwards or
		// is denied afresh — the journal records no verdicts.
		if err := fw.dispatch(principal, target, bc); err != nil {
			fw.eventBC(bc, telemetry.EventError, principal, target.String(), "recovered park re-route: "+err.Error())
		}
		n++
	}
	return n
}
