// Zero-copy forwarding: the firewall's relay fast path.
//
// PR 5 made encode/decode cheap at the endpoints, but the firewall still
// refused to route a frame whose target lives on a third host — and any
// forwarding built above it (an application-level hop agent) pays a full
// decode and re-encode of the payload per hop. With Config.Relay set,
// the firewall forwards such frames itself, and it does so without ever
// materializing the payload: the envelope headers (_TARGET, _KIND, the
// seal folders) are read with briefcase.Peek directly off the wire
// bytes, the next hop comes from Config.Resolve, and the frame — the
// very buffer the transport delivered — is handed to the outbound link.
// A multi-hop itinerary therefore encodes its payload once at the
// origin and decodes it once at the final receiver; relays touch only
// headers.
//
// Composition with batched mediation (batch.go) works in both
// directions. Inbound containers whose inner frames all resolve to the
// same non-local next hop are forwarded as containers, verbatim,
// without unpacking; mixed containers fall back to unbatch, and each
// non-local inner frame takes the per-frame relay path. Outbound, a
// relayed frame joins the batcher's per-link queue like any locally
// originated forward.
//
// The reference-monitor argument (DESIGN §10): relaying is mediation,
// not bypass. The relay reads exactly the envelope fields the inbound
// path would read anyway, applies the same channel-authentication
// policy (a ChannelAuth relay verifies the seal before forwarding, and
// a ChannelSigner relay re-seals — aliasing the payload — so the next
// hop sees an authenticated sender), and the final receiver still runs
// the full inbound mediation: decode, dedup, transfer authentication,
// routing policy. Byte-identical forwarding means the relay cannot
// alter what the final monitor sees — FuzzForward holds it to that.
package firewall

import (
	"encoding/binary"
	"fmt"

	"tax/internal/briefcase"
	"tax/internal/telemetry"
	"tax/internal/uri"
)

// ownedSender is the transport's zero-copy send: ownership of the
// payload buffer passes to the network, which delivers it without the
// defensive copy Send makes. The simnet host implements it; transports
// that don't fall back to Send.
type ownedSender interface {
	SendOwned(to string, payload []byte) error
}

// relayFrame inspects an inbound frame's envelope with header peeks and,
// when its target lives on another host, forwards the wire bytes toward
// the next hop. It reports whether the frame was consumed (forwarded or
// dropped); false means the frame is for this host — or unreadable by
// peeks — and continues down the normal inbound path, which will decode
// it and audit any failure properly.
func (fw *Firewall) relayFrame(from string, payload []byte) bool {
	inner, sealed := peekSealed(payload)
	if !sealed {
		inner = payload
	}
	targetStr, ok := briefcase.PeekString(inner, briefcase.FolderSysTarget)
	if !ok {
		return false
	}
	target, err := uri.Parse(targetStr)
	if err != nil || fw.isLocal(target) {
		return false
	}
	// The target is elsewhere: this relay owns the frame's fate from here.
	if fw.cfg.ChannelAuth {
		if !sealed {
			fw.ctr.authFailures.Inc()
			fw.event(telemetry.EventDeny, "", targetStr, "relay: frame not sealed (from "+from+")")
			return true
		}
		if err := verifySeal(fw.cfg.Trust, payload, inner); err != nil {
			fw.ctr.authFailures.Inc()
			fw.event(telemetry.EventDeny, "", targetStr, "relay channel auth from "+from+": "+err.Error())
			return true
		}
	}
	addr, err := fw.cfg.Resolve(target.Host, target.EffectivePort())
	if err != nil {
		fw.ctr.errors.Inc()
		fw.event(telemetry.EventDrop, "", targetStr, "relay resolve: "+err.Error())
		return true
	}
	if addr == from {
		// Split horizon: a route that points a frame straight back where
		// it came from is a loop, not a path. (Longer routing cycles are
		// the operator's responsibility — next-hop tables carry no TTL.)
		fw.ctr.errors.Inc()
		fw.event(telemetry.EventDrop, "", targetStr, "relay loop: next hop is previous hop "+from)
		return true
	}
	out := payload
	if fw.cfg.ChannelSigner != nil {
		// Hop-by-hop authentication: replace the previous hop's seal with
		// this relay's own. The payload region is aliased into the new
		// outer frame — header-only re-mediation, no payload re-encode.
		out = sealFrame(fw.cfg.ChannelSigner, inner)
	}
	kind, _ := briefcase.PeekString(inner, FolderKind)
	if fw.forwardRelayed(addr, out, kind == KindTransfer) {
		fw.ctr.relayed.Inc()
		if fw.eventsOn() {
			fw.event(telemetry.EventForward, "", targetStr, "relayed to "+addr)
		}
	}
	return true
}

// forwardRelayed pushes relayed wire bytes to the next hop: through the
// batcher when batching is on (transfers flush inline, like Send), else
// directly on the node under the host-default retry policy. It reports
// whether the bytes reached the transport (or its queue).
func (fw *Firewall) forwardRelayed(addr string, out []byte, inline bool) bool {
	var err error
	if fw.batch != nil {
		// The batcher copies the frame into its link queue, so buffer
		// ownership stays with the caller.
		err = fw.batch.enqueue(addr, out, inline)
	} else {
		err = fw.sendOwned(addr, out)
	}
	if err != nil {
		fw.ctr.errors.Inc()
		fw.event(telemetry.EventError, "", addr, "relay forward: "+err.Error())
		return false
	}
	return true
}

// sendOwned sends wire bytes the firewall owns (a delivery-private
// inbound buffer or a freshly sealed frame) under the host-default retry
// policy, handing buffer ownership to the transport when it supports
// zero-copy sends.
func (fw *Firewall) sendOwned(addr string, out []byte) error {
	policy := fw.cfg.ForwardRetry
	attempts := policy.Attempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := policy.Backoff
	start := fw.clock.Now()
	owned, hasOwned := fw.cfg.Node.(ownedSender)
	var err error
	for attempt := 1; ; attempt++ {
		if hasOwned {
			err = owned.SendOwned(addr, out)
		} else {
			err = fw.cfg.Node.Send(addr, out)
		}
		if err == nil || attempt >= attempts {
			return err
		}
		if policy.Deadline > 0 && fw.clock.Now()-start+backoff > policy.Deadline {
			return err
		}
		fw.ctr.retries.Inc()
		fw.event(telemetry.EventRetry, "", addr,
			fmt.Sprintf("relay attempt %d/%d failed (%v); backing off %v", attempt, attempts, err, backoff))
		fw.clock.Advance(backoff)
		if backoff > 0 {
			backoff *= 2
		}
	}
}

// relayContainer forwards a whole inbound batch container verbatim when
// every inner frame resolves to the same non-local next hop — the
// composition of PR 5 batching with zero-copy forwarding: the container
// crosses the relay as one transport message without being unpacked.
// It reports whether the container was consumed; false falls back to
// unbatch, which mediates each inner frame individually (and any
// non-local ones take the per-frame relay path).
//
// A relay that authenticates or re-seals channels (ChannelAuth or
// ChannelSigner) never short-circuits containers: those policies are
// per-frame, so such hosts unpack and run every frame through
// relayFrame, which enforces them.
func (fw *Firewall) relayContainer(from string, payload []byte) bool {
	if fw.cfg.ChannelAuth || fw.cfg.ChannelSigner != nil {
		return false
	}
	var (
		nextHop string
		count   int
	)
	ok := walkContainer(payload, func(frame []byte) bool {
		inner, sealed := peekSealed(frame)
		if !sealed {
			inner = frame
		}
		targetStr, ok := briefcase.PeekString(inner, briefcase.FolderSysTarget)
		if !ok {
			return false
		}
		target, err := uri.Parse(targetStr)
		if err != nil || fw.isLocal(target) {
			return false
		}
		addr, err := fw.cfg.Resolve(target.Host, target.EffectivePort())
		if err != nil || addr == from {
			return false
		}
		if count == 0 {
			nextHop = addr
		} else if addr != nextHop {
			return false
		}
		count++
		return true
	})
	if !ok || count == 0 {
		return false
	}
	// Containers bypass the batcher deliberately: re-enqueueing one would
	// wrap it in another container, and nested containers are rejected on
	// receive. The container already is the coalesced transport message.
	if err := fw.sendOwned(nextHop, payload); err != nil {
		fw.ctr.errors.Inc()
		fw.event(telemetry.EventError, "", nextHop, "relay forward: "+err.Error())
		return true
	}
	fw.ctr.relayed.Add(int64(count))
	fw.ctr.relayContainers.Inc()
	if fw.eventsOn() {
		fw.event(telemetry.EventForward, "", nextHop,
			fmt.Sprintf("relayed container of %d frames from %s", count, from))
	}
	return true
}

// walkContainer iterates the frames of a well-formed batch container
// (the caller has already checked the magic), stopping early when fn
// returns false. It returns false when the container is malformed or fn
// stopped the walk — either way the caller falls back to the validating
// unbatch path, whose audit events name the defect.
func walkContainer(payload []byte, fn func(frame []byte) bool) bool {
	rest := payload[len(batchMagic):]
	ver, n := binary.Uvarint(rest)
	if n <= 0 || ver != batchVersion {
		return false
	}
	rest = rest[n:]
	count, n := binary.Uvarint(rest)
	if n <= 0 || count == 0 || count > maxBatchFrames {
		return false
	}
	rest = rest[n:]
	for i := uint64(0); i < count; i++ {
		flen, n := binary.Uvarint(rest)
		if n <= 0 || flen > maxBatchFrameSize || uint64(len(rest[n:])) < flen {
			return false
		}
		frame := rest[n : n+int(flen)]
		rest = rest[n+int(flen):]
		if isBatchContainer(frame) {
			return false
		}
		if !fn(frame) {
			return false
		}
	}
	return len(rest) == 0
}
