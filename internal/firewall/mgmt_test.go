package firewall

import (
	"strings"
	"testing"
	"time"

	"tax/internal/briefcase"
	"tax/internal/identity"
	"tax/internal/uri"
)

// mgmtRequest sends a management op from reg and returns the reply.
func mgmtRequest(t *testing.T, fw *Firewall, from *Registration, op, arg string) *briefcase.Briefcase {
	t.Helper()
	bc := briefcase.New()
	bc.SetString(briefcase.FolderSysTarget, FirewallName)
	bc.SetString(FolderKind, KindManagement)
	bc.SetString(FolderOp, op)
	bc.SetString(FolderMsgID, "req-1")
	if arg != "" {
		bc.SetString(FolderArg, arg)
	}
	if err := fw.Send(from.GlobalURI(), bc); err != nil {
		t.Fatalf("mgmt send: %v", err)
	}
	reply, err := from.Recv(2 * time.Second)
	if err != nil {
		t.Fatalf("mgmt reply: %v", err)
	}
	if got, _ := reply.GetString(FolderReplyTo); got != "req-1" {
		t.Errorf("reply correlation = %q", got)
	}
	return reply
}

func sysAgent(t *testing.T, fw *Firewall, name string) *Registration {
	t.Helper()
	r, err := fw.Register("vm_go", "system", name)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestMgmtList(t *testing.T) {
	f := newFixture(t, "h1")
	fw := f.sites["h1"].fw
	admin := sysAgent(t, fw, "admin")
	_, _ = fw.Register("vm_go", "alice", "webbot")

	reply := mgmtRequest(t, fw, admin, OpList, "")
	rows, err := reply.Folder(FolderReply)
	if err != nil {
		t.Fatalf("no reply rows: %v (%v)", err, reply)
	}
	joined := strings.Join(rows.Strings(), "\n")
	if !strings.Contains(joined, "alice/webbot") || !strings.Contains(joined, "system/admin") {
		t.Errorf("list rows:\n%s", joined)
	}
	if !strings.Contains(joined, "running") {
		t.Errorf("list rows lack state:\n%s", joined)
	}
}

func TestMgmtRuntime(t *testing.T) {
	f := newFixture(t, "h1")
	fw := f.sites["h1"].fw
	admin := sysAgent(t, fw, "admin")
	target, _ := fw.Register("vm_go", "alice", "webbot")
	fw.Clock().Advance(5 * time.Second)

	reply := mgmtRequest(t, fw, admin, OpRuntime, target.URI().String())
	rows, err := reply.Folder(FolderReply)
	if err != nil {
		t.Fatalf("no rows: %v", err)
	}
	row := rows.Strings()[0]
	if !strings.Contains(row, "5000000000") { // 5s in ns
		t.Errorf("runtime row = %q", row)
	}
}

func TestMgmtKill(t *testing.T) {
	f := newFixture(t, "h1")
	fw := f.sites["h1"].fw
	admin := sysAgent(t, fw, "admin")
	target, _ := fw.Register("vm_go", "alice", "webbot")

	reply := mgmtRequest(t, fw, admin, OpKill, "alice/webbot")
	if k := Kind(reply); k == KindError {
		msg, _ := reply.GetString(briefcase.FolderSysError)
		t.Fatalf("kill failed: %s", msg)
	}
	if target.State() != StateKilled {
		t.Errorf("state = %v", target.State())
	}
	if got := fw.Lookup(uri.URI{Name: "webbot"}, "alice"); len(got) != 0 {
		t.Error("killed agent still registered")
	}
}

func TestMgmtStopResume(t *testing.T) {
	f := newFixture(t, "h1")
	fw := f.sites["h1"].fw
	admin := sysAgent(t, fw, "admin")
	target, _ := fw.Register("vm_go", "alice", "webbot")

	mgmtRequest(t, fw, admin, OpStop, "alice/webbot")
	if target.State() != StateStopped {
		t.Fatalf("state after stop = %v", target.State())
	}

	// A message delivered while stopped is held: Recv must not return it.
	send(t, fw, admin, "alice/webbot", "held")
	got := make(chan string, 1)
	go func() {
		bc, err := target.Recv(5 * time.Second)
		if err != nil {
			got <- "err:" + err.Error()
			return
		}
		body, _ := bc.GetString("BODY")
		got <- body
	}()
	select {
	case v := <-got:
		t.Fatalf("Recv returned %q while stopped", v)
	case <-time.After(150 * time.Millisecond):
	}

	mgmtRequest(t, fw, admin, OpResume, "alice/webbot")
	select {
	case v := <-got:
		if v != "held" {
			t.Errorf("after resume got %q", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv still blocked after resume")
	}
}

func TestMgmtDeniedForUntrusted(t *testing.T) {
	f := newFixture(t, "h1")
	fw := f.sites["h1"].fw
	// bob is not in the trust store at all.
	bob, _ := fw.Register("vm_go", "bob", "bob-agent")
	_, _ = fw.Register("vm_go", "alice", "webbot")

	reply := mgmtRequest(t, fw, bob, OpKill, "alice/webbot")
	if Kind(reply) != KindError {
		t.Fatalf("kill by unknown principal succeeded: %v", reply)
	}
	msg, _ := reply.GetString(briefcase.FolderSysError)
	if !strings.Contains(msg, "denied") && !strings.Contains(msg, "unknown principal") {
		t.Errorf("error = %q", msg)
	}
}

func TestMgmtListAllowedForTrusted(t *testing.T) {
	f := newFixture(t, "h1")
	fw := f.sites["h1"].fw
	al, _ := fw.Register("vm_go", "alice", "al") // alice is Trusted
	reply := mgmtRequest(t, fw, al, OpList, "")
	if Kind(reply) == KindError {
		msg, _ := reply.GetString(briefcase.FolderSysError)
		t.Fatalf("trusted list denied: %s", msg)
	}
	// But kill requires System.
	_, _ = fw.Register("vm_go", "alice", "victim")
	reply = mgmtRequest(t, fw, al, OpKill, "alice/victim")
	if Kind(reply) != KindError {
		t.Error("trusted principal allowed to kill")
	}
}

func TestMgmtErrors(t *testing.T) {
	f := newFixture(t, "h1")
	fw := f.sites["h1"].fw
	admin := sysAgent(t, fw, "admin")

	tests := []struct {
		name, op, arg, wantSub string
	}{
		{"unknown op", "explode", "", "unknown operation"},
		{"kill missing arg", OpKill, "", "needs _ARG"},
		{"kill bad uri", OpKill, ":::", "parse error"},
		{"kill absent agent", OpKill, "alice/ghost", "no such agent"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			reply := mgmtRequest(t, fw, admin, tt.op, tt.arg)
			if Kind(reply) != KindError {
				t.Fatalf("no error for %s", tt.name)
			}
			msg, _ := reply.GetString(briefcase.FolderSysError)
			if !strings.Contains(msg, tt.wantSub) {
				t.Errorf("error = %q, want substring %q", msg, tt.wantSub)
			}
		})
	}
}

func TestRemoteManagement(t *testing.T) {
	// taxctl-style: an admin agent on h1 manages agents on h2.
	f := newFixture(t, "h1", "h2")
	fw1, fw2 := f.sites["h1"].fw, f.sites["h2"].fw
	admin := sysAgent(t, fw1, "admin")
	victim, _ := fw2.Register("vm_go", "alice", "webbot")

	bc := briefcase.New()
	bc.SetString(briefcase.FolderSysTarget, "tacoma://h2/system/"+FirewallName)
	bc.SetString(FolderKind, KindManagement)
	bc.SetString(FolderOp, OpKill)
	bc.SetString(FolderArg, "alice/webbot")
	bc.SetString(FolderMsgID, "rk-1")
	if err := fw1.Send(admin.GlobalURI(), bc); err != nil {
		t.Fatal(err)
	}
	reply, err := admin.Recv(3 * time.Second)
	if err != nil {
		t.Fatalf("no remote mgmt reply: %v", err)
	}
	if Kind(reply) == KindError {
		msg, _ := reply.GetString(briefcase.FolderSysError)
		t.Fatalf("remote kill failed: %s", msg)
	}
	if victim.State() != StateKilled {
		t.Errorf("victim state = %v", victim.State())
	}
}

func TestSignVerifyCore(t *testing.T) {
	f := newFixture(t, "h1")
	bc := briefcase.New()
	bc.Ensure(briefcase.FolderCode).AppendString("the agent code")
	bc.Ensure(briefcase.FolderArgs).AppendString("arg0")

	SignCore(bc, f.alice)
	name, err := VerifyCore(bc, f.trust, identity.Untrusted)
	if err != nil || name != "alice" {
		t.Fatalf("VerifyCore = %q, %v", name, err)
	}

	// Arguments may mutate in flight without breaking the signature.
	bc.Ensure(briefcase.FolderArgs).AppendString("added later")
	if _, err := VerifyCore(bc, f.trust, identity.Untrusted); err != nil {
		t.Errorf("arg mutation broke core signature: %v", err)
	}

	// Code tampering must break it.
	bc.Ensure(briefcase.FolderCode).AppendString("injected")
	if _, err := VerifyCore(bc, f.trust, identity.Untrusted); err == nil {
		t.Error("code tampering not detected")
	}
}

func TestVerifyCoreUnsigned(t *testing.T) {
	f := newFixture(t, "h1")
	bc := briefcase.New()
	bc.Ensure(briefcase.FolderCode).AppendString("code")
	if _, err := VerifyCore(bc, f.trust, identity.Untrusted); err == nil {
		t.Error("unsigned core verified")
	}
	// Principal present but no signature folder.
	bc.SetString(briefcase.FolderSysPrincipal, "alice")
	if _, err := VerifyCore(bc, f.trust, identity.Untrusted); err == nil {
		t.Error("missing signature verified")
	}
}

func TestInboundTransferAuth(t *testing.T) {
	var f *fixture
	f = &fixture{}
	_ = f
	fx := newFixture(t)
	fx.config = func(c *Config) { c.RequireAuth = true }
	fx.addHost("h1")
	fx.addHost("h2")
	fw1, fw2 := fx.sites["h1"].fw, fx.sites["h2"].fw

	sender, _ := fw1.Register("vm_go", "alice", "sender")
	vm2, _ := fw2.Register("vm_go", "system", "vm_go")

	mkTransfer := func(sign *identity.Principal) *briefcase.Briefcase {
		bc := briefcase.New()
		bc.SetString(briefcase.FolderSysTarget, "tacoma://h2/system/vm_go")
		bc.SetString(FolderKind, KindTransfer)
		bc.Ensure(briefcase.FolderCode).AppendString("agent body")
		if sign != nil {
			SignCore(bc, sign)
		}
		return bc
	}

	// Signed by a trusted principal: accepted.
	if err := fw1.Send(sender.GlobalURI(), mkTransfer(fx.alice)); err != nil {
		t.Fatal(err)
	}
	if _, err := vm2.Recv(2 * time.Second); err != nil {
		t.Fatalf("signed transfer not delivered: %v", err)
	}

	// Unsigned: rejected, auth failure counted, error report returned.
	if err := fw1.Send(sender.GlobalURI(), mkTransfer(nil)); err != nil {
		t.Fatal(err)
	}
	rep, err := sender.Recv(2 * time.Second)
	if err != nil {
		t.Fatalf("no rejection report: %v", err)
	}
	if Kind(rep) != KindError {
		t.Errorf("report kind = %q", Kind(rep))
	}
	if fw2.Stats().AuthFailures != 1 {
		t.Errorf("h2 stats = %+v", fw2.Stats())
	}

	// Signed by an unknown principal: rejected.
	if err := fw1.Send(sender.GlobalURI(), mkTransfer(fx.mal)); err != nil {
		t.Fatal(err)
	}
	if _, err := sender.Recv(2 * time.Second); err != nil {
		t.Fatalf("no rejection report for unknown principal: %v", err)
	}
	if fw2.Stats().AuthFailures != 2 {
		t.Errorf("h2 stats = %+v", fw2.Stats())
	}
	if _, ok := vm2.TryRecv(); ok {
		t.Error("unauthenticated transfer delivered")
	}
}
