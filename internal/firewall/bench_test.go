package firewall

import (
	"testing"
	"time"

	"tax/internal/briefcase"
	"tax/internal/identity"
	"tax/internal/simnet"
)

func benchFirewall(b *testing.B) (*Firewall, func()) {
	b.Helper()
	net := simnet.New(simnet.LAN100)
	host, err := net.AddHost("h1")
	if err != nil {
		b.Fatal(err)
	}
	sys, err := identity.NewPrincipal("system")
	if err != nil {
		b.Fatal(err)
	}
	trust := &identity.TrustStore{}
	trust.AddPrincipal(sys, identity.System)
	fw, err := New(Config{
		HostName: "h1", Node: host, Trust: trust, SystemPrincipal: "system",
	})
	if err != nil {
		b.Fatal(err)
	}
	return fw, func() {
		_ = fw.Close()
		_ = net.Close()
	}
}

// BenchmarkLocalRoundTrip measures one send + receive through the
// firewall between two local agents.
func BenchmarkLocalRoundTrip(b *testing.B) {
	fw, cleanup := benchFirewall(b)
	defer cleanup()
	sender, _ := fw.Register("vm", "system", "src")
	recv, _ := fw.Register("vm", "system", "dst")

	payload := briefcase.New()
	payload.SetString("BODY", "x")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bc := payload.Clone()
		bc.SetString(briefcase.FolderSysTarget, "system/dst")
		if err := fw.Send(sender.GlobalURI(), bc); err != nil {
			b.Fatal(err)
		}
		if _, err := recv.Recv(time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegisterUnregister measures agent registration churn.
func BenchmarkRegisterUnregister(b *testing.B) {
	fw, cleanup := benchFirewall(b)
	defer cleanup()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := fw.Register("vm", "system", "churn")
		if err != nil {
			b.Fatal(err)
		}
		fw.Unregister(r)
	}
}

// BenchmarkSignVerifyCore measures agent-core authentication.
func BenchmarkSignVerifyCore(b *testing.B) {
	sys, err := identity.NewPrincipal("system")
	if err != nil {
		b.Fatal(err)
	}
	trust := &identity.TrustStore{}
	trust.AddPrincipal(sys, identity.Trusted)
	bc := briefcase.New()
	bc.Ensure(briefcase.FolderCode).Append(make([]byte, 4096))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SignCore(bc, sys)
		if _, err := VerifyCore(bc, trust, identity.Trusted); err != nil {
			b.Fatal(err)
		}
	}
}
