// Batched mediation: the firewall's remote fast path.
//
// Every remote forward used to be one transport message, so a fleet
// chattering over one link paid the link's per-message overhead per
// briefcase. With batching enabled (Config.Batch), Send still mediates
// every briefcase individually — policy checks, sender stamping,
// sealing — but instead of handing each sealed frame to the node it
// appends the frame to a per-destination-link queue. The queue is
// flushed as one container message when it reaches a byte or frame
// threshold, when its oldest frame exceeds a virtual-time age bound,
// when a real-time safety timer fires (so a queued RPC request cannot
// deadlock behind an idle link), or when an agent transfer is enqueued
// (Go/Spawn keep synchronous error reporting).
//
// The receiving firewall unpacks the container and runs every inner
// frame through the full inbound path — dedup, channel authentication,
// transfer authentication, routing policy — exactly as if each had
// arrived alone. Batching is therefore transport-level coalescing
// below the reference monitor, not a bypass of it; DESIGN §7 records
// the argument.
//
// Container wire format:
//
//	magic   [4]byte "TAXG"
//	version uvarint 1
//	count   uvarint
//	count × (frameLen uvarint, frame bytes)
package firewall

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"tax/internal/telemetry"
)

var batchMagic = [4]byte{'T', 'A', 'X', 'G'}

const batchVersion = 1

// Limits applied when unpacking a container from the network, matching
// the briefcase decode limits in spirit: bound resource use before any
// authentication has happened.
const (
	maxBatchFrames    = 1 << 16
	maxBatchFrameSize = 1 << 26
)

// Defaults for BatchConfig fields left zero.
const (
	DefaultBatchMaxBytes   = 32 << 10
	DefaultBatchMaxFrames  = 16
	DefaultBatchMaxDelay   = 200 * time.Microsecond
	DefaultBatchFlushEvery = 500 * time.Microsecond
)

// BatchConfig enables and tunes batched mediation. The zero value of
// each field selects its default; FlushEvery < 0 disables the
// real-time safety timer (deterministic benchmarks flush on thresholds
// and explicitly).
type BatchConfig struct {
	// MaxBytes flushes a link's queue once its accumulated frame bytes
	// reach this bound.
	MaxBytes int
	// MaxFrames flushes a link's queue once this many frames are queued.
	MaxFrames int
	// MaxDelay is the virtual-time age bound: a Send that finds the
	// link's oldest queued frame older than this flushes inline. It is
	// checked against the host clock, so simulated deployments enforce
	// it without waiting.
	MaxDelay time.Duration
	// FlushEvery is a real-time safety flush per link: a queue that no
	// later Send flushes is pushed out after this long, bounding the
	// latency a batched frame can silently gain. Negative disables it.
	FlushEvery time.Duration
}

func (c BatchConfig) withDefaults() BatchConfig {
	if c.MaxBytes == 0 {
		c.MaxBytes = DefaultBatchMaxBytes
	}
	if c.MaxFrames == 0 {
		c.MaxFrames = DefaultBatchMaxFrames
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = DefaultBatchMaxDelay
	}
	if c.FlushEvery == 0 {
		c.FlushEvery = DefaultBatchFlushEvery
	}
	return c
}

// batcher holds the per-link queues of a batching firewall.
type batcher struct {
	fw  *Firewall
	cfg BatchConfig

	mu     sync.Mutex
	links  map[string]*linkBatch
	closed bool
}

// linkBatch is one destination link's queue: the concatenated
// (uvarint length, frame) entries awaiting a container flush.
type linkBatch struct {
	mu      sync.Mutex
	addr    string
	buf     []byte
	frames  int
	firstAt time.Duration // host virtual time the oldest frame was queued
	timer   *time.Timer
	gFrames *telemetry.Gauge // fw.batch_queued{host,link}
	gBytes  *telemetry.Gauge // fw.batch_queued_bytes{host,link}
}

func newBatcher(fw *Firewall, cfg BatchConfig) *batcher {
	return &batcher{fw: fw, cfg: cfg.withDefaults(), links: make(map[string]*linkBatch)}
}

func (b *batcher) link(addr string) *linkBatch {
	b.mu.Lock()
	defer b.mu.Unlock()
	lb, ok := b.links[addr]
	if !ok {
		reg := b.fw.tel.Registry()
		lb = &linkBatch{
			addr:    addr,
			gFrames: reg.Gauge("fw.batch_queued", "host", b.fw.cfg.HostName, "link", addr),
			gBytes:  reg.Gauge("fw.batch_queued_bytes", "host", b.fw.cfg.HostName, "link", addr),
		}
		b.links[addr] = lb
	}
	return lb
}

// enqueue appends one sealed frame to addr's queue and flushes when a
// threshold is met or the caller demands it (inline=true: agent
// transfers and anything else that needs the flush error now). The
// frame bytes are copied into the queue, so callers may recycle frame
// immediately.
func (b *batcher) enqueue(addr string, frame []byte, inline bool) error {
	lb := b.link(addr)
	lb.mu.Lock()
	if lb.frames == 0 {
		lb.firstAt = b.fw.clock.Now()
		if b.cfg.FlushEvery > 0 {
			lb.timer = time.AfterFunc(b.cfg.FlushEvery, func() { b.flushTimer(lb) })
		}
	}
	lb.buf = binary.AppendUvarint(lb.buf, uint64(len(frame)))
	lb.buf = append(lb.buf, frame...)
	lb.frames++
	lb.gFrames.Set(int64(lb.frames))
	lb.gBytes.Set(int64(len(lb.buf)))
	aged := b.fw.clock.Now()-lb.firstAt >= b.cfg.MaxDelay
	if inline || aged || lb.frames >= b.cfg.MaxFrames || len(lb.buf) >= b.cfg.MaxBytes {
		return b.flushLocked(lb)
	}
	lb.mu.Unlock()
	return nil
}

// flushTimer is the safety-timer path; flush errors surface through the
// audit log only (there is no caller to return them to).
func (b *batcher) flushTimer(lb *linkBatch) {
	lb.mu.Lock()
	_ = b.flushLocked(lb)
}

// flushLink flushes one link's queue now (FlushBatches, Close).
func (b *batcher) flushLink(lb *linkBatch) error {
	lb.mu.Lock()
	return b.flushLocked(lb)
}

// flushLocked sends lb's queue as one container and resets the queue.
// It is entered holding lb.mu and releases it before touching the
// network, so a slow or retrying link stalls neither later enqueues to
// other links nor the timer machinery.
func (b *batcher) flushLocked(lb *linkBatch) error {
	if lb.timer != nil {
		lb.timer.Stop()
		lb.timer = nil
	}
	if lb.frames == 0 {
		lb.mu.Unlock()
		return nil
	}
	frames, body := lb.frames, lb.buf
	lb.buf, lb.frames = nil, 0
	lb.gFrames.Set(0)
	lb.gBytes.Set(0)
	lb.mu.Unlock()

	container := make([]byte, 0, len(batchMagic)+2+binary.MaxVarintLen64+len(body))
	container = append(container, batchMagic[:]...)
	container = binary.AppendUvarint(container, batchVersion)
	container = binary.AppendUvarint(container, uint64(frames))
	container = append(container, body...)

	fw := b.fw
	// The container rides the host-default retry policy: per-briefcase
	// _RETRY folders cannot apply to a frame that shares its transport
	// message with others.
	policy := fw.cfg.ForwardRetry
	attempts := policy.Attempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := policy.Backoff
	start := fw.clock.Now()
	var err error
	var attempt int
	for attempt = 1; ; attempt++ {
		err = fw.cfg.Node.Send(lb.addr, container)
		if err == nil || attempt >= attempts {
			break
		}
		if policy.Deadline > 0 && fw.clock.Now()-start+backoff > policy.Deadline {
			break
		}
		fw.ctr.retries.Inc()
		fw.event(telemetry.EventRetry, fw.cfg.SystemPrincipal, lb.addr,
			fmt.Sprintf("batch flush attempt %d/%d failed (%v); backing off %v", attempt, attempts, err, backoff))
		fw.clock.Advance(backoff)
		if backoff > 0 {
			backoff *= 2
		}
	}
	if err != nil {
		fw.ctr.errors.Inc()
		fw.event(telemetry.EventError, fw.cfg.SystemPrincipal, lb.addr,
			fmt.Sprintf("batch flush of %d frames failed: %v", frames, err))
		return fmt.Errorf("firewall: batch flush to %s: %w", lb.addr, err)
	}
	fw.ctr.batchFlushes.Inc()
	fw.ctr.batchFrames.Add(int64(frames))
	fw.event(telemetry.EventFlush, fw.cfg.SystemPrincipal, lb.addr,
		fmt.Sprintf("%d frames, %d bytes", frames, len(container)))
	return nil
}

// flushAll flushes every link (FlushBatches, Close).
func (b *batcher) flushAll() error {
	b.mu.Lock()
	links := make([]*linkBatch, 0, len(b.links))
	for _, lb := range b.links {
		links = append(links, lb)
	}
	b.mu.Unlock()
	var first error
	for _, lb := range links {
		if err := b.flushLink(lb); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// discardAll drops every queued frame without sending (CrashWipe: the
// machine's memory is gone, and so are frames it had not yet flushed).
func (b *batcher) discardAll() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, lb := range b.links {
		lb.mu.Lock()
		if lb.timer != nil {
			lb.timer.Stop()
			lb.timer = nil
		}
		lb.buf, lb.frames = nil, 0
		lb.gFrames.Set(0)
		lb.gBytes.Set(0)
		lb.mu.Unlock()
	}
}

// FlushBatches pushes every link's queued frames out now. It is a
// no-op without batching. Deterministic benchmarks and tests call it
// instead of depending on the real-time safety timer.
func (fw *Firewall) FlushBatches() error {
	if fw.batch == nil {
		return nil
	}
	return fw.batch.flushAll()
}

// isBatchContainer reports whether a payload is a batch container
// frame. Briefcase frames start with "TAXB", containers with "TAXG",
// so the two are unambiguous at the first four bytes.
func isBatchContainer(payload []byte) bool {
	return len(payload) >= len(batchMagic) && string(payload[:len(batchMagic)]) == string(batchMagic[:])
}

// unbatch unpacks an inbound container and feeds every inner frame
// through the full inbound path individually — the single reference
// monitor mediates each frame exactly as if it had arrived alone. A
// container inside a container is rejected: the format is one level
// deep by construction, so nesting is hostile input.
func (fw *Firewall) unbatch(from string, payload []byte) {
	rest := payload[len(batchMagic):]
	ver, n := binary.Uvarint(rest)
	if n <= 0 || ver != batchVersion {
		fw.ctr.errors.Inc()
		fw.event(telemetry.EventDrop, "", "", fmt.Sprintf("bad batch container version from %s", from))
		return
	}
	rest = rest[n:]
	count, n := binary.Uvarint(rest)
	if n <= 0 || count == 0 || count > maxBatchFrames {
		fw.ctr.errors.Inc()
		fw.event(telemetry.EventDrop, "", "", fmt.Sprintf("bad batch container count from %s", from))
		return
	}
	rest = rest[n:]
	for i := uint64(0); i < count; i++ {
		flen, n := binary.Uvarint(rest)
		if n <= 0 || flen > maxBatchFrameSize || uint64(len(rest[n:])) < flen {
			fw.ctr.errors.Inc()
			fw.event(telemetry.EventDrop, "", "",
				fmt.Sprintf("truncated batch container from %s (frame %d/%d)", from, i+1, count))
			return
		}
		frame := rest[n : n+int(flen)]
		rest = rest[n+int(flen):]
		if isBatchContainer(frame) {
			fw.ctr.errors.Inc()
			fw.event(telemetry.EventDrop, "", "", "nested batch container from "+from)
			continue
		}
		fw.ctr.batchRecv.Inc()
		fw.handleInbound(from, frame)
	}
	if len(rest) != 0 {
		fw.ctr.errors.Inc()
		fw.event(telemetry.EventDrop, "", "",
			fmt.Sprintf("batch container from %s has %d trailing bytes", from, len(rest)))
	}
}
