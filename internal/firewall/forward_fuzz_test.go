package firewall

import (
	"bytes"
	"encoding/binary"
	"testing"

	"tax/internal/briefcase"
	"tax/internal/identity"
)

// fuzzChain is the minimal forwarding fixture: an injected previous hop
// "a", the relay b under test, and the final receiver d. The tap
// captures exactly what b hands to the next link.
type fuzzChain struct {
	nodes     map[string]*pathNode
	relay     *Firewall
	dst       *Registration
	forwarded [][]byte
}

func newFuzzChain(t *testing.T) *fuzzChain {
	t.Helper()
	trust := &identity.TrustStore{}
	ch := &fuzzChain{nodes: make(map[string]*pathNode)}
	for _, name := range []string{"b", "d"} {
		ch.nodes[name] = &pathNode{addr: name, peers: ch.nodes}
	}
	for _, name := range []string{"b", "d"} {
		self := name
		fw, err := New(Config{
			HostName:        name,
			Node:            ch.nodes[name],
			Trust:           trust,
			SystemPrincipal: "system",
			Relay:           name == "b",
			Resolve: func(host string, _ int) (string, error) {
				if host == self {
					return self, nil
				}
				return "d", nil
			},
		})
		if err != nil {
			t.Fatalf("firewall %s: %v", name, err)
		}
		t.Cleanup(func() { _ = fw.Close() })
		if name == "b" {
			ch.relay = fw
		} else {
			var rerr error
			if ch.dst, rerr = fw.Register("vm", "system", "dst"); rerr != nil {
				t.Fatalf("register dst: %v", rerr)
			}
		}
	}
	ch.nodes["b"].tap = func(_, _ string, payload []byte) {
		ch.forwarded = append(ch.forwarded, append([]byte(nil), payload...))
	}
	return ch
}

// fuzzContainer wraps frames in a batch container the way the outbound
// batcher does, so the corpus seeds the container-forwarding path.
func fuzzContainer(frames ...[]byte) []byte {
	c := append([]byte(nil), batchMagic[:]...)
	c = binary.AppendUvarint(c, batchVersion)
	c = binary.AppendUvarint(c, uint64(len(frames)))
	for _, f := range frames {
		c = binary.AppendUvarint(c, uint64(len(f)))
		c = append(c, f...)
	}
	return c
}

// FuzzForward throws mutated wire bytes at a relay firewall and holds
// the zero-copy fast path to its contract: whatever the relay decides —
// forward, drop, or fall back to full mediation — it must never panic,
// and every frame it does forward must leave byte-identical to how it
// arrived (the relay reads headers; it has no business writing
// anything). When the forwarded frame reaches the final receiver and
// decodes, its folders must match what the frozen PR 5 reference codec
// reads from the original input — aliasing the wire buffer through
// routing and transfer must be invisible to the payload.
func FuzzForward(f *testing.F) {
	// The corpus covers every envelope the relay inspects: a plain
	// forwarded frame, a frame for the relay itself, a sealed frame, a
	// clean container, a mixed container, and junk.
	fwd := pathBriefcase().Encode()
	f.Add(append([]byte(nil), fwd...))

	local := briefcase.New()
	local.SetString("BODY", "for the relay itself")
	local.SetString(briefcase.FolderSysTarget, "tacoma://b/system/dst")
	f.Add(local.Encode())

	signer, err := identity.NewPrincipal("fw-a")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sealFrame(signer, fwd))

	f.Add(fuzzContainer(fwd, pathBriefcase().Encode()))
	f.Add(fuzzContainer(fwd, local.Encode()))
	f.Add([]byte("TAXG junk that is not a container"))
	f.Add(fwd[:len(fwd)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		ch := newFuzzChain(t)
		in := append([]byte(nil), data...)
		ch.nodes["b"].handler("a", in)

		// Everything the relay forwards must be verbatim input: the whole
		// message, or — when a mixed container fell back to unbatch and its
		// non-local frames took the per-frame relay path — one of the
		// container's inner frames.
		verbatim := [][]byte{data}
		if isBatchContainer(data) {
			walkContainer(data, func(frame []byte) bool {
				verbatim = append(verbatim, frame)
				return true
			})
		}
		for _, out := range ch.forwarded {
			ok := false
			for _, want := range verbatim {
				if bytes.Equal(out, want) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("relay altered forwarded bytes:\n in:  %x\nout: %x", data, out)
			}
		}
		// Cross-check against the reference codec: every briefcase the final
		// receiver sees must match the reference decode of one of the input's
		// frames (unsealed first — the seal is the channel's envelope, not
		// payload). Zero-copy aliasing through routing and transfer must be
		// invisible to the payload.
		var refs []*briefcase.Briefcase
		for _, w := range verbatim {
			inner, sealed := peekSealed(w)
			if !sealed {
				inner = w
			}
			if ref, err := briefcase.ReferenceDecode(inner); err == nil {
				refs = append(refs, ref)
			}
		}
		for {
			got, ok := ch.dst.TryRecv()
			if !ok {
				break
			}
			if len(refs) == 0 {
				// The fast path delivered something the reference codec cannot
				// read at all; codec agreement is FuzzCrossCodec's contract.
				continue
			}
			matched := false
			for _, ref := range refs {
				wantBody, _ := ref.GetString("BODY")
				wantTarget, _ := ref.GetString(briefcase.FolderSysTarget)
				haveBody, _ := got.GetString("BODY")
				haveTarget, _ := got.GetString(briefcase.FolderSysTarget)
				if wantBody == haveBody && wantTarget == haveTarget {
					matched = true
					break
				}
			}
			if !matched {
				body, _ := got.GetString("BODY")
				t.Fatalf("delivered briefcase (BODY %q) matches no reference decode of the input", body)
			}
		}
	})
}
