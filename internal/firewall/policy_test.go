package firewall

import (
	"errors"
	"strings"
	"testing"
	"time"

	"tax/internal/briefcase"
	"tax/internal/policy"
	"tax/internal/telemetry"
	"tax/internal/vclock"
)

// policyFixture builds hosts whose firewalls run policy engines: one
// engine per host, parsed from rulesets[hostname] (hosts not in the map
// get no engine and mediate legacy-style). All engines share clk so
// quota tests control refill explicitly.
func policyFixture(t *testing.T, clk vclock.Clock, rulesets map[string]string, dq policy.Quota, hosts ...string) (*fixture, *telemetry.Telemetry) {
	t.Helper()
	tel := telemetry.New(telemetry.Options{Host: "test", Spans: true, Events: true})
	f := newFixture(t)
	f.config = func(c *Config) {
		c.Telemetry = tel
		if text, ok := rulesets[c.HostName]; ok {
			c.Policy = policy.New(clk, policy.MustParse(text), dq)
		}
	}
	for _, h := range hosts {
		f.addHost(h)
	}
	return f, tel
}

// sendErr is send that returns the mediation error instead of failing.
func sendErr(fw *Firewall, from *Registration, target, body string) error {
	bc := briefcase.New()
	bc.SetString(briefcase.FolderSysTarget, target)
	bc.SetString("BODY", body)
	return fw.Send(from.GlobalURI(), bc)
}

// countEvents counts audit events of one type whose cause contains sub.
func countEvents(tel *telemetry.Telemetry, typ, sub string) int {
	n := 0
	for _, e := range tel.Events().Snapshot() {
		if e.Type == typ && strings.Contains(e.Cause, sub) {
			n++
		}
	}
	return n
}

func TestPolicyDenyLocalTyped(t *testing.T) {
	f, tel := policyFixture(t, vclock.NewVirtual(), map[string]string{
		"h1": "default deny\nok: allow alice send alice/**\n",
	}, policy.Quota{}, "h1")
	fw := f.sites["h1"].fw
	src, _ := fw.Register("vm_go", "alice", "src")
	dst, _ := fw.Register("vm_go", "alice", "dst")

	// The allow rule admits alice-to-alice traffic.
	if err := sendErr(fw, src, "alice/dst", "in-policy"); err != nil {
		t.Fatalf("allowed send failed: %v", err)
	}
	if got := recvBody(t, dst, time.Second); got != "in-policy" {
		t.Errorf("body = %q", got)
	}

	// A target outside the allowed principal space falls through to the
	// default and comes back typed, naming the deciding rule.
	err := sendErr(fw, src, "bob/anything", "refused")
	if !errors.Is(err, ErrPolicyDenied) {
		t.Fatalf("deny err = %v, want ErrPolicyDenied", err)
	}
	if !strings.Contains(err.Error(), "p1.default") {
		t.Errorf("deny error %q does not name the default rule", err)
	}
	if got := countEvents(tel, telemetry.EventDeny, "policy rule=p1.default"); got != 1 {
		t.Errorf("deny audit events = %d, want exactly 1", got)
	}
	if got := countEvents(tel, telemetry.EventAllow, "rule=p1.ok"); got != 1 {
		t.Errorf("allow audit events naming p1.ok = %d, want exactly 1", got)
	}
	if v := tel.Registry().Counter("fw.policy_deny", "host", "h1").Value(); v != 1 {
		t.Errorf("fw.policy_deny = %d", v)
	}
}

// TestPolicySystemExempt: the system principal is the TCB — mediation
// for it never consults the ruleset, so management and error envelopes
// keep flowing under a default-deny policy.
func TestPolicySystemExempt(t *testing.T) {
	f, _ := policyFixture(t, vclock.NewVirtual(), map[string]string{
		"h1": "default deny\n",
	}, policy.Quota{}, "h1")
	fw := f.sites["h1"].fw
	sys, _ := fw.Register("vm_go", "system", "sysagent")
	reply := mgmtRequest(t, fw, sys, OpList, "")
	if Kind(reply) == KindError {
		t.Fatalf("system mgmt op denied under default-deny: %v", reply)
	}
	// Non-system mgmt is still policy-checked.
	al, _ := fw.Register("vm_go", "alice", "alagent")
	err := sendErr(fw, al, FirewallName, "x")
	if !errors.Is(err, ErrPolicyDenied) {
		t.Fatalf("alice mgmt send = %v, want ErrPolicyDenied", err)
	}
}

// TestPolicyParkHeldUntilReload: a park verdict holds a message across
// the very registration flush that would deliver an ordinary park; only
// a reload that allows the flow releases it.
func TestPolicyParkHeldUntilReload(t *testing.T) {
	f, tel := policyFixture(t, vclock.NewVirtual(), map[string]string{
		"h1": "hold: park alice send **\n",
	}, policy.Quota{}, "h1")
	fw := f.sites["h1"].fw
	src, _ := fw.Register("vm_go", "alice", "src")

	if err := sendErr(fw, src, "alice/dst", "held"); err != nil {
		t.Fatalf("park verdict returned error: %v", err)
	}
	if fw.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", fw.Pending())
	}
	if got := countEvents(tel, telemetry.EventPark, "policy rule=p1.hold"); got != 1 {
		t.Errorf("park audit events = %d, want exactly 1", got)
	}

	// Registration does NOT flush a policy-held park.
	dst, _ := fw.Register("vm_go", "alice", "dst")
	if _, ok := dst.TryRecv(); ok {
		t.Fatal("policy-held message flushed by registration")
	}
	if fw.Pending() != 1 {
		t.Fatalf("Pending after register = %d, want 1", fw.Pending())
	}

	// A reload that allows the flow re-dispatches it.
	v, err := fw.ReloadPolicy("default deny\nok: allow alice send **\n")
	if err != nil || v != 2 {
		t.Fatalf("ReloadPolicy = (%d, %v)", v, err)
	}
	if got := recvBody(t, dst, time.Second); got != "held" {
		t.Errorf("released body = %q", got)
	}
	if fw.Pending() != 0 {
		t.Errorf("Pending after release = %d", fw.Pending())
	}
}

// TestPolicyReloadRejectedKeepsOld: a ruleset that fails validation
// changes nothing — same version, same verdicts — and the rejection is
// audited.
func TestPolicyReloadRejectedKeepsOld(t *testing.T) {
	f, tel := policyFixture(t, vclock.NewVirtual(), map[string]string{
		"h1": "default deny\nok: allow alice send **\n",
	}, policy.Quota{}, "h1")
	fw := f.sites["h1"].fw
	src, _ := fw.Register("vm_go", "alice", "src")
	dst, _ := fw.Register("vm_go", "alice", "dst")

	if _, err := fw.ReloadPolicy("default deny\nallow broken\n"); err == nil {
		t.Fatal("invalid reload accepted")
	}
	if got := fw.Policy().Version(); got != 1 {
		t.Errorf("version after failed reload = %d, want 1", got)
	}
	if err := sendErr(fw, src, "alice/dst", "still works"); err != nil {
		t.Fatalf("send after failed reload: %v", err)
	}
	if got := recvBody(t, dst, time.Second); got != "still works" {
		t.Errorf("body = %q", got)
	}
	if got := countEvents(tel, telemetry.EventError, "policy reload rejected"); got != 1 {
		t.Errorf("reload-rejected audit events = %d, want 1", got)
	}
	if fw.Policy() == nil {
		t.Fatal("Policy() accessor lost the engine")
	}
}

// TestPolicyReloadDeniesHeld: a held message whose new verdict is deny
// goes back to its sender as a typed error report, not into the void.
func TestPolicyReloadDeniesHeld(t *testing.T) {
	f, _ := policyFixture(t, vclock.NewVirtual(), map[string]string{
		"h1": "hold: park alice send alice/dst\nallow alice send **\n",
	}, policy.Quota{}, "h1")
	fw := f.sites["h1"].fw
	src, _ := fw.Register("vm_go", "alice", "src")

	if err := sendErr(fw, src, "alice/dst", "doomed"); err != nil {
		t.Fatal(err)
	}
	if fw.Pending() != 1 {
		t.Fatalf("Pending = %d", fw.Pending())
	}
	if _, err := fw.ReloadPolicy("default deny\n"); err != nil {
		t.Fatal(err)
	}
	report, err := src.Recv(2 * time.Second)
	if err != nil {
		t.Fatalf("no error report: %v", err)
	}
	if Kind(report) != KindError {
		t.Fatalf("kind = %q", Kind(report))
	}
	re, ok := RemoteErrorFrom(report)
	if !ok || !errors.Is(re, ErrPolicyDenied) {
		t.Errorf("report error = %v (ok=%v), want ErrPolicyDenied via _ERRCODE", re, ok)
	}
	if fw.Pending() != 0 {
		t.Errorf("Pending after deny release = %d", fw.Pending())
	}
}

// TestPolicyQuotaLocal: message-rate quotas refuse the excess send
// typed, audit it, debit nothing for the refusal, and refill on the
// virtual clock.
func TestPolicyQuotaLocal(t *testing.T) {
	clk := vclock.NewVirtual()
	f, tel := policyFixture(t, clk, map[string]string{
		"h1": "default allow\nlim: quota alice rate=2 burst=2\n",
	}, policy.Quota{}, "h1")
	fw := f.sites["h1"].fw
	src, _ := fw.Register("vm_go", "alice", "src")
	dst, _ := fw.Register("vm_go", "alice", "dst")

	for i := 0; i < 2; i++ {
		if err := sendErr(fw, src, "alice/dst", "ok"); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	err := sendErr(fw, src, "alice/dst", "over")
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("third send = %v, want ErrQuotaExceeded", err)
	}
	if !strings.Contains(err.Error(), "p1.lim") {
		t.Errorf("quota error %q does not name the quota line", err)
	}
	if got := countEvents(tel, telemetry.EventQuota, "quota rule=p1.lim"); got != 1 {
		t.Errorf("quota audit events = %d, want exactly 1", got)
	}
	if v := tel.Registry().Counter("fw.policy_quota", "host", "h1").Value(); v != 1 {
		t.Errorf("fw.policy_quota = %d", v)
	}
	// Refill half a token-second: one more message fits.
	clk.Advance(500 * time.Millisecond)
	if err := sendErr(fw, src, "alice/dst", "refilled"); err != nil {
		t.Fatalf("post-refill send: %v", err)
	}
	for i := 0; i < 3; i++ {
		recvBody(t, dst, time.Second)
	}
	if _, ok := dst.TryRecv(); ok {
		t.Error("refused message was delivered anyway")
	}
}

// TestPolicyByteQuotaRemote: remote forwards charge encoded frame bytes
// at the origin; an over-budget frame never reaches the wire.
func TestPolicyByteQuotaRemote(t *testing.T) {
	clk := vclock.NewVirtual()
	f, _ := policyFixture(t, clk, map[string]string{
		"h1": "default allow\nthin: quota alice rate=1000 bytes=1\n",
	}, policy.Quota{}, "h1", "h2")
	fw1 := f.sites["h1"].fw
	src, _ := fw1.Register("vm_go", "alice", "src")
	recv, _ := f.sites["h2"].fw.Register("vm_go", "alice", "receiver")

	// Any real frame is bigger than the 1-byte budget.
	err := sendErr(fw1, src, "tacoma://h2/alice/receiver", "fat")
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("send = %v, want ErrQuotaExceeded", err)
	}
	if fw1.Stats().Forwarded != 0 {
		t.Errorf("refused frame was forwarded: %+v", fw1.Stats())
	}
	if _, ok := recv.TryRecv(); ok {
		t.Error("refused frame delivered remotely")
	}
}

// TestPolicyRemoteDenyTypedAcrossHosts: the receiving host's deny
// travels back as a KindError envelope whose _ERRCODE reconstructs
// ErrPolicyDenied under errors.Is on the sender's side of the wire.
func TestPolicyRemoteDenyTypedAcrossHosts(t *testing.T) {
	f, tel := policyFixture(t, vclock.NewVirtual(), map[string]string{
		"h1": "default deny\nout: allow alice send **\n",
		"h2": "default deny\n",
	}, policy.Quota{}, "h1", "h2")
	fw1 := f.sites["h1"].fw
	src, _ := fw1.Register("vm_go", "alice", "src")
	f.sites["h2"].fw.Register("vm_go", "alice", "receiver")

	// h1 allows the forward; h2 re-mediates on arrival and denies.
	if err := sendErr(fw1, src, "tacoma://h2/alice/receiver", "rejected there"); err != nil {
		t.Fatalf("origin-side send failed: %v", err)
	}
	report, err := src.Recv(2 * time.Second)
	if err != nil {
		t.Fatalf("no error report: %v", err)
	}
	if Kind(report) != KindError {
		t.Fatalf("kind = %q", Kind(report))
	}
	re, ok := RemoteErrorFrom(report)
	if !ok {
		t.Fatal("report carries no typed error")
	}
	if !errors.Is(re, ErrPolicyDenied) {
		t.Errorf("errors.Is(re, ErrPolicyDenied) = false; re = %v", re)
	}
	if re.Code != "fw_policy_denied" {
		t.Errorf("code = %q, want fw_policy_denied", re.Code)
	}
	// Exactly one deny decision was audited, on h2.
	if got := countEvents(tel, telemetry.EventDeny, "policy rule=p1.default"); got != 1 {
		t.Errorf("cross-host deny audit events = %d, want 1", got)
	}
}

// TestPolicyMgmtOps: the management plane exposes the ruleset (OpPolicy)
// and hot reload (OpPolicyLoad), and a bad reload comes back as a
// KindError reply while the old ruleset keeps running.
func TestPolicyMgmtOps(t *testing.T) {
	f, _ := policyFixture(t, vclock.NewVirtual(), map[string]string{
		"h1": "default deny\nmg: allow alice mgmt **\n",
	}, policy.Quota{}, "h1")
	fw := f.sites["h1"].fw
	al, _ := fw.Register("vm_go", "alice", "ctl")

	reply := mgmtRequest(t, fw, al, OpPolicy, "")
	rows, err := reply.Folder(FolderReply)
	if err != nil {
		t.Fatalf("policy reply has no rows: %v", err)
	}
	text := strings.Join(rows.Strings(), "\n")
	if !strings.Contains(text, "version|1") || !strings.Contains(text, "p1.mg|allow|alice|mgmt|**") {
		t.Errorf("policy description:\n%s", text)
	}

	// policyload is System-gated: alice (Trusted) is refused.
	reply = mgmtRequest(t, fw, al, OpPolicyLoad, "default allow\n")
	if Kind(reply) != KindError {
		t.Fatal("trusted principal performed a System-only reload")
	}

	sys, _ := fw.Register("vm_go", "system", "sysctl")
	reply = mgmtRequest(t, fw, sys, OpPolicyLoad, "default deny\nmg: allow alice mgmt **\nnew: allow alice send **\n")
	if Kind(reply) == KindError {
		t.Fatalf("system reload refused: %v", reply)
	}
	rows, err = reply.Folder(FolderReply)
	if err != nil || len(rows.Strings()) != 1 || rows.Strings()[0] != "version|2" {
		t.Fatalf("policyload reply = %v (err %v), want [version|2]", rows, err)
	}

	// An invalid ruleset through the wire: typed error, old rules live.
	reply = mgmtRequest(t, fw, sys, OpPolicyLoad, "garbage here\n")
	if Kind(reply) != KindError {
		t.Fatal("invalid reload accepted over mgmt")
	}
	if got := fw.Policy().Version(); got != 2 {
		t.Errorf("version after bad mgmt reload = %d, want 2", got)
	}
}

// TestPolicyAuditOnePerDecision: across allow, deny, park and quota
// outcomes, every policy decision leaves exactly one audit event
// carrying its rule id — no silent verdicts, no double-logging.
func TestPolicyAuditOnePerDecision(t *testing.T) {
	clk := vclock.NewVirtual()
	f, tel := policyFixture(t, clk, map[string]string{
		"h1": `default deny
ok:   allow alice send alice/**
no:   deny  alice send bob/**
hold: park  alice send carol/**
lim:  quota alice rate=2 burst=2
`,
	}, policy.Quota{}, "h1")
	fw := f.sites["h1"].fw
	src, _ := fw.Register("vm_go", "alice", "src")
	dst, _ := fw.Register("vm_go", "alice", "dst")

	if err := sendErr(fw, src, "alice/dst", "a"); err != nil { // allow + charge 1
		t.Fatal(err)
	}
	if err := sendErr(fw, src, "bob/x", "b"); !errors.Is(err, ErrPolicyDenied) { // deny
		t.Fatal(err)
	}
	if err := sendErr(fw, src, "carol/x", "c"); err != nil { // park (charges nothing)
		t.Fatal(err)
	}
	if err := sendErr(fw, src, "alice/dst", "d"); err != nil { // allow + charge 2
		t.Fatal(err)
	}
	if err := sendErr(fw, src, "alice/dst", "e"); !errors.Is(err, ErrQuotaExceeded) { // quota
		t.Fatal(err)
	}
	recvBody(t, dst, time.Second)
	recvBody(t, dst, time.Second)

	checks := []struct {
		typ, sub string
		want     int
	}{
		{telemetry.EventAllow, "rule=p1.ok", 2},
		{telemetry.EventDeny, "policy rule=p1.no", 1},
		{telemetry.EventPark, "policy rule=p1.hold", 1},
		{telemetry.EventQuota, "quota rule=p1.lim", 1},
	}
	for _, c := range checks {
		if got := countEvents(tel, c.typ, c.sub); got != c.want {
			t.Errorf("%s events with %q = %d, want %d", c.typ, c.sub, got, c.want)
		}
	}
	// Every policy event names a rule id.
	for _, e := range tel.Events().Snapshot() {
		if strings.Contains(e.Cause, "policy") && !strings.Contains(e.Cause, "rule=") &&
			!strings.Contains(e.Cause, "reload") {
			t.Errorf("policy event without rule id: %q", e.Cause)
		}
	}
	// And the counters agree with the audited decisions.
	reg := tel.Registry()
	for name, want := range map[string]int64{
		"fw.policy_allow": 2, "fw.policy_deny": 1,
		"fw.policy_park": 1, "fw.policy_quota": 1,
	} {
		if got := reg.Counter(name, "host", "h1").Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

// TestPolicyReloadAtomicUnderConcurrentSends: senders hammer the
// firewall while valid and invalid rulesets install concurrently. Every
// mediation must land on one whole ruleset: since every installed
// ruleset allows the flow, no send may ever fail — an invalid reload
// that left a partially-applied ruleset would surface here as a typed
// denial.
func TestPolicyReloadAtomicUnderConcurrentSends(t *testing.T) {
	f, _ := policyFixture(t, vclock.NewVirtual(), map[string]string{
		"h1": "default deny\na: allow alice send **\n",
	}, policy.Quota{}, "h1")
	fw := f.sites["h1"].fw
	src, _ := fw.Register("vm_go", "alice", "src")
	dst, _ := fw.Register("vm_go", "alice", "dst")

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			if i%2 == 0 {
				if _, err := fw.ReloadPolicy("default deny\nb: allow alice send **\n"); err != nil {
					t.Errorf("valid reload failed: %v", err)
					return
				}
			} else {
				if _, err := fw.ReloadPolicy("default deny\nbroken line\n"); err == nil {
					t.Error("invalid reload accepted")
					return
				}
			}
		}
	}()
	sent := 0
	for i := 0; i < 2000; i++ {
		if err := sendErr(fw, src, "alice/dst", "x"); err != nil {
			t.Fatalf("send %d failed mid-reload: %v", i, err)
		}
		sent++
		if sent%100 == 0 { // drain so the mailbox never fills
			for j := 0; j < 100; j++ {
				recvBody(t, dst, time.Second)
			}
		}
	}
	<-done
}
