package firewall

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"tax/internal/briefcase"
	"tax/internal/policy"
	"tax/internal/uri"
	"tax/internal/vclock"
)

// TestPolicyQuotaStarvation10k: ten thousand principals mediate
// concurrently under a one-message quota on a frozen virtual clock.
// Tenant isolation must hold exactly — every principal gets its one
// message through and every excess send is refused typed, with no
// cross-tenant leakage in either direction. Runs under -race in CI.
func TestPolicyQuotaStarvation10k(t *testing.T) {
	const (
		tenants = 10_000
		perTen  = 3 // 1 allowed + 2 refused on the frozen clock
		sinks   = 64
	)
	// The engine runs on its own virtual clock that never advances, so
	// buckets never refill and the per-tenant arithmetic is exact.
	clk := vclock.NewVirtual()
	f := newFixture(t)
	f.config = func(c *Config) {
		c.Policy = policy.New(clk,
			policy.MustParse("default allow\nlim: quota tenant* rate=1 burst=1\n"),
			policy.Quota{})
	}
	site := f.addHost("h1")
	fw := site.fw

	var sinkRegs [sinks]*Registration
	for i := range sinkRegs {
		r, err := fw.Register("vm_go", "alice", fmt.Sprintf("sink%d", i))
		if err != nil {
			t.Fatal(err)
		}
		sinkRegs[i] = r
	}

	var delivered, refused, unexpected atomic.Int64
	var wg sync.WaitGroup
	workers := 32
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := w; i < tenants; i += workers {
				// Un-instanced synthetic sender URIs skip the liveness
				// check, so ten thousand principals need no registrations.
				sender := uri.URI{Host: "h1", Principal: fmt.Sprintf("tenant%d", i), Name: "client"}
				target := fmt.Sprintf("alice/sink%d", i%sinks)
				for j := 0; j < perTen; j++ {
					bc := briefcase.New()
					bc.SetString(briefcase.FolderSysTarget, target)
					err := fw.Send(sender, bc)
					switch {
					case err == nil:
						delivered.Add(1)
					case errors.Is(err, ErrQuotaExceeded):
						refused.Add(1)
					default:
						unexpected.Add(1)
						t.Errorf("tenant%d send %d: %v", i, j, err)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if got := delivered.Load(); got != tenants {
		t.Errorf("delivered = %d, want %d (one per tenant)", got, tenants)
	}
	if got := refused.Load(); got != tenants*(perTen-1) {
		t.Errorf("refused = %d, want %d", got, tenants*(perTen-1))
	}
	if unexpected.Load() != 0 {
		t.Fatalf("%d sends failed outside the quota path", unexpected.Load())
	}
	// Every refusal was counted, every tenant holds an isolated bucket.
	if got := fw.ctr.policyQuota.Value(); got != tenants*(perTen-1) {
		t.Errorf("fw.policy_quota = %d, want %d", got, tenants*(perTen-1))
	}
	if got := fw.Policy().Principals(); got != tenants {
		t.Errorf("Principals() = %d, want %d", got, tenants)
	}
	// The messages all actually landed in mailboxes.
	total := 0
	for _, r := range sinkRegs {
		for {
			if _, ok := r.TryRecv(); !ok {
				break
			}
			total++
		}
	}
	if total != tenants {
		t.Errorf("mailboxes hold %d messages, want %d", total, tenants)
	}
}
