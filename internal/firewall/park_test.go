package firewall

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"tax/internal/briefcase"
)

// TestParkTableStripesConsistent checks the striped bookkeeping: total
// gauge == sum of shard gauges == Pending() while messages park, and
// everything drains to zero when receivers register.
func TestParkTableStripesConsistent(t *testing.T) {
	f := newFixture(t, "h1")
	fw := f.sites["h1"].fw
	src, _ := fw.Register("vm_go", "alice", "src")

	const receivers = 24
	for i := 0; i < receivers; i++ {
		bc := briefcase.New()
		bc.SetString(briefcase.FolderSysTarget, fmt.Sprintf("alice/late%d", i))
		if err := fw.Send(src.GlobalURI(), bc); err != nil {
			t.Fatal(err)
		}
	}
	if got := fw.Pending(); got != receivers {
		t.Fatalf("Pending() = %d, want %d", got, receivers)
	}
	if got := fw.gaugePending.Value(); got != receivers {
		t.Fatalf("fw.pending gauge = %d, want %d", got, receivers)
	}
	var shardSum int64
	for i := range fw.park.shards {
		shardSum += fw.park.shards[i].gauge.Value()
	}
	if shardSum != receivers {
		t.Fatalf("sum of shard gauges = %d, want %d", shardSum, receivers)
	}

	// Registering each receiver flushes exactly its own message.
	for i := 0; i < receivers; i++ {
		r, err := fw.Register("vm_go", "alice", fmt.Sprintf("late%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Recv(2 * time.Second); err != nil {
			t.Fatalf("late%d: %v", i, err)
		}
	}
	if got := fw.Pending(); got != 0 {
		t.Fatalf("Pending() after flush = %d, want 0", got)
	}
	if got := fw.gaugePending.Value(); got != 0 {
		t.Fatalf("fw.pending gauge after flush = %d, want 0", got)
	}
}

// TestParkTableConcurrentParkAndRegister races parkers against late
// registrations across many distinct receiver names (hence stripes):
// every message must be delivered exactly once — none lost to the
// park/register race, none duplicated by a flush racing an expiry.
func TestParkTableConcurrentParkAndRegister(t *testing.T) {
	f := newFixture(t, "h1")
	fw := f.sites["h1"].fw
	src, _ := fw.Register("vm_go", "alice", "src")

	const receivers = 32
	const perReceiver = 4
	var wg sync.WaitGroup
	sendErrs := make(chan error, receivers*perReceiver)
	for i := 0; i < receivers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perReceiver; j++ {
				bc := briefcase.New()
				bc.SetString(briefcase.FolderSysTarget, fmt.Sprintf("alice/rcv%d", id))
				if err := fw.Send(src.GlobalURI(), bc); err != nil {
					sendErrs <- err
				}
			}
		}(i)
	}

	got := make([]int, receivers)
	var recvWG sync.WaitGroup
	for i := 0; i < receivers; i++ {
		recvWG.Add(1)
		go func(id int) {
			defer recvWG.Done()
			r, err := fw.Register("vm_go", "alice", fmt.Sprintf("rcv%d", id))
			if err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < perReceiver; j++ {
				if _, err := r.Recv(5 * time.Second); err != nil {
					t.Errorf("rcv%d: %v", id, err)
					return
				}
				got[id]++
			}
		}(i)
	}
	wg.Wait()
	close(sendErrs)
	for err := range sendErrs {
		t.Fatal(err)
	}
	recvWG.Wait()
	for i, n := range got {
		if n != perReceiver {
			t.Errorf("rcv%d got %d messages, want %d", i, n, perReceiver)
		}
	}
	if n := fw.Pending(); n != 0 {
		t.Errorf("Pending() = %d after all receivers registered", n)
	}
}
