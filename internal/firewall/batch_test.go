package firewall

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tax/internal/briefcase"
	"tax/internal/faults"
)

// newBatchPair builds the common two-host batching fixture: batching
// enabled on both sides with bcfg, plus an optional extra Config hook.
func newBatchPair(t *testing.T, bcfg BatchConfig, mutate func(*Config)) (*fixture, *Firewall, *Firewall) {
	t.Helper()
	f := newFixture(t)
	f.config = func(c *Config) {
		cfg := bcfg
		c.Batch = &cfg
		if mutate != nil {
			mutate(c)
		}
	}
	f.addHost("h1")
	f.addHost("h2")
	return f, f.sites["h1"].fw, f.sites["h2"].fw
}

// TestBatchedMediationDelivers: messages queue per link, flush on the
// frame threshold, and every briefcase arrives individually mediated
// and in order.
func TestBatchedMediationDelivers(t *testing.T) {
	_, fw1, fw2 := newBatchPair(t, BatchConfig{MaxFrames: 4, FlushEvery: -1, MaxDelay: time.Hour}, nil)
	sender, _ := fw1.Register("vm_go", "alice", "sender")
	recv, _ := fw2.Register("vm_go", "alice", "receiver")

	const n = 10
	for i := 0; i < n; i++ {
		send(t, fw1, sender, "tacoma://h2/alice/receiver", "m"+strconv.Itoa(i))
	}
	// 10 frames at MaxFrames 4: two threshold flushes, two frames left.
	if err := fw1.FlushBatches(); err != nil {
		t.Fatalf("FlushBatches: %v", err)
	}
	for i := 0; i < n; i++ {
		if got, want := recvBody(t, recv, time.Second), "m"+strconv.Itoa(i); got != want {
			t.Fatalf("message %d: got %q want %q", i, got, want)
		}
	}
	if got := fw1.ctr.batchFrames.Value(); got != n {
		t.Errorf("batch_frames = %d, want %d", got, n)
	}
	if got := fw1.ctr.batchFlushes.Value(); got != 3 {
		t.Errorf("batch_flushes = %d, want 3 (2 threshold + 1 explicit)", got)
	}
	if got := fw2.ctr.batchRecv.Value(); got != n {
		t.Errorf("receiver batch_recv = %d, want %d", got, n)
	}
	if got := fw1.Stats().Forwarded; got != n {
		t.Errorf("forwarded = %d, want %d (batching must not change per-frame accounting)", got, n)
	}
}

// TestBatchVirtualAgeFlush: a Send that finds the queue older than
// MaxDelay on the virtual clock flushes inline — no timer involved.
func TestBatchVirtualAgeFlush(t *testing.T) {
	_, fw1, fw2 := newBatchPair(t, BatchConfig{MaxFrames: 100, MaxDelay: time.Millisecond, FlushEvery: -1}, nil)
	sender, _ := fw1.Register("vm_go", "alice", "sender")
	recv, _ := fw2.Register("vm_go", "alice", "receiver")

	send(t, fw1, sender, "tacoma://h2/alice/receiver", "first")
	// Virtual time passes; the next send sees an aged queue and flushes.
	fw1.Clock().Advance(2 * time.Millisecond)
	send(t, fw1, sender, "tacoma://h2/alice/receiver", "second")
	if got := recvBody(t, recv, time.Second); got != "first" {
		t.Fatalf("got %q want first", got)
	}
	if got := recvBody(t, recv, time.Second); got != "second" {
		t.Fatalf("got %q want second", got)
	}
}

// TestBatchTimerFlush: with no further sends, the real-time safety
// timer pushes a queued frame out.
func TestBatchTimerFlush(t *testing.T) {
	_, fw1, fw2 := newBatchPair(t, BatchConfig{MaxFrames: 100, MaxDelay: time.Hour, FlushEvery: 5 * time.Millisecond}, nil)
	sender, _ := fw1.Register("vm_go", "alice", "sender")
	recv, _ := fw2.Register("vm_go", "alice", "receiver")

	send(t, fw1, sender, "tacoma://h2/alice/receiver", "solo")
	if got := recvBody(t, recv, 2*time.Second); got != "solo" {
		t.Fatalf("got %q want solo", got)
	}
	_ = fw2
}

// TestBatchTransferFlushesInline: agent transfers do not wait in the
// queue — Go/Spawn keep synchronous error semantics — and they carry
// any previously queued frames with them, in order.
func TestBatchTransferFlushesInline(t *testing.T) {
	_, fw1, fw2 := newBatchPair(t, BatchConfig{MaxFrames: 100, MaxDelay: time.Hour, FlushEvery: -1}, nil)
	sender, _ := fw1.Register("vm_go", "alice", "sender")
	recv, _ := fw2.Register("vm_go", "alice", "receiver")

	send(t, fw1, sender, "tacoma://h2/alice/receiver", "queued-msg")
	xfer := briefcase.New()
	xfer.SetString(briefcase.FolderSysTarget, "tacoma://h2/alice/receiver")
	xfer.SetString(FolderKind, KindTransfer)
	xfer.SetString("BODY", "the-transfer")
	if err := fw1.Send(sender.GlobalURI(), xfer); err != nil {
		t.Fatalf("transfer send: %v", err)
	}
	if got := recvBody(t, recv, time.Second); got != "queued-msg" {
		t.Fatalf("got %q want queued-msg (queued frame rides the inline flush first)", got)
	}
	if got := recvBody(t, recv, time.Second); got != "the-transfer" {
		t.Fatalf("got %q want the-transfer", got)
	}
}

// TestBatchPerFrameDedup: two byte-identical frames inside one
// container are mediated individually — the receiver's dedup window
// drops the second, proving the container is unpacked through the full
// inbound path rather than bulk-delivered.
func TestBatchPerFrameDedup(t *testing.T) {
	_, fw1, fw2 := newBatchPair(t, BatchConfig{MaxFrames: 100, MaxDelay: time.Hour, FlushEvery: -1},
		func(c *Config) { c.DedupWindow = 64 })
	sender, _ := fw1.Register("vm_go", "alice", "sender")
	recv, _ := fw2.Register("vm_go", "alice", "receiver")
	// Two sends of equal briefcases from the same registration produce
	// byte-identical frames.
	for i := 0; i < 2; i++ {
		send(t, fw1, sender, "tacoma://h2/alice/receiver", "same")
	}
	if err := fw1.FlushBatches(); err != nil {
		t.Fatal(err)
	}
	if got := recvBody(t, recv, time.Second); got != "same" {
		t.Fatalf("got %q", got)
	}
	deadline := time.Now().Add(time.Second)
	for fw2.ctr.dupDropped.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := fw2.ctr.dupDropped.Value(); got != 1 {
		t.Errorf("dup_dropped = %d, want 1", got)
	}
	if bc, ok := recv.TryRecv(); ok {
		t.Fatalf("duplicate frame delivered: %v", bc)
	}
}

// TestBatchHostileContainers: corrupt, truncated and nested containers
// are audited and dropped without panicking.
func TestBatchHostileContainers(t *testing.T) {
	_, _, fw2 := newBatchPair(t, BatchConfig{FlushEvery: -1}, nil)
	errsBefore := fw2.ctr.errors.Value()
	hostile := [][]byte{
		[]byte("TAXG"),                 // no version
		[]byte("TAXG\x7f\x01"),         // wrong version
		[]byte("TAXG\x01\x00"),         // zero count
		[]byte("TAXG\x01\x02\xff\xff"), // frame length varint runs off the end
		[]byte("TAXG\x01\x01\x10abc"),  // frame shorter than its length
		append([]byte("TAXG\x01\x01\x08"), []byte("TAXGxxxx")...), // nested container
	}
	for _, payload := range hostile {
		fw2.handleInbound("h1", payload)
	}
	if got := fw2.ctr.errors.Value() - errsBefore; got != int64(len(hostile)) {
		t.Errorf("errors counter advanced %d, want %d (every hostile container audited)", got, len(hostile))
	}
	if got := fw2.Stats().Delivered; got != 0 {
		t.Errorf("delivered = %d, want 0", got)
	}
}

// TestBatchGauges: the per-link queue gauges track enqueues and reset
// on flush.
func TestBatchGauges(t *testing.T) {
	_, fw1, _ := newBatchPair(t, BatchConfig{MaxFrames: 100, MaxDelay: time.Hour, FlushEvery: -1}, nil)
	sender, _ := fw1.Register("vm_go", "alice", "sender")
	send(t, fw1, sender, "tacoma://h2/alice/receiver", "one")
	send(t, fw1, sender, "tacoma://h2/alice/receiver", "two")
	snap := fw1.Telemetry().Registry().Snapshot()
	if q := snap.Gauges["fw.batch_queued{host=h1,link=h2}"]; q != 2 {
		t.Fatalf("fw.batch_queued = %d, want 2 (gauges: %v)", q, snap.Gauges)
	}
	if b := snap.Gauges["fw.batch_queued_bytes{host=h1,link=h2}"]; b <= 0 {
		t.Fatalf("fw.batch_queued_bytes = %d, want > 0", b)
	}
	if err := fw1.FlushBatches(); err != nil {
		t.Fatal(err)
	}
	snap = fw1.Telemetry().Registry().Snapshot()
	if q := snap.Gauges["fw.batch_queued{host=h1,link=h2}"]; q != 0 {
		t.Fatalf("after flush fw.batch_queued = %d, want 0", q)
	}
}

// TestBatchSenderPlainReceiver: a batching sender interoperates with a
// receiver that has batching off — containers are unpacked
// unconditionally on the inbound path.
func TestBatchSenderPlainReceiver(t *testing.T) {
	f := newFixture(t)
	f.config = func(c *Config) { c.Batch = &BatchConfig{MaxFrames: 2, FlushEvery: -1, MaxDelay: time.Hour} }
	f.addHost("h1")
	f.config = nil
	f.addHost("h2")
	fw1, fw2 := f.sites["h1"].fw, f.sites["h2"].fw
	sender, _ := fw1.Register("vm_go", "alice", "sender")
	recv, _ := fw2.Register("vm_go", "alice", "receiver")

	send(t, fw1, sender, "tacoma://h2/alice/receiver", "a")
	send(t, fw1, sender, "tacoma://h2/alice/receiver", "b") // threshold flush
	if got := recvBody(t, recv, time.Second); got != "a" {
		t.Fatalf("got %q want a", got)
	}
	if got := recvBody(t, recv, time.Second); got != "b" {
		t.Fatalf("got %q want b", got)
	}
	if fw2.batch != nil {
		t.Fatal("receiver unexpectedly has batching enabled")
	}
}

// TestBatchStressUnderFaultPlan hammers batched mediation with a
// deterministic fault plan (drops, duplicates, jitter, corruption —
// the chaos layer from the fault-injection PR) while concurrent
// senders share link queues and a third goroutine forces flushes. Run
// under -race this is the proof that the batcher's lock discipline
// holds: no deadlock, no lost accounting, dedup still bounds
// deliveries.
func TestBatchStressUnderFaultPlan(t *testing.T) {
	f, fw1, fw2 := newBatchPair(t, BatchConfig{MaxFrames: 8, FlushEvery: time.Millisecond},
		func(c *Config) { c.DedupWindow = 4096 })
	plan := faults.New(faults.Config{
		Seed:      42,
		Drop:      0.15,
		Duplicate: 0.10,
		Delay:     0.20,
		MaxDelay:  500 * time.Microsecond,
		Corrupt:   0.05,
	})
	plan.Bind(f.net)
	sink, _ := fw2.Register("vm_go", "alice", "sink")

	const senders = 8
	const perSender = 100
	var delivered atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, err := sink.Recv(300 * time.Millisecond); err != nil {
				return
			}
			delivered.Add(1)
		}
	}()

	var sendErrs atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	flusherDone := make(chan struct{})
	// A competing flusher exercises the FlushBatches path against
	// concurrent enqueues.
	go func() {
		defer close(flusherDone)
		for {
			select {
			case <-stop:
				return
			default:
				_ = fw1.FlushBatches()
				time.Sleep(500 * time.Microsecond)
			}
		}
	}()
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			reg, err := fw1.Register("vm_go", "alice", fmt.Sprintf("src%d", id))
			if err != nil {
				t.Errorf("register: %v", err)
				return
			}
			for j := 0; j < perSender; j++ {
				bc := briefcase.New()
				bc.SetString(briefcase.FolderSysTarget, "tacoma://h2/alice/sink")
				bc.SetString("BODY", fmt.Sprintf("s%d-%d", id, j))
				// A flush that loses its container to the fault plan
				// reports through Send; that is the expected lossy-network
				// outcome, not a test failure.
				if err := fw1.Send(reg.GlobalURI(), bc); err != nil {
					sendErrs.Add(1)
				}
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	<-flusherDone
	_ = fw1.FlushBatches()
	<-done

	total := int64(senders * perSender)
	got := delivered.Load()
	if got == 0 {
		t.Fatal("nothing delivered through the faulty link")
	}
	// Every distinct frame is unique (sender id + sequence in the body),
	// so with the dedup window covering the whole run duplicates cannot
	// inflate deliveries past the send count.
	if got > total {
		t.Errorf("delivered %d > sent %d despite dedup window", got, total)
	}
	if st := fw2.Stats().Delivered; st != got {
		t.Errorf("receiver Stats().Delivered = %d, drained %d", st, got)
	}
	t.Logf("sent=%d delivered=%d sendErrs=%d batchFlushes=%d batchFrames=%d batchRecv=%d dupDropped=%d",
		total, got, sendErrs.Load(), fw1.ctr.batchFlushes.Value(), fw1.ctr.batchFrames.Value(),
		fw2.ctr.batchRecv.Value(), fw2.ctr.dupDropped.Value())
}
