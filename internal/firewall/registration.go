package firewall

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"tax/internal/briefcase"
	"tax/internal/uri"
)

var (
	// ErrKilled is returned from Recv after the agent has been killed.
	ErrKilled = errors.New("firewall: agent killed")
	// ErrRecvTimeout is returned when Recv's deadline expires.
	ErrRecvTimeout = errors.New("firewall: receive timeout")
	// ErrMailboxFull is returned when an agent's mailbox overflows.
	ErrMailboxFull = errors.New("firewall: mailbox full")
)

// State is an agent's lifecycle state as tracked by the firewall.
type State int

// Agent lifecycle states.
const (
	// StateRunning is the normal state.
	StateRunning State = iota + 1
	// StateStopped suspends the agent: Recv blocks until resumed.
	StateStopped
	// StateKilled is terminal.
	StateKilled
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateStopped:
		return "stopped"
	case StateKilled:
		return "killed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// mailboxSize bounds the per-agent inbox; senders to a full mailbox get
// ErrMailboxFull rather than blocking the firewall.
const mailboxSize = 256

// Registration is an agent's handle on its local firewall: its identity,
// mailbox and lifecycle. Virtual machines obtain one per agent they host
// and hand it to the agent library.
type Registration struct {
	fw  *Firewall
	uri uri.URI // fully specified: principal, name, instance
	vm  string  // name of the owning VM's registration

	mailbox chan *briefcase.Briefcase

	mu           sync.Mutex
	state        State
	resumed      chan struct{} // closed on resume; replaced on stop
	killed       chan struct{}
	registeredAt time.Duration // firewall virtual clock
}

// URI returns the agent's fully specified local identity.
func (r *Registration) URI() uri.URI { return r.uri }

// GlobalURI returns the agent's identity qualified with the firewall's
// host and port, routable from other hosts.
func (r *Registration) GlobalURI() uri.URI {
	return r.uri.WithHost(r.fw.cfg.HostName, r.fw.cfg.Port)
}

// VM returns the name of the virtual machine hosting the agent.
func (r *Registration) VM() string { return r.vm }

// State returns the agent's current lifecycle state.
func (r *Registration) State() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// deliver enqueues a briefcase, failing when the mailbox is full or the
// agent is killed.
func (r *Registration) deliver(bc *briefcase.Briefcase) error {
	r.mu.Lock()
	if r.state == StateKilled {
		r.mu.Unlock()
		return ErrKilled
	}
	r.mu.Unlock()
	select {
	case r.mailbox <- bc:
		return nil
	default:
		return fmt.Errorf("%w: %s", ErrMailboxFull, r.uri)
	}
}

// Inject delivers a briefcase directly into the agent's mailbox without
// firewall mediation. It exists for the §3.3 optimization where a VM
// "may, for performance reasons, resolve internal communication without
// involving the firewall" for co-located agents. Callers are VMs only.
func (r *Registration) Inject(bc *briefcase.Briefcase) error {
	return r.deliver(bc)
}

// Recv blocks until a briefcase arrives, the timeout expires (zero means
// wait forever), or the agent is killed. While the agent is stopped,
// arrived briefcases are held and Recv does not return until resumed.
func (r *Registration) Recv(timeout time.Duration) (*briefcase.Briefcase, error) {
	return r.RecvCtx(context.Background(), timeout)
}

// RecvCtx is Recv with cancellation: the wait additionally ends when
// ctx is done, returning its error. The timeout still applies (zero
// means no deadline beyond the context's own).
func (r *Registration) RecvCtx(ctx context.Context, timeout time.Duration) (*briefcase.Briefcase, error) {
	var deadline <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadline = t.C
	}
	for {
		// Honor a stop before looking at the mailbox.
		r.mu.Lock()
		state, resumed, killed := r.state, r.resumed, r.killed
		r.mu.Unlock()
		switch state {
		case StateKilled:
			return nil, fmt.Errorf("%w: %s", ErrKilled, r.uri)
		case StateStopped:
			select {
			case <-resumed:
				continue
			case <-killed:
				return nil, fmt.Errorf("%w: %s", ErrKilled, r.uri)
			case <-deadline:
				return nil, fmt.Errorf("%w: %s", ErrRecvTimeout, r.uri)
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		select {
		case bc := <-r.mailbox:
			return bc, nil
		case <-killed:
			return nil, fmt.Errorf("%w: %s", ErrKilled, r.uri)
		case <-deadline:
			return nil, fmt.Errorf("%w: %s", ErrRecvTimeout, r.uri)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// TryRecv returns a waiting briefcase without blocking; ok is false when
// the mailbox is empty.
func (r *Registration) TryRecv() (*briefcase.Briefcase, bool) {
	select {
	case bc := <-r.mailbox:
		return bc, true
	default:
		return nil, false
	}
}

// Done returns a channel closed when the agent is killed; agents select
// on it to observe management kills while computing.
func (r *Registration) Done() <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.killed
}

// stop suspends the agent.
func (r *Registration) stop() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state == StateRunning {
		r.state = StateStopped
		r.resumed = make(chan struct{})
	}
}

// resume reverses stop.
func (r *Registration) resume() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state == StateStopped {
		r.state = StateRunning
		close(r.resumed)
	}
}

// kill transitions to the terminal state and wakes blocked receivers.
func (r *Registration) kill() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state != StateKilled {
		if r.state == StateStopped {
			close(r.resumed)
		}
		r.state = StateKilled
		close(r.killed)
	}
}
