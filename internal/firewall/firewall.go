// Package firewall implements the TAX firewall of §3.2: the per-host
// reference monitor and communication broker.
//
// The firewall is the central object on each machine. It knows which
// agents run locally on which virtual machines, mediates all local
// communication between agents and all communication to remote firewalls,
// enforces access rights as it does so, and performs the initial
// authentication of arriving agents (signed agent core or trusted
// sender). Messages to receivers that are not ready — or have not yet
// arrived at the site — are queued with a timeout. Agents with sufficient
// privileges manage the site (list, run time, kill, stop, resume) by
// addressing messages directly to the firewall itself.
package firewall

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tax/internal/briefcase"
	"tax/internal/cabinet"
	"tax/internal/identity"
	"tax/internal/policy"
	"tax/internal/simnet"
	"tax/internal/telemetry"
	"tax/internal/uri"
	"tax/internal/vclock"
)

var (
	// ErrNoTarget is returned when a briefcase has no _TARGET folder.
	ErrNoTarget = errors.New("firewall: briefcase has no target")
	// ErrClosed is returned after the firewall has shut down.
	ErrClosed = errors.New("firewall: closed")
	// ErrDenied is returned when policy forbids an operation.
	ErrDenied = errors.New("firewall: permission denied")
	// ErrNoAgent is returned when a management operation names an agent
	// that is not registered.
	ErrNoAgent = errors.New("firewall: no such agent")
	// ErrSenderGone is returned for a Send on behalf of a registration
	// the firewall no longer knows — typically a goroutine outliving its
	// host's crash. The machine's process table died with the machine,
	// and so did its processes' right to speak.
	ErrSenderGone = errors.New("firewall: sender not registered")
)

// FirewallName is the registration name under which the firewall itself
// receives management briefcases ("addressing messages directly to the
// firewall").
const FirewallName = "firewall"

// DefaultQueueTimeout is how long an undeliverable message waits for its
// receiver to register before it is dropped.
const DefaultQueueTimeout = 10 * time.Second

// Config parameterizes a firewall.
type Config struct {
	// HostName is this host's name in agent URIs.
	HostName string
	// Port is this firewall's port in agent URIs (0 means uri.DefaultPort).
	Port int
	// Node is the transport endpoint (simulated host or TCP node).
	Node simnet.Node
	// Clock is the host clock; defaults to the Node's clock for simnet
	// hosts, else a fresh virtual clock.
	Clock vclock.Clock
	// Trust is the host trust store. Required.
	Trust *identity.TrustStore
	// SystemPrincipal is the name of the local system principal. Agents
	// registered by the system (VMs, service agents) carry it.
	SystemPrincipal string
	// QueueTimeout bounds how long undeliverable messages wait; zero
	// means DefaultQueueTimeout.
	QueueTimeout time.Duration
	// RequireAuth, when set, makes the firewall reject inbound remote
	// agent transfers whose core is not signed by a known principal.
	RequireAuth bool
	// LocalHopCost is the virtual time charged per firewall-mediated
	// local delivery: the IPC cost of crossing the firewall between two
	// VM processes on one machine. Zero charges nothing.
	LocalHopCost time.Duration
	// ChannelSigner, when set, signs every outbound frame with this
	// host's principal, implementing §3.2's other authentication leg:
	// "the presence of an authenticated and trusted sender". Receivers
	// with ChannelAuth set verify the frame signature against the trust
	// store before routing.
	ChannelSigner *identity.Principal
	// ChannelAuth, when set, rejects inbound frames that are not signed
	// by a trusted (or better) principal.
	ChannelAuth bool
	// ForwardRetry is the host-default retry policy for remote forwards,
	// used when a briefcase carries no _RETRY folder of its own. The
	// zero value sends exactly once, the pre-retry behavior.
	ForwardRetry RetryPolicy
	// DedupWindow, when positive, remembers the hashes of the last N
	// inbound frames and silently drops exact duplicates. Networks that
	// duplicate messages (fault injection, at-least-once transports)
	// need it so a redelivered agent transfer does not activate twice;
	// it is off by default because legitimate traffic may repeat
	// byte-identically.
	DedupWindow int
	// Durable, when set, is the host's file cabinet: parked messages are
	// journaled through it as cabinet transactions (and removed when
	// delivered or expired), and dedup observations are appended
	// unsynced. After a crash, CrashWipe discards the in-memory tables
	// and RecoverDurable replays the cabinet back into them.
	Durable *cabinet.Store
	// Batch, when non-nil, enables batched mediation: remote forwards
	// are coalesced per destination link into container frames (see
	// batch.go). Every batched frame is still individually mediated and
	// policy-checked on both sides; only the transport message count
	// changes. Off (nil) by default because enqueued frames report
	// flush failures through the audit log instead of the Send call
	// (agent transfers still flush inline and keep synchronous errors).
	Batch *BatchConfig
	// Relay, when set, forwards inbound frames whose target is another
	// host toward their next hop instead of dropping them. The next hop
	// comes from Resolve (a routed topology maps a distant host to the
	// neighbor that is one step closer); the frame's wire bytes are
	// forwarded verbatim after header-only re-mediation (relay.go), so a
	// multi-hop itinerary encodes once at the origin and decodes once at
	// the final receiver. Off by default: a non-relay firewall keeps the
	// original drop-third-party-traffic behavior.
	Relay bool
	// Resolve maps an agent-URI host and port to a transport address.
	// Nil means the host name is the transport address (simnet). Relay
	// hosts use it as their next-hop table.
	Resolve func(host string, port int) (string, error)
	// Telemetry receives metrics, trace spans and audit events. Nil makes
	// the firewall create a private counters-only instance (the Stats
	// compatibility view always works); pass a telemetry.New instance with
	// spans/events enabled for full observability.
	Telemetry *telemetry.Telemetry
	// Explain, when set, serves the OpExplain management operation: given
	// a trace id ("latest" for the most recent), it returns the rendered
	// system-wide timeline, one line per row. The core layer wires it to
	// the tower collector; the firewall itself has only a per-host view
	// and cannot answer.
	Explain func(traceID string) []string
	// Policy, when set, is the declarative mediation layer: every
	// non-system mediation is evaluated against its active ruleset
	// (allow/deny/park, first match wins, default deny) and charged
	// against the sending principal's quota buckets. The system
	// principal is exempt — it is the trusted computing base the engine
	// itself depends on (service replies, error envelopes, management
	// replies). Nil preserves the legacy trust-check-only mediation
	// exactly. Hot reload goes through ReloadPolicy (or the OpPolicyLoad
	// management operation); the engine swaps rulesets atomically, so no
	// mediation ever sees a partially-applied ruleset.
	Policy *policy.Engine
}

// Stats is the legacy counter view, retained as a compatibility facade
// over the telemetry registry (the single metrics source of truth).
type Stats struct {
	Delivered    int64 // briefcases handed to a local mailbox
	Forwarded    int64 // briefcases sent to a remote firewall
	Queued       int64 // briefcases parked waiting for their receiver
	Expired      int64 // parked briefcases dropped on timeout
	AuthFailures int64 // inbound transfers rejected by authentication
	MgmtOps      int64 // management operations served
	Errors       int64 // routing errors (bad target, no principal, ...)
}

// AgentInfo is one row of the firewall's agent listing.
type AgentInfo struct {
	URI     uri.URI
	VM      string
	State   State
	Runtime time.Duration // host-clock time since registration
}

type pendingMsg struct {
	target          uri.URI
	senderPrincipal string
	bc              *briefcase.Briefcase
	timer           *time.Timer
	shard           int    // park-table stripe index (by target name)
	key             string // cabinet journal key ("" when not journaled)
	policyHeld      bool   // parked by a policy park verdict: released
	// only by a reload (or expiry), never by a matching registration
}

// fwCounters are the firewall's pre-resolved registry counters: resolved
// once at New so the hot path pays one atomic add per update.
type fwCounters struct {
	delivered       *telemetry.Counter
	forwarded       *telemetry.Counter
	queued          *telemetry.Counter
	expired         *telemetry.Counter
	authFailures    *telemetry.Counter
	mgmtOps         *telemetry.Counter
	errors          *telemetry.Counter
	retries         *telemetry.Counter
	dupDropped      *telemetry.Counter
	batchFlushes    *telemetry.Counter
	batchFrames     *telemetry.Counter
	batchRecv       *telemetry.Counter
	relayed         *telemetry.Counter
	relayContainers *telemetry.Counter
	policyAllow     *telemetry.Counter
	policyDeny      *telemetry.Counter
	policyPark      *telemetry.Counter
	policyQuota     *telemetry.Counter
}

// Firewall is the per-host broker. Create with New, shut down with Close.
type Firewall struct {
	cfg   Config
	clock vclock.Clock

	tel *telemetry.Telemetry
	ctr fwCounters
	// histSend/histInbound time the mediation hot paths in wall-clock
	// terms; non-nil only with detailed telemetry, so the disabled path
	// never reads the wall clock.
	histSend    *telemetry.Histogram
	histInbound *telemetry.Histogram

	// gaugePending mirrors the park table's total depth into the
	// registry so parked messages are observable without polling
	// Pending(); per-stripe depths are the fw.pending_shard gauges.
	gaugePending *telemetry.Gauge

	// park is the lock-striped store of messages awaiting a receiver;
	// it has its own per-stripe locks so mediation for unrelated
	// receivers does not serialize on mu.
	park *parkTable

	// dedup suppresses duplicate inbound frames; it carries its own
	// lock (nil unless cfg.DedupWindow > 0).
	dedup *dedupWindow

	// batch holds the per-link outbound queues of batched mediation
	// (nil unless cfg.Batch is set).
	batch *batcher

	// dirMu guards dir, the directory plane's management dump hook
	// (SetDir). Bound after New because the plane server needs the
	// firewall first — the same late-binding shape as Config.Explain.
	dirMu sync.RWMutex
	dir   func(verb string) ([]string, error)

	// mu guards the registration map. It is a RWMutex so concurrent
	// mediations (lookups) proceed in parallel; only registration
	// changes take the write side.
	mu           sync.RWMutex
	regs         map[string][]*Registration // keyed by agent name
	nextInstance uint64
	closed       bool

	// parkKeySeq allocates cabinet journal keys for parked messages
	// (durable.go); it only advances, so keys never collide across a
	// crash/recover cycle.
	parkKeyMu  sync.Mutex
	parkKeySeq uint64
}

// New creates a firewall bound to cfg.Node and installs its inbound
// handler.
func New(cfg Config) (*Firewall, error) {
	if cfg.Node == nil {
		return nil, errors.New("firewall: config needs a Node")
	}
	if cfg.Trust == nil {
		return nil, errors.New("firewall: config needs a TrustStore")
	}
	if cfg.HostName == "" {
		cfg.HostName = cfg.Node.Addr()
	}
	if cfg.QueueTimeout == 0 {
		cfg.QueueTimeout = DefaultQueueTimeout
	}
	if cfg.Resolve == nil {
		cfg.Resolve = func(host string, _ int) (string, error) { return host, nil }
	}
	clock := cfg.Clock
	if clock == nil {
		if h, ok := cfg.Node.(*simnet.Host); ok {
			clock = h.Clock()
		} else {
			clock = vclock.NewVirtual()
		}
	}
	tel := cfg.Telemetry
	if tel == nil {
		// Counters-only instance so Stats() and the metrics management op
		// keep working; spans and events stay disabled (near-zero cost).
		tel = telemetry.New(telemetry.Options{Host: cfg.HostName})
	}
	reg := tel.Registry()
	fw := &Firewall{
		cfg:   cfg,
		clock: clock,
		tel:   tel,
		ctr: fwCounters{
			delivered:       reg.Counter("fw.delivered", "host", cfg.HostName),
			forwarded:       reg.Counter("fw.forwarded", "host", cfg.HostName),
			queued:          reg.Counter("fw.queued", "host", cfg.HostName),
			expired:         reg.Counter("fw.expired", "host", cfg.HostName),
			authFailures:    reg.Counter("fw.auth_failures", "host", cfg.HostName),
			mgmtOps:         reg.Counter("fw.mgmt_ops", "host", cfg.HostName),
			errors:          reg.Counter("fw.errors", "host", cfg.HostName),
			retries:         reg.Counter("fw.retries", "host", cfg.HostName),
			dupDropped:      reg.Counter("fw.dup_dropped", "host", cfg.HostName),
			batchFlushes:    reg.Counter("fw.batch_flushes", "host", cfg.HostName),
			batchFrames:     reg.Counter("fw.batch_frames", "host", cfg.HostName),
			batchRecv:       reg.Counter("fw.batch_recv", "host", cfg.HostName),
			relayed:         reg.Counter("fw.relayed", "host", cfg.HostName),
			relayContainers: reg.Counter("fw.relay_containers", "host", cfg.HostName),
			policyAllow:     reg.Counter("fw.policy_allow", "host", cfg.HostName),
			policyDeny:      reg.Counter("fw.policy_deny", "host", cfg.HostName),
			policyPark:      reg.Counter("fw.policy_park", "host", cfg.HostName),
			policyQuota:     reg.Counter("fw.policy_quota", "host", cfg.HostName),
		},
		park:         newParkTable(reg, cfg.HostName),
		regs:         make(map[string][]*Registration),
		nextInstance: 0x1000,
	}
	fw.gaugePending = fw.park.total
	if cfg.DedupWindow > 0 {
		fw.dedup = newDedupWindow(cfg.DedupWindow)
		if cfg.Durable != nil {
			fw.dedup.onInsert = fw.journalDedup
		}
	}
	if cfg.Batch != nil {
		fw.batch = newBatcher(fw, *cfg.Batch)
	}
	if tel.Detailed() {
		fw.histSend = reg.Histogram("fw.send", "host", cfg.HostName)
		fw.histInbound = reg.Histogram("fw.inbound", "host", cfg.HostName)
	}
	cfg.Node.SetHandler(fw.handleInbound)
	return fw, nil
}

// Telemetry returns the firewall's telemetry instance: the Stats-superseding
// observability API (metrics registry, trace spans, audit event log).
func (fw *Firewall) Telemetry() *telemetry.Telemetry { return fw.tel }

// eventsOn reports whether audit events are collected. Hot paths check
// it before building an event's cause string, so the disabled case pays
// no allocation for string concatenation that would be thrown away.
func (fw *Firewall) eventsOn() bool { return fw.tel.Events() != nil }

// event appends one audit-log entry (no-op when events are disabled).
func (fw *Firewall) event(typ, principal, target, cause string) {
	ev := fw.tel.Events()
	if ev == nil {
		return
	}
	ev.Append(telemetry.Event{
		Time: fw.clock.Now(), Type: typ,
		Principal: principal, Target: target, Cause: cause,
	})
}

// eventBC is event with the briefcase's trace context stamped on the audit
// record, correlating the mediation verdict with the itinerary that
// provoked it. Call it from every verdict site where the briefcase is in
// hand; fall back to event only where no briefcase exists (undecodable
// frames, link-level batch failures).
func (fw *Firewall) eventBC(bc *briefcase.Briefcase, typ, principal, target, cause string) {
	trace, span := traceCtx(bc)
	fw.eventTS(trace, span, typ, principal, target, cause)
}

// traceCtx reads the briefcase's trace stamp. Audit records written after a
// successful deliver must read the stamp *before* handing the briefcase
// over: once it is in the receiver's mailbox the receiving goroutine owns
// it and may mutate folders concurrently.
func traceCtx(bc *briefcase.Briefcase) (trace, span string) {
	trace, _ = bc.GetString(briefcase.FolderSysTrace)
	span, _ = bc.GetString(briefcase.FolderSysSpan)
	return trace, span
}

// eventTS is eventBC with an already-extracted trace stamp.
func (fw *Firewall) eventTS(trace, span, typ, principal, target, cause string) {
	ev := fw.tel.Events()
	if ev == nil {
		return
	}
	ev.Append(telemetry.Event{
		Time: fw.clock.Now(), Type: typ,
		Principal: principal, Target: target, Cause: cause,
		Trace: trace, Span: span,
	})
}

// span opens a mediation span when span collection is on and the briefcase
// carries a trace context; otherwise it returns the nil no-op span.
func (fw *Firewall) span(bc *briefcase.Briefcase, name string) *telemetry.Span {
	spans := fw.tel.Spans()
	if spans == nil {
		return nil
	}
	trace, ok := bc.GetString(briefcase.FolderSysTrace)
	if !ok {
		return nil
	}
	parent, _ := bc.GetString(briefcase.FolderSysSpan)
	return spans.Start(fw.clock, fw.cfg.HostName, trace, parent, name)
}

// HostName returns the host name this firewall serves.
func (fw *Firewall) HostName() string { return fw.cfg.HostName }

// Clock returns the host clock.
func (fw *Firewall) Clock() vclock.Clock { return fw.clock }

// SystemPrincipal returns the local system principal's name.
func (fw *Firewall) SystemPrincipal() string { return fw.cfg.SystemPrincipal }

// Stats returns a snapshot of the counters, read from the telemetry
// registry (the counters' single home since the registry superseded the
// ad-hoc struct).
func (fw *Firewall) Stats() Stats {
	return Stats{
		Delivered:    fw.ctr.delivered.Value(),
		Forwarded:    fw.ctr.forwarded.Value(),
		Queued:       fw.ctr.queued.Value(),
		Expired:      fw.ctr.expired.Value(),
		AuthFailures: fw.ctr.authFailures.Value(),
		MgmtOps:      fw.ctr.mgmtOps.Value(),
		Errors:       fw.ctr.errors.Value(),
	}
}

// Close shuts the firewall down: kills every registration and stops
// pending-message timers. The transport node is not closed (it may be
// shared); callers close it separately.
func (fw *Firewall) Close() error {
	fw.mu.Lock()
	if fw.closed {
		fw.mu.Unlock()
		return nil
	}
	fw.closed = true
	var regs []*Registration
	for _, list := range fw.regs {
		regs = append(regs, list...)
	}
	fw.mu.Unlock()
	if fw.batch != nil {
		// Push out queued frames before the registrations die; a flush
		// failure at shutdown is already audited by the batcher.
		_ = fw.batch.flushAll()
	}
	pend := fw.park.drain()
	for _, r := range regs {
		r.kill()
	}
	for _, p := range pend {
		p.timer.Stop()
		fw.event(telemetry.EventDrop, p.senderPrincipal, p.target.String(), "firewall closed")
	}
	return nil
}

// Register adds an agent running inside the named VM under the given
// principal and name, allocating a fresh instance number. Parked messages
// that match the new agent are delivered immediately.
func (fw *Firewall) Register(vmName, principal, name string) (*Registration, error) {
	if name == "" {
		return nil, errors.New("firewall: empty agent name")
	}
	fw.mu.Lock()
	if fw.closed {
		fw.mu.Unlock()
		return nil, ErrClosed
	}
	inst := fw.nextInstance
	fw.nextInstance++
	r := &Registration{
		fw:           fw,
		uri:          uri.URI{Principal: principal, Name: name, Instance: inst, HasInstance: true},
		vm:           vmName,
		mailbox:      make(chan *briefcase.Briefcase, mailboxSize),
		state:        StateRunning,
		killed:       make(chan struct{}),
		registeredAt: fw.clock.Now(),
	}
	fw.regs[name] = append(fw.regs[name], r)
	fw.mu.Unlock()

	// Flush parked messages after releasing the registration lock: the
	// park table arbitrates with its own stripe locks, so a message is
	// taken by exactly one of a concurrent flush and expiry.
	flush := fw.park.takeMatching(name, func(p *pendingMsg) bool {
		// Policy-held messages wait for a reload verdict, not a receiver:
		// a matching registration must not leak them past the park rule.
		return !p.policyHeld && r.uri.Matches(p.target) &&
			(p.target.Principal != "" || r.uri.Principal == fw.cfg.SystemPrincipal ||
				r.uri.Principal == p.senderPrincipal)
	})
	for _, p := range flush {
		p.timer.Stop()
		fw.unjournalPark(p)
		trace, span := traceCtx(p.bc)
		if err := r.deliver(p.bc); err == nil {
			fw.ctr.delivered.Inc()
			fw.eventTS(trace, span, telemetry.EventAllow, r.uri.Principal, r.uri.String(), "unparked on registration")
		} else {
			fw.ctr.errors.Inc()
			fw.eventTS(trace, span, telemetry.EventDrop, r.uri.Principal, r.uri.String(), "unpark failed: "+err.Error())
		}
	}
	return r, nil
}

// Unregister removes an agent. It is idempotent and also kills the
// registration so blocked receivers wake up.
func (fw *Firewall) Unregister(r *Registration) {
	fw.mu.Lock()
	list := fw.regs[r.uri.Name]
	for i, c := range list {
		if c == r {
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(list) == 0 {
		delete(fw.regs, r.uri.Name)
	} else {
		fw.regs[r.uri.Name] = list
	}
	fw.mu.Unlock()
	r.kill()
}

// Lookup returns the registrations matching the query URI under the
// paper's matching rules, given the querying principal.
func (fw *Firewall) Lookup(q uri.URI, senderPrincipal string) []*Registration {
	fw.mu.RLock()
	defer fw.mu.RUnlock()
	return fw.lookupLocked(q, senderPrincipal)
}

func (fw *Firewall) lookupLocked(q uri.URI, senderPrincipal string) []*Registration {
	var out []*Registration
	consider := func(r *Registration) {
		if !r.uri.Matches(q) {
			return
		}
		// Empty-principal queries only reach the local system principal
		// or the sender's own principal (§3.2).
		if q.Principal == "" && r.uri.Principal != fw.cfg.SystemPrincipal &&
			r.uri.Principal != senderPrincipal {
			return
		}
		out = append(out, r)
	}
	if q.Name != "" {
		for _, r := range fw.regs[q.Name] {
			consider(r)
		}
		return out
	}
	// Name-less query: scan deterministically by name.
	names := make([]string, 0, len(fw.regs))
	for n := range fw.regs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for _, r := range fw.regs[n] {
			consider(r)
		}
	}
	return out
}

// isLocal reports whether a target URI addresses this host.
func (fw *Firewall) isLocal(u uri.URI) bool {
	if u.Host == "" {
		return true
	}
	if u.Host != fw.cfg.HostName {
		return false
	}
	localPort := fw.cfg.Port
	if localPort == 0 {
		localPort = uri.DefaultPort
	}
	return u.EffectivePort() == localPort
}

// Send routes a briefcase on behalf of the named sender. The _SENDER
// folder is overwritten with the authenticated sender URI, so receivers
// can trust it. The target is read from _TARGET.
func (fw *Firewall) Send(sender uri.URI, bc *briefcase.Briefcase) error {
	return fw.SendCtx(context.Background(), sender, bc)
}

// SendCtx is Send with cancellation: a context already done returns
// its error before any mediation, and a remote forward's retry loop
// checks the context between attempts — cancellation stops the
// backoff, which on virtual clocks would otherwise advance simulated
// time with no one waiting for the result.
func (fw *Firewall) SendCtx(ctx context.Context, sender uri.URI, bc *briefcase.Briefcase) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	fw.mu.RLock()
	closed := fw.closed
	fw.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	var t0 time.Time
	if fw.histSend != nil {
		t0 = time.Now()
	}
	// An instanced sender names a specific registration; the reference
	// monitor only routes for registrations it still holds. This is what
	// stops a goroutine that survived its host's crash (the simulated
	// machine died, the Go scheduler did not) from speaking through the
	// rebooted firewall with its pre-crash identity.
	if sender.HasInstance {
		fw.mu.RLock()
		alive := false
		for _, r := range fw.regs[sender.Name] {
			if r.uri.Instance == sender.Instance {
				alive = true
				break
			}
		}
		fw.mu.RUnlock()
		if !alive {
			fw.ctr.errors.Inc()
			fw.eventBC(bc, telemetry.EventDeny, sender.Principal, sender.String(), "send from dead registration")
			return fmt.Errorf("%w: %s", ErrSenderGone, sender)
		}
	}
	targetStr, ok := bc.GetString(briefcase.FolderSysTarget)
	if !ok {
		fw.ctr.errors.Inc()
		fw.eventBC(bc, telemetry.EventError, sender.Principal, "", "briefcase has no target")
		return ErrNoTarget
	}
	target, err := uri.Parse(targetStr)
	if err != nil {
		fw.ctr.errors.Inc()
		fw.eventBC(bc, telemetry.EventError, sender.Principal, targetStr, "bad target: "+err.Error())
		return fmt.Errorf("firewall: bad target: %w", err)
	}
	bc.SetString(briefcase.FolderSysSender, sender.String())

	sp := fw.span(bc, "fw.send")
	sp.SetAttr("target", targetStr)

	if fw.isLocal(target) {
		err := fw.routeLocal(sender.Principal, target, bc)
		sp.SetErr(err)
		sp.End()
		if fw.histSend != nil {
			fw.histSend.Observe(time.Since(t0))
		}
		return err
	}
	// Policy gate for remote forwards: the origin host mediates before
	// anything is encoded or queued (the receiving host re-mediates on
	// arrival under its own ruleset; relays stay header-only).
	ruleID := ""
	if eng := fw.cfg.Policy; eng != nil && sender.Principal != fw.cfg.SystemPrincipal {
		v := eng.Eval(sender.Principal, policyOpFor(target, bc), target)
		switch v.Effect {
		case policy.Deny:
			fw.ctr.policyDeny.Inc()
			fw.eventBC(bc, telemetry.EventDeny, sender.Principal, targetStr, "policy rule="+v.RuleID)
			err := fmt.Errorf("%w (rule %s)", ErrPolicyDenied, v.RuleID)
			sp.SetErr(err)
			sp.End()
			return err
		case policy.Park:
			err := fw.parkPolicy(sender.Principal, target, bc, v.RuleID)
			if err == nil {
				sp.SetAttr("outcome", "parked")
			}
			sp.SetErr(err)
			sp.End()
			return err
		}
		fw.ctr.policyAllow.Inc()
		ruleID = v.RuleID
	}
	err = fw.forwardRemote(ctx, sender.Principal, target, targetStr, bc, sp, ruleID)
	sp.SetErr(err)
	sp.End()
	if fw.histSend != nil {
		fw.histSend.Observe(time.Since(t0))
	}
	return err
}

// forwardRemote encodes a briefcase and pushes it toward a remote host:
// resolve, seal, charge the sender's byte quota, then either the batch
// queue or the retrying transport send. It is the tail of SendCtx and
// the re-dispatch path for policy-held parks; it neither re-stamps
// _SENDER nor re-checks sender liveness, so a reload can re-dispatch a
// held message whose sender has since unregistered. ruleID, when
// non-empty, is the allow verdict carried into the forward audit event.
func (fw *Firewall) forwardRemote(ctx context.Context, senderPrincipal string, target uri.URI, targetStr string, bc *briefcase.Briefcase, sp *telemetry.Span, ruleID string) error {
	addr, err := fw.cfg.Resolve(target.Host, target.EffectivePort())
	if err != nil {
		fw.ctr.errors.Inc()
		fw.eventBC(bc, telemetry.EventError, senderPrincipal, targetStr, "resolve: "+err.Error())
		return fmt.Errorf("firewall: resolve %s: %w", target.Host, err)
	}
	// The frame is encoded into a pooled buffer: both transports (and
	// the batch queue) copy the payload synchronously inside their call,
	// so the buffer is recycled as soon as the frame is handed off. A
	// sealed frame copies the payload one level down instead, and the
	// pooled buffer is released right after sealing.
	payload, release := bc.EncodePooled()
	frame := sealFrame(fw.cfg.ChannelSigner, payload)
	if fw.cfg.ChannelSigner != nil {
		release()
		release = func() {}
	}
	// Byte quotas charge the encoded frame — the bytes that actually
	// cross the wire — at the origin host. Local deliveries never
	// encode, so they are message-metered only.
	if eng := fw.cfg.Policy; eng != nil && senderPrincipal != fw.cfg.SystemPrincipal {
		if qid, ok := eng.Charge(senderPrincipal, int64(len(frame))); !ok {
			release()
			fw.ctr.policyQuota.Inc()
			fw.eventBC(bc, telemetry.EventQuota, senderPrincipal, targetStr, "quota rule="+qid)
			return fmt.Errorf("%w (rule %s)", ErrQuotaExceeded, qid)
		}
	}
	// The network transfer gets its own child span so per-hop migration
	// cost splits into mediation versus wire time. Retries stay inside
	// it: the wire time of a lossy hop includes its backoffs.
	var tsp *telemetry.Span
	if sp != nil {
		trace, _ := bc.GetString(briefcase.FolderSysTrace)
		tsp = fw.tel.Spans().Start(fw.clock, fw.cfg.HostName, trace, sp.ID(), "net.transfer")
		tsp.SetAttr("to", addr)
		tsp.SetAttr("bytes", strconv.Itoa(len(frame)))
	}
	if fw.batch != nil {
		// Batched mediation: the frame joins its link's queue instead of
		// being a transport message of its own. Agent transfers flush
		// inline so Go/Spawn keep synchronous error reporting.
		err = fw.batch.enqueue(addr, frame, Kind(bc) == KindTransfer)
		release()
		if tsp != nil {
			tsp.SetAttr("batched", "true")
		}
		tsp.SetErr(err)
		tsp.End()
		if err != nil {
			fw.ctr.errors.Inc()
			fw.eventBC(bc, telemetry.EventError, senderPrincipal, targetStr, "forward: "+err.Error())
			return err
		}
		fw.ctr.forwarded.Inc()
		if fw.eventsOn() {
			cause := "batched to " + addr
			if ruleID != "" {
				cause += " rule=" + ruleID
			}
			fw.eventBC(bc, telemetry.EventForward, senderPrincipal, targetStr, cause)
		}
		return nil
	}
	rp := fw.forwardPolicy(bc)
	attempts := rp.Attempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := rp.Backoff
	start := fw.clock.Now()
	// Traced transports learn which itinerary this transfer belongs to, so
	// fault injections on the wire are journaled under the right trace. The
	// context rides out of band: payload bytes (and thus simulated transfer
	// cost) are identical either way.
	tracedNode, nodeTraced := fw.cfg.Node.(simnet.TracedNode)
	traceID, _ := bc.GetString(briefcase.FolderSysTrace)
	var attempt int
	for attempt = 1; ; attempt++ {
		if nodeTraced && traceID != "" {
			err = tracedNode.SendTraced(addr, frame, traceID, tsp.ID())
		} else {
			err = fw.cfg.Node.Send(addr, frame)
		}
		if err == nil || attempt >= attempts {
			break
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			err = ctxErr
			break
		}
		if rp.Deadline > 0 && fw.clock.Now()-start+backoff > rp.Deadline {
			break
		}
		fw.ctr.retries.Inc()
		fw.eventBC(bc, telemetry.EventRetry, senderPrincipal, targetStr,
			fmt.Sprintf("attempt %d/%d failed (%v); backing off %v", attempt, attempts, err, backoff))
		// The host clock pays the backoff: virtual clocks advance without
		// sleeping, real clocks really wait.
		fw.clock.Advance(backoff)
		if backoff > 0 {
			backoff *= 2
		}
	}
	release()
	if tsp != nil && attempt > 1 {
		tsp.SetAttr("attempts", strconv.Itoa(attempt))
	}
	tsp.SetErr(err)
	tsp.End()
	if err != nil {
		fw.ctr.errors.Inc()
		fw.eventBC(bc, telemetry.EventError, senderPrincipal, targetStr, "forward: "+err.Error())
		if rp.Enabled() {
			fw.eventBC(bc, telemetry.EventGiveUp, senderPrincipal, targetStr,
				fmt.Sprintf("forward abandoned after %d attempts: %v", attempt, err))
		}
		return fmt.Errorf("firewall: forward to %s: %w", addr, err)
	}
	fw.ctr.forwarded.Inc()
	if fw.eventsOn() {
		cause := "to " + addr
		if ruleID != "" {
			cause += " rule=" + ruleID
		}
		fw.eventBC(bc, telemetry.EventForward, senderPrincipal, targetStr, cause)
	}
	return nil
}

// handleInbound processes a frame arriving from a remote firewall. Every
// path that discards the briefcase emits an audit event: a mediating
// reference monitor must not lose messages without a trace.
func (fw *Firewall) handleInbound(from string, payload []byte) {
	// A batch container is transport coalescing, not a message: unpack
	// it and mediate every inner frame individually (dedup, channel
	// auth, transfer auth, routing policy — the same single reference
	// monitor per frame). Receivers unpack regardless of their own
	// Batch setting, so a batching sender interoperates with a
	// non-batching receiver.
	if isBatchContainer(payload) {
		// A relay host first tries to forward the container verbatim:
		// when every inner frame shares a non-local next hop, the
		// container crosses this host as one transport message without
		// being unpacked (relay.go).
		if fw.cfg.Relay && fw.relayContainer(from, payload) {
			return
		}
		fw.unbatch(from, payload)
		return
	}
	var t0 time.Time
	if fw.histInbound != nil {
		t0 = time.Now()
	}
	if fw.dedup != nil {
		if fw.dedup.observe(payload) {
			fw.ctr.dupDropped.Inc()
			fw.event(telemetry.EventDrop, "", "", "duplicate frame from "+from)
			return
		}
	}
	// The relay fast path: a frame for another host is forwarded off its
	// header peeks alone, never decoded here. Frames the peeks cannot
	// read fall through to the decoding path below, whose audit events
	// name the defect.
	if fw.cfg.Relay && fw.relayFrame(from, payload) {
		if fw.histInbound != nil {
			fw.histInbound.Observe(time.Since(t0))
		}
		return
	}
	inner, err := openFrame(fw.cfg.Trust, fw.cfg.ChannelAuth, payload)
	if err != nil {
		if errors.Is(err, ErrChannelAuth) {
			fw.ctr.authFailures.Inc()
			fw.event(telemetry.EventDeny, "", "", "channel auth from "+from+": "+err.Error())
		} else {
			fw.ctr.errors.Inc()
			fw.event(telemetry.EventDrop, "", "", "bad frame from "+from+": "+err.Error())
		}
		return
	}
	bc, err := briefcase.Decode(inner)
	if err != nil {
		fw.ctr.errors.Inc()
		fw.event(telemetry.EventDrop, "", "", "undecodable briefcase from "+from+": "+err.Error())
		return
	}
	senderStr, _ := bc.GetString(briefcase.FolderSysSender)
	sender, err := uri.Parse(senderStr)
	if err != nil {
		sender = uri.URI{Host: from}
	}

	sp := fw.span(bc, "fw.inbound")
	sp.SetAttr("from", from)

	// First-level authentication (§3.2): inbound agent transfers must
	// carry a core signed by a principal this host knows.
	if Kind(bc) == KindTransfer && fw.cfg.RequireAuth {
		if _, err := VerifyCore(bc, fw.cfg.Trust, identity.Untrusted); err != nil {
			fw.ctr.authFailures.Inc()
			fw.eventBC(bc, telemetry.EventDeny, sender.Principal, "", "transfer auth: "+err.Error())
			sp.SetErr(err)
			sp.End()
			fw.replyError(bc, sender, fmt.Sprintf("transfer rejected: %v", err), err)
			return
		}
	}

	targetStr, ok := bc.GetString(briefcase.FolderSysTarget)
	if !ok {
		fw.ctr.errors.Inc()
		fw.eventBC(bc, telemetry.EventDrop, sender.Principal, "", "inbound briefcase has no target")
		sp.SetAttr("outcome", "dropped")
		sp.End()
		return
	}
	target, err := uri.Parse(targetStr)
	if err != nil || !fw.isLocal(target) {
		// This host is not the target and Relay is off (or the target is
		// unparseable): a non-relay firewall does not forward third-party
		// traffic.
		fw.ctr.errors.Inc()
		fw.eventBC(bc, telemetry.EventDrop, sender.Principal, targetStr, "target not on this host")
		sp.SetAttr("outcome", "dropped")
		sp.End()
		return
	}
	if err := fw.routeLocal(sender.Principal, target, bc); err != nil {
		fw.ctr.errors.Inc()
		sp.SetErr(err)
		// A policy or quota rejection of cross-host traffic travels back
		// typed: the sender gets a KindError envelope whose _ERRCODE
		// reconstructs ErrPolicyDenied / ErrQuotaExceeded under errors.Is
		// on its side of the wire.
		if errors.Is(err, ErrPolicyDenied) || errors.Is(err, ErrQuotaExceeded) {
			fw.replyError(bc, sender, err.Error(), err)
		}
	}
	sp.End()
	if fw.histInbound != nil {
		fw.histInbound.Observe(time.Since(t0))
	}
}

// routeLocal delivers a briefcase to a local agent, the firewall's own
// management interface, or the parking queue. It is the single local
// mediation choke point — inbound frames, local sends and recovered
// parks all pass through it — so the policy gate at its head covers
// every path by construction (crash-recovered parks re-mediate under
// whatever ruleset is active after the restart, for free).
func (fw *Firewall) routeLocal(senderPrincipal string, target uri.URI, bc *briefcase.Briefcase) error {
	ruleID := ""
	if eng := fw.cfg.Policy; eng != nil && senderPrincipal != fw.cfg.SystemPrincipal {
		// Patterns see one canonical form: a local target carries this
		// host's name, whether the sender wrote it or not.
		norm := target
		if norm.Host == "" {
			norm.Host = fw.cfg.HostName
		}
		v := eng.Eval(senderPrincipal, policyOpFor(target, bc), norm)
		switch v.Effect {
		case policy.Deny:
			fw.ctr.policyDeny.Inc()
			fw.eventBC(bc, telemetry.EventDeny, senderPrincipal, target.String(), "policy rule="+v.RuleID)
			return fmt.Errorf("%w (rule %s)", ErrPolicyDenied, v.RuleID)
		case policy.Park:
			return fw.parkPolicy(senderPrincipal, target, bc, v.RuleID)
		}
		if qid, ok := eng.Charge(senderPrincipal, 0); !ok {
			fw.ctr.policyQuota.Inc()
			fw.eventBC(bc, telemetry.EventQuota, senderPrincipal, target.String(), "quota rule="+qid)
			return fmt.Errorf("%w (rule %s)", ErrQuotaExceeded, qid)
		}
		fw.ctr.policyAllow.Inc()
		ruleID = v.RuleID
	}
	if target.Name == FirewallName || Kind(bc) == KindManagement {
		if ruleID != "" && fw.eventsOn() {
			fw.eventBC(bc, telemetry.EventAllow, senderPrincipal, target.String(), "mgmt rule="+ruleID)
		}
		return fw.handleManagement(senderPrincipal, bc)
	}
	sp := fw.span(bc, "fw.route")
	// The read lock lets unrelated mediations run concurrently while
	// still ordering each one against registration changes: parking
	// happens inside the read section, so a concurrent Register either
	// completes before the lookup (and is found) or starts after the
	// park (and its flush scan finds the parked message).
	fw.mu.RLock()
	if fw.closed {
		fw.mu.RUnlock()
		fw.eventBC(bc, telemetry.EventDrop, senderPrincipal, target.String(), "firewall closed")
		sp.SetErr(ErrClosed)
		sp.End()
		return ErrClosed
	}
	matches := fw.lookupLocked(target, senderPrincipal)
	// Prefer an exact instance match, then registration order.
	var chosen *Registration
	for _, r := range matches {
		if target.HasInstance && r.uri.Instance == target.Instance {
			chosen = r
			break
		}
	}
	if chosen == nil && len(matches) > 0 {
		chosen = matches[0]
	}
	if chosen == nil {
		fw.parkMsg(senderPrincipal, target, bc, false)
		fw.mu.RUnlock()
		fw.ctr.queued.Inc()
		cause := "receiver not registered"
		if ruleID != "" {
			cause += " rule=" + ruleID
		}
		fw.eventBC(bc, telemetry.EventPark, senderPrincipal, target.String(), cause)
		sp.SetAttr("outcome", "parked")
		sp.End()
		return nil
	}
	fw.mu.RUnlock()

	trace, span := traceCtx(bc)
	if err := chosen.deliver(bc); err != nil {
		fw.ctr.errors.Inc()
		fw.eventTS(trace, span, telemetry.EventDrop, senderPrincipal, target.String(), err.Error())
		sp.SetErr(err)
		sp.End()
		return err
	}
	fw.clock.Advance(fw.cfg.LocalHopCost)
	fw.ctr.delivered.Inc()
	if fw.eventsOn() {
		// The allow record carries the matched decision: which registration
		// the query resolved to and how, so an explain timeline shows the
		// verdict inline rather than a bare "allow".
		detail := "matched " + strconv.Itoa(len(matches))
		if target.HasInstance && chosen.uri.Instance == target.Instance {
			detail = "exact instance"
		}
		if ruleID != "" {
			detail = "rule=" + ruleID + " " + detail
		}
		fw.eventTS(trace, span, telemetry.EventAllow, senderPrincipal, chosen.uri.String(), detail)
	}
	sp.End()
	return nil
}

// parkMsg queues a message for a receiver that has not arrived yet.
// Callers hold at least the read side of fw.mu (to order the park
// against Close and Register).
func (fw *Firewall) parkMsg(senderPrincipal string, target uri.URI, bc *briefcase.Briefcase, policyHeld bool) {
	p := &pendingMsg{
		target: target, senderPrincipal: senderPrincipal, bc: bc,
		shard: shardFor(target.Name), policyHeld: policyHeld,
	}
	// Journal before arming the timer: once the park is observable it is
	// already durable, so no window exists where a crash loses a parked
	// message the sender was told is pending.
	fw.journalPark(p, target)
	p.timer = time.AfterFunc(fw.cfg.QueueTimeout, func() { fw.expire(p) })
	fw.park.add(p)
}

// Pending returns the number of currently parked messages.
func (fw *Firewall) Pending() int {
	return fw.park.size()
}

// expire handles a parked message whose timeout lapsed: the expiry is
// audited, the sender is notified with a typed KindError envelope, and —
// when the reply path is itself unreachable — the envelope is parked
// here rather than silently lost, so it stays observable (Pending, the
// event log) and is retried once more when its own timeout fires.
func (fw *Firewall) expire(p *pendingMsg) {
	if !fw.park.remove(p) {
		// A registration flush (or Close) already took the message.
		return
	}
	fw.unjournalPark(p)
	fw.ctr.expired.Inc()
	fw.eventBC(p.bc, telemetry.EventExpire, p.senderPrincipal, p.target.String(),
		fmt.Sprintf("queue timeout after %v", fw.cfg.QueueTimeout))
	if Kind(p.bc) == KindError {
		// An expired error envelope gets one last delivery attempt — its
		// reply path may have healed while it waited — and is then gone
		// for good; re-parking it would loop forever against a dead path.
		if !fw.isLocal(p.target) {
			_ = fw.Send(fw.selfURI(), p.bc)
		}
		return
	}
	senderStr, ok := p.bc.GetString(briefcase.FolderSysSender)
	if !ok {
		return
	}
	sender, err := uri.Parse(senderStr)
	if err != nil || (sender.Name == "" && !sender.HasInstance && sender.Principal == "") {
		return
	}
	reason := fmt.Sprintf("message to %s expired after %v", p.target, fw.cfg.QueueTimeout)
	report := errorReport(fw.selfURI().String(), sender.String(), reason)
	SetErrorCode(report, ErrExpired)
	if id, okID := p.bc.GetString(FolderMsgID); okID {
		report.SetString(FolderReplyTo, id)
	}
	// The notification inherits the original's retry policy so it can
	// ride out a transiently partitioned reply path.
	if pol, has, polErr := RetryPolicyFrom(p.bc); has && polErr == nil {
		SetRetryPolicy(report, pol)
	}
	if sendErr := fw.Send(fw.selfURI(), report); sendErr != nil {
		fw.mu.RLock()
		if fw.closed {
			fw.mu.RUnlock()
			return
		}
		fw.parkMsg(fw.cfg.SystemPrincipal, sender, report, false)
		fw.mu.RUnlock()
		fw.ctr.queued.Inc()
		fw.event(telemetry.EventPark, fw.cfg.SystemPrincipal, sender.String(),
			"reply path unreachable; parked expiry notice: "+sendErr.Error())
	}
}

// replyError sends a KindError report back to sender (best effort).
// cause, when non-nil and registered, stamps the report's _ERRCODE so
// the sender gets an errors.Is-able failure back.
func (fw *Firewall) replyError(orig *briefcase.Briefcase, sender uri.URI, reason string, cause error) {
	if sender.Name == "" && !sender.HasInstance && sender.Principal == "" {
		return
	}
	report := errorReport(fw.selfURI().String(), sender.String(), reason)
	if cause != nil {
		SetErrorCode(report, cause)
	}
	if id, ok := orig.GetString(FolderMsgID); ok {
		report.SetString(FolderReplyTo, id)
	}
	_ = fw.Send(fw.selfURI(), report)
}

// selfURI is the firewall's own agent URI.
func (fw *Firewall) selfURI() uri.URI {
	return uri.URI{
		Host:      fw.cfg.HostName,
		Port:      fw.cfg.Port,
		Principal: fw.cfg.SystemPrincipal,
		Name:      FirewallName,
	}
}

// List returns information about every registered agent, sorted by URI.
func (fw *Firewall) List() []AgentInfo {
	fw.mu.RLock()
	defer fw.mu.RUnlock()
	now := fw.clock.Now()
	var out []AgentInfo
	for _, list := range fw.regs {
		for _, r := range list {
			out = append(out, AgentInfo{
				URI:     r.uri,
				VM:      r.vm,
				State:   r.State(),
				Runtime: now - r.registeredAt,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URI.String() < out[j].URI.String() })
	return out
}

// Management operation names carried in the _OP folder of a
// KindManagement briefcase; the _ARG folder carries the target agent URI
// where one is needed.
const (
	// OpList asks for the agent listing.
	OpList = "list"
	// OpRuntime asks for one agent's run time.
	OpRuntime = "runtime"
	// OpKill terminates an agent.
	OpKill = "kill"
	// OpStop suspends an agent.
	OpStop = "stop"
	// OpResume resumes a stopped agent.
	OpResume = "resume"
	// OpMetrics asks for the telemetry registry snapshot.
	OpMetrics = "metrics"
	// OpTrace asks for the spans of one trace id (in _ARG).
	OpTrace = "trace"
	// OpExplain asks for the system-wide merged timeline of one trace id
	// (in _ARG; "latest" selects the most recent trace). Served by the
	// tower collector through Config.Explain; fails when no tower is
	// attached.
	OpExplain = "explain"
	// OpPolicy asks for the active policy ruleset description (version,
	// default, one row per rule and quota with verdict ids). Read-only,
	// so Trusted suffices; fails when no policy engine is configured.
	OpPolicy = "policy"
	// OpPolicyLoad hot-reloads the policy ruleset from the text in _ARG.
	// System only. A ruleset that fails to parse is rejected whole and
	// the old one stays fully in effect.
	OpPolicyLoad = "policyload"
	// OpDir asks the directory plane member on this host for a
	// management dump; _ARG selects the verb (ring, counts, leases,
	// health). Read-only, so Trusted suffices; served through SetDir and
	// fails when the host is not a plane member.
	OpDir = "dir"
)

// Management folder names.
const (
	// FolderOp names the management operation.
	FolderOp = "_OP"
	// FolderArg carries the operation's argument (an agent URI).
	FolderArg = "_ARG"
	// FolderReply carries the operation's result rows.
	FolderReply = "_REPLY"
)

// handleManagement serves a briefcase addressed to the firewall itself.
func (fw *Firewall) handleManagement(senderPrincipal string, bc *briefcase.Briefcase) error {
	fw.ctr.mgmtOps.Inc()
	op, _ := bc.GetString(FolderOp)

	required := identity.System
	if op == OpList || op == OpRuntime || op == OpMetrics || op == OpTrace || op == OpExplain || op == OpPolicy || op == OpDir {
		required = identity.Trusted
	}
	var opErr error
	var rows []string
	if err := fw.cfg.Trust.Require(senderPrincipal, required); err != nil {
		opErr = fmt.Errorf("%w: %v", ErrDenied, err)
		fw.event(telemetry.EventDeny, senderPrincipal, FirewallName, "mgmt "+op+": "+err.Error())
	} else {
		rows, opErr = fw.applyOp(op, bc)
	}

	// Reply to the sender; operation failures travel in the reply (RPC
	// semantics) and are only returned directly when no reply can be
	// delivered.
	senderStr, ok := bc.GetString(briefcase.FolderSysSender)
	if !ok {
		return opErr
	}
	sender, err := uri.Parse(senderStr)
	if err != nil || (sender.Name == "" && !sender.HasInstance) {
		return opErr
	}
	reply := briefcase.New()
	reply.SetString(briefcase.FolderSysTarget, sender.String())
	if id, okID := bc.GetString(FolderMsgID); okID {
		reply.SetString(FolderReplyTo, id)
	}
	if opErr != nil {
		reply.SetString(FolderKind, KindError)
		SetError(reply, opErr)
	} else {
		f := reply.Ensure(FolderReply)
		for _, row := range rows {
			f.AppendString(row)
		}
	}
	if sendErr := fw.Send(fw.selfURI(), reply); sendErr != nil {
		return sendErr
	}
	return nil
}

// SetDir binds the directory plane's management dump (served as the
// "dir" management op). Called by core when the host joins the plane.
func (fw *Firewall) SetDir(fn func(verb string) ([]string, error)) {
	fw.dirMu.Lock()
	fw.dir = fn
	fw.dirMu.Unlock()
}

func (fw *Firewall) dirFn() func(verb string) ([]string, error) {
	fw.dirMu.RLock()
	defer fw.dirMu.RUnlock()
	return fw.dir
}

// applyOp executes one management operation and returns the reply rows.
func (fw *Firewall) applyOp(op string, bc *briefcase.Briefcase) ([]string, error) {
	switch op {
	case OpList:
		infos := fw.List()
		rows := make([]string, 0, len(infos))
		for _, in := range infos {
			rows = append(rows, strings.Join([]string{
				in.URI.String(), in.VM, in.State.String(),
				strconv.FormatInt(int64(in.Runtime), 10),
			}, "|"))
		}
		return rows, nil
	case OpMetrics:
		snap := fw.tel.Registry().Snapshot()
		rows := make([]string, 0, len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms))
		for k, v := range snap.Counters {
			rows = append(rows, "counter|"+k+"|"+strconv.FormatInt(v, 10))
		}
		for k, v := range snap.Gauges {
			rows = append(rows, "gauge|"+k+"|"+strconv.FormatInt(v, 10))
		}
		for k, h := range snap.Histograms {
			rows = append(rows, "histogram|"+k+"|count="+strconv.FormatInt(h.Count, 10)+
				"|sum="+h.Sum.String()+
				"|p50="+h.P50.String()+"|p95="+h.P95.String()+"|p99="+h.P99.String())
		}
		sort.Strings(rows)
		return rows, nil
	case OpTrace:
		traceID, ok := bc.GetString(FolderArg)
		if !ok {
			return nil, fmt.Errorf("firewall: %s needs %s", op, FolderArg)
		}
		spans := fw.tel.Spans()
		if spans == nil {
			return nil, errors.New("firewall: span collection disabled")
		}
		recs := spans.ForTrace(traceID)
		rows := make([]string, 0, len(recs))
		for _, r := range recs {
			rows = append(rows, strings.Join([]string{
				r.SpanID, r.Parent, r.Name, r.Host,
				strconv.FormatInt(int64(r.Start), 10),
				strconv.FormatInt(int64(r.End), 10),
				r.Err,
			}, "|"))
		}
		return rows, nil
	case OpExplain:
		if fw.cfg.Explain == nil {
			return nil, errors.New("firewall: no tower collector attached (explain unavailable)")
		}
		traceID, ok := bc.GetString(FolderArg)
		if !ok || traceID == "" {
			traceID = "latest"
		}
		return fw.cfg.Explain(traceID), nil
	case OpPolicy:
		if fw.cfg.Policy == nil {
			return nil, errors.New("firewall: no policy engine configured")
		}
		return fw.cfg.Policy.Describe(), nil
	case OpDir:
		dir := fw.dirFn()
		if dir == nil {
			return nil, errors.New("firewall: host is not a directory plane member")
		}
		verb, ok := bc.GetString(FolderArg)
		if !ok || verb == "" {
			verb = "ring"
		}
		return dir(verb)
	case OpPolicyLoad:
		text, ok := bc.GetString(FolderArg)
		if !ok {
			return nil, fmt.Errorf("firewall: %s needs %s", op, FolderArg)
		}
		v, err := fw.ReloadPolicy(text)
		if err != nil {
			return nil, err
		}
		return []string{"version|" + strconv.FormatUint(v, 10)}, nil
	case OpRuntime, OpKill, OpStop, OpResume:
		argStr, ok := bc.GetString(FolderArg)
		if !ok {
			return nil, fmt.Errorf("firewall: %s needs %s", op, FolderArg)
		}
		q, err := uri.Parse(argStr)
		if err != nil {
			return nil, fmt.Errorf("firewall: %s: %w", op, err)
		}
		// Management matching ignores the empty-principal restriction:
		// the caller already proved System/Trusted privileges.
		fw.mu.RLock()
		matches := fw.lookupLocked(q, q.Principal)
		if q.Principal == "" {
			matches = nil
			for _, list := range fw.regs {
				for _, r := range list {
					if r.uri.Matches(q) {
						matches = append(matches, r)
					}
				}
			}
		}
		fw.mu.RUnlock()
		if len(matches) == 0 {
			return nil, fmt.Errorf("%w: %s", ErrNoAgent, q)
		}
		var rows []string
		for _, r := range matches {
			switch op {
			case OpRuntime:
				rows = append(rows, r.uri.String()+"|"+
					strconv.FormatInt(int64(fw.clock.Now()-r.registeredAt), 10))
			case OpKill:
				fw.Unregister(r)
				rows = append(rows, r.uri.String()+"|killed")
			case OpStop:
				r.stop()
				rows = append(rows, r.uri.String()+"|stopped")
			case OpResume:
				r.resume()
				rows = append(rows, r.uri.String()+"|running")
			}
		}
		return rows, nil
	default:
		return nil, fmt.Errorf("firewall: unknown operation %q", op)
	}
}
