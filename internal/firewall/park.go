// The lock-striped park table.
//
// Parked messages used to live in a single slice guarded by the
// firewall's registration mutex, which serialized every mediation that
// touched the queue. The table is now striped: each parked message
// lands in the stripe hashed from its target agent name, so concurrent
// mediations for unrelated receivers touch disjoint locks. Mediation
// POLICY is unchanged — every message still passes the same match rule
// under the same single per-host reference monitor; only the mechanism
// (which lock protects which queue entry) is sharded. Name-less targets
// hash to the empty-name stripe; a registration flush therefore scans
// exactly two stripes: the stripe of its own name and the empty-name
// stripe.
package firewall

import (
	"hash/fnv"
	"strconv"
	"sync"

	"tax/internal/telemetry"
)

// parkShards is the number of lock stripes in the park table. Small
// powers of two are plenty: the table is contended by mediation paths,
// not sized by parked-message volume.
const parkShards = 8

// parkShard is one stripe: a lock, its queue slice, and a gauge
// mirroring the stripe's depth.
type parkShard struct {
	mu      sync.Mutex
	pending []*pendingMsg
	gauge   *telemetry.Gauge
}

// parkTable is the striped store of parked messages.
type parkTable struct {
	shards [parkShards]parkShard
	// total mirrors the table-wide depth into the registry under the
	// pre-sharding gauge name, so existing dashboards and tests keep
	// reading one number.
	total *telemetry.Gauge
}

func newParkTable(reg *telemetry.Registry, host string) *parkTable {
	t := &parkTable{total: reg.Gauge("fw.pending", "host", host)}
	for i := range t.shards {
		t.shards[i].gauge = reg.Gauge("fw.pending_shard",
			"host", host, "shard", strconv.Itoa(i))
	}
	return t
}

// shardFor maps a target agent name to its stripe index.
func shardFor(name string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(name))
	return int(h.Sum32() % parkShards)
}

// add inserts a parked message into its stripe.
func (t *parkTable) add(p *pendingMsg) {
	s := &t.shards[p.shard]
	s.mu.Lock()
	s.pending = append(s.pending, p)
	s.gauge.Set(int64(len(s.pending)))
	s.mu.Unlock()
	t.total.Add(1)
}

// remove deletes p from its stripe by identity, reporting whether it
// was still parked (false when a registration flush already took it).
func (t *parkTable) remove(p *pendingMsg) bool {
	s := &t.shards[p.shard]
	s.mu.Lock()
	found := false
	for i, q := range s.pending {
		if q == p {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			found = true
			break
		}
	}
	s.gauge.Set(int64(len(s.pending)))
	s.mu.Unlock()
	if found {
		t.total.Add(-1)
	}
	return found
}

// takeMatching removes and returns the parked messages match accepts,
// scanning only the stripes that can hold messages for the given agent
// name: its own stripe and the empty-name (wildcard-target) stripe.
func (t *parkTable) takeMatching(name string, match func(*pendingMsg) bool) []*pendingMsg {
	idx := []int{shardFor(name)}
	if w := shardFor(""); w != idx[0] {
		idx = append(idx, w)
	}
	var out []*pendingMsg
	for _, i := range idx {
		s := &t.shards[i]
		s.mu.Lock()
		rest := s.pending[:0]
		for _, p := range s.pending {
			if match(p) {
				out = append(out, p)
			} else {
				rest = append(rest, p)
			}
		}
		s.pending = rest
		s.gauge.Set(int64(len(s.pending)))
		s.mu.Unlock()
	}
	if len(out) > 0 {
		t.total.Add(int64(-len(out)))
	}
	return out
}

// takeHeld removes and returns every policy-held parked message, across
// all stripes (held messages hash by target name like any other, and a
// reload must reconsider all of them). The same stripe-lock arbitration
// as takeMatching applies: a message is taken by exactly one of a
// concurrent reload and its expiry timer.
func (t *parkTable) takeHeld() []*pendingMsg {
	var out []*pendingMsg
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		rest := s.pending[:0]
		for _, p := range s.pending {
			if p.policyHeld {
				out = append(out, p)
			} else {
				rest = append(rest, p)
			}
		}
		s.pending = rest
		s.gauge.Set(int64(len(s.pending)))
		s.mu.Unlock()
	}
	if len(out) > 0 {
		t.total.Add(int64(-len(out)))
	}
	return out
}

// drain empties every stripe and returns all parked messages (Close).
func (t *parkTable) drain() []*pendingMsg {
	var out []*pendingMsg
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		out = append(out, s.pending...)
		s.pending = nil
		s.gauge.Set(0)
		s.mu.Unlock()
	}
	t.total.Set(0)
	return out
}

// size is the table-wide parked-message count.
func (t *parkTable) size() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.pending)
		s.mu.Unlock()
	}
	return n
}
