package firewall

import (
	"errors"
	"fmt"

	"tax/internal/briefcase"
	"tax/internal/identity"
)

// Message kinds carried in the _KIND folder. In TAX every observable
// action is "send a briefcase"; the kind tells the receiving firewall
// whether the briefcase is ordinary agent communication, a moving agent,
// a management request, or a system-generated error report.
const (
	// KindMessage is ordinary agent-to-agent communication.
	KindMessage = "msg"
	// KindTransfer carries a moving agent (go/spawn): the briefcase is the
	// agent's consistent snapshot, targeted at a VM on the destination.
	KindTransfer = "xfer"
	// KindManagement is a request addressed to the firewall itself.
	KindManagement = "mgmt"
	// KindError is a system-generated error report sent back to a sender.
	KindError = "err"
)

// Reserved folders the firewall reads or writes beyond those declared in
// package briefcase.
const (
	// FolderKind holds one of the Kind* constants; absent means KindMessage.
	FolderKind = "_KIND"
	// FolderMsgID carries a correlation id assigned by the sender.
	FolderMsgID = "_MSGID"
	// FolderReplyTo carries the _MSGID a meet() response answers.
	FolderReplyTo = "_REPLYTO"
)

// Kind returns the briefcase's message kind (KindMessage when absent).
func Kind(bc *briefcase.Briefcase) string {
	if k, ok := bc.GetString(FolderKind); ok {
		return k
	}
	return KindMessage
}

// ErrUnsigned is returned when a transfer carries no signature.
var ErrUnsigned = errors.New("firewall: agent core not signed")

// coreBytes returns the canonical byte string a core signature covers:
// the deterministic encoding of the CODE and BINARIES folders. Arguments
// and results mutate in flight and are deliberately not covered; the
// paper's "signed agent core" is the code.
func coreBytes(bc *briefcase.Briefcase) []byte {
	core := briefcase.New()
	for _, name := range []string{briefcase.FolderCode, briefcase.FolderBinaries} {
		if !bc.Has(name) {
			continue
		}
		src, err := bc.Folder(name)
		if err != nil {
			continue
		}
		dst := core.Ensure(name)
		for _, e := range src.Bytes() {
			dst.Append(e)
		}
	}
	return core.Encode()
}

// SignCore signs the briefcase's agent core with the principal's key and
// records the principal name and detached signature in the system folders.
func SignCore(bc *briefcase.Briefcase, p *identity.Principal) {
	bc.SetString(briefcase.FolderSysPrincipal, p.Name())
	sig := p.Sign(coreBytes(bc))
	f := bc.Ensure(briefcase.FolderSysSignature)
	f.Clear()
	f.Append(sig)
}

// VerifyCore checks the core signature against the trust store and
// returns the verified principal name. required is the minimum trust
// level the signer must hold.
func VerifyCore(bc *briefcase.Briefcase, trust *identity.TrustStore, required identity.Level) (string, error) {
	principal, ok := bc.GetString(briefcase.FolderSysPrincipal)
	if !ok {
		return "", fmt.Errorf("%w: no principal", ErrUnsigned)
	}
	f, err := bc.Folder(briefcase.FolderSysSignature)
	if err != nil || f.Len() == 0 {
		return "", fmt.Errorf("%w: no signature", ErrUnsigned)
	}
	sig, err := f.Element(0)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrUnsigned, err)
	}
	if err := trust.VerifyBy(principal, coreBytes(bc), sig, required); err != nil {
		return "", err
	}
	return principal, nil
}

// Channel-authentication folders: a sealed frame is an outer briefcase
// wrapping the payload with the sending firewall's signature.
const (
	// FolderFramePayload holds the inner frame bytes.
	FolderFramePayload = "_FRAME"
	// FolderFrameFrom names the sending firewall's principal.
	FolderFrameFrom = "_FRAMEFROM"
	// FolderFrameSig holds the detached signature over the payload.
	FolderFrameSig = "_FRAMESIG"
)

// ErrChannelAuth is returned for inbound frames failing channel
// authentication.
var ErrChannelAuth = errors.New("firewall: channel authentication failed")

// sealFrame wraps payload with the host principal's signature; with no
// signer configured the payload passes through unsealed. The payload is
// aliased into the outer briefcase and copied exactly once, by the
// encode — the seal adds only header bytes around the payload region.
func sealFrame(signer *identity.Principal, payload []byte) []byte {
	if signer == nil {
		return payload
	}
	outer := briefcase.New()
	outer.Ensure(FolderFramePayload).AppendAlias(payload)
	outer.SetString(FolderFrameFrom, signer.Name())
	outer.Ensure(FolderFrameSig).Append(signer.Sign(payload))
	return outer.Encode()
}

// peekSealed returns the inner payload of a sealed frame without
// materializing the outer briefcase, or (nil, false) when raw is not a
// sealed frame (unsealed briefcase, container, or garbage — callers
// that admit frames still Decode and validate fully).
func peekSealed(raw []byte) ([]byte, bool) {
	payload, err := briefcase.Peek(raw, FolderFramePayload)
	if err != nil {
		return nil, false
	}
	return payload, true
}

// openFrame recovers the payload of a possibly-sealed frame. With
// requireAuth set, unsealed frames and bad signatures are rejected; the
// signing principal must hold at least Trusted.
//
// The envelope is read with header peeks: an inbound frame is decoded
// exactly once (by the caller, after openFrame returns the payload)
// rather than once for the seal check and again for routing. Peeks
// validate only the prefix of the outer frame they scan; the payload —
// the only part that is routed onward — still passes the full decoder.
func openFrame(trust *identity.TrustStore, requireAuth bool, raw []byte) ([]byte, error) {
	payload, err := briefcase.Peek(raw, FolderFramePayload)
	switch {
	case err == nil:
		// Sealed frame; fall through to the auth decision.
	case errors.Is(err, briefcase.ErrNoFolder):
		if requireAuth {
			return nil, fmt.Errorf("%w: frame not sealed", ErrChannelAuth)
		}
		return raw, nil
	case errors.Is(err, briefcase.ErrNoElement):
		return nil, fmt.Errorf("%w: empty frame", ErrChannelAuth)
	default:
		return nil, err
	}
	if !requireAuth {
		return payload, nil
	}
	if err := verifySeal(trust, raw, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// verifySeal checks a sealed frame's channel signature over its already
// peeked payload, reading the seal headers without materializing the
// outer briefcase. The signing principal must hold at least Trusted.
func verifySeal(trust *identity.TrustStore, raw, payload []byte) error {
	from, ok := briefcase.PeekString(raw, FolderFrameFrom)
	if !ok {
		return fmt.Errorf("%w: sealed frame without principal", ErrChannelAuth)
	}
	sig, err := briefcase.Peek(raw, FolderFrameSig)
	if err != nil {
		return fmt.Errorf("%w: sealed frame without signature", ErrChannelAuth)
	}
	if err := trust.VerifyBy(from, payload, sig, identity.Trusted); err != nil {
		return fmt.Errorf("%w: %v", ErrChannelAuth, err)
	}
	return nil
}

// errorReport builds a KindError briefcase describing why msg could not
// be handled, addressed back to the original sender.
func errorReport(target, sender, reason string) *briefcase.Briefcase {
	bc := briefcase.New()
	bc.SetString(FolderKind, KindError)
	bc.SetString(briefcase.FolderSysTarget, sender)
	bc.SetString(briefcase.FolderSysError, reason)
	bc.SetString(briefcase.FolderSysSender, target)
	return bc
}
