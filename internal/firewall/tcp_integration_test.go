package firewall

import (
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"tax/internal/briefcase"
	"tax/internal/identity"
	"tax/internal/simnet"
)

// tcpSite is one firewall bound to a real TCP socket, as cmd/taxd runs.
type tcpSite struct {
	fw   *Firewall
	node *simnet.TCPNode
	host string
	port int
}

func newTCPSite(t *testing.T, trust *identity.TrustStore) *tcpSite {
	t.Helper()
	node, err := simnet.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })
	host, portStr, err := net.SplitHostPort(node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := New(Config{
		HostName:        host,
		Port:            port,
		Node:            node,
		Trust:           trust,
		SystemPrincipal: "system",
		Resolve: func(h string, p int) (string, error) {
			return net.JoinHostPort(h, strconv.Itoa(p)), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fw.Close() })
	return &tcpSite{fw: fw, node: node, host: host, port: port}
}

func TestTCPFirewallDelivery(t *testing.T) {
	sys, err := identity.NewPrincipal("system")
	if err != nil {
		t.Fatal(err)
	}
	trust := &identity.TrustStore{}
	trust.AddPrincipal(sys, identity.System)

	a := newTCPSite(t, trust)
	b := newTCPSite(t, trust)

	sender, err := a.fw.Register("vm_go", "system", "sender")
	if err != nil {
		t.Fatal(err)
	}
	recv, err := b.fw.Register("vm_go", "system", "receiver")
	if err != nil {
		t.Fatal(err)
	}

	bc := briefcase.New()
	bc.SetString(briefcase.FolderSysTarget,
		"tacoma://"+b.host+":"+strconv.Itoa(b.port)+"/system/receiver")
	bc.SetString("BODY", "over real sockets")
	if err := a.fw.Send(sender.GlobalURI(), bc); err != nil {
		t.Fatal(err)
	}
	got, err := recv.Recv(5 * time.Second)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	body, _ := got.GetString("BODY")
	if body != "over real sockets" {
		t.Errorf("body = %q", body)
	}
}

func TestTCPRemoteManagement(t *testing.T) {
	sys, err := identity.NewPrincipal("system")
	if err != nil {
		t.Fatal(err)
	}
	trust := &identity.TrustStore{}
	trust.AddPrincipal(sys, identity.System)

	ctl := newTCPSite(t, trust)
	target := newTCPSite(t, trust)
	_, err = target.fw.Register("vm_go", "alice", "webbot")
	if err != nil {
		t.Fatal(err)
	}

	admin, err := ctl.fw.Register("ctl", "system", "taxctl")
	if err != nil {
		t.Fatal(err)
	}
	req := briefcase.New()
	req.SetString(briefcase.FolderSysTarget,
		"tacoma://"+target.host+":"+strconv.Itoa(target.port)+"/system/"+FirewallName)
	req.SetString(FolderKind, KindManagement)
	req.SetString(FolderOp, OpList)
	req.SetString(FolderMsgID, "tcp-1")
	if err := ctl.fw.Send(admin.GlobalURI(), req); err != nil {
		t.Fatal(err)
	}
	reply, err := admin.Recv(5 * time.Second)
	if err != nil {
		t.Fatalf("no reply: %v", err)
	}
	if got, _ := reply.GetString(FolderReplyTo); got != "tcp-1" {
		t.Errorf("correlation = %q", got)
	}
	rows, err := reply.Folder(FolderReply)
	if err != nil {
		t.Fatalf("no rows: %v (%v)", err, reply)
	}
	if !strings.Contains(strings.Join(rows.Strings(), "\n"), "alice/webbot") {
		t.Errorf("listing: %v", rows.Strings())
	}
}
