package firewall

import (
	"errors"
	"strings"
	"testing"
	"time"

	"tax/internal/briefcase"
	"tax/internal/identity"
	"tax/internal/simnet"
)

// testSite is one simulated host with a firewall, plus the shared
// principals of a two-host test fixture.
type testSite struct {
	fw   *Firewall
	host *simnet.Host
}

type fixture struct {
	net    *simnet.Network
	sys    *identity.Principal
	alice  *identity.Principal
	mal    *identity.Principal
	trust  *identity.TrustStore
	sites  map[string]*testSite
	t      *testing.T
	config func(*Config)
}

func newFixture(t *testing.T, hosts ...string) *fixture {
	t.Helper()
	f := &fixture{
		net:   simnet.New(simnet.LAN100),
		trust: &identity.TrustStore{},
		sites: map[string]*testSite{},
		t:     t,
	}
	t.Cleanup(func() { _ = f.net.Close() })
	var err error
	if f.sys, err = identity.NewPrincipal("system"); err != nil {
		t.Fatal(err)
	}
	if f.alice, err = identity.NewPrincipal("alice"); err != nil {
		t.Fatal(err)
	}
	if f.mal, err = identity.NewPrincipal("mallory"); err != nil {
		t.Fatal(err)
	}
	f.trust.AddPrincipal(f.sys, identity.System)
	f.trust.AddPrincipal(f.alice, identity.Trusted)
	// mallory is deliberately not in the trust store.
	for _, h := range hosts {
		f.addHost(h)
	}
	return f
}

func (f *fixture) addHost(name string) *testSite {
	f.t.Helper()
	h, err := f.net.AddHost(name)
	if err != nil {
		f.t.Fatal(err)
	}
	cfg := Config{
		HostName:        name,
		Node:            h,
		Trust:           f.trust,
		SystemPrincipal: "system",
		QueueTimeout:    300 * time.Millisecond,
	}
	if f.config != nil {
		f.config(&cfg)
	}
	fw, err := New(cfg)
	if err != nil {
		f.t.Fatal(err)
	}
	f.t.Cleanup(func() { _ = fw.Close() })
	s := &testSite{fw: fw, host: h}
	f.sites[name] = s
	return s
}

// send builds a briefcase targeted at target and sends it from reg.
func send(t *testing.T, fw *Firewall, from *Registration, target string, body string) {
	t.Helper()
	bc := briefcase.New()
	bc.SetString(briefcase.FolderSysTarget, target)
	bc.SetString("BODY", body)
	if err := fw.Send(from.GlobalURI(), bc); err != nil {
		t.Fatalf("send to %s: %v", target, err)
	}
}

func recvBody(t *testing.T, r *Registration, timeout time.Duration) string {
	t.Helper()
	bc, err := r.Recv(timeout)
	if err != nil {
		t.Fatalf("recv on %s: %v", r.URI(), err)
	}
	body, _ := bc.GetString("BODY")
	return body
}

func TestRegisterAllocatesInstances(t *testing.T) {
	f := newFixture(t, "h1")
	fw := f.sites["h1"].fw
	r1, err := fw.Register("vm_go", "alice", "worker")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := fw.Register("vm_go", "alice", "worker")
	if err != nil {
		t.Fatal(err)
	}
	if r1.URI().Instance == r2.URI().Instance {
		t.Error("two registrations share an instance number")
	}
	if !r1.URI().HasInstance {
		t.Error("registration without instance")
	}
	if r1.VM() != "vm_go" {
		t.Errorf("VM = %q", r1.VM())
	}
	if _, err := fw.Register("vm_go", "alice", ""); err == nil {
		t.Error("empty agent name accepted")
	}
}

func TestLocalDeliveryByName(t *testing.T) {
	f := newFixture(t, "h1")
	fw := f.sites["h1"].fw
	sender, _ := fw.Register("vm_go", "alice", "sender")
	recv, _ := fw.Register("vm_go", "alice", "receiver")

	send(t, fw, sender, "alice/receiver", "hello")
	if got := recvBody(t, recv, time.Second); got != "hello" {
		t.Errorf("body = %q", got)
	}

	// The firewall must have stamped the authenticated sender.
	send(t, fw, sender, "alice/receiver", "again")
	bc, err := recv.Recv(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	senderURI, _ := bc.GetString(briefcase.FolderSysSender)
	if !strings.Contains(senderURI, "sender") {
		t.Errorf("_SENDER = %q", senderURI)
	}
}

func TestSenderFolderCannotBeSpoofed(t *testing.T) {
	f := newFixture(t, "h1")
	fw := f.sites["h1"].fw
	sender, _ := fw.Register("vm_go", "alice", "sender")
	recv, _ := fw.Register("vm_go", "alice", "receiver")

	bc := briefcase.New()
	bc.SetString(briefcase.FolderSysTarget, "alice/receiver")
	bc.SetString(briefcase.FolderSysSender, "tacoma://evil/system/firewall")
	if err := fw.Send(sender.GlobalURI(), bc); err != nil {
		t.Fatal(err)
	}
	got, err := recv.Recv(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := got.GetString(briefcase.FolderSysSender)
	if strings.Contains(s, "evil") {
		t.Errorf("spoofed sender survived: %q", s)
	}
}

func TestExactInstancePreferred(t *testing.T) {
	f := newFixture(t, "h1")
	fw := f.sites["h1"].fw
	sender, _ := fw.Register("vm_go", "alice", "sender")
	a, _ := fw.Register("vm_go", "alice", "svc")
	b, _ := fw.Register("vm_go", "alice", "svc")

	send(t, fw, sender, b.URI().String(), "pin")
	if got := recvBody(t, b, time.Second); got != "pin" {
		t.Errorf("instance-pinned message went astray: %q", got)
	}
	if _, ok := a.TryRecv(); ok {
		t.Error("wrong instance received the message")
	}
}

func TestClassAddressing(t *testing.T) {
	// Name-only addressing reaches some agent of the class (§3.2:
	// "useful if one wishes to establish communication with a broader
	// class of agents like service agents").
	f := newFixture(t, "h1")
	fw := f.sites["h1"].fw
	sender, _ := fw.Register("vm_go", "alice", "sender")
	svc, _ := fw.Register("vm_go", "system", "ag_fs")

	send(t, fw, sender, "ag_fs", "open")
	if got := recvBody(t, svc, time.Second); got != "open" {
		t.Errorf("class-addressed body = %q", got)
	}
}

func TestEmptyPrincipalRule(t *testing.T) {
	// With no principal in the query, only the local system principal or
	// the sender's own principal are valid targets.
	f := newFixture(t, "h1")
	fw := f.sites["h1"].fw
	alice, _ := fw.Register("vm_go", "alice", "mine")
	bobAgent, _ := fw.Register("vm_go", "bob", "theirs")
	sysAgent, _ := fw.Register("vm_go", "system", "sysag")

	// alice → her own agent: allowed (sender and receiver are the same
	// registration here, which is fine — it exercises the principal rule).
	send(t, fw, alice, "mine", "self")
	if got := recvBody(t, alice, time.Second); got != "self" {
		t.Errorf("own-principal delivery failed: %q", got)
	}

	// alice → system agent without principal: allowed.
	send(t, fw, alice, "sysag", "sys")
	if got := recvBody(t, sysAgent, time.Second); got != "sys" {
		t.Errorf("system delivery failed: %q", got)
	}

	// alice → bob's agent without naming bob: must NOT deliver (parks).
	send(t, fw, alice, "theirs", "sneak")
	if _, ok := bobAgent.TryRecv(); ok {
		t.Error("empty-principal query reached a foreign principal")
	}

	// Naming bob explicitly works.
	send(t, fw, alice, "bob/theirs", "overt")
	if got := recvBody(t, bobAgent, time.Second); got != "overt" {
		t.Errorf("explicit-principal delivery failed: %q", got)
	}
}

func TestQueueUntilRegistered(t *testing.T) {
	// Messages to agents that "have not yet arrived at the site" are
	// queued and delivered on registration.
	f := newFixture(t, "h1")
	fw := f.sites["h1"].fw
	sender, _ := fw.Register("vm_go", "alice", "sender")

	send(t, fw, sender, "alice/latecomer", "early bird")
	if fw.Stats().Queued != 1 {
		t.Fatalf("stats = %+v, want Queued=1", fw.Stats())
	}
	late, _ := fw.Register("vm_go", "alice", "latecomer")
	if got := recvBody(t, late, time.Second); got != "early bird" {
		t.Errorf("parked message body = %q", got)
	}
}

func TestQueueTimeoutExpiresAndReportsError(t *testing.T) {
	f := newFixture(t, "h1")
	fw := f.sites["h1"].fw
	sender, _ := fw.Register("vm_go", "alice", "sender")

	send(t, fw, sender, "alice/ghost", "lost")
	// Wait past the queue timeout (300ms in fixture).
	deadline := time.Now().Add(3 * time.Second)
	for fw.Stats().Expired == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if fw.Stats().Expired != 1 {
		t.Fatalf("stats = %+v, want Expired=1", fw.Stats())
	}
	// The sender receives a KindError report.
	bc, err := sender.Recv(2 * time.Second)
	if err != nil {
		t.Fatalf("no error report: %v", err)
	}
	if Kind(bc) != KindError {
		t.Errorf("kind = %q", Kind(bc))
	}
	msg, _ := bc.GetString(briefcase.FolderSysError)
	if !strings.Contains(msg, "expired") {
		t.Errorf("error text = %q", msg)
	}
	// The late registration gets nothing.
	ghost, _ := fw.Register("vm_go", "alice", "ghost")
	if _, ok := ghost.TryRecv(); ok {
		t.Error("expired message still delivered")
	}
}

func TestRemoteDelivery(t *testing.T) {
	f := newFixture(t, "h1", "h2")
	fw1, fw2 := f.sites["h1"].fw, f.sites["h2"].fw
	sender, _ := fw1.Register("vm_go", "alice", "sender")
	recv, _ := fw2.Register("vm_go", "alice", "receiver")

	send(t, fw1, sender, "tacoma://h2/alice/receiver", "across")
	if got := recvBody(t, recv, 2*time.Second); got != "across" {
		t.Errorf("remote body = %q", got)
	}
	if fw1.Stats().Forwarded != 1 {
		t.Errorf("h1 stats = %+v", fw1.Stats())
	}
	if fw2.Stats().Delivered != 1 {
		t.Errorf("h2 stats = %+v", fw2.Stats())
	}
}

func TestRemoteDeliveryChargesVirtualTime(t *testing.T) {
	f := newFixture(t, "h1", "h2")
	fw1, fw2 := f.sites["h1"].fw, f.sites["h2"].fw
	sender, _ := fw1.Register("vm_go", "alice", "sender")
	recv, _ := fw2.Register("vm_go", "alice", "receiver")

	before := fw2.Clock().Now()
	send(t, fw1, sender, "tacoma://h2/alice/receiver", "tick")
	if _, err := recv.Recv(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fw2.Clock().Now() <= before {
		t.Error("remote delivery advanced no virtual time")
	}
}

func TestSendToUnknownHostFails(t *testing.T) {
	f := newFixture(t, "h1")
	fw := f.sites["h1"].fw
	sender, _ := fw.Register("vm_go", "alice", "sender")
	bc := briefcase.New()
	bc.SetString(briefcase.FolderSysTarget, "tacoma://nowhere/alice/x")
	if err := fw.Send(sender.GlobalURI(), bc); err == nil {
		t.Error("send to unknown host succeeded")
	}
}

func TestSendWithoutTarget(t *testing.T) {
	f := newFixture(t, "h1")
	fw := f.sites["h1"].fw
	sender, _ := fw.Register("vm_go", "alice", "sender")
	if err := fw.Send(sender.GlobalURI(), briefcase.New()); !errors.Is(err, ErrNoTarget) {
		t.Errorf("err = %v, want ErrNoTarget", err)
	}
	bc := briefcase.New()
	bc.SetString(briefcase.FolderSysTarget, "::bad::")
	if err := fw.Send(sender.GlobalURI(), bc); err == nil {
		t.Error("bad target accepted")
	}
}

func TestUnregisterWakesReceiver(t *testing.T) {
	f := newFixture(t, "h1")
	fw := f.sites["h1"].fw
	r, _ := fw.Register("vm_go", "alice", "worker")
	done := make(chan error, 1)
	go func() {
		_, err := r.Recv(0)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	fw.Unregister(r)
	select {
	case err := <-done:
		if !errors.Is(err, ErrKilled) {
			t.Errorf("Recv err = %v, want ErrKilled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not wake on unregister")
	}
}

func TestRecvTimeout(t *testing.T) {
	f := newFixture(t, "h1")
	fw := f.sites["h1"].fw
	r, _ := fw.Register("vm_go", "alice", "worker")
	start := time.Now()
	_, err := r.Recv(50 * time.Millisecond)
	if !errors.Is(err, ErrRecvTimeout) {
		t.Errorf("err = %v, want ErrRecvTimeout", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("timeout overshot")
	}
}

func TestCloseKillsAll(t *testing.T) {
	f := newFixture(t, "h1")
	fw := f.sites["h1"].fw
	r, _ := fw.Register("vm_go", "alice", "worker")
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Recv(time.Second); !errors.Is(err, ErrKilled) {
		t.Errorf("Recv after close = %v", err)
	}
	if _, err := fw.Register("vm_go", "alice", "late"); !errors.Is(err, ErrClosed) {
		t.Errorf("Register after close = %v", err)
	}
	if err := fw.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestMailboxOverflow(t *testing.T) {
	f := newFixture(t, "h1")
	fw := f.sites["h1"].fw
	sender, _ := fw.Register("vm_go", "alice", "sender")
	_, _ = fw.Register("vm_go", "alice", "sink")

	var overflowed bool
	for i := 0; i < mailboxSize+8; i++ {
		bc := briefcase.New()
		bc.SetString(briefcase.FolderSysTarget, "alice/sink")
		if err := fw.Send(sender.GlobalURI(), bc); err != nil {
			if !errors.Is(err, ErrMailboxFull) {
				t.Fatalf("unexpected send error: %v", err)
			}
			overflowed = true
			break
		}
	}
	if !overflowed {
		t.Error("mailbox never overflowed")
	}
}
