// Policy-engine wiring: how the declarative mediation layer sits inside
// the reference monitor.
//
// The engine itself (internal/policy) knows nothing about briefcases or
// transports; this file classifies mediations into policy operations,
// parks briefcases a park verdict holds, and implements hot reload. The
// evaluation sites are the two mediation choke points — routeLocal for
// everything delivered on this host (local sends, inbound frames,
// recovered parks) and SendCtx for outbound remote forwards — so every
// message crosses exactly one policy gate per mediating host. Relays
// stay header-only: a relayed frame is mediated at its origin and at its
// final host, and the relay neither decodes nor evaluates it.
package firewall

import (
	"context"
	"errors"
	"fmt"

	"tax/internal/briefcase"
	"tax/internal/policy"
	"tax/internal/telemetry"
	"tax/internal/uri"
)

// policyOpFor classifies one mediation for rule matching: agent
// transfers are "transfer", management briefcases (or anything
// addressed to the firewall itself) "mgmt", everything else — plain
// messages, replies, error envelopes — "send".
func policyOpFor(target uri.URI, bc *briefcase.Briefcase) string {
	switch Kind(bc) {
	case KindTransfer:
		return policy.OpTransfer
	case KindManagement:
		return policy.OpMgmt
	}
	if target.Name == FirewallName {
		return policy.OpMgmt
	}
	return policy.OpSend
}

// parkPolicy holds a briefcase under a park verdict: journaled and
// timered like any parked message, but flagged so registration flushes
// skip it — only a policy reload (dispatching it afresh) or its expiry
// timer (returning a typed error to the sender) releases it.
func (fw *Firewall) parkPolicy(senderPrincipal string, target uri.URI, bc *briefcase.Briefcase, ruleID string) error {
	fw.mu.RLock()
	if fw.closed {
		fw.mu.RUnlock()
		return ErrClosed
	}
	fw.parkMsg(senderPrincipal, target, bc, true)
	fw.mu.RUnlock()
	fw.ctr.queued.Inc()
	fw.ctr.policyPark.Inc()
	fw.eventBC(bc, telemetry.EventPark, senderPrincipal, target.String(), "policy rule="+ruleID)
	return nil
}

// dispatch routes a briefcase that re-enters mediation outside a Send
// call (policy reload, crash recovery): local targets through
// routeLocal, remote ones through the policy gate and forwardRemote.
// Unlike SendCtx it does not re-stamp _SENDER or re-check sender
// liveness — the message was already admitted once; this is its held
// state moving, not a new send.
func (fw *Firewall) dispatch(senderPrincipal string, target uri.URI, bc *briefcase.Briefcase) error {
	if fw.isLocal(target) {
		return fw.routeLocal(senderPrincipal, target, bc)
	}
	ruleID := ""
	if eng := fw.cfg.Policy; eng != nil && senderPrincipal != fw.cfg.SystemPrincipal {
		v := eng.Eval(senderPrincipal, policyOpFor(target, bc), target)
		switch v.Effect {
		case policy.Deny:
			fw.ctr.policyDeny.Inc()
			fw.eventBC(bc, telemetry.EventDeny, senderPrincipal, target.String(), "policy rule="+v.RuleID)
			return fmt.Errorf("%w (rule %s)", ErrPolicyDenied, v.RuleID)
		case policy.Park:
			return fw.parkPolicy(senderPrincipal, target, bc, v.RuleID)
		}
		fw.ctr.policyAllow.Inc()
		ruleID = v.RuleID
	}
	return fw.forwardRemote(context.Background(), senderPrincipal, target, target.String(), bc, nil, ruleID)
}

// Policy returns the firewall's policy engine (nil when mediation runs
// the legacy trust checks only).
func (fw *Firewall) Policy() *policy.Engine { return fw.cfg.Policy }

// ReloadPolicy parses text and installs it as the active ruleset, then
// re-dispatches every policy-held parked message under the new rules: a
// now-allowed message delivers (or forwards), a still-parked one parks
// again with a fresh timeout, a now-denied one returns a typed error
// report to its sender. The parse happens before anything changes, so a
// ruleset that fails validation leaves the old one fully in effect —
// there is no partially-applied window, under concurrent mediation or
// otherwise. Returns the installed version number.
//
// Held messages are taken from the park table under the same stripe
// arbitration as registration flushes, so a message is released by
// exactly one of a concurrent reload and its expiry timer — reload
// mid-itinerary neither drops nor double-delivers.
func (fw *Firewall) ReloadPolicy(text string) (uint64, error) {
	eng := fw.cfg.Policy
	if eng == nil {
		return 0, errors.New("firewall: no policy engine configured")
	}
	rs, err := policy.Parse(text)
	if err != nil {
		fw.event(telemetry.EventError, fw.cfg.SystemPrincipal, FirewallName,
			"policy reload rejected: "+err.Error())
		return 0, err
	}
	v := eng.Install(rs)
	fw.event(telemetry.EventAllow, fw.cfg.SystemPrincipal, FirewallName,
		fmt.Sprintf("policy reload installed version %d (%d rules, %d quotas)", v, len(rs.Rules), len(rs.Quotas)))
	for _, p := range fw.park.takeHeld() {
		p.timer.Stop()
		fw.unjournalPark(p)
		if err := fw.dispatch(p.senderPrincipal, p.target, p.bc); err != nil {
			// The held message's new verdict is a rejection (or the
			// forward failed): tell the sender with the typed error the
			// verdict produced, the same envelope an inline denial sends.
			fw.replyHeldError(p, err)
		}
	}
	return v, nil
}

// replyHeldError reports a re-dispatch failure back to the held
// message's original sender (best effort, typed via _ERRCODE).
func (fw *Firewall) replyHeldError(p *pendingMsg, cause error) {
	senderStr, ok := p.bc.GetString(briefcase.FolderSysSender)
	if !ok {
		return
	}
	sender, err := uri.Parse(senderStr)
	if err != nil {
		return
	}
	fw.replyError(p.bc, sender, fmt.Sprintf("held message to %s: %v", p.target.String(), cause), cause)
}
