// URI patterns for the policy layer.
//
// A Pattern matches agent URIs component-wise with shell-style globs:
// '*' matches any run of characters inside one component, and '**' in
// the agent-id position (or as the whole pattern) matches everything
// below that point. Components are matched independently — a glob never
// crosses a '/' or ':' boundary — so "tacoma://*.uit.no/*/vm_*" reads
// the way it looks: any host under .uit.no, any principal, any agent
// whose name starts with vm_.
//
// The grammar mirrors the figure-2 URI notation:
//
//	pattern    = "**" | [ "tacoma://" hostglob [":" port] "/" ] agpattern
//	agpattern  = [ principalglob "/" ] idpattern
//	idpattern  = "**" | nameglob [ ":" instglob ]
//
// Presence semantics: an absent slot is unconstrained (a pattern with no
// host part matches targets on every host; no ':' means any or no
// instance), while a present-but-empty glob matches only the empty
// component (the paper's double-slash form "tacoma://h//vm_c" pins the
// empty principal). Host globs compare ASCII case-insensitively, like
// DNS names; principals, names and instances are case-sensitive. The
// port, when given, is a literal and compares against the target's
// effective port.
package uri

import (
	"fmt"
	"strconv"
	"strings"
)

// MaxPatternLen bounds ParsePattern input; longer strings are rejected
// before any per-component work (hostile rule text stays cheap).
const MaxPatternLen = 512

// MaxGlobLen bounds a single glob component (ValidGlob).
const MaxGlobLen = 256

// Pattern is a compiled URI pattern. The zero value matches nothing
// useful; obtain Patterns from ParsePattern.
type Pattern struct {
	text string

	all bool // bare "**": matches every URI

	hasHost bool   // pattern carries a host part
	host    string // host glob (star runs collapsed)
	port    int    // 0 = any port

	hasPrincipal bool   // pattern carries a principal slot
	principal    string // principal glob

	idAll   bool   // agent-id position is "**": any name, any instance
	name    string // name glob
	hasInst bool   // pattern carries an instance glob
	inst    string // instance glob, matched against lowercase hex
}

// ParsePattern compiles a pattern string. Errors name the offending
// component; hostile input never panics and is bounded by MaxPatternLen.
func ParsePattern(s string) (Pattern, error) {
	if s == "" {
		return Pattern{}, fmt.Errorf("%w: empty pattern", ErrParse)
	}
	if len(s) > MaxPatternLen {
		return Pattern{}, fmt.Errorf("%w: pattern longer than %d bytes", ErrParse, MaxPatternLen)
	}
	p := Pattern{text: s}
	if s == "**" {
		p.all = true
		return p, nil
	}
	rest := s
	if strings.HasPrefix(rest, Scheme) {
		rest = rest[len(Scheme):]
		slash := strings.IndexByte(rest, '/')
		if slash < 0 {
			return Pattern{}, fmt.Errorf("%w: %q: missing '/' after hostport", ErrParse, s)
		}
		hostport := rest[:slash]
		rest = rest[slash+1:]
		host := hostport
		if colon := strings.LastIndexByte(hostport, ':'); colon >= 0 {
			host = hostport[:colon]
			pt, err := strconv.Atoi(hostport[colon+1:])
			if err != nil || pt <= 0 || pt > 65535 {
				return Pattern{}, fmt.Errorf("%w: %q: bad port %q", ErrParse, s, hostport[colon+1:])
			}
			p.port = pt
		}
		if host == "" {
			return Pattern{}, fmt.Errorf("%w: %q: empty host glob", ErrParse, s)
		}
		if !ValidGlob(host) {
			return Pattern{}, fmt.Errorf("%w: %q: bad host glob %q", ErrParse, s, host)
		}
		p.hasHost = true
		p.host = collapseStars(host)
	}
	if slash := strings.LastIndexByte(rest, '/'); slash >= 0 {
		pr := rest[:slash]
		rest = rest[slash+1:]
		if pr != "" && !ValidGlob(pr) {
			return Pattern{}, fmt.Errorf("%w: %q: bad principal glob %q", ErrParse, s, pr)
		}
		p.hasPrincipal = true
		p.principal = collapseStars(pr)
	}
	if rest == "**" {
		p.idAll = true
		return p, nil
	}
	name := rest
	if colon := strings.IndexByte(rest, ':'); colon >= 0 {
		name = rest[:colon]
		inst := rest[colon+1:]
		if inst == "" {
			return Pattern{}, fmt.Errorf("%w: %q: empty instance glob after ':'", ErrParse, s)
		}
		if !ValidGlob(inst) {
			return Pattern{}, fmt.Errorf("%w: %q: bad instance glob %q", ErrParse, s, inst)
		}
		p.hasInst = true
		p.inst = collapseStars(inst)
	}
	if name == "**" {
		return Pattern{}, fmt.Errorf("%w: %q: '**' takes no instance glob", ErrParse, s)
	}
	if name != "" && !ValidGlob(name) {
		return Pattern{}, fmt.Errorf("%w: %q: bad name glob %q", ErrParse, s, name)
	}
	p.name = collapseStars(name)
	return p, nil
}

// MustPattern is ParsePattern that panics on error; for tests and
// constants.
func MustPattern(s string) Pattern {
	p, err := ParsePattern(s)
	if err != nil {
		panic(err)
	}
	return p
}

// String returns the pattern's source text.
func (p Pattern) String() string { return p.text }

// Match reports whether the pattern matches a target URI. A pattern with
// no host part matches regardless of the target's host; policy callers
// normalize local targets to the mediating host's name first so host
// globs see one canonical form. Match performs no allocation.
func (p Pattern) Match(u URI) bool {
	if p.all {
		return true
	}
	if p.hasHost {
		if !globMatch(p.host, u.Host, true) {
			return false
		}
		if p.port != 0 && u.EffectivePort() != p.port {
			return false
		}
	}
	if p.hasPrincipal && !globMatch(p.principal, u.Principal, false) {
		return false
	}
	if p.idAll {
		return true
	}
	if !globMatch(p.name, u.Name, false) {
		return false
	}
	if p.hasInst {
		if !u.HasInstance {
			return false
		}
		var buf [16]byte
		if !globMatchBytes(p.inst, strconv.AppendUint(buf[:0], u.Instance, 16)) {
			return false
		}
	}
	return true
}

// ValidGlob reports whether s is a well-formed glob component: at most
// MaxGlobLen bytes of name runes, '@' (principals embed host names after
// an '@'), or '*'. The empty string is a valid glob (it matches only the
// empty component).
func ValidGlob(s string) bool {
	if len(s) > MaxGlobLen {
		return false
	}
	for _, r := range s {
		if !isNameRune(r) && r != '*' && r != '@' {
			return false
		}
	}
	return true
}

// MatchGlob matches one component glob against a string: '*' matches any
// run of characters, everything else is literal. It performs no
// allocation and runs in O(len(pat)*len(s)) worst case with no recursion,
// so hostile patterns cannot blow the stack. Callers validate pat with
// ValidGlob first; MatchGlob itself accepts any bytes.
func MatchGlob(pat, s string) bool { return globMatch(collapseStars(pat), s, false) }

// collapseStars rewrites runs of '*' to a single star, so the matcher's
// backtracking is linear in the pattern and "a**b" means "a*b" anywhere a
// bare "**" is not special.
func collapseStars(s string) string {
	if !strings.Contains(s, "**") {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s))
	prevStar := false
	for i := 0; i < len(s); i++ {
		if s[i] == '*' {
			if prevStar {
				continue
			}
			prevStar = true
		} else {
			prevStar = false
		}
		sb.WriteByte(s[i])
	}
	return sb.String()
}

// globMatch is the iterative two-pointer glob matcher (star/mark
// backtracking). fold makes ASCII letters compare case-insensitively
// (host globs). Patterns are ASCII (ValidGlob), so byte-wise comparison
// is UTF-8 safe: an ASCII pattern byte never equals a continuation byte.
func globMatch(pat, s string, fold bool) bool {
	px, sx := 0, 0
	starPx, starSx := -1, 0
	for sx < len(s) {
		if px < len(pat) {
			c := pat[px]
			if c == '*' {
				starPx, starSx = px, sx
				px++
				continue
			}
			if eqByte(c, s[sx], fold) {
				px++
				sx++
				continue
			}
		}
		if starPx >= 0 {
			starSx++
			px = starPx + 1
			sx = starSx
			continue
		}
		return false
	}
	for px < len(pat) && pat[px] == '*' {
		px++
	}
	return px == len(pat)
}

// globMatchBytes is globMatch over a byte slice (no fold), so instance
// numbers match against stack-formatted hex without a string conversion.
func globMatchBytes(pat string, s []byte) bool {
	px, sx := 0, 0
	starPx, starSx := -1, 0
	for sx < len(s) {
		if px < len(pat) {
			c := pat[px]
			if c == '*' {
				starPx, starSx = px, sx
				px++
				continue
			}
			if c == s[sx] {
				px++
				sx++
				continue
			}
		}
		if starPx >= 0 {
			starSx++
			px = starPx + 1
			sx = starSx
			continue
		}
		return false
	}
	for px < len(pat) && pat[px] == '*' {
		px++
	}
	return px == len(pat)
}

func eqByte(a, b byte, fold bool) bool {
	if a == b {
		return true
	}
	if !fold {
		return false
	}
	return lowerByte(a) == lowerByte(b)
}

func lowerByte(b byte) byte {
	if b >= 'A' && b <= 'Z' {
		return b + ('a' - 'A')
	}
	return b
}
