package uri

import (
	"errors"
	"strings"
	"testing"
)

// mustURI parses a target URI or fails the test.
func mustURI(t *testing.T, s string) URI {
	t.Helper()
	u, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return u
}

// TestPatternMatchTable is the pattern matcher's behavior spec: one row
// per semantic rule, including the adversarial near-misses a lazy
// matcher would get wrong.
func TestPatternMatchTable(t *testing.T) {
	tests := []struct {
		name    string
		pattern string
		target  string
		want    bool
	}{
		// Bare "**" matches everything.
		{"all matches plain name", "**", "ag_fs", true},
		{"all matches full uri", "**", "tacoma://cl2.cs.uit.no:27017/tacoma@cl2.cs.uit.no/vm_c:933821661", true},
		{"all matches empty-principal form", "**", "tacoma://h//vm_c", true},

		// Literal name, no host/principal slots: unconstrained elsewhere.
		{"name literal hit", "ag_fs", "ag_fs", true},
		{"name literal miss", "ag_fs", "ag_fsx", false},
		{"no host slot matches any host", "ag_fs", "tacoma://anywhere.example/ag_fs", true},
		{"no principal slot matches any principal", "ag_fs", "tacoma://h/tacoma@h/ag_fs", true},
		{"no instance glob matches instanced", "ag_fs", "ag_fs:2a", true},
		{"no instance glob matches uninstanced", "ag_fs", "ag_fs", true},

		// '*' inside one component.
		{"star prefix", "vm_*", "vm_c", true},
		{"star prefix miss", "vm_*", "ag_fs", false},
		{"star matches empty run", "vm_*", "vm_", true},
		{"star both ends", "*fire*", "ag_firewall", true},
		{"two stars one component", "a*b*c", "aXbYc", true},
		{"two stars need order", "a*b*c", "acb", false},
		{"star does not cross principal slash", "tac*", "tacoma://h/tac/oma", false},

		// "**" in the agent-id position: any name, any instance.
		{"idAll any name", "tourist/**", "tourist/anything:ff", true},
		{"idAll still checks principal", "tourist/**", "other/anything", false},

		// Principal slot, including the present-but-empty form.
		{"principal literal", "tacoma@cl2.cs.uit.no/ag_cron", "tacoma://cl2.cs.uit.no/tacoma@cl2.cs.uit.no/ag_cron", true},
		{"principal glob", "tourist*/ag_fs", "tourist42/ag_fs", true},
		{"empty principal pins empty", "tacoma://h//vm_c", "tacoma://h//vm_c", true},
		{"empty principal rejects nonempty", "tacoma://h//vm_c", "tacoma://h/tacoma@h/vm_c", false},
		{"star principal accepts empty", "*/vm_c", "tacoma://h//vm_c", true},
		{"star principal accepts nonempty", "*/vm_c", "tacoma://h/anyone/vm_c", true},

		// Host slot: case-insensitive like DNS, literal port, default port.
		{"host literal", "tacoma://cl2.cs.uit.no/ag_fs", "tacoma://cl2.cs.uit.no/ag_fs", true},
		{"host folds case", "tacoma://CL2.CS.UIT.NO/ag_fs", "tacoma://cl2.cs.uit.no/ag_fs", true},
		{"host target case folds too", "tacoma://cl2.cs.uit.no/ag_fs", "tacoma://CL2.cs.UIT.no/ag_fs", true},
		{"host suffix glob", "tacoma://*.uit.no/ag_fs", "tacoma://cl2.cs.uit.no/ag_fs", true},
		{"host suffix glob miss", "tacoma://*.uit.no/ag_fs", "tacoma://cl2.cs.uit.nope/ag_fs", false},
		{"host glob does not cross port", "tacoma://h:27017/ag_fs", "tacoma://h:27018/ag_fs", false},
		{"pattern port vs default port", "tacoma://h:27017/ag_fs", "tacoma://h/ag_fs", true},
		{"pattern without port matches any port", "tacoma://h/ag_fs", "tacoma://h:40000/ag_fs", true},
		{"host slot rejects other host", "tacoma://h1/ag_fs", "tacoma://h2/ag_fs", false},
		{"host-scoped all matches empty principal", "tacoma://h/**", "tacoma://h//vm_go", true},
		{"host-scoped all matches nonempty principal", "tacoma://h/**", "tacoma://h/tourist/walker:2a", true},
		{"host-scoped all rejects other host", "tacoma://h/**", "tacoma://h2//vm_go", false},

		// Principal case sensitivity (unlike hosts).
		{"principal is case-sensitive", "Tourist/ag_fs", "tourist/ag_fs", false},
		{"name is case-sensitive", "AG_fs", "ag_fs", false},

		// Instance globs match the lowercase-hex rendering.
		{"instance literal hex", "vm_c:933821661", "vm_c:933821661", true},
		{"instance literal miss", "vm_c:933821661", "vm_c:933821662", false},
		{"instance glob", "vm_c:9*", "vm_c:933821661", true},
		{"instance star", "vm_c:*", "vm_c:2a", true},
		{"instance glob needs an instance", "vm_c:*", "vm_c", false},
		{"instance hex is lowercase", "vm_c:2a", "vm_c:2A", true}, // URI parse lowercases hex

		// Adversarial near-misses for the backtracking matcher.
		{"backtrack across repeats", "*ab", "aab", true},
		{"backtrack miss", "*ab", "aba", false},
		{"many stars still linear", "*a*a*a*a*a", "aaaa", false},
		{"many stars hit", "*a*a*a*a*a", "aaaaa", true},
		{"collapsed double star is single star", "a**b", "aXXb", true},
		{"collapsed double star no cross-component power", "tourist/a**b", "tourist/a/b", false},
		{"star name accepts empty name", "*", ":ff", true},
		{"trailing star after match", "ag_fs*", "ag_fs", true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, err := ParsePattern(tt.pattern)
			if err != nil {
				t.Fatalf("ParsePattern(%q): %v", tt.pattern, err)
			}
			u := mustURI(t, tt.target)
			if got := p.Match(u); got != tt.want {
				t.Errorf("Pattern(%q).Match(%q) = %v, want %v", tt.pattern, tt.target, got, tt.want)
			}
			if p.String() != tt.pattern {
				t.Errorf("String() = %q, want source text %q", p.String(), tt.pattern)
			}
		})
	}
}

// TestParsePatternErrors: hostile or malformed pattern text must fail
// with ErrParse and never panic.
func TestParsePatternErrors(t *testing.T) {
	bad := []string{
		"",
		"tacoma://h",               // missing '/' after hostport
		"tacoma:///ag_fs",          // empty host glob
		"tacoma://h:0/ag_fs",       // port out of range
		"tacoma://h:99999/ag_fs",   // port out of range
		"tacoma://h:x/ag_fs",       // non-numeric port
		"tacoma://h^host/ag_fs",    // bad host rune
		"bad^principal/ag_fs",      // bad principal rune
		"ag fs",                    // space in name glob
		"ag_fs:",                   // empty instance glob
		"ag_fs:zz!",                // bad instance rune
		"**:5",                     // '**' takes no instance glob
		strings.Repeat("a", 513),   // longer than MaxPatternLen
		"x/" + strings.Repeat("a", 300), // component over MaxGlobLen
	}
	for _, s := range bad {
		if _, err := ParsePattern(s); !errors.Is(err, ErrParse) {
			t.Errorf("ParsePattern(%q) = %v, want ErrParse", s, err)
		}
	}
}

// refGlob is the obviously-correct recursive glob matcher the iterative
// one is checked against.
func refGlob(pat, s string) bool {
	if pat == "" {
		return s == ""
	}
	if pat[0] == '*' {
		for i := 0; i <= len(s); i++ {
			if refGlob(pat[1:], s[i:]) {
				return true
			}
		}
		return false
	}
	return s != "" && pat[0] == s[0] && refGlob(pat[1:], s[1:])
}

// TestMatchGlobDifferential sweeps the iterative matcher against the
// recursive reference over a dense small alphabet, where every
// backtracking edge case lives.
func TestMatchGlobDifferential(t *testing.T) {
	alphabet := []byte("a*b")
	var patterns, subjects []string
	var gen func(prefix []byte, depth int, out *[]string, syms []byte)
	gen = func(prefix []byte, depth int, out *[]string, syms []byte) {
		*out = append(*out, string(prefix))
		if depth == 0 {
			return
		}
		for _, c := range syms {
			gen(append(prefix, c), depth-1, out, syms)
		}
	}
	gen(nil, 4, &patterns, alphabet)
	gen(nil, 4, &subjects, []byte("ab"))
	n := 0
	for _, p := range patterns {
		for _, s := range subjects {
			if got, want := MatchGlob(p, s), refGlob(p, s); got != want {
				t.Fatalf("MatchGlob(%q, %q) = %v, reference says %v", p, s, want, got)
			}
			n++
		}
	}
	if n < 1000 {
		t.Fatalf("differential sweep too small: %d cases", n)
	}
}

// FuzzPatternMatch: arbitrary pattern text either fails to parse or
// produces a matcher that agrees with the recursive reference on the
// glob components and never panics on arbitrary targets.
func FuzzPatternMatch(f *testing.F) {
	f.Add("**", "ag_fs")
	f.Add("tacoma://*.uit.no:27017/tour*/vm_*:9*", "tacoma://cl2.cs.uit.no/tourist/vm_c:933821661")
	f.Add("a**b", "aXb")
	f.Add("tacoma://h//vm_c", "tacoma://h//vm_c")
	f.Fuzz(func(t *testing.T, pat, target string) {
		p, err := ParsePattern(pat)
		if err != nil {
			return
		}
		u, err := Parse(target)
		if err != nil {
			return
		}
		_ = p.Match(u) // must not panic, must terminate
	})
}

// TestMatchGlobAllocs: the hot-path matcher must not allocate.
func TestMatchGlobAllocs(t *testing.T) {
	p := MustPattern("tacoma://*.uit.no/tour*/vm_*:9*")
	u := mustURI(t, "tacoma://cl2.cs.uit.no/tourist/vm_c:933821661")
	allocs := testing.AllocsPerRun(100, func() {
		if !p.Match(u) {
			t.Fatal("expected match")
		}
	})
	if allocs != 0 {
		t.Errorf("Pattern.Match allocates %v per run, want 0", allocs)
	}
}
