package uri

import "testing"

func BenchmarkParseFull(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse("tacoma://cl2.cs.uit.no:27017/tacoma@cl2/vm_c:933821661"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseLocal(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse("ag_exec"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkString(b *testing.B) {
	u := MustParse("tacoma://cl2.cs.uit.no:27018/alice/webbot:2a")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = u.String()
	}
}

func BenchmarkMatches(b *testing.B) {
	reg := MustParse("alice/webbot:2a")
	q := MustParse("webbot")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !reg.Matches(q) {
			b.Fatal("mismatch")
		}
	}
}
