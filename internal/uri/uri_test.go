package uri

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParsePaperExamples(t *testing.T) {
	tests := []struct {
		in   string
		want URI
	}{
		{
			// Double slash: empty principal.
			in: "tacoma://cl2.cs.uit.no:27017//vm_c:933821661",
			want: URI{
				Host: "cl2.cs.uit.no", Port: 27017,
				Name: "vm_c", Instance: 0x933821661, HasInstance: true,
			},
		},
		{
			in: "tacoma://cl2.cs.uit.no/tacoma@cl2.cs.uit.no/ag_cron",
			want: URI{
				Host:      "cl2.cs.uit.no",
				Principal: "tacoma@cl2.cs.uit.no",
				Name:      "ag_cron",
			},
		},
		{
			in: "tacomaproject/:933821661",
			want: URI{
				Principal: "tacomaproject",
				Instance:  0x933821661, HasInstance: true,
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			got, err := Parse(tt.in)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if !got.Equal(tt.want) {
				t.Errorf("Parse = %+v, want %+v", got, tt.want)
			}
		})
	}
}

func TestParseForms(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want URI
	}{
		{"name only", "ag_fs", URI{Name: "ag_fs"}},
		{"instance only", ":ff", URI{Instance: 0xff, HasInstance: true}},
		{"name and instance", "worker:a1", URI{Name: "worker", Instance: 0xa1, HasInstance: true}},
		{"principal and name", "alice/worker", URI{Principal: "alice", Name: "worker"}},
		{"remote default port", "tacoma://h1/sys/fw", URI{Host: "h1", Principal: "sys", Name: "fw"}},
		{"remote no principal", "tacoma://h1//ag", URI{Host: "h1", Name: "ag"}},
		{"remote bare class", "tacoma://h1/alice/", URI{Host: "h1", Principal: "alice"}},
		{"instance zero", "ag:0", URI{Name: "ag", HasInstance: true}},
		{"principal with at-sign", "bob@h2/ag", URI{Principal: "bob@h2", Name: "ag"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Parse(tt.in)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tt.in, err)
			}
			if !got.Equal(tt.want) {
				t.Errorf("Parse(%q) = %+v, want %+v", tt.in, got, tt.want)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	tests := []string{
		"",
		"tacoma://",            // no slash after hostport
		"tacoma:///ag",         // empty host
		"tacoma://h1:0/ag",     // bad port
		"tacoma://h1:notnum/x", // bad port
		"tacoma://h1:999999/x", // port out of range
		"ag:xyz-not-hex",       // bad instance
		"ag:",                  // empty instance
		"sp ace",               // bad name rune
		"tacoma://h ost/p/a",   // bad host rune
	}
	for _, in := range tests {
		t.Run(in, func(t *testing.T) {
			if _, err := Parse(in); !errors.Is(err, ErrParse) {
				t.Errorf("Parse(%q) err = %v, want ErrParse", in, err)
			}
		})
	}
}

func TestStringRoundTrip(t *testing.T) {
	inputs := []string{
		"tacoma://cl2.cs.uit.no:27018//vm_c:933821661",
		"tacoma://cl2.cs.uit.no/tacoma@cl2.cs.uit.no/ag_cron",
		"tacomaproject/:933821661",
		"ag_fs",
		":ff",
		"alice/worker:1",
	}
	for _, in := range inputs {
		u, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		back, err := Parse(u.String())
		if err != nil {
			t.Fatalf("reparse(%q -> %q): %v", in, u.String(), err)
		}
		if !u.Equal(back) {
			t.Errorf("round trip %q -> %q -> %+v != %+v", in, u.String(), back, u)
		}
	}
}

func TestStringDefaultPortElided(t *testing.T) {
	u := URI{Host: "h1", Port: DefaultPort, Name: "ag"}
	if got := u.String(); strings.Contains(got, ":27017") {
		t.Errorf("default port not elided: %q", got)
	}
	u.Port = 28000
	if got := u.String(); !strings.Contains(got, ":28000") {
		t.Errorf("non-default port missing: %q", got)
	}
}

func TestMatches(t *testing.T) {
	reg := URI{Principal: "alice", Name: "webbot", Instance: 7, HasInstance: true}
	tests := []struct {
		name  string
		query URI
		want  bool
	}{
		{"full match", URI{Principal: "alice", Name: "webbot", Instance: 7, HasInstance: true}, true},
		{"name only (class)", URI{Name: "webbot"}, true},
		{"instance only", URI{Instance: 7, HasInstance: true}, true},
		{"empty principal matches", URI{Name: "webbot", Instance: 7, HasInstance: true}, true},
		{"wrong name", URI{Name: "other"}, false},
		{"wrong instance", URI{Name: "webbot", Instance: 8, HasInstance: true}, false},
		{"wrong principal", URI{Principal: "bob", Name: "webbot"}, false},
		{"match anything", URI{}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := reg.Matches(tt.query); got != tt.want {
				t.Errorf("Matches(%+v) = %v, want %v", tt.query, got, tt.want)
			}
		})
	}
}

func TestHelpers(t *testing.T) {
	u := MustParse("ag_exec")
	if !u.IsLocal() {
		t.Error("name-only URI should be local")
	}
	r := u.WithHost("h2", 0)
	if r.IsLocal() || r.Host != "h2" || r.EffectivePort() != DefaultPort {
		t.Errorf("WithHost: %+v", r)
	}
	i := u.WithInstance(0xabc)
	if !i.HasInstance || i.Instance != 0xabc {
		t.Errorf("WithInstance: %+v", i)
	}
	// receiver unchanged (value semantics)
	if u.HasInstance || !u.IsLocal() {
		t.Errorf("receiver mutated: %+v", u)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic on bad input")
		}
	}()
	MustParse("::::")
}

// Property: String/Parse are inverse for generated URIs.
func TestPropStringParseInverse(t *testing.T) {
	names := []string{"ag", "vm_c", "ag_exec", "webbot", "a1-b.c"}
	hosts := []string{"", "h1", "cl2.cs.uit.no"}
	principals := []string{"", "alice", "tacoma@h1"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := URI{
			Host:      hosts[rng.Intn(len(hosts))],
			Principal: principals[rng.Intn(len(principals))],
			Name:      names[rng.Intn(len(names))],
		}
		if u.Host != "" && rng.Intn(2) == 0 {
			u.Port = 1024 + rng.Intn(60000)
		}
		if rng.Intn(2) == 0 {
			u.Instance = rng.Uint64()
			u.HasInstance = true
		}
		got, err := Parse(u.String())
		return err == nil && got.Equal(u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Parse never panics on arbitrary strings.
func TestPropParseTotal(t *testing.T) {
	f := func(s string) bool {
		u, err := Parse(s)
		if err != nil {
			return true
		}
		// Valid parses must round-trip.
		got, err := Parse(u.String())
		return err == nil && got.Equal(u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
