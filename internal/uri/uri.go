// Package uri parses and prints TACOMA agent URIs following the EBNF of
// figure 2 of the paper:
//
//	tacomauri  = [ "tacoma://" hostport "/" ] agpath
//	hostport   = host [ ":" port ]
//	agpath     = [ principal "/" ] agentid
//	agentid    = name ":" instance | name | ":" instance
//	name       = alphanum { alphanum }
//	instance   = hex { hex }
//
// Examples from the paper:
//
//	tacoma://cl2.cs.uit.no:27017//vm_c:933821661
//	tacoma://cl2.cs.uit.no/tacoma@cl2.cs.uit.no/ag_cron
//	tacomaproject/:933821661
//
// If the optional remote part is left out the target is local. If the
// principal is left out, only two principals are considered valid: the
// local system, or the principal of the mobile agent itself. Supplying
// only a name addresses a broader class of agents (e.g. service agents);
// supplying an instance number pins communication to one entity.
package uri

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Scheme is the URI scheme prefix for remote agent addresses.
const Scheme = "tacoma://"

// DefaultPort is the TCP port a TAX firewall listens on when no port is
// given (the paper's examples use 27017).
const DefaultPort = 27017

// ErrParse is wrapped by every parse failure.
var ErrParse = errors.New("uri: parse error")

// URI is a parsed agent address. The zero value is the "anything local"
// address: no host, no principal, no name, no instance.
type URI struct {
	// Host is the remote host name, empty for a local target.
	Host string
	// Port is the remote firewall port; meaningful only when Host is set.
	// Zero means DefaultPort.
	Port int
	// Principal is the principal path segment; empty means "local system
	// or the agent's own principal" per the paper.
	Principal string
	// Name is the agent name; empty when only an instance is given.
	Name string
	// Instance is the hexadecimal instance number; valid when HasInstance.
	Instance uint64
	// HasInstance distinguishes ":0" from "no instance given".
	HasInstance bool
}

// Parse parses s into a URI.
func Parse(s string) (URI, error) {
	var u URI
	rest := s
	if strings.HasPrefix(rest, Scheme) {
		rest = rest[len(Scheme):]
		slash := strings.IndexByte(rest, '/')
		if slash < 0 {
			return URI{}, fmt.Errorf("%w: %q: missing '/' after hostport", ErrParse, s)
		}
		hostport := rest[:slash]
		rest = rest[slash+1:]
		host, port, err := splitHostPort(hostport)
		if err != nil {
			return URI{}, fmt.Errorf("%w: %q: %v", ErrParse, s, err)
		}
		u.Host, u.Port = host, port
	}
	// rest is now agpath = [principal/] agentid
	if slash := strings.LastIndexByte(rest, '/'); slash >= 0 {
		u.Principal = rest[:slash]
		rest = rest[slash+1:]
	}
	if err := parseAgentID(rest, &u); err != nil {
		return URI{}, fmt.Errorf("%w: %q: %v", ErrParse, s, err)
	}
	if u.Host == "" && u.Principal == "" && u.Name == "" && !u.HasInstance {
		return URI{}, fmt.Errorf("%w: %q: empty agent id", ErrParse, s)
	}
	return u, nil
}

// MustParse is Parse that panics on error; for tests and constants.
func MustParse(s string) URI {
	u, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return u
}

func splitHostPort(hostport string) (string, int, error) {
	if hostport == "" {
		return "", 0, errors.New("empty host")
	}
	host := hostport
	port := 0
	if colon := strings.LastIndexByte(hostport, ':'); colon >= 0 {
		host = hostport[:colon]
		p, err := strconv.Atoi(hostport[colon+1:])
		if err != nil || p <= 0 || p > 65535 {
			return "", 0, fmt.Errorf("bad port %q", hostport[colon+1:])
		}
		port = p
	}
	if host == "" {
		return "", 0, errors.New("empty host")
	}
	for _, r := range host {
		if !isHostRune(r) {
			return "", 0, fmt.Errorf("bad host rune %q", r)
		}
	}
	return host, port, nil
}

func parseAgentID(id string, u *URI) error {
	if id == "" {
		return nil // bare principal path addresses the whole class
	}
	name := id
	if colon := strings.IndexByte(id, ':'); colon >= 0 {
		name = id[:colon]
		inst := id[colon+1:]
		if inst == "" {
			return errors.New("empty instance after ':'")
		}
		v, err := strconv.ParseUint(inst, 16, 64)
		if err != nil {
			return fmt.Errorf("bad instance %q", inst)
		}
		u.Instance = v
		u.HasInstance = true
	}
	if name != "" {
		for _, r := range name {
			if !isNameRune(r) {
				return fmt.Errorf("bad name rune %q", r)
			}
		}
	}
	u.Name = name
	return nil
}

func isNameRune(r rune) bool {
	return r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
		r >= '0' && r <= '9' || r == '_' || r == '-' || r == '.'
}

func isHostRune(r rune) bool {
	return isNameRune(r)
}

// String renders the URI back into the figure-2 notation. Parse(u.String())
// yields u for every valid URI.
func (u URI) String() string {
	var sb strings.Builder
	if u.Host != "" {
		sb.WriteString(Scheme)
		sb.WriteString(u.Host)
		if u.Port != 0 && u.Port != DefaultPort {
			sb.WriteByte(':')
			sb.WriteString(strconv.Itoa(u.Port))
		}
		sb.WriteByte('/')
	}
	if u.Principal != "" || u.Host != "" {
		// A remote URI always carries the principal slot (possibly empty,
		// producing the paper's double-slash form).
		sb.WriteString(u.Principal)
		sb.WriteByte('/')
	}
	sb.WriteString(u.Name)
	if u.HasInstance {
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatUint(u.Instance, 16))
	}
	return sb.String()
}

// IsLocal reports whether the URI names a local target (no remote part).
func (u URI) IsLocal() bool { return u.Host == "" }

// EffectivePort returns Port, or DefaultPort when unset.
func (u URI) EffectivePort() int {
	if u.Port == 0 {
		return DefaultPort
	}
	return u.Port
}

// WithHost returns a copy of u pinned to the given host and port.
func (u URI) WithHost(host string, port int) URI {
	u.Host, u.Port = host, port
	return u
}

// WithInstance returns a copy of u pinned to the given instance number.
func (u URI) WithInstance(inst uint64) URI {
	u.Instance, u.HasInstance = inst, true
	return u
}

// Matches reports whether a registered agent identity (the receiver,
// fully specified: name and instance) is addressed by the query q.
// Matching follows §3.2: a query may give only a name (addressing the
// class of agents with that name), only an instance, or both. The host
// part is not compared here — routing to the right host happens before
// matching. An empty query principal matches any principal (the firewall
// separately enforces that empty-principal queries may only reach the
// local system principal or the sender's own principal).
func (u URI) Matches(q URI) bool {
	if q.Name != "" && q.Name != u.Name {
		return false
	}
	if q.HasInstance && (!u.HasInstance || q.Instance != u.Instance) {
		return false
	}
	if q.Principal != "" && q.Principal != u.Principal {
		return false
	}
	return true
}

// Equal reports whether two URIs are identical in every field (with Port
// normalized through EffectivePort for remote URIs).
func (u URI) Equal(o URI) bool {
	if u.Host != o.Host || u.Principal != o.Principal || u.Name != o.Name ||
		u.HasInstance != o.HasInstance || u.Instance != o.Instance {
		return false
	}
	if u.Host != "" && u.EffectivePort() != o.EffectivePort() {
		return false
	}
	return true
}
