package identity

import (
	"errors"
	"testing"
	"testing/quick"
)

func newTestPrincipal(t *testing.T, name string) *Principal {
	t.Helper()
	p, err := NewPrincipal(name)
	if err != nil {
		t.Fatalf("NewPrincipal(%q): %v", name, err)
	}
	return p
}

func TestNewPrincipalValidation(t *testing.T) {
	if _, err := NewPrincipal(""); err == nil {
		t.Error("empty name accepted")
	}
	p := newTestPrincipal(t, "alice")
	if p.Name() != "alice" {
		t.Errorf("Name = %q", p.Name())
	}
	if len(p.KeyID()) != 16 {
		t.Errorf("KeyID length = %d, want 16 hex chars", len(p.KeyID()))
	}
}

func TestSignVerify(t *testing.T) {
	p := newTestPrincipal(t, "alice")
	msg := []byte("agent core bytes")
	sig := p.Sign(msg)
	if err := Verify(p.PublicKey(), msg, sig); err != nil {
		t.Errorf("Verify own signature: %v", err)
	}
	if err := Verify(p.PublicKey(), []byte("tampered"), sig); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered message: err = %v, want ErrBadSignature", err)
	}
	other := newTestPrincipal(t, "mallory")
	if err := Verify(other.PublicKey(), msg, sig); !errors.Is(err, ErrBadSignature) {
		t.Errorf("wrong key: err = %v, want ErrBadSignature", err)
	}
	if err := Verify(nil, msg, sig); !errors.Is(err, ErrBadSignature) {
		t.Errorf("nil key: err = %v, want ErrBadSignature", err)
	}
}

func TestTrustStoreLevels(t *testing.T) {
	var s TrustStore
	alice := newTestPrincipal(t, "alice")
	s.AddPrincipal(alice, Trusted)

	lvl, err := s.Level("alice")
	if err != nil || lvl != Trusted {
		t.Errorf("Level = %v, %v", lvl, err)
	}
	if _, err := s.Level("nobody"); !errors.Is(err, ErrUnknownPrincipal) {
		t.Errorf("unknown principal err = %v", err)
	}
	if err := s.Require("alice", Trusted); err != nil {
		t.Errorf("Require(Trusted): %v", err)
	}
	if err := s.Require("alice", System); !errors.Is(err, ErrInsufficientTrust) {
		t.Errorf("Require(System) err = %v, want ErrInsufficientTrust", err)
	}
}

func TestTrustStoreVerifyBy(t *testing.T) {
	var s TrustStore
	alice := newTestPrincipal(t, "alice")
	bob := newTestPrincipal(t, "bob")
	s.AddPrincipal(alice, Trusted)
	s.AddPrincipal(bob, Untrusted)

	msg := []byte("binary payload")
	if err := s.VerifyBy("alice", msg, alice.Sign(msg), Trusted); err != nil {
		t.Errorf("VerifyBy trusted signer: %v", err)
	}
	// Right signature, insufficient level.
	if err := s.VerifyBy("bob", msg, bob.Sign(msg), Trusted); !errors.Is(err, ErrInsufficientTrust) {
		t.Errorf("untrusted signer err = %v, want ErrInsufficientTrust", err)
	}
	// Signature by the wrong key.
	if err := s.VerifyBy("alice", msg, bob.Sign(msg), Untrusted); !errors.Is(err, ErrBadSignature) {
		t.Errorf("wrong signer err = %v, want ErrBadSignature", err)
	}
	if err := s.VerifyBy("nobody", msg, nil, Untrusted); !errors.Is(err, ErrUnknownPrincipal) {
		t.Errorf("unknown signer err = %v, want ErrUnknownPrincipal", err)
	}
}

func TestTrustStoreRemoveAndReplace(t *testing.T) {
	var s TrustStore
	alice := newTestPrincipal(t, "alice")
	s.AddPrincipal(alice, System)
	s.Remove("alice")
	if _, err := s.Level("alice"); !errors.Is(err, ErrUnknownPrincipal) {
		t.Errorf("after Remove: %v", err)
	}
	// Replacing downgrades.
	s.AddPrincipal(alice, System)
	s.AddPrincipal(alice, Untrusted)
	if lvl, _ := s.Level("alice"); lvl != Untrusted {
		t.Errorf("replace did not downgrade: %v", lvl)
	}
}

func TestTrustStoreKeyReturnsCopy(t *testing.T) {
	var s TrustStore
	alice := newTestPrincipal(t, "alice")
	s.AddPrincipal(alice, Trusted)
	k, err := s.Key("alice")
	if err != nil {
		t.Fatal(err)
	}
	k[0] ^= 0xFF
	k2, _ := s.Key("alice")
	if k2[0] == k[0] {
		t.Error("Key returned a live reference into the store")
	}
	if _, err := s.Key("nobody"); !errors.Is(err, ErrUnknownPrincipal) {
		t.Errorf("Key(nobody) err = %v", err)
	}
}

func TestTrustStoreNames(t *testing.T) {
	var s TrustStore
	if n := s.Names(); len(n) != 0 {
		t.Errorf("zero store names: %v", n)
	}
	s.AddPrincipal(newTestPrincipal(t, "a"), Trusted)
	s.AddPrincipal(newTestPrincipal(t, "b"), Trusted)
	if n := s.Names(); len(n) != 2 {
		t.Errorf("Names = %v", n)
	}
}

func TestLevelOrderingAndString(t *testing.T) {
	if !(Untrusted < Trusted && Trusted < System) {
		t.Error("trust levels not ordered")
	}
	for lvl, want := range map[Level]string{Untrusted: "untrusted", Trusted: "trusted", System: "system", Level(9): "Level(9)"} {
		if lvl.String() != want {
			t.Errorf("%d.String() = %q, want %q", lvl, lvl.String(), want)
		}
	}
}

// Property: signatures verify iff message and key match.
func TestPropSignatureSoundness(t *testing.T) {
	alice, err := NewPrincipal("alice")
	if err != nil {
		t.Fatal(err)
	}
	f := func(msg []byte, flip uint8, pos uint16) bool {
		sig := alice.Sign(msg)
		if Verify(alice.PublicKey(), msg, sig) != nil {
			return false
		}
		if len(msg) == 0 {
			return true
		}
		// Any single-bit flip must break verification.
		tampered := append([]byte{}, msg...)
		tampered[int(pos)%len(msg)] ^= 1 << (flip % 8)
		if string(tampered) == string(msg) {
			return true
		}
		return Verify(alice.PublicKey(), tampered, sig) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
