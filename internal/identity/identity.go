// Package identity implements principals, code signing and trust for TAX.
//
// The paper's firewall performs "an initial authentication, based on
// parameters such as the presence of a signed agent core or the presence
// of an authenticated and trusted sender" (§3.2), and vm_bin "executes
// binaries directly on top of the operating system, provided the binary is
// signed by a trusted principal" (§3.3). This package provides the
// primitives both rely on: named principals backed by ed25519 keypairs,
// detached signatures over byte strings, and per-host trust stores that
// map public keys to trust levels.
package identity

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
)

// Level is the trust level a host assigns to a principal. Higher levels
// imply the rights of lower ones.
type Level int

// Trust levels, lowest to highest.
const (
	// Untrusted principals may run only in safety-enforcing VMs and may
	// not address the firewall's management interface.
	Untrusted Level = iota + 1
	// Trusted principals may execute native binaries via vm_bin.
	Trusted
	// System is the local system principal: full management rights
	// (list, kill, stop agents) per §3.2.
	System
)

// String returns the level name.
func (l Level) String() string {
	switch l {
	case Untrusted:
		return "untrusted"
	case Trusted:
		return "trusted"
	case System:
		return "system"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

var (
	// ErrUnknownPrincipal is returned when a principal is not in the store.
	ErrUnknownPrincipal = errors.New("identity: unknown principal")
	// ErrBadSignature is returned when signature verification fails.
	ErrBadSignature = errors.New("identity: bad signature")
	// ErrInsufficientTrust is returned when an operation requires a higher
	// trust level than the principal holds.
	ErrInsufficientTrust = errors.New("identity: insufficient trust")
)

// Principal is a named identity holding an ed25519 keypair. The private
// key never leaves the Principal; only PublicKey is shared.
type Principal struct {
	name string
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewPrincipal generates a fresh principal with the given name.
func NewPrincipal(name string) (*Principal, error) {
	if name == "" {
		return nil, errors.New("identity: empty principal name")
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("identity: generate key: %w", err)
	}
	return &Principal{name: name, pub: pub, priv: priv}, nil
}

// Name returns the principal's name.
func (p *Principal) Name() string { return p.name }

// PublicKey returns the principal's public key.
func (p *Principal) PublicKey() ed25519.PublicKey { return p.pub }

// KeyID returns a short hex identifier of the public key, convenient for
// logs and trust-store listings.
func (p *Principal) KeyID() string { return hex.EncodeToString(p.pub[:8]) }

// Sign produces a detached signature over msg.
func (p *Principal) Sign(msg []byte) []byte {
	return ed25519.Sign(p.priv, msg)
}

// Verify checks a detached signature against a public key.
func Verify(pub ed25519.PublicKey, msg, sig []byte) error {
	if len(pub) != ed25519.PublicKeySize {
		return fmt.Errorf("%w: bad key size %d", ErrBadSignature, len(pub))
	}
	if !ed25519.Verify(pub, msg, sig) {
		return ErrBadSignature
	}
	return nil
}

// TrustStore maps principal names to their public keys and trust levels.
// It is the host-local authority the firewall and vm_bin consult. A zero
// TrustStore is ready to use; methods are safe for concurrent use.
type TrustStore struct {
	mu      sync.RWMutex
	entries map[string]trustEntry
}

type trustEntry struct {
	pub   ed25519.PublicKey
	level Level
}

// Add registers (or replaces) a principal's public key at the given level.
func (s *TrustStore) Add(name string, pub ed25519.PublicKey, level Level) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.entries == nil {
		s.entries = make(map[string]trustEntry)
	}
	k := make(ed25519.PublicKey, len(pub))
	copy(k, pub)
	s.entries[name] = trustEntry{pub: k, level: level}
}

// AddPrincipal registers a principal's public key at the given level.
func (s *TrustStore) AddPrincipal(p *Principal, level Level) {
	s.Add(p.Name(), p.PublicKey(), level)
}

// Remove deletes a principal from the store.
func (s *TrustStore) Remove(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.entries, name)
}

// Level returns the trust level of the named principal.
func (s *TrustStore) Level(name string) (Level, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownPrincipal, name)
	}
	return e.level, nil
}

// Key returns the public key of the named principal.
func (s *TrustStore) Key(name string) (ed25519.PublicKey, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPrincipal, name)
	}
	k := make(ed25519.PublicKey, len(e.pub))
	copy(k, e.pub)
	return k, nil
}

// VerifyBy checks that sig is a valid signature by the named principal
// over msg, and that the principal holds at least the required level.
func (s *TrustStore) VerifyBy(name string, msg, sig []byte, required Level) error {
	s.mu.RLock()
	e, ok := s.entries[name]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPrincipal, name)
	}
	if err := Verify(e.pub, msg, sig); err != nil {
		return fmt.Errorf("principal %q: %w", name, err)
	}
	if e.level < required {
		return fmt.Errorf("%w: %q is %v, need %v", ErrInsufficientTrust, name, e.level, required)
	}
	return nil
}

// Require returns nil when the named principal holds at least the
// required level.
func (s *TrustStore) Require(name string, required Level) error {
	lvl, err := s.Level(name)
	if err != nil {
		return err
	}
	if lvl < required {
		return fmt.Errorf("%w: %q is %v, need %v", ErrInsufficientTrust, name, lvl, required)
	}
	return nil
}

// Names returns the registered principal names (unordered).
func (s *TrustStore) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.entries))
	for n := range s.entries {
		out = append(out, n)
	}
	return out
}
