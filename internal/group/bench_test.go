package group

import (
	"fmt"
	"testing"
)

func BenchmarkFIFOStampReceive(b *testing.B) {
	members := []string{"a", "b"}
	snd, _ := NewEngine("a", members, FIFO)
	rcv, _ := NewEngine("b", members, FIFO)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := snd.Stamp(nil)
		if _, err := rcv.Receive(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCausalStampReceive(b *testing.B) {
	members := []string{"a", "b"}
	snd, _ := NewEngine("a", members, Causal)
	rcv, _ := NewEngine("b", members, Causal)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := snd.Stamp(nil)
		if _, err := rcv.Receive(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTotalSequencedReceive(b *testing.B) {
	members := []string{"seq", "a"}
	seq, _ := NewEngine("seq", members, Total)
	snd, _ := NewEngine("a", members, Total)
	rcv, _ := NewEngine("seq", members, Total)
	_ = rcv
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := snd.Stamp(nil)
		seq.Sequence(&env)
		if _, err := seq.Receive(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVCEncodeDecode(b *testing.B) {
	vc := VectorClock{}
	for i := 0; i < 8; i++ {
		vc[fmt.Sprintf("member-%d", i)] = uint64(i * 1000)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeVC(vc.Encode()); err != nil {
			b.Fatal(err)
		}
	}
}
