package group

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustEngine(t *testing.T, self string, members []string, o Ordering) *Engine {
	t.Helper()
	e, err := NewEngine(self, members, o)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine("x", []string{"a", "b"}, FIFO); !errors.Is(err, ErrUnknownMember) {
		t.Errorf("self outside members: %v", err)
	}
	e := mustEngine(t, "a", []string{"b", "a"}, FIFO)
	got := e.Members()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Members = %v", got)
	}
	if e.Self() != "a" {
		t.Errorf("Self = %q", e.Self())
	}
}

func TestFIFOInOrderDelivery(t *testing.T) {
	a := mustEngine(t, "a", []string{"a", "b"}, FIFO)
	b := mustEngine(t, "b", []string{"a", "b"}, FIFO)
	e1 := a.Stamp([]byte("m1"))
	e2 := a.Stamp([]byte("m2"))
	out, err := b.Receive(e1)
	if err != nil || len(out) != 1 || string(out[0].Payload) != "m1" {
		t.Fatalf("first delivery: %v %v", out, err)
	}
	out, _ = b.Receive(e2)
	if len(out) != 1 || string(out[0].Payload) != "m2" {
		t.Fatalf("second delivery: %v", out)
	}
}

func TestFIFOReordersOutOfOrderArrival(t *testing.T) {
	a := mustEngine(t, "a", []string{"a", "b"}, FIFO)
	b := mustEngine(t, "b", []string{"a", "b"}, FIFO)
	e1 := a.Stamp([]byte("m1"))
	e2 := a.Stamp([]byte("m2"))
	e3 := a.Stamp([]byte("m3"))

	out, _ := b.Receive(e3)
	if len(out) != 0 {
		t.Fatalf("delivered ahead of order: %v", out)
	}
	if b.Held() != 1 {
		t.Errorf("held = %d", b.Held())
	}
	out, _ = b.Receive(e1)
	if len(out) != 1 || string(out[0].Payload) != "m1" {
		t.Fatalf("after e1: %v", out)
	}
	out, _ = b.Receive(e2)
	if len(out) != 2 || string(out[0].Payload) != "m2" || string(out[1].Payload) != "m3" {
		t.Fatalf("after e2 (flush): %v", out)
	}
	if b.Held() != 0 {
		t.Errorf("held after flush = %d", b.Held())
	}
}

func TestFIFOIndependentSenders(t *testing.T) {
	members := []string{"a", "b", "c"}
	a := mustEngine(t, "a", members, FIFO)
	b := mustEngine(t, "b", members, FIFO)
	c := mustEngine(t, "c", members, FIFO)
	ea := a.Stamp([]byte("from-a"))
	eb := b.Stamp([]byte("from-b"))
	// c receives b's first message then a's: both deliverable immediately
	// (FIFO constrains only per-sender order).
	out, _ := c.Receive(eb)
	if len(out) != 1 {
		t.Fatalf("b's message held: %v", out)
	}
	out, _ = c.Receive(ea)
	if len(out) != 1 {
		t.Fatalf("a's message held: %v", out)
	}
}

func TestRejectsUnknownSender(t *testing.T) {
	b := mustEngine(t, "b", []string{"a", "b"}, FIFO)
	if _, err := b.Receive(Envelope{Sender: "zz", Seq: 1}); !errors.Is(err, ErrUnknownMember) {
		t.Errorf("unknown sender err = %v", err)
	}
}

func TestCausalDelaysUntilDependenciesMet(t *testing.T) {
	members := []string{"a", "b", "c"}
	a := mustEngine(t, "a", members, Causal)
	b := mustEngine(t, "b", members, Causal)
	c := mustEngine(t, "c", members, Causal)

	// a sends m1; b receives it, then sends m2 (causally after m1).
	m1 := a.Stamp([]byte("m1"))
	if out, _ := b.Receive(m1); len(out) != 1 {
		t.Fatal("b did not deliver m1")
	}
	m2 := b.Stamp([]byte("m2"))

	// c receives m2 BEFORE m1: must hold m2.
	out, _ := c.Receive(m2)
	if len(out) != 0 {
		t.Fatalf("causal violation: delivered %v", out)
	}
	out, _ = c.Receive(m1)
	if len(out) != 2 || string(out[0].Payload) != "m1" || string(out[1].Payload) != "m2" {
		t.Fatalf("causal flush order: %v", out)
	}
}

func TestCausalConcurrentMessagesDeliverable(t *testing.T) {
	members := []string{"a", "b", "c"}
	a := mustEngine(t, "a", members, Causal)
	b := mustEngine(t, "b", members, Causal)
	c := mustEngine(t, "c", members, Causal)

	ma := a.Stamp([]byte("ma")) // concurrent with mb
	mb := b.Stamp([]byte("mb"))
	out, _ := c.Receive(mb)
	if len(out) != 1 {
		t.Fatalf("concurrent mb held: %v", out)
	}
	out, _ = c.Receive(ma)
	if len(out) != 1 {
		t.Fatalf("concurrent ma held: %v", out)
	}
}

func TestTotalOrderViaSequencer(t *testing.T) {
	members := []string{"seq", "a", "b"}
	seq := mustEngine(t, "seq", members, Total)
	a := mustEngine(t, "a", members, Total)
	b := mustEngine(t, "b", members, Total)

	// Two concurrent sends hit the sequencer, which assigns slots.
	ea := a.Stamp([]byte("from-a"))
	eb := b.Stamp([]byte("from-b"))
	seq.Sequence(&eb) // b's message sequenced first
	seq.Sequence(&ea)

	// Both members must deliver in sequencer order regardless of arrival.
	outA1, _ := a.Receive(ea) // arrives out of order at a
	if len(outA1) != 0 {
		t.Fatalf("a delivered slot-2 first: %v", outA1)
	}
	outA2, _ := a.Receive(eb)
	if len(outA2) != 2 || string(outA2[0].Payload) != "from-b" || string(outA2[1].Payload) != "from-a" {
		t.Fatalf("a delivery order: %v", outA2)
	}
	outB1, _ := b.Receive(eb)
	outB2, _ := b.Receive(ea)
	if len(outB1) != 1 || len(outB2) != 1 ||
		string(outB1[0].Payload) != "from-b" || string(outB2[0].Payload) != "from-a" {
		t.Fatalf("b delivery order: %v %v", outB1, outB2)
	}
}

func TestSequencerAlsoDelivers(t *testing.T) {
	// Regression: the sequencer is usually itself a group member; slot
	// allocation must not advance its own delivery cursor.
	members := []string{"seq", "a"}
	seq := mustEngine(t, "seq", members, Total)
	a := mustEngine(t, "a", members, Total)

	e1 := a.Stamp([]byte("m1"))
	seq.Sequence(&e1)
	e2 := a.Stamp([]byte("m2"))
	seq.Sequence(&e2)

	out, err := seq.Receive(e1)
	if err != nil || len(out) != 1 || string(out[0].Payload) != "m1" {
		t.Fatalf("sequencer delivery of slot 1: %v %v", out, err)
	}
	out, _ = seq.Receive(e2)
	if len(out) != 1 || string(out[0].Payload) != "m2" {
		t.Fatalf("sequencer delivery of slot 2: %v", out)
	}
	if seq.Held() != 0 {
		t.Errorf("sequencer held %d", seq.Held())
	}
}

func TestVectorClockOps(t *testing.T) {
	v := VectorClock{"a": 1, "b": 2}
	w := v.Clone()
	w["a"] = 5
	if v["a"] != 1 {
		t.Error("Clone aliases the map")
	}
	if !v.LessEq(w) {
		t.Error("v should be ≤ w")
	}
	if w.LessEq(v) {
		t.Error("w should not be ≤ v")
	}
	v.Merge(w)
	if v["a"] != 5 || v["b"] != 2 {
		t.Errorf("Merge: %v", v)
	}
}

func TestVCEncodeDecode(t *testing.T) {
	v := VectorClock{"b": 2, "a": 10}
	if v.Encode() != "a=10,b=2" {
		t.Errorf("Encode = %q", v.Encode())
	}
	got, err := DecodeVC("a=10,b=2")
	if err != nil || got["a"] != 10 || got["b"] != 2 {
		t.Errorf("DecodeVC = %v, %v", got, err)
	}
	if got, err := DecodeVC(""); err != nil || len(got) != 0 {
		t.Errorf("empty decode = %v, %v", got, err)
	}
	for _, bad := range []string{"a", "=1", "a=x", "a=1,,b=2"} {
		if _, err := DecodeVC(bad); err == nil {
			t.Errorf("DecodeVC(%q) accepted", bad)
		}
	}
}

func TestEnvelopeMetaRoundTrip(t *testing.T) {
	env := Envelope{Sender: "a", Seq: 7, GlobalSeq: 42, VC: VectorClock{"a": 7, "b": 1}}
	got, err := DecodeMeta(env.EncodeMeta())
	if err != nil {
		t.Fatal(err)
	}
	if got.Sender != "a" || got.Seq != 7 || got.GlobalSeq != 42 || got.VC["b"] != 1 {
		t.Errorf("round trip: %+v", got)
	}
	for _, bad := range []string{"", "a|1", "|1|2|", "a|x|2|", "a|1|x|"} {
		if _, err := DecodeMeta(bad); err == nil {
			t.Errorf("DecodeMeta(%q) accepted", bad)
		}
	}
}

// Property: FIFO delivery preserves per-sender send order under any
// arrival permutation, and every message is eventually delivered.
func TestPropFIFOPermutationSafe(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		members := []string{"a", "b", "r"}
		a, _ := NewEngine("a", members, FIFO)
		b, _ := NewEngine("b", members, FIFO)
		r, _ := NewEngine("r", members, FIFO)

		var envs []Envelope
		na, nb := 1+rng.Intn(5), 1+rng.Intn(5)
		for i := 0; i < na; i++ {
			envs = append(envs, a.Stamp([]byte{byte('a'), byte(i)}))
		}
		for i := 0; i < nb; i++ {
			envs = append(envs, b.Stamp([]byte{byte('b'), byte(i)}))
		}
		rng.Shuffle(len(envs), func(i, j int) { envs[i], envs[j] = envs[j], envs[i] })

		var delivered []Envelope
		for _, env := range envs {
			out, err := r.Receive(env)
			if err != nil {
				return false
			}
			delivered = append(delivered, out...)
		}
		if len(delivered) != na+nb || r.Held() != 0 {
			return false
		}
		// Per-sender order must be send order.
		last := map[string]uint64{}
		for _, d := range delivered {
			if d.Seq != last[d.Sender]+1 {
				return false
			}
			last[d.Sender] = d.Seq
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: total order delivers identically on every member under any
// arrival permutation.
func TestPropTotalOrderAgreement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		members := []string{"seq", "a", "b"}
		seqr, _ := NewEngine("seq", members, Total)
		a, _ := NewEngine("a", members, Total)
		b, _ := NewEngine("b", members, Total)

		n := 1 + rng.Intn(8)
		envs := make([]Envelope, n)
		for i := range envs {
			src := a
			if rng.Intn(2) == 0 {
				src = b
			}
			envs[i] = src.Stamp([]byte{byte(i)})
			seqr.Sequence(&envs[i])
		}
		deliver := func(e *Engine) ([]byte, bool) {
			perm := rng.Perm(n)
			var got []byte
			for _, i := range perm {
				out, err := e.Receive(envs[i])
				if err != nil {
					return nil, false
				}
				for _, d := range out {
					got = append(got, d.Payload[0])
				}
			}
			return got, len(got) == n
		}
		ga, oka := deliver(a)
		gb, okb := deliver(b)
		if !oka || !okb {
			return false
		}
		for i := range ga {
			if ga[i] != gb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: causal delivery never violates happened-before under any
// arrival permutation of a causal chain.
func TestPropCausalChain(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		members := []string{"a", "b", "c"}
		a, _ := NewEngine("a", members, Causal)
		b, _ := NewEngine("b", members, Causal)
		c, _ := NewEngine("c", members, Causal)

		// Build a causal chain alternating a→b→a→b...
		var chain []Envelope
		cur, other := a, b
		n := 2 + rng.Intn(6)
		for i := 0; i < n; i++ {
			env := cur.Stamp([]byte{byte(i)})
			if _, err := other.Receive(env); err != nil {
				return false
			}
			chain = append(chain, env)
			cur, other = other, cur
		}
		perm := rng.Perm(len(chain))
		var got []byte
		for _, i := range perm {
			out, err := c.Receive(chain[i])
			if err != nil {
				return false
			}
			for _, d := range out {
				got = append(got, d.Payload[0])
			}
		}
		if len(got) != n || c.Held() != 0 {
			return false
		}
		// The chain is totally causally ordered: delivery must be 0..n-1.
		for i, v := range got {
			if int(v) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
