// Package group implements the group-communication substrate behind the
// paper's group wrapper (§4): "As the wrapper is instantiated, it is
// given parameters such as group membership (all agents sharing common
// class), and desired properties of communication (casual, FIFO, atomic,
// etc)."
//
// The package provides per-member ordering engines, independent of
// transport: callers feed received envelopes in and take deliverable
// messages out. Three orderings are offered:
//
//   - FIFO: per-sender order (sequence numbers + reorder buffer).
//   - Causal: vector-clock causal order.
//   - Total: a sequencer member assigns a global order ("atomic"
//     broadcast in the paper's vocabulary).
//
// The stacking mirrors Horus/Ensemble, which the paper cites as its
// architectural precedent.
package group

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Ordering selects the delivery guarantee of a channel.
type Ordering int

// Supported orderings.
const (
	// FIFO delivers each sender's messages in send order.
	FIFO Ordering = iota + 1
	// Causal delivers messages respecting potential causality.
	Causal
	// Total delivers all messages in one global order on every member.
	Total
)

// String returns the ordering name.
func (o Ordering) String() string {
	switch o {
	case FIFO:
		return "fifo"
	case Causal:
		return "causal"
	case Total:
		return "total"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// ParseOrdering parses "fifo", "causal" or "total".
func ParseOrdering(s string) (Ordering, error) {
	switch s {
	case "fifo":
		return FIFO, nil
	case "causal":
		return Causal, nil
	case "total":
		return Total, nil
	default:
		return 0, fmt.Errorf("group: unknown ordering %q", s)
	}
}

// Envelope is one group message with its ordering metadata. Envelopes are
// rendered into briefcase folders by the wrapper; this package only needs
// the metadata.
type Envelope struct {
	// Sender is the member id of the originator.
	Sender string
	// Seq is the per-sender sequence number (FIFO, Total with sequencer
	// stamping GlobalSeq).
	Seq uint64
	// GlobalSeq is the sequencer-assigned slot (Total only).
	GlobalSeq uint64
	// VC is the sender's vector clock at send time (Causal only).
	VC VectorClock
	// Payload is the application message, opaque to the engine.
	Payload []byte
}

// VectorClock maps member ids to event counts.
type VectorClock map[string]uint64

// Clone copies the clock.
func (v VectorClock) Clone() VectorClock {
	c := make(VectorClock, len(v))
	for k, n := range v {
		c[k] = n
	}
	return c
}

// LessEq reports whether v ≤ o componentwise (v happened-before-or-equal).
func (v VectorClock) LessEq(o VectorClock) bool {
	for k, n := range v {
		if n > o[k] {
			return false
		}
	}
	return true
}

// Merge takes the componentwise maximum of v and o into v.
func (v VectorClock) Merge(o VectorClock) {
	for k, n := range o {
		if n > v[k] {
			v[k] = n
		}
	}
}

// Encode renders the clock as "a=1,b=2" with keys sorted.
func (v VectorClock) Encode() string {
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+strconv.FormatUint(v[k], 10))
	}
	return strings.Join(parts, ",")
}

// DecodeVC parses the Encode format.
func DecodeVC(s string) (VectorClock, error) {
	v := VectorClock{}
	if s == "" {
		return v, nil
	}
	for _, part := range strings.Split(s, ",") {
		k, n, ok := strings.Cut(part, "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("group: bad vector clock component %q", part)
		}
		c, err := strconv.ParseUint(n, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("group: bad vector clock count %q", n)
		}
		v[k] = c
	}
	return v, nil
}

// ErrUnknownMember is returned when an envelope names a member outside
// the group.
var ErrUnknownMember = errors.New("group: unknown member")

// Engine is one member's ordering state: it stamps outgoing envelopes
// and buffers incoming ones until they are deliverable. Engines are safe
// for concurrent use.
type Engine struct {
	mu       sync.Mutex
	self     string
	members  map[string]bool
	ordering Ordering

	// FIFO/Total: next expected per-sender seq; Total: delivery cursor
	// (nextGlobal) and the sequencer's allocation counter (seqAlloc) —
	// kept separate so a sequencer that is also a delivering member does
	// not corrupt its own delivery order by assigning slots.
	sendSeq    uint64
	nextRecv   map[string]uint64
	nextGlobal uint64
	seqAlloc   uint64
	// Causal state.
	vc VectorClock
	// held are undeliverable envelopes waiting for their predecessors.
	held []Envelope
}

// NewEngine creates a member's engine. members must include self.
func NewEngine(self string, members []string, ordering Ordering) (*Engine, error) {
	set := make(map[string]bool, len(members))
	for _, m := range members {
		set[m] = true
	}
	if !set[self] {
		return nil, fmt.Errorf("%w: self %q not in member list", ErrUnknownMember, self)
	}
	e := &Engine{
		self:     self,
		members:  set,
		ordering: ordering,
		nextRecv: make(map[string]uint64),
		vc:       VectorClock{},
	}
	for m := range set {
		e.nextRecv[m] = 1
	}
	return e, nil
}

// Self returns the member id.
func (e *Engine) Self() string { return e.self }

// Members returns the sorted member ids.
func (e *Engine) Members() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.members))
	for m := range e.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Stamp prepares an outgoing envelope: assigns the sender id, sequence
// number and (for Causal) the vector clock. For Total ordering the
// envelope still needs a GlobalSeq from the sequencer before delivery.
func (e *Engine) Stamp(payload []byte) Envelope {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sendSeq++
	env := Envelope{Sender: e.self, Seq: e.sendSeq, Payload: payload}
	if e.ordering == Causal {
		e.vc[e.self]++
		env.VC = e.vc.Clone()
	}
	return env
}

// Sequence assigns the next global slot; only the group's sequencer
// member calls it (Total ordering).
func (e *Engine) Sequence(env *Envelope) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.seqAlloc++
	env.GlobalSeq = e.seqAlloc
}

// Receive feeds an incoming envelope and returns every envelope that
// became deliverable, in delivery order. Sends from members outside the
// group are rejected.
func (e *Engine) Receive(env Envelope) ([]Envelope, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.members[env.Sender] {
		return nil, fmt.Errorf("%w: %q", ErrUnknownMember, env.Sender)
	}
	e.held = append(e.held, env)
	var out []Envelope
	for {
		i := e.deliverableLocked()
		if i < 0 {
			break
		}
		d := e.held[i]
		e.held = append(e.held[:i], e.held[i+1:]...)
		e.applyLocked(d)
		out = append(out, d)
	}
	return out, nil
}

// deliverableLocked finds a held envelope that may be delivered now.
func (e *Engine) deliverableLocked() int {
	for i, env := range e.held {
		switch e.ordering {
		case FIFO:
			if env.Seq == e.nextRecv[env.Sender] {
				return i
			}
		case Total:
			if env.GlobalSeq == e.nextGlobal+1 {
				return i
			}
		case Causal:
			if e.causallyReadyLocked(env) {
				return i
			}
		}
	}
	return -1
}

// causallyReadyLocked: deliverable when the envelope is the sender's next
// event and every other dependency is already reflected locally.
func (e *Engine) causallyReadyLocked(env Envelope) bool {
	for m, n := range env.VC {
		if m == env.Sender {
			if n != e.vc[m]+1 {
				return false
			}
			continue
		}
		if n > e.vc[m] {
			return false
		}
	}
	return true
}

// applyLocked updates delivery state for a delivered envelope.
func (e *Engine) applyLocked(env Envelope) {
	switch e.ordering {
	case FIFO:
		e.nextRecv[env.Sender] = env.Seq + 1
	case Total:
		e.nextGlobal = env.GlobalSeq
	case Causal:
		e.vc.Merge(env.VC)
	}
}

// Held returns how many envelopes are buffered awaiting predecessors.
func (e *Engine) Held() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.held)
}

// Envelope wire helpers: the wrapper stores these fields in briefcase
// folders; keeping the codec here keeps the two sides consistent.

// EncodeMeta renders ordering metadata as "sender|seq|gseq|vc".
func (env Envelope) EncodeMeta() string {
	return strings.Join([]string{
		env.Sender,
		strconv.FormatUint(env.Seq, 10),
		strconv.FormatUint(env.GlobalSeq, 10),
		env.VC.Encode(),
	}, "|")
}

// DecodeMeta parses EncodeMeta output into an envelope (payload not
// included).
func DecodeMeta(s string) (Envelope, error) {
	parts := strings.SplitN(s, "|", 4)
	if len(parts) != 4 || parts[0] == "" {
		return Envelope{}, fmt.Errorf("group: bad envelope meta %q", s)
	}
	seq, err := strconv.ParseUint(parts[1], 10, 64)
	if err != nil {
		return Envelope{}, fmt.Errorf("group: bad seq %q", parts[1])
	}
	gseq, err := strconv.ParseUint(parts[2], 10, 64)
	if err != nil {
		return Envelope{}, fmt.Errorf("group: bad gseq %q", parts[2])
	}
	vc, err := DecodeVC(parts[3])
	if err != nil {
		return Envelope{}, err
	}
	return Envelope{Sender: parts[0], Seq: seq, GlobalSeq: gseq, VC: vc}, nil
}
