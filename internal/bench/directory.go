// directory.go is the directory-plane experiment (EXPERIMENTS E9): the
// cost of the leased, sharded name service at mobile-web-robot scale.
// One hundred thousand agents register, renew and resolve against shard
// counts {1, 4, 16}; every number recorded to BENCH_directory.json is
// exact — shard ops really execute (exact versions, exact balance),
// allocation counts come from testing.AllocsPerRun with the GC off, and
// the virtual-clock makespan is simnet LAN100 arithmetic over exact
// frame counts — so reruns are byte-identical.
package bench

import (
	"fmt"
	"runtime/debug"
	"testing"
	"time"

	"tax/internal/directory"
	"tax/internal/simnet"
)

// directoryBenchAgents is the registered-agent population per sweep
// point — the roadmap's 10^5-agent scale target.
const directoryBenchAgents = 100_000

// directoryFrameBytes is the modeled wire size of one directory frame
// (request or reply): envelope headers plus a name, a location URI and
// the lease fields, matching what the plane's briefcases carry.
const directoryFrameBytes = 256

// DirectoryShardResult is one shard-count sweep point.
type DirectoryShardResult struct {
	// Shards is the directory plane's member count; Replicas how many
	// copies each binding has (1 on the single-node plane, 2 beyond).
	Shards   int `json:"shards"`
	Replicas int `json:"replicas"`
	// Agents is the registered population; every agent registers once,
	// renews once (one move) and is looked up once.
	Agents int `json:"agents"`
	// MaxShardLoad / MinShardLoad are the exact largest and smallest
	// per-shard owned-name counts the consistent-hash ring produced.
	MaxShardLoad int `json:"max_shard_load"`
	MinShardLoad int `json:"min_shard_load"`
	// RegisterAllocsPerOp / LookupAllocsPerOp are exact steady-state
	// allocation counts of one shard-local Coordinate / LookupAt.
	RegisterAllocsPerOp float64 `json:"register_allocs_per_op"`
	LookupAllocsPerOp   float64 `json:"lookup_allocs_per_op"`
	// RegisterMakespanMS is the virtual-clock makespan of registering
	// the whole population: shards serve their owned names in parallel,
	// so the makespan is the busiest shard's serial cost — client RPC
	// plus one replica forward per write under LAN100.
	RegisterMakespanMS float64 `json:"register_makespan_ms"`
	// RegsPerVirtualSec is the plane's registration throughput:
	// population over makespan.
	RegsPerVirtualSec float64 `json:"regs_per_virtual_sec"`
	// LookupDirectUS is one resolution against a live owner (one LAN100
	// round trip); LookupFailoverUS adds the dead-owner timeout-free
	// retry against the replica (a second round trip).
	LookupDirectUS   float64 `json:"lookup_direct_us"`
	LookupFailoverUS float64 `json:"lookup_failover_us"`
}

// DirectoryResult is the BENCH_directory.json document.
type DirectoryResult struct {
	Profile string                 `json:"profile"`
	Results []DirectoryShardResult `json:"results"`
}

// Directory runs the shard-count sweep and returns the table plus the
// JSON document.
func Directory() (*Table, *DirectoryResult, error) {
	res := &DirectoryResult{Profile: simnet.LAN100.Name}
	for _, shards := range []int{1, 4, 16} {
		point, err := directorySweepPoint(shards)
		if err != nil {
			return nil, nil, err
		}
		res.Results = append(res.Results, point)
	}

	tbl := &Table{
		Title: fmt.Sprintf("directory plane: %d agents register+renew+resolve, LAN100", directoryBenchAgents),
		Header: []string{"shards", "replicas", "max/min load", "reg allocs", "lookup allocs",
			"reg makespan", "regs/vsec", "lookup", "failover"},
	}
	for _, p := range res.Results {
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(p.Shards),
			fmt.Sprint(p.Replicas),
			fmt.Sprintf("%d/%d", p.MaxShardLoad, p.MinShardLoad),
			fmt.Sprintf("%.0f", p.RegisterAllocsPerOp),
			fmt.Sprintf("%.0f", p.LookupAllocsPerOp),
			fmt.Sprintf("%.1fms", p.RegisterMakespanMS),
			fmt.Sprintf("%.0f", p.RegsPerVirtualSec),
			fmt.Sprintf("%.0fµs", p.LookupDirectUS),
			fmt.Sprintf("%.0fµs", p.LookupFailoverUS),
		})
	}
	return tbl, res, nil
}

// directorySweepPoint measures one shard count against the full agent
// population.
func directorySweepPoint(shards int) (DirectoryShardResult, error) {
	nodes := make([]string, shards)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("d%02d", i)
	}
	replicas := 2
	if shards < 2 {
		replicas = 1
	}
	ring, err := directory.NewRing(nodes, 0, replicas)
	if err != nil {
		return DirectoryShardResult{}, err
	}

	// Execute the whole population's registrations and one renewal each
	// against real in-memory shards (the owner's data structure, minus
	// the journal disk): exact versions, exact per-shard load.
	byNode := make(map[string]*directory.Shard, shards)
	for _, n := range nodes {
		byNode[n] = directory.NewShard(nil, time.Minute)
	}
	load := make(map[string]int, shards)
	names := make([]string, directoryBenchAgents)
	owners := make([]string, directoryBenchAgents)
	for i := range names {
		names[i] = fmt.Sprintf("agent-%06d", i)
		owners[i] = ring.Owner(names[i])
		load[owners[i]]++
	}
	for i, name := range names {
		sh := byNode[owners[i]]
		if _, err := sh.Coordinate(name, "tacoma://h1//vm_go", false, 0); err != nil {
			return DirectoryShardResult{}, err
		}
		if b, err := sh.Coordinate(name, "tacoma://h2//vm_go", false, time.Second); err != nil || b.Version != 2 {
			return DirectoryShardResult{}, fmt.Errorf("bench: renewal of %s = %+v, %v", name, b, err)
		}
	}
	for i, name := range names {
		if b, err := byNode[owners[i]].LookupAt(name, time.Second); err != nil || b.Version != 2 {
			return DirectoryShardResult{}, fmt.Errorf("bench: lookup of %s = %+v, %v", name, b, err)
		}
	}
	maxLoad, minLoad := 0, directoryBenchAgents
	for _, n := range nodes {
		if load[n] > maxLoad {
			maxLoad = load[n]
		}
		if load[n] < minLoad {
			minLoad = load[n]
		}
	}

	// Exact allocation counts for the shard-local primitives, steady
	// state (every name already bound), GC parked.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	probe := byNode[owners[0]]
	idx := 0
	regAllocs := testing.AllocsPerRun(200, func() {
		name := names[idx%directoryBenchAgents]
		if owners[idx%directoryBenchAgents] == owners[0] {
			if _, err := probe.Coordinate(name, "tacoma://h2//vm_go", false, time.Second); err != nil {
				panic(err)
			}
		}
		idx++
	})
	idx = 0
	lookAllocs := testing.AllocsPerRun(200, func() {
		name := names[idx%directoryBenchAgents]
		if owners[idx%directoryBenchAgents] == owners[0] {
			if _, err := probe.LookupAt(name, time.Second); err != nil {
				panic(err)
			}
		}
		idx++
	})

	// Virtual-clock model, LAN100 arithmetic over exact frame counts.
	// One registration = client→owner request + owner→client ack (one
	// round trip) plus, with replication, an owner→replica apply and its
	// ack overlapping the next write (pipelined by the replication
	// workers), which bounds the owner's serial cost at one round trip
	// per write either way; the replica stream doubles the frames the
	// busiest shard must emit.
	rtt := simnet.LAN100.RoundTrip(directoryFrameBytes, directoryFrameBytes)
	perWrite := rtt
	if replicas > 1 {
		perWrite += simnet.LAN100.TransferTime(directoryFrameBytes) // replica apply frame on the owner's link
	}
	makespan := time.Duration(maxLoad) * perWrite
	p := DirectoryShardResult{
		Shards:              shards,
		Replicas:            replicas,
		Agents:              directoryBenchAgents,
		MaxShardLoad:        maxLoad,
		MinShardLoad:        minLoad,
		RegisterAllocsPerOp: regAllocs,
		LookupAllocsPerOp:   lookAllocs,
		RegisterMakespanMS:  float64(makespan.Microseconds()) / 1000,
		RegsPerVirtualSec:   float64(directoryBenchAgents) / makespan.Seconds(),
		LookupDirectUS:      float64(rtt.Microseconds()),
		LookupFailoverUS:    float64((2 * rtt).Microseconds()),
	}
	return p, nil
}
