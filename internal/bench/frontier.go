package bench

import (
	"context"
	"fmt"
	"reflect"
	"sync/atomic"
	"time"

	"tax/internal/cabinet"
	"tax/internal/frontier"
	"tax/internal/simnet"
	"tax/internal/vclock"
	"tax/internal/webbot"
	"tax/internal/websim"
)

// FrontierResult is one point of the staged-crawler schedule grid
// (worker count × politeness delay) over the 917-page case-study site,
// in machine-readable form for BENCH_frontier.json.
type FrontierResult struct {
	// Workers is the fetcher-stage pool width at this point.
	Workers int `json:"workers"`
	// PolitenessMs is the per-site politeness delay.
	PolitenessMs float64 `json:"politeness_ms"`
	// MakespanMs is the schedule model's virtual completion time for
	// this point (frontier.ModelMakespan over the crawl's records).
	MakespanMs float64 `json:"virtual_makespan_ms"`
	// Speedup is the 1-worker/0-delay makespan divided by this one.
	Speedup float64 `json:"speedup_vs_serial"`
	// Pages and Bytes are the crawl's aggregate results — identical at
	// every grid point, or the staged pipeline is not deterministic.
	Pages int `json:"pages"`
	Bytes int `json:"bytes_fetched"`
	// Identical reports this point's full Stats == the serial baseline.
	Identical bool `json:"stats_identical_to_serial"`
}

// FrontierChecks carries the staged crawler's durability and re-crawl
// check outcomes for BENCH_frontier.json. Every field is a pure
// function of the seeded site and the virtual clock, so reruns are
// byte-identical.
type FrontierChecks struct {
	// GridIdentical is the conjunction of every grid point's Identical.
	GridIdentical bool `json:"grid_stats_identical"`
	// ResumeIdentical reports that a crawl interrupted mid-flight (its
	// durable frontier cut off at a WAL append) and resumed over the
	// same store produced Stats byte-identical to an uninterrupted run.
	ResumeIdentical bool `json:"crash_resume_stats_identical"`
	// RecrawlRevalidated counts pages the incremental re-crawl verified
	// unchanged with a HEAD probe; RecrawlRefetched counts pages whose
	// digest changed and were fetched in full.
	RecrawlRevalidated int `json:"recrawl_revalidated"`
	RecrawlRefetched   int `json:"recrawl_refetched"`
	// RecrawlBytesSaved is the transfer saved by revalidation: the full
	// crawl's body bytes minus the re-crawl's.
	RecrawlBytesSaved int `json:"recrawl_bytes_saved"`
	// RobotsPages is the page count when the crawl honors the site's
	// seeded robots.txt; RobotsPruned is how many of the 917 pages the
	// exclusion rules removed.
	RobotsPages  int `json:"robots_honored_pages"`
	RobotsPruned int `json:"robots_pruned_pages"`
}

// frontierRobot builds a case-study robot on a fresh virtual clock.
func frontierRobot(opts ...webbot.Option) (*webbot.Robot, *websim.Site, error) {
	site, err := websim.Generate(websim.CaseStudySpec("webserv"))
	if err != nil {
		return nil, nil, err
	}
	clock := vclock.NewVirtual()
	fetcher := &websim.Client{
		Server:   websim.DefaultServer(site),
		Universe: &websim.Universe{Origin: site},
		Link:     simnet.Loopback,
		Clock:    clock,
	}
	base := []webbot.Option{
		webbot.WithClock(clock),
		webbot.WithMaxDepth(4),
		webbot.WithPrefix("http://webserv/"),
	}
	return webbot.New(fetcher, append(base, opts...)...), site, nil
}

// Frontier benchmarks the staged crawler of PR 10 (experiment E10).
//
// The grid sweeps fetcher workers {1,2,4,8} × politeness {0,2,10} ms
// over the paper's 917-page site and reports each point's virtual
// makespan under the frontier's deterministic schedule model — the
// acceptance property being that the crawl's *Stats* are byte-identical
// at every point (acquisition order is free; the canonical replay is
// not). Three check sections ride along: crash-resume over a durable
// frontier, incremental re-crawl with HEAD revalidation, and
// robots.txt pruning.
func Frontier() (*Table, []FrontierResult, *FrontierChecks, error) {
	t := &Table{
		Title:  "E10-frontier — staged crawler: workers × politeness schedule model",
		Note:   "virtual makespan from frontier.ModelMakespan; Stats identical at every point",
		Header: []string{"workers", "politeness", "makespan", "speedup", "pages", "identical"},
	}

	// Serial baseline: one worker, no politeness delay.
	serialBot, serialSite, err := frontierRobot()
	if err != nil {
		return nil, nil, nil, err
	}
	serialStats, err := serialBot.Run(serialSite.Root)
	if err != nil {
		return nil, nil, nil, err
	}
	serialMakespan := frontier.ModelMakespan(serialBot.Records(), 1, 0)

	checks := &FrontierChecks{GridIdentical: true}
	var results []FrontierResult
	for _, w := range []int{1, 2, 4, 8} {
		for _, p := range []time.Duration{0, 2 * time.Millisecond, 10 * time.Millisecond} {
			r, site, err := frontierRobot(webbot.WithWorkers(w), webbot.WithPoliteness(p))
			if err != nil {
				return nil, nil, nil, err
			}
			st, err := r.Run(site.Root)
			if err != nil {
				return nil, nil, nil, err
			}
			makespan := frontier.ModelMakespan(r.Records(), w, p)
			res := FrontierResult{
				Workers:      w,
				PolitenessMs: float64(p.Microseconds()) / 1000,
				MakespanMs:   float64(makespan.Microseconds()) / 1000,
				Pages:        st.PagesVisited,
				Bytes:        st.BytesFetched,
				Identical:    reflect.DeepEqual(st, serialStats),
			}
			if makespan > 0 {
				res.Speedup = serialMakespan.Seconds() / makespan.Seconds()
			}
			checks.GridIdentical = checks.GridIdentical && res.Identical
			results = append(results, res)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", w),
				ms(p),
				ms(makespan),
				fmt.Sprintf("%.2fx", res.Speedup),
				fmt.Sprintf("%d", st.PagesVisited),
				fmt.Sprintf("%v", res.Identical),
			})
		}
	}

	if err := frontierResume(checks, serialStats); err != nil {
		return nil, nil, nil, err
	}
	if err := frontierRecrawl(checks); err != nil {
		return nil, nil, nil, err
	}
	if err := frontierRobots(checks); err != nil {
		return nil, nil, nil, err
	}
	t.Rows = append(t.Rows,
		[]string{"crash-resume ≡ serial", "", "", "", "", fmt.Sprintf("%v", checks.ResumeIdentical)},
		[]string{"re-crawl revalidated", "", "", "", fmt.Sprintf("%d", checks.RecrawlRevalidated),
			fmt.Sprintf("refetched %d", checks.RecrawlRefetched)},
		[]string{"robots.txt honored", "", "", "", fmt.Sprintf("%d", checks.RobotsPages),
			fmt.Sprintf("pruned %d", checks.RobotsPruned)},
	)
	return t, results, checks, nil
}

// frontierResume interrupts a durable crawl at its frontier store's
// 400th WAL append (mid-crawl: a full run commits ~2k), then resumes
// over the same store with a fresh robot and compares the finished
// Stats against the uninterrupted baseline.
func frontierResume(checks *FrontierChecks, serial *webbot.Stats) error {
	store := cabinet.NewStore(cabinet.Options{Clock: vclock.NewVirtual(), SnapshotEvery: -1})
	r1, site, err := frontierRobot(webbot.WithWorkers(4), webbot.WithFrontier(store, "fr/"))
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var appends int64
	store.SetAppendHook(func(seq uint64) {
		if atomic.AddInt64(&appends, 1) == 400 {
			cancel()
		}
	})
	if _, err := r1.RunCtx(ctx, site.Root); err == nil {
		return fmt.Errorf("bench: frontier crawl finished before the interrupt")
	}
	store.SetAppendHook(nil)

	r2, site2, err := frontierRobot(webbot.WithWorkers(4), webbot.WithFrontier(store, "fr/"))
	if err != nil {
		return err
	}
	st, err := r2.Run(site2.Root)
	if err != nil {
		return err
	}
	checks.ResumeIdentical = reflect.DeepEqual(st, serial)
	return nil
}

// frontierRecrawl crawls into a durable frontier, ages one young page
// past every bucket boundary, and re-crawls incrementally: unchanged
// pages revalidate with a HEAD probe, the aged page refetches in full.
func frontierRecrawl(checks *FrontierChecks) error {
	store := cabinet.NewStore(cabinet.Options{Clock: vclock.NewVirtual(), SnapshotEvery: -1})
	r1, site, err := frontierRobot(webbot.WithFrontier(store, "fr/"))
	if err != nil {
		return err
	}
	st1, err := r1.Run(site.Root)
	if err != nil {
		return err
	}
	// Deterministic pick: the lexically first young page. Aging it
	// changes its digest, so the re-crawl must fetch it in full.
	var aged string
	for _, rec := range r1.Records() {
		if rec.AgeDays < 30 && rec.Type != "" && (aged == "" || rec.URL < aged) {
			aged = rec.URL
		}
	}
	if aged == "" {
		return fmt.Errorf("bench: no young page to age on the case-study site")
	}

	r2, site2, err := frontierRobot(webbot.WithFrontier(store, "fr/"), webbot.WithRecrawl())
	if err != nil {
		return err
	}
	site2.SetAgeDays(aged, 4000)
	st2, err := r2.Run(site2.Root)
	if err != nil {
		return err
	}
	checks.RecrawlRevalidated = st2.Revalidated
	checks.RecrawlRefetched = st2.PagesVisited - st2.Revalidated
	checks.RecrawlBytesSaved = st1.BytesFetched - st2.BytesFetched
	return nil
}

// frontierRobots crawls the same site honoring its seeded robots.txt
// and records how many of the 917 pages the exclusion rules prune.
func frontierRobots(checks *FrontierChecks) error {
	r, site, err := frontierRobot(webbot.WithRobotsPolicy(webbot.RobotsHonor))
	if err != nil {
		return err
	}
	st, err := r.Run(site.Root)
	if err != nil {
		return err
	}
	checks.RobotsPages = st.PagesVisited
	checks.RobotsPruned = 917 - st.PagesVisited
	return nil
}
