// Package bench is the experiment harness: it regenerates every
// quantitative claim of the paper's evaluation (see DESIGN.md §3 for the
// experiment index) as printable tables, shared by the repository's
// testing.B benchmarks and the cmd/taxbench tool.
//
// Calibration. The simulator's cost model has four load-bearing
// constants, chosen once so that the paper's single published number —
// a 16 % local-vs-LAN advantage on the 917-page/3 MB crawl — is
// reproduced, and then left alone for every other experiment:
//
//   - simnet.LAN100: 100 Mbit/s, 150 µs latency, 150 µs per-message cost
//   - websim.DefaultServer: 700 µs per request + 200 ns per body byte
//   - webbot.ParseCostPerKB: 800 µs per KiB crawled
//   - services.CompileCost: 200 ns per source byte (figure-3 pipeline)
//
// EXPERIMENTS.md records paper-vs-measured for every row produced here.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"tax/internal/linkmine"
	"tax/internal/simnet"
	"tax/internal/vclock"
	"tax/internal/webbot"
	"tax/internal/websim"
)

// Table is one experiment's printable result.
type Table struct {
	// Title names the experiment ("E1", "F3", ...).
	Title string
	// Note is a one-line description under the title.
	Note string
	// Header labels the columns.
	Header []string
	// Rows are the data cells.
	Rows [][]string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var sb strings.Builder
	sb.WriteString("== " + t.Title + " ==\n")
	if t.Note != "" {
		sb.WriteString(t.Note + "\n")
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteString("\n")
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}

// ms renders a duration as milliseconds, switching to microseconds for
// sub-millisecond values so figure-3 activation costs stay readable.
func ms(d time.Duration) string {
	if d < time.Millisecond {
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
	return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
}

// E1 regenerates the §5 headline result: the 917-page / 3 MB scan,
// stationary across the LAN versus the mobile Webbot executing locally.
func E1() (*Table, *linkmine.Comparison, error) {
	cmp, err := linkmine.Run(linkmine.Config{})
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title: "E1 — §5 case study: local vs. remote Webbot scan",
		Note: fmt.Sprintf("workload: %d pages, %d bytes, depth <= 4; link: 100 Mbit LAN (paper reports local 16%% faster)",
			cmp.Stationary.PagesVisited, cmp.Stationary.BytesFetched),
		Header: []string{"mode", "scan time", "total time", "LAN bytes", "dead internal", "dead external"},
	}
	for _, r := range []*linkmine.Report{cmp.Stationary, cmp.Mobile} {
		t.Rows = append(t.Rows, []string{
			r.Mode, ms(r.ScanElapsed), ms(r.TotalElapsed),
			fmt.Sprintf("%d", r.LinkBytes),
			fmt.Sprintf("%d", len(r.InvalidInternal)),
			fmt.Sprintf("%d", len(r.InvalidExternal)),
		})
	}
	t.Rows = append(t.Rows, []string{
		"speedup", fmt.Sprintf("%.1f%%", cmp.SpeedupPercent()), "", "", "", "",
	})
	return t, cmp, nil
}

// WANCase is one cell of the E1-WAN sweep.
type WANCase struct {
	Link    simnet.Profile
	SizeMul int // multiplies the paper's 3 MB workload
}

// E1WAN regenerates §5's closing extrapolation: "if the client and
// server is separated by a wide area network and the volume of data much
// greater, it is conceivable that the mobile Webbot would be even
// faster." The sweep crosses link classes with workload sizes and
// reports where the mobile agent's win grows and where it shrinks.
func E1WAN() (*Table, error) {
	cases := []WANCase{
		{Link: simnet.LAN100, SizeMul: 1},
		{Link: simnet.LAN100, SizeMul: 4},
		{Link: simnet.WAN10, SizeMul: 1},
		{Link: simnet.WAN10, SizeMul: 4},
		{Link: simnet.WAN2, SizeMul: 1},
		{Link: simnet.WAN2, SizeMul: 4},
	}
	t := &Table{
		Title:  "E1-WAN — §5 extrapolation: link class × data volume",
		Note:   "same crawl with the client-server link degraded and the site scaled",
		Header: []string{"link", "site", "stationary", "mobile", "speedup", "LAN/WAN bytes s", "bytes m"},
	}
	for _, c := range cases {
		spec := websim.CaseStudySpec("webserv")
		spec.Pages *= c.SizeMul
		spec.TotalBytes *= c.SizeMul
		cmp, err := linkmine.Run(linkmine.Config{Link: c.Link, Spec: spec})
		if err != nil {
			return nil, fmt.Errorf("bench: e1wan %s x%d: %w", c.Link.Name, c.SizeMul, err)
		}
		t.Rows = append(t.Rows, []string{
			c.Link.Name,
			fmt.Sprintf("%dMB", 3*c.SizeMul),
			ms(cmp.Stationary.ScanElapsed),
			ms(cmp.Mobile.ScanElapsed),
			fmt.Sprintf("%.1f%%", cmp.SpeedupPercent()),
			fmt.Sprintf("%d", cmp.Stationary.LinkBytes),
			fmt.Sprintf("%d", cmp.Mobile.LinkBytes),
		})
	}
	return t, nil
}

// SiteStats regenerates the kind of report the W3C Webbot produced —
// "statistics on web pages such as link validity, age, and type of web
// pages encountered" — for the case-study crawl.
func SiteStats() (*Table, error) {
	site, err := websim.Generate(websim.CaseStudySpec("webserv"))
	if err != nil {
		return nil, err
	}
	clock := vclock.NewVirtual()
	robot := &webbot.Robot{
		Fetcher: &websim.Client{
			Server:   websim.DefaultServer(site),
			Universe: &websim.Universe{Origin: site},
			Link:     simnet.Loopback,
			Clock:    clock,
		},
		Clock:       clock,
		Constraints: webbot.Constraints{MaxDepth: 4, Prefix: "http://" + site.Host + "/"},
	}
	st, err := robot.Run(site.Root)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Webbot statistics — link validity, age and type (§5 workload)",
		Note:   fmt.Sprintf("%d pages, %d bytes, %d links checked", st.PagesVisited, st.BytesFetched, st.LinksChecked),
		Header: []string{"statistic", "value"},
	}
	types := make([]string, 0, len(st.TypeCounts))
	for ty := range st.TypeCounts {
		types = append(types, ty)
	}
	sort.Strings(types)
	for _, ty := range types {
		t.Rows = append(t.Rows, []string{"type " + ty, fmt.Sprintf("%d", st.TypeCounts[ty])})
	}
	ageLabels := []string{"age < 30 days", "age < 180 days", "age < 365 days", "age >= 365 days"}
	for i, label := range ageLabels {
		t.Rows = append(t.Rows, []string{label, fmt.Sprintf("%d", st.AgeBuckets[i])})
	}
	t.Rows = append(t.Rows,
		[]string{"invalid links", fmt.Sprintf("%d", len(st.Invalid))},
		[]string{"rejected (prefix)", fmt.Sprintf("%d", len(st.RejectedByPrefix()))},
		[]string{"max depth seen", fmt.Sprintf("%d", st.MaxDepthSeen)},
	)
	return t, nil
}

// Campus regenerates the §5 remark "if we were to check all the servers
// at the university campus (the whole uit.no domain) ... Webbot needs to
// be run several times, and preferably relocated to a new host between
// each execution": an itinerant agent visiting K web servers versus the
// fixed client scanning each across the LAN.
func Campus() (*Table, error) {
	t := &Table{
		Title:  "E1-campus — §5 extension: itinerant scan of K web servers",
		Note:   "200 pages (~0.7 MB) per server on the 100 Mbit campus LAN",
		Header: []string{"servers", "stationary", "mobile", "speedup", "bytes s", "bytes m"},
	}
	for _, k := range []int{1, 2, 4, 8} {
		servers := make([]string, k)
		for i := range servers {
			servers[i] = fmt.Sprintf("www%d", i+1)
		}
		cfg := linkmine.MultiConfig{Servers: servers, PagesPerServer: 200}

		ds, err := linkmine.NewMultiDeployment(cfg)
		if err != nil {
			return nil, err
		}
		stationary, err := ds.RunStationaryMulti()
		closeQuietM(ds)
		if err != nil {
			return nil, err
		}
		dm, err := linkmine.NewMultiDeployment(cfg)
		if err != nil {
			return nil, err
		}
		mobile, err := dm.RunMobileMulti()
		closeQuietM(dm)
		if err != nil {
			return nil, err
		}
		speedup := (stationary.Elapsed.Seconds() - mobile.Elapsed.Seconds()) /
			stationary.Elapsed.Seconds() * 100
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			ms(stationary.Elapsed),
			ms(mobile.Elapsed),
			fmt.Sprintf("%.1f%%", speedup),
			fmt.Sprintf("%d", stationary.LinkBytes),
			fmt.Sprintf("%d", mobile.LinkBytes),
		})
	}
	return t, nil
}

func closeQuietM(d *linkmine.MultiDeployment) { _ = d.Close() }

// Crossover finds where mobility stops paying: tiny sites on fast links,
// where migration overhead exceeds the network savings. It reports the
// site size at which the stationary robot first wins on the loopback-
// fast LAN, demonstrating that the reproduction models both sides of the
// trade-off rather than hard-coding a mobile win.
func Crossover() (*Table, error) {
	t := &Table{
		Title:  "E1-crossover — where migration stops paying",
		Note:   "shrinking sites on the 100 Mbit LAN; negative speedup = stationary wins",
		Header: []string{"pages", "bytes", "stationary", "mobile", "speedup"},
	}
	for _, pages := range []int{917, 200, 50, 12, 4} {
		spec := websim.CaseStudySpec("webserv")
		spec.Pages = pages
		spec.TotalBytes = pages * 3400
		spec.ExtraPages = 10
		cmp, err := linkmine.Run(linkmine.Config{Spec: spec})
		if err != nil {
			return nil, fmt.Errorf("bench: crossover %d: %w", pages, err)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", pages),
			fmt.Sprintf("%d", cmp.Stationary.BytesFetched),
			ms(cmp.Stationary.ScanElapsed),
			ms(cmp.Mobile.ScanElapsed),
			fmt.Sprintf("%.1f%%", cmp.SpeedupPercent()),
		})
	}
	return t, nil
}
